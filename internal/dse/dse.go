// Package dse is a design-space explorer over the NoC configurations this
// repository can build: it enumerates baseline, multi-channel and FastTrack
// designs for a system size, evaluates each on the FPGA model (cost, clock,
// routability, power) and in simulation (sustained rate), and extracts the
// Pareto frontier — automating the paper's §IV-A/§VI cost-aware design
// methodology ("judiciously choose D and R").
package dse

import (
	"context"
	"fmt"
	"sort"

	"fasttrack/internal/core"
	"fasttrack/internal/runner"
)

// Options scopes an exploration.
type Options struct {
	// N is the torus width (the NoC is N×N).
	N int
	// WidthBits is the datapath width (0 = 256).
	WidthBits int
	// Pattern and Rate drive the throughput measurement (defaults: RANDOM
	// at 1.0).
	Pattern string
	Rate    float64
	// PacketsPerPE is the simulation quota (0 = 300).
	PacketsPerPE int
	// MaxChannels bounds the multi-channel alternatives (0 = 3).
	MaxChannels int
	// Variants toggles FTlite(Inject) candidates in addition to Full.
	Variants bool
	// Seed fixes the workload streams.
	Seed uint64
	// Workers bounds the simulation worker pool (0 = one per CPU).
	Workers int
	// Cache, when non-nil, is the content-addressed run cache consulted
	// before every candidate simulation (ftdse -cache): re-exploring a
	// design space reruns only the points whose keys are not on disk.
	Cache *runner.Cache
	// Orch, when non-nil, schedules the simulations instead of a private
	// orchestrator built from Workers and Cache — the caller keeps live
	// visibility (span traces, /metrics) into the exploration.
	Orch *runner.Orchestrator
}

func (o Options) withDefaults() Options {
	if o.WidthBits == 0 {
		o.WidthBits = 256
	}
	if o.Pattern == "" {
		o.Pattern = "RANDOM"
	}
	if o.Rate == 0 {
		o.Rate = 1.0
	}
	if o.PacketsPerPE == 0 {
		o.PacketsPerPE = 300
	}
	if o.MaxChannels == 0 {
		o.MaxChannels = 3
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Point is one evaluated design.
type Point struct {
	Config core.Config
	Name   string

	LUTs, FFs  int
	ClockMHz   float64
	PowerW     float64
	WireFactor int
	Routable   bool

	SustainedRate  float64 // pkt/cycle/PE
	ThroughputMPPS float64 // delivered packets/s network-wide, in millions
	AvgLatencyNS   float64
	// EnergyPerPacketNJ is dynamic energy divided by delivered packets.
	EnergyPerPacketNJ float64

	// Pareto marks membership in the throughput-vs-LUTs frontier.
	Pareto bool
}

// candidates enumerates the legal design points for opts.
func candidates(o Options) []core.Config {
	var cands []core.Config
	for k := 1; k <= o.MaxChannels; k++ {
		cands = append(cands, core.MultiChannel(o.N, k).WithWidth(o.WidthBits))
	}
	variants := []core.Variant{core.VariantFull}
	if o.Variants {
		variants = append(variants, core.VariantInject)
	}
	for d := 1; d <= o.N/2; d++ {
		for r := 1; r <= d; r++ {
			if d%r != 0 || o.N%r != 0 {
				continue
			}
			for _, v := range variants {
				if v == core.VariantInject && o.N%d != 0 {
					continue
				}
				cands = append(cands, core.FastTrack(o.N, d, r).WithVariant(v).WithWidth(o.WidthBits))
			}
		}
	}
	return cands
}

// Explore evaluates every candidate and marks the Pareto frontier
// (maximize throughput, minimize LUTs) among routable designs. ctx cancels
// the exploration cooperatively (the engine polls it between cycle blocks);
// pass context.Background() when cancellation is not needed.
//
// Specs (cost/clock/routability) are evaluated serially — they are closed-
// form and cheap. The simulations behind routable points then fan out across
// Options.Workers, each consulting Options.Cache first, so re-exploring a
// design space reruns only cache-missing points. Returns Stats alongside the
// points: how many simulations executed fresh vs were served from cache.
func Explore(ctx context.Context, opts Options) ([]Point, Stats, error) {
	o := opts.withDefaults()
	dev := core.Virtex7()
	cands := candidates(o)
	pts := make([]Point, len(cands))
	var simIdx []int
	for i, cfg := range cands {
		spec, err := cfg.Spec()
		if err != nil {
			return nil, Stats{}, fmt.Errorf("dse: %s: %w", cfg, err)
		}
		p := Point{Config: cfg, Name: cfg.String(), WireFactor: spec.WireFactor()}
		p.LUTs, p.FFs = spec.Resources()
		p.Routable = spec.Routable(dev)
		if p.Routable {
			p.ClockMHz = spec.ClockMHz(dev)
			p.PowerW = spec.PowerW(dev)
			simIdx = append(simIdx, i)
		}
		pts[i] = p
	}

	orch := o.Orch
	if orch == nil {
		orch = &runner.Orchestrator{Cache: o.Cache, Workers: o.Workers}
	}
	err := orch.ForEach(ctx, len(simIdx), func(ctx context.Context, j int) error {
		i := simIdx[j]
		cfg := cands[i]
		sopts := core.SyntheticOptions{
			Pattern: o.Pattern, Rate: o.Rate, PacketsPerPE: o.PacketsPerPE, Seed: o.Seed,
		}
		res, err := runner.Do(ctx, orch, runner.SyntheticKey(cfg, sopts), func() (core.Result, error) {
			return core.RunSynthetic(ctx, cfg, sopts)
		})
		if err != nil {
			return fmt.Errorf("dse: %s: %w", cfg, err)
		}
		spec, err := cfg.Spec()
		if err != nil {
			return fmt.Errorf("dse: %s: %w", cfg, err)
		}
		p := &pts[i]
		p.SustainedRate = res.SustainedRate
		p.ThroughputMPPS = res.SustainedRate * float64(o.N*o.N) * p.ClockMHz
		if p.ClockMHz > 0 {
			p.AvgLatencyNS = res.AvgLatency / p.ClockMHz * 1000
			if res.Delivered > 0 {
				joules := spec.EnergyJ(dev, res.Cycles)
				p.EnergyPerPacketNJ = joules / float64(res.Delivered) * 1e9
			}
		}
		return nil
	})
	if err != nil {
		return nil, Stats{}, err
	}
	markPareto(pts)
	sort.Slice(pts, func(i, j int) bool { return pts[i].LUTs < pts[j].LUTs })
	executed, hits := orch.Stats()
	return pts, Stats{Simulated: executed, Cached: hits}, nil
}

// Stats reports how an exploration's simulations were satisfied.
type Stats struct {
	// Simulated counts fresh simulation runs; Cached counts points served
	// from the content-addressed run cache.
	Simulated, Cached int64
}

// markPareto flags the non-dominated routable points under (max throughput,
// min LUTs).
func markPareto(pts []Point) {
	for i := range pts {
		if !pts[i].Routable {
			continue
		}
		dominated := false
		for j := range pts {
			if i == j || !pts[j].Routable {
				continue
			}
			betterOrEqual := pts[j].ThroughputMPPS >= pts[i].ThroughputMPPS && pts[j].LUTs <= pts[i].LUTs
			strictlyBetter := pts[j].ThroughputMPPS > pts[i].ThroughputMPPS || pts[j].LUTs < pts[i].LUTs
			if betterOrEqual && strictlyBetter {
				dominated = true
				break
			}
		}
		pts[i].Pareto = !dominated
	}
}

// Frontier returns only the Pareto-optimal points, cheapest first.
func Frontier(pts []Point) []Point {
	var out []Point
	for _, p := range pts {
		if p.Pareto {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].LUTs < out[j].LUTs })
	return out
}
