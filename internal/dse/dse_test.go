package dse

import (
	"context"
	"strings"
	"testing"
)

func explore(t *testing.T) []Point {
	t.Helper()
	pts, _, err := Explore(context.Background(), Options{N: 8, PacketsPerPE: 150, Variants: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 6 {
		t.Fatalf("only %d candidates explored", len(pts))
	}
	return pts
}

func TestExploreEvaluatesEverything(t *testing.T) {
	pts := explore(t)
	names := map[string]bool{}
	for _, p := range pts {
		names[p.Name] = true
		if p.Routable && (p.ThroughputMPPS <= 0 || p.ClockMHz <= 0) {
			t.Errorf("%s routable but unevaluated: %+v", p.Name, p)
		}
		if p.LUTs <= 0 {
			t.Errorf("%s has no cost", p.Name)
		}
	}
	for _, want := range []string{"Hoplite", "Hoplite-3x", "FT(64,2,1)", "FT(64,2,2)", "FT(64,2,1)-inject"} {
		if !names[want] {
			t.Errorf("candidate %s missing (have %v)", want, names)
		}
	}
}

func TestParetoFrontierIsNonDominated(t *testing.T) {
	pts := explore(t)
	front := Frontier(pts)
	if len(front) == 0 {
		t.Fatal("empty frontier")
	}
	for _, f := range front {
		for _, p := range pts {
			if !p.Routable || p.Name == f.Name {
				continue
			}
			if p.ThroughputMPPS >= f.ThroughputMPPS && p.LUTs <= f.LUTs &&
				(p.ThroughputMPPS > f.ThroughputMPPS || p.LUTs < f.LUTs) {
				t.Errorf("frontier point %s dominated by %s", f.Name, p.Name)
			}
		}
	}
	// The frontier must be monotone: more LUTs only if more throughput.
	for i := 1; i < len(front); i++ {
		if front[i].ThroughputMPPS <= front[i-1].ThroughputMPPS {
			t.Errorf("frontier not monotone at %s", front[i].Name)
		}
	}
	// Plain Hoplite is the cheapest routable design, so it is always on
	// the frontier.
	if front[0].Name != "Hoplite" {
		t.Errorf("cheapest frontier point is %s, want Hoplite", front[0].Name)
	}
	// Some FastTrack design must make the frontier — the paper's thesis.
	hasFT := false
	for _, f := range front {
		if strings.HasPrefix(f.Name, "FT(") {
			hasFT = true
		}
	}
	if !hasFT {
		t.Error("no FastTrack design on the Pareto frontier")
	}
}

func TestUnroutableCandidatesAreKept(t *testing.T) {
	pts, _, err := Explore(context.Background(), Options{N: 8, WidthBits: 512, PacketsPerPE: 100})
	if err != nil {
		t.Fatal(err)
	}
	sawNA := false
	for _, p := range pts {
		if !p.Routable {
			sawNA = true
			if p.Pareto {
				t.Errorf("unroutable %s marked Pareto", p.Name)
			}
		}
	}
	if !sawNA {
		t.Error("expected some 512b designs to fail routability on 8x8")
	}
}
