package core

import (
	"context"
	"fmt"

	"fasttrack/internal/fasttrack"
	"fasttrack/internal/hoplite"
	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

// Batchable reports whether a synthetic job can run on the lockstep batched
// path. Batched runs are bit-identical to RunSynthetic, so this is purely a
// capability check, never a semantics one: multi-channel networks have no
// slab-backed batch constructor, wrapped workloads (faults, retry,
// regulation) need the per-job plumbing, the dense engine is the reference
// the batch is measured against, and sharding composes with batching at the
// job level rather than inside one instance. Observers batch fine: the
// lockstep driver steps live instances in ascending instance order each
// round, so each job's Observer sees the same deterministic event sequence
// the per-job engine emits (it only forfeits the idle fast-forward, which
// needs every cycle observed anyway).
func Batchable(cfg Config, opts SyntheticOptions) bool {
	if cfg.Kind != KindHoplite && cfg.Kind != KindFastTrack {
		return false
	}
	return opts.Faults == nil && opts.Retry == nil && opts.RegulateRate <= 0 &&
		opts.Engine == EngineSparse && opts.Shards <= 1
}

// SyntheticBatch is a reusable lockstep harness for one configuration: up to
// Size independent instances of cfg's network with their hot-path state laid
// out batch-major in shared slabs, plus the event-driven batched workload.
// Run steps every instance in lockstep — results are bit-identical to
// RunSynthetic job by job — and successive Run calls recycle the slabs, so a
// sweep pays the allocation cost once per (configuration, batch) instead of
// once per job.
type SyntheticBatch struct {
	cfg  Config
	size int
	w, h int
	hop  *hoplite.Batch
	ft   *fasttrack.Batch
}

// NewSyntheticBatch builds a harness of size instances of cfg. Only
// KindHoplite and KindFastTrack have batch constructors (see Batchable).
func NewSyntheticBatch(cfg Config, size int) (*SyntheticBatch, error) {
	if size < 1 {
		return nil, fmt.Errorf("core: batch size %d < 1", size)
	}
	sb := &SyntheticBatch{cfg: cfg, size: size, w: cfg.N, h: cfg.N}
	switch cfg.Kind {
	case KindHoplite:
		hop, err := hoplite.NewBatch(cfg.N, cfg.N, size)
		if err != nil {
			return nil, err
		}
		sb.hop = hop
	case KindFastTrack:
		top, err := fasttrack.NewTopology(cfg.N, cfg.D, cfg.R)
		if err != nil {
			return nil, err
		}
		ft, err := fasttrack.NewBatch(fasttrack.Config{
			Topology: top, Variant: cfg.Variant, ExpressPipeline: cfg.ExpressPipeline,
		}, size)
		if err != nil {
			return nil, err
		}
		sb.ft = ft
	default:
		return nil, fmt.Errorf("core: %s has no batched constructor", cfg)
	}
	return sb, nil
}

// Config returns the configuration every instance runs.
func (sb *SyntheticBatch) Config() Config { return sb.cfg }

// Size returns the instance capacity per lockstep round.
func (sb *SyntheticBatch) Size() int { return sb.size }

func (sb *SyntheticBatch) instance(i int) Network {
	if sb.hop != nil {
		return sb.hop.Instance(i)
	}
	return sb.ft.Instance(i)
}

// Reset idles every instance, keeping the slabs, so the harness can be
// recycled across jobs (runner.NetPool). Run resets before each chunk, so
// callers only need this when handing a used harness to other code.
func (sb *SyntheticBatch) Reset() {
	if sb.hop != nil {
		sb.hop.Reset()
	} else {
		sb.ft.Reset()
	}
}

// Run executes one synthetic job per options entry, in lockstep chunks of at
// most Size, and returns the results in order. Every result is bit-identical
// to RunSynthetic(ctx, Config(), optsList[i]). Any job failing Batchable, an
// invalid pattern, or a per-job engine error fails the whole call (mirroring
// the sweep scheduler's one-failure-cancels-siblings semantics).
func (sb *SyntheticBatch) Run(ctx context.Context, optsList []SyntheticOptions) ([]Result, error) {
	out := make([]Result, len(optsList))
	for lo := 0; lo < len(optsList); lo += sb.size {
		hi := lo + sb.size
		if hi > len(optsList) {
			hi = len(optsList)
		}
		if err := sb.runChunk(ctx, optsList[lo:hi], out[lo:hi]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (sb *SyntheticBatch) runChunk(ctx context.Context, chunk []SyntheticOptions, out []Result) error {
	specs := make([]traffic.SynthSpec, len(chunk))
	for i, o := range chunk {
		if !Batchable(sb.cfg, o) {
			return fmt.Errorf("core: job %d is not batchable on %s; use RunSynthetic", i, sb.cfg)
		}
		pat, err := traffic.ByName(o.Pattern)
		if err != nil {
			return err
		}
		if err := traffic.ValidateDims(pat, sb.w, sb.h); err != nil {
			return err
		}
		specs[i] = traffic.SynthSpec{Pattern: pat, Rate: o.Rate, Quota: o.PacketsPerPE, Seed: o.Seed}
	}
	sb.Reset()
	tb := traffic.NewSyntheticBatch(sb.w, sb.h, specs)
	jobs := make([]sim.BatchJob, len(chunk))
	for i, o := range chunk {
		jobs[i] = sim.BatchJob{
			Net: sb.instance(i),
			WL:  tb.View(i),
			Opts: sim.Options{
				MaxCycles:         o.MaxCycles,
				CheckConservation: o.CheckConservation,
				MaxPacketAge:      o.MaxPacketAge,
				Context:           ctx,
				ConvergeWindow:    o.ConvergeWindow,
				ConvergeTol:       o.ConvergeTol,
				Observer:          o.Observer,
			},
		}
	}
	for i, r := range sim.RunBatch(jobs) {
		if r.Err != nil {
			return r.Err
		}
		out[i] = r.Res
	}
	return nil
}
