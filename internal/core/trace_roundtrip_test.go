package core_test

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/graphgen"
	"fasttrack/internal/matrixgen"
	"fasttrack/internal/runner"
	"fasttrack/internal/trace"
	"fasttrack/internal/workloads/dataflow"
	"fasttrack/internal/workloads/graphwl"
	"fasttrack/internal/workloads/overlay"
	"fasttrack/internal/workloads/spmv"
)

// goldenTraces generates one small trace per workload family — the four
// Fig 15 case studies at test scale on a 4×4 grid.
func goldenTraces(t *testing.T) []*trace.Trace {
	t.Helper()
	const n = 4
	sp, err := spmv.Trace(matrixgen.Circuit("golden", 300, 6, 11), n, n, spmv.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := graphgen.PreferentialAttachment("golden", 400, 5, 12)
	gw, err := graphwl.Trace(g, graphgen.HashPartition(g.N, n*n, 0xfeed), n, n, graphwl.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lu, err := dataflow.Trace(matrixgen.Circuit("golden", 200, 4, 13), n, n, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ov, err := overlay.Trace(overlay.Benchmarks()[1], n, n, 8, 14)
	if err != nil {
		t.Fatal(err)
	}
	return []*trace.Trace{sp, gw, lu, ov}
}

// TestGoldenTraceRoundTrip is the PR's acceptance gate: for every workload
// family, text and binary serializations round-trip losslessly, the
// streaming replay of the recorded FTT1 file produces a sim.Result deep-equal
// to the in-memory replay, and the runner cache key computed from the
// recorded file's header equals the one computed from the in-memory trace.
func TestGoldenTraceRoundTrip(t *testing.T) {
	cfg := core.FastTrack(4, 2, 1)
	dir := t.TempDir()
	for _, tr := range goldenTraces(t) {
		t.Run(tr.Name, func(t *testing.T) {
			// Text round trip.
			var txt bytes.Buffer
			if err := tr.Write(&txt); err != nil {
				t.Fatal(err)
			}
			fromTxt, err := trace.Read(bytes.NewReader(txt.Bytes()))
			if err != nil {
				t.Fatal(err)
			}
			if fromTxt.Fingerprint() != tr.Fingerprint() {
				t.Fatal("text round trip changed the fingerprint")
			}

			// Binary round trip (via file, as users would).
			path := filepath.Join(dir, filepath.Base(tr.Name)+".ftt")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := trace.EncodeBinary(f, tr); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			rd, err := trace.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer rd.Close()
			if rd.Header() != tr.Header() {
				t.Fatalf("recorded header %+v != in-memory %+v", rd.Header(), tr.Header())
			}

			// Cache-key equality: a recorded trace must share result-cache
			// entries with its in-memory twin.
			if got, want := runner.TraceKey(cfg, rd, core.TraceOptions{}), runner.TraceKey(cfg, tr, core.TraceOptions{}); got != want {
				t.Fatalf("cache key mismatch:\n%s\n%s", got, want)
			}

			// Result equality: streaming replay of the file == in-memory
			// replay, bit for bit.
			direct, err := core.RunTrace(context.Background(), cfg, tr, core.TraceOptions{})
			if err != nil {
				t.Fatal(err)
			}
			streamed, err := core.RunTrace(context.Background(), cfg, rd, core.TraceOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(direct, streamed) {
				t.Fatalf("streamed result differs from in-memory:\n%+v\n%+v", direct, streamed)
			}

			// And the text decode replays identically too.
			textual, err := core.RunTrace(context.Background(), cfg, fromTxt, core.TraceOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(direct, textual) {
				t.Fatal("text-decoded replay differs from in-memory")
			}
		})
	}
}

// TestRunTraceSurfacesStreamError: a truncated FTT1 file must fail the
// replay, not return a quietly partial Result.
func TestRunTraceSurfacesStreamError(t *testing.T) {
	tr := goldenTraces(t)[0]
	var buf bytes.Buffer
	if err := trace.EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cut.ftt")
	if err := os.WriteFile(path, buf.Bytes()[:buf.Len()-15], 0o644); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := core.RunTrace(context.Background(), core.FastTrack(4, 2, 1), rd, core.TraceOptions{}); err == nil {
		t.Fatal("truncated trace file should fail the replay")
	}
}
