package core

import (
	"context"
	"strings"
	"testing"

	"fasttrack/internal/matrixgen"
	"fasttrack/internal/workloads/dataflow"
)

func TestConfigStrings(t *testing.T) {
	cases := []struct {
		cfg  Config
		want string
	}{
		{Hoplite(8), "Hoplite"},
		{FastTrack(8, 2, 1), "FT(64,2,1)"},
		{FastTrack(4, 2, 2).WithVariant(VariantInject), "FT(16,2,2)-inject"},
		{MultiChannel(8, 3), "Hoplite-3x"},
		{MultiChannel(8, 1), "Hoplite"},
	}
	for _, c := range cases {
		if got := c.cfg.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestBuildAllKinds(t *testing.T) {
	for _, cfg := range []Config{
		Hoplite(4), FastTrack(4, 2, 1), FastTrack(8, 2, 2),
		FastTrack(8, 2, 1).WithVariant(VariantInject), MultiChannel(4, 2),
	} {
		net, err := cfg.Build()
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		if net.NumPEs() != cfg.N*cfg.N {
			t.Errorf("%s: %d PEs", cfg, net.NumPEs())
		}
	}
	if _, err := FastTrack(8, 7, 1).Build(); err == nil {
		t.Error("invalid D should fail to build")
	}
	if _, err := (Config{Kind: Kind(99), N: 4}).Build(); err == nil {
		t.Error("unknown kind should fail")
	}
}

func TestSpecConsistency(t *testing.T) {
	dev := Virtex7()
	for _, cfg := range []Config{Hoplite(8), FastTrack(8, 2, 1), MultiChannel(8, 3)} {
		spec, err := cfg.Spec()
		if err != nil {
			t.Fatalf("%s: %v", cfg, err)
		}
		l, f := spec.Resources()
		if l <= 0 || f <= 0 {
			t.Errorf("%s: zero resources", cfg)
		}
		if mhz := spec.ClockMHz(dev); mhz <= 0 || mhz > dev.ClockCeilingMHz {
			t.Errorf("%s: clock %v", cfg, mhz)
		}
	}
	// Iso-wiring pairs must agree on wire factor.
	ft1, _ := FastTrack(8, 2, 1).Spec()
	h3, _ := MultiChannel(8, 3).Spec()
	if ft1.WireFactor() != h3.WireFactor() {
		t.Errorf("FT(64,2,1) wire factor %d != Hoplite-3x %d", ft1.WireFactor(), h3.WireFactor())
	}
}

func TestRunSynthetic(t *testing.T) {
	res, err := RunSynthetic(context.Background(), FastTrack(4, 2, 1), SyntheticOptions{
		Pattern: "RANDOM", Rate: 0.3, PacketsPerPE: 50, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 16*50 {
		t.Errorf("delivered %d", res.Delivered)
	}
	if _, err := RunSynthetic(context.Background(), Hoplite(4), SyntheticOptions{Pattern: "bogus"}); err == nil ||
		!strings.Contains(err.Error(), "unknown pattern") {
		t.Errorf("bad pattern error = %v", err)
	}
	// Dimension-constrained patterns are validated against the built
	// network: BITCOMPL is undefined on a 6×6 torus.
	if _, err := RunSynthetic(context.Background(), Hoplite(6), SyntheticOptions{
		Pattern: "BITCOMPL", Rate: 0.3, PacketsPerPE: 10, Seed: 1,
	}); err == nil || !strings.Contains(err.Error(), "power-of-two") {
		t.Errorf("BITCOMPL on 6x6 error = %v", err)
	}
}

func TestRunTrace(t *testing.T) {
	m := matrixgen.Circuit("t", 200, 5, 1)
	tr, err := dataflow.Trace(m, 4, 4, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hop, err := RunTrace(context.Background(), Hoplite(4), tr, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ft, err := RunTrace(context.Background(), FastTrack(4, 2, 1), tr, TraceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hop.Cycles <= 0 || ft.Cycles <= 0 {
		t.Fatal("zero completion time")
	}
	if ft.Cycles > hop.Cycles {
		t.Errorf("FastTrack (%d cycles) should not lose to Hoplite (%d) on a dataflow trace",
			ft.Cycles, hop.Cycles)
	}
}

func TestConfigEdgeCases(t *testing.T) {
	if s := (Config{Kind: Kind(42)}).String(); !strings.Contains(s, "42") {
		t.Errorf("unknown kind string %q", s)
	}
	if _, err := (Config{Kind: Kind(42), N: 4}).Spec(); err == nil {
		t.Error("Spec on unknown kind should fail")
	}
	// Default width is 256 bits.
	spec, err := Hoplite(8).Spec()
	if err != nil {
		t.Fatal(err)
	}
	ref := fpgaLUTs(t, Hoplite(8).WithWidth(256))
	got, _ := spec.Resources()
	if got != ref {
		t.Errorf("default width resources %d != explicit 256b %d", got, ref)
	}
	// Pipeline validation propagates from the fasttrack config.
	if _, err := FastTrack(8, 2, 1).WithPipeline(99).Build(); err == nil {
		t.Error("absurd pipeline depth should be rejected")
	}
}

func fpgaLUTs(t *testing.T, cfg Config) int {
	t.Helper()
	s, err := cfg.Spec()
	if err != nil {
		t.Fatal(err)
	}
	l, _ := s.Resources()
	return l
}

func TestRunSyntheticRegulated(t *testing.T) {
	res, err := RunSynthetic(context.Background(), Hoplite(4), SyntheticOptions{
		Pattern: "RANDOM", Rate: 1.0, PacketsPerPE: 50, Seed: 2,
		RegulateRate: 0.1, RegulateBurst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if offered := float64(res.Injected) / (float64(res.Cycles) * 16); offered > 0.11 {
		t.Errorf("regulated run injected at %.3f, above the 0.1 cap", offered)
	}
	// Non-positive rates mean "regulation off" (documented semantics).
	off, err := RunSynthetic(context.Background(), Hoplite(4), SyntheticOptions{
		Pattern: "RANDOM", Rate: 1, PacketsPerPE: 50, Seed: 2, RegulateRate: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if off.Injected <= res.Injected && off.Cycles >= res.Cycles {
		t.Error("unregulated run should finish faster than the regulated one")
	}
}

func TestRunTraceGeometryMismatch(t *testing.T) {
	m := matrixgen.Circuit("t", 100, 4, 1)
	tr, err := dataflow.Trace(m, 4, 4, dataflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunTrace(context.Background(), Hoplite(8), tr, TraceOptions{}); err == nil {
		t.Error("16-PE trace on a 64-PE network should fail")
	}
}
