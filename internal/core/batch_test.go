package core_test

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/monitor"
)

// TestBatchGoldenMatrix is the batched path's bit-exactness contract: for a
// matrix of network families × patterns × rates (below and at saturation) ×
// batch widths, every lockstep result must DeepEqual the per-job
// RunSynthetic result — all Result fields, counters, and float accumulation
// order included. Per-instance seeds differ so lockstep neighbours never
// shadow each other.
func TestBatchGoldenMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("golden matrix is slow")
	}
	configs := []core.Config{
		core.Hoplite(8),
		core.FastTrack(8, 2, 2),
		core.FastTrack(8, 2, 1).WithVariant(core.VariantInject),
	}
	for _, cfg := range configs {
		for _, pattern := range []string{"RANDOM", "TRANSPOSE"} {
			for _, rate := range []float64{0.05, 1.0} {
				for _, width := range []int{1, 4, 16} {
					cfg, pattern, rate, width := cfg, pattern, rate, width
					t.Run(fmt.Sprintf("%s/%s/r%v/b%d", cfg, pattern, rate, width), func(t *testing.T) {
						t.Parallel()
						optsList := make([]core.SyntheticOptions, width)
						for i := range optsList {
							optsList[i] = core.SyntheticOptions{
								Pattern: pattern, Rate: rate, PacketsPerPE: 40,
								Seed: 7 + uint64(i),
							}
						}
						sb, err := core.NewSyntheticBatch(cfg, width)
						if err != nil {
							t.Fatal(err)
						}
						got, err := sb.Run(context.Background(), optsList)
						if err != nil {
							t.Fatal(err)
						}
						for i, o := range optsList {
							want, err := core.RunSynthetic(context.Background(), cfg, o)
							if err != nil {
								t.Fatal(err)
							}
							if !reflect.DeepEqual(got[i], want) {
								t.Fatalf("instance %d diverges from per-job run\nbatched: %+v\nper-job: %+v",
									i, got[i], want)
							}
						}
					})
				}
			}
		}
	}
}

// TestBatchMixedSpecs runs one lockstep batch whose instances differ in
// pattern, rate, and seed — instances drain at very different cycles, so
// this exercises retirement and compaction of the live set.
func TestBatchMixedSpecs(t *testing.T) {
	cfg := core.FastTrack(8, 2, 1)
	optsList := []core.SyntheticOptions{
		{Pattern: "RANDOM", Rate: 0.02, PacketsPerPE: 30, Seed: 1},
		{Pattern: "TRANSPOSE", Rate: 1.0, PacketsPerPE: 60, Seed: 2},
		{Pattern: "RANDOM", Rate: 0.5, PacketsPerPE: 10, Seed: 3},
		{Pattern: "BITCOMPL", Rate: 0.1, PacketsPerPE: 45, Seed: 4},
		{Pattern: "RANDOM", Rate: 1.0, PacketsPerPE: 25, Seed: 5, MaxCycles: 200},
	}
	sb, err := core.NewSyntheticBatch(cfg, len(optsList))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sb.Run(context.Background(), optsList)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range optsList {
		want, err := core.RunSynthetic(context.Background(), cfg, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("instance %d diverges\nbatched: %+v\nper-job: %+v", i, got[i], want)
		}
	}
}

// TestBatchReuseGolden reruns a harness three times on the same jobs: Reset
// must restore the exact post-construction state, so every rerun is
// bit-identical to the first (and to the per-job path, covered above). A
// second pass with different jobs in between guards against state leaking
// through the slabs.
func TestBatchReuseGolden(t *testing.T) {
	for _, cfg := range []core.Config{core.Hoplite(8), core.FastTrack(8, 2, 2)} {
		cfg := cfg
		t.Run(cfg.String(), func(t *testing.T) {
			jobs := []core.SyntheticOptions{
				{Pattern: "RANDOM", Rate: 1.0, PacketsPerPE: 30, Seed: 11},
				{Pattern: "TRANSPOSE", Rate: 0.05, PacketsPerPE: 30, Seed: 12},
			}
			other := []core.SyntheticOptions{
				{Pattern: "BITCOMPL", Rate: 0.3, PacketsPerPE: 50, Seed: 99},
				{Pattern: "RANDOM", Rate: 0.7, PacketsPerPE: 20, Seed: 98},
			}
			sb, err := core.NewSyntheticBatch(cfg, len(jobs))
			if err != nil {
				t.Fatal(err)
			}
			first, err := sb.Run(context.Background(), jobs)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sb.Run(context.Background(), other); err != nil {
				t.Fatal(err)
			}
			again, err := sb.Run(context.Background(), jobs)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(first, again) {
				t.Fatalf("reused harness diverges\nfirst: %+v\nagain: %+v", first, again)
			}
		})
	}
}

// TestBatchChunksOverCapacity runs more jobs than the harness width; Run
// must chunk and still match the per-job path job for job.
func TestBatchChunksOverCapacity(t *testing.T) {
	cfg := core.Hoplite(8)
	var jobs []core.SyntheticOptions
	for i := 0; i < 7; i++ {
		jobs = append(jobs, core.SyntheticOptions{
			Pattern: "RANDOM", Rate: 0.4, PacketsPerPE: 20, Seed: uint64(i + 1),
		})
	}
	sb, err := core.NewSyntheticBatch(cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sb.Run(context.Background(), jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range jobs {
		want, err := core.RunSynthetic(context.Background(), cfg, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("job %d diverges", i)
		}
	}
}

// TestBatchableRejections documents the capability boundary.
func TestBatchableRejections(t *testing.T) {
	base := core.SyntheticOptions{Pattern: "RANDOM", Rate: 0.5, PacketsPerPE: 10, Seed: 1}
	if !core.Batchable(core.Hoplite(8), base) {
		t.Fatal("plain hoplite job should be batchable")
	}
	if core.Batchable(core.MultiChannel(8, 2), base) {
		t.Fatal("multi-channel has no batch constructor")
	}
	dense := base
	dense.Engine = core.EngineDense
	if core.Batchable(core.Hoplite(8), dense) {
		t.Fatal("dense engine is the reference, not batchable")
	}
	sharded := base
	sharded.Shards = 2
	if core.Batchable(core.Hoplite(8), sharded) {
		t.Fatal("sharded jobs compose with batching at the job level")
	}
	reg := base
	reg.RegulateRate = 0.1
	if core.Batchable(core.Hoplite(8), reg) {
		t.Fatal("regulated workloads need the per-job plumbing")
	}
	observed := base
	observed.Observer = monitor.NewCollector(8, 8)
	if !core.Batchable(core.Hoplite(8), observed) {
		t.Fatal("observed jobs batch (lockstep steps instances in deterministic order)")
	}

	sb, err := core.NewSyntheticBatch(core.Hoplite(8), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Run(context.Background(), []core.SyntheticOptions{sharded}); err == nil {
		t.Fatal("Run accepted an un-batchable job")
	}
	if _, err := core.NewSyntheticBatch(core.MultiChannel(8, 2), 2); err == nil {
		t.Fatal("NewSyntheticBatch accepted multi-channel")
	}
}

// TestBatchObserverGolden is the batch observer contract: running observed
// jobs through the lockstep path must leave Results bit-identical to
// RunSynthetic with the same observer arrangement, and each job's monitor
// Collector must accumulate identical deterministic totals — batched sweeps
// feed live telemetry instead of silently dropping it.
func TestBatchObserverGolden(t *testing.T) {
	cfg := core.Hoplite(8)
	const width = 4
	optsList := make([]core.SyntheticOptions, width)
	cols := make([]*monitor.Collector, width)
	for i := range optsList {
		cols[i] = monitor.NewCollector(8, 8)
		optsList[i] = core.SyntheticOptions{
			Pattern: "RANDOM", Rate: 0.4, PacketsPerPE: 30,
			Seed: 11 + uint64(i), Observer: cols[i],
		}
	}
	sb, err := core.NewSyntheticBatch(cfg, width)
	if err != nil {
		t.Fatal(err)
	}
	got, err := sb.Run(context.Background(), optsList)
	if err != nil {
		t.Fatal(err)
	}

	// deterministic strips wall-clock fields; everything left must match the
	// per-job run bit for bit.
	deterministic := func(s monitor.Snapshot) monitor.Snapshot {
		s.WallMS = 0
		return s
	}
	for i := range optsList {
		ref := monitor.NewCollector(8, 8)
		refOpts := optsList[i]
		refOpts.Observer = ref
		want, err := core.RunSynthetic(context.Background(), cfg, refOpts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("job %d result diverges with observers attached", i)
		}
		bs, rs := deterministic(cols[i].Snapshot()), deterministic(ref.Snapshot())
		if !reflect.DeepEqual(bs, rs) {
			t.Fatalf("job %d observer totals diverge:\nbatch: %+v\nref:   %+v", i, bs, rs)
		}
	}
}
