package core_test

import (
	"context"
	"fmt"

	"fasttrack/internal/core"
	"fasttrack/internal/matrixgen"
	"fasttrack/internal/workloads/dataflow"
)

// Build the paper's headline FastTrack configuration and inspect its FPGA
// cost on the Virtex-7 model.
func ExampleConfig_Spec() {
	cfg := core.FastTrack(8, 2, 1).WithWidth(256)
	spec, err := cfg.Spec()
	if err != nil {
		panic(err)
	}
	luts, ffs := spec.Resources()
	fmt.Printf("%s: %d LUTs, %d FFs, wires x%d\n", cfg, luts, ffs, spec.WireFactor())
	// Output:
	// FT(64,2,1): 104448 LUTs, 150016 FFs, wires x3
}

// Run deterministic synthetic traffic and read the paper's metrics.
func ExampleRunSynthetic() {
	res, err := core.RunSynthetic(context.Background(), core.FastTrack(4, 2, 1), core.SyntheticOptions{
		Pattern:      "RANDOM",
		Rate:         0.2,
		PacketsPerPE: 100,
		Seed:         7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered %d packets, conservation holds: %v\n",
		res.Delivered, res.Delivered == res.Injected)
	// Output:
	// delivered 1600 packets, conservation holds: true
}

// Replay an application trace with dependency-driven injection.
func ExampleRunTrace() {
	m := matrixgen.Circuit("demo", 256, 5, 11)
	tr, err := dataflow.Trace(m, 4, 4, dataflow.Options{})
	if err != nil {
		panic(err)
	}
	hop, err := core.RunTrace(context.Background(), core.Hoplite(4), tr, core.TraceOptions{})
	if err != nil {
		panic(err)
	}
	ft, err := core.RunTrace(context.Background(), core.FastTrack(4, 2, 1), tr, core.TraceOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("FastTrack no slower than Hoplite: %v\n", ft.Cycles <= hop.Cycles)
	// Output:
	// FastTrack no slower than Hoplite: true
}
