// Package core is the public face of the FastTrack reproduction: a single
// configuration type that can build any of the paper's NoCs (baseline
// Hoplite, FastTrack FT(N²,D,R) in both router variants, multi-channel
// Hoplite), evaluate its FPGA cost/frequency/power on the Virtex-7 model,
// and run synthetic or application-trace workloads on it.
//
// Typical use:
//
//	cfg := core.FastTrack(8, 2, 1)            // FT(64,2,1)
//	net, _ := cfg.Build()                     // cycle-accurate network
//	res, _ := core.RunSynthetic(context.Background(), cfg, core.SyntheticOptions{
//	    Pattern: "RANDOM", Rate: 0.5, PacketsPerPE: 1000, Seed: 1,
//	})
//	fmt.Println(res.SustainedRate, res.AvgLatency)
package core

import (
	"context"
	"fmt"

	"fasttrack/internal/fasttrack"
	"fasttrack/internal/faults"
	"fasttrack/internal/fpga"
	"fasttrack/internal/hoplite"
	"fasttrack/internal/multichannel"
	"fasttrack/internal/noc"
	"fasttrack/internal/obs"
	"fasttrack/internal/regulate"
	"fasttrack/internal/reliability"
	"fasttrack/internal/sim"
	"fasttrack/internal/telemetry"
	"fasttrack/internal/trace"
	"fasttrack/internal/traffic"
)

// Re-exported vocabulary so callers need only this package.
type (
	// Network is the cycle-accurate NoC interface.
	Network = noc.Network
	// Packet is the unit of transfer.
	Packet = noc.Packet
	// Coord is a torus coordinate.
	Coord = noc.Coord
	// Result is a simulation summary.
	Result = sim.Result
	// Trace is an application communication trace.
	Trace = trace.Trace
	// TraceSource is a replayable trace: an in-memory *Trace or a
	// streaming binary trace.Reader (FTT1 file).
	TraceSource = trace.Source
	// Variant selects the FastTrack router microarchitecture.
	Variant = fasttrack.Variant
	// Device is an FPGA technology model.
	Device = fpga.Device
	// FaultConfig is a deterministic fault-injection schedule.
	FaultConfig = faults.Config
	// FaultWindow is a per-PE stuck-at / freeze interval.
	FaultWindow = faults.Window
	// RetryConfig tunes the resilient-delivery (retransmission) layer.
	RetryConfig = reliability.Config
	// Engine selects the simulation path (EngineSparse or EngineDense).
	Engine = sim.Engine
	// Observer receives cycle-level telemetry events (internal/telemetry).
	Observer = telemetry.Observer
)

// FastTrack router variants.
const (
	VariantFull   = fasttrack.VariantFull
	VariantInject = fasttrack.VariantInject
)

// Simulation engine paths (see sim.Engine).
const (
	EngineSparse = sim.EngineSparse
	EngineDense  = sim.EngineDense
)

// Kind selects the network family.
type Kind uint8

// Network families.
const (
	KindHoplite Kind = iota
	KindFastTrack
	KindMultiChannel
)

// Config fully describes a NoC instance.
type Config struct {
	Kind Kind
	// N is the torus width; the NoC is N×N.
	N int
	// D and R parameterize FastTrack (express length, depopulation).
	D, R int
	// Variant selects the FastTrack router microarchitecture.
	Variant Variant
	// Channels is the replication factor for KindMultiChannel.
	Channels int
	// WidthBits is the datapath width used by the FPGA cost/clock/power
	// models (cycle behaviour is width-independent); 0 means 256.
	WidthBits int
	// ExpressPipeline adds register stages to FastTrack express links
	// (§VII Hyperflex discussion): higher clock, longer express latency.
	ExpressPipeline int
}

// Hoplite returns the baseline configuration for an n×n torus.
func Hoplite(n int) Config { return Config{Kind: KindHoplite, N: n} }

// FastTrack returns an FT(n², d, r) configuration with Full routers.
func FastTrack(n, d, r int) Config {
	return Config{Kind: KindFastTrack, N: n, D: d, R: r, Variant: VariantFull}
}

// MultiChannel returns a k-channel Hoplite configuration.
func MultiChannel(n, k int) Config {
	return Config{Kind: KindMultiChannel, N: n, Channels: k}
}

// WithWidth returns a copy of c with the datapath width set.
func (c Config) WithWidth(bits int) Config {
	c.WidthBits = bits
	return c
}

// WithVariant returns a copy of c with the FastTrack router variant set.
func (c Config) WithVariant(v Variant) Config {
	c.Variant = v
	return c
}

// WithPipeline returns a copy of c with extra express-link register stages.
func (c Config) WithPipeline(stages int) Config {
	c.ExpressPipeline = stages
	return c
}

func (c Config) widthBits() int {
	if c.WidthBits == 0 {
		return 256
	}
	return c.WidthBits
}

// String renders the paper's notation for the configuration.
func (c Config) String() string {
	switch c.Kind {
	case KindHoplite:
		return "Hoplite"
	case KindFastTrack:
		s := fmt.Sprintf("FT(%d,%d,%d)", c.N*c.N, c.D, c.R)
		if c.Variant == VariantInject {
			s += "-inject"
		}
		return s
	case KindMultiChannel:
		if c.Channels <= 1 {
			return "Hoplite"
		}
		return fmt.Sprintf("Hoplite-%dx", c.Channels)
	}
	return fmt.Sprintf("Config(kind=%d)", c.Kind)
}

// Build constructs the cycle-accurate network.
func (c Config) Build() (Network, error) {
	switch c.Kind {
	case KindHoplite:
		return hoplite.New(c.N, c.N)
	case KindFastTrack:
		top, err := fasttrack.NewTopology(c.N, c.D, c.R)
		if err != nil {
			return nil, err
		}
		return fasttrack.New(fasttrack.Config{
			Topology: top, Variant: c.Variant, ExpressPipeline: c.ExpressPipeline,
		})
	case KindMultiChannel:
		return multichannel.New(c.N, c.N, c.Channels)
	}
	return nil, fmt.Errorf("core: unknown network kind %d", c.Kind)
}

// Spec returns the FPGA-model view of the configuration for cost,
// frequency, routability and power queries.
func (c Config) Spec() (fpga.NoCSpec, error) {
	switch c.Kind {
	case KindHoplite:
		return fpga.HopliteSpec(c.N, c.widthBits(), 1), nil
	case KindFastTrack:
		s, err := fpga.FastTrackSpec(c.N, c.D, c.R, c.widthBits(), c.Variant)
		if err == nil {
			s.FT.ExpressPipeline = c.ExpressPipeline
		}
		return s, err
	case KindMultiChannel:
		return fpga.HopliteSpec(c.N, c.widthBits(), c.Channels), nil
	}
	return fpga.NoCSpec{}, fmt.Errorf("core: unknown network kind %d", c.Kind)
}

// Virtex7 returns the paper's target device model.
func Virtex7() *Device { return fpga.Virtex7_485T() }

// SyntheticOptions parameterizes RunSynthetic.
type SyntheticOptions struct {
	// Pattern is a paper label: RANDOM, LOCAL, BITCOMPL, TRANSPOSE (also
	// TORNADO).
	Pattern string
	// Rate is the per-PE injection probability per cycle (0..1].
	Rate float64
	// PacketsPerPE is the per-PE generation quota (paper: 1000).
	PacketsPerPE int
	// Seed fixes the random streams.
	Seed uint64
	// MaxCycles optionally bounds the run.
	MaxCycles int64
	// RegulateRate, when positive, throttles every PE with a HopliteRT-
	// style token bucket to this injection rate (RegulateBurst packets of
	// burst, default 1).
	RegulateRate  float64
	RegulateBurst float64
	// Faults, when non-nil, wraps the network in the deterministic fault
	// injector (internal/faults).
	Faults *FaultConfig
	// Retry, when non-nil, wraps the workload in the resilient-delivery
	// layer (internal/reliability) so drop faults are recovered by
	// retransmission.
	Retry *RetryConfig
	// CheckConservation enables the engine's per-cycle invariant audit.
	CheckConservation bool
	// MaxPacketAge, when positive, arms the starvation watchdog: fail fast
	// if any packet stays in flight longer than this many cycles.
	MaxPacketAge int64
	// ConvergeWindow and ConvergeTol, when ConvergeWindow is positive, arm
	// the engine's opt-in convergence-based early exit (sim.Options): a
	// saturation run stops once windowed throughput and latency trend are
	// stationary, instead of draining the full packet quota. 0 keeps the
	// fixed-budget path bit-exact.
	ConvergeWindow int64
	ConvergeTol    float64
	// Engine selects the simulation path: EngineSparse (default, optimized)
	// or EngineDense (the bit-exact straight-line reference).
	Engine Engine
	// Shards, when >1, steps the network on that many parallel row-band
	// workers (sim.Options.Shards). Bit-exact with the sequential engine,
	// so cache keys ignore it; a wall-clock knob only.
	Shards int
	// Observer, when non-nil, receives cycle-level telemetry events; see
	// internal/telemetry for the event vocabulary and ready-made observers
	// (packet tracer, link-utilization counters, windowed metrics).
	Observer Observer
}

// TraceOptions parameterizes RunTrace.
type TraceOptions struct {
	// MaxCycles optionally bounds the replay; 0 means the engine default.
	MaxCycles int64
	// Engine selects the simulation path (see SyntheticOptions.Engine).
	Engine Engine
	// Shards, when >1, steps the network on that many parallel row-band
	// workers (see SyntheticOptions.Shards).
	Shards int
	// Observer, when non-nil, receives cycle-level telemetry events.
	Observer Observer
	// StreamWindow caps resident events when the source is replayed
	// streaming (not an in-memory *Trace); 0 means
	// trace.DefaultStreamWindow. See trace.StreamOptions.Window for the
	// exactness contract.
	StreamWindow int
}

// RunSynthetic builds cfg's network and drives it with a statistical
// workload, returning the paper's throughput/latency measurements. ctx
// cancels cooperatively: the sweep scheduler (internal/runner) cancels it
// when a sibling job fails and the engine aborts within a few thousand
// cycles. ctx deliberately stays out of SyntheticOptions so cache keys never
// depend on it; pass context.Background() when cancellation is not needed.
func RunSynthetic(ctx context.Context, cfg Config, opts SyntheticOptions) (Result, error) {
	// One context lookup per run: when an ftserve job trace rides the ctx,
	// the engine's wall clock becomes a sim_run span on it. The cycle loop
	// itself stays untouched.
	defer obs.TraceFrom(ctx).Begin("sim_run").Attr("config", cfg.String()).End()
	pat, err := traffic.ByName(opts.Pattern)
	if err != nil {
		return Result{}, err
	}
	net, err := cfg.Build()
	if err != nil {
		return Result{}, err
	}
	if err := traffic.ValidateDims(pat, net.Width(), net.Height()); err != nil {
		return Result{}, err
	}
	if opts.Faults != nil {
		net, err = faults.Wrap(net, *opts.Faults)
		if err != nil {
			return Result{}, err
		}
	}
	var wl sim.Workload = traffic.NewSynthetic(net.Width(), net.Height(), pat, opts.Rate, opts.PacketsPerPE, opts.Seed)
	if opts.Retry != nil {
		wl = reliability.Wrap(wl, net.Width(), *opts.Retry)
	}
	if opts.RegulateRate > 0 {
		wl, err = regulate.New(wl, net.NumPEs(), opts.RegulateRate, opts.RegulateBurst)
		if err != nil {
			return Result{}, err
		}
	}
	return sim.Run(net, wl, sim.Options{
		MaxCycles:         opts.MaxCycles,
		CheckConservation: opts.CheckConservation,
		MaxPacketAge:      opts.MaxPacketAge,
		Context:           ctx,
		ConvergeWindow:    opts.ConvergeWindow,
		ConvergeTol:       opts.ConvergeTol,
		Engine:            opts.Engine,
		Shards:            opts.Shards,
		Observer:          opts.Observer,
	})
}

// RunTrace builds cfg's network and replays an application trace with
// dependency-driven injection, returning completion time and latency
// statistics. ctx cancels cooperatively (see RunSynthetic).
//
// src is any trace.Source. An in-memory *Trace replays through the
// materialized Workload; anything else (typically a *trace.Reader over an
// FTT1 file) replays through trace.Stream in O(StreamWindow) memory, so a
// billion-event recorded trace never has to fit in RAM. The two paths are
// bit-exact whenever the window does not bind (golden-tested).
func RunTrace(ctx context.Context, cfg Config, src TraceSource, opts TraceOptions) (Result, error) {
	defer obs.TraceFrom(ctx).Begin("sim_run").Attr("config", cfg.String()).End()
	net, err := cfg.Build()
	if err != nil {
		return Result{}, err
	}
	var wl sim.Workload
	var stream *trace.Stream
	if tr, ok := src.(*trace.Trace); ok {
		wl, err = trace.NewWorkload(tr, net.Width(), net.Height())
	} else {
		stream, err = trace.NewStream(src, net.Width(), net.Height(), trace.StreamOptions{Window: opts.StreamWindow})
		wl = stream
	}
	if err != nil {
		return Result{}, err
	}
	res, err := sim.Run(net, wl, sim.Options{
		MaxCycles: opts.MaxCycles,
		Context:   ctx,
		Engine:    opts.Engine,
		Shards:    opts.Shards,
		Observer:  opts.Observer,
	})
	// A failed stream reports Done to stop the engine; surface its error
	// over the (misleadingly clean) partial result.
	if stream != nil && stream.Err() != nil {
		return Result{}, stream.Err()
	}
	return res, err
}
