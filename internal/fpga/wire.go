package fpga

import "math"

// This file reproduces the paper's §III wire characterization experiments:
// the delay of a routed net as a function of distance (segmented
// interconnect), the "virtual express link" experiment of Fig 4 (a register
// pair with programmable equidistant LUT hops between them), and the
// "physical express link" experiment of Fig 6 (a pipeline of LUT-FF stages
// with a bypass wire skipping several of them).

// RouteDelay returns the delay (ns) of one routed net spanning distance
// SLICEs: the minimum-delay cover of the segmented wire library (overshoot
// allowed, as a router may tap off a longer segment). Long connections ride
// the fast long-line tracks and amortize the fabric entry cost — the
// heterogeneity FastTrack exploits.
func (d *Device) RouteDelay(distance int) float64 {
	if distance <= 0 {
		return d.RouteEntry
	}
	// dp[i] is the minimum segment delay covering at least i SLICEs.
	dp := make([]float64, distance+1)
	for i := 1; i <= distance; i++ {
		best := math.Inf(1)
		for _, seg := range d.Segments {
			c := seg.Delay
			if rest := i - seg.Length; rest > 0 {
				c += dp[rest]
			}
			if c < best {
				best = c
			}
		}
		dp[i] = best
	}
	return d.RouteEntry + dp[distance]
}

// VirtualExpressPath returns the register-to-register critical path (ns) of
// the Fig 3/4 experiment: two FFs placed `distance` SLICEs apart with
// `hops` equidistant LUT stages between them. Every LUT hop pays the
// fabric exit/re-entry penalty, which is what makes SMART-style virtual
// bypass unattractive on FPGAs.
func (d *Device) VirtualExpressPath(distance, hops int) float64 {
	if hops < 0 {
		hops = 0
	}
	spans := hops + 1
	span := distance / spans
	if span < 1 {
		span = 1
	}
	t := d.ClkToQ + d.Setup + float64(hops)*(d.LUTDelay+d.HopPenalty)
	t += float64(spans) * d.RouteDelay(span)
	return t
}

// VirtualExpressMHz is VirtualExpressPath expressed as a frequency, clamped
// to the clock ceiling (Fig 4's y-axis).
func (d *Device) VirtualExpressMHz(distance, hops int) float64 {
	return d.freqMHz(d.VirtualExpressPath(distance, hops))
}

// PhysicalExpressPath returns the critical path (ns) of the Fig 5/6
// experiment: a fully pipelined chain of tightly-coupled LUT-FF pairs
// spaced `distance` SLICEs apart, with an express bypass wire skipping
// `hops` of them. The clock is set by the slower of the local stage path
// and the bypass wire; because the bypass is a single routed net it rides
// the fast long tracks and degrades linearly rather than paying per-stage
// penalties.
func (d *Device) PhysicalExpressPath(distance, hops int) float64 {
	// Local stage: FF -> LUT (same primitive pair) -> next FF one span away.
	stage := d.ClkToQ + d.Setup + d.LUTDelay + d.RouteDelay(distance)
	if hops <= 0 {
		return stage
	}
	bypass := d.ClkToQ + d.Setup + d.RouteDelay(distance*hops)
	if bypass > stage {
		return bypass
	}
	return stage
}

// PhysicalExpressMHz is PhysicalExpressPath as a frequency (Fig 6's y-axis).
func (d *Device) PhysicalExpressMHz(distance, hops int) float64 {
	return d.freqMHz(d.PhysicalExpressPath(distance, hops))
}

// MaxExpressReach returns the longest bypass distance (SLICEs) that still
// meets the target frequency — the §III observation that the fabric
// supports 32–64 SLICE bypass hops at 250 MHz and close-to-full-chip
// traversal in the uncongested case.
func (d *Device) MaxExpressReach(targetMHz float64) int {
	period := 1000.0 / targetMHz
	reach := 0
	for dist := 1; dist <= d.SliceRows; dist++ {
		if d.ClkToQ+d.Setup+d.RouteDelay(dist) <= period {
			reach = dist
		}
	}
	return reach
}
