package fpga

// Dynamic power model (Table II, Fig 19). Power splits into a register
// component (clock + data toggling of the pipeline FFs) and a wire
// component proportional to total driven wire length × datapath width —
// the express links toggle 2× more registers and drive much longer wires,
// which is why FT(64,2,1) draws ~2.5× Hoplite's power despite similar
// clocks. Coefficients are calibrated to Table II's Vivado wattages.
const (
	// wattsPerFFGHz is dynamic power per flip-flop at 1 GHz (W).
	wattsPerFFGHz = 8.8e-5
	// wattsPerSliceBitGHz is dynamic power per (SLICE of wire length ×
	// datapath bit) at 1 GHz (W).
	wattsPerSliceBitGHz = 1.2e-5
)

// WireUnits returns the total driven wire length of the NoC in
// SLICE·bit units: every link's physical span times the datapath width.
func (s NoCSpec) WireUnits(dev *Device) float64 {
	pitch := float64(2 * dev.tilePitch(s.N)) // folded layout span per hop
	routers := float64(s.N * s.N)
	// Short links: one E and one S link per router per channel.
	units := 2 * routers * pitch * float64(s.channels())
	if s.FT != nil {
		t := s.FT.Topology
		exSpan := pitch * float64(t.D)
		// Express links: one X link per express column entry per row, and
		// symmetrically for Y — N/R entries per ring, N rings, 2 dims.
		perDim := float64(s.N) * float64(s.N/t.R)
		units += 2 * perDim * exSpan
	}
	return units * float64(s.WidthBits)
}

// PowerW returns the modeled dynamic power (W) at the NoC's achievable
// clock with saturated activity (the operating point of Table II).
func (s NoCSpec) PowerW(dev *Device) float64 {
	return s.PowerAtMHz(dev, s.ClockMHz(dev))
}

// PowerAtMHz returns dynamic power at an explicit clock frequency.
func (s NoCSpec) PowerAtMHz(dev *Device, mhz float64) float64 {
	_, ffs := s.Resources()
	ghz := mhz / 1000
	return ghz * (wattsPerFFGHz*float64(ffs) + wattsPerSliceBitGHz*s.WireUnits(dev))
}

// EnergyJ returns the energy (J) to run a workload of the given cycle count
// at the NoC's achievable clock — the paper's Fig 19 methodology (Vivado
// power × measured routing time).
func (s NoCSpec) EnergyJ(dev *Device, cycles int64) float64 {
	mhz := s.ClockMHz(dev)
	if mhz == 0 {
		return 0
	}
	seconds := float64(cycles) / (mhz * 1e6)
	return s.PowerAtMHz(dev, mhz) * seconds
}
