package fpga

import (
	"fmt"

	"fasttrack/internal/fasttrack"
)

// RouterCost returns the LUT and FF cost of one router of the given class
// and variant at the given datapath width in bits.
//
// The linear models are calibrated to the paper's published numbers and hit
// Table II exactly:
//
//	Hoplite (white):   2 LUT/bit + 12,   5 FF/bit + 17   (78 LUTs @32b,
//	                   34K LUTs / 83K FFs for the 8×8 256b NoC)
//	FT Full black:     6 LUT/bit + 96,   9 FF/bit + 40   (288 LUTs @32b,
//	                   104K/150K for FT(64,2,1) @256b — the paper's
//	                   "5:1 mux plus 4× 4:1 muxes" structure)
//	FT Full grey:      4 LUT/bit + 54,   7 FF/bit + 30   (FT(64,2,2) lands
//	                   on 69K LUTs / 117K FFs)
//	FTlite inject:     4 LUT/bit + 63 black (191 LUTs @32b, the low end of
//	                   Table I's FastTrack range), 3 LUT/bit + 38 grey.
func RouterCost(class fasttrack.Class, variant fasttrack.Variant, widthBits int) (luts, ffs int) {
	w := widthBits
	switch class {
	case fasttrack.ClassWhite:
		return 2*w + 12, 5*w + 17
	case fasttrack.ClassGreyX, fasttrack.ClassGreyY:
		if variant == fasttrack.VariantInject {
			return 3*w + 38, 7*w + 30
		}
		return 4*w + 54, 7*w + 30
	case fasttrack.ClassBlack:
		if variant == fasttrack.VariantInject {
			return 4*w + 63, 9*w + 40
		}
		return 6*w + 96, 9*w + 40
	}
	panic(fmt.Sprintf("fpga: unknown router class %v", class))
}

// NoCSpec describes a NoC implementation whose FPGA cost, frequency,
// routability and power the model evaluates. Exactly one of FT or plain
// (multi-channel) Hoplite applies: FT == nil means Channels parallel
// Hoplite planes (Channels 0 is treated as 1).
type NoCSpec struct {
	// Name is a display label, e.g. "FT(64,2,1)" or "Hoplite-3x".
	Name string
	// N is the torus width (the NoC is N×N).
	N int
	// WidthBits is the datapath width.
	WidthBits int
	// FT selects a FastTrack configuration; nil means Hoplite.
	FT *fasttrack.Config
	// Channels is the replication factor for multi-channel Hoplite.
	Channels int
}

// HopliteSpec returns the spec for a k-channel Hoplite N×N NoC.
func HopliteSpec(n, widthBits, k int) NoCSpec {
	name := "Hoplite"
	if k > 1 {
		name = fmt.Sprintf("Hoplite-%dx", k)
	}
	return NoCSpec{Name: name, N: n, WidthBits: widthBits, Channels: k}
}

// FastTrackSpec returns the spec for an FT(N²,D,R) NoC.
func FastTrackSpec(n, d, r, widthBits int, variant fasttrack.Variant) (NoCSpec, error) {
	top, err := fasttrack.NewTopology(n, d, r)
	if err != nil {
		return NoCSpec{}, err
	}
	cfg := fasttrack.Config{Topology: top, Variant: variant}
	return NoCSpec{Name: top.String(), N: n, WidthBits: widthBits, FT: &cfg}, nil
}

// channels returns the effective Hoplite replication factor.
func (s NoCSpec) channels() int {
	if s.Channels < 1 {
		return 1
	}
	return s.Channels
}

// Resources returns total NoC LUT and FF cost across all routers. A
// multi-channel Hoplite additionally pays client-side steering logic per
// PE: an injection demux and a K:1 exit serializer over the full datapath
// (this is why the paper finds the replicated NoCs cost more LUTs than
// FastTrack at equal wiring, §VI Fig 14).
func (s NoCSpec) Resources() (luts, ffs int) {
	if s.FT == nil {
		l, f := RouterCost(fasttrack.ClassWhite, fasttrack.VariantFull, s.WidthBits)
		n := s.N * s.N * s.channels()
		luts, ffs = l*n, f*n
		if k := s.channels(); k > 1 {
			perClient := (k-1)*s.WidthBits/2 + 16
			luts += s.N * s.N * perClient
			ffs += s.N * s.N * (s.WidthBits + 8) // exit skid register
		}
		return luts, ffs
	}
	t := s.FT.Topology
	for y := 0; y < s.N; y++ {
		for x := 0; x < s.N; x++ {
			l, f := RouterCost(t.ClassAt(x, y), s.FT.Variant, s.WidthBits)
			luts += l
			ffs += f
		}
	}
	return luts, ffs
}

// WireFactor returns the number of wiring tracks per channel relative to a
// single Hoplite plane: D/R+1 for FastTrack, K for K-channel Hoplite.
func (s NoCSpec) WireFactor() int {
	if s.FT == nil {
		return s.channels()
	}
	return s.FT.Topology.WireFactor()
}

// WireCount returns the paper's Fig 14b metric: wiring tracks per channel
// normalized to bit-lanes per unit width — datawidth × wire factor / 32.
func (s NoCSpec) WireCount() float64 {
	return float64(s.WidthBits*s.WireFactor()) / 32
}
