package fpga

// Cost and timing model for the classic buffered mesh router implemented in
// internal/buffered — the CONNECT/Split-Merge-style design point of Table I
// and Fig 1. Buffered routers pay for FIFOs (LUTRAM/SRL), five-port output
// crossbars, and deep arbitration logic; their clock is router-limited, not
// wire-limited. Constants are calibrated so a 32-bit router lands between
// BLESS (1090 LUTs) and Split-Merge (1785 LUTs) from Table I.

// BufferedRouterCost returns LUT/FF cost of one 5-port buffered mesh router
// at the given datapath width and input FIFO depth.
func BufferedRouterCost(widthBits, depth int) (luts, ffs int) {
	if depth < 1 {
		depth = 1
	}
	w := widthBits
	// Five output crossbars (5:1 muxes, two LUT levels per bit), SRL-based
	// input FIFOs (one LUT per bit per 16 entries per port), and
	// credit/arbitration control.
	srl := (depth + 15) / 16
	luts = 5*2*w + 5*w*srl + 40*depth + 180
	// Port output registers plus FIFO occupancy counters and credits.
	ffs = 7*w + 20*depth + 90
	return luts, ffs
}

// BufferedMeshClockMHz estimates the achievable clock of the buffered mesh:
// the critical path runs through FIFO read, route compute, arbitration and
// the 5:1 crossbar — several LUT levels plus two fabric crossings — and is
// largely independent of wire spans (mesh links are short).
func (d *Device) BufferedMeshClockMHz(n, widthBits int) float64 {
	router := d.ClkToQ + d.Setup + 5*d.LUTDelay + 2*d.HopPenalty
	link := d.ClkToQ + d.Setup + d.HopPenalty + d.RouteDelay(2*d.tilePitch(n))
	path := router
	if link > path {
		path = link
	}
	return d.freqMHz(path)
}
