package fpga

import (
	"testing"

	"fasttrack/internal/fasttrack"
)

// TestPipelineRaisesExpressLimitedClock: FT(64,4,1) is clock-limited by its
// long express wires; one Hyperflex stage must raise the clock, and the
// clock can never exceed the short-link/router limit of the same design
// with trivially short express wires.
func TestPipelineRaisesExpressLimitedClock(t *testing.T) {
	dev := Virtex7_485T()
	base, err := FastTrackSpec(8, 4, 1, 128, fasttrack.VariantFull)
	if err != nil {
		t.Fatal(err)
	}
	f0 := base.ClockMHz(dev)
	piped := base
	cfg := *base.FT
	cfg.ExpressPipeline = 1
	piped.FT = &cfg
	f1 := piped.ClockMHz(dev)
	if f1 <= f0 {
		t.Errorf("pipelined clock %.0f should exceed baseline %.0f", f1, f0)
	}
	deep := piped
	cfg2 := *base.FT
	cfg2.ExpressPipeline = 4
	deep.FT = &cfg2
	if f4 := deep.ClockMHz(dev); f4 < f1 {
		t.Errorf("deeper pipelining should not reduce clock: %.0f vs %.0f", f4, f1)
	}
}

// TestClockMonotonicity: frequency must not increase with datapath width or
// with express length D at equal width.
func TestClockMonotonicity(t *testing.T) {
	dev := Virtex7_485T()
	prev := 1e9
	for _, w := range []int{32, 64, 128, 256} {
		s, err := FastTrackSpec(8, 2, 1, w, fasttrack.VariantFull)
		if err != nil {
			t.Fatal(err)
		}
		f := s.ClockMHz(dev)
		if f > prev+1e-9 {
			t.Errorf("width %d: clock %.1f rose above narrower design %.1f", w, f, prev)
		}
		prev = f
	}
	d2, _ := FastTrackSpec(8, 2, 1, 128, fasttrack.VariantFull)
	d4, _ := FastTrackSpec(8, 4, 1, 128, fasttrack.VariantFull)
	if d4.ClockMHz(dev) > d2.ClockMHz(dev) {
		t.Errorf("longer express wires should not clock faster")
	}
}

// TestPowerScalesWithWidthAndWires: more bits and more wiring mean more
// power at equal frequency.
func TestPowerScalesWithWidthAndWires(t *testing.T) {
	dev := Virtex7_485T()
	narrow, _ := FastTrackSpec(8, 2, 1, 64, fasttrack.VariantFull)
	wide, _ := FastTrackSpec(8, 2, 1, 256, fasttrack.VariantFull)
	if wide.PowerAtMHz(dev, 300) <= narrow.PowerAtMHz(dev, 300) {
		t.Error("wider datapath should draw more power")
	}
	ft, _ := FastTrackSpec(8, 2, 1, 256, fasttrack.VariantFull)
	hop := HopliteSpec(8, 256, 1)
	if ft.PowerAtMHz(dev, 300) <= hop.PowerAtMHz(dev, 300) {
		t.Error("express wiring should draw more power than baseline")
	}
}

// TestMultiChannelCostsIncludeClientSteering: Hoplite-3x must cost more
// LUTs than 3 bare channels (the client muxes), and more than FT(64,2,1)
// at iso-wiring — the paper's Fig 14 claim.
func TestMultiChannelCostsIncludeClientSteering(t *testing.T) {
	h1 := HopliteSpec(8, 256, 1)
	h3 := HopliteSpec(8, 256, 3)
	l1, f1 := h1.Resources()
	l3, f3 := h3.Resources()
	if l3 <= 3*l1 || f3 <= 3*f1 {
		t.Errorf("3x cost (%d/%d) should exceed 3 bare channels (%d/%d)", l3, f3, 3*l1, 3*f1)
	}
	ft, err := FastTrackSpec(8, 2, 1, 256, fasttrack.VariantFull)
	if err != nil {
		t.Fatal(err)
	}
	lft, _ := ft.Resources()
	if lft >= l3 {
		t.Errorf("FT(64,2,1) %d LUTs should undercut Hoplite-3x %d", lft, l3)
	}
}

// TestEnergyMethodology: energy = power × time; doubling the workload
// cycles doubles energy at fixed clock.
func TestEnergyMethodology(t *testing.T) {
	dev := Virtex7_485T()
	s := HopliteSpec(8, 256, 1)
	e1 := s.EnergyJ(dev, 10000)
	e2 := s.EnergyJ(dev, 20000)
	if e2 < 1.99*e1 || e2 > 2.01*e1 {
		t.Errorf("energy not linear in cycles: %g vs %g", e1, e2)
	}
	unroutable, _ := FastTrackSpec(8, 2, 1, 4096, fasttrack.VariantFull)
	if unroutable.EnergyJ(dev, 1000) != 0 {
		t.Error("unroutable design should report zero energy")
	}
}

// TestPeakBandwidthOrdering feeds the Fig 1 scatter: FastTrack's 4-ported
// switches beat Hoplite's 2-ported ones at similar clocks.
func TestPeakBandwidthOrdering(t *testing.T) {
	dev := Virtex7_485T()
	hop := HopliteSpec(8, 32, 1)
	ft, _ := FastTrackSpec(8, 2, 1, 32, fasttrack.VariantFull)
	if ft.PeakBandwidth(dev) <= hop.PeakBandwidth(dev) {
		t.Errorf("FT peak bandwidth %.2f should exceed Hoplite %.2f",
			ft.PeakBandwidth(dev), hop.PeakBandwidth(dev))
	}
}

// TestVirtualVsPhysicalExpress reproduces §III's core comparison across the
// whole grid: for every (distance, hops) pair with hops ≥ 1, the physical
// bypass is at least as fast as threading the LUTs.
func TestVirtualVsPhysicalExpress(t *testing.T) {
	dev := Virtex7_485T()
	for hops := 1; hops <= 8; hops++ {
		for d := 1; d <= 64; d *= 2 {
			virt := dev.VirtualExpressMHz(d*(hops+1), hops)
			phys := dev.PhysicalExpressMHz(d, hops)
			if phys+1e-9 < virt {
				t.Errorf("d=%d hops=%d: physical %.0f slower than virtual %.0f", d, hops, phys, virt)
			}
		}
	}
}
