package fpga

import "math"

// Implementation model: routers are locked to a uniform grid of rectangular
// tiles (§V), the unidirectional torus uses a folded layout so every
// short link spans two tile pitches, and an express link of length D spans
// D times that. Links are registered at both ends (the paper pipelines
// router inputs and outputs), so each link's path is FF → routed net → FF
// plus the CLB entry penalty, and the router's internal path is the output
// multiplexer stack.

// tilePitch returns the router tile pitch in SLICEs along the chip's
// narrower axis, which bounds channel capacity and wire spans.
func (d *Device) tilePitch(n int) int {
	p := d.SliceCols / n
	if q := d.SliceRows / n; q < p {
		p = q
	}
	if p < 1 {
		p = 1
	}
	return p
}

// Utilization returns the fraction of the modeled routing tracks a NoC
// channel consumes between adjacent tiles. Above 1.0 the design does not
// route (Fig 10's NA cells).
func (s NoCSpec) Utilization(dev *Device) float64 {
	pitch := dev.tilePitch(s.N)
	capacity := float64(pitch * dev.TracksPerSlicePitch)
	return float64(s.WidthBits*s.WireFactor()) / capacity
}

// Routable reports whether the NoC fits the device's wiring capacity.
func (s NoCSpec) Routable(dev *Device) bool {
	if l, f := s.Resources(); l > dev.LUTs || f > dev.FFs {
		return false
	}
	return s.Utilization(dev) <= 1.0
}

// muxLevels returns the LUT depth of the router's widest output multiplexer.
func (s NoCSpec) muxLevels() int {
	if s.FT == nil {
		return 1 // Hoplite's 3:1 muxes fit one LUT6 level per bit
	}
	return 2 // the FT router's 5:1 mux needs two levels
}

// ClockMHz returns the achievable NoC frequency on dev, or 0 when the
// design does not route. Congestion from wide datapaths derates the short
// links (they compete for the general fabric); express links are point-to-
// point nets on the fast long-line tracks and see no congestion derate —
// the technology asymmetry the paper measures in §III.
func (s NoCSpec) ClockMHz(dev *Device) float64 {
	if !s.Routable(dev) {
		return 0
	}
	util := s.Utilization(dev)
	derate := 1 + 0.5*util*util
	// Wide datapaths also slow control decode/fanout.
	fanout := 0.05 * math.Log2(float64(s.WidthBits))

	span := 2 * dev.tilePitch(s.N) // folded torus: neighbours sit 2 pitches apart

	router := dev.ClkToQ + dev.Setup + float64(s.muxLevels())*dev.LUTDelay + dev.HopPenalty
	short := dev.ClkToQ + dev.Setup + dev.HopPenalty + dev.RouteDelay(span)*derate + fanout
	path := math.Max(router, short)

	if s.FT != nil {
		// Express links may be pipelined with Hyperflex-style registers
		// living inside the interconnect (§VII): each extra stage splits
		// the wire without paying the CLB entry penalty mid-flight.
		segs := s.FT.ExpressPipeline + 1
		endpoint := dev.HopPenalty
		if segs > 1 {
			endpoint = 0.15
		}
		express := dev.ClkToQ + dev.Setup + endpoint +
			dev.RouteDelay(span*s.FT.Topology.D/segs) + fanout
		path = math.Max(path, express)
	}
	return dev.freqMHz(path)
}

// PeakBandwidth returns the switch-level peak bandwidth in packets/ns used
// by the paper's Fig 1 scatter: output ports per router × packets/cycle ×
// clock.
func (s NoCSpec) PeakBandwidth(dev *Device) float64 {
	ports := 2.0 * float64(s.channels()) // Hoplite: E and S
	if s.FT != nil {
		ports = 4.0 // ESh, EEx, SSh, SEx on black routers
	}
	return ports * s.ClockMHz(dev) / 1000
}
