package fpga

import (
	"math"
	"testing"

	"fasttrack/internal/fasttrack"
)

func mustFT(t *testing.T, n, d, r, w int, v fasttrack.Variant) NoCSpec {
	t.Helper()
	s, err := FastTrackSpec(n, d, r, w, v)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// within asserts got is inside tolerance (fractional) of want.
func within(t *testing.T, label string, got, want, tol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero reference", label)
	}
	if r := math.Abs(got-want) / math.Abs(want); r > tol {
		t.Errorf("%s: got %.4g, want %.4g (off by %.0f%%, tol %.0f%%)",
			label, got, want, 100*r, 100*tol)
	}
}

// TestTable2ResourceAnchors pins the cost model to the paper's Table II:
// an 8×8 256-bit NoC on the Virtex-7 485T.
func TestTable2ResourceAnchors(t *testing.T) {
	cases := []struct {
		spec       NoCSpec
		luts, ffs  int
		mhz, watts float64
	}{
		{HopliteSpec(8, 256, 1), 34000, 83000, 344, 9.8},
		{mustFT(t, 8, 2, 1, 256, fasttrack.VariantFull), 104000, 150000, 320, 25.1},
		{mustFT(t, 8, 2, 2, 256, fasttrack.VariantFull), 69000, 117000, 323, 19.9},
	}
	dev := Virtex7_485T()
	for _, c := range cases {
		luts, ffs := c.spec.Resources()
		within(t, c.spec.Name+" LUTs", float64(luts), float64(c.luts), 0.02)
		within(t, c.spec.Name+" FFs", float64(ffs), float64(c.ffs), 0.02)
		within(t, c.spec.Name+" MHz", c.spec.ClockMHz(dev), c.mhz, 0.20)
		within(t, c.spec.Name+" W", c.spec.PowerW(dev), c.watts, 0.30)
	}
}

// TestTable2Ratios checks the paper's headline cost ratios: FastTrack is
// 1.7–2.6× larger than Hoplite, runs at almost the same clock (≥0.85×),
// and draws 2–2.5× the power.
func TestTable2Ratios(t *testing.T) {
	dev := Virtex7_485T()
	hop := HopliteSpec(8, 256, 1)
	ft1 := mustFT(t, 8, 2, 1, 256, fasttrack.VariantFull)
	ft2 := mustFT(t, 8, 2, 2, 256, fasttrack.VariantFull)

	hl, _ := hop.Resources()
	l1, _ := ft1.Resources()
	l2, _ := ft2.Resources()
	if r := float64(l1) / float64(hl); r < 1.7 || r > 3.2 {
		t.Errorf("FT(64,2,1)/Hoplite LUT ratio %.2f outside [1.7, 3.2]", r)
	}
	if r := float64(l2) / float64(hl); r < 1.4 || r > 2.6 {
		t.Errorf("FT(64,2,2)/Hoplite LUT ratio %.2f outside [1.4, 2.6]", r)
	}
	if r := ft1.ClockMHz(dev) / hop.ClockMHz(dev); r < 0.80 || r > 1.05 {
		t.Errorf("FT(64,2,1)/Hoplite clock ratio %.2f outside [0.80, 1.05]", r)
	}
	if r := ft1.PowerW(dev) / hop.PowerW(dev); r < 1.8 || r > 3.0 {
		t.Errorf("FT(64,2,1)/Hoplite power ratio %.2f outside [1.8, 3.0]", r)
	}
}

// TestTable1RouterAnchors pins per-router 32-bit costs: Hoplite ≈78 LUTs,
// FastTrack 191–290 LUTs (Inject to Full).
func TestTable1RouterAnchors(t *testing.T) {
	l, _ := RouterCost(fasttrack.ClassWhite, fasttrack.VariantFull, 32)
	within(t, "Hoplite 32b LUTs", float64(l), 78, 0.05)
	lo, _ := RouterCost(fasttrack.ClassBlack, fasttrack.VariantInject, 32)
	hi, _ := RouterCost(fasttrack.ClassBlack, fasttrack.VariantFull, 32)
	if lo < 170 || lo > 215 {
		t.Errorf("FT inject 32b LUTs = %d, want ≈191", lo)
	}
	if hi < 260 || hi > 310 {
		t.Errorf("FT full 32b LUTs = %d, want ≈290", hi)
	}
}

// TestWireCharacterizationShape pins the §III facts the design rests on.
func TestWireCharacterizationShape(t *testing.T) {
	dev := Virtex7_485T()

	// Fig 4: hop-free registered wire: near the ceiling at distance 1,
	// ~250 MHz near full-chip distance.
	if f := dev.VirtualExpressMHz(1, 0); f < 600 {
		t.Errorf("d=1 h=0: %f MHz, want near ceiling", f)
	}
	f256 := dev.VirtualExpressMHz(256, 0)
	within(t, "d=256 h=0 MHz", f256, 250, 0.25)

	// Fig 4: adding LUT hops collapses frequency; ≥2 hops plateau low.
	f1 := dev.VirtualExpressMHz(64, 1)
	f2 := dev.VirtualExpressMHz(64, 2)
	f8 := dev.VirtualExpressMHz(64, 8)
	if !(f1 > f2 && f2 > f8) {
		t.Errorf("frequency should fall with hops: %f %f %f", f1, f2, f8)
	}
	if f8 > 250 {
		t.Errorf("h=8 should be deep in the plateau, got %f MHz", f8)
	}

	// Fig 6: a physical bypass degrades gracefully — bypassing 8 stages is
	// far faster than threading 8 LUT hops.
	virt := dev.VirtualExpressMHz(8*8, 8) // 8 hops across 64 SLICEs total
	phys := dev.PhysicalExpressMHz(8, 8)  // bypass of 8 stages, 8 SLICEs apart
	if phys < 2*virt {
		t.Errorf("physical bypass (%f MHz) should be ≫ virtual (%f MHz)", phys, virt)
	}

	// §III: the fabric supports 32–64 SLICE bypass spans at 250 MHz at
	// least; full-chip traversal remains possible at 250 MHz.
	if reach := dev.MaxExpressReach(250); reach < 64 {
		t.Errorf("250 MHz express reach = %d SLICEs, want ≥ 64", reach)
	}

	// Longer routes must never be faster.
	prev := 0.0
	for dist := 1; dist <= 300; dist++ {
		dl := dev.RouteDelay(dist)
		if dl < prev {
			t.Fatalf("RouteDelay not monotonic at %d: %f < %f", dist, dl, prev)
		}
		prev = dl
	}
}

// TestRoutabilityAnchors pins Fig 10 / §VI-B facts.
func TestRoutabilityAnchors(t *testing.T) {
	dev := Virtex7_485T()

	// §VI-B: a 4×4 NoC with D=2 supports 512-bit datawidths.
	s, err := FastTrackSpec(4, 2, 1, 512, fasttrack.VariantFull)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Routable(dev) {
		t.Errorf("4×4 FT D=2 at 512b should route (util %.2f)", s.Utilization(dev))
	}

	// Table II: the 8×8 256b FT(64,2,1) routes; 384b should not.
	ok := mustFT(t, 8, 2, 1, 256, fasttrack.VariantFull)
	if !ok.Routable(dev) {
		t.Errorf("8×8 FT(64,2,1) 256b should route (util %.2f)", ok.Utilization(dev))
	}
	bad := mustFT(t, 8, 2, 1, 384, fasttrack.VariantFull)
	if bad.Routable(dev) {
		t.Errorf("8×8 FT(64,2,1) 384b should NOT route (util %.2f)", bad.Utilization(dev))
	}

	// Wider always has ≥ utilization; larger N reduces peak width.
	if mustFT(t, 16, 2, 1, 256, fasttrack.VariantFull).Routable(dev) {
		t.Errorf("16×16 FT D=2 at 256b should not route")
	}
}
