// Package fpga models the FPGA technology facts the FastTrack paper
// measures on a Xilinx Virtex-7 485T with Vivado: the segmented, speed-
// heterogeneous routing fabric (§III), router LUT/FF costs (Tables I/II),
// achievable clock frequency, channel routability (Fig 10), and dynamic
// power (Table II, Fig 19).
//
// The model is analytical and calibrated against the paper's published
// anchor points. It deliberately reproduces the *relative* technology
// facts FastTrack's argument rests on — long wires amortize the cost of
// entering the routing fabric, through-LUT hops are expensive, express
// bypass wires degrade gracefully with distance — rather than attempting
// gate-level accuracy.
package fpga

// Device describes an FPGA chip. All delay figures are nanoseconds and all
// distances are in SLICE units, following the paper's Figs 4 and 6.
type Device struct {
	// Name identifies the part.
	Name string
	// SliceCols and SliceRows give the logic fabric dimensions in SLICEs.
	SliceCols, SliceRows int
	// LUTs and FFs are the total logic resources.
	LUTs, FFs int
	// TracksPerSlicePitch is the modeled number of NoC-usable routing
	// tracks per SLICE of router tile pitch: a channel crossing between
	// adjacent tiles of pitch P can carry P×TracksPerSlicePitch bit-lanes.
	// It calibrates the routability model (Fig 10).
	TracksPerSlicePitch int
	// ClockCeilingMHz is the peak frequency of the clock network; the paper
	// reports ≈710 MHz for the Virtex-7 485T.
	ClockCeilingMHz float64

	// Timing parameters (ns).
	ClkToQ   float64 // register clock-to-out
	Setup    float64 // register setup
	LUTDelay float64 // one LUT logic level
	// HopPenalty is the cost of leaving the routing fabric into a CLB and
	// re-entering it — the paper's central observation that "getting onto
	// and off the interconnect fabric is large".
	HopPenalty float64
	// RouteEntry is the fixed switchbox entry/exit cost of one routed net.
	RouteEntry float64

	// Segments lists the heterogeneous wire segment library, longest
	// first. This is the "not all wires on the FPGA are equal" premise.
	Segments []Segment
}

// Segment is one wire type of the segmented interconnect: it spans Length
// SLICEs in Delay nanoseconds.
type Segment struct {
	Name   string
	Length int
	Delay  float64
}

// Virtex7_485T returns the device model used throughout the paper,
// calibrated to its published measurements.
func Virtex7_485T() *Device {
	return &Device{
		Name:      "xc7vx485t-2",
		SliceCols: 217, SliceRows: 350,
		LUTs: 303600, FFs: 607200,
		TracksPerSlicePitch: 34,
		ClockCeilingMHz:     710,

		ClkToQ:     0.10,
		Setup:      0.10,
		LUTDelay:   0.35,
		HopPenalty: 0.95,
		RouteEntry: 0.30,

		Segments: []Segment{
			{Name: "long24", Length: 24, Delay: 0.30},
			{Name: "long12", Length: 12, Delay: 0.24},
			{Name: "hex", Length: 6, Delay: 0.16},
			{Name: "quad", Length: 4, Delay: 0.12},
			{Name: "double", Length: 2, Delay: 0.08},
			{Name: "single", Length: 1, Delay: 0.06},
		},
	}
}

// freqMHz converts a critical-path delay in ns to MHz, clamped to the
// device's clock ceiling.
func (d *Device) freqMHz(pathNS float64) float64 {
	if pathNS <= 0 {
		return d.ClockCeilingMHz
	}
	f := 1000.0 / pathNS
	if f > d.ClockCeilingMHz {
		return d.ClockCeilingMHz
	}
	return f
}
