// Runtime invariant checking. The engine's original contract — a network
// that loses a packet is a bug, not a statistic — was enforced only once at
// end of run. This file promotes it to a continuous audit: per-cycle packet
// conservation, per-delivery identity checks (no duplicate, phantom,
// corrupted or misdelivered packets), and a starvation watchdog that bounds
// the age of any in-flight packet. Failures surface as *InvariantError with
// a diagnostic snapshot of the oldest in-flight packets, so a broken router
// is reported at the cycle it misbehaves instead of after the cycle limit.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"fasttrack/internal/noc"
	"fasttrack/internal/stats"
)

// Sentinel categories for invariant failures; match with errors.Is.
var (
	// ErrStalled fires when no packet is injected or delivered for
	// Options.StallLimit cycles while work remains (livelock tripwire).
	ErrStalled = errors.New("sim: no forward progress (possible livelock)")
	// ErrConservation fires when injected != delivered + lost + in-flight.
	ErrConservation = errors.New("sim: packet conservation violated")
	// ErrDuplicate fires when a packet is delivered twice.
	ErrDuplicate = errors.New("sim: duplicate delivery")
	// ErrMisdelivered fires when a delivered packet's destination does not
	// match its injected copy (address corruption / wrong-node exit).
	ErrMisdelivered = errors.New("sim: packet misdelivered")
	// ErrCorrupt fires when a delivered packet's identity fields disagree
	// with its injected copy, or when a network emits a packet it was never
	// given.
	ErrCorrupt = errors.New("sim: delivered packet does not match any injected packet")
	// ErrStarvation fires when an in-flight packet exceeds
	// Options.MaxPacketAge cycles without being delivered.
	ErrStarvation = errors.New("sim: in-flight packet exceeded age bound")
)

// SnapshotPacket is one in-flight packet captured in a diagnostic snapshot.
type SnapshotPacket struct {
	ID       int64
	Src, Dst noc.Coord
	// Gen and Inject are the packet's generation and injection cycles; Age
	// is cycles spent in the network at the time of the snapshot.
	Gen, Inject, Age int64
	Deflections      int32
}

// InvariantError reports a violated runtime invariant. Err is one of the
// sentinel categories above (errors.Is works through it); Snapshot holds the
// oldest in-flight packets at the failing cycle when tracking was enabled.
type InvariantError struct {
	Err      error
	Cycle    int64
	Detail   string
	Snapshot []SnapshotPacket
}

// Error renders the category, detail, cycle, and snapshot.
func (e *InvariantError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: %s (cycle %d)", e.Err, e.Detail, e.Cycle)
	for _, s := range e.Snapshot {
		fmt.Fprintf(&b, "\n  in-flight packet %d %s->%s age %d (gen %d, injected %d, %d deflections)",
			s.ID, s.Src, s.Dst, s.Age, s.Gen, s.Inject, s.Deflections)
	}
	return b.String()
}

// Unwrap exposes the sentinel category to errors.Is/As.
func (e *InvariantError) Unwrap() error { return e.Err }

// FaultyNetwork is implemented by fault-injecting network wrappers
// (internal/faults). The engine uses it to keep conservation auditing honest
// under injected loss: FaultCounts().Lost() joins the conservation equation
// and DrainLost evicts destroyed packets from in-flight tracking so the
// watchdog does not report them as starving.
type FaultyNetwork interface {
	noc.Network
	FaultCounts() stats.FaultCounts
	// DrainLost returns the IDs of packets destroyed by faults since the
	// last call.
	DrainLost() []int64
}

// RecoveryReporter is implemented by workload wrappers that retransmit lost
// packets (internal/reliability); Run surfaces the counts in Result.
type RecoveryReporter interface {
	RecoveryCounts() stats.RecoveryCounts
}

// WorkloadUnwrapper lets the engine discover optional interfaces (such as
// RecoveryReporter) through decorating workloads like regulate.Workload.
type WorkloadUnwrapper interface {
	Unwrap() Workload
}

// findRecoveryReporter walks the workload decorator chain.
func findRecoveryReporter(wl Workload) (RecoveryReporter, bool) {
	for wl != nil {
		if r, ok := wl.(RecoveryReporter); ok {
			return r, true
		}
		u, ok := wl.(WorkloadUnwrapper)
		if !ok {
			break
		}
		wl = u.Unwrap()
	}
	return nil, false
}

// watchdogPeriod is how often (in cycles) the age watchdog scans the
// in-flight set; a full scan every cycle would be O(in-flight) per cycle for
// no extra precision beyond the period.
const watchdogPeriod = 16

// snapshotLimit caps the diagnostic snapshot size.
const snapshotLimit = 12

// tracked is the engine-side record of one in-flight packet.
type tracked struct {
	p      noc.Packet
	inject int64
}

// auditor maintains the in-flight packet set and runs the per-cycle checks.
// A nil *auditor disables all checking at zero cost.
type auditor struct {
	conserve bool
	maxAge   int64
	faulty   FaultyNetwork // nil when the network injects no faults

	inflight  map[int64]tracked
	delivered map[int64]struct{} // only populated when conserve
}

// newAuditor returns nil when no per-cycle checking is requested.
func newAuditor(net noc.Network, opts Options) *auditor {
	fn, _ := net.(FaultyNetwork)
	if !opts.CheckConservation && opts.MaxPacketAge <= 0 && fn == nil {
		return nil
	}
	a := &auditor{
		conserve: opts.CheckConservation,
		maxAge:   opts.MaxPacketAge,
		faulty:   fn,
		inflight: make(map[int64]tracked),
	}
	if a.conserve {
		a.delivered = make(map[int64]struct{})
	}
	return a
}

// lost returns the cumulative fault-destroyed packet count.
func (a *auditor) lost() int64 {
	if a.faulty == nil {
		return 0
	}
	return a.faulty.FaultCounts().Lost()
}

// onInject records an accepted injection.
func (a *auditor) onInject(p noc.Packet, now int64) {
	a.inflight[p.ID] = tracked{p: p, inject: now}
}

// onDeliver validates one delivery against its injected copy.
func (a *auditor) onDeliver(p noc.Packet, now int64) error {
	tr, ok := a.inflight[p.ID]
	if !ok {
		if !a.conserve {
			return nil // watchdog-only mode does not keep delivered IDs
		}
		cat, what := ErrCorrupt, "was never injected"
		if _, dup := a.delivered[p.ID]; dup {
			cat, what = ErrDuplicate, "was already delivered"
		}
		return &InvariantError{
			Err: cat, Cycle: now,
			Detail:   fmt.Sprintf("delivered packet %d (%s->%s) %s", p.ID, p.Src, p.Dst, what),
			Snapshot: a.snapshot(now),
		}
	}
	if a.conserve {
		if p.Dst != tr.p.Dst {
			return &InvariantError{
				Err: ErrMisdelivered, Cycle: now,
				Detail: fmt.Sprintf("packet %d injected for %s but delivered with destination %s",
					p.ID, tr.p.Dst, p.Dst),
				Snapshot: a.snapshot(now),
			}
		}
		if p.Src != tr.p.Src || p.Gen != tr.p.Gen {
			return &InvariantError{
				Err: ErrCorrupt, Cycle: now,
				Detail: fmt.Sprintf("packet %d header corrupted in flight (src %s->%s, gen %d->%d)",
					p.ID, tr.p.Src, p.Src, tr.p.Gen, p.Gen),
				Snapshot: a.snapshot(now),
			}
		}
		a.delivered[p.ID] = struct{}{}
	}
	delete(a.inflight, p.ID)
	return nil
}

// endOfCycle drains fault-destroyed packets, audits conservation, and runs
// the age watchdog. injected/delivered are the engine's cumulative counts.
func (a *auditor) endOfCycle(net noc.Network, now, injected, delivered int64) error {
	if a.faulty != nil {
		for _, id := range a.faulty.DrainLost() {
			delete(a.inflight, id)
		}
	}
	if a.conserve {
		inFlight := int64(net.InFlight())
		if injected != delivered+a.lost()+inFlight {
			return &InvariantError{
				Err: ErrConservation, Cycle: now,
				Detail: fmt.Sprintf("injected %d != delivered %d + lost %d + in-flight %d",
					injected, delivered, a.lost(), inFlight),
				Snapshot: a.snapshot(now),
			}
		}
	}
	if a.maxAge > 0 && now%watchdogPeriod == 0 {
		for _, tr := range a.inflight {
			if now-tr.inject > a.maxAge {
				return &InvariantError{
					Err: ErrStarvation, Cycle: now,
					Detail: fmt.Sprintf("packet %d (%s->%s) in flight for %d cycles (bound %d)",
						tr.p.ID, tr.p.Src, tr.p.Dst, now-tr.inject, a.maxAge),
					Snapshot: a.snapshot(now),
				}
			}
		}
	}
	return nil
}

// snapshot captures the oldest in-flight packets, oldest first.
func (a *auditor) snapshot(now int64) []SnapshotPacket {
	if a == nil {
		return nil
	}
	out := make([]SnapshotPacket, 0, len(a.inflight))
	for _, tr := range a.inflight {
		out = append(out, SnapshotPacket{
			ID: tr.p.ID, Src: tr.p.Src, Dst: tr.p.Dst,
			Gen: tr.p.Gen, Inject: tr.inject, Age: now - tr.inject,
			Deflections: tr.p.Deflections,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Inject != out[j].Inject {
			return out[i].Inject < out[j].Inject
		}
		return out[i].ID < out[j].ID
	})
	if len(out) > snapshotLimit {
		out = out[:snapshotLimit]
	}
	return out
}
