// The sharded driver: the same per-cycle protocol as runSequential, with
// three phases fanned out over S persistent workers — workload tick+offer
// (when the workload is ShardableWorkload), network StepShard, and delivery
// statistics partitioned by source shard. Everything order-sensitive (the
// done check, audit, observer callbacks, the watchdog, convergence) stays on
// the coordinator, and every parallel reduction is integer-valued and
// merged in ascending shard order, so the Result is bit-identical to the
// sequential engine's. golden_test.go enforces that equivalence.
package sim

import (
	"fmt"
	"sync"

	"fasttrack/internal/noc"
	"fasttrack/internal/stats"
	"fasttrack/internal/telemetry"
)

// shardPool runs one closure per shard per dispatch on persistent workers.
// Shard 0 always executes on the coordinator goroutine, so a single-shard
// pool degenerates to an inline call and an S-shard dispatch wakes S-1
// workers.
type shardPool struct {
	wg   sync.WaitGroup
	work []chan func() // workers for shards 1..S-1
}

func newShardPool(s int) *shardPool {
	p := &shardPool{work: make([]chan func(), s-1)}
	for i := range p.work {
		ch := make(chan func(), 1)
		p.work[i] = ch
		go func() {
			for f := range ch {
				f()
				p.wg.Done()
			}
		}()
	}
	return p
}

// dispatch runs f(k) for every shard k and returns after all complete.
func (p *shardPool) dispatch(f func(k int)) {
	p.wg.Add(len(p.work))
	for i, ch := range p.work {
		k := i + 1
		ch <- func() { f(k) }
	}
	f(0)
	p.wg.Wait()
}

func (p *shardPool) close() {
	for _, ch := range p.work {
		close(ch)
	}
}

// shardState is one shard's slice of the engine state: its PE range, live
// list, and the integer statistics partials that merge into the Result.
type shardState struct {
	lo, hi int // PE range [lo, hi)

	live     []int
	anyOffer bool

	injected int64
	progress bool

	hist   *stats.Histogram
	latSum int64
	worst  int64
	err    error
}

// runSharded drives net with Options.Shards row-band workers.
func runSharded(net noc.Network, wl Workload, opts Options) (Result, error) {
	snet, ok := net.(noc.ShardedNetwork)
	if !ok {
		return Result{}, fmt.Errorf("sim: Shards=%d requires a noc.ShardedNetwork, %T is not one", opts.Shards, net)
	}
	if opts.Engine == EngineDense {
		return Result{}, fmt.Errorf("sim: Shards=%d is incompatible with EngineDense (the dense reference path is sequential by definition)", opts.Shards)
	}
	s, err := snet.ConfigureShards(opts.Shards)
	if err != nil {
		return Result{}, fmt.Errorf("sim: ConfigureShards(%d): %w", opts.Shards, err)
	}
	if s == 1 {
		// One row: nothing to fan out.
		return runSequential(net, wl, opts)
	}

	e := newEngine(net, wl, opts)

	// The engine's shard map mirrors the network's row bands exactly: PE i
	// sits at router i, so the network's router ranges are PE ranges.
	shards := make([]shardState, s)
	bounds := make([]int, s+1)
	peShard := make([]int32, e.numPE)
	for k := 0; k < s; k++ {
		lo, hi := snet.ShardRange(k)
		shards[k] = shardState{lo: lo, hi: hi, hist: stats.NewLatencyHistogram(opts.HistogramMax), worst: -1}
		bounds[k], bounds[k+1] = lo, hi
		for pe := lo; pe < hi; pe++ {
			peShard[pe] = int32(k)
		}
	}

	// Workload fan-out is opt-in: a ShardableWorkload that accepts the
	// network's partition ticks per shard; anything else (traces, decorator
	// chains) ticks sequentially on the coordinator while the network still
	// steps in parallel.
	swl, shardable := wl.(ShardableWorkload)
	if shardable {
		shardable = swl.ConfigureShards(bounds)
	}

	// Telemetry fan-in: router-level events emitted inside StepShard go to
	// per-shard buffers and are replayed into the real observer after the
	// step barrier, in sequential event order.
	var fan *telemetry.ShardFanIn
	if e.obs != nil {
		so, ok := net.(telemetry.ShardObservable)
		if !ok {
			return Result{}, fmt.Errorf("sim: network %T cannot fan out telemetry; run with Shards=1 or drop the observer", net)
		}
		fan = telemetry.NewShardFanIn(e.obs, s)
		so.SetShardObservers(fan.Observers())
	}

	// Inject feedback may fan out only when nobody needs a globally ordered
	// callback stream: the auditor and observer both do.
	parallelInject := shardable && e.aud == nil && e.obs == nil

	pool := newShardPool(s)
	defer pool.close()

	var now int64
	for now = 0; now < opts.MaxCycles; now++ {
		if err := e.pollCtx(now); err != nil {
			return e.res, err
		}

		// Phase 1: tick + offer.
		anyOffer := false
		if shardable {
			cyc := now
			pool.dispatch(func(k int) {
				sh := &shards[k]
				swl.TickShard(k, cyc)
				sh.live = swl.ActiveShard(k, sh.live[:0])
				sh.anyOffer = false
				for _, pe := range sh.live {
					if e.offerPE(pe, cyc) {
						sh.anyOffer = true
					}
				}
			})
			for k := range shards {
				if shards[k].anyOffer {
					anyOffer = true
				}
			}
		} else {
			e.wl.Tick(now)
			anyOffer = e.phaseOffer(now)
		}
		if !anyOffer && wl.Done() && net.InFlight() == 0 {
			break
		}

		// Phase 2: the network cycle — marks published, shards stepped in
		// parallel, links latched, events replayed in order.
		snet.BeginCycle(now)
		{
			cyc := now
			pool.dispatch(func(k int) { snet.StepShard(k, cyc) })
		}
		snet.EndCycle(now)
		if fan != nil {
			fan.Flush()
		}

		// Phase 3: inject feedback.
		progress := false
		if parallelInject {
			cyc := now
			pool.dispatch(func(k int) {
				sh := &shards[k]
				sh.injected = 0
				sh.progress = false
				for _, pe := range sh.live {
					if e.injectPE(pe, cyc) {
						sh.injected++
						sh.progress = true
					}
				}
			})
			for k := range shards {
				e.res.Injected += shards[k].injected
				progress = progress || shards[k].progress
			}
		} else if shardable {
			for k := range shards {
				for _, pe := range shards[k].live {
					if e.injectPE(pe, now) {
						e.res.Injected++
						progress = true
					}
				}
			}
		} else {
			progress = e.phaseInjectFeedback(now)
		}

		// Phase 4: deliveries. Statistics are partitioned by *source* shard
		// (each delivered packet is folded by the worker owning its source
		// PE, preserving per-source delivery order), while the
		// order-sensitive callbacks — audit, observer, workload — replay the
		// merged batch sequentially on the coordinator.
		batch := net.Delivered()
		if len(batch) > 0 {
			progress = true
			cyc := now
			statShard := func(k int) {
				sh := &shards[k]
				for i := range batch {
					p := &batch[i]
					pe := noc.PEIndex(p.Src, e.width)
					if pe < sh.lo || pe >= sh.hi {
						continue
					}
					lat := cyc - p.Gen
					if lat < 0 {
						if sh.err == nil {
							sh.err = e.errNegativeLatency(p, cyc)
						}
						continue
					}
					sh.hist.Add(lat)
					e.res.PerSource[pe].Add(float64(lat))
					sh.latSum += lat
					if lat > sh.worst {
						sh.worst = lat
					}
				}
			}
			if len(batch) >= 4*s {
				pool.dispatch(statShard)
			} else {
				// Small batches are not worth a barrier; same partials,
				// folded inline by source shard.
				for i := range batch {
					p := &batch[i]
					sh := &shards[peShard[noc.PEIndex(p.Src, e.width)]]
					lat := now - p.Gen
					if lat < 0 {
						if sh.err == nil {
							sh.err = e.errNegativeLatency(p, now)
						}
						continue
					}
					sh.hist.Add(lat)
					e.res.PerSource[noc.PEIndex(p.Src, e.width)].Add(float64(lat))
					sh.latSum += lat
					if lat > sh.worst {
						sh.worst = lat
					}
				}
			}
			for k := range shards {
				if shards[k].err != nil {
					return e.res, shards[k].err
				}
			}
			e.res.Delivered += int64(len(batch))
			for i := range batch {
				p := batch[i]
				if e.aud != nil {
					if err := e.aud.onDeliver(p, now); err != nil {
						return e.res, err
					}
				}
				if e.obs != nil {
					e.obs.OnDeliver(now, &p)
				}
				e.wl.Delivered(p, now)
			}
		}

		if err := e.phaseCycleEnd(now); err != nil {
			return e.res, err
		}
		if err := e.watchdog(now, anyOffer, progress); err != nil {
			return e.res, err
		}
		if e.opts.ConvergeWindow > 0 {
			var latSum int64
			for k := range shards {
				latSum += shards[k].latSum
			}
			if e.converged(now, latSum) {
				now++ // this cycle completed in full
				break
			}
		}
	}

	// Merge the per-shard statistics partials in ascending shard order.
	// Histogram buckets, latency sums and maxima are integers, so the merge
	// reproduces the sequential accumulation exactly.
	for k := range shards {
		sh := &shards[k]
		e.res.Latency.Merge(sh.hist)
		e.latSum += sh.latSum
		if sh.worst > e.res.WorstLatency {
			e.res.WorstLatency = sh.worst
		}
	}
	return e.finish(now)
}
