package sim_test

import (
	"fmt"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
	"fasttrack/internal/telemetry"
	"fasttrack/internal/traffic"
)

// countingObserver tallies every event kind.
type countingObserver struct {
	telemetry.Base
	injects, stalls, delivers        int64
	hops, expressHops                int64
	deflects, denied                 int64
	cycles                           int64
	lastCycle, lastInFlight          int64
	deliveredShort, deliveredExpress int64
}

func (c *countingObserver) OnInject(now int64, p *noc.Packet) { c.injects++ }
func (c *countingObserver) OnInjectStall(now int64, pe int)   { c.stalls++ }
func (c *countingObserver) OnDeliver(now int64, p *noc.Packet) {
	c.delivers++
	c.deliveredShort += int64(p.ShortHops)
	c.deliveredExpress += int64(p.ExpressHops)
}
func (c *countingObserver) OnHop(now int64, router int, out noc.Port, p *noc.Packet) {
	c.hops++
}
func (c *countingObserver) OnExpressHop(now int64, router int, out noc.Port, p *noc.Packet) {
	c.expressHops++
}
func (c *countingObserver) OnDeflect(now int64, router int, in noc.Port, p *noc.Packet) {
	c.deflects++
}
func (c *countingObserver) OnExpressDenied(now int64, router int, in noc.Port, p *noc.Packet) {
	c.denied++
}
func (c *countingObserver) OnCycleEnd(now int64, inFlight int) {
	c.cycles++
	c.lastCycle, c.lastInFlight = now, int64(inFlight)
}

// TestObserverEventTotals holds the observer event stream to the network's
// own counters on both engine paths: every wire traversal, deflection, and
// express denial the counters record must arrive as exactly one callback.
func TestObserverEventTotals(t *testing.T) {
	cfgs := []core.Config{core.Hoplite(8), core.FastTrack(8, 2, 1)}
	for _, cfg := range cfgs {
		for _, engine := range []sim.Engine{sim.EngineSparse, sim.EngineDense} {
			t.Run(fmt.Sprintf("%s/%s", cfg, engine), func(t *testing.T) {
				net, err := cfg.Build()
				if err != nil {
					t.Fatal(err)
				}
				obs := &countingObserver{}
				wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 0.3, 100, 17)
				res, err := sim.Run(net, wl, sim.Options{Engine: engine, Observer: obs})
				if err != nil {
					t.Fatal(err)
				}
				c := net.Counters()
				if obs.injects != res.Injected {
					t.Errorf("OnInject = %d, injected = %d", obs.injects, res.Injected)
				}
				if obs.stalls != c.InjectionStalls {
					t.Errorf("OnInjectStall = %d, injection stalls = %d", obs.stalls, c.InjectionStalls)
				}
				if obs.delivers != res.Delivered {
					t.Errorf("OnDeliver = %d, delivered = %d", obs.delivers, res.Delivered)
				}
				if obs.hops != c.ShortTraversals {
					t.Errorf("OnHop = %d, short traversals = %d", obs.hops, c.ShortTraversals)
				}
				if obs.expressHops != c.ExpressTraversals {
					t.Errorf("OnExpressHop = %d, express traversals = %d", obs.expressHops, c.ExpressTraversals)
				}
				var misroutes, denied int64
				for p := range c.MisroutesByInput {
					misroutes += c.MisroutesByInput[p]
					denied += c.ExpressDeniedByInput[p]
				}
				if obs.deflects != misroutes {
					t.Errorf("OnDeflect = %d, misroutes = %d", obs.deflects, misroutes)
				}
				if obs.denied != denied {
					t.Errorf("OnExpressDenied = %d, denied = %d", obs.denied, denied)
				}
				if obs.cycles != res.Cycles {
					t.Errorf("OnCycleEnd fired %d times over %d cycles", obs.cycles, res.Cycles)
				}
				if obs.lastInFlight != 0 {
					t.Errorf("final in-flight = %d, want 0 (workload drains)", obs.lastInFlight)
				}
				// Per-packet hop counts seen at delivery must also sum to the
				// link totals: nothing is left in flight.
				if obs.deliveredShort != c.ShortTraversals || obs.deliveredExpress != c.ExpressTraversals {
					t.Errorf("per-packet hops (%d, %d) != link totals (%d, %d)",
						obs.deliveredShort, obs.deliveredExpress, c.ShortTraversals, c.ExpressTraversals)
				}
			})
		}
	}
}

// TestObserverLinkStatsIntegration runs FastTrack at saturation with the
// LinkStats observer attached and requires express traffic on express-class
// links — the CSV's local/express split is the point of the report.
func TestObserverLinkStatsIntegration(t *testing.T) {
	net, err := core.FastTrack(8, 2, 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	ls := telemetry.NewLinkStats(8, 8)
	wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 1.0, 100, 17)
	res, err := sim.Run(net, wl, sim.Options{Observer: ls})
	if err != nil {
		t.Fatal(err)
	}
	c := net.Counters()
	local, express := ls.Totals()
	if local != c.ShortTraversals || express != c.ExpressTraversals {
		t.Fatalf("LinkStats totals (%d, %d) != counters (%d, %d)",
			local, express, c.ShortTraversals, c.ExpressTraversals)
	}
	if express == 0 {
		t.Fatal("saturated FastTrack recorded no express traversals")
	}
	if ls.Cycles() != res.Cycles {
		t.Fatalf("LinkStats cycles = %d, sim cycles = %d", ls.Cycles(), res.Cycles)
	}
}

// TestObserverMetricsIntegration checks the Metrics observer's cumulative
// totals agree with the run result and window boundaries tile the run.
func TestObserverMetricsIntegration(t *testing.T) {
	net, err := core.Hoplite(8).Build()
	if err != nil {
		t.Fatal(err)
	}
	m := telemetry.NewMetrics(64, 64)
	wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 0.4, 200, 17)
	res, err := sim.Run(net, wl, sim.Options{Observer: m})
	if err != nil {
		t.Fatal(err)
	}
	m.Finish()
	pts := m.Points()
	if len(pts) == 0 {
		t.Fatal("no windows recorded")
	}
	last := pts[len(pts)-1]
	if last.TotalDelivered != res.Delivered || last.TotalInjected != res.Injected {
		t.Fatalf("metrics totals (%d, %d) != result (%d, %d)",
			last.TotalDelivered, last.TotalInjected, res.Delivered, res.Injected)
	}
	var delivered int64
	for i, wp := range pts {
		delivered += wp.Delivered
		if wp.Index != i {
			t.Fatalf("window %d has index %d", i, wp.Index)
		}
		if i > 0 && wp.Start != pts[i-1].End {
			t.Fatalf("window %d starts at %d, previous ended at %d", i, wp.Start, pts[i-1].End)
		}
	}
	if delivered != res.Delivered {
		t.Fatalf("window deliveries sum to %d, result has %d", delivered, res.Delivered)
	}
}
