// Package sim drives a noc.Network cycle by cycle against a workload and
// collects the measurements the paper reports: sustained injection rate,
// average and worst-case packet latency, latency histograms, link-usage and
// deflection counters, and workload completion time.
//
// The engine's per-cycle protocol matches noc.Network: the workload offers
// at most one packet per PE, the network steps, accepted offers are consumed
// and deliveries are fed back to the workload (dependency-driven traces use
// this to unlock later sends).
package sim

import (
	"errors"
	"fmt"

	"fasttrack/internal/noc"
	"fasttrack/internal/stats"
)

// Workload produces the packets a simulation injects and observes delivery.
// Implementations: traffic.Synthetic (statistical patterns) and
// trace.Workload (application communication traces).
type Workload interface {
	// Tick runs once per cycle before offers are gathered.
	Tick(now int64)
	// Pending returns the packet PE pe wants to inject this cycle, if any.
	// The same packet must be returned every cycle until Injected is called
	// for it (offers that stall are retried).
	Pending(pe int, now int64) (noc.Packet, bool)
	// Injected reports that the pending packet at pe entered the network.
	Injected(pe int, now int64)
	// Delivered reports that p reached its destination PE.
	Delivered(p noc.Packet, now int64)
	// Done reports that the workload will produce no further packets.
	Done() bool
}

// Result summarizes one simulation run.
type Result struct {
	// Cycles is the makespan: the cycle count until the last delivery (or
	// the configured limit).
	Cycles int64
	// Injected and Delivered count packets.
	Injected  int64
	Delivered int64
	// SustainedRate is delivered packets per cycle per PE — the paper's
	// "sustained rate" axis.
	SustainedRate float64
	// AvgLatency and WorstLatency are in cycles, measured from packet
	// generation (source queueing included) to client delivery.
	AvgLatency   float64
	WorstLatency int64
	// P50 and P99 latency quantiles from the histogram.
	P50, P99 int64
	// Latency is the full latency histogram (the paper's Fig 16).
	Latency *stats.Histogram
	// PerSource[pe] accumulates latencies of packets sourced at pe, for
	// fairness analysis (deflection NoCs can favour some positions).
	PerSource []stats.Accumulator
	// Counters is a copy of the network's event counters at the end.
	Counters noc.Counters
	// TimedOut reports the run hit MaxCycles before the workload drained.
	TimedOut bool
}

// Options configures a run.
type Options struct {
	// MaxCycles bounds the run; 0 means a generous default.
	MaxCycles int64
	// StallLimit aborts with an error if no packet is injected or delivered
	// for this many consecutive cycles while work remains. It is a livelock
	// tripwire; 0 means a generous default.
	StallLimit int64
	// HistogramMax is the largest latency the histogram resolves exactly;
	// 0 means 1<<20 cycles.
	HistogramMax int64
}

func (o Options) withDefaults() Options {
	if o.MaxCycles == 0 {
		o.MaxCycles = 4 << 20
	}
	if o.StallLimit == 0 {
		o.StallLimit = 1 << 16
	}
	if o.HistogramMax == 0 {
		o.HistogramMax = 1 << 20
	}
	return o
}

// ErrStalled is wrapped by Run when the stall tripwire fires.
var ErrStalled = errors.New("sim: no forward progress (possible livelock)")

// Run drives net against wl until the workload drains or a limit is hit.
func Run(net noc.Network, wl Workload, opts Options) (Result, error) {
	opts = opts.withDefaults()
	res := Result{Latency: stats.NewLatencyHistogram(opts.HistogramMax)}
	numPE := net.NumPEs()
	res.PerSource = make([]stats.Accumulator, numPE)
	offered := make([]bool, numPE)
	var latSum float64
	var now, lastProgress int64

	for now = 0; now < opts.MaxCycles; now++ {
		wl.Tick(now)

		anyOffer := false
		for pe := 0; pe < numPE; pe++ {
			p, ok := wl.Pending(pe, now)
			offered[pe] = ok
			if ok {
				net.Offer(pe, p)
				anyOffer = true
			}
		}
		if !anyOffer && wl.Done() && net.InFlight() == 0 {
			break
		}

		net.Step(now)

		progress := false
		for pe := 0; pe < numPE; pe++ {
			if offered[pe] && net.Accepted(pe) {
				wl.Injected(pe, now)
				res.Injected++
				progress = true
			}
		}
		for _, p := range net.Delivered() {
			lat := now - p.Gen
			if lat < 0 {
				return res, fmt.Errorf("sim: packet %d delivered before generation (gen=%d now=%d)", p.ID, p.Gen, now)
			}
			res.Latency.Add(lat)
			res.PerSource[noc.PEIndex(p.Src, net.Width())].Add(float64(lat))
			latSum += float64(lat)
			if lat > res.WorstLatency {
				res.WorstLatency = lat
			}
			res.Delivered++
			wl.Delivered(p, now)
			progress = true
		}

		if progress {
			lastProgress = now
		} else if now-lastProgress > opts.StallLimit && (net.InFlight() > 0 || !wl.Done()) {
			return res, fmt.Errorf("%w: stalled for %d cycles at cycle %d (in-flight %d)",
				ErrStalled, now-lastProgress, now, net.InFlight())
		}
	}

	res.Cycles = now
	res.TimedOut = now >= opts.MaxCycles
	if res.Delivered != res.Injected && !res.TimedOut {
		return res, fmt.Errorf("sim: conservation violated: injected %d, delivered %d, in-flight %d",
			res.Injected, res.Delivered, net.InFlight())
	}
	if res.Delivered > 0 {
		res.AvgLatency = latSum / float64(res.Delivered)
	}
	if now > 0 {
		res.SustainedRate = float64(res.Delivered) / (float64(now) * float64(numPE))
	}
	res.P50 = res.Latency.Quantile(0.50)
	res.P99 = res.Latency.Quantile(0.99)
	res.Counters = *net.Counters()
	return res, nil
}
