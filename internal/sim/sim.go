// Package sim drives a noc.Network cycle by cycle against a workload and
// collects the measurements the paper reports: sustained injection rate,
// average and worst-case packet latency, latency histograms, link-usage and
// deflection counters, and workload completion time.
//
// The engine's per-cycle protocol matches noc.Network: the workload offers
// at most one packet per PE, the network steps, accepted offers are consumed
// and deliveries are fed back to the workload (dependency-driven traces use
// this to unlock later sends).
package sim

import (
	"context"
	"fmt"
	"math"

	"fasttrack/internal/noc"
	"fasttrack/internal/stats"
	"fasttrack/internal/telemetry"
)

// Version tags the cycle-level semantics of the engine. The content-addressed
// result cache (internal/runner) folds it into every cache key, so persisted
// results are invalidated whenever the simulator's behaviour changes. Bump it
// on any change that can alter a Result bit for identical inputs (stepping
// order, workload protocol, statistics definitions, histogram geometry).
const Version = "ft-sim/3"

// Workload produces the packets a simulation injects and observes delivery.
// Implementations: traffic.Synthetic (statistical patterns) and
// trace.Workload (application communication traces).
type Workload interface {
	// Tick runs once per cycle before offers are gathered.
	Tick(now int64)
	// Pending returns the packet PE pe wants to inject this cycle, if any.
	// The same packet must be returned every cycle until Injected is called
	// for it (offers that stall are retried).
	Pending(pe int, now int64) (noc.Packet, bool)
	// Injected reports that the pending packet at pe entered the network.
	Injected(pe int, now int64)
	// Delivered reports that p reached its destination PE.
	Delivered(p noc.Packet, now int64)
	// Done reports that the workload will produce no further packets.
	Done() bool
}

// ActiveSet is optionally implemented by workloads that can cheaply
// enumerate the PEs which may have a pending packet this cycle. When a
// workload implements it, Run polls Pending only on those PEs instead of
// scanning all N² every cycle — the dominant engine cost at the
// low-injection-rate sweep points where almost every PE is idle.
//
// The contract: after Tick, every PE for which Pending would return ok must
// appear in the returned set (a superset is fine, duplicates are not), and
// the enumeration must be a deterministic function of the workload's
// history so repeated runs replay identically. The fast path is bit-exact
// with the full scan because per-PE offer operations are independent;
// Options.Engine = EngineDense selects the reference scan for equivalence
// testing.
type ActiveSet interface {
	// ActivePEs appends the live PE indices to buf and returns it.
	ActivePEs(buf []int) []int
}

// Result summarizes one simulation run.
type Result struct {
	// Cycles is the makespan: the cycle count until the last delivery (or
	// the configured limit).
	Cycles int64
	// Injected and Delivered count packets.
	Injected  int64
	Delivered int64
	// SustainedRate is delivered packets per cycle per PE — the paper's
	// "sustained rate" axis.
	SustainedRate float64
	// AvgLatency and WorstLatency are in cycles, measured from packet
	// generation (source queueing included) to client delivery.
	AvgLatency   float64
	WorstLatency int64
	// P50 and P99 latency quantiles from the histogram.
	P50, P99 int64
	// Latency is the full latency histogram (the paper's Fig 16).
	Latency *stats.Histogram
	// PerSource[pe] accumulates latencies of packets sourced at pe, for
	// fairness analysis (deflection NoCs can favour some positions).
	PerSource []stats.Accumulator
	// Counters is a copy of the network's event counters at the end.
	Counters noc.Counters
	// TimedOut reports the run hit MaxCycles before the workload drained.
	TimedOut bool
	// Converged reports that the run ended early because the windowed
	// throughput/latency stationarity test (Options.ConvergeWindow) passed;
	// the workload may not have drained.
	Converged bool
	// Faults counts injected faults when the network is wrapped by a fault
	// injector (internal/faults); zero otherwise.
	Faults stats.FaultCounts
	// Recovery summarizes the resilient-delivery layer when the workload is
	// wrapped by internal/reliability; zero otherwise.
	Recovery stats.RecoveryCounts
}

// Engine selects which of the two bit-exact simulation paths a run uses.
type Engine uint8

const (
	// EngineSparse is the optimized production path: occupancy-bitset router
	// stepping inside the networks plus the ActiveSet offer fast path in the
	// engine. It is the zero value and the default.
	EngineSparse Engine = iota
	// EngineDense is the straight-line reference path: dense array stepping
	// inside the networks (every router input examined every cycle) and a
	// full Pending scan over all PEs. The golden equivalence tests hold the
	// two engines to byte-identical Results.
	EngineDense
)

// String returns the engine name used in logs and cache keys.
func (e Engine) String() string {
	if e == EngineDense {
		return "dense"
	}
	return "sparse"
}

// denseSelectable is implemented by networks that carry both stepping paths.
// Run switches the network to match Options.Engine; networks without the
// knob (external implementations) always run their only path.
type denseSelectable interface {
	SetDense(bool)
}

// Options configures a run.
type Options struct {
	// MaxCycles bounds the run; 0 means a generous default.
	MaxCycles int64
	// StallLimit aborts with an error if no packet is injected or delivered
	// for this many consecutive cycles while work remains. It is a livelock
	// tripwire; 0 means a generous default.
	StallLimit int64
	// HistogramMax is the largest latency the histogram resolves exactly;
	// 0 means 1<<20 cycles.
	HistogramMax int64
	// CheckConservation audits packet conservation every cycle and checks
	// each delivery against its injected copy (no loss, duplication,
	// corruption, or misdelivery). Costs O(1) map work per packet; tests
	// should enable it, sweeps may leave it off.
	CheckConservation bool
	// MaxPacketAge, when positive, is a starvation watchdog: the run fails
	// fast with ErrStarvation and a diagnostic snapshot if any packet stays
	// in flight longer than this many cycles. 0 disables the watchdog.
	MaxPacketAge int64
	// Engine selects the simulation path: EngineSparse (default, optimized)
	// or EngineDense (the straight-line reference both networks and engine
	// fall back to). The two are bit-exact; EngineDense exists for the golden
	// equivalence tests and for ftbench's speedup measurements.
	Engine Engine
	// Observer, when non-nil, receives cycle-level telemetry events
	// (injections, hops, deflections, deliveries — see internal/telemetry).
	// Run attaches it to the network and to every layer of the workload
	// decorator chain that implements telemetry.Observable. nil keeps every
	// emission site on its single-nil-check disabled path.
	Observer telemetry.Observer
	// Context, when non-nil, is polled every few thousand cycles so a sweep
	// scheduler (internal/runner) can cancel in-flight sibling simulations
	// once one job fails; Run returns the context's error. nil never cancels.
	Context context.Context
	// ConvergeWindow, when positive, arms the opt-in early-exit stationarity
	// test: every ConvergeWindow cycles the windowed delivery rate and mean
	// latency are compared against the previous window, and once both change
	// by less than ConvergeTol (relative) for ConvergePatience consecutive
	// windows the run stops with Result.Converged set. The default (0) keeps
	// the fixed-budget path, so golden bit-exactness is untouched. Intended
	// for saturation-throughput measurements where steady state arrives long
	// before the packet quota drains.
	ConvergeWindow int64
	// ConvergeTol is the relative per-window change threshold; 0 means 0.01.
	ConvergeTol float64
	// ConvergePatience is the number of consecutive stationary windows
	// required before exiting; 0 means 3.
	ConvergePatience int
}

func (o Options) withDefaults() Options {
	if o.MaxCycles == 0 {
		o.MaxCycles = 4 << 20
	}
	if o.StallLimit == 0 {
		o.StallLimit = 1 << 16
	}
	if o.HistogramMax == 0 {
		o.HistogramMax = 1 << 20
	}
	if o.ConvergeWindow > 0 {
		if o.ConvergeTol == 0 {
			o.ConvergeTol = 0.01
		}
		if o.ConvergePatience == 0 {
			o.ConvergePatience = 3
		}
	}
	return o
}

// relDelta is the relative change between two window statistics, symmetric
// in its arguments and 0 when both are 0.
func relDelta(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// convergence is the windowed stationarity detector. It consumes the window
// points produced by telemetry.WindowTracker (the shared window bookkeeping,
// so the detector and the Metrics observer always agree on boundaries and
// statistics) and reports when the run has reached steady state.
//
// The delivery rate must be stable, and the windowed mean latency must be
// *trend* stationary: either flat (below saturation) or growing by a stable
// amount per window (at saturation the measured latency includes source
// queueing, which grows linearly for as long as the quota lasts — a
// flat-latency criterion would never pass there).
type convergence struct {
	tol      float64
	patience int

	started int
	streak  int

	prevRate, prevLat, prevLatDelta float64
}

// observe folds in one completed window and reports whether the run has been
// stationary for the configured patience.
func (c *convergence) observe(wp telemetry.WindowPoint) bool {
	latDelta := wp.MeanLatency - c.prevLat
	if c.started >= 2 && wp.TotalDelivered > 0 {
		slopeStable := math.Abs(latDelta-c.prevLatDelta) <= c.tol*math.Max(wp.MeanLatency, 1)
		if relDelta(wp.Rate, c.prevRate) < c.tol && slopeStable {
			c.streak++
		} else {
			c.streak = 0
		}
	}
	c.started++
	c.prevRate, c.prevLat, c.prevLatDelta = wp.Rate, wp.MeanLatency, latDelta
	return c.streak >= c.patience
}

// attachObserver hands obs to the network and to every layer of the workload
// decorator chain that can hold one.
func attachObserver(net noc.Network, wl Workload, obs telemetry.Observer) {
	if o, ok := net.(telemetry.Observable); ok {
		o.SetObserver(obs)
	}
	for wl != nil {
		if o, ok := wl.(telemetry.Observable); ok {
			o.SetObserver(obs)
		}
		u, ok := wl.(WorkloadUnwrapper)
		if !ok {
			break
		}
		wl = u.Unwrap()
	}
}

// Run drives net against wl until the workload drains or a limit is hit.
func Run(net noc.Network, wl Workload, opts Options) (Result, error) {
	opts = opts.withDefaults()
	res := Result{Latency: stats.NewLatencyHistogram(opts.HistogramMax)}
	numPE := net.NumPEs()
	res.PerSource = make([]stats.Accumulator, numPE)
	offered := make([]bool, numPE)
	offeredPkt := make([]noc.Packet, numPE)
	aud := newAuditor(net, opts)
	obs := opts.Observer
	if obs != nil {
		attachObserver(net, wl, obs)
	}
	if sd, ok := net.(denseSelectable); ok {
		sd.SetDense(opts.Engine == EngineDense)
	}
	activeWL, fast := wl.(ActiveSet)
	if opts.Engine == EngineDense {
		fast = false
	}
	// track mirrors accepted offers for the auditor and the observer; without
	// either consumer the copy is skipped in the hot loop.
	track := aud != nil || obs != nil
	var live []int
	var latSum float64
	var now, lastProgress int64

	// Convergence-window state (inert when ConvergeWindow is 0).
	convWin := telemetry.WindowTracker{W: opts.ConvergeWindow}
	conv := convergence{tol: opts.ConvergeTol, patience: opts.ConvergePatience}

	for now = 0; now < opts.MaxCycles; now++ {
		if opts.Context != nil && now&4095 == 0 {
			if err := opts.Context.Err(); err != nil {
				return res, err
			}
		}
		wl.Tick(now)

		anyOffer := false
		if fast {
			// Fast path: poll only the PEs the workload marks live. Per-PE
			// offer operations are independent, so this is bit-exact with
			// the full scan below (the golden tests in golden_test.go hold
			// the two paths to byte-identical Results).
			live = activeWL.ActivePEs(live[:0])
			for _, pe := range live {
				p, ok := wl.Pending(pe, now)
				offered[pe] = ok
				if ok {
					if track {
						offeredPkt[pe] = p
					}
					net.Offer(pe, p)
					anyOffer = true
				}
			}
		} else {
			for pe := 0; pe < numPE; pe++ {
				p, ok := wl.Pending(pe, now)
				offered[pe] = ok
				if ok {
					if track {
						offeredPkt[pe] = p
					}
					net.Offer(pe, p)
					anyOffer = true
				}
			}
		}
		if !anyOffer && wl.Done() && net.InFlight() == 0 {
			break
		}

		net.Step(now)

		progress := false
		if fast {
			for _, pe := range live {
				if offered[pe] && net.Accepted(pe) {
					wl.Injected(pe, now)
					res.Injected++
					if aud != nil {
						aud.onInject(offeredPkt[pe], now)
					}
					if obs != nil {
						obs.OnInject(now, &offeredPkt[pe])
					}
					progress = true
				} else if obs != nil && offered[pe] {
					obs.OnInjectStall(now, pe)
				}
			}
		} else {
			for pe := 0; pe < numPE; pe++ {
				if offered[pe] && net.Accepted(pe) {
					wl.Injected(pe, now)
					res.Injected++
					if aud != nil {
						aud.onInject(offeredPkt[pe], now)
					}
					if obs != nil {
						obs.OnInject(now, &offeredPkt[pe])
					}
					progress = true
				} else if obs != nil && offered[pe] {
					obs.OnInjectStall(now, pe)
				}
			}
		}
		for _, p := range net.Delivered() {
			lat := now - p.Gen
			if lat < 0 {
				return res, &InvariantError{
					Err: ErrCorrupt, Cycle: now,
					Detail:   fmt.Sprintf("packet %d delivered before generation (gen=%d)", p.ID, p.Gen),
					Snapshot: aud.snapshot(now),
				}
			}
			if aud != nil {
				if err := aud.onDeliver(p, now); err != nil {
					return res, err
				}
			}
			res.Latency.Add(lat)
			res.PerSource[noc.PEIndex(p.Src, net.Width())].Add(float64(lat))
			latSum += float64(lat)
			if lat > res.WorstLatency {
				res.WorstLatency = lat
			}
			res.Delivered++
			if obs != nil {
				obs.OnDeliver(now, &p)
			}
			wl.Delivered(p, now)
			progress = true
		}
		if aud != nil {
			if err := aud.endOfCycle(net, now, res.Injected, res.Delivered); err != nil {
				return res, err
			}
		}
		if obs != nil {
			obs.OnCycleEnd(now, net.InFlight())
		}

		// Stall watchdog. A cycle counts toward the stall limit only when the
		// network could have made progress and did not: a packet is in flight
		// or an offer was presented (and, having produced no progress, was
		// refused). A deliberately idle workload — a trace in a long compute
		// gap with nothing pending and an empty network — is not a livelock
		// and resets the window, no matter how long the gap.
		if progress || (!anyOffer && net.InFlight() == 0) {
			lastProgress = now
		} else if now-lastProgress > opts.StallLimit {
			return res, &InvariantError{
				Err: ErrStalled, Cycle: now,
				Detail: fmt.Sprintf("stalled for %d cycles (in-flight %d)",
					now-lastProgress, net.InFlight()),
				Snapshot: aud.snapshot(now),
			}
		}

		// Windowed stationarity test (opt-in early exit); see convergence for
		// the criteria.
		if convWin.Boundary(now) {
			wp := convWin.Roll(now, res.Delivered, res.Injected, latSum, 0)
			if conv.observe(wp) {
				res.Converged = true
				now++ // this cycle completed in full
				break
			}
		}
	}

	res.Cycles = now
	res.TimedOut = now >= opts.MaxCycles
	if fn, ok := net.(FaultyNetwork); ok {
		res.Faults = fn.FaultCounts()
	}
	if rr, ok := findRecoveryReporter(wl); ok {
		res.Recovery = rr.RecoveryCounts()
	}
	if got := res.Delivered + res.Faults.Lost(); got != res.Injected && !res.TimedOut && !res.Converged {
		return res, &InvariantError{
			Err: ErrConservation, Cycle: now,
			Detail: fmt.Sprintf("injected %d != delivered %d + lost %d (in-flight %d)",
				res.Injected, res.Delivered, res.Faults.Lost(), net.InFlight()),
			Snapshot: aud.snapshot(now),
		}
	}
	if res.Delivered > 0 {
		res.AvgLatency = latSum / float64(res.Delivered)
	}
	if now > 0 {
		res.SustainedRate = float64(res.Delivered) / (float64(now) * float64(numPE))
	}
	res.P50 = res.Latency.Quantile(0.50)
	res.P99 = res.Latency.Quantile(0.99)
	res.Counters = *net.Counters()
	return res, nil
}
