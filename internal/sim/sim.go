// Package sim drives a noc.Network cycle by cycle against a workload and
// collects the measurements the paper reports: sustained injection rate,
// average and worst-case packet latency, latency histograms, link-usage and
// deflection counters, and workload completion time.
//
// The engine's per-cycle protocol matches noc.Network: the workload offers
// at most one packet per PE, the network steps, accepted offers are consumed
// and deliveries are fed back to the workload (dependency-driven traces use
// this to unlock later sends).
package sim

import (
	"context"
	"fmt"
	"math"

	"fasttrack/internal/noc"
	"fasttrack/internal/stats"
	"fasttrack/internal/telemetry"
)

// Version tags the cycle-level semantics of the engine. The content-addressed
// result cache (internal/runner) folds it into every cache key, so persisted
// results are invalidated whenever the simulator's behaviour changes. Bump it
// on any change that can alter a Result bit for identical inputs (stepping
// order, workload protocol, statistics definitions, histogram geometry).
const Version = "ft-sim/4"

// Workload produces the packets a simulation injects and observes delivery.
// Implementations: traffic.Synthetic (statistical patterns) and
// trace.Workload (application communication traces).
type Workload interface {
	// Tick runs once per cycle before offers are gathered.
	Tick(now int64)
	// Pending returns the packet PE pe wants to inject this cycle, if any.
	// The same packet must be returned every cycle until Injected is called
	// for it (offers that stall are retried).
	Pending(pe int, now int64) (noc.Packet, bool)
	// Injected reports that the pending packet at pe entered the network.
	Injected(pe int, now int64)
	// Delivered reports that p reached its destination PE.
	Delivered(p noc.Packet, now int64)
	// Done reports that the workload will produce no further packets.
	Done() bool
}

// ActiveSet is optionally implemented by workloads that can cheaply
// enumerate the PEs which may have a pending packet this cycle. When a
// workload implements it, Run polls Pending only on those PEs instead of
// scanning all N² every cycle — the dominant engine cost at the
// low-injection-rate sweep points where almost every PE is idle.
//
// The contract: after Tick, every PE for which Pending would return ok must
// appear in the returned set (a superset is fine, duplicates are not), and
// the enumeration must be a deterministic function of the workload's
// history so repeated runs replay identically. The fast path is bit-exact
// with the full scan because per-PE offer operations are independent;
// Options.Engine = EngineDense selects the reference scan for equivalence
// testing.
type ActiveSet interface {
	// ActivePEs appends the live PE indices to buf and returns it.
	ActivePEs(buf []int) []int
}

// ShardableWorkload is optionally implemented by workloads whose generation
// state can be partitioned by PE range, so the sharded engine can tick and
// enumerate each shard's PEs on that shard's worker. The contract mirrors
// ActiveSet's: the packets produced (contents, IDs, order per PE) must be
// bit-identical to a sequential Tick, and Injected must be safe to call
// concurrently for PEs owned by different shards. traffic.Synthetic is the
// canonical implementation.
type ShardableWorkload interface {
	Workload
	ActiveSet
	// ConfigureShards repartitions the PE space so shard k owns PEs
	// [bounds[k], bounds[k+1]). It reports false — leaving the workload
	// unchanged — if bounds is not a partition of [0, NumPEs).
	ConfigureShards(bounds []int) bool
	// TickShard runs shard k's share of Tick. Calls for distinct k may run
	// concurrently.
	TickShard(k int, now int64)
	// ActiveShard appends shard k's live PEs to buf, like ActivePEs but
	// range-restricted. Calls for distinct k may run concurrently.
	ActiveShard(k int, buf []int) []int
}

// Result summarizes one simulation run.
type Result struct {
	// Cycles is the makespan: the cycle count until the last delivery (or
	// the configured limit).
	Cycles int64
	// Injected and Delivered count packets.
	Injected  int64
	Delivered int64
	// SustainedRate is delivered packets per cycle per PE — the paper's
	// "sustained rate" axis.
	SustainedRate float64
	// AvgLatency and WorstLatency are in cycles, measured from packet
	// generation (source queueing included) to client delivery.
	AvgLatency   float64
	WorstLatency int64
	// P50 and P99 latency quantiles from the histogram.
	P50, P99 int64
	// Latency is the full latency histogram (the paper's Fig 16).
	Latency *stats.Histogram
	// PerSource[pe] accumulates latencies of packets sourced at pe, for
	// fairness analysis (deflection NoCs can favour some positions).
	PerSource []stats.Accumulator
	// Counters is a copy of the network's event counters at the end.
	Counters noc.Counters
	// TimedOut reports the run hit MaxCycles before the workload drained.
	TimedOut bool
	// Converged reports that the run ended early because the windowed
	// throughput/latency stationarity test (Options.ConvergeWindow) passed;
	// the workload may not have drained.
	Converged bool
	// Faults counts injected faults when the network is wrapped by a fault
	// injector (internal/faults); zero otherwise.
	Faults stats.FaultCounts
	// Recovery summarizes the resilient-delivery layer when the workload is
	// wrapped by internal/reliability; zero otherwise.
	Recovery stats.RecoveryCounts
}

// Engine selects which of the two bit-exact simulation paths a run uses.
type Engine uint8

const (
	// EngineSparse is the optimized production path: occupancy-bitset router
	// stepping inside the networks plus the ActiveSet offer fast path in the
	// engine. It is the zero value and the default.
	EngineSparse Engine = iota
	// EngineDense is the straight-line reference path: dense array stepping
	// inside the networks (every router input examined every cycle) and a
	// full Pending scan over all PEs. The golden equivalence tests hold the
	// two engines to byte-identical Results.
	EngineDense
)

// String returns the engine name used in logs and cache keys.
func (e Engine) String() string {
	if e == EngineDense {
		return "dense"
	}
	return "sparse"
}

// denseSelectable is implemented by networks that carry both stepping paths.
// Run switches the network to match Options.Engine; networks without the
// knob (external implementations) always run their only path.
type denseSelectable interface {
	SetDense(bool)
}

// Options configures a run.
type Options struct {
	// MaxCycles bounds the run; 0 means a generous default.
	MaxCycles int64
	// StallLimit aborts with an error if no packet is injected or delivered
	// for this many consecutive cycles while work remains. It is a livelock
	// tripwire; 0 means a generous default.
	StallLimit int64
	// HistogramMax is the largest latency the histogram resolves exactly;
	// 0 means 1<<20 cycles.
	HistogramMax int64
	// CheckConservation audits packet conservation every cycle and checks
	// each delivery against its injected copy (no loss, duplication,
	// corruption, or misdelivery). Costs O(1) map work per packet; tests
	// should enable it, sweeps may leave it off.
	CheckConservation bool
	// MaxPacketAge, when positive, is a starvation watchdog: the run fails
	// fast with ErrStarvation and a diagnostic snapshot if any packet stays
	// in flight longer than this many cycles. 0 disables the watchdog.
	MaxPacketAge int64
	// Engine selects the simulation path: EngineSparse (default, optimized)
	// or EngineDense (the straight-line reference both networks and engine
	// fall back to). The two are bit-exact; EngineDense exists for the golden
	// equivalence tests and for ftbench's speedup measurements.
	Engine Engine
	// Shards, when >1, partitions the torus into that many row-band shards
	// and steps them on parallel workers (the network must implement
	// noc.ShardedNetwork; EngineDense is incompatible). Results are bit-exact
	// with the sequential engine — sharding is a wall-clock knob, never a
	// semantics knob — so cache keys ignore it. 0 and 1 select the
	// sequential path; values above the row count are clamped.
	Shards int
	// Observer, when non-nil, receives cycle-level telemetry events
	// (injections, hops, deflections, deliveries — see internal/telemetry).
	// Run attaches it to the network and to every layer of the workload
	// decorator chain that implements telemetry.Observable. nil keeps every
	// emission site on its single-nil-check disabled path.
	Observer telemetry.Observer
	// Context, when non-nil, is polled every few thousand cycles so a sweep
	// scheduler (internal/runner) can cancel in-flight sibling simulations
	// once one job fails; Run returns the context's error. nil never cancels.
	Context context.Context
	// ConvergeWindow, when positive, arms the opt-in early-exit stationarity
	// test: every ConvergeWindow cycles the windowed delivery rate and mean
	// latency are compared against the previous window, and once both change
	// by less than ConvergeTol (relative) for ConvergePatience consecutive
	// windows the run stops with Result.Converged set. The default (0) keeps
	// the fixed-budget path, so golden bit-exactness is untouched. Intended
	// for saturation-throughput measurements where steady state arrives long
	// before the packet quota drains.
	ConvergeWindow int64
	// ConvergeTol is the relative per-window change threshold; 0 means 0.01.
	ConvergeTol float64
	// ConvergePatience is the number of consecutive stationary windows
	// required before exiting; 0 means 3.
	ConvergePatience int
}

func (o Options) withDefaults() Options {
	if o.MaxCycles == 0 {
		o.MaxCycles = 4 << 20
	}
	if o.StallLimit == 0 {
		o.StallLimit = 1 << 16
	}
	if o.HistogramMax == 0 {
		o.HistogramMax = 1 << 20
	}
	if o.ConvergeWindow > 0 {
		if o.ConvergeTol == 0 {
			o.ConvergeTol = 0.01
		}
		if o.ConvergePatience == 0 {
			o.ConvergePatience = 3
		}
	}
	return o
}

// relDelta is the relative change between two window statistics, symmetric
// in its arguments and 0 when both are 0.
func relDelta(a, b float64) float64 {
	den := math.Max(math.Abs(a), math.Abs(b))
	if den == 0 {
		return 0
	}
	return math.Abs(a-b) / den
}

// convergence is the windowed stationarity detector. It consumes the window
// points produced by telemetry.WindowTracker (the shared window bookkeeping,
// so the detector and the Metrics observer always agree on boundaries and
// statistics) and reports when the run has reached steady state.
//
// The delivery rate must be stable, and the windowed mean latency must be
// *trend* stationary: either flat (below saturation) or growing by a stable
// amount per window (at saturation the measured latency includes source
// queueing, which grows linearly for as long as the quota lasts — a
// flat-latency criterion would never pass there).
type convergence struct {
	tol      float64
	patience int

	started int
	streak  int

	prevRate, prevLat, prevLatDelta float64
}

// observe folds in one completed window and reports whether the run has been
// stationary for the configured patience.
func (c *convergence) observe(wp telemetry.WindowPoint) bool {
	latDelta := wp.MeanLatency - c.prevLat
	if c.started >= 2 && wp.TotalDelivered > 0 {
		slopeStable := math.Abs(latDelta-c.prevLatDelta) <= c.tol*math.Max(wp.MeanLatency, 1)
		if relDelta(wp.Rate, c.prevRate) < c.tol && slopeStable {
			c.streak++
		} else {
			c.streak = 0
		}
	}
	c.started++
	c.prevRate, c.prevLat, c.prevLatDelta = wp.Rate, wp.MeanLatency, latDelta
	return c.streak >= c.patience
}

// attachObserver hands obs to the network and to every layer of the workload
// decorator chain that can hold one.
func attachObserver(net noc.Network, wl Workload, obs telemetry.Observer) {
	if o, ok := net.(telemetry.Observable); ok {
		o.SetObserver(obs)
	}
	for wl != nil {
		if o, ok := wl.(telemetry.Observable); ok {
			o.SetObserver(obs)
		}
		u, ok := wl.(WorkloadUnwrapper)
		if !ok {
			break
		}
		wl = u.Unwrap()
	}
}

// Run drives net against wl until the workload drains or a limit is hit.
// With Options.Shards > 1 the network steps shard-parallel (see shard.go);
// the Result is bit-exact with the sequential engine either way.
func Run(net noc.Network, wl Workload, opts Options) (Result, error) {
	opts = opts.withDefaults()
	if opts.Shards > 1 {
		return runSharded(net, wl, opts)
	}
	return runSequential(net, wl, opts)
}

// engine is one run's mutable state, shared by the sequential and sharded
// drivers. The per-cycle protocol is decomposed into phase methods —
// tick/offer, step, inject feedback, deliver, cycle-end bookkeeping — so
// the sharded driver can replace individual phases with fan-out versions
// while every scalar rule (watchdog, convergence, result finalization)
// stays in exactly one place.
type engine struct {
	net  noc.Network
	wl   Workload
	opts Options
	res  Result

	numPE int
	width int

	offered    []bool
	offeredPkt []noc.Packet
	aud        *auditor
	obs        telemetry.Observer
	// track mirrors accepted offers for the auditor and the observer;
	// without either consumer the copy is skipped in the hot loop.
	track    bool
	fast     bool
	activeWL ActiveSet
	live     []int

	// latSum accumulates delivery latencies as an integer so per-shard
	// partial sums merge to the exact sequential total (int64 addition is
	// associative; float64 addition is not).
	latSum       int64
	now          int64
	lastProgress int64

	// Convergence-window state (inert when ConvergeWindow is 0).
	convWin telemetry.WindowTracker
	conv    convergence
}

func newEngine(net noc.Network, wl Workload, opts Options) *engine {
	e := &engine{
		net: net, wl: wl, opts: opts,
		res:     Result{Latency: stats.NewLatencyHistogram(opts.HistogramMax)},
		numPE:   net.NumPEs(),
		width:   net.Width(),
		aud:     newAuditor(net, opts),
		obs:     opts.Observer,
		convWin: telemetry.WindowTracker{W: opts.ConvergeWindow},
		conv:    convergence{tol: opts.ConvergeTol, patience: opts.ConvergePatience},
	}
	e.res.PerSource = make([]stats.Accumulator, e.numPE)
	e.offered = make([]bool, e.numPE)
	e.offeredPkt = make([]noc.Packet, e.numPE)
	if e.obs != nil {
		attachObserver(net, wl, e.obs)
	}
	if sd, ok := net.(denseSelectable); ok {
		sd.SetDense(opts.Engine == EngineDense)
	}
	e.activeWL, e.fast = wl.(ActiveSet)
	if opts.Engine == EngineDense {
		e.fast = false
	}
	e.track = e.aud != nil || e.obs != nil
	return e
}

// pollCtx checks for sweep-scheduler cancellation every few thousand cycles.
func (e *engine) pollCtx(now int64) error {
	if e.opts.Context != nil && now&4095 == 0 {
		return e.opts.Context.Err()
	}
	return nil
}

// offerPE presents pe's pending packet to the network; reports whether one
// was offered. Touches only per-PE state, so the sharded driver calls it
// concurrently for PEs owned by different shards.
func (e *engine) offerPE(pe int, now int64) bool {
	p, ok := e.wl.Pending(pe, now)
	e.offered[pe] = ok
	if !ok {
		return false
	}
	if e.track {
		e.offeredPkt[pe] = p
	}
	e.net.Offer(pe, p)
	return true
}

// phaseOffer gathers this cycle's offers, via the ActiveSet fast path when
// available. Per-PE offer operations are independent, so the fast path is
// bit-exact with the full scan (golden_test.go holds the two to
// byte-identical Results).
func (e *engine) phaseOffer(now int64) bool {
	anyOffer := false
	if e.fast {
		e.live = e.activeWL.ActivePEs(e.live[:0])
		for _, pe := range e.live {
			if e.offerPE(pe, now) {
				anyOffer = true
			}
		}
	} else {
		for pe := 0; pe < e.numPE; pe++ {
			if e.offerPE(pe, now) {
				anyOffer = true
			}
		}
	}
	return anyOffer
}

// injectPE consumes pe's offer if the network accepted it, reporting whether
// an injection happened. The caller counts successes into Result.Injected —
// kept out of here so the sharded driver can run this concurrently for PEs
// of different shards (workload Injected is shard-safe by the
// ShardableWorkload contract) and tally per shard.
func (e *engine) injectPE(pe int, now int64) bool {
	if !e.offered[pe] {
		return false
	}
	if !e.net.Accepted(pe) {
		if e.obs != nil {
			e.obs.OnInjectStall(now, pe)
		}
		return false
	}
	e.wl.Injected(pe, now)
	if e.aud != nil {
		e.aud.onInject(e.offeredPkt[pe], now)
	}
	if e.obs != nil {
		e.obs.OnInject(now, &e.offeredPkt[pe])
	}
	return true
}

// phaseInjectFeedback relays the network's accept decisions back to the
// workload for every PE that offered this cycle.
func (e *engine) phaseInjectFeedback(now int64) bool {
	progress := false
	if e.fast {
		for _, pe := range e.live {
			if e.injectPE(pe, now) {
				e.res.Injected++
				progress = true
			}
		}
	} else {
		for pe := 0; pe < e.numPE; pe++ {
			if e.injectPE(pe, now) {
				e.res.Injected++
				progress = true
			}
		}
	}
	return progress
}

// deliverStats folds one delivered packet into the latency statistics.
func (e *engine) deliverStats(p *noc.Packet, lat int64) {
	e.res.Latency.Add(lat)
	e.res.PerSource[noc.PEIndex(p.Src, e.width)].Add(float64(lat))
	e.latSum += lat
	if lat > e.res.WorstLatency {
		e.res.WorstLatency = lat
	}
	e.res.Delivered++
}

// errNegativeLatency builds the invariant error for a delivery that predates
// its own generation.
func (e *engine) errNegativeLatency(p *noc.Packet, now int64) error {
	return &InvariantError{
		Err: ErrCorrupt, Cycle: now,
		Detail:   fmt.Sprintf("packet %d delivered before generation (gen=%d)", p.ID, p.Gen),
		Snapshot: e.aud.snapshot(now),
	}
}

// phaseDeliver processes this cycle's deliveries: audit, statistics,
// observer and workload callbacks, in the network's delivery order.
func (e *engine) phaseDeliver(now int64) (progress bool, err error) {
	for _, p := range e.net.Delivered() {
		lat := now - p.Gen
		if lat < 0 {
			return progress, e.errNegativeLatency(&p, now)
		}
		if e.aud != nil {
			if err := e.aud.onDeliver(p, now); err != nil {
				return progress, err
			}
		}
		e.deliverStats(&p, lat)
		if e.obs != nil {
			e.obs.OnDeliver(now, &p)
		}
		e.wl.Delivered(p, now)
		progress = true
	}
	return progress, nil
}

// phaseCycleEnd runs the end-of-cycle audit and telemetry hooks.
func (e *engine) phaseCycleEnd(now int64) error {
	if e.aud != nil {
		if err := e.aud.endOfCycle(e.net, now, e.res.Injected, e.res.Delivered); err != nil {
			return err
		}
	}
	if e.obs != nil {
		e.obs.OnCycleEnd(now, e.net.InFlight())
	}
	return nil
}

// watchdog enforces the stall limit. A cycle counts toward it only when the
// network could have made progress and did not: a packet is in flight or an
// offer was presented (and, having produced no progress, was refused). A
// deliberately idle workload — a trace in a long compute gap with nothing
// pending and an empty network — is not a livelock and resets the window,
// no matter how long the gap.
func (e *engine) watchdog(now int64, anyOffer, progress bool) error {
	if progress || (!anyOffer && e.net.InFlight() == 0) {
		e.lastProgress = now
		return nil
	}
	if now-e.lastProgress > e.opts.StallLimit {
		return &InvariantError{
			Err: ErrStalled, Cycle: now,
			Detail: fmt.Sprintf("stalled for %d cycles (in-flight %d)",
				now-e.lastProgress, e.net.InFlight()),
			Snapshot: e.aud.snapshot(now),
		}
	}
	return nil
}

// converged runs the windowed stationarity test (opt-in early exit); see
// convergence for the criteria. latSum is the cumulative latency total so
// far — passed in rather than read from e so the sharded driver can supply
// the sum of its per-shard partials.
func (e *engine) converged(now, latSum int64) bool {
	if !e.convWin.Boundary(now) {
		return false
	}
	wp := e.convWin.Roll(now, e.res.Delivered, e.res.Injected, float64(latSum), 0)
	if !e.conv.observe(wp) {
		return false
	}
	e.res.Converged = true
	return true
}

// finish seals the Result after the main loop exits at cycle now.
func (e *engine) finish(now int64) (Result, error) {
	e.res.Cycles = now
	// A run that converged used its last cycle in full and stopped on
	// purpose; even if that bumped now to MaxCycles it did not time out.
	// (Converged and TimedOut are mutually exclusive by contract.)
	e.res.TimedOut = now >= e.opts.MaxCycles && !e.res.Converged
	if fn, ok := e.net.(FaultyNetwork); ok {
		e.res.Faults = fn.FaultCounts()
	}
	if rr, ok := findRecoveryReporter(e.wl); ok {
		e.res.Recovery = rr.RecoveryCounts()
	}
	if got := e.res.Delivered + e.res.Faults.Lost(); got != e.res.Injected && !e.res.TimedOut && !e.res.Converged {
		return e.res, &InvariantError{
			Err: ErrConservation, Cycle: now,
			Detail: fmt.Sprintf("injected %d != delivered %d + lost %d (in-flight %d)",
				e.res.Injected, e.res.Delivered, e.res.Faults.Lost(), e.net.InFlight()),
			Snapshot: e.aud.snapshot(now),
		}
	}
	if e.res.Delivered > 0 {
		e.res.AvgLatency = float64(e.latSum) / float64(e.res.Delivered)
	}
	if now > 0 {
		e.res.SustainedRate = float64(e.res.Delivered) / (float64(now) * float64(e.numPE))
	}
	e.res.P50 = e.res.Latency.Quantile(0.50)
	e.res.P99 = e.res.Latency.Quantile(0.99)
	e.res.Counters = *e.net.Counters()
	return e.res, nil
}

// cycleStatus is what one engine cycle reports back to its driver.
type cycleStatus uint8

const (
	// cycleRan: the cycle completed; keep going.
	cycleRan cycleStatus = iota
	// cycleDrained: the workload drained before this cycle ran — the run
	// ends with the current cycle number (the drain check precedes Step).
	cycleDrained
	// cycleConverged: the stationarity test passed at the end of this cycle —
	// the run ends after it (the cycle completed in full).
	cycleConverged
)

// cycle runs the canonical per-cycle phase sequence once at time now. It is
// the body of runSequential's loop, extracted so the lockstep batch driver
// (batch.go) interleaves instances cycle by cycle through the exact code the
// per-job path runs.
func (e *engine) cycle(now int64) (cycleStatus, error) {
	e.wl.Tick(now)
	anyOffer := e.phaseOffer(now)
	if !anyOffer && e.wl.Done() && e.net.InFlight() == 0 {
		return cycleDrained, nil
	}

	e.net.Step(now)

	progress := e.phaseInjectFeedback(now)
	dp, err := e.phaseDeliver(now)
	if err != nil {
		return cycleRan, err
	}
	progress = progress || dp
	if err := e.phaseCycleEnd(now); err != nil {
		return cycleRan, err
	}
	if err := e.watchdog(now, anyOffer, progress); err != nil {
		return cycleRan, err
	}
	if e.converged(now, e.latSum) {
		return cycleConverged, nil
	}
	return cycleRan, nil
}

// runSequential is the single-goroutine driver: every phase runs inline on
// the caller, in the canonical per-cycle order.
func runSequential(net noc.Network, wl Workload, opts Options) (Result, error) {
	e := newEngine(net, wl, opts)
	var now int64
	for now = 0; now < opts.MaxCycles; now++ {
		if err := e.pollCtx(now); err != nil {
			return e.res, err
		}
		st, err := e.cycle(now)
		if err != nil {
			return e.res, err
		}
		if st == cycleDrained {
			break
		}
		if st == cycleConverged {
			now++ // this cycle completed in full
			break
		}
	}
	return e.finish(now)
}
