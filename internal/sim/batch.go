package sim

import (
	"fmt"

	"fasttrack/internal/noc"
)

// EventWorkload is optionally implemented by workloads that can predict when
// their next generation event fires (traffic.SynthView is the canonical
// implementation: Bernoulli generation is open-loop, so the next arrival is
// a pure function of workload state). The lockstep batch driver uses it to
// fast-forward an instance across provably idle stretches — cycles where the
// workload has nothing queued, nothing is in flight, and Tick cannot enqueue
// anything — instead of stepping them one by one.
type EventWorkload interface {
	// NextEventCycle returns the earliest cycle > now at which Tick can
	// enqueue new work, or math.MaxInt64 when generation is finished.
	NextEventCycle(now int64) int64
	// QueueEmpty reports that no PE currently holds a queued packet.
	QueueEmpty() bool
}

// BatchJob is one instance of a lockstep batch: a network, a workload, and
// the per-job options. Jobs in one batch are fully independent — they
// typically share slab-backed network state (hoplite.NewBatch /
// fasttrack.NewBatch) and a SyntheticBatch workload, but any
// Network+Workload pair works.
type BatchJob struct {
	Net  noc.Network
	WL   Workload
	Opts Options
}

// BatchResult is one job's outcome.
type BatchResult struct {
	Res Result
	Err error
}

// RunBatch drives every job in lockstep: one outer loop steps each live
// instance one cycle per round through engine.cycle — the exact phase
// sequence runSequential runs — with per-instance virtual time, so every
// Result (fields, counters, float accumulation order) is bit-identical to
// Run on the same job. Batching, like Options.Shards, is a wall-clock knob
// only; runner cache keys ignore it.
//
// Per-job restrictions: Shards > 1 and EngineDense are rejected (batching
// composes with sharding at the job level — B instances on one core — not
// inside one instance; the dense path is the reference the batch is measured
// against). A rejected job gets an error in its slot; siblings still run.
//
// Instances whose workload implements EventWorkload fast-forward across
// idle stretches when no auditor, observer, or convergence window is armed
// (those need to see every cycle): the skipped cycles are no-ops by
// construction, and the watchdog state is advanced exactly as if they had
// run. Context polling happens at most once per executed cycle, so
// cancellation latency over a skipped stretch collapses to its end.
//
// Per-job Options.Observer is honored: each instance's observer sees the
// exact event sequence the per-job engine would emit for that instance (the
// engine wires it before the first cycle, and an observed instance never
// fast-forwards). The driver is single-threaded and steps live instances in
// ascending instance order every round, so observer delivery is
// deterministic — the fan-in discipline telemetry.ShardFanIn established
// for sharded runs, at the batch level.
func RunBatch(jobs []BatchJob) []BatchResult {
	out := make([]BatchResult, len(jobs))

	type instState struct {
		e    *engine
		idx  int
		now  int64
		max  int64
		ev   EventWorkload
		skip bool
	}
	live := make([]*instState, 0, len(jobs))
	for i, j := range jobs {
		opts := j.Opts.withDefaults()
		if opts.Shards > 1 {
			out[i].Err = fmt.Errorf("sim: batch job cannot shard (Shards=%d); run it as a per-job simulation instead", opts.Shards)
			continue
		}
		if opts.Engine == EngineDense {
			out[i].Err = fmt.Errorf("sim: batch jobs run the sparse engine only")
			continue
		}
		e := newEngine(j.Net, j.WL, opts)
		st := &instState{e: e, idx: i, max: opts.MaxCycles}
		if ev, ok := j.WL.(EventWorkload); ok && e.aud == nil && e.obs == nil && opts.ConvergeWindow <= 0 {
			st.ev, st.skip = ev, true
		}
		live = append(live, st)
	}

	for len(live) > 0 {
		kept := live[:0]
		for _, st := range live {
			e := st.e

			// Idle fast-forward: with an empty network, an empty source
			// queue, and an undrained workload, every cycle before the
			// next generation event ticks nothing, offers nothing, and
			// resets the watchdog — so jump straight to the event (or the
			// cycle budget). lastProgress lands where the last no-op cycle
			// would have left it. InFlight is tested first: it is the
			// cheapest probe and the one that fails on almost every busy
			// cycle.
			if st.skip && e.net.InFlight() == 0 && st.ev.QueueEmpty() && !e.wl.Done() {
				target := st.ev.NextEventCycle(st.now)
				if target > st.max {
					target = st.max
				}
				if target > st.now {
					e.lastProgress = target - 1
					st.now = target
				}
			}

			if st.now >= st.max {
				out[st.idx].Res, out[st.idx].Err = e.finish(st.now)
				continue
			}
			if err := e.pollCtx(st.now); err != nil {
				out[st.idx] = BatchResult{Res: e.res, Err: err}
				continue
			}
			cs, err := e.cycle(st.now)
			if err != nil {
				out[st.idx] = BatchResult{Res: e.res, Err: err}
				continue
			}
			switch cs {
			case cycleDrained:
				out[st.idx].Res, out[st.idx].Err = e.finish(st.now)
				continue
			case cycleConverged:
				st.now++ // this cycle completed in full
				out[st.idx].Res, out[st.idx].Err = e.finish(st.now)
				continue
			}
			st.now++
			if st.now >= st.max {
				out[st.idx].Res, out[st.idx].Err = e.finish(st.now)
				continue
			}
			kept = append(kept, st)
		}
		live = kept
	}
	return out
}
