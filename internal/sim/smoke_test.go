package sim_test

import (
	"testing"

	"fasttrack/internal/fasttrack"
	"fasttrack/internal/hoplite"
	"fasttrack/internal/multichannel"
	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

// buildAll returns one instance of every network kind at 8x8 for smoke
// coverage.
func buildAll(t *testing.T) map[string]noc.Network {
	t.Helper()
	nets := map[string]noc.Network{}
	h, err := hoplite.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	nets["hoplite"] = h
	for _, cfg := range []struct {
		name    string
		d, r    int
		variant fasttrack.Variant
	}{
		{"ft-8-2-1-full", 2, 1, fasttrack.VariantFull},
		{"ft-8-2-2-full", 2, 2, fasttrack.VariantFull},
		{"ft-8-4-2-full", 4, 2, fasttrack.VariantFull},
		{"ft-8-2-1-inject", 2, 1, fasttrack.VariantInject},
	} {
		top, err := fasttrack.NewTopology(8, cfg.d, cfg.r)
		if err != nil {
			t.Fatal(err)
		}
		ft, err := fasttrack.New(fasttrack.Config{Topology: top, Variant: cfg.variant})
		if err != nil {
			t.Fatal(err)
		}
		nets[cfg.name] = ft
	}
	mc, err := multichannel.New(8, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	nets["hoplite-3x"] = mc
	return nets
}

func TestSmokeAllNetworksDrainRandomTraffic(t *testing.T) {
	for name, net := range buildAll(t) {
		t.Run(name, func(t *testing.T) {
			wl := traffic.NewSynthetic(net.Width(), net.Height(), traffic.Random{}, 0.3, 50, 42)
			res, err := sim.Run(net, wl, sim.Options{MaxCycles: 200000})
			if err != nil {
				t.Fatal(err)
			}
			if res.TimedOut {
				t.Fatalf("timed out: delivered %d of %d", res.Delivered, res.Injected)
			}
			want := int64(64 * 50)
			if res.Delivered != want {
				t.Fatalf("delivered %d, want %d", res.Delivered, want)
			}
			if res.AvgLatency <= 0 {
				t.Fatalf("average latency %v not positive", res.AvgLatency)
			}
		})
	}
}
