package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"fasttrack/internal/buffered"
	"fasttrack/internal/core"
	"fasttrack/internal/faults"
	"fasttrack/internal/hoplite"
	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
	"fasttrack/internal/telemetry"
	"fasttrack/internal/traffic"
)

// goldenNet names one network construction in the equivalence matrix.
type goldenNet struct {
	name  string
	build func() (noc.Network, error)
	w, h  int
}

func goldenNets() []goldenNet {
	cfg := func(c core.Config) func() (noc.Network, error) {
		return func() (noc.Network, error) { return c.Build() }
	}
	return []goldenNet{
		{"hoplite-8x8", cfg(core.Hoplite(8)), 8, 8},
		{"ft-full", cfg(core.FastTrack(8, 2, 1)), 8, 8},
		{"ft-inject", cfg(core.FastTrack(8, 2, 1).WithVariant(core.VariantInject)), 8, 8},
		{"ft-depop", cfg(core.FastTrack(8, 2, 2)), 8, 8},
		{"ft-pipelined", cfg(core.FastTrack(8, 2, 1).WithPipeline(1)), 8, 8},
		{"multichannel-2x", cfg(core.MultiChannel(8, 2)), 8, 8},
		{"buffered-8x8", func() (noc.Network, error) {
			return buffered.New(8, 8, buffered.Config{Depth: 4})
		}, 8, 8},
	}
}

// runGolden executes one (network, pattern, rate) cell. reference selects
// the dense network path plus the engine's full PE scan via
// Options.Engine = EngineDense.
func runGolden(t *testing.T, gn goldenNet, pat traffic.Pattern, rate float64, reference bool) sim.Result {
	t.Helper()
	return runGoldenObserved(t, gn, pat, rate, reference, nil)
}

// runGoldenObserved is runGolden with a telemetry observer attached.
func runGoldenObserved(t *testing.T, gn goldenNet, pat traffic.Pattern, rate float64, reference bool, obs telemetry.Observer) sim.Result {
	t.Helper()
	net, err := gn.build()
	if err != nil {
		t.Fatal(err)
	}
	engine := sim.EngineSparse
	if reference {
		engine = sim.EngineDense
	}
	wl := traffic.NewSynthetic(gn.w, gn.h, pat, rate, 120, 17)
	res, err := sim.Run(net, wl, sim.Options{Engine: engine, Observer: obs})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenObserverNeutral holds both engine paths to bit-identical
// sim.Results with a no-op telemetry observer attached: the hooks may watch
// the simulation but never steer it. Covers hoplite and FastTrack on RANDOM
// and TRANSPOSE at both sweep extremes.
func TestGoldenObserverNeutral(t *testing.T) {
	nets := []goldenNet{goldenNets()[0], goldenNets()[1]} // hoplite-8x8, ft-full
	pats := []traffic.Pattern{traffic.Random{}, traffic.Transpose{}}
	for _, gn := range nets {
		for _, pat := range pats {
			for _, rate := range []float64{0.05, 1.0} {
				for _, reference := range []bool{false, true} {
					name := fmt.Sprintf("%s/%s/%.2f/ref=%v", gn.name, pat.Name(), rate, reference)
					t.Run(name, func(t *testing.T) {
						bare := runGolden(t, gn, pat, rate, reference)
						obs := runGoldenObserved(t, gn, pat, rate, reference, telemetry.Base{})
						if !reflect.DeepEqual(bare, obs) {
							t.Errorf("no-op observer changed the result:\nbare:     %+v\nobserved: %+v", bare, obs)
						}
					})
				}
			}
		}
	}
}

// TestGoldenEquivalence holds the optimized hot path (sparse router
// stepping + ActiveSet PE iteration) to byte-identical sim.Results against
// the reference path (dense stepping + full PE scan) across every network
// family, two patterns, and both sweep extremes. Bit-exactness — including
// the float latency accumulators, which are sensitive to delivery order —
// is the contract that makes the fast path safe for the paper sweeps.
func TestGoldenEquivalence(t *testing.T) {
	pats := []traffic.Pattern{traffic.Random{}, traffic.Transpose{}}
	rates := []float64{0.05, 1.0}
	for _, gn := range goldenNets() {
		for _, pat := range pats {
			for _, rate := range rates {
				name := fmt.Sprintf("%s/%s/%.2f", gn.name, pat.Name(), rate)
				t.Run(name, func(t *testing.T) {
					ref := runGolden(t, gn, pat, rate, true)
					opt := runGolden(t, gn, pat, rate, false)
					if !reflect.DeepEqual(ref, opt) {
						t.Errorf("optimized result diverges from reference:\nref: %+v\nopt: %+v", ref, opt)
					}
				})
			}
		}
	}
}

// TestGoldenEquivalenceNonPow2 covers a 6×6 torus, where router indices do
// not align with the 64-bit occupancy words the sparse path iterates.
func TestGoldenEquivalenceNonPow2(t *testing.T) {
	gn := goldenNet{"hoplite-6x6", func() (noc.Network, error) { return hoplite.New(6, 6) }, 6, 6}
	for _, rate := range []float64{0.05, 1.0} {
		ref := runGolden(t, gn, traffic.Random{}, rate, true)
		opt := runGolden(t, gn, traffic.Random{}, rate, false)
		if !reflect.DeepEqual(ref, opt) {
			t.Errorf("rate %.2f: optimized result diverges from reference", rate)
		}
	}
}

// TestCrossFamilyDeterminism runs every family twice with the same seed and
// config on the optimized path and requires identical sim.Results — the
// occupancy bookkeeping must be a pure function of the simulation history.
// The faults wrapper rides along because its packet-indexed fault schedule
// must replay identically over the sparse-stepped inner network. make
// verify executes this under the race detector.
func TestCrossFamilyDeterminism(t *testing.T) {
	nets := goldenNets()
	nets = append(nets, goldenNet{"faulty-hoplite", func() (noc.Network, error) {
		inner, err := hoplite.New(8, 8)
		if err != nil {
			return nil, err
		}
		return faults.Wrap(inner, faults.Config{
			Seed: 11, DropRate: 0.02,
			Stuck: []faults.Window{{PE: 3, From: 50, Until: 200}},
		})
	}, 8, 8})
	for _, gn := range nets {
		t.Run(gn.name, func(t *testing.T) {
			a := runGolden(t, gn, traffic.Random{}, 0.2, false)
			b := runGolden(t, gn, traffic.Random{}, 0.2, false)
			if !reflect.DeepEqual(a, b) {
				t.Errorf("two identically seeded runs diverged:\nfirst:  %+v\nsecond: %+v", a, b)
			}
		})
	}
}
