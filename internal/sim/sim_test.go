package sim_test

import (
	"errors"
	"testing"

	"fasttrack/internal/hoplite"
	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

// stuckWorkload claims work remains but never produces a packet — the
// stall tripwire must fire rather than spin forever.
type stuckWorkload struct{}

func (stuckWorkload) Tick(int64)                            {}
func (stuckWorkload) Pending(int, int64) (noc.Packet, bool) { return noc.Packet{}, false }
func (stuckWorkload) Injected(int, int64)                   {}
func (stuckWorkload) Delivered(noc.Packet, int64)           {}
func (stuckWorkload) Done() bool                            { return false }

func TestStallTripwire(t *testing.T) {
	nw, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(nw, stuckWorkload{}, sim.Options{MaxCycles: 100000, StallLimit: 500})
	if !errors.Is(err, sim.ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

func TestMaxCyclesTimesOut(t *testing.T) {
	nw, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 0.01, 1000, 1)
	res, err := sim.Run(nw, wl, sim.Options{MaxCycles: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Cycles != 50 {
		t.Errorf("TimedOut=%v cycles=%d", res.TimedOut, res.Cycles)
	}
}

func TestResultStatistics(t *testing.T) {
	nw, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 0.2, 100, 2)
	res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true, MaxPacketAge: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1600 || res.Injected != 1600 {
		t.Fatalf("counts %d/%d", res.Injected, res.Delivered)
	}
	if res.AvgLatency <= 0 || res.WorstLatency < int64(res.AvgLatency) {
		t.Errorf("latencies avg=%v worst=%v", res.AvgLatency, res.WorstLatency)
	}
	if res.P50 > res.P99 || res.P99 > res.WorstLatency {
		t.Errorf("quantiles p50=%d p99=%d worst=%d", res.P50, res.P99, res.WorstLatency)
	}
	if res.SustainedRate <= 0 || res.SustainedRate > 1 {
		t.Errorf("sustained rate %v", res.SustainedRate)
	}
	if res.Latency.Count() != 1600 {
		t.Errorf("histogram count %d", res.Latency.Count())
	}
	if res.Counters.Delivered != 1600 {
		t.Errorf("counters delivered %d", res.Counters.Delivered)
	}
}

// TestLatencyIncludesSourceQueueing: at saturation, average latency must
// vastly exceed the unloaded network diameter because packets queue at the
// source — the behaviour behind the paper's Fig 12 hockey sticks.
func TestLatencyIncludesSourceQueueing(t *testing.T) {
	low, err := runAt(0.02)
	if err != nil {
		t.Fatal(err)
	}
	high, err := runAt(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if high.AvgLatency < 5*low.AvgLatency {
		t.Errorf("saturated latency %v should dwarf unloaded %v", high.AvgLatency, low.AvgLatency)
	}
}

func runAt(rate float64) (sim.Result, error) {
	nw, err := hoplite.New(8, 8)
	if err != nil {
		return sim.Result{}, err
	}
	wl := traffic.NewSynthetic(8, 8, traffic.Random{}, rate, 300, 3)
	return sim.Run(nw, wl, sim.Options{})
}
