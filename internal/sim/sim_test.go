package sim_test

import (
	"errors"
	"testing"

	"fasttrack/internal/hoplite"
	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
	"fasttrack/internal/trace"
	"fasttrack/internal/traffic"
)

// idleWorkload claims work remains but never produces a packet. With the
// network empty and no offers made, this is deliberate idleness, not a
// livelock — the stall tripwire must leave it alone.
type idleWorkload struct{}

func (idleWorkload) Tick(int64)                            {}
func (idleWorkload) Pending(int, int64) (noc.Packet, bool) { return noc.Packet{}, false }
func (idleWorkload) Injected(int, int64)                   {}
func (idleWorkload) Delivered(noc.Packet, int64)           {}
func (idleWorkload) Done() bool                            { return false }

// insistentWorkload offers the same packet at PE 0 every cycle, forever.
type insistentWorkload struct{}

func (insistentWorkload) Tick(int64) {}
func (insistentWorkload) Pending(pe int, now int64) (noc.Packet, bool) {
	if pe != 0 {
		return noc.Packet{}, false
	}
	return noc.Packet{Dst: noc.Coord{X: 1}, Gen: now}, true
}
func (insistentWorkload) Injected(int, int64)         {}
func (insistentWorkload) Delivered(noc.Packet, int64) {}
func (insistentWorkload) Done() bool                  { return false }

// refuser vetoes every injection — a client port that is permanently
// backpressured. An offer refused cycle after cycle is a genuine livelock.
type refuser struct{ noc.Network }

func (r *refuser) Offer(int, noc.Packet) {}
func (r *refuser) Accepted(int) bool     { return false }

func TestStallTripwire(t *testing.T) {
	nw, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(&refuser{Network: nw}, insistentWorkload{},
		sim.Options{MaxCycles: 100000, StallLimit: 500})
	if !errors.Is(err, sim.ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
}

// TestIdleWorkloadDoesNotStall is the regression test for the watchdog
// false positive: a workload that is merely idle — nothing pending, empty
// network — must run to the cycle limit without tripping ErrStalled, no
// matter how far past StallLimit the idle period stretches.
func TestIdleWorkloadDoesNotStall(t *testing.T) {
	nw, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nw, idleWorkload{}, sim.Options{MaxCycles: 5000, StallLimit: 500})
	if err != nil {
		t.Fatalf("idle workload tripped the watchdog: %v", err)
	}
	if !res.TimedOut {
		t.Errorf("expected the idle run to hit MaxCycles, got %d cycles", res.Cycles)
	}
}

// TestIdleTraceGapDoesNotStall replays a trace whose second event sits in a
// compute gap far longer than StallLimit. The gap is legitimate idleness —
// the run must complete both events rather than abort with ErrStalled.
func TestIdleTraceGapDoesNotStall(t *testing.T) {
	tr := &trace.Trace{
		Name: "idle-gap",
		PEs:  16,
		Events: []trace.Event{
			{Src: 0, Dst: 1, Delay: 0},
			{Src: 1, Dst: 0, Deps: []int32{0}, Delay: 2000}, // gap > StallLimit
		},
	}
	wl, err := trace.NewWorkload(tr, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nw, wl, sim.Options{MaxCycles: 100000, StallLimit: 500})
	if err != nil {
		t.Fatalf("idle trace gap tripped the watchdog: %v", err)
	}
	if res.Delivered != 2 || res.TimedOut {
		t.Errorf("delivered %d (timedOut=%v), want both events delivered", res.Delivered, res.TimedOut)
	}
}

func TestMaxCyclesTimesOut(t *testing.T) {
	nw, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 0.01, 1000, 1)
	res, err := sim.Run(nw, wl, sim.Options{MaxCycles: 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.TimedOut || res.Cycles != 50 {
		t.Errorf("TimedOut=%v cycles=%d", res.TimedOut, res.Cycles)
	}
}

func TestResultStatistics(t *testing.T) {
	nw, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 0.2, 100, 2)
	res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true, MaxPacketAge: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1600 || res.Injected != 1600 {
		t.Fatalf("counts %d/%d", res.Injected, res.Delivered)
	}
	if res.AvgLatency <= 0 || res.WorstLatency < int64(res.AvgLatency) {
		t.Errorf("latencies avg=%v worst=%v", res.AvgLatency, res.WorstLatency)
	}
	if res.P50 > res.P99 || res.P99 > res.WorstLatency {
		t.Errorf("quantiles p50=%d p99=%d worst=%d", res.P50, res.P99, res.WorstLatency)
	}
	if res.SustainedRate <= 0 || res.SustainedRate > 1 {
		t.Errorf("sustained rate %v", res.SustainedRate)
	}
	if res.Latency.Count() != 1600 {
		t.Errorf("histogram count %d", res.Latency.Count())
	}
	if res.Counters.Delivered != 1600 {
		t.Errorf("counters delivered %d", res.Counters.Delivered)
	}
}

// TestLatencyIncludesSourceQueueing: at saturation, average latency must
// vastly exceed the unloaded network diameter because packets queue at the
// source — the behaviour behind the paper's Fig 12 hockey sticks.
func TestLatencyIncludesSourceQueueing(t *testing.T) {
	low, err := runAt(0.02)
	if err != nil {
		t.Fatal(err)
	}
	high, err := runAt(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if high.AvgLatency < 5*low.AvgLatency {
		t.Errorf("saturated latency %v should dwarf unloaded %v", high.AvgLatency, low.AvgLatency)
	}
}

func runAt(rate float64) (sim.Result, error) {
	nw, err := hoplite.New(8, 8)
	if err != nil {
		return sim.Result{}, err
	}
	wl := traffic.NewSynthetic(8, 8, traffic.Random{}, rate, 300, 3)
	return sim.Run(nw, wl, sim.Options{})
}
