package sim

import (
	"context"
	"math"
	"testing"

	"fasttrack/internal/hoplite"
	"fasttrack/internal/traffic"
)

func runSaturated(t *testing.T, opts Options) Result {
	t.Helper()
	net, err := hoplite.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 1.0, 400, 7)
	res, err := Run(net, wl, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestConvergenceEarlyExit: a saturated run reaches throughput steady state
// long before the quota drains, so the windowed stationarity test must stop
// it early while preserving the measured sustained rate within a few
// percent of the full-budget run.
func TestConvergenceEarlyExit(t *testing.T) {
	full := runSaturated(t, Options{})
	early := runSaturated(t, Options{ConvergeWindow: 128, ConvergeTol: 0.02})
	if !early.Converged {
		t.Fatalf("expected early exit, ran %d cycles (full: %d)", early.Cycles, full.Cycles)
	}
	if early.Cycles >= full.Cycles {
		t.Fatalf("converged run not shorter: %d vs %d cycles", early.Cycles, full.Cycles)
	}
	if full.SustainedRate == 0 {
		t.Fatal("full run delivered nothing")
	}
	if rel := math.Abs(early.SustainedRate-full.SustainedRate) / full.SustainedRate; rel > 0.10 {
		t.Fatalf("converged sustained rate drifted %.1f%%: %.4f vs %.4f",
			100*rel, early.SustainedRate, full.SustainedRate)
	}
}

// TestConvergenceDisabledMatchesDefault: the fixed-budget path is untouched
// when the window is 0 (the golden tests rely on this).
func TestConvergenceDisabledMatchesDefault(t *testing.T) {
	a := runSaturated(t, Options{})
	b := runSaturated(t, Options{ConvergeWindow: 0})
	if a.Cycles != b.Cycles || a.Delivered != b.Delivered || a.Converged || b.Converged {
		t.Fatalf("zero window changed behaviour: %+v vs %+v", a.Cycles, b.Cycles)
	}
}

// TestConvergenceNoExitOnShortRun: a tiny workload drains before the
// patience budget, so the run must end naturally, not via convergence.
func TestConvergenceNoExitOnShortRun(t *testing.T) {
	net, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 0.3, 5, 3)
	res, err := Run(net, wl, Options{ConvergeWindow: 4096})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Fatal("drained workload must not be reported as converged")
	}
	if res.Delivered != res.Injected {
		t.Fatalf("short run should drain: injected %d delivered %d", res.Injected, res.Delivered)
	}
}

// TestContextCancellation: a cancelled context aborts the run promptly with
// the context's error.
func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	net, err := hoplite.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 1.0, 100000, 11)
	_, err = Run(net, wl, Options{Context: ctx})
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
