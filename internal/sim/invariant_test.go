package sim_test

import (
	"errors"
	"testing"

	"fasttrack/internal/hoplite"
	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

// blackhole is a deliberately broken network: it swallows every delivery
// while still claiming the packets are in flight. Injection keeps making
// progress, so the stall tripwire never fires — only the age watchdog can
// catch it.
type blackhole struct {
	noc.Network
	swallowed int
}

func (b *blackhole) Step(now int64) {
	b.Network.Step(now)
	b.swallowed += len(b.Network.Delivered())
}
func (b *blackhole) Delivered() []noc.Packet { return nil }
func (b *blackhole) InFlight() int           { return b.Network.InFlight() + b.swallowed }

// TestWatchdogFailsFastOnBrokenRouter is an acceptance criterion: the
// watchdog must fail fast — far below the cycle limit — on a network that
// starves packets, and attach a diagnostic snapshot.
func TestWatchdogFailsFastOnBrokenRouter(t *testing.T) {
	inner, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 0.1, 1<<20, 5)
	const limit = 1 << 20
	_, err = sim.Run(&blackhole{Network: inner}, wl, sim.Options{
		MaxCycles:    limit,
		MaxPacketAge: 1000,
		StallLimit:   limit, // defeat the stall tripwire; the watchdog must act
	})
	if !errors.Is(err, sim.ErrStarvation) {
		t.Fatalf("err = %v, want ErrStarvation", err)
	}
	var ie *sim.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("err %T is not *InvariantError", err)
	}
	if ie.Cycle >= limit/100 {
		t.Errorf("watchdog fired at cycle %d; not fast for limit %d", ie.Cycle, limit)
	}
	if len(ie.Snapshot) == 0 {
		t.Error("diagnostic snapshot is empty")
	}
	for i := 1; i < len(ie.Snapshot); i++ {
		if ie.Snapshot[i].Inject < ie.Snapshot[i-1].Inject {
			t.Error("snapshot not ordered oldest-first")
		}
	}
}

// lossy silently destroys every 17th delivered packet without adjusting
// InFlight — exactly the kind of router bug per-cycle conservation catches
// at the offending cycle instead of at end of run.
type lossy struct {
	noc.Network
	n   int
	out []noc.Packet
}

func (l *lossy) Step(now int64) {
	l.Network.Step(now)
	l.out = l.out[:0]
	for _, p := range l.Network.Delivered() {
		l.n++
		if l.n%17 == 0 {
			continue
		}
		l.out = append(l.out, p)
	}
}
func (l *lossy) Delivered() []noc.Packet { return l.out }

func TestPerCycleConservationCatchesLoss(t *testing.T) {
	inner, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 0.3, 500, 2)
	_, err = sim.Run(&lossy{Network: inner}, wl, sim.Options{CheckConservation: true})
	if !errors.Is(err, sim.ErrConservation) {
		t.Fatalf("err = %v, want ErrConservation", err)
	}
	var ie *sim.InvariantError
	if !errors.As(err, &ie) || ie.Cycle > 2000 {
		t.Errorf("loss not caught promptly: %v", err)
	}
}

// duper delivers the first packet twice.
type duper struct {
	noc.Network
	done bool
	out  []noc.Packet
}

func (d *duper) Step(now int64) {
	d.Network.Step(now)
	d.out = append(d.out[:0], d.Network.Delivered()...)
	if !d.done && len(d.out) > 0 {
		d.done = true
		d.out = append(d.out, d.out[0])
	}
}
func (d *duper) Delivered() []noc.Packet { return d.out }

func TestDuplicateDeliveryDetected(t *testing.T) {
	inner, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 0.3, 100, 3)
	_, err = sim.Run(&duper{Network: inner}, wl, sim.Options{CheckConservation: true})
	if !errors.Is(err, sim.ErrDuplicate) {
		t.Fatalf("err = %v, want ErrDuplicate", err)
	}
}

// misdeliverer corrupts the destination of the first delivered packet, as a
// router with flipped address bits would.
type misdeliverer struct {
	noc.Network
	done bool
	out  []noc.Packet
}

func (m *misdeliverer) Step(now int64) {
	m.Network.Step(now)
	m.out = append(m.out[:0], m.Network.Delivered()...)
	if !m.done && len(m.out) > 0 {
		m.done = true
		m.out[0].Dst.X = (m.out[0].Dst.X + 1) % m.Network.Width()
	}
}
func (m *misdeliverer) Delivered() []noc.Packet { return m.out }

func TestMisdeliveryDetected(t *testing.T) {
	inner, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 0.3, 100, 4)
	_, err = sim.Run(&misdeliverer{Network: inner}, wl, sim.Options{CheckConservation: true})
	if !errors.Is(err, sim.ErrMisdelivered) {
		t.Fatalf("err = %v, want ErrMisdelivered", err)
	}
}

// TestStallErrorIsStructured: the existing livelock tripwire now reports a
// typed *InvariantError while keeping the ErrStalled sentinel.
func TestStallErrorIsStructured(t *testing.T) {
	nw, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(&refuser{Network: nw}, insistentWorkload{},
		sim.Options{MaxCycles: 100000, StallLimit: 500})
	if !errors.Is(err, sim.ErrStalled) {
		t.Fatalf("err = %v, want ErrStalled", err)
	}
	var ie *sim.InvariantError
	if !errors.As(err, &ie) {
		t.Fatalf("err %T is not *InvariantError", err)
	}
}

// TestCleanRunPassesAllChecks: a healthy network under full auditing and a
// tight-but-fair watchdog completes without tripping anything.
func TestCleanRunPassesAllChecks(t *testing.T) {
	nw, err := hoplite.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 0.2, 200, 6)
	res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true, MaxPacketAge: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != res.Injected {
		t.Errorf("delivered %d != injected %d", res.Delivered, res.Injected)
	}
}
