package sim_test

import (
	"fmt"
	"reflect"
	"testing"

	"fasttrack/internal/buffered"
	"fasttrack/internal/core"
	"fasttrack/internal/noc"
	"fasttrack/internal/noctest"
	"fasttrack/internal/sim"
	"fasttrack/internal/telemetry"
	"fasttrack/internal/traffic"
)

// shardableNets is the slice of the golden matrix whose networks implement
// noc.ShardedNetwork (hoplite and every FastTrack variant; the buffered and
// multichannel fabrics are sequential-only).
func shardableNets() []goldenNet {
	return goldenNets()[:5]
}

// runGoldenSharded executes one golden cell with Options.Shards = shards.
func runGoldenSharded(t *testing.T, gn goldenNet, pat traffic.Pattern, rate float64, shards int) sim.Result {
	t.Helper()
	net, err := gn.build()
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(gn.w, gn.h, pat, rate, 120, 17)
	res, err := sim.Run(net, wl, sim.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGoldenShardEquivalence holds the sharded engine to byte-identical
// sim.Results against the sequential sparse engine across every shardable
// network family, two patterns, both sweep extremes, and S ∈ {1, 2, 4}.
// This is the tentpole's determinism gate: sharding may only ever change
// wall-clock time, never a single Result bit.
func TestGoldenShardEquivalence(t *testing.T) {
	pats := []traffic.Pattern{traffic.Random{}, traffic.Transpose{}}
	rates := []float64{0.05, 1.0}
	for _, gn := range shardableNets() {
		for _, pat := range pats {
			for _, rate := range rates {
				seq := runGolden(t, gn, pat, rate, false)
				for _, s := range []int{1, 2, 4} {
					name := fmt.Sprintf("%s/%s/%.2f/shards=%d", gn.name, pat.Name(), rate, s)
					t.Run(name, func(t *testing.T) {
						shd := runGoldenSharded(t, gn, pat, rate, s)
						if !reflect.DeepEqual(seq, shd) {
							t.Errorf("sharded result diverges from sequential:\nseq: %+v\nshd: %+v", seq, shd)
						}
					})
				}
			}
		}
	}
}

// TestShardedObserverNeutralAndExact checks the telemetry fan-in path: a
// sharded run with a no-op observer attached (which forces the buffered
// per-shard event route and the sequential inject-feedback path) must still
// reproduce the sequential Result bit for bit.
func TestShardedObserverNeutralAndExact(t *testing.T) {
	gn := goldenNets()[1] // ft-full
	seq := runGolden(t, gn, traffic.Random{}, 1.0, false)
	net, err := gn.build()
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(gn.w, gn.h, traffic.Random{}, 1.0, 120, 17)
	shd, err := sim.Run(net, wl, sim.Options{Shards: 4, Observer: telemetry.Base{}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq, shd) {
		t.Errorf("sharded+observer result diverges from sequential:\nseq: %+v\nshd: %+v", seq, shd)
	}
}

// deliverRecorder extends the router-event recorder with deliveries, so the
// ordered-fan-in comparison also pins where deliveries interleave.
type deliverRecorder struct {
	noctest.Recorder
}

func (r *deliverRecorder) OnDeliver(now int64, p *noc.Packet) {
	r.Events = append(r.Events, noctest.Event{Kind: "deliver", Now: now, P: *p})
}

// TestShardedEventOrderMatchesSequential compares the router-level event
// stream (hops, deflections, express denials) plus deliveries between a
// sequential run and a sharded run: the per-shard buffers replayed through
// telemetry.ShardFanIn must reproduce the sequential emission order
// exactly. Engine-side injection events are excluded — their order follows
// the live-PE walk, which legitimately differs between workload shardings.
func TestShardedEventOrderMatchesSequential(t *testing.T) {
	gn := goldenNets()[1] // ft-full
	collect := func(shards int) []noctest.Event {
		net, err := gn.build()
		if err != nil {
			t.Fatal(err)
		}
		wl := traffic.NewSynthetic(gn.w, gn.h, traffic.Random{}, 1.0, 60, 17)
		rec := &deliverRecorder{}
		if _, err := sim.Run(net, wl, sim.Options{Shards: shards, Observer: rec}); err != nil {
			t.Fatal(err)
		}
		return rec.Events
	}
	seq := collect(1)
	shd := collect(4)
	if len(seq) == 0 {
		t.Fatal("sequential run emitted no events")
	}
	if !reflect.DeepEqual(seq, shd) {
		t.Fatalf("event streams diverged: %d sequential vs %d sharded events", len(seq), len(shd))
	}
}

// TestShardedRejectsBadConfigs pins the error surface: a non-sharded
// network, and the dense reference engine, both refuse Shards > 1.
func TestShardedRejectsBadConfigs(t *testing.T) {
	net, err := buffered.New(8, 8, buffered.Config{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 0.1, 10, 1)
	if _, err := sim.Run(net, wl, sim.Options{Shards: 4}); err == nil {
		t.Error("buffered network with Shards=4 must error")
	}

	hop, err := core.Hoplite(8).Build()
	if err != nil {
		t.Fatal(err)
	}
	wl2 := traffic.NewSynthetic(8, 8, traffic.Random{}, 0.1, 10, 1)
	if _, err := sim.Run(hop, wl2, sim.Options{Shards: 4, Engine: sim.EngineDense}); err == nil {
		t.Error("EngineDense with Shards=4 must error")
	}
}

// TestConvergedNotTimedOut is the regression test for the result-flag bug:
// a run that exits through the convergence test consumed its final cycle in
// full, and the post-loop now >= MaxCycles comparison used to mislabel it
// as timed out whenever convergence landed on the budget boundary. Converged
// must imply !TimedOut.
func TestConvergedNotTimedOut(t *testing.T) {
	build := func() (sim.Result, error) {
		net, err := core.Hoplite(8).Build()
		if err != nil {
			t.Fatal(err)
		}
		wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 1.0, 100000, 17)
		return sim.Run(net, wl, sim.Options{ConvergeWindow: 64, MaxCycles: 1 << 20})
	}
	first, err := build()
	if err != nil {
		t.Fatal(err)
	}
	if !first.Converged {
		t.Fatal("saturated run with ConvergeWindow never converged; cannot stage the regression")
	}

	// Re-run with MaxCycles set exactly to the convergence cycle. The
	// window length divides MaxCycles, so the stationarity test fires on
	// the run's very last budgeted cycle — the boundary the old
	// "now >= MaxCycles ⇒ TimedOut" logic mislabeled.
	net, err := core.Hoplite(8).Build()
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 1.0, 100000, 17)
	res, err := sim.Run(net, wl, sim.Options{ConvergeWindow: 64, MaxCycles: first.Cycles})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatalf("run did not converge at cycle %d on replay", first.Cycles)
	}
	if res.TimedOut {
		t.Errorf("Converged run labeled TimedOut (cycles=%d, max=%d): the flags must be mutually exclusive", res.Cycles, first.Cycles)
	}
}
