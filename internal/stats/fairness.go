package stats

// JainIndex computes Jain's fairness index over non-negative values:
// (Σx)² / (n·Σx²). It is 1.0 when all values are equal and approaches 1/n
// when one value dominates. Zero-valued entries are included; an empty or
// all-zero input yields 0.
func JainIndex(xs []float64) float64 {
	var sum, sq float64
	n := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		sum += x
		sq += x * x
		n++
	}
	if n == 0 || sq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sq)
}
