package stats

import (
	"bytes"
	"encoding/gob"
	"reflect"
	"testing"
)

func TestAccumulatorGobRoundTrip(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{3, 1.5, 9.25, 0.125, 7} {
		a.Add(x)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		t.Fatal(err)
	}
	var b Accumulator
	if err := gob.NewDecoder(&buf).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("round trip changed accumulator: %+v vs %+v", a, b)
	}
	if b.Mean() != a.Mean() || b.Variance() != a.Variance() {
		t.Fatalf("moments drifted: mean %v vs %v", a.Mean(), b.Mean())
	}
}

func TestAccumulatorGobZeroValue(t *testing.T) {
	var a Accumulator
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(a); err != nil {
		t.Fatal(err)
	}
	var b Accumulator
	if err := gob.NewDecoder(&buf).Decode(&b); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("zero-value round trip diverged: %+v vs %+v", a, b)
	}
}

func TestHistogramGobRoundTrip(t *testing.T) {
	h := NewLatencyHistogram(1 << 12)
	for _, x := range []int64{1, 3, 17, 400, 4096, 9999999} { // incl. overflow
		h.Add(x)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(h); err != nil {
		t.Fatal(err)
	}
	g := new(Histogram)
	if err := gob.NewDecoder(&buf).Decode(g); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(h, g) {
		t.Fatalf("round trip changed histogram")
	}
	if g.Count() != h.Count() || g.Quantile(0.5) != h.Quantile(0.5) || g.Max() != h.Max() {
		t.Fatalf("derived stats drifted after decode")
	}
	// Decoded histograms must keep working as accumulators.
	g.Add(7)
	if g.Count() != h.Count()+1 {
		t.Fatalf("decoded histogram rejects new samples")
	}
}
