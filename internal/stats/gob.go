package stats

// Gob codecs for the measurement types embedded in sim.Result. The sweep
// orchestration layer (internal/runner) persists results under .ftcache/
// with encoding/gob, which only serializes exported fields; these custom
// codecs capture the full private state so a decoded result is bit-identical
// to the freshly measured one (float64 payloads round-trip exactly through
// gob). The wire structs are versioned implicitly by the cache key's engine
// tag, so layout changes only require bumping sim.Version.

import (
	"bytes"
	"encoding/gob"
)

// accumulatorWire mirrors Accumulator's private state for serialization.
type accumulatorWire struct {
	N              int64
	Mean, M2       float64
	MinVal, MaxVal float64
}

// GobEncode implements gob.GobEncoder.
func (a Accumulator) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(accumulatorWire{
		N: a.n, Mean: a.mean, M2: a.m2, MinVal: a.min, MaxVal: a.max,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (a *Accumulator) GobDecode(b []byte) error {
	var w accumulatorWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	a.n, a.mean, a.m2, a.min, a.max = w.N, w.Mean, w.M2, w.MinVal, w.MaxVal
	return nil
}

// histogramWire mirrors Histogram's private state for serialization. The
// integer summary fields (N/Sum/MaxVal) replaced the old floating-point
// accumulator when the histogram switched to exact-merge internals; the
// layout change is versioned by the sim.Version bump in the cache keys, so
// no entry written under the old layout is ever decoded with this one.
type histogramWire struct {
	Bounds []int64
	Counts []int64
	Over   int64
	N      int64
	Sum    int64
	MaxVal int64
}

// GobEncode implements gob.GobEncoder.
func (h *Histogram) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	err := gob.NewEncoder(&buf).Encode(histogramWire{
		Bounds: h.bounds, Counts: h.counts, Over: h.over,
		N: h.n, Sum: h.sum, MaxVal: h.max,
	})
	return buf.Bytes(), err
}

// GobDecode implements gob.GobDecoder.
func (h *Histogram) GobDecode(b []byte) error {
	var w histogramWire
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&w); err != nil {
		return err
	}
	h.bounds, h.counts, h.over = w.Bounds, w.Counts, w.Over
	h.n, h.sum, h.max = w.N, w.Sum, w.MaxVal
	// The direct-index table is derived state: rebuilding it here keeps a
	// decoded histogram field-identical to a freshly constructed one.
	h.small = smallIndex(h.bounds)
	return nil
}
