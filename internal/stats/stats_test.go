package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestAccumulatorBasics(t *testing.T) {
	var a Accumulator
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		a.Add(x)
	}
	if a.Count() != 8 {
		t.Errorf("count %d", a.Count())
	}
	if a.Mean() != 5 {
		t.Errorf("mean %v", a.Mean())
	}
	if a.Min() != 2 || a.Max() != 9 {
		t.Errorf("min/max %v/%v", a.Min(), a.Max())
	}
	// Population variance is 4; sample variance is 32/7.
	if got := a.Variance(); math.Abs(got-32.0/7) > 1e-12 {
		t.Errorf("variance %v", got)
	}
}

// TestAccumulatorMatchesNaive is a quick property against the two-pass
// formulas.
func TestAccumulatorMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				clean = append(clean, x)
			}
		}
		if len(clean) < 2 {
			return true
		}
		var a Accumulator
		var sum float64
		for _, x := range clean {
			a.Add(x)
			sum += x
		}
		mean := sum / float64(len(clean))
		var m2 float64
		for _, x := range clean {
			m2 += (x - mean) * (x - mean)
		}
		naiveVar := m2 / float64(len(clean)-1)
		return math.Abs(a.Mean()-mean) < 1e-6*(1+math.Abs(mean)) &&
			math.Abs(a.Variance()-naiveVar) < 1e-6*(1+naiveVar)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccumulatorMerge(t *testing.T) {
	var a, b, all Accumulator
	for i := 0; i < 50; i++ {
		x := float64(i*i%37) - 11
		if i%2 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
		all.Add(x)
	}
	a.Merge(&b)
	if a.Count() != all.Count() {
		t.Fatalf("merged count %d vs %d", a.Count(), all.Count())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 {
		t.Errorf("merged mean %v vs %v", a.Mean(), all.Mean())
	}
	if math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Errorf("merged variance %v vs %v", a.Variance(), all.Variance())
	}
	if a.Min() != all.Min() || a.Max() != all.Max() {
		t.Errorf("merged min/max")
	}
}

func TestHistogramQuantilesAndBuckets(t *testing.T) {
	h := NewLatencyHistogram(1 << 16)
	for i := int64(1); i <= 1000; i++ {
		h.Add(i)
	}
	if h.Count() != 1000 {
		t.Fatalf("count %d", h.Count())
	}
	if h.Mean() != 500.5 {
		t.Errorf("mean %v", h.Mean())
	}
	q50 := h.Quantile(0.5)
	if q50 < 400 || q50 > 650 {
		t.Errorf("p50 %d outside bucketed tolerance", q50)
	}
	if h.Max() != 1000 {
		t.Errorf("max %d", h.Max())
	}
	var total int64
	prev := int64(0)
	h.Buckets(func(upper, count int64) {
		if upper >= 0 && upper <= prev {
			t.Errorf("buckets not ascending: %d after %d", upper, prev)
		}
		prev = upper
		total += count
	})
	if total != 1000 {
		t.Errorf("bucket total %d", total)
	}
}

// TestQuantileCeilRank pins the ceil-rank semantics: the q-quantile is the
// bucket of the ceil(q*count)-th smallest sample. The regression case is
// two samples, where truncation-based ranking returned the second sample
// for P50 (int64(0.5*2) = 1 sample skipped) instead of the first.
func TestQuantileCeilRank(t *testing.T) {
	// Buckets below 8 are exact (width 1), so expectations are precise.
	h := NewLatencyHistogram(1 << 10)
	h.Add(1)
	h.Add(5)
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("P50 of {1,5} = %d, want 1 (ceil-rank 1st sample)", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("Quantile(0) = %d, want 1 (minimum's bucket)", got)
	}
	if got := h.Quantile(1); got != 5 {
		t.Errorf("Quantile(1) = %d, want 5 (maximum)", got)
	}
	if got := h.Quantile(0.75); got != 5 {
		t.Errorf("Quantile(0.75) = %d, want 5 (rank ceil(1.5)=2)", got)
	}

	single := NewLatencyHistogram(1 << 10)
	single.Add(7)
	for _, q := range []float64{0, 0.5, 1} {
		if got := single.Quantile(q); got != 7 {
			t.Errorf("Quantile(%v) of {7} = %d, want 7", q, got)
		}
	}

	// Quantiles never exceed the observed maximum even when the bucket's
	// upper bound does.
	capped := NewLatencyHistogram(1 << 10)
	capped.Add(9) // bucket bound 10
	if got := capped.Quantile(1); got != 9 {
		t.Errorf("Quantile(1) of {9} = %d, want the sample max 9", got)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewLatencyHistogram(100)
	h.Add(5000)
	saw := false
	h.Buckets(func(upper, count int64) {
		if upper == -1 && count == 1 {
			saw = true
		}
	})
	if !saw {
		t.Error("overflow bucket not reported")
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewLatencyHistogram(1000), NewLatencyHistogram(1000)
	for i := int64(1); i < 100; i++ {
		a.Add(i)
		b.Add(i * 3)
	}
	a.Merge(b)
	if a.Count() != 198 {
		t.Errorf("merged count %d", a.Count())
	}
	defer func() {
		if recover() == nil {
			t.Error("merging mismatched geometry should panic")
		}
	}()
	a.Merge(NewLatencyHistogram(10))
}

func TestQuantilesExact(t *testing.T) {
	xs := []int64{9, 1, 8, 2, 7, 3, 6, 4, 5}
	qs := Quantiles(xs, 0, 0.5, 1)
	if qs[0] != 1 || qs[1] != 5 || qs[2] != 9 {
		t.Errorf("quantiles %v", qs)
	}
	if got := Quantiles(nil, 0.5); got[0] != 0 {
		t.Errorf("empty quantiles %v", got)
	}
}

// TestQuantileDefinitionShared pins Histogram.Quantile and Quantiles to one
// quantile definition (ceil-rank: the q-quantile is the ceil(q*n)-th smallest
// sample). The samples stay in the histogram's width-1 bucket range (1..8) so
// the bucket upper bound IS the sample and the two implementations must agree
// exactly — a p99 computed from /metrics' histogram and one computed by
// ftbench from raw latencies describe identical data identically.
//
// The regression row is q=0.99 over 10 samples: the old Quantiles truncated
// an index into the sorted slice (int(0.99*9) = 8 → the 9th sample) while the
// histogram's ceil-rank picks rank ceil(9.9) = 10 → the maximum.
func TestQuantileDefinitionShared(t *testing.T) {
	cases := []struct {
		name    string
		samples []int64
		q       float64
		want    int64
	}{
		{"p50 of 2 lands on 1st", []int64{1, 5}, 0.5, 1},
		{"p75 of 2 lands on 2nd", []int64{1, 5}, 0.75, 5},
		{"p99 of 10 is the max", []int64{1, 2, 3, 4, 5, 6, 7, 8, 8, 8}, 0.99, 8},
		{"p0 is the min", []int64{3, 1, 2}, 0, 1},
		{"p100 is the max", []int64{3, 1, 2}, 1, 3},
		{"p50 of odd count is the middle", []int64{1, 2, 3, 4, 5, 6, 7, 8, 5}, 0.5, 5},
	}
	for _, tc := range cases {
		h := NewLatencyHistogram(1 << 10)
		raw := make([]int64, len(tc.samples))
		copy(raw, tc.samples)
		for _, x := range tc.samples {
			h.Add(x)
		}
		hq := h.Quantile(tc.q)
		sq := Quantiles(raw, tc.q)[0]
		if hq != sq {
			t.Errorf("%s: Histogram.Quantile(%v)=%d but Quantiles=%d — definitions diverged",
				tc.name, tc.q, hq, sq)
		}
		if hq != tc.want {
			t.Errorf("%s: quantile %v = %d, want %d", tc.name, tc.q, hq, tc.want)
		}
	}
}

func TestRatio(t *testing.T) {
	if Ratio(3, 2) != "1.50x" {
		t.Errorf("Ratio = %q", Ratio(3, 2))
	}
	if Ratio(1, 0) != "inf" {
		t.Errorf("Ratio by zero = %q", Ratio(1, 0))
	}
}

func TestAccumulatorMergeEdgeCases(t *testing.T) {
	var empty, one Accumulator
	one.Add(5)
	// Merging an empty accumulator is a no-op.
	snapshot := one
	one.Merge(&empty)
	if one != snapshot {
		t.Error("merging empty changed the receiver")
	}
	// Merging into an empty receiver copies the argument.
	empty.Merge(&one)
	if empty.Count() != 1 || empty.Mean() != 5 {
		t.Errorf("merge into empty: %+v", empty)
	}
	if empty.StdDev() != 0 {
		t.Errorf("single sample stddev %v", empty.StdDev())
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h := NewLatencyHistogram(100)
	if q := h.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile %d", q)
	}
	if h.Max() != 0 || h.Mean() != 0 {
		t.Error("empty histogram stats should be zero")
	}
}

func TestJainIndexProperties(t *testing.T) {
	if JainIndex(nil) != 0 {
		t.Error("empty input should give 0")
	}
	if JainIndex([]float64{0, 0}) != 0 {
		t.Error("all-zero input should give 0")
	}
	if j := JainIndex([]float64{3, 3, 3, 3}); j < 0.999 {
		t.Errorf("equal values should give 1, got %v", j)
	}
	// One dominant value over n entries approaches 1/n.
	if j := JainIndex([]float64{100, 0, 0, 0}); j > 0.26 {
		t.Errorf("dominated distribution index %v, want ~0.25", j)
	}
	// Negative entries are ignored.
	if j := JainIndex([]float64{-5, 2, 2}); j < 0.999 {
		t.Errorf("negatives should be skipped, got %v", j)
	}
}

func TestFaultCountsAccounting(t *testing.T) {
	f := FaultCounts{Dropped: 3, Misrouted: 5, Misdelivered: 4, InjectBlocked: 2, HeldDeliveries: 7}
	if got := f.Lost(); got != 7 {
		t.Errorf("Lost() = %d, want 7 (drops + misdeliveries)", got)
	}
	if got := f.Total(); got != 10 {
		t.Errorf("Total() = %d, want 10", got)
	}
}

func TestRecoveryDeliveryRate(t *testing.T) {
	if r := (RecoveryCounts{}).DeliveryRate(); r != 1 {
		t.Errorf("empty DeliveryRate = %v, want 1", r)
	}
	r := RecoveryCounts{Sent: 200, Completed: 150}
	if got := r.DeliveryRate(); got != 0.75 {
		t.Errorf("DeliveryRate = %v, want 0.75", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(1, 0); got != "n/a" {
		t.Errorf("Percent(1,0) = %q", got)
	}
	if got := Percent(150, 200); got != "75.0%" {
		t.Errorf("Percent(150,200) = %q", got)
	}
}

// TestHistogramSmallIndexMatchesSearch pins the direct-index bucket table
// against the binary search it replaces, for every value it covers and the
// first values beyond it.
func TestHistogramSmallIndexMatchesSearch(t *testing.T) {
	for _, max := range []int64{16, 1 << 10, 1 << 20} {
		h := NewLatencyHistogram(max)
		search := func(x int64) int {
			return sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= x })
		}
		for x := int64(0); x < int64(len(h.small)); x++ {
			if int(h.small[x]) != search(x) {
				t.Fatalf("max=%d x=%d: small=%d search=%d", max, x, h.small[x], search(x))
			}
		}
		// Values past the table (and past the last bound) take the search
		// path; spot-check Add routes them identically by comparing two
		// histograms fed from both regimes.
		a, b := NewLatencyHistogram(max), NewLatencyHistogram(max)
		for _, x := range []int64{0, 1, max / 2, max - 1, max, max + 1, max * 3} {
			a.Add(x)
			b.Add(x)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("max=%d: histograms diverge", max)
		}
	}
}
