// Package stats provides the measurement primitives shared by the simulator
// and the experiment harness: streaming accumulators, latency histograms
// with logarithmic bucketing (the paper's Figure 16 uses a log latency
// axis), and small helpers for quantiles.
package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Accumulator tracks count/mean/min/max/variance of a stream of samples
// using Welford's online algorithm. The zero value is ready to use.
type Accumulator struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add records one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if a.n == 1 {
		a.min, a.max = x, x
	} else {
		if x < a.min {
			a.min = x
		}
		if x > a.max {
			a.max = x
		}
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
}

// Count returns the number of samples recorded.
func (a *Accumulator) Count() int64 { return a.n }

// Mean returns the sample mean, or 0 with no samples.
func (a *Accumulator) Mean() float64 { return a.mean }

// Min returns the smallest sample, or 0 with no samples.
func (a *Accumulator) Min() float64 { return a.min }

// Max returns the largest sample, or 0 with no samples.
func (a *Accumulator) Max() float64 { return a.max }

// Variance returns the unbiased sample variance.
func (a *Accumulator) Variance() float64 {
	if a.n < 2 {
		return 0
	}
	return a.m2 / float64(a.n-1)
}

// StdDev returns the sample standard deviation.
func (a *Accumulator) StdDev() float64 { return math.Sqrt(a.Variance()) }

// Merge folds other into a.
func (a *Accumulator) Merge(other *Accumulator) {
	if other.n == 0 {
		return
	}
	if a.n == 0 {
		*a = *other
		return
	}
	n := a.n + other.n
	d := other.mean - a.mean
	a.m2 += other.m2 + d*d*float64(a.n)*float64(other.n)/float64(n)
	a.mean += d * float64(other.n) / float64(n)
	if other.min < a.min {
		a.min = other.min
	}
	if other.max > a.max {
		a.max = other.max
	}
	a.n = n
}

// Histogram is a fixed-bucket histogram over non-negative integer samples
// (packet latencies in cycles). Buckets grow geometrically so that both a
// 3-cycle delivery and a 10 000-cycle pathological deflection are resolved,
// mirroring the log axis of the paper's Fig 16.
//
// The summary moments are kept as exact integers (count, sum, max) rather
// than a floating-point accumulator, so merging per-shard histograms is
// bit-identical to adding every sample into one histogram in any order —
// the property the sharded engine's golden equivalence tests rely on.
type Histogram struct {
	bounds []int64 // upper inclusive bound per bucket
	counts []int64
	over   int64 // samples beyond the last bound
	n      int64 // total samples
	sum    int64 // exact sample sum
	max    int64 // largest sample

	// small[x] is the bucket index of sample value x, precomputed for the
	// low values almost every latency sample lands in (Fig 16's mass sits
	// far below smallBucketCap), turning the per-delivery bucket lookup
	// into one load. Derived from bounds — rebuilt on decode, never
	// serialized, and identical for identical geometry, so it is invisible
	// to gob bytes and DeepEqual alike.
	small []int32
}

// smallBucketCap bounds the direct-index bucket table.
const smallBucketCap = 4096

// smallCache shares the read-only tables across histograms: the geometry is
// a pure function of the constructor's max, and simulations build one
// histogram per run, so recomputing (and reallocating) 16KB per engine
// would be pure churn. NewLatencyHistogram geometries are fully determined
// by (bucket count, last bound), which is the key.
var smallCache sync.Map // smallKey -> []int32

type smallKey struct {
	n    int
	last int64
}

// smallIndex returns the bucket index of every sample value in
// [0, min(lastBound, smallBucketCap)), memoized per geometry.
func smallIndex(bounds []int64) []int32 {
	if len(bounds) == 0 {
		return nil
	}
	last := bounds[len(bounds)-1]
	key := smallKey{n: len(bounds), last: last}
	if tab, ok := smallCache.Load(key); ok {
		return tab.([]int32)
	}
	limit := int64(smallBucketCap)
	if last+1 < limit {
		limit = last + 1
	}
	small := make([]int32, limit)
	i := 0
	for x := int64(0); x < limit; x++ {
		for bounds[i] < x {
			i++
		}
		small[x] = int32(i)
	}
	smallCache.Store(key, small)
	return small
}

// NewLatencyHistogram returns a histogram with geometric buckets from 1 up
// to max (inclusive) with ratio ~1.25.
func NewLatencyHistogram(max int64) *Histogram {
	var bounds []int64
	b := int64(1)
	for b < max {
		bounds = append(bounds, b)
		nb := b + b/4
		if nb == b {
			nb = b + 1
		}
		b = nb
	}
	bounds = append(bounds, max)
	return &Histogram{bounds: bounds, counts: make([]int64, len(bounds)), small: smallIndex(bounds)}
}

// Add records one sample.
func (h *Histogram) Add(x int64) {
	h.n++
	h.sum += x
	if x > h.max {
		h.max = x
	}
	if x >= 0 && x < int64(len(h.small)) {
		h.counts[h.small[x]]++
		return
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return h.bounds[i] >= x })
	if i == len(h.bounds) {
		h.over++
		return
	}
	h.counts[i]++
}

// Count returns the total number of samples.
func (h *Histogram) Count() int64 { return h.n }

// Mean returns the mean sample value.
func (h *Histogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Max returns the largest sample value.
func (h *Histogram) Max() int64 { return h.max }

// Quantile returns an approximate q-quantile (0 <= q <= 1) using the bucket
// upper bounds. It uses ceil-rank semantics: the result is the bucket
// holding the ceil(q*count)-th smallest sample, so Quantile(0.5) of two
// samples lands on the first (truncation would skip to the second whenever
// q*count is whole), and Quantile(0) / Quantile(1) are the buckets of the
// minimum and maximum.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.n
	if total == 0 {
		return 0
	}
	rank := ceilRank(q, total)
	max := h.max
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if b := h.bounds[i]; b < max {
				return b
			}
			return max
		}
	}
	return max
}

// Reset clears all samples while keeping the bucket geometry, so windowed
// consumers (telemetry.Metrics) can reuse one histogram per window instead
// of reallocating the bucket arrays.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.over = 0
	h.n, h.sum, h.max = 0, 0, 0
}

// Buckets invokes fn for every non-empty bucket with the bucket's upper
// bound and count, in ascending order, then once more with the overflow
// count (bound = -1) if any samples exceeded the histogram range.
func (h *Histogram) Buckets(fn func(upper int64, count int64)) {
	for i, c := range h.counts {
		if c > 0 {
			fn(h.bounds[i], c)
		}
	}
	if h.over > 0 {
		fn(-1, h.over)
	}
}

// Merge folds other into h. The two histograms must share bucket geometry
// (same constructor arguments); Merge panics otherwise. Because the summary
// moments are exact integers, merging is associative and commutative: any
// partition of a sample stream merges back to the identical histogram.
func (h *Histogram) Merge(other *Histogram) {
	if len(h.bounds) != len(other.bounds) {
		panic("stats: merging histograms with different geometry")
	}
	for i := range h.counts {
		h.counts[i] += other.counts[i]
	}
	h.over += other.over
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// ceilRank converts quantile q over n samples to a 1-based rank using
// ceil-rank semantics: the q-quantile is the ceil(q*n)-th smallest sample,
// clamped to [1, n]. This is the single quantile definition shared by
// Histogram.Quantile and Quantiles, so a p99 computed from a histogram
// (/metrics) and one computed from raw samples (ftbench) agree on the same
// data up to bucket resolution.
func ceilRank(q float64, n int64) int64 {
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	if rank > n {
		rank = n
	}
	return rank
}

// Quantiles computes exact quantiles of an int64 sample slice using the same
// ceil-rank semantics as Histogram.Quantile. The input is sorted in place.
func Quantiles(xs []int64, qs ...float64) []int64 {
	out := make([]int64, len(qs))
	if len(xs) == 0 {
		return out
	}
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
	for i, q := range qs {
		out[i] = xs[ceilRank(q, int64(len(xs)))-1]
	}
	return out
}

// Ratio formats a/b as "N.NNx", guarding against division by zero.
func Ratio(a, b float64) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", a/b)
}
