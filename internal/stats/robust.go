package stats

import "fmt"

// FaultCounts tallies injected faults. It is the vocabulary shared by the
// fault injector (internal/faults), the simulation engine (internal/sim,
// which uses Lost to keep packet-conservation auditing honest under
// injected loss), and the reporting tools (cmd/ftsim).
type FaultCounts struct {
	// Dropped counts packets destroyed in flight by transient link faults:
	// the network accepted them and they never exit.
	Dropped int64
	// Misrouted counts packets whose destination address bits were corrupted
	// at injection time by a transient fault.
	Misrouted int64
	// Misdelivered counts misrouted packets that exited at the wrong node
	// and were discarded there (the receiving client rejects a packet not
	// addressed to it).
	Misdelivered int64
	// InjectBlocked counts injection attempts refused by a stuck-at link or
	// a frozen router.
	InjectBlocked int64
	// HeldDeliveries counts deliveries delayed because the destination
	// router was frozen when the packet arrived.
	HeldDeliveries int64
}

// Lost returns the packets permanently removed from the network by faults:
// outright drops plus misdeliveries discarded at the wrong node. The
// conservation invariant under faults is
//
//	injected == delivered + Lost() + in-flight.
func (f FaultCounts) Lost() int64 { return f.Dropped + f.Misdelivered }

// Total returns the number of fault events that fired.
func (f FaultCounts) Total() int64 { return f.Dropped + f.Misrouted + f.InjectBlocked }

// RecoveryCounts summarizes the resilient-delivery layer
// (internal/reliability): end-to-end retransmission on delivery timeout.
type RecoveryCounts struct {
	// Sent counts distinct application packets handed to the network.
	Sent int64
	// Completed counts application packets eventually delivered (on any
	// attempt, including late arrivals after the retry budget expired).
	Completed int64
	// Retries counts retransmissions issued.
	Retries int64
	// Recovered counts packets that completed only after at least one
	// retransmission — deliveries a fault would otherwise have lost.
	Recovered int64
	// Duplicates counts redundant wire-level deliveries suppressed before
	// they reached the application (an original and its retransmit both
	// arrived).
	Duplicates int64
	// Abandoned counts packets given up on after the retry budget.
	Abandoned int64
}

// DeliveryRate returns Completed/Sent in [0, 1], or 1 when nothing was sent.
func (r RecoveryCounts) DeliveryRate() float64 {
	if r.Sent == 0 {
		return 1
	}
	return float64(r.Completed) / float64(r.Sent)
}

// Percent formats part/whole as "NN.N%", guarding against an empty whole.
func Percent(part, whole int64) string {
	if whole == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}
