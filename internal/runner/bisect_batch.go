package runner

import (
	"context"

	"fasttrack/internal/core"
	"fasttrack/internal/sim"
)

// SyntheticCurve names one saturation curve for SaturationSearchBatch: a
// network configuration plus the synthetic options template whose Rate each
// evaluation overrides.
type SyntheticCurve struct {
	Cfg  core.Config
	Opts core.SyntheticOptions
}

// SaturationSearchBatch runs one SaturationSearch per curve, advancing all
// searches in lockstep rounds: each round gathers the next rate probe every
// still-active search needs and answers them with a single DoSyntheticBatch
// call, so probes for curves that share a configuration run as one lockstep
// chunk on recycled networks and the whole round pays the batched engine's
// amortized costs instead of len(curves) per-job setups.
//
// The grouping is invisible in the outcome: each search's probe sequence
// depends only on its own results, every result is bit-identical to the
// per-job path (RunBatch's contract), and cache reads/writes go through the
// same keys and bytes DoSyntheticBatch always uses. Running the same curves
// through per-curve SaturationSearch(Do(...)) yields equal Saturations and
// an equivalent cache.
func SaturationSearchBatch(ctx context.Context, o *Orchestrator, pool *NetPool, curves []SyntheticCurve, opts SaturationOptions) ([]Saturation, error) {
	type reply struct {
		res sim.Result
		err error
	}
	type request struct {
		curve int
		rate  float64
		reply chan reply
	}

	sats := make([]Saturation, len(curves))
	errs := make([]error, len(curves))
	reqCh := make(chan request)
	doneCh := make(chan struct{})
	for i := range curves {
		i := i
		go func() {
			sats[i], errs[i] = SaturationSearch(func(rate float64) (sim.Result, error) {
				ch := make(chan reply, 1)
				reqCh <- request{curve: i, rate: rate, reply: ch}
				r := <-ch
				return r.res, r.err
			}, opts)
			doneCh <- struct{}{}
		}()
	}

	// Round barrier: between rounds every active search is blocked on its
	// reply, so each sends exactly one message per round — its next probe,
	// or done. Collecting one message per active search therefore drains the
	// round completely before any simulation runs.
	active := len(curves)
	for active > 0 {
		var round []request
		for n := active; n > 0; n-- {
			select {
			case r := <-reqCh:
				round = append(round, r)
			case <-doneCh:
				active--
			}
		}
		if len(round) == 0 {
			continue
		}
		jobs := make([]SyntheticJob, len(round))
		for k, r := range round {
			opts := curves[r.curve].Opts
			opts.Rate = r.rate
			jobs[k] = SyntheticJob{Cfg: curves[r.curve].Cfg, Opts: opts}
		}
		out, err := DoSyntheticBatch(ctx, o, pool, jobs)
		for k, r := range round {
			if err != nil {
				r.reply <- reply{err: err}
			} else {
				r.reply <- reply{res: out[k]}
			}
		}
	}

	for _, err := range errs {
		if err != nil {
			return sats, err
		}
	}
	return sats, nil
}
