package runner

import (
	"context"
	"fmt"
	"sync"
	"time"

	"fasttrack/internal/core"
)

// batchSize is the lockstep width DoSyntheticBatch groups cache misses into:
// wide enough to amortize shared per-cycle costs across instances, narrow
// enough that a batch's slabs stay cache-resident and a cancelled sweep
// wastes at most one chunk of work.
const batchSize = 16

// NetPool is a sync.Pool-style recycler of batched network harnesses keyed
// by topology + engine configuration (ConfigKey). A sweep's jobs cluster on
// a handful of configurations, so recycling a harness across successive
// chunks replaces per-job network construction with a Reset over slabs that
// already exist. Reuse is invisible in results: Reset restores the exact
// post-construction idle state (golden-tested), and cache keys never see the
// pool. The zero value is ready to use.
type NetPool struct {
	mu sync.Mutex
	m  map[string][]*core.SyntheticBatch
}

// Get returns an idle harness for cfg with capacity at least size, building
// one when the pool has none. The caller should Put it back when done.
func (p *NetPool) Get(cfg core.Config, size int) (*core.SyntheticBatch, error) {
	key := ConfigKey(cfg)
	p.mu.Lock()
	for l := p.m[key]; len(l) > 0; {
		sb := l[len(l)-1]
		p.m[key] = l[:len(l)-1]
		if sb.Size() >= size {
			p.mu.Unlock()
			return sb, nil
		}
		// Undersized harness (built for a smaller earlier request): drop it
		// and build at the requested width.
		l = p.m[key]
	}
	p.mu.Unlock()
	return core.NewSyntheticBatch(cfg, size)
}

// Put resets sb and stores it for reuse.
func (p *NetPool) Put(sb *core.SyntheticBatch) {
	if sb == nil {
		return
	}
	sb.Reset()
	key := ConfigKey(sb.Config())
	p.mu.Lock()
	if p.m == nil {
		p.m = make(map[string][]*core.SyntheticBatch)
	}
	p.m[key] = append(p.m[key], sb)
	p.mu.Unlock()
}

// SyntheticJob is one synthetic simulation request for DoSyntheticBatch.
type SyntheticJob struct {
	Cfg  core.Config
	Opts core.SyntheticOptions
}

// DoSyntheticBatch answers a slice of synthetic jobs through the cache and
// the lockstep batched engine, returning results in job order.
//
// Per job it is equivalent to Do(SyntheticKey, RunSynthetic) — same cache
// keys, same stored bytes, same Result bits — but cache misses that qualify
// for the batched path (core.Batchable) are grouped by configuration and run
// in lockstep chunks on recycled slab-backed networks, which is where the
// sweep cold-phase speedup comes from. Cache hits are served per job exactly
// as Do serves them; un-batchable misses fall back to RunSynthetic under
// ForEach. Batching is therefore a wall-clock property only: keys exclude
// it, mirroring Options.Shards.
func DoSyntheticBatch(ctx context.Context, o *Orchestrator, pool *NetPool, jobs []SyntheticJob) ([]core.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]core.Result, len(jobs))
	keys := make([]string, len(jobs))
	var singles []int            // cache misses needing the per-job path
	groups := map[string][]int{} // ConfigKey -> batchable miss indices, job order
	var order []string           // group insertion order, for determinism
	for i, j := range jobs {
		keys[i] = SyntheticKey(j.Cfg, j.Opts)
		if o.Cache != nil {
			t0 := time.Now()
			if o.Cache.Get(keys[i], &out[i]) {
				o.histCacheHit.Observe(time.Since(t0))
				o.mu.Lock()
				o.hits++
				o.mu.Unlock()
				continue
			}
		}
		if !core.Batchable(j.Cfg, j.Opts) {
			singles = append(singles, i)
			continue
		}
		ck := ConfigKey(j.Cfg)
		if _, seen := groups[ck]; !seen {
			order = append(order, ck)
		}
		groups[ck] = append(groups[ck], i)
	}

	// One work unit per lockstep chunk (or per un-batchable single); ForEach
	// spreads units across the worker pool and cancels siblings on failure.
	type unit struct {
		cfg  core.Config
		idxs []int
		bat  bool // lockstep chunk (true) vs per-job single (false)
	}
	var units []unit
	for _, ck := range order {
		idxs := groups[ck]
		cfg := jobs[idxs[0]].Cfg
		for lo := 0; lo < len(idxs); lo += batchSize {
			hi := lo + batchSize
			if hi > len(idxs) {
				hi = len(idxs)
			}
			units = append(units, unit{cfg: cfg, idxs: idxs[lo:hi], bat: true})
		}
	}
	for _, i := range singles {
		units = append(units, unit{cfg: jobs[i].Cfg, idxs: []int{i}})
	}
	if len(units) == 0 {
		return out, nil
	}

	err := o.ForEach(ctx, len(units), func(jctx context.Context, u int) error {
		un := units[u]
		if !un.bat {
			i := un.idxs[0]
			res, err := Do(jctx, o, keys[i], func() (core.Result, error) {
				return core.RunSynthetic(jctx, jobs[i].Cfg, jobs[i].Opts)
			})
			if err != nil {
				return err
			}
			out[i] = res
			return nil
		}
		if span := spanFrom(jctx); span != nil {
			span.Key = fmt.Sprintf("batch x%d|%s", len(un.idxs), ConfigKey(un.cfg))
		}
		optsList := make([]core.SyntheticOptions, len(un.idxs))
		for k, i := range un.idxs {
			optsList[k] = jobs[i].Opts
		}
		var sb *core.SyntheticBatch
		var err error
		if pool != nil {
			sb, err = pool.Get(un.cfg, len(un.idxs))
		} else {
			sb, err = core.NewSyntheticBatch(un.cfg, len(un.idxs))
		}
		if err != nil {
			return err
		}
		t0 := time.Now()
		results, err := sb.Run(jctx, optsList)
		if pool != nil {
			pool.Put(sb)
		}
		if err != nil {
			return err
		}
		// The chunk's wall clock is shared; attribute an equal slice to each
		// job so the simulated histogram's _count still equals Executed.
		perJob := time.Since(t0) / time.Duration(len(un.idxs))
		for range un.idxs {
			o.histSimulated.Observe(perJob)
		}
		o.mu.Lock()
		o.executed += int64(len(un.idxs))
		o.mu.Unlock()
		for k, i := range un.idxs {
			out[i] = results[k]
			if o.Cache != nil {
				// Best-effort, like Do: a failed write only costs a recompute.
				_ = o.Cache.Put(keys[i], out[i])
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
