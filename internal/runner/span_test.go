package runner

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// TestSpanLogRecordsJobs runs a batch through ForEach with a span log
// attached and checks every job produced exactly one span with sane
// timestamps, worker ids inside the pool, and cache-hit marks from Do.
func TestSpanLogRecordsJobs(t *testing.T) {
	dir := t.TempDir()
	cache, err := NewCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	o := &Orchestrator{Workers: 3, Cache: cache, Spans: NewSpanLog()}

	const n = 8
	job := func(ctx context.Context, i int) error {
		_, err := Do(ctx, o, fmt.Sprintf("span-test-%d", i%4), func() (int, error) {
			return i, nil
		})
		return err
	}
	if err := o.ForEach(context.Background(), n, job); err != nil {
		t.Fatal(err)
	}

	spans := o.Spans.Spans()
	if len(spans) != n {
		t.Fatalf("recorded %d spans, want %d", len(spans), n)
	}
	seen := map[int]bool{}
	hits := 0
	for _, s := range spans {
		if seen[s.Index] {
			t.Errorf("job %d recorded twice", s.Index)
		}
		seen[s.Index] = true
		if s.Worker < 0 || s.Worker >= 3 {
			t.Errorf("job %d ran on worker %d, pool size 3", s.Index, s.Worker)
		}
		if s.Start.Before(s.Queued) || s.End.Before(s.Start) {
			t.Errorf("job %d has inverted timeline: queued %v start %v end %v",
				s.Index, s.Queued, s.Start, s.End)
		}
		if s.Key == "" {
			t.Errorf("job %d span has no cache key", s.Index)
		}
		if s.CacheHit {
			hits++
		}
		if s.Err != "" {
			t.Errorf("job %d recorded error %q", s.Index, s.Err)
		}
	}
	// 4 distinct keys over 8 jobs: the second occurrence of each key is a
	// hit (completion order varies, but the total is exact).
	if hits != 4 {
		t.Errorf("cache-hit spans = %d, want 4", hits)
	}
	_, cacheHits := o.Stats()
	if int64(hits) != cacheHits {
		t.Errorf("span hits = %d, orchestrator counted %d", hits, cacheHits)
	}
}

// TestSpanLogRecordsErrors checks failed jobs carry their error message and
// the orchestrator's failure counter agrees.
func TestSpanLogRecordsErrors(t *testing.T) {
	o := &Orchestrator{Workers: 1, Spans: NewSpanLog()}
	boom := errors.New("boom")
	err := o.ForEach(context.Background(), 1, func(ctx context.Context, i int) error {
		return boom
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("ForEach error = %v, want *JobError", err)
	}
	spans := o.Spans.Spans()
	if len(spans) != 1 || spans[0].Err != "boom" {
		t.Fatalf("spans = %+v, want one span with Err \"boom\"", spans)
	}
	if snap := o.Snapshot(); snap.Failed != 1 {
		t.Errorf("Snapshot.Failed = %d, want 1", snap.Failed)
	}
}

// TestWriteChrome validates the trace-event export: one JSON object with a
// traceEvents array holding per-worker thread_name metadata plus one "X"
// complete event per span, microsecond timestamps, pid 2.
func TestWriteChrome(t *testing.T) {
	o := &Orchestrator{Workers: 2, Spans: NewSpanLog()}
	if err := o.ForEach(context.Background(), 5, func(ctx context.Context, i int) error {
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := o.Spans.WriteChrome(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			TS   int64          `json:"ts"`
			Dur  int64          `json:"dur"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("export is not valid trace-event JSON: %v\n%s", err, sb.String())
	}

	var meta, complete int
	for _, ev := range doc.TraceEvents {
		if ev.PID != 2 {
			t.Errorf("event %q on pid %d, want 2", ev.Name, ev.PID)
		}
		switch ev.Ph {
		case "M":
			meta++
			if !strings.HasPrefix(ev.Name, "thread_name") {
				t.Errorf("metadata event named %q", ev.Name)
			}
		case "X":
			complete++
			if !strings.HasPrefix(ev.Name, "job ") {
				t.Errorf("complete event named %q", ev.Name)
			}
			if ev.Dur < 1 {
				t.Errorf("event %q has dur %d, want >= 1", ev.Name, ev.Dur)
			}
			if ev.TS < 0 {
				t.Errorf("event %q has negative ts %d", ev.Name, ev.TS)
			}
			if _, ok := ev.Args["index"]; !ok {
				t.Errorf("event %q missing index arg", ev.Name)
			}
		default:
			t.Errorf("unexpected phase %q", ev.Ph)
		}
	}
	if complete != 5 {
		t.Errorf("complete events = %d, want 5", complete)
	}
	if meta < 1 || meta > 2 {
		t.Errorf("thread_name events = %d, want 1..2 (one per worker used)", meta)
	}
}
