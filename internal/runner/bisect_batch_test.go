package runner

import (
	"context"
	"reflect"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/sim"
)

// TestSaturationSearchBatchMatchesPerCurve pins the lockstep sweep's
// contract: running several saturation searches through the round
// coordinator yields Saturations DeepEqual to independent per-curve
// searches on the per-job path, and fills a cache the per-job path can
// answer warm.
func TestSaturationSearchBatchMatchesPerCurve(t *testing.T) {
	template := core.SyntheticOptions{PacketsPerPE: 40, Seed: 17}
	curves := []SyntheticCurve{
		{Cfg: core.FastTrack(4, 2, 1), Opts: withPattern(template, "RANDOM")},
		{Cfg: core.FastTrack(4, 2, 1), Opts: withPattern(template, "TRANSPOSE")},
		{Cfg: core.Hoplite(4), Opts: withPattern(template, "RANDOM")},
	}
	sopts := SaturationOptions{Tol: 0.05, Probes: []float64{0.05}}

	batchedCache := testCache(t)
	o := &Orchestrator{Cache: batchedCache, Workers: 2}
	got, err := SaturationSearchBatch(context.Background(), o, &NetPool{}, curves, sopts)
	if err != nil {
		t.Fatal(err)
	}

	perJob := &Orchestrator{Cache: testCache(t)}
	for i, c := range curves {
		c := c
		want, err := SaturationSearch(func(rate float64) (sim.Result, error) {
			opts := c.Opts
			opts.Rate = rate
			return Do(context.Background(), perJob, SyntheticKey(c.Cfg, opts), func() (sim.Result, error) {
				return core.RunSynthetic(context.Background(), c.Cfg, opts)
			})
		}, sopts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("curve %d diverges from per-job search\nbatched: %+v\nper-job: %+v", i, got[i], want)
		}
	}

	// The batched cache answers the per-job search warm: zero executions.
	warm := &Orchestrator{Cache: batchedCache}
	for _, c := range curves {
		c := c
		if _, err := SaturationSearch(func(rate float64) (sim.Result, error) {
			opts := c.Opts
			opts.Rate = rate
			return Do(context.Background(), warm, SyntheticKey(c.Cfg, opts), func() (sim.Result, error) {
				return core.RunSynthetic(context.Background(), c.Cfg, opts)
			})
		}, sopts); err != nil {
			t.Fatal(err)
		}
	}
	if ex, _ := warm.Stats(); ex != 0 {
		t.Fatalf("per-job search over batched cache executed %d simulations, want 0", ex)
	}
}

func withPattern(o core.SyntheticOptions, pat string) core.SyntheticOptions {
	o.Pattern = pat
	return o
}
