package runner

import (
	"context"
	"errors"
	"math"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/sim"
)

// analyticCurve models a bufferless NoC's offered-vs-sustained curve: the
// network delivers the offered load up to the knee, then plateaus.
func analyticCurve(knee float64) func(rate float64) (sim.Result, error) {
	return func(rate float64) (sim.Result, error) {
		return sim.Result{SustainedRate: math.Min(rate, knee)}, nil
	}
}

// TestSaturationSearchFindsKnee: on a monotone curve, bisection locates the
// same knee a dense sweep does, to within tolerance + slack.
func TestSaturationSearchFindsKnee(t *testing.T) {
	for _, knee := range []float64{0.11, 0.37, 0.62, 0.93} {
		evals := 0
		eval := func(rate float64) (sim.Result, error) {
			evals++
			return analyticCurve(knee)(rate)
		}
		sat, err := SaturationSearch(eval, SaturationOptions{Tol: 0.01})
		if err != nil {
			t.Fatal(err)
		}
		// Dense-sweep reference: the largest grid rate still delivered in
		// full — i.e. the knee itself for this analytic curve.
		slackBand := knee*0.05 + 0.01 // Slack widens the sustained band, Tol the bracket
		if math.Abs(sat.KneeRate-knee) > slackBand {
			t.Errorf("knee %.2f: found %.4f (off by %.4f > %.4f)", knee, sat.KneeRate,
				math.Abs(sat.KneeRate-knee), slackBand)
		}
		if math.Abs(sat.Throughput-knee) > 0.05*knee+1e-9 {
			t.Errorf("knee %.2f: throughput %.4f", knee, sat.Throughput)
		}
		if evals > 16 {
			t.Errorf("knee %.2f: %d evals exceeds budget", knee, evals)
		}
		if dense := 10; evals >= dense {
			t.Errorf("knee %.2f: %d evals is no cheaper than the %d-point dense grid", knee, evals, dense)
		}
	}
}

// TestSaturationSearchNeverSaturates: a curve that always delivers the
// offered load reports the bracket top as the knee after one evaluation
// beyond the probes.
func TestSaturationSearchNeverSaturates(t *testing.T) {
	evals := 0
	sat, err := SaturationSearch(func(rate float64) (sim.Result, error) {
		evals++
		return sim.Result{SustainedRate: rate}, nil
	}, SaturationOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sat.KneeRate != 1.0 || evals != 1 {
		t.Fatalf("want knee=1.0 in 1 eval, got %.3f in %d", sat.KneeRate, evals)
	}
}

// TestSaturationSearchProbes: probe rates are always present in the curve
// samples and deduplicated against bisection midpoints.
func TestSaturationSearchProbes(t *testing.T) {
	sat, err := SaturationSearch(analyticCurve(0.4), SaturationOptions{
		Probes: []float64{0.05, 0.5, 0.05},
	})
	if err != nil {
		t.Fatal(err)
	}
	found := map[float64]bool{}
	for _, p := range sat.Evals {
		if found[p.Rate] {
			t.Fatalf("duplicate eval at rate %v", p.Rate)
		}
		found[p.Rate] = true
	}
	if !found[0.05] || !found[0.5] {
		t.Fatalf("probes missing from evals: %v", sat.Evals)
	}
	for i := 1; i < len(sat.Evals); i++ {
		if sat.Evals[i-1].Rate >= sat.Evals[i].Rate {
			t.Fatal("evals must be sorted ascending by rate")
		}
	}
}

// TestSaturationSearchPropagatesErrors: an eval failure aborts with context.
func TestSaturationSearchPropagatesErrors(t *testing.T) {
	boom := errors.New("sim exploded")
	_, err := SaturationSearch(func(rate float64) (sim.Result, error) {
		return sim.Result{}, boom
	}, SaturationOptions{})
	if !errors.Is(err, boom) {
		t.Fatalf("want wrapped eval error, got %v", err)
	}
}

// TestSaturationSearchMatchesDenseSweepOnRealNoC: integration check on a
// real (tiny) simulation — the bisected knee's throughput matches the dense
// grid's saturation throughput.
func TestSaturationSearchMatchesDenseSweepOnRealNoC(t *testing.T) {
	cfg := core.Hoplite(4)
	runAt := func(rate float64) (sim.Result, error) {
		return core.RunSynthetic(context.Background(), cfg, core.SyntheticOptions{
			Pattern: "RANDOM", Rate: rate, PacketsPerPE: 150, Seed: 1,
		})
	}
	var dense float64
	for _, rate := range []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 1.0} {
		res, err := runAt(rate)
		if err != nil {
			t.Fatal(err)
		}
		if res.SustainedRate > dense {
			dense = res.SustainedRate
		}
	}
	sat, err := SaturationSearch(runAt, SaturationOptions{Tol: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(sat.Throughput-dense) / dense; rel > 0.05 {
		t.Fatalf("adaptive throughput %.4f deviates %.1f%% from dense %.4f",
			sat.Throughput, 100*rel, dense)
	}
}
