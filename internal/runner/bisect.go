package runner

import (
	"fmt"
	"sort"

	"fasttrack/internal/sim"
)

// RatePoint pairs an offered injection rate with its simulation result.
type RatePoint struct {
	Rate   float64
	Result sim.Result
}

// SaturationOptions tunes SaturationSearch.
type SaturationOptions struct {
	// Hi is the top of the search bracket (default 1.0, the paper grids'
	// maximum offered rate).
	Hi float64
	// Tol is the rate resolution of the bisection (default 0.02): the knee
	// is bracketed to within Tol before the search stops.
	Tol float64
	// Slack is the relative shortfall tolerated before a rate counts as
	// saturated (default 0.05): sustained >= rate*(1-Slack) means the
	// network still delivers the offered load.
	Slack float64
	// MaxEvals bounds the total number of simulations (default 16).
	MaxEvals int
	// Probes are extra rates always evaluated (deduplicated), used as curve
	// anchors so adaptive figure sweeps keep their low-injection points.
	Probes []float64
}

func (o SaturationOptions) withDefaults() SaturationOptions {
	if o.Hi == 0 {
		o.Hi = 1.0
	}
	if o.Tol == 0 {
		o.Tol = 0.02
	}
	if o.Slack == 0 {
		o.Slack = 0.05
	}
	if o.MaxEvals == 0 {
		o.MaxEvals = 16
	}
	return o
}

// Saturation is the outcome of an adaptive saturation search.
type Saturation struct {
	// KneeRate is the largest offered rate the network sustained within
	// slack — the throughput knee the dense grids locate by brute force.
	KneeRate float64
	// Throughput is the maximum sustained rate observed across all
	// evaluations (the saturation throughput the paper reports).
	Throughput float64
	// Evals holds every distinct evaluation, ascending by rate. Dense-grid
	// figures are replaced by exactly these points.
	Evals []RatePoint
}

// SaturationSearch locates the throughput knee of a monotone
// offered-vs-sustained curve by bisection instead of a dense rate grid.
// Below the knee a bufferless NoC delivers the offered load (sustained ≈
// offered); above it throughput plateaus. The search brackets the knee to
// within Tol using O(log2(Hi/Tol)) simulations — 3-5x fewer than the dense
// grids of Figs 11-13 — and every evaluated point doubles as a curve sample.
// Bisection midpoints are exact float64 halvings of the same bracket, so
// repeated searches evaluate identical rates and hit the result cache.
//
// eval must be deterministic for a given rate (it usually closes over a
// cached orchestrator run).
func SaturationSearch(eval func(rate float64) (sim.Result, error), opts SaturationOptions) (Saturation, error) {
	o := opts.withDefaults()
	var sat Saturation
	if o.Hi <= 0 {
		return sat, fmt.Errorf("runner: saturation bracket top %v must be positive", o.Hi)
	}

	seen := map[float64]sim.Result{}
	evals := 0
	call := func(rate float64) (sim.Result, error) {
		if res, ok := seen[rate]; ok {
			return res, nil
		}
		if evals >= o.MaxEvals {
			return sim.Result{}, fmt.Errorf("runner: saturation search exceeded %d evaluations", o.MaxEvals)
		}
		evals++
		res, err := eval(rate)
		if err != nil {
			return res, fmt.Errorf("rate %v: %w", rate, err)
		}
		seen[rate] = res
		return res, nil
	}
	sustains := func(rate float64, res sim.Result) bool {
		return res.SustainedRate >= rate*(1-o.Slack)
	}

	for _, p := range o.Probes {
		if p > 0 && p < o.Hi {
			if _, err := call(p); err != nil {
				return sat, err
			}
		}
	}
	hiRes, err := call(o.Hi)
	if err != nil {
		return sat, err
	}

	lo, hi := 0.0, o.Hi
	if sustains(o.Hi, hiRes) {
		// The network never saturates inside the bracket.
		lo = o.Hi
	}
	for hi-lo > o.Tol && evals < o.MaxEvals {
		mid := (lo + hi) / 2
		res, err := call(mid)
		if err != nil {
			return sat, err
		}
		if sustains(mid, res) {
			lo = mid
		} else {
			hi = mid
		}
	}
	sat.KneeRate = lo

	for rate, res := range seen {
		sat.Evals = append(sat.Evals, RatePoint{Rate: rate, Result: res})
		if res.SustainedRate > sat.Throughput {
			sat.Throughput = res.SustainedRate
		}
	}
	sort.Slice(sat.Evals, func(i, j int) bool { return sat.Evals[i].Rate < sat.Evals[j].Rate })
	return sat, nil
}
