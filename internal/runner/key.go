package runner

import (
	"fmt"
	"strings"

	"fasttrack/internal/core"
	"fasttrack/internal/sim"
	"fasttrack/internal/telemetry"
	"fasttrack/internal/trace"
)

// Cache keys are canonical strings, not hashes of in-memory structs: every
// field that can change a simulation bit is spelled out by name, so adding a
// field to an options struct forces a conscious decision here, and a key is
// readable when debugging a cache directory. All keys embed sim.Version —
// the engine tag part of the cache-key contract (DESIGN.md §9).

// ConfigKey canonicalizes the cycle-behaviour-relevant part of a NoC
// configuration. WidthBits is deliberately excluded: the datapath width only
// feeds the FPGA cost/clock/power models, never the cycle simulation.
func ConfigKey(cfg core.Config) string {
	return fmt.Sprintf("kind=%d n=%d d=%d r=%d var=%d chan=%d pipe=%d",
		cfg.Kind, cfg.N, cfg.D, cfg.R, cfg.Variant, cfg.Channels, cfg.ExpressPipeline)
}

// SyntheticKey is the cache key for core.RunSynthetic(ctx, cfg, o).
//
// Engine and Shards are deliberately excluded: the sparse, dense, and
// shard-parallel paths are bit-exact (golden-tested), so any of them may be
// answered from the same entry — sharding is a wall-clock knob, never a
// semantics knob. Observer presence IS keyed (append-only, so pre-telemetry
// entries stay valid): a cached Result would silently skip the observer's
// side effects, so observed runs never share entries with unobserved ones.
func SyntheticKey(cfg core.Config, o core.SyntheticOptions) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s|synthetic|%s|", sim.Version, ConfigKey(cfg))
	fmt.Fprintf(&b, "pat=%s rate=%v quota=%d seed=%d maxcyc=%d reg=%v/%v check=%v age=%d conv=%d/%v",
		o.Pattern, o.Rate, o.PacketsPerPE, o.Seed, o.MaxCycles,
		o.RegulateRate, o.RegulateBurst, o.CheckConservation, o.MaxPacketAge,
		o.ConvergeWindow, o.ConvergeTol)
	if o.Faults != nil {
		fmt.Fprintf(&b, " faults=%+v", *o.Faults)
	}
	if o.Retry != nil {
		fmt.Fprintf(&b, " retry=%+v", *o.Retry)
	}
	if o.Observer != nil {
		fmt.Fprintf(&b, " telem=%s", telemetry.Key(o.Observer))
	}
	return b.String()
}

// TraceKey is the cache key for core.RunTrace(ctx, cfg, src, o): the trace
// enters by content fingerprint, so regenerating an identical trace — or
// replaying its FTT1 recording, whose header carries the same fingerprint
// the streaming Writer computed — reuses the entry. Engine and Observer
// follow the SyntheticKey rules (Engine excluded, Observer keyed
// append-only), and MaxCycles enters only when set so pre-TraceOptions
// entries stay valid.
//
// StreamWindow enters only when set: an explicitly bounded window may bind
// and shift injection timing (see trace.StreamOptions.Window), so those
// runs never share entries with default-window or in-memory replays.
func TraceKey(cfg core.Config, src trace.Source, o core.TraceOptions) string {
	hdr := src.Header()
	var b strings.Builder
	fmt.Fprintf(&b, "%s|trace|%s|name=%s pes=%d events=%d fp=%016x",
		sim.Version, ConfigKey(cfg), hdr.Name, hdr.PEs, hdr.Events, hdr.Fingerprint)
	if o.MaxCycles != 0 {
		fmt.Fprintf(&b, " maxcyc=%d", o.MaxCycles)
	}
	if o.Observer != nil {
		fmt.Fprintf(&b, " telem=%s", telemetry.Key(o.Observer))
	}
	if o.StreamWindow != 0 {
		fmt.Fprintf(&b, " window=%d", o.StreamWindow)
	}
	return b.String()
}

// RawKey builds a key for bespoke simulations (buffered mesh, message
// streams) from caller-supplied parts; sim.Version is prefixed
// automatically. Parts must jointly determine the run.
func RawKey(parts ...any) string {
	var b strings.Builder
	b.WriteString(sim.Version)
	for _, p := range parts {
		fmt.Fprintf(&b, "|%v", p)
	}
	return b.String()
}
