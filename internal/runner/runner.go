// Package runner is the sweep orchestration layer shared by ftexp, ftdse and
// ftbench: the paper's evaluation is thousands of independent cycle-accurate
// simulations, and this package schedules them across workers, memoizes their
// results in a content-addressed on-disk cache, and replaces dense
// injection-rate grids with an adaptive bisection on the throughput knee.
//
// The contract with the simulator is strict determinism: a run is a pure
// function of its resolved configuration, workload parameters, seed and
// engine version, so a cached sim.Result is bit-identical to a fresh one and
// scheduling order never changes any value, only wall clock.
package runner

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"fasttrack/internal/obs"
)

// JobError reports which job of a ForEach batch failed; Unwrap exposes the
// job's own error.
type JobError struct {
	// Index is the failing job's index in [0, n).
	Index int
	// Err is the error the job returned.
	Err error
}

func (e *JobError) Error() string { return fmt.Sprintf("job %d: %v", e.Index, e.Err) }

// Unwrap implements errors.Unwrap.
func (e *JobError) Unwrap() error { return e.Err }

// Orchestrator runs batches of independent simulation jobs. The zero value
// is usable: no cache, one worker per CPU, silent.
type Orchestrator struct {
	// Cache, when non-nil, memoizes job results across processes (see Do).
	Cache *Cache
	// Workers bounds concurrent jobs; 0 means runtime.NumCPU().
	Workers int
	// Progress, when non-nil, receives a live single-line job counter with
	// percentage, elapsed time and ETA (carriage-return updates; typically
	// os.Stderr).
	Progress io.Writer
	// Spans, when non-nil, records one Span per ForEach job (queued/running/
	// done, worker id, cache-hit flag) for the Chrome trace export.
	Spans *SpanLog
	// JobTimeout, when positive, bounds each ForEach job's wall clock: the
	// per-job context expires after this duration, the engine aborts at its
	// next cancellation poll, and the batch fails with a *JobError satisfying
	// errors.Is(err, context.DeadlineExceeded) — distinguishable from a
	// simulation failure. 0 means no per-job deadline.
	JobTimeout time.Duration
	// Log, when non-nil, receives structured records for job failures, with
	// trace_id/job_id attrs when the batch context carries them.
	Log *slog.Logger

	// Per-job duration histograms, split by how the job was satisfied:
	// a cache hit's sample is the lookup, a miss's the simulation itself.
	histCacheHit  obs.DurationHist
	histSimulated obs.DurationHist

	mu       sync.Mutex
	executed int64
	hits     int64
	failed   int64
	active   int
	pending  int
	busy     time.Duration
	slowest  time.Duration
	slowestI int
}

func (o *Orchestrator) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

// Stats reports how many jobs were computed versus served from the cache
// since the orchestrator was created.
func (o *Orchestrator) Stats() (executed, cacheHits int64) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.executed, o.hits
}

// Snapshot is a point-in-time view of the orchestrator for live monitoring
// (the /metrics runner section).
type Snapshot struct {
	// Executed counts fresh simulations, CacheHits cache-answered jobs,
	// Failed jobs that returned an error.
	Executed, CacheHits, Failed int64
	// Active is the number of jobs running right now; Pending the jobs
	// admitted to a ForEach batch but not yet started (the orchestrator's
	// internal queue depth); Workers the pool size.
	Active, Pending, Workers int
	// HistCacheHit/HistSimulated are the per-job duration histograms, split
	// by how Do satisfied the job (cache lookup vs fresh simulation).
	HistCacheHit, HistSimulated obs.HistSnapshot
}

// Snapshot captures the orchestrator's current counters and occupancy.
func (o *Orchestrator) Snapshot() Snapshot {
	o.mu.Lock()
	defer o.mu.Unlock()
	return Snapshot{
		Executed: o.executed, CacheHits: o.hits, Failed: o.failed,
		Active: o.active, Pending: o.pending, Workers: o.workers(),
		HistCacheHit:  o.histCacheHit.Snapshot(),
		HistSimulated: o.histSimulated.Snapshot(),
	}
}

// Timing reports aggregate per-job wall clock: total busy time across all
// executed jobs and the slowest single job with its ForEach index (-1 when
// the slowest job ran outside ForEach).
func (o *Orchestrator) Timing() (busy, slowest time.Duration, slowestIndex int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.busy, o.slowest, o.slowestI
}

func (o *Orchestrator) recordJob(index int, d time.Duration) {
	o.mu.Lock()
	o.busy += d
	if d > o.slowest {
		o.slowest, o.slowestI = d, index
	}
	o.mu.Unlock()
}

// ForEach runs f(ctx, 0..n-1) across the worker pool and returns the first
// error, wrapped in *JobError so the failing index survives. On the first
// failure the context passed to in-flight siblings is cancelled (sim.Run
// polls it via Options.Context) and no further jobs start. Job results must
// be written to per-index storage by f; completion order is unspecified but
// every index below the failing one either ran or was cancelled.
func (o *Orchestrator) ForEach(ctx context.Context, n int, f func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	workers := o.workers()
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr *JobError
		next     int
		done     int
		start    = time.Now()
	)
	o.mu.Lock()
	o.pending += n
	o.mu.Unlock()
	defer func() {
		// Jobs skipped after a sibling failure never transit runOne; settle
		// the pending gauge when the batch returns.
		mu.Lock()
		skipped := n - next
		mu.Unlock()
		o.mu.Lock()
		o.pending -= skipped
		o.mu.Unlock()
	}()
	runOne := func(worker, i int) {
		jctx := cctx
		var span *Span
		if o.Spans != nil {
			span = &Span{
				Index: i, Worker: worker, Queued: start,
				TraceID: obs.TraceIDFrom(cctx), JobID: obs.JobIDFrom(cctx),
			}
			jctx = context.WithValue(cctx, spanKey, span)
		}
		var jcancel context.CancelFunc
		if o.JobTimeout > 0 {
			jctx, jcancel = context.WithTimeout(jctx, o.JobTimeout)
		}
		o.mu.Lock()
		o.active++
		o.pending--
		o.mu.Unlock()
		t0 := time.Now()
		err := f(jctx, i)
		d := time.Since(t0)
		if jcancel != nil {
			// A job that died because its own deadline expired must be
			// distinguishable from a simulation failure even when f wrapped
			// or replaced the context error.
			if err != nil && jctx.Err() == context.DeadlineExceeded &&
				cctx.Err() == nil && !errors.Is(err, context.DeadlineExceeded) {
				err = errors.Join(err, context.DeadlineExceeded)
			}
			jcancel()
		}
		o.mu.Lock()
		o.active--
		if err != nil {
			o.failed++
		}
		o.mu.Unlock()
		if err != nil && o.Log != nil {
			obs.LoggerWith(jctx, o.Log).Warn("sweep job failed",
				"index", i, "worker", worker, "error", err)
		}
		if span != nil {
			span.Start, span.End = t0, t0.Add(d)
			if err != nil {
				span.Err = err.Error()
			}
			o.Spans.add(*span)
		}
		mu.Lock()
		done++
		if err != nil && firstErr == nil {
			firstErr = &JobError{Index: i, Err: err}
			cancel()
		}
		if o.Progress != nil {
			elapsed := time.Since(start)
			eta := time.Duration(float64(elapsed) / float64(done) * float64(n-done))
			fmt.Fprintf(o.Progress, "\r%4d/%d jobs %5.1f%%  elapsed %s  eta %s   ",
				done, n, 100*float64(done)/float64(n),
				elapsed.Round(time.Millisecond), eta.Round(time.Millisecond))
			if done == n {
				fmt.Fprintln(o.Progress)
			}
		}
		mu.Unlock()
		o.recordJob(i, d)
	}

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= n || cctx.Err() != nil {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				runOne(worker, i)
			}
		}(w)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Do funnels one job through the orchestrator's cache: a hit returns the
// persisted value (counted in Stats), a miss computes it with run and stores
// the result. With no cache configured it just runs and counts. The key must
// be a complete canonical description of the computation (see SyntheticKey);
// run must be a deterministic function of that key. ctx should be the
// context ForEach handed the job so span tracing can mark cache hits;
// context.Background() is fine outside ForEach.
func Do[T any](ctx context.Context, o *Orchestrator, key string, run func() (T, error)) (T, error) {
	span := spanFrom(ctx)
	if span != nil {
		span.Key = key
	}
	var v T
	if o.Cache != nil {
		t0 := time.Now()
		hit := o.Cache.Get(key, &v)
		if hit {
			o.histCacheHit.Observe(time.Since(t0))
			o.mu.Lock()
			o.hits++
			o.mu.Unlock()
			if span != nil {
				span.CacheHit = true
			}
			return v, nil
		}
	}
	t0 := time.Now()
	v, err := run()
	if err != nil {
		return v, err
	}
	o.histSimulated.Observe(time.Since(t0))
	o.mu.Lock()
	o.executed++
	o.mu.Unlock()
	if o.Cache != nil {
		// Best-effort: a failed write (full disk, read-only dir) only costs
		// a recompute next time.
		_ = o.Cache.Put(key, v)
	}
	return v, nil
}
