package runner

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachCoversEveryIndex: all indices run exactly once and results land
// at their own slots regardless of scheduling (run under -race in CI).
func TestForEachCoversEveryIndex(t *testing.T) {
	o := &Orchestrator{Workers: 8}
	const n = 200
	out := make([]int, n)
	var calls atomic.Int64
	err := o.ForEach(context.Background(), n, func(_ context.Context, i int) error {
		calls.Add(1)
		out[i] = i*i + 1
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != n {
		t.Fatalf("want %d calls, got %d", n, calls.Load())
	}
	for i, v := range out {
		if v != i*i+1 {
			t.Fatalf("slot %d corrupted: %d", i, v)
		}
	}
}

// TestForEachReportsFailingIndex: the first error comes back wrapped in
// *JobError carrying the job index and unwrapping to the cause.
func TestForEachReportsFailingIndex(t *testing.T) {
	o := &Orchestrator{Workers: 4}
	boom := errors.New("boom")
	err := o.ForEach(context.Background(), 10, func(_ context.Context, i int) error {
		if i == 7 {
			return fmt.Errorf("wrapped: %w", boom)
		}
		return nil
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if je.Index != 7 {
		t.Fatalf("want failing index 7, got %d", je.Index)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("JobError must unwrap to the cause")
	}
}

// TestForEachCancelsSiblings: when one job fails, in-flight siblings observe
// context cancellation (so simulations abort mid-run) and queued jobs never
// start.
func TestForEachCancelsSiblings(t *testing.T) {
	o := &Orchestrator{Workers: 4}
	const n = 100
	var started atomic.Int64
	fail := errors.New("fail fast")
	err := o.ForEach(context.Background(), n, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return fail
		}
		// Siblings park until cancelled; without propagation this deadlocks
		// the test (guarded by the select timeout below).
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(30 * time.Second):
			return errors.New("cancellation never arrived")
		}
	})
	var je *JobError
	if !errors.As(err, &je) || je.Index != 0 || !errors.Is(err, fail) {
		t.Fatalf("want JobError{0, fail fast}, got %v", err)
	}
	if s := started.Load(); s >= n {
		t.Fatalf("scheduler kept dispatching after failure: %d/%d jobs started", s, n)
	}
}

// TestForEachExternalCancel: a cancelled parent context stops the batch and
// is reported.
func TestForEachExternalCancel(t *testing.T) {
	o := &Orchestrator{Workers: 2}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var started atomic.Int64
	err := o.ForEach(ctx, 50, func(ctx context.Context, i int) error {
		started.Add(1)
		return ctx.Err()
	})
	if err == nil {
		t.Fatal("want error from cancelled context")
	}
	if s := started.Load(); s > 2 {
		t.Fatalf("pre-cancelled batch still started %d jobs", s)
	}
}

// TestForEachSerialPathSemantics: a single worker must preserve the same
// error contract as the pool.
func TestForEachSerialPathSemantics(t *testing.T) {
	o := &Orchestrator{Workers: 1}
	var ran []int
	err := o.ForEach(context.Background(), 5, func(_ context.Context, i int) error {
		ran = append(ran, i)
		if i == 2 {
			return errors.New("stop")
		}
		return nil
	})
	var je *JobError
	if !errors.As(err, &je) || je.Index != 2 {
		t.Fatalf("want JobError at 2, got %v", err)
	}
	if len(ran) != 3 {
		t.Fatalf("serial path must stop after the failure: ran %v", ran)
	}
}

// TestTiming: per-job wall clock aggregates are recorded.
func TestTiming(t *testing.T) {
	o := &Orchestrator{Workers: 2}
	err := o.ForEach(context.Background(), 4, func(context.Context, int) error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	busy, slowest, _ := o.Timing()
	if busy < 8*time.Millisecond || slowest < 2*time.Millisecond {
		t.Fatalf("timing not recorded: busy=%v slowest=%v", busy, slowest)
	}
}

// TestJobTimeoutSurfacesDeadline: a job that outlives Orchestrator.JobTimeout
// fails with a *JobError satisfying errors.Is(err, context.DeadlineExceeded),
// so callers can tell a timeout from a simulation failure.
func TestJobTimeoutSurfacesDeadline(t *testing.T) {
	o := &Orchestrator{Workers: 2, JobTimeout: 20 * time.Millisecond}
	err := o.ForEach(context.Background(), 1, func(ctx context.Context, i int) error {
		<-ctx.Done()
		return ctx.Err()
	})
	var je *JobError
	if !errors.As(err, &je) {
		t.Fatalf("want *JobError, got %T: %v", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded in the chain, got %v", err)
	}
}

// TestJobTimeoutWrapsForeignError: even when the job swallows the context
// error and returns its own, an expired per-job deadline stays visible in
// the error chain (errors.Join semantics).
func TestJobTimeoutWrapsForeignError(t *testing.T) {
	o := &Orchestrator{Workers: 1, JobTimeout: 10 * time.Millisecond}
	boom := errors.New("engine exploded")
	err := o.ForEach(context.Background(), 1, func(ctx context.Context, i int) error {
		<-ctx.Done()
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want cause preserved, got %v", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded joined, got %v", err)
	}
}

// TestJobTimeoutLeavesFastJobsAlone: jobs that finish inside the deadline
// are unaffected by the per-job timeout machinery.
func TestJobTimeoutLeavesFastJobsAlone(t *testing.T) {
	o := &Orchestrator{Workers: 4, JobTimeout: time.Second}
	if err := o.ForEach(context.Background(), 32, func(ctx context.Context, i int) error {
		return ctx.Err()
	}); err != nil {
		t.Fatalf("fast jobs must succeed under a generous timeout: %v", err)
	}
}

// TestSnapshotPendingSettles: the pending gauge counts admitted-but-unstarted
// jobs during a batch and returns to zero when the batch ends, including the
// early-abort path where trailing indices are skipped.
func TestSnapshotPendingSettles(t *testing.T) {
	o := &Orchestrator{Workers: 2}
	release := make(chan struct{})
	var sawPending atomic.Bool
	go func() {
		for i := 0; i < 1000; i++ {
			if o.Snapshot().Pending > 0 {
				sawPending.Store(true)
				break
			}
			time.Sleep(time.Millisecond)
		}
		close(release)
	}()
	_ = o.ForEach(context.Background(), 64, func(ctx context.Context, i int) error {
		<-release
		if i == 3 {
			return errors.New("abort the rest")
		}
		return nil
	})
	if !sawPending.Load() {
		t.Fatal("never observed a positive pending gauge mid-batch")
	}
	if p := o.Snapshot().Pending; p != 0 {
		t.Fatalf("pending must settle to 0 after the batch, got %d", p)
	}
}
