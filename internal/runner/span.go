// Sweep span tracing: every job an Orchestrator schedules can be recorded
// as a span (queued → running → done, with worker id, cache-hit flag and
// cache key) and exported in the same Chrome trace-event JSON dialect the
// packet tracer writes, so one Perfetto timeline shows workers, cache hits
// and bisection steps of a whole sweep.
package runner

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// Span is one scheduled job's timeline entry.
type Span struct {
	// Index is the job's ForEach index; Worker is the pool slot it ran on.
	Index  int
	Worker int
	// TraceID/JobID are the request-scoped correlation handles inherited
	// from the batch context (obs.WithTraceID / obs.WithJobID) when the
	// sweep runs under an ftserve job; empty for CLI sweeps.
	TraceID string
	JobID   string
	// Queued, Start and End are wall-clock instants: batch submission, job
	// start, job completion.
	Queued, Start, End time.Time
	// CacheHit reports the job was answered from the result cache (set by
	// Do when the job's computation never ran).
	CacheHit bool
	// Key is the cache key of the last Do call inside the job, when any.
	Key string
	// Err is the job's error message, empty on success.
	Err string
}

// SpanLog collects spans from concurrent workers. The zero value is not
// usable; create with NewSpanLog.
type SpanLog struct {
	mu    sync.Mutex
	start time.Time
	spans []Span
}

// NewSpanLog returns an empty span log; the Chrome export's timestamps are
// relative to its creation.
func NewSpanLog() *SpanLog {
	return &SpanLog{start: time.Now()}
}

// add appends a finished span.
func (l *SpanLog) add(s Span) {
	l.mu.Lock()
	l.spans = append(l.spans, s)
	l.mu.Unlock()
}

// Spans returns a copy of the recorded spans in completion order.
func (l *SpanLog) Spans() []Span {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Span(nil), l.spans...)
}

// spanKey carries the in-flight span through the context ForEach hands each
// job, so Do can mark cache hits without a signature that names spans.
type spanKeyType struct{}

var spanKey spanKeyType

// spanFrom extracts the current job's span, or nil.
func spanFrom(ctx context.Context) *Span {
	s, _ := ctx.Value(spanKey).(*Span)
	return s
}

// chromeSpanEvent mirrors telemetry's Chrome trace-event shape for complete
// ("X") and metadata ("M") events.
type chromeSpanEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// spanPID separates sweep-job tracks from the packet tracer's pid 1, so a
// merged Perfetto view keeps the two layers apart.
const spanPID = 2

// WriteChrome exports the log as Chrome trace-event JSON
// ({"traceEvents":[...]}, ts/dur in microseconds since log creation), one
// track per worker, loadable in Perfetto or chrome://tracing alongside the
// packet tracer's output.
func (l *SpanLog) WriteChrome(w io.Writer) error {
	l.mu.Lock()
	spans := append([]Span(nil), l.spans...)
	start := l.start
	l.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeSpanEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	workers := map[int]bool{}
	for _, s := range spans {
		workers[s.Worker] = true
	}
	for wid := range workers {
		if err := emit(chromeSpanEvent{
			Name: "thread_name", Ph: "M", PID: spanPID, TID: wid,
			Args: map[string]any{"name": fmt.Sprintf("worker %d", wid)},
		}); err != nil {
			return err
		}
	}
	for _, s := range spans {
		args := map[string]any{
			"index":     s.Index,
			"cache_hit": s.CacheHit,
			"queued_us": s.Start.Sub(s.Queued).Microseconds(),
		}
		if s.TraceID != "" {
			args["trace_id"] = s.TraceID
		}
		if s.JobID != "" {
			args["job_id"] = s.JobID
		}
		if s.Key != "" {
			args["key"] = s.Key
		}
		if s.Err != "" {
			args["error"] = s.Err
		}
		name := fmt.Sprintf("job %d", s.Index)
		if s.CacheHit {
			name = fmt.Sprintf("job %d (cached)", s.Index)
		}
		dur := s.End.Sub(s.Start).Microseconds()
		if dur < 1 {
			dur = 1 // zero-width slices are invisible in Perfetto
		}
		if err := emit(chromeSpanEvent{
			Name: name, Cat: "sweep", Ph: "X", PID: spanPID, TID: s.Worker,
			TS: s.Start.Sub(start).Microseconds(), Dur: dur, Args: args,
		}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
