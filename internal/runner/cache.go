package runner

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// DefaultCacheDir is where the CLIs persist results relative to the working
// directory.
const DefaultCacheDir = ".ftcache"

// Cache is a content-addressed store for simulation results. Each entry is
// one gob file named by the SHA-256 of its canonical key; the key itself is
// stored in the file and verified on read, so a (vanishingly unlikely) hash
// collision degrades to a miss instead of returning a wrong result. Entries
// carry sim.Version inside the key, which is what makes a cached value safe
// to reuse across processes: any engine change re-keys the world.
//
// Writes are atomic (temp file + rename), so concurrent sweep workers and
// even concurrent processes sharing a directory are safe: the worst case is
// two workers computing the same entry and one rename winning.
type Cache struct {
	dir string
}

// NewCache opens (creating if needed) a cache rooted at dir.
func NewCache(dir string) (*Cache, error) {
	if dir == "" {
		dir = DefaultCacheDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("runner: cache dir: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *Cache) Dir() string { return c.dir }

// Path returns the file an entry for key lives at.
func (c *Cache) Path(key string) string {
	sum := sha256.Sum256([]byte(key))
	return filepath.Join(c.dir, hex.EncodeToString(sum[:16])+".gob")
}

// entryHeader precedes the value in every cache file.
type entryHeader struct {
	// Key is the full canonical key, checked against the request on read.
	Key string
}

// Get decodes the entry for key into out (a non-nil pointer) and reports
// whether it was found. Any unreadable, truncated or mismatched file is
// treated as a miss and removed, so a corrupt cache heals itself instead of
// failing sweeps.
func (c *Cache) Get(key string, out any) bool {
	f, err := os.Open(c.Path(key))
	if err != nil {
		return false
	}
	defer f.Close()
	dec := gob.NewDecoder(f)
	var hdr entryHeader
	if err := dec.Decode(&hdr); err != nil || hdr.Key != key {
		c.discard(key)
		return false
	}
	if err := dec.Decode(out); err != nil {
		c.discard(key)
		return false
	}
	return true
}

// discard best-effort removes a corrupt or colliding entry.
func (c *Cache) discard(key string) { _ = os.Remove(c.Path(key)) }

// Put stores v under key atomically.
func (c *Cache) Put(key string, v any) error {
	tmp, err := os.CreateTemp(c.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	enc := gob.NewEncoder(tmp)
	if err := enc.Encode(entryHeader{Key: key}); err == nil {
		err = enc.Encode(v)
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), c.Path(key))
}
