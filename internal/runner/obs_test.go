package runner

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"fasttrack/internal/obs"
)

// TestSpanTracePropagation: sweep spans inherit the batch context's
// trace/job IDs and the Chrome export carries them in every slice's args.
func TestSpanTracePropagation(t *testing.T) {
	log := NewSpanLog()
	o := &Orchestrator{Workers: 2, Spans: log}
	ctx := obs.WithJobID(obs.WithTraceID(context.Background(), "sweep-trace-7"), "j000007")
	err := o.ForEach(ctx, 4, func(ctx context.Context, i int) error {
		_, err := Do(ctx, o, "", func() (int, error) { return i, nil })
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	spans := log.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans", len(spans))
	}
	for _, sp := range spans {
		if sp.TraceID != "sweep-trace-7" || sp.JobID != "j000007" {
			t.Fatalf("span %d missing correlation IDs: %+v", sp.Index, sp)
		}
	}
	var buf bytes.Buffer
	if err := log.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if n := strings.Count(buf.String(), `"trace_id":"sweep-trace-7"`); n != 4 {
		t.Fatalf("chrome export has %d trace_id args, want 4", n)
	}
}

// TestDoHistograms: the per-job histograms split by satisfaction path —
// fresh runs land in HistSimulated, cache hits in HistCacheHit, each
// count matching the corresponding Stats counter.
func TestDoHistograms(t *testing.T) {
	cache, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	o := &Orchestrator{Cache: cache}
	for round := 0; round < 2; round++ {
		for i := 0; i < 3; i++ {
			key := "hist-job-" + string(rune('a'+i))
			if _, err := Do(context.Background(), o, key, func() (int, error) {
				return i, nil
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	s := o.Snapshot()
	if s.Executed != 3 || s.CacheHits != 3 {
		t.Fatalf("executed=%d hits=%d, want 3/3", s.Executed, s.CacheHits)
	}
	if s.HistSimulated.Count != s.Executed {
		t.Fatalf("simulated hist count %d != executed %d", s.HistSimulated.Count, s.Executed)
	}
	if s.HistCacheHit.Count != s.CacheHits {
		t.Fatalf("cache-hit hist count %d != hits %d", s.HistCacheHit.Count, s.CacheHits)
	}
}
