package runner

import (
	"context"
	"os"
	"reflect"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/sim"
)

func testCache(t *testing.T) *Cache {
	t.Helper()
	c, err := NewCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func quickOpts() core.SyntheticOptions {
	return core.SyntheticOptions{Pattern: "RANDOM", Rate: 0.3, PacketsPerPE: 50, Seed: 5}
}

// TestCacheRoundTripBitIdentical is the golden contract: a result served
// from the cache is bit-identical (reflect.DeepEqual over every field,
// histogram and per-source accumulator included) to the freshly simulated
// one.
func TestCacheRoundTripBitIdentical(t *testing.T) {
	cfg := core.FastTrack(4, 2, 1)
	opts := quickOpts()
	fresh, err := core.RunSynthetic(context.Background(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	c := testCache(t)
	key := SyntheticKey(cfg, opts)
	if err := c.Put(key, fresh); err != nil {
		t.Fatal(err)
	}
	var cached sim.Result
	if !c.Get(key, &cached) {
		t.Fatal("entry vanished")
	}
	if !reflect.DeepEqual(fresh, cached) {
		t.Fatalf("cached result is not bit-identical to the fresh run:\nfresh:  %+v\ncached: %+v", fresh, cached)
	}
	// And the simulation itself is deterministic, so the cache never masks
	// a rerun.
	again, err := core.RunSynthetic(context.Background(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, again) {
		t.Fatal("simulation is not deterministic; caching contract broken")
	}
}

// TestCacheMissAndInvalidation: unknown keys miss, and any config or
// workload change re-keys the entry.
func TestCacheMissAndInvalidation(t *testing.T) {
	c := testCache(t)
	cfg := core.Hoplite(4)
	opts := quickOpts()
	var out sim.Result
	if c.Get(SyntheticKey(cfg, opts), &out) {
		t.Fatal("empty cache must miss")
	}
	if err := c.Put(SyntheticKey(cfg, opts), sim.Result{Cycles: 42}); err != nil {
		t.Fatal(err)
	}
	if !c.Get(SyntheticKey(cfg, opts), &out) || out.Cycles != 42 {
		t.Fatal("stored entry must hit")
	}
	for _, k := range []string{
		SyntheticKey(core.Hoplite(8), opts),         // different network
		SyntheticKey(core.FastTrack(4, 2, 1), opts), // different family
		SyntheticKey(cfg, withRate(opts, 0.31)),     // different rate
		SyntheticKey(cfg, withSeed(opts, 6)),        // different seed
	} {
		if c.Get(k, &out) {
			t.Fatalf("key %q must not alias the stored entry", k)
		}
	}
}

func withRate(o core.SyntheticOptions, r float64) core.SyntheticOptions {
	o.Rate = r
	return o
}

func withSeed(o core.SyntheticOptions, s uint64) core.SyntheticOptions {
	o.Seed = s
	return o
}

// TestCacheCorruptFileTolerance: truncated or garbage entries behave as
// misses, heal (the file is removed), and the slot is rewritable.
func TestCacheCorruptFileTolerance(t *testing.T) {
	c := testCache(t)
	const key = "corruption-probe"
	if err := c.Put(key, sim.Result{Cycles: 7}); err != nil {
		t.Fatal(err)
	}
	for _, garbage := range [][]byte{{}, []byte("not gob"), {0x0e, 0xff, 0x81}} {
		if err := os.WriteFile(c.Path(key), garbage, 0o644); err != nil {
			t.Fatal(err)
		}
		var out sim.Result
		if c.Get(key, &out) {
			t.Fatal("corrupt entry must read as a miss")
		}
		if _, err := os.Stat(c.Path(key)); !os.IsNotExist(err) {
			t.Fatal("corrupt entry should be removed")
		}
		if err := c.Put(key, sim.Result{Cycles: 9}); err != nil {
			t.Fatal(err)
		}
		var back sim.Result
		if !c.Get(key, &back) || back.Cycles != 9 {
			t.Fatal("cache did not heal after corruption")
		}
	}
}

// TestDoCountsHitsAndExecutions: Do computes once, then serves the cache.
func TestDoCountsHitsAndExecutions(t *testing.T) {
	o := &Orchestrator{Cache: testCache(t)}
	runs := 0
	run := func() (sim.Result, error) {
		runs++
		return sim.Result{Cycles: 11}, nil
	}
	for i := 0; i < 3; i++ {
		res, err := Do(context.Background(), o, "the-key", run)
		if err != nil || res.Cycles != 11 {
			t.Fatalf("iteration %d: %v %+v", i, err, res)
		}
	}
	if runs != 1 {
		t.Fatalf("want 1 execution, got %d", runs)
	}
	executed, hits := o.Stats()
	if executed != 1 || hits != 2 {
		t.Fatalf("want stats 1/2, got %d/%d", executed, hits)
	}
}

// TestDoWithoutCache: a cacheless orchestrator recomputes every time but
// still counts executions.
func TestDoWithoutCache(t *testing.T) {
	o := &Orchestrator{}
	runs := 0
	for i := 0; i < 2; i++ {
		if _, err := Do(context.Background(), o, "k", func() (int, error) { runs++; return runs, nil }); err != nil {
			t.Fatal(err)
		}
	}
	executed, hits := o.Stats()
	if runs != 2 || executed != 2 || hits != 0 {
		t.Fatalf("want 2 executions, got runs=%d stats=%d/%d", runs, executed, hits)
	}
}

// TestCachedSweepThroughForEach: the full orchestration path — parallel
// ForEach jobs each funneled through Do — produces identical results on a
// cold and a warm pass, with the warm pass executing nothing.
func TestCachedSweepThroughForEach(t *testing.T) {
	cache := testCache(t)
	cfgs := []core.Config{core.Hoplite(4), core.FastTrack(4, 2, 1), core.FastTrack(4, 2, 2)}
	sweep := func() ([]sim.Result, *Orchestrator, error) {
		o := &Orchestrator{Cache: cache, Workers: 4}
		out := make([]sim.Result, len(cfgs))
		err := o.ForEach(context.Background(), len(cfgs), func(ctx context.Context, i int) error {
			opts := quickOpts()
			res, err := Do(ctx, o, SyntheticKey(cfgs[i], opts), func() (sim.Result, error) {
				return core.RunSynthetic(ctx, cfgs[i], opts)
			})
			out[i] = res
			return err
		})
		return out, o, err
	}
	cold, co, err := sweep()
	if err != nil {
		t.Fatal(err)
	}
	if ex, _ := co.Stats(); ex != int64(len(cfgs)) {
		t.Fatalf("cold pass should execute all %d jobs, did %d", len(cfgs), ex)
	}
	warm, wo, err := sweep()
	if err != nil {
		t.Fatal(err)
	}
	if ex, hits := wo.Stats(); ex != 0 || hits != int64(len(cfgs)) {
		t.Fatalf("warm pass must be all hits: executed=%d hits=%d", ex, hits)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm results diverge from cold results")
	}
}
