package runner

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"testing"

	"fasttrack/internal/core"
)

// TestBatchCacheKeyNeutral is the key-neutrality contract: batching, like
// Options.Shards, must be invisible to the cache — the batched and per-job
// paths share one key per job, and the gob entry the batched path writes is
// byte-identical to the one the per-job path writes (same Result values,
// same encoding), so either path can answer the other's lookups.
func TestBatchCacheKeyNeutral(t *testing.T) {
	cfg := core.FastTrack(4, 2, 1)
	opts := quickOpts()
	key := SyntheticKey(cfg, opts)

	// Per-job entry.
	perJob := testCache(t)
	res, err := core.RunSynthetic(context.Background(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := perJob.Put(key, res); err != nil {
		t.Fatal(err)
	}

	// Batched entry, written by DoSyntheticBatch on a cold cache.
	batched := testCache(t)
	o := &Orchestrator{Cache: batched, Workers: 2}
	jobs := []SyntheticJob{{Cfg: cfg, Opts: opts}}
	out, err := DoSyntheticBatch(context.Background(), o, &NetPool{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out[0], res) {
		t.Fatalf("batched result diverges from per-job:\nbatched: %+v\nper-job: %+v", out[0], res)
	}

	a, err := os.ReadFile(perJob.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(batched.Path(key))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("cache entries differ byte-for-byte (%d vs %d bytes)", len(a), len(b))
	}

	// And the per-job path can serve the batched entry: a warm
	// DoSyntheticBatch over the per-job cache executes nothing.
	o2 := &Orchestrator{Cache: perJob}
	warm, err := DoSyntheticBatch(context.Background(), o2, &NetPool{}, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ex, hits := o2.Stats(); ex != 0 || hits != 1 {
		t.Fatalf("warm batch over per-job cache: executed=%d hits=%d", ex, hits)
	}
	if !reflect.DeepEqual(warm[0], res) {
		t.Fatal("cached answer diverges")
	}
}

// TestDoSyntheticBatchMixedHitsMissesSingles drives one call containing
// cache hits, batchable misses across two configurations, and an
// un-batchable single, and checks results and counters per class.
func TestDoSyntheticBatchMixedHitsMissesSingles(t *testing.T) {
	cache := testCache(t)
	hop, ft := core.Hoplite(4), core.FastTrack(4, 2, 1)
	single := withSeed(quickOpts(), 77)
	single.Shards = 2 // un-batchable, falls back to RunSynthetic

	jobs := []SyntheticJob{
		{Cfg: hop, Opts: quickOpts()},
		{Cfg: ft, Opts: quickOpts()},
		{Cfg: hop, Opts: withSeed(quickOpts(), 6)},
		{Cfg: hop, Opts: single},
		{Cfg: ft, Opts: withRate(quickOpts(), 0.31)},
	}

	// Pre-warm one entry so the call sees a genuine hit.
	pre, err := core.RunSynthetic(context.Background(), hop, jobs[0].Opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cache.Put(SyntheticKey(hop, jobs[0].Opts), pre); err != nil {
		t.Fatal(err)
	}

	o := &Orchestrator{Cache: cache, Workers: 2}
	pool := &NetPool{}
	out, err := DoSyntheticBatch(context.Background(), o, pool, jobs)
	if err != nil {
		t.Fatal(err)
	}
	executed, hits := o.Stats()
	if hits != 1 || executed != int64(len(jobs)-1) {
		t.Fatalf("want 1 hit / %d executed, got %d / %d", len(jobs)-1, hits, executed)
	}
	for i, j := range jobs {
		want, err := core.RunSynthetic(context.Background(), j.Cfg, j.Opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(out[i], want) {
			t.Fatalf("job %d diverges from per-job run", i)
		}
	}

	// Everything is now cached; a warm pass executes nothing.
	o2 := &Orchestrator{Cache: cache}
	warm, err := DoSyntheticBatch(context.Background(), o2, pool, jobs)
	if err != nil {
		t.Fatal(err)
	}
	if ex, h := o2.Stats(); ex != 0 || h != int64(len(jobs)) {
		t.Fatalf("warm pass: executed=%d hits=%d", ex, h)
	}
	if !reflect.DeepEqual(out, warm) {
		t.Fatal("warm results diverge")
	}
}

// TestNetPoolReuseGolden is the recycler's no-reuse-artifacts contract: a
// harness that has already run a different job, been Put back, and been Got
// again produces results bit-identical to a freshly built harness.
func TestNetPoolReuseGolden(t *testing.T) {
	cfg := core.FastTrack(4, 2, 2)
	dirty := core.SyntheticOptions{Pattern: "TRANSPOSE", Rate: 1.0, PacketsPerPE: 40, Seed: 33}
	probe := []core.SyntheticOptions{
		{Pattern: "RANDOM", Rate: 0.5, PacketsPerPE: 30, Seed: 1},
		{Pattern: "RANDOM", Rate: 0.5, PacketsPerPE: 30, Seed: 2},
	}

	fresh, err := core.NewSyntheticBatch(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Run(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}

	pool := &NetPool{}
	sb, err := pool.Get(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sb.Run(context.Background(), []core.SyntheticOptions{dirty, dirty}); err != nil {
		t.Fatal(err)
	}
	pool.Put(sb)
	reused, err := pool.Get(cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if reused != sb {
		t.Fatal("pool did not recycle the harness")
	}
	got, err := reused.Run(context.Background(), probe)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recycled harness diverges from fresh:\nreused: %+v\nfresh:  %+v", got, want)
	}
	pool.Put(reused)

	// A different configuration never aliases the pooled harness.
	other, err := pool.Get(core.FastTrack(4, 2, 1), 2)
	if err != nil {
		t.Fatal(err)
	}
	if other == reused {
		t.Fatal("pool returned a harness keyed to a different configuration")
	}
}
