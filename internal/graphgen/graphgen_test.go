package graphgen

import (
	"testing"
	"testing/quick"
)

func checkGraph(t *testing.T, g *Graph) {
	t.Helper()
	if len(g.Out) != g.N {
		t.Fatalf("%s: adjacency length %d != N %d", g.Name, len(g.Out), g.N)
	}
	for v, adj := range g.Out {
		for _, u := range adj {
			if u < 0 || int(u) >= g.N {
				t.Fatalf("%s: edge %d->%d out of range", g.Name, v, u)
			}
		}
	}
}

func TestGeneratorsValid(t *testing.T) {
	for _, g := range []*Graph{
		PreferentialAttachment("pa", 800, 4, 1),
		RoadGrid("road", 900, 0.01, 2),
		SmallWorld("sw", 800, 6, 0.1, 3),
	} {
		checkGraph(t, g)
		if g.Edges() == 0 {
			t.Errorf("%s has no edges", g.Name)
		}
	}
}

func TestPreferentialAttachmentHasHubs(t *testing.T) {
	g := PreferentialAttachment("pa", 2000, 4, 7)
	in := make([]int, g.N)
	for _, adj := range g.Out {
		for _, u := range adj {
			in[u]++
		}
	}
	maxIn, total := 0, 0
	for _, d := range in {
		total += d
		if d > maxIn {
			maxIn = d
		}
	}
	mean := float64(total) / float64(g.N)
	if float64(maxIn) < 10*mean {
		t.Errorf("expected hub vertices: max in-degree %d vs mean %.1f", maxIn, mean)
	}
}

func TestRoadGridIsLocalUnderGridPartition(t *testing.T) {
	g := RoadGrid("road", 4900, 0.01, 5)
	part := GridPartition(g.N, 64)
	cross, local := 0, 0
	for v, adj := range g.Out {
		for _, u := range adj {
			if part[v] == part[u] {
				local++
			} else {
				cross++
			}
		}
	}
	if frac := float64(cross) / float64(cross+local); frac > 0.35 {
		t.Errorf("road grid should be mostly local: %.0f%% cross-PE", 100*frac)
	}
}

func TestHashPartitionScatters(t *testing.T) {
	g := PreferentialAttachment("pa", 3000, 6, 9)
	part := HashPartition(g.N, 64, 1)
	cross, local := 0, 0
	for v, adj := range g.Out {
		for _, u := range adj {
			if part[v] == part[u] {
				local++
			} else {
				cross++
			}
		}
	}
	if frac := float64(cross) / float64(cross+local); frac < 0.8 {
		t.Errorf("hash partition should scatter: only %.0f%% cross-PE", 100*frac)
	}
}

func TestPartitionsCoverAndBound(t *testing.T) {
	f := func(nn uint16, pp uint8) bool {
		n := int(nn%5000) + 1
		pes := int(pp%64) + 1
		for _, part := range []Partition{BlockPartition(n, pes), HashPartition(n, pes, 3), GridPartition(n, pes)} {
			if len(part) != n {
				return false
			}
			for _, p := range part {
				if p < 0 || int(p) >= pes {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBlockPartitionContiguous(t *testing.T) {
	part := BlockPartition(100, 8)
	for v := 1; v < 100; v++ {
		if part[v] < part[v-1] {
			t.Fatalf("block partition not monotone at %d", v)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := SmallWorld("a", 500, 4, 0.2, 11)
	b := SmallWorld("a", 500, 4, 0.2, 11)
	if a.Edges() != b.Edges() {
		t.Fatal("same seed, different graphs")
	}
	for v := range a.Out {
		for i := range a.Out[v] {
			if a.Out[v][i] != b.Out[v][i] {
				t.Fatal("same seed, different adjacency")
			}
		}
	}
}
