// Package graphgen synthesizes graphs with the generative families behind
// the paper's SNAP benchmarks (§VI, Fig 15b): preferential-attachment
// graphs stand in for social/web graphs (wiki-Vote, web-Google,
// soc-Slashdot, amazon0302) and 2-D lattices with shortcuts for road
// networks (roadNet-CA, whose locality the paper notes defeats FastTrack's
// advantage). It also provides the PE partitioners the workloads use.
package graphgen

import (
	"fmt"

	"fasttrack/internal/xrand"
)

// Graph is a directed graph in adjacency-list form.
type Graph struct {
	Name string
	N    int
	Out  [][]int32
}

// Edges returns the total directed edge count.
func (g *Graph) Edges() int {
	t := 0
	for _, a := range g.Out {
		t += len(a)
	}
	return t
}

// String summarizes the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("%s: %d vertices, %d edges", g.Name, g.N, g.Edges())
}

// PreferentialAttachment generates a scale-free directed graph: each new
// vertex attaches m edges to earlier vertices chosen proportionally to
// their degree (Barabási–Albert style, deterministic given seed).
func PreferentialAttachment(name string, n, m int, seed uint64) *Graph {
	if m < 1 {
		m = 1
	}
	rng := xrand.New(seed)
	g := &Graph{Name: name, N: n, Out: make([][]int32, n)}
	// targets is the degree-weighted urn: every edge endpoint appears once.
	targets := make([]int32, 0, 2*n*m)
	targets = append(targets, 0)
	for v := 1; v < n; v++ {
		for e := 0; e < m && e < v; e++ {
			t := targets[rng.Intn(len(targets))]
			g.Out[v] = append(g.Out[v], t)
		}
		for _, t := range g.Out[v] {
			targets = append(targets, t)
		}
		targets = append(targets, int32(v))
	}
	return g
}

// RoadGrid generates a road-network-like graph: a √n×√n 4-neighbour lattice
// with a small fraction of shortcut edges. Almost all edges are local,
// which is what makes roadNet-CA traffic NoC-friendly without express
// links.
func RoadGrid(name string, n int, shortcutFrac float64, seed uint64) *Graph {
	side := 1
	for side*side < n {
		side++
	}
	rng := xrand.New(seed)
	g := &Graph{Name: name, N: n, Out: make([][]int32, n)}
	at := func(r, c int) int { return r*side + c }
	for r := 0; r < side; r++ {
		for c := 0; c < side; c++ {
			v := at(r, c)
			if v >= n {
				continue
			}
			if c+1 < side && at(r, c+1) < n {
				g.Out[v] = append(g.Out[v], int32(at(r, c+1)))
			}
			if r+1 < side && at(r+1, c) < n {
				g.Out[v] = append(g.Out[v], int32(at(r+1, c)))
			}
			if rng.Bool(shortcutFrac) {
				g.Out[v] = append(g.Out[v], int32(rng.Intn(n)))
			}
		}
	}
	return g
}

// SmallWorld generates a Watts–Strogatz-style ring lattice with degree k
// and rewiring probability beta.
func SmallWorld(name string, n, k int, beta float64, seed uint64) *Graph {
	rng := xrand.New(seed)
	g := &Graph{Name: name, N: n, Out: make([][]int32, n)}
	for v := 0; v < n; v++ {
		for e := 1; e <= k/2; e++ {
			t := (v + e) % n
			if rng.Bool(beta) {
				t = rng.Intn(n)
			}
			g.Out[v] = append(g.Out[v], int32(t))
		}
	}
	return g
}

// Partition maps vertices to PEs.
type Partition []int32

// BlockPartition assigns contiguous vertex ranges to PEs — locality-
// preserving, so lattice-like graphs keep most edges on-PE or nearby.
func BlockPartition(n, pes int) Partition {
	p := make(Partition, n)
	per := (n + pes - 1) / pes
	for v := 0; v < n; v++ {
		pe := v / per
		if pe >= pes {
			pe = pes - 1
		}
		p[v] = int32(pe)
	}
	return p
}

// GridPartition maps the vertices of a (near-)square lattice onto a square
// grid of PE tiles, preserving 2-D locality: lattice edges cross PE
// boundaries only along tile perimeters, and those crossings land on
// adjacent PEs — short NoC hops. This is the spatial partitioning a road
// network would actually use.
func GridPartition(n, pes int) Partition {
	side := 1
	for side*side < n {
		side++
	}
	peSide := 1
	for peSide*peSide < pes {
		peSide++
	}
	p := make(Partition, n)
	for v := 0; v < n; v++ {
		r, c := v/side, v%side
		pr := r * peSide / side
		pc := c * peSide / side
		pe := pr*peSide + pc
		if pe >= pes {
			pe = pes - 1
		}
		p[v] = int32(pe)
	}
	return p
}

// HashPartition scatters vertices across PEs — load-balanced but
// locality-destroying, the usual choice for power-law graphs.
func HashPartition(n, pes int, seed uint64) Partition {
	p := make(Partition, n)
	for v := 0; v < n; v++ {
		h := xrand.New(seed ^ uint64(v)*0x9e3779b97f4a7c15).Uint64()
		p[v] = int32(h % uint64(pes))
	}
	return p
}
