package graphwl

import (
	"testing"

	"fasttrack/internal/graphgen"
)

func TestTraceValid(t *testing.T) {
	g := graphgen.PreferentialAttachment("g", 1000, 5, 1)
	tr, err := Trace(g, graphgen.HashPartition(g.N, 16, 2), 4, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.PEs != 16 || len(tr.Events) == 0 {
		t.Errorf("bad trace shape: %d PEs, %d events", tr.PEs, len(tr.Events))
	}
}

func TestPartitionMismatchRejected(t *testing.T) {
	g := graphgen.PreferentialAttachment("g", 100, 3, 1)
	if _, err := Trace(g, graphgen.BlockPartition(50, 16), 4, 4, Options{}); err == nil {
		t.Error("partition length mismatch should be rejected")
	}
}

func TestRoadVsSocialTrafficVolume(t *testing.T) {
	// The road network under block partitioning produces far fewer
	// cross-PE messages per edge than a hash-partitioned social graph —
	// the structural fact behind the paper's roadNet-CA observation.
	road := graphgen.RoadGrid("road", 3600, 0.01, 3)
	social := graphgen.PreferentialAttachment("soc", 3600, 5, 4)
	rt, err := Trace(road, graphgen.GridPartition(road.N, 64), 8, 8, Options{Supersteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := Trace(social, graphgen.HashPartition(social.N, 64, 5), 8, 8, Options{Supersteps: 1})
	if err != nil {
		t.Fatal(err)
	}
	roadFrac := float64(len(rt.Events)) / float64(road.Edges())
	socialFrac := float64(len(st.Events)) / float64(social.Edges())
	if roadFrac > 0.5*socialFrac {
		t.Errorf("road cross fraction %.2f should be well below social %.2f", roadFrac, socialFrac)
	}
}

func TestBenchmarksGenerate(t *testing.T) {
	for _, b := range Benchmarks() {
		tr, err := Trace(b.Graph, b.PartitionFor(16), 4, 4, Options{Supersteps: 1})
		if err != nil {
			t.Errorf("%s: %v", b.Graph.Name, err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", b.Graph.Name, err)
		}
	}
}
