package graphwl

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fasttrack/internal/graphgen"
	"fasttrack/internal/trace"
)

// TestWriteToMatchesTrace: streaming and in-memory generation must agree
// byte-for-byte (see the spmv counterpart).
func TestWriteToMatchesTrace(t *testing.T) {
	g := graphgen.PreferentialAttachment("wt", 300, 4, 9)
	part := graphgen.HashPartition(g.N, 4, 0xfeed)
	tr, err := Trace(g, part, 2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.ftt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := WriteTo(g, part, 2, 2, Options{}, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if hdr != tr.Header() {
		t.Fatalf("streamed header %+v != in-memory %+v", hdr, tr.Header())
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := trace.ReadBinary(rf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("streamed file decodes to a different trace")
	}
}
