// Package graphwl turns a graph into the communication trace of a
// vertex-centric push-mode graph analytics accelerator (the paper's
// Fig 15b case study): each superstep, every vertex pushes an update along
// each of its out-edges; cross-PE edges become NoC messages. Supersteps are
// separated by per-PE barriers (bulk-synchronous execution).
package graphwl

import (
	"fmt"
	"io"

	"fasttrack/internal/graphgen"
	"fasttrack/internal/trace"
)

// Options tunes trace generation.
type Options struct {
	// Supersteps is the number of BSP rounds (default 2).
	Supersteps int
	// ComputeDelay models per-update vertex compute (default 1).
	ComputeDelay int32
}

func (o Options) withDefaults() Options {
	if o.Supersteps == 0 {
		o.Supersteps = 2
	}
	if o.ComputeDelay == 0 {
		o.ComputeDelay = 1
	}
	return o
}

// Trace builds the push-mode BSP trace for g under the given partition on a
// w×h PE grid.
func Trace(g *graphgen.Graph, part graphgen.Partition, w, h int, opts Options) (*trace.Trace, error) {
	b := trace.NewBuilder(name(g), w*h)
	if err := emit(b, g, part, w, h, opts); err != nil {
		return nil, err
	}
	return b.Build()
}

// WriteTo streams the same trace, event for event, to dst as an FTT1 file
// without materializing it; the returned header's fingerprint equals
// Trace(...).Fingerprint() for identical inputs.
func WriteTo(g *graphgen.Graph, part graphgen.Partition, w, h int, opts Options, dst io.WriteSeeker) (trace.Header, error) {
	bw, err := trace.NewWriter(dst, name(g), w*h)
	if err != nil {
		return trace.Header{}, err
	}
	if err := emit(bw, g, part, w, h, opts); err != nil {
		return trace.Header{}, err
	}
	if err := bw.Close(); err != nil {
		return trace.Header{}, err
	}
	return bw.Header(), nil
}

func name(g *graphgen.Graph) string { return fmt.Sprintf("graph/%s", g.Name) }

// emit generates the event stream into any trace.Adder (shared by the
// in-memory and streaming paths; see spmv.emit).
func emit(b trace.Adder, g *graphgen.Graph, part graphgen.Partition, w, h int, opts Options) error {
	opts = opts.withDefaults()
	pes := w * h
	if len(part) != g.N {
		return fmt.Errorf("graphwl: partition covers %d vertices, graph has %d", len(part), g.N)
	}

	// Source-side combining (standard in vertex-centric accelerators):
	// updates from one PE to the same destination vertex merge into a
	// single message, so a high-in-degree hub receives at most one message
	// per source PE per superstep rather than one per edge.
	type msg struct{ src, dst int }
	seen := map[[2]int32]struct{}{}
	var msgs []msg
	for u := 0; u < g.N; u++ {
		pu := int(part[u])
		if pu >= pes {
			return fmt.Errorf("graphwl: vertex %d mapped to PE %d of %d", u, pu, pes)
		}
		for _, v := range g.Out[u] {
			pv := int(part[v])
			if pv == pu {
				continue
			}
			key := [2]int32{int32(pu), v}
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			msgs = append(msgs, msg{src: pu, dst: pv})
		}
	}
	if len(msgs) == 0 {
		return fmt.Errorf("graphwl: graph %s has no cross-PE edges on %d PEs", g.Name, pes)
	}

	incoming := make([][]int32, pes)
	for step := 0; step < opts.Supersteps; step++ {
		barrier := make(map[int]int32)
		if step > 0 {
			for p := 0; p < pes; p++ {
				if len(incoming[p]) > 0 {
					barrier[p] = b.Add(p, p, opts.ComputeDelay, incoming[p]...)
				}
			}
		}
		next := make([][]int32, pes)
		for k, m := range msgs {
			var deps []int32
			if bar, ok := barrier[m.src]; ok {
				deps = append(deps, bar)
			}
			ev := b.Add(m.src, m.dst, opts.ComputeDelay+int32(k%5), deps...)
			next[m.dst] = append(next[m.dst], ev)
		}
		incoming = next
	}
	return nil
}

// Benchmark pairs a synthetic graph with the partitioner the real system
// would use.
type Benchmark struct {
	Graph *graphgen.Graph
	// Hash selects scatter partitioning (power-law graphs); otherwise the
	// locality-preserving block partition is used (road networks).
	Hash bool
}

// Benchmarks returns synthetic stand-ins for the paper's Fig 15b SNAP
// suite. roadNet-CA uses a lattice + block partition, so its traffic stays
// local — the paper calls out exactly this benchmark as not benefiting
// from FastTrack.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{Graph: graphgen.PreferentialAttachment("wiki-Vote", 3000, 12, 201), Hash: true},
		{Graph: graphgen.PreferentialAttachment("web-Stanford", 4500, 8, 202), Hash: true},
		{Graph: graphgen.PreferentialAttachment("web-Google", 5000, 6, 203), Hash: true},
		{Graph: graphgen.PreferentialAttachment("soc-Slashdot0902", 4000, 10, 204), Hash: true},
		{Graph: graphgen.RoadGrid("roadNet-CA", 4900, 0.01, 205)},
		{Graph: graphgen.PreferentialAttachment("amazon0302", 4200, 4, 206), Hash: true},
	}
}

// PartitionFor returns the benchmark's partition for a pes-PE system:
// scatter for power-law graphs, 2-D spatial tiles for lattices.
func (b Benchmark) PartitionFor(pes int) graphgen.Partition {
	if b.Hash {
		return graphgen.HashPartition(b.Graph.N, pes, 0xfeed)
	}
	return graphgen.GridPartition(b.Graph.N, pes)
}
