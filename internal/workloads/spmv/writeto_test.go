package spmv

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fasttrack/internal/matrixgen"
	"fasttrack/internal/trace"
)

// TestWriteToMatchesTrace: the streaming path must produce the same trace —
// same fingerprint, same events — as the in-memory Build path, which is what
// lets a recorded trace share runner cache entries with a generated one.
func TestWriteToMatchesTrace(t *testing.T) {
	m := matrixgen.Circuit("wt", 200, 5, 42)
	tr, err := Trace(m, 2, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.ftt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := WriteTo(m, 2, 2, Options{}, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if hdr != tr.Header() {
		t.Fatalf("streamed header %+v != in-memory %+v", hdr, tr.Header())
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := trace.ReadBinary(rf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("streamed file decodes to a different trace")
	}
}
