package spmv

import (
	"testing"

	"fasttrack/internal/matrixgen"
)

func TestTraceValidAndSized(t *testing.T) {
	m := matrixgen.Circuit("t", 1000, 6, 1)
	tr, err := Trace(m, 8, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.PEs != 64 {
		t.Errorf("PEs %d", tr.PEs)
	}
	if len(tr.Events) < 100 {
		t.Errorf("suspiciously small trace: %d events", len(tr.Events))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIterationsScaleEvents(t *testing.T) {
	m := matrixgen.Circuit("t", 800, 6, 2)
	t1, err := Trace(m, 4, 4, Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Trace(m, 4, 4, Options{Iterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Events) < 2*len(t1.Events) {
		t.Errorf("3 iterations (%d events) should be ≫ 1 iteration (%d)", len(t3.Events), len(t1.Events))
	}
}

// TestBarrierDependencies: every second-iteration message from a PE that
// received data must depend (transitively via the barrier) on that PE's
// first-iteration deliveries.
func TestBarrierDependencies(t *testing.T) {
	m := matrixgen.Circuit("t", 600, 6, 3)
	tr, err := Trace(m, 4, 4, Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Find barrier events (self messages with deps).
	barriers := 0
	for _, e := range tr.Events {
		if e.Src == e.Dst && len(e.Deps) > 0 {
			barriers++
			for _, d := range e.Deps {
				if tr.Events[d].Dst != e.Src {
					t.Fatalf("barrier at PE %d depends on a delivery to PE %d", e.Src, tr.Events[d].Dst)
				}
			}
		}
	}
	if barriers == 0 {
		t.Error("no barrier events in a 2-iteration trace")
	}
}

func TestLocalMatrixYieldsNoTraffic(t *testing.T) {
	// A tightly banded matrix on many PEs still crosses block boundaries a
	// little; but on ONE row of PEs per whole matrix (1 PE per ~all rows)
	// everything is local and generation must fail loudly.
	m := matrixgen.Banded("local", 64, 1, 0, 4)
	if _, err := Trace(m, 2, 2, Options{}); err == nil {
		// 64 rows over 4 PEs with band 1: only boundary rows cross — that
		// is still traffic, so this must succeed instead.
		return
	}
	// Either outcome is acceptable above; the hard requirement is the
	// error case for a diagonal matrix.
	d := matrixgen.Banded("diag", 64, 0, 0, 5)
	if _, err := Trace(d, 2, 2, Options{}); err == nil {
		t.Error("purely diagonal matrix should produce a no-traffic error")
	}
}

func TestBenchmarksGenerate(t *testing.T) {
	for _, m := range Benchmarks() {
		tr, err := Trace(m, 4, 4, Options{Iterations: 1})
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}
