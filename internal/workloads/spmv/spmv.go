// Package spmv turns a sparse matrix into the communication trace of an
// iterative sparse matrix-vector multiply accelerator (the paper's Fig 15a
// case study, used by many deep-learning kernels).
//
// Rows are block-partitioned across PEs. Computing y = A·x requires each PE
// to fetch x[c] for every column c appearing in its rows; the PE owning
// x[c] sends one message per (producer PE → consumer PE, c) pair. Across
// iterations a per-PE barrier event models the local accumulate/update
// before the next round's x values are published — a throughput-bound
// pattern with light dependencies, exactly as characterized in §VI.
package spmv

import (
	"fmt"
	"io"

	"fasttrack/internal/matrixgen"
	"fasttrack/internal/trace"
)

// Options tunes trace generation.
type Options struct {
	// Iterations is the number of y = A·x rounds (default 2).
	Iterations int
	// ComputeDelay is the modeled PE cycles to produce a value (default 2).
	ComputeDelay int32
}

func (o Options) withDefaults() Options {
	if o.Iterations == 0 {
		o.Iterations = 2
	}
	if o.ComputeDelay == 0 {
		o.ComputeDelay = 2
	}
	return o
}

// Trace builds the SpMV communication trace for matrix m on a w×h PE grid.
func Trace(m *matrixgen.Matrix, w, h int, opts Options) (*trace.Trace, error) {
	b := trace.NewBuilder(name(m), w*h)
	if err := emit(b, m, w, h, opts); err != nil {
		return nil, err
	}
	return b.Build()
}

// WriteTo streams the same trace, event for event, to dst as an FTT1 file
// without materializing it; the returned header's fingerprint equals
// Trace(...).Fingerprint() for identical inputs.
func WriteTo(m *matrixgen.Matrix, w, h int, opts Options, dst io.WriteSeeker) (trace.Header, error) {
	bw, err := trace.NewWriter(dst, name(m), w*h)
	if err != nil {
		return trace.Header{}, err
	}
	if err := emit(bw, m, w, h, opts); err != nil {
		return trace.Header{}, err
	}
	if err := bw.Close(); err != nil {
		return trace.Header{}, err
	}
	return bw.Header(), nil
}

func name(m *matrixgen.Matrix) string { return fmt.Sprintf("spmv/%s", m.Name) }

// emit generates the event stream into any trace.Adder — the in-memory
// Builder and the streaming Writer share this code, which is what keeps the
// two paths fingerprint-identical.
func emit(b trace.Adder, m *matrixgen.Matrix, w, h int, opts Options) error {
	opts = opts.withDefaults()
	pes := w * h
	per := (m.N + pes - 1) / pes
	owner := func(row int32) int {
		p := int(row) / per
		if p >= pes {
			p = pes - 1
		}
		return p
	}

	// Unique (producer, consumer, column) messages of one iteration.
	type msg struct{ src, dst int }
	seen := map[[3]int32]struct{}{}
	var msgs []msg
	for r := 0; r < m.N; r++ {
		dst := owner(int32(r))
		for _, c := range m.Row(r) {
			src := owner(c)
			if src == dst {
				continue
			}
			key := [3]int32{int32(src), int32(dst), c}
			if _, ok := seen[key]; ok {
				continue
			}
			seen[key] = struct{}{}
			msgs = append(msgs, msg{src: src, dst: dst})
		}
	}
	if len(msgs) == 0 {
		return fmt.Errorf("spmv: matrix %s produces no cross-PE traffic on %d PEs", m.Name, pes)
	}

	// incoming[p] collects the previous round's deliveries to PE p.
	incoming := make([][]int32, pes)
	for it := 0; it < opts.Iterations; it++ {
		// Barrier: each sending PE waits for everything it consumed last
		// round before publishing new x values.
		barrier := make(map[int]int32)
		if it > 0 {
			for p := 0; p < pes; p++ {
				if len(incoming[p]) > 0 {
					barrier[p] = b.Add(p, p, opts.ComputeDelay, incoming[p]...)
				}
			}
		}
		next := make([][]int32, pes)
		for k, msg := range msgs {
			var deps []int32
			if bar, ok := barrier[msg.src]; ok {
				deps = append(deps, bar)
			}
			// Light source-side stagger models sequential value production.
			delay := opts.ComputeDelay + int32(k%7)
			ev := b.Add(msg.src, msg.dst, delay, deps...)
			next[msg.dst] = append(next[msg.dst], ev)
		}
		incoming = next
	}
	return nil
}

// Benchmarks returns synthetic stand-ins for the paper's Fig 15a Matrix
// Market suite, preserving each benchmark's structural archetype at a
// simulation-friendly scale.
func Benchmarks() []*matrixgen.Matrix {
	return []*matrixgen.Matrix{
		matrixgen.Circuit("add20", 2395, 7, 101),
		matrixgen.Banded("hamm_memplus", 3200, 3, 0.05, 102),
		matrixgen.Circuit("bomhof_circuit_1", 2624, 9, 103),
		matrixgen.Circuit("bomhof_circuit_2", 4510, 5, 104),
		matrixgen.Circuit("bomhof_circuit_3", 4096, 8, 105),
		matrixgen.PowerLaw("human_gene2", 2500, 12, 1.1, 106),
		matrixgen.Circuit("sandia_12944", 3296, 8, 107),
		matrixgen.Banded("simucad_ram2k", 2048, 4, 0.10, 108),
		matrixgen.Circuit("simucad_dac", 2409, 6, 109),
	}
}
