package overlay

import (
	"testing"
)

func TestBenchmarksGenerate(t *testing.T) {
	for _, b := range Benchmarks() {
		tr, err := Trace(b, 8, 8, 32, 1)
		if err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", b.Name, err)
			continue
		}
		if tr.PEs != 64 {
			t.Errorf("%s: PEs %d, want 64", b.Name, tr.PEs)
		}
		// Only the active subset may appear as endpoints.
		for i, e := range tr.Events {
			if e.Src >= 32 || e.Dst >= 32 {
				t.Fatalf("%s: event %d touches inactive PE (%d->%d)", b.Name, i, e.Src, e.Dst)
			}
		}
	}
}

func TestChainsAreRequestResponse(t *testing.T) {
	b := Benchmark{Name: "sync", Uniform: 1, Chains: 3, ChainLen: 4}
	tr, err := Trace(b, 4, 4, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Each dependent event must be the reverse direction of its dependency
	// (a response back to the requester, or the next request after one).
	for i, e := range tr.Events {
		for _, d := range e.Deps {
			dep := tr.Events[d]
			if dep.Dst != e.Src {
				t.Fatalf("event %d (from %d) depends on a message delivered to %d", i, e.Src, dep.Dst)
			}
		}
	}
}

func TestActivePEValidation(t *testing.T) {
	b := Benchmarks()[0]
	if _, err := Trace(b, 4, 4, 17, 1); err == nil {
		t.Error("activePEs beyond grid should be rejected")
	}
	if _, err := Trace(b, 4, 4, 1, 1); err == nil {
		t.Error("single active PE should be rejected")
	}
}

func TestLocalityCharacterDiffers(t *testing.T) {
	// freqmine must be substantially more local than blacksholes — the
	// paper's reason freqmine gains nothing from FastTrack.
	var freqLocal, blackLocal float64
	for _, b := range Benchmarks() {
		if b.Name != "freqmine" && b.Name != "blacksholes" {
			continue
		}
		tr, err := Trace(b, 8, 8, 32, 3)
		if err != nil {
			t.Fatal(err)
		}
		near, far := 0, 0
		for _, e := range tr.Events {
			d := e.Dst - e.Src
			if d < 0 {
				d += 32
			}
			if d <= 2 {
				near++
			} else {
				far++
			}
		}
		frac := float64(near) / float64(near+far)
		if b.Name == "freqmine" {
			freqLocal = frac
		} else {
			blackLocal = frac
		}
	}
	if freqLocal <= blackLocal {
		t.Errorf("freqmine locality %.2f should exceed blacksholes %.2f", freqLocal, blackLocal)
	}
}

func TestDeterministicBySeed(t *testing.T) {
	b := Benchmarks()[2]
	t1, err := Trace(b, 8, 8, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Trace(b, 8, 8, 32, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Events) != len(t2.Events) {
		t.Fatal("same seed, different event counts")
	}
	for i := range t1.Events {
		a, b := t1.Events[i], t2.Events[i]
		if a.Src != b.Src || a.Dst != b.Dst || a.Delay != b.Delay || len(a.Deps) != len(b.Deps) {
			t.Fatalf("same seed, event %d differs", i)
		}
	}
}
