// Package overlay synthesizes multiprocessor-overlay communication traces
// in the spirit of the paper's SNIPER/PARSEC case study (Fig 15d, 32 PEs):
// each benchmark is characterized by its destination mix (local neighbour
// exchange, pipeline-stage streaming, uniform sharing, hotspot locks) and
// its synchronization depth (request/response chains). The six benchmark
// parameterizations mirror the published characters — e.g. freqmine is
// mostly local and gains nothing from a faster NoC, dedup is a deep
// pipeline, x264 mixes sharing modes.
package overlay

import (
	"fmt"
	"io"

	"fasttrack/internal/trace"
	"fasttrack/internal/xrand"
)

// Benchmark parameterizes one synthetic PARSEC-like workload. Mix weights
// need not sum to one; they are normalized.
type Benchmark struct {
	Name string
	// Destination mix weights.
	Local    float64 // forward ring neighbours within 2 hops
	Pipeline float64 // fixed stage stride across the active set
	Uniform  float64 // any active PE
	Hotspot  float64 // one of a few shared-data PEs
	// Chains is the number of request/response chains per PE.
	Chains int
	// ChainLen is the number of request/response round trips per chain;
	// deeper chains mean tighter synchronization (latency-bound).
	ChainLen int
	// Stride is the pipeline stage distance in PEs.
	Stride int
	// ComputeScale multiplies inter-message compute delays. Compute-bound
	// benchmarks (freqmine) barely exercise the NoC, which is why the
	// paper sees no FastTrack gain for them. 0 means 1.
	ComputeScale int
}

// Benchmarks returns the Fig 15d suite.
func Benchmarks() []Benchmark {
	return []Benchmark{
		{Name: "blacksholes", Local: 0.3, Uniform: 0.7, Chains: 24, ChainLen: 1},
		{Name: "dedup", Pipeline: 0.9, Uniform: 0.1, Chains: 10, ChainLen: 8, Stride: 8},
		{Name: "fluidanimate", Local: 0.8, Uniform: 0.2, Chains: 16, ChainLen: 3},
		{Name: "freqmine", Local: 0.92, Uniform: 0.08, Chains: 20, ChainLen: 2, ComputeScale: 14},
		{Name: "vips", Pipeline: 0.6, Uniform: 0.4, Chains: 12, ChainLen: 5, Stride: 4},
		{Name: "x264", Local: 0.3, Pipeline: 0.3, Uniform: 0.3, Hotspot: 0.1, Chains: 14, ChainLen: 4, Stride: 2},
	}
}

// Trace builds the benchmark's trace for a w×h network with the first
// activePEs clients participating (the paper runs 32 threads; mapping them
// onto the lower half of an 8×8 overlay leaves the rest idle).
func Trace(b Benchmark, w, h, activePEs int, seed uint64) (*trace.Trace, error) {
	bl := trace.NewBuilder(name(b), w*h)
	if err := emit(bl, b, w, h, activePEs, seed); err != nil {
		return nil, err
	}
	return bl.Build()
}

// WriteTo streams the same trace, event for event, to dst as an FTT1 file
// without materializing it; the returned header's fingerprint equals
// Trace(...).Fingerprint() for identical inputs.
func WriteTo(b Benchmark, w, h, activePEs int, seed uint64, dst io.WriteSeeker) (trace.Header, error) {
	bw, err := trace.NewWriter(dst, name(b), w*h)
	if err != nil {
		return trace.Header{}, err
	}
	if err := emit(bw, b, w, h, activePEs, seed); err != nil {
		return trace.Header{}, err
	}
	if err := bw.Close(); err != nil {
		return trace.Header{}, err
	}
	return bw.Header(), nil
}

func name(b Benchmark) string { return fmt.Sprintf("overlay/%s", b.Name) }

// emit generates the event stream into any trace.Adder (shared by the
// in-memory and streaming paths; see spmv.emit).
func emit(bl trace.Adder, b Benchmark, w, h, activePEs int, seed uint64) error {
	pes := w * h
	if activePEs <= 1 || activePEs > pes {
		return fmt.Errorf("overlay: activePEs %d out of range (2..%d)", activePEs, pes)
	}
	stride := b.Stride
	if stride <= 0 {
		stride = 1
	}
	total := b.Local + b.Pipeline + b.Uniform + b.Hotspot
	if total <= 0 {
		return fmt.Errorf("overlay: benchmark %s has no destination mix", b.Name)
	}

	rng := xrand.New(seed)
	hotspots := []int{0, activePEs / 2}
	partner := func(p int, r *xrand.Rand) int {
		x := r.Float64() * total
		switch {
		case x < b.Local:
			return (p + 1 + r.Intn(2)) % activePEs
		case x < b.Local+b.Pipeline:
			return (p + stride) % activePEs
		case x < b.Local+b.Pipeline+b.Uniform:
			for {
				q := r.Intn(activePEs)
				if q != p {
					return q
				}
			}
		default:
			return hotspots[r.Intn(len(hotspots))]
		}
	}

	scale := int32(b.ComputeScale)
	if scale < 1 {
		scale = 1
	}
	for p := 0; p < activePEs; p++ {
		r := rng.SplitBy(uint64(p))
		for c := 0; c < b.Chains; c++ {
			prev := int32(-1)
			for l := 0; l < b.ChainLen; l++ {
				q := partner(p, r)
				if q == p {
					q = (p + 1) % activePEs
				}
				delay := scale * int32(2+r.Intn(6))
				var req int32
				if prev < 0 {
					req = bl.Add(p, q, delay)
				} else {
					req = bl.Add(p, q, delay, prev)
				}
				// Response closes the round trip; the next request in the
				// chain waits for it (lock handoff / future resolution).
				prev = bl.Add(q, p, int32(1+r.Intn(3)), req)
			}
		}
	}
	return nil
}
