package overlay

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fasttrack/internal/trace"
)

// TestWriteToMatchesTrace: streaming and in-memory generation must agree
// byte-for-byte (see the spmv counterpart).
func TestWriteToMatchesTrace(t *testing.T) {
	b := Benchmarks()[0]
	tr, err := Trace(b, 4, 4, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.ftt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := WriteTo(b, 4, 4, 8, 5, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if hdr != tr.Header() {
		t.Fatalf("streamed header %+v != in-memory %+v", hdr, tr.Header())
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	got, err := trace.ReadBinary(rf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatal("streamed file decodes to a different trace")
	}
}
