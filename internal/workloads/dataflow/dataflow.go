// Package dataflow turns the symbolic LU factorization of a sparse circuit
// matrix into a Token Dataflow communication trace (the paper's Fig 15c
// case study, after Kapre & DeHon's FPGA SPICE solver). One task factors
// one matrix column; a task fires only after receiving the factor
// contributions of every earlier column that updates it. The resulting DAG
// has notoriously low ILP — the workload is latency-bound, so the NoC's
// per-message latency (not bandwidth) sets completion time.
package dataflow

import (
	"fmt"
	"io"

	"fasttrack/internal/matrixgen"
	"fasttrack/internal/trace"
)

// Options tunes trace generation.
type Options struct {
	// ComputeDelay is the modeled cycles for a column update (default 12 —
	// a sparse column factorization is a multiply-accumulate loop, so PE
	// compute serialization dilutes the NoC's share of the critical path,
	// which is why the paper's LU speedups top out around 1.4×).
	ComputeDelay int32
}

func (o Options) withDefaults() Options {
	if o.ComputeDelay == 0 {
		o.ComputeDelay = 12
	}
	return o
}

// Trace builds the token-dataflow LU trace for matrix m on a w×h PE grid.
// Columns are scattered across PEs (owner = column mod PEs), the standard
// token-dataflow mapping that exposes whatever parallelism the DAG has.
func Trace(m *matrixgen.Matrix, w, h int, opts Options) (*trace.Trace, error) {
	b := trace.NewBuilder(name(m), w*h)
	if err := emit(b, m, w, h, opts); err != nil {
		return nil, err
	}
	return b.Build()
}

// WriteTo streams the same trace, event for event, to dst as an FTT1 file
// without materializing it; the returned header's fingerprint equals
// Trace(...).Fingerprint() for identical inputs.
func WriteTo(m *matrixgen.Matrix, w, h int, opts Options, dst io.WriteSeeker) (trace.Header, error) {
	bw, err := trace.NewWriter(dst, name(m), w*h)
	if err != nil {
		return trace.Header{}, err
	}
	if err := emit(bw, m, w, h, opts); err != nil {
		return trace.Header{}, err
	}
	if err := bw.Close(); err != nil {
		return trace.Header{}, err
	}
	return bw.Header(), nil
}

func name(m *matrixgen.Matrix) string { return fmt.Sprintf("lu/%s", m.Name) }

// emit generates the event stream into any trace.Adder (shared by the
// in-memory and streaming paths; see spmv.emit).
func emit(b trace.Adder, m *matrixgen.Matrix, w, h int, opts Options) error {
	opts = opts.withDefaults()
	pes := w * h
	deps := matrixgen.SymbolicLU(m)
	owner := func(col int) int { return col % pes }

	compute := make([]int32, m.N) // event index of each column's task
	crossMsgs := 0
	for k := 0; k < m.N; k++ {
		dst := owner(k)
		var taskDeps []int32
		for _, j := range deps[k] {
			src := owner(int(j))
			if src == dst {
				// Local dependency: the task just waits on the producer.
				taskDeps = append(taskDeps, compute[j])
				continue
			}
			// Remote dependency: the producer's PE sends a token.
			msg := b.Add(src, dst, 1, compute[j])
			taskDeps = append(taskDeps, msg)
			crossMsgs++
		}
		compute[k] = b.Add(dst, dst, opts.ComputeDelay, taskDeps...)
	}
	if crossMsgs == 0 {
		return fmt.Errorf("dataflow: %s generates no cross-PE tokens on %d PEs", m.Name, pes)
	}
	return nil
}

// Benchmarks returns synthetic stand-ins for the paper's Fig 15c LU
// factorization suite (SPICE circuit matrices named roughly
// <circuit>_<nodes>_<edges> in the paper).
func Benchmarks() []*matrixgen.Matrix {
	return []*matrixgen.Matrix{
		matrixgen.Circuit("s953_4568", 953, 5, 301),
		matrixgen.Circuit("s953_3197", 953, 4, 302),
		matrixgen.Circuit("s1494_9156", 1494, 6, 303),
		matrixgen.Circuit("s1488_4872", 1488, 4, 304),
		matrixgen.Circuit("s1423_6648", 1423, 5, 305),
		matrixgen.Circuit("s1423_2582", 1423, 3, 306),
		matrixgen.Banded("ram8k_10823", 1600, 2, 0.08, 307),
		matrixgen.Circuit("bomhof3_10656", 1800, 6, 308),
	}
}
