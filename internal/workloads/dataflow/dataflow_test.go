package dataflow

import (
	"testing"

	"fasttrack/internal/matrixgen"
)

func TestTraceValidAndLatencyBound(t *testing.T) {
	m := matrixgen.Circuit("c", 600, 5, 1)
	tr, err := Trace(m, 8, 8, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	st := tr.ComputeStats(8, 8)
	// A dataflow DAG from LU has a long critical path relative to its size
	// (low ILP): at least as long as the matrix's longest column chain.
	if st.CritPathLen < 10 {
		t.Errorf("critical path %d suspiciously short for LU", st.CritPathLen)
	}
	if st.SelfEvents == 0 {
		t.Error("LU trace should contain local compute events")
	}
}

// TestTokensFollowFactorization: every cross-PE message must carry a
// column result to a later column's owner.
func TestTokensFollowFactorization(t *testing.T) {
	m := matrixgen.Circuit("c", 300, 5, 2)
	tr, err := Trace(m, 4, 4, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range tr.Events {
		if e.Src == e.Dst {
			continue // compute task
		}
		if len(e.Deps) != 1 {
			t.Fatalf("token event %d has %d deps, want 1 (the producing task)", i, len(e.Deps))
		}
		prod := tr.Events[e.Deps[0]]
		if prod.Dst != e.Src {
			t.Fatalf("token %d sourced at PE %d but producer ran on PE %d", i, e.Src, prod.Dst)
		}
	}
}

func TestComputeDelayLengthensSchedule(t *testing.T) {
	m := matrixgen.Circuit("c", 300, 5, 3)
	fast, err := Trace(m, 4, 4, Options{ComputeDelay: 1})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Trace(m, 4, 4, Options{ComputeDelay: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(fast.Events) != len(slow.Events) {
		t.Fatal("delay must not change event structure")
	}
	var fd, sd int64
	for i := range fast.Events {
		fd += int64(fast.Events[i].Delay)
		sd += int64(slow.Events[i].Delay)
	}
	if sd <= fd {
		t.Error("larger compute delay should increase total delay")
	}
}

func TestBenchmarksGenerate(t *testing.T) {
	for _, m := range Benchmarks() {
		tr, err := Trace(m, 4, 4, Options{})
		if err != nil {
			t.Errorf("%s: %v", m.Name, err)
			continue
		}
		if err := tr.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
}
