// Package analysis provides static latency analysis for the NoCs in this
// repository, in the spirit of HopliteRT (Wasly et al., FPT 2017), the
// real-time Hoplite variant whose turn-prioritization FastTrack adopts
// (paper §II/§IV-D).
//
// Two kinds of results are offered:
//
//   - Provable in-flight bounds for baseline Hoplite under this
//     repository's static priority scheme (W always wins, N deflects east,
//     deflection loops are exactly N hops and cannot recur at a level).
//
//   - Exact isolated (zero-load) latencies for any configuration, computed
//     by replaying a single packet through the real router logic — a
//     routing oracle used by tests and by the design-space explorer.
//
// In-flight latency is measured from network entry to delivery; source
// queueing is excluded, as in HopliteRT, because the PE port has the lowest
// priority and its service time depends on the injection regulation policy
// rather than the router microarchitecture.
package analysis

import (
	"fmt"

	"fasttrack/internal/core"
	"fasttrack/internal/noc"
)

// HopliteInFlightBound returns a provable worst-case in-flight latency (in
// cycles) for a packet from src to dst on an n×n Hoplite torus under the
// static W-priority arbitration implemented here.
//
// Derivation: the X traversal and the turn ride the W input, which is
// always granted its desired port, so they cost exactly dx cycles and never
// deflect. Every southward step (and the exit) arrives on the N input and
// can be deflected at most once — a deflected packet circles the X ring in
// exactly N hops, returns on the W input, and W→S is always granted. Hence
//
//	T ≤ dx + dy + (dy + 1) · n.
func HopliteInFlightBound(n int, src, dst noc.Coord) int64 {
	dx := int64(noc.RingDelta(src.X, dst.X, n))
	dy := int64(noc.RingDelta(src.Y, dst.Y, n))
	return dx + dy + (dy+1)*int64(n)
}

// HopliteNetworkBound returns the worst HopliteInFlightBound over all
// source/destination pairs of an n×n torus: the dx = dy = n-1 corner.
func HopliteNetworkBound(n int) int64 {
	worst := noc.Coord{X: 0, Y: 0}
	far := noc.Coord{X: n - 1, Y: n - 1}
	return HopliteInFlightBound(n, worst, far)
}

// IsolatedLatency replays a single packet through cfg's real network and
// returns its exact zero-load in-flight latency in cycles, plus the hop
// breakdown. It errors if the packet is not delivered within 4·n² cycles
// (which would indicate a routing bug).
func IsolatedLatency(cfg core.Config, src, dst noc.Coord) (cycles int64, shortHops, expressHops int32, err error) {
	net, err := cfg.Build()
	if err != nil {
		return 0, 0, 0, err
	}
	pe := noc.PEIndex(src, net.Width())
	net.Offer(pe, noc.Packet{ID: 1, Src: src, Dst: dst})
	net.Step(0)
	if !net.Accepted(pe) {
		return 0, 0, 0, fmt.Errorf("analysis: idle %s refused injection at %v", cfg, src)
	}
	if len(net.Delivered()) == 1 {
		p := net.Delivered()[0]
		return 0, p.ShortHops, p.ExpressHops, nil
	}
	limit := int64(4 * net.Width() * net.Height())
	for c := int64(1); c <= limit; c++ {
		net.Step(c)
		if d := net.Delivered(); len(d) == 1 {
			return c, d[0].ShortHops, d[0].ExpressHops, nil
		}
	}
	return 0, 0, 0, fmt.Errorf("analysis: packet %v->%v lost on %s", src, dst, cfg)
}

// ZeroLoad summarizes the isolated latency distribution of a configuration.
type ZeroLoad struct {
	Config string
	// Mean and Max isolated in-flight latency over all PE pairs.
	Mean float64
	Max  int64
	// ExpressShare is the fraction of all hops taken on express links.
	ExpressShare float64
}

// ZeroLoadProfile computes exact isolated latencies for every ordered PE
// pair of cfg (excluding self pairs).
func ZeroLoadProfile(cfg core.Config) (ZeroLoad, error) {
	zl := ZeroLoad{Config: cfg.String()}
	n := cfg.N
	var sum float64
	var pairs int64
	var short, express int64
	for s := 0; s < n*n; s++ {
		for d := 0; d < n*n; d++ {
			if s == d {
				continue
			}
			cyc, sh, ex, err := IsolatedLatency(cfg, noc.PECoord(s, n), noc.PECoord(d, n))
			if err != nil {
				return zl, err
			}
			sum += float64(cyc)
			pairs++
			short += int64(sh)
			express += int64(ex)
			if cyc > zl.Max {
				zl.Max = cyc
			}
		}
	}
	if pairs > 0 {
		zl.Mean = sum / float64(pairs)
	}
	if short+express > 0 {
		zl.ExpressShare = float64(express) / float64(short+express)
	}
	return zl, nil
}

// SpeedupBound returns the best-case (zero-load) latency speedup FastTrack
// can deliver over Hoplite for a given pair: the ratio of DOR path length
// to the express-accelerated path length. It is the analytical ceiling the
// simulated speedups must respect.
func SpeedupBound(n, d int, src, dst noc.Coord) float64 {
	dx := noc.RingDelta(src.X, dst.X, n)
	dy := noc.RingDelta(src.Y, dst.Y, n)
	if dx+dy == 0 {
		return 1
	}
	fast := dx%d + dx/d + dy%d + dy/d
	if fast == 0 {
		fast = 1
	}
	return float64(dx+dy) / float64(fast)
}
