package analysis

import (
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/hoplite"
	"fasttrack/internal/noc"
	"fasttrack/internal/xrand"
)

// TestHopliteBoundHoldsUnderAdversarialTraffic floods a Hoplite network
// with hotspot-heavy random traffic and checks every delivered packet's
// in-flight latency against the provable bound.
func TestHopliteBoundHoldsUnderAdversarialTraffic(t *testing.T) {
	const n = 6
	nw, err := hoplite.New(n, n)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(77)
	hot := noc.Coord{X: 3, Y: 3}
	var id int64
	var delivered int64
	for cyc := int64(0); cyc < 6000; cyc++ {
		for pe := 0; pe < n*n; pe++ {
			if !rng.Bool(0.6) {
				continue
			}
			dst := hot
			if rng.Bool(0.5) {
				dst = noc.PECoord(rng.Intn(n*n), n)
			}
			src := noc.PECoord(pe, n)
			if dst == src {
				continue
			}
			id++
			nw.Offer(pe, noc.Packet{ID: id, Src: src, Dst: dst, Gen: cyc})
		}
		nw.Step(cyc)
		for _, p := range nw.Delivered() {
			delivered++
			inFlight := cyc - p.Inject
			bound := HopliteInFlightBound(n, p.Src, p.Dst)
			if inFlight > bound {
				t.Fatalf("packet %v->%v in-flight %d exceeds bound %d (deflections %d)",
					p.Src, p.Dst, inFlight, bound, p.Deflections)
			}
		}
	}
	if delivered < 1000 {
		t.Fatalf("only %d deliveries; test not meaningful", delivered)
	}
}

func TestHopliteNetworkBound(t *testing.T) {
	// 8×8 worst pair: dx=dy=7 -> 7+7+8*8 = 78.
	if got := HopliteNetworkBound(8); got != 78 {
		t.Errorf("HopliteNetworkBound(8) = %d, want 78", got)
	}
	// The bound must dominate every pairwise bound.
	for s := 0; s < 64; s++ {
		for d := 0; d < 64; d++ {
			b := HopliteInFlightBound(8, noc.PECoord(s, 8), noc.PECoord(d, 8))
			if b > HopliteNetworkBound(8) {
				t.Fatalf("pair bound %d exceeds network bound", b)
			}
		}
	}
}

// TestIsolatedLatencyIsTheFastPathFormula: on a fully-populated Full
// FastTrack, the isolated latency of every pair equals the closed form
// dx%D + dx/D + dy%D + dy/D — packets upgrade as soon as they align.
func TestIsolatedLatencyIsTheFastPathFormula(t *testing.T) {
	cfg := core.FastTrack(8, 2, 1)
	for s := 0; s < 64; s++ {
		for d := 0; d < 64; d++ {
			if s == d {
				continue
			}
			src, dst := noc.PECoord(s, 8), noc.PECoord(d, 8)
			cyc, _, _, err := IsolatedLatency(cfg, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			dx := noc.RingDelta(src.X, dst.X, 8)
			dy := noc.RingDelta(src.Y, dst.Y, 8)
			want := int64(dx%2 + dx/2 + dy%2 + dy/2)
			if cyc != want {
				t.Fatalf("%v->%v isolated %d, want %d", src, dst, cyc, want)
			}
		}
	}
}

// TestZeroLoadOrdering: mean and max isolated latency must improve
// monotonically from Hoplite to depopulated to fully-populated FastTrack.
func TestZeroLoadOrdering(t *testing.T) {
	configs := []core.Config{
		core.Hoplite(8),
		core.FastTrack(8, 2, 2),
		core.FastTrack(8, 2, 1),
	}
	var prev *ZeroLoad
	for _, cfg := range configs {
		zl, err := ZeroLoadProfile(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if prev != nil {
			if zl.Mean >= prev.Mean {
				t.Errorf("%s mean %.2f should beat %s mean %.2f", zl.Config, zl.Mean, prev.Config, prev.Mean)
			}
			if zl.Max > prev.Max {
				t.Errorf("%s max %d should not exceed %s max %d", zl.Config, zl.Max, prev.Config, prev.Max)
			}
		}
		p := zl
		prev = &p
	}
	ft, err := ZeroLoadProfile(core.FastTrack(8, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	if ft.ExpressShare < 0.3 {
		t.Errorf("FT(64,2,1) express share %.2f suspiciously low", ft.ExpressShare)
	}
}

// TestSpeedupBoundDominatesMeasured: the analytical zero-load speedup
// ceiling must dominate the measured isolated speedup for every pair.
func TestSpeedupBoundDominatesMeasured(t *testing.T) {
	hop := core.Hoplite(8)
	ft := core.FastTrack(8, 2, 1)
	for s := 0; s < 64; s += 3 {
		for d := 0; d < 64; d += 5 {
			if s == d {
				continue
			}
			src, dst := noc.PECoord(s, 8), noc.PECoord(d, 8)
			h, _, _, err := IsolatedLatency(hop, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			f, _, _, err := IsolatedLatency(ft, src, dst)
			if err != nil {
				t.Fatal(err)
			}
			if f == 0 || h == 0 {
				continue
			}
			bound := SpeedupBound(8, 2, src, dst)
			if got := float64(h) / float64(f); got > bound+1e-9 {
				t.Fatalf("%v->%v measured speedup %.3f exceeds bound %.3f", src, dst, got, bound)
			}
		}
	}
}
