// Package noc defines the vocabulary shared by every network implementation
// in this repository: coordinates on the 2-D unidirectional torus, packets,
// router port identities, per-port event counters, and the Network interface
// that the simulation engine drives.
//
// All networks in this repo (Hoplite, FastTrack, multi-channel Hoplite) are
// bufferless and deflection-routed: a router must assign every in-flight
// input packet to some output port every cycle. The engine enforces packet
// conservation; a network that loses a packet is a bug, not a statistic.
package noc

import "fmt"

// Coord is a router/PE position on the N×M torus. X grows eastward and Y
// grows southward; both rings are unidirectional (east and south only),
// matching Hoplite's torus.
type Coord struct {
	X, Y int
}

// String renders the coordinate like the paper's figures, e.g. "(3,0)".
func (c Coord) String() string { return fmt.Sprintf("(%d,%d)", c.X, c.Y) }

// RingDelta returns the forward (east/south) distance from a to b on a
// unidirectional ring of n nodes.
func RingDelta(a, b, n int) int {
	d := (b - a) % n
	if d < 0 {
		d += n
	}
	return d
}

// Packet is the unit of transfer. Hoplite-family NoCs move one whole packet
// per link per cycle (wide datapath, no flits), so a packet is also a flit.
//
// The bookkeeping fields (Gen, Inject, hop and deflection counts) exist for
// measurement only; a hardware packet carries just Dst plus payload.
type Packet struct {
	ID  int64
	Src Coord
	Dst Coord

	// Gen is the cycle the packet was created at its source PE; source
	// queueing time counts toward latency, as in the paper's latency plots.
	Gen int64
	// Inject is the cycle the packet entered the network.
	Inject int64

	// ShortHops and ExpressHops count link traversals by link class.
	ShortHops   int32
	ExpressHops int32
	// Deflections counts the times the packet was denied its preferred
	// output and misrouted.
	Deflections int32

	// Event links the packet back to an application-trace event, or -1 for
	// synthetic traffic.
	Event int32
}

// Port identifies a router port. Inputs come first, then outputs; the
// express ports exist only on FastTrack routers.
type Port uint8

// Router ports. W/N are inputs (packets arrive from the west and north),
// E/S are outputs (the torus is unidirectional). The Sh/Ex suffix is the
// link class, mirroring the paper's Fig 9 labels.
const (
	PortWSh Port = iota // west short input
	PortWEx             // west express input
	PortNSh             // north short input
	PortNEx             // north express input
	PortPE              // client injection input
	PortESh             // east short output
	PortEEx             // east express output
	PortSSh             // south short output (shared with the NoC exit)
	PortSEx             // south express output (shared with the express exit)
	NumPorts
)

var portNames = [NumPorts]string{
	"W.sh", "W.ex", "N.sh", "N.ex", "PE", "E.sh", "E.ex", "S.sh", "S.ex",
}

// String returns the short label used in tables ("W.ex" etc.).
func (p Port) String() string {
	if int(p) < len(portNames) {
		return portNames[p]
	}
	return fmt.Sprintf("Port(%d)", uint8(p))
}

// IsExpress reports whether the port belongs to the express plane.
func (p Port) IsExpress() bool {
	return p == PortWEx || p == PortNEx || p == PortEEx || p == PortSEx
}

// Counters aggregates network-wide events. The split by input port feeds
// the paper's Fig 18; the link-class traversal counts feed Fig 18a.
type Counters struct {
	// ShortTraversals and ExpressTraversals count link hops network-wide.
	ShortTraversals   int64
	ExpressTraversals int64
	// MisroutesByInput[p] counts true deflections: packets arriving on
	// input p that were sent away from their dimension-ordered path.
	MisroutesByInput [NumPorts]int64
	// ExpressDeniedByInput[p] counts packets arriving on input p that were
	// forced onto a short link (or a less-preferred exit driver) when they
	// preferred an express resource — the paper's Fig 18b notion of an
	// "input deflection".
	ExpressDeniedByInput [NumPorts]int64
	// InjectionStalls counts cycles a PE offered a packet and was refused.
	InjectionStalls int64
	// Delivered counts packets handed to clients.
	Delivered int64
}

// Add folds other into c field-wise. Sharded networks use it to merge
// per-shard counters; integer addition is order-free, so the merged totals
// are identical to sequential counting.
func (c *Counters) Add(other *Counters) {
	c.ShortTraversals += other.ShortTraversals
	c.ExpressTraversals += other.ExpressTraversals
	for i := range c.MisroutesByInput {
		c.MisroutesByInput[i] += other.MisroutesByInput[i]
	}
	for i := range c.ExpressDeniedByInput {
		c.ExpressDeniedByInput[i] += other.ExpressDeniedByInput[i]
	}
	c.InjectionStalls += other.InjectionStalls
	c.Delivered += other.Delivered
}

// TotalDeflections sums true misroutes across input ports.
func (c *Counters) TotalDeflections() int64 {
	var t int64
	for _, v := range c.MisroutesByInput {
		t += v
	}
	return t
}

// TotalExpressDenied sums express-denial events across input ports.
func (c *Counters) TotalExpressDenied() int64 {
	var t int64
	for _, v := range c.ExpressDeniedByInput {
		t += v
	}
	return t
}

// Network is a cycle-accurate NoC. The engine drives it with the following
// per-cycle protocol:
//
//  1. Offer at most one packet per PE for injection.
//  2. Step(now) routes all in-flight packets and decides which offers were
//     accepted; links latch so the next cycle sees the new state.
//  3. Read Accepted for each offering PE and Delivered for the packets that
//     exited this cycle.
//
// Offers not accepted are forgotten; the client must offer again.
type Network interface {
	// Width and Height return the torus dimensions in routers.
	Width() int
	Height() int
	// NumPEs returns Width*Height; PE i sits at (i%Width, i/Width).
	NumPEs() int
	// Offer presents a packet for injection at PE pe this cycle.
	Offer(pe int, p Packet)
	// Step advances the network one clock cycle.
	Step(now int64)
	// Accepted reports whether the packet offered at pe was injected during
	// the latest Step.
	Accepted(pe int) bool
	// Delivered returns the packets delivered during the latest Step. The
	// slice is reused between cycles; callers must not retain it.
	Delivered() []Packet
	// InFlight returns the number of packets currently inside the network.
	InFlight() int
	// Counters exposes the event counters for measurement.
	Counters() *Counters
}

// ShardedNetwork is implemented by networks whose Step can be split across
// S row-band shards, each advanced on its own worker. The engine's sharded
// cycle protocol is:
//
//  1. Offer packets as usual (concurrent offers are allowed for PEs owned
//     by different shards).
//  2. BeginCycle(now) once, on the coordinator: publishes every shard's
//     pending activity marks into the cycle's working set.
//  3. StepShard(k, now) for every shard, concurrently: routes the routers
//     in ShardRange(k). Cross-shard boundary traffic is written into the
//     next-cycle link registers, which is race-free because every register
//     element has exactly one driving router.
//  4. EndCycle(now) once, on the coordinator: latches the link registers
//     (the two-phase barrier every network here already had) and merges
//     per-shard delivery lists in ascending shard order, which reproduces
//     the sequential engine's global delivery order exactly.
//
// ConfigureShards(1) restores plain sequential Step semantics.
type ShardedNetwork interface {
	Network
	// ConfigureShards partitions the fabric into s row-band shards and
	// returns the effective shard count (clamped to Height). It errors when
	// the network variant cannot shard (and the network stays sequential).
	ConfigureShards(s int) (int, error)
	// ShardRange returns shard k's router index range [lo, hi).
	ShardRange(k int) (lo, hi int)
	// BeginCycle starts a sharded cycle on the coordinator.
	BeginCycle(now int64)
	// StepShard advances shard k's routers. Calls for distinct k may run
	// concurrently between BeginCycle and EndCycle.
	StepShard(k int, now int64)
	// EndCycle latches links and merges per-shard results.
	EndCycle(now int64)
}

// PEIndex converts a coordinate to the PE index used by Network.
func PEIndex(c Coord, width int) int { return c.Y*width + c.X }

// PECoord converts a PE index to its coordinate.
func PECoord(pe, width int) Coord { return Coord{X: pe % width, Y: pe / width} }
