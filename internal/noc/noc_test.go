package noc

import (
	"testing"
	"testing/quick"
)

func TestRingDelta(t *testing.T) {
	cases := []struct {
		a, b, n, want int
	}{
		{0, 3, 8, 3},
		{3, 0, 8, 5},
		{7, 0, 8, 1},
		{5, 5, 8, 0},
		{0, 0, 1, 0},
	}
	for _, c := range cases {
		if got := RingDelta(c.a, c.b, c.n); got != c.want {
			t.Errorf("RingDelta(%d,%d,%d) = %d, want %d", c.a, c.b, c.n, got, c.want)
		}
	}
}

// Quick properties: the delta is always in [0,n), advancing a by the delta
// reaches b, and the two directed deltas sum to 0 or n.
func TestRingDeltaProperties(t *testing.T) {
	f := func(a, b uint8, nn uint8) bool {
		n := int(nn%31) + 1
		x, y := int(a)%n, int(b)%n
		d := RingDelta(x, y, n)
		if d < 0 || d >= n {
			return false
		}
		if (x+d)%n != y {
			return false
		}
		back := RingDelta(y, x, n)
		return (d+back)%n == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPEIndexRoundTrip(t *testing.T) {
	f := func(pe uint16, ww uint8) bool {
		w := int(ww%31) + 1
		p := int(pe) % (w * 64)
		return PEIndex(PECoord(p, w), w) == p
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPortStrings(t *testing.T) {
	want := map[Port]string{
		PortWSh: "W.sh", PortWEx: "W.ex", PortNSh: "N.sh", PortNEx: "N.ex",
		PortPE: "PE", PortESh: "E.sh", PortEEx: "E.ex", PortSSh: "S.sh", PortSEx: "S.ex",
	}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("Port %d String = %q, want %q", p, p.String(), s)
		}
	}
	if Port(200).String() == "" {
		t.Error("out-of-range port should still render")
	}
}

func TestPortIsExpress(t *testing.T) {
	express := map[Port]bool{
		PortWEx: true, PortNEx: true, PortEEx: true, PortSEx: true,
		PortWSh: false, PortNSh: false, PortESh: false, PortSSh: false, PortPE: false,
	}
	for p, want := range express {
		if p.IsExpress() != want {
			t.Errorf("%v IsExpress = %v, want %v", p, p.IsExpress(), want)
		}
	}
}

func TestCountersTotals(t *testing.T) {
	var c Counters
	c.MisroutesByInput[PortNSh] = 3
	c.MisroutesByInput[PortWEx] = 2
	c.ExpressDeniedByInput[PortPE] = 7
	if got := c.TotalDeflections(); got != 5 {
		t.Errorf("TotalDeflections = %d, want 5", got)
	}
	if got := c.TotalExpressDenied(); got != 7 {
		t.Errorf("TotalExpressDenied = %d, want 7", got)
	}
}

func TestCoordString(t *testing.T) {
	if got := (Coord{X: 3, Y: 0}).String(); got != "(3,0)" {
		t.Errorf("Coord string = %q", got)
	}
}
