package noc_test

import (
	"testing"

	"fasttrack/internal/noc"
)

// FuzzRingDelta checks the forward-ring-distance algebra for arbitrary
// (possibly negative) positions: the result is always a canonical residue,
// zero exactly on multiples of the ring size, shift-invariant, and the two
// directions around the ring sum to 0 or n.
func FuzzRingDelta(f *testing.F) {
	f.Add(0, 0, 4)
	f.Add(3, 1, 8)
	f.Add(-5, 7, 3)
	f.Add(1, -9, 16)
	f.Fuzz(func(t *testing.T, a, b, n int) {
		n = n%1024 + 1 // ring size must be positive; keep values tame
		if n < 1 {
			n += 1024
		}
		a, b = a%100000, b%100000
		d := noc.RingDelta(a, b, n)
		if d < 0 || d >= n {
			t.Fatalf("RingDelta(%d,%d,%d) = %d outside [0,%d)", a, b, n, d, n)
		}
		if (d == 0) != ((b-a)%n == 0) {
			t.Errorf("RingDelta(%d,%d,%d) = %d but b-a %% n = %d", a, b, n, d, (b-a)%n)
		}
		back := noc.RingDelta(b, a, n)
		if sum := d + back; sum != 0 && sum != n {
			t.Errorf("forward %d + backward %d = %d, want 0 or %d", d, back, sum, n)
		}
		if shifted := noc.RingDelta(a+7, b+7, n); shifted != d {
			t.Errorf("shift invariance broken: %d vs %d", shifted, d)
		}
	})
}
