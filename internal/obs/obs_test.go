package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDGenerationAndValidation(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if a == b {
		t.Fatalf("two generated trace IDs collide: %s", a)
	}
	if len(a) != 32 || !ValidTraceID(a) {
		t.Fatalf("generated ID %q is not a valid 32-char trace ID", a)
	}
	valid := []string{"a", "req-42", "A.b_c-9", strings.Repeat("x", 64)}
	for _, s := range valid {
		if !ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = false, want true", s)
		}
	}
	invalid := []string{"", strings.Repeat("x", 65), "has space", "semi;colon", "ünicode", "a\nb"}
	for _, s := range invalid {
		if ValidTraceID(s) {
			t.Errorf("ValidTraceID(%q) = true, want false", s)
		}
	}
}

func TestContextPropagation(t *testing.T) {
	tr := NewJobTrace("tid-1")
	ctx := context.Background()
	if TraceIDFrom(ctx) != "" || JobIDFrom(ctx) != "" || TraceFrom(ctx) != nil {
		t.Fatal("empty context should carry nothing")
	}
	ctx = WithTrace(WithJobID(WithTraceID(ctx, "tid-1"), "j000001"), tr)
	if got := TraceIDFrom(ctx); got != "tid-1" {
		t.Fatalf("TraceIDFrom = %q", got)
	}
	if got := JobIDFrom(ctx); got != "j000001" {
		t.Fatalf("JobIDFrom = %q", got)
	}
	if TraceFrom(ctx) != tr {
		t.Fatal("TraceFrom did not round-trip")
	}
}

func TestJobTraceSpansAndExport(t *testing.T) {
	tr := NewJobTrace("")
	if tr.TraceID() == "" {
		t.Fatal("empty trace ID was not auto-generated")
	}
	tr.SetJobID("j000042")

	sp := tr.Begin("queue_wait").Attr("depth", 3)
	time.Sleep(time.Millisecond)
	d := sp.End()
	if d <= 0 {
		t.Fatalf("span duration %v not positive", d)
	}
	tr.Event("dedup_join", map[string]any{"client": "c1"})
	tr.Add(Span{Name: "job", Start: tr.Start(), End: tr.Start().Add(5 * time.Millisecond)})

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	if spans[0].Name != "queue_wait" || spans[0].Attrs["depth"] != 3 {
		t.Fatalf("first span wrong: %+v", spans[0])
	}
	if spans[1].Dur() != 0 {
		t.Fatalf("event span has duration %v", spans[1].Dur())
	}

	ex := tr.Export()
	if ex.TraceID != tr.TraceID() || ex.JobID != "j000042" || len(ex.Spans) != 3 {
		t.Fatalf("export wrong: %+v", ex)
	}
	if ex.Spans[0].DurNS != int64(d) {
		t.Fatalf("export dur_ns %d != recorded %d", ex.Spans[0].DurNS, int64(d))
	}
}

// Nil receivers must be safe: call sites are unconditional.
func TestJobTraceNilSafety(t *testing.T) {
	var tr *JobTrace
	if tr.Begin("x").Attr("k", 1).End() != 0 {
		t.Fatal("nil trace Begin/End not a no-op")
	}
	tr.Event("e", nil)
	tr.Add(Span{})
	if tr.Spans() != nil {
		t.Fatal("nil trace has spans")
	}
	if ex := tr.Export(); len(ex.Spans) != 0 {
		t.Fatal("nil trace exports spans")
	}
}

func TestWriteChromePerfettoShape(t *testing.T) {
	tr := NewJobTrace("trace-abc")
	tr.SetJobID("j000007")
	tr.Begin("admission").End()
	tr.Begin("sse_stream").Attr("client", "c9").End()
	tr.Event("dedup_join", nil)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]int{}
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
		if ev.PID != jobPID {
			t.Errorf("event %q pid %d, want %d", ev.Name, ev.PID, jobPID)
		}
	}
	adm := doc.TraceEvents[byName["admission"]]
	if adm.Ph != "X" || adm.Args["trace_id"] != "trace-abc" || adm.Args["job_id"] != "j000007" {
		t.Fatalf("admission event wrong: %+v", adm)
	}
	if _, ok := adm.Args["dur_ns"]; !ok {
		t.Fatal("admission event missing dur_ns arg")
	}
	if sse := doc.TraceEvents[byName["sse_stream"]]; sse.TID != tidSSE {
		t.Fatalf("sse_stream on tid %d, want %d", sse.TID, tidSSE)
	}
	if join := doc.TraceEvents[byName["dedup_join"]]; join.Ph != "i" {
		t.Fatalf("dedup_join ph %q, want instant", join.Ph)
	}
}

func TestLoggerWith(t *testing.T) {
	var buf bytes.Buffer
	l := slog.New(slog.NewJSONHandler(&buf, nil))
	ctx := WithJobID(WithTraceID(context.Background(), "t-1"), "j-1")
	LoggerWith(ctx, l).Info("hello")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec["trace_id"] != "t-1" || rec["job_id"] != "j-1" {
		t.Fatalf("record missing ids: %v", rec)
	}
	// No IDs attached: logger passes through unchanged.
	buf.Reset()
	LoggerWith(context.Background(), l).Info("plain")
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatal("plain context leaked a trace_id attr")
	}
}

func TestNewLogger(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewLogger(&buf, "json", "warn")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("dropped")
	l.Warn("kept")
	if strings.Contains(buf.String(), "dropped") || !strings.Contains(buf.String(), "kept") {
		t.Fatalf("level filter wrong: %s", buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("json handler output not JSON: %v", err)
	}

	if _, err := NewLogger(&buf, "text", "debug"); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLogger(&buf, "xml", "info"); err == nil {
		t.Fatal("bogus format accepted")
	}
	if _, err := NewLogger(&buf, "text", "loud"); err == nil {
		t.Fatal("bogus level accepted")
	}
}

func TestConcurrentTraceUse(t *testing.T) {
	tr := NewJobTrace("race")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Begin("cache_peek").Attr("g", g).End()
			}
		}(g)
	}
	wg.Wait()
	if got := len(tr.Spans()); got != 800 {
		t.Fatalf("got %d spans, want 800", got)
	}
}
