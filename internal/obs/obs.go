// Package obs is the request-scoped observability plane shared by the
// serving stack (internal/serve), the sweep orchestrator (internal/runner)
// and the core run entry points: trace IDs that follow one job across every
// layer, per-job stage span recording with Perfetto export, fixed-bucket
// duration histograms for the /metrics stage-latency families, and log/slog
// construction for the CLIs.
//
// The paper's evaluation discipline — measure where cycles go, and bound the
// measurement's own overhead — applies to the serving layer too: everything
// here is allocation-light, lock-narrow, and strictly off the cycle loop
// (the engine's telemetry.Observer path is untouched). A request without a
// trace attached pays one context lookup per run, nothing more.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewTraceID returns a fresh 32-hex-char trace identifier.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is a broken platform; a constant ID keeps the
		// plane functional (IDs are correlation handles, not security tokens).
		return "00000000000000000000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// maxTraceIDLen bounds inbound X-Ftserve-Trace-Id headers so a hostile
// client cannot make the daemon store or log unbounded strings.
const maxTraceIDLen = 64

// ValidTraceID reports whether a client-supplied trace ID is acceptable:
// 1..64 characters from [0-9A-Za-z._-]. Anything else is discarded and
// replaced by a generated ID.
func ValidTraceID(s string) bool {
	if len(s) == 0 || len(s) > maxTraceIDLen {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

type ctxKey int

const (
	ctxTraceID ctxKey = iota
	ctxJobID
	ctxTrace
)

// WithTraceID returns ctx carrying a trace ID.
func WithTraceID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxTraceID, id)
}

// TraceIDFrom extracts the trace ID, or "" when none is attached.
func TraceIDFrom(ctx context.Context) string {
	s, _ := ctx.Value(ctxTraceID).(string)
	return s
}

// WithJobID returns ctx carrying a job ID.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, ctxJobID, id)
}

// JobIDFrom extracts the job ID, or "" when none is attached.
func JobIDFrom(ctx context.Context) string {
	s, _ := ctx.Value(ctxJobID).(string)
	return s
}

// WithTrace returns ctx carrying a live span recorder; downstream layers
// (runner.Do's cache peek, core.RunSynthetic's engine span) add stages to it
// without their signatures naming the observability plane.
func WithTrace(ctx context.Context, t *JobTrace) context.Context {
	return context.WithValue(ctx, ctxTrace, t)
}

// TraceFrom extracts the span recorder, or nil.
func TraceFrom(ctx context.Context) *JobTrace {
	t, _ := ctx.Value(ctxTrace).(*JobTrace)
	return t
}

// LoggerWith returns l with the ctx's trace_id and job_id attrs attached
// (when present), so every record a layer emits under one request carries
// the same correlation handles.
func LoggerWith(ctx context.Context, l *slog.Logger) *slog.Logger {
	if l == nil {
		l = slog.Default()
	}
	if id := TraceIDFrom(ctx); id != "" {
		l = l.With("trace_id", id)
	}
	if id := JobIDFrom(ctx); id != "" {
		l = l.With("job_id", id)
	}
	return l
}

// NewLogger builds a slog.Logger writing to w. format selects the handler
// ("text" or "json"); level is the minimum record level ("debug", "info",
// "warn", "error"). The flag-facing spelling lives in cliflags.Logging.
func NewLogger(w io.Writer, format, level string) (*slog.Logger, error) {
	var lv slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lv = slog.LevelInfo
	case "debug":
		lv = slog.LevelDebug
	case "warn", "warning":
		lv = slog.LevelWarn
	case "error":
		lv = slog.LevelError
	default:
		return nil, fmt.Errorf("obs: unknown log level %q (debug|info|warn|error)", level)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch strings.ToLower(format) {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (text|json)", format)
	}
}
