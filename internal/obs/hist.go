package obs

import (
	"sync/atomic"
	"time"
)

// The stage-latency histograms share one fixed bucket geometry, spanning
// sub-millisecond SSE flushes to minute-long sweep jobs. A fixed layout
// (rather than per-histogram bounds) keeps DurationHist's zero value usable
// — no constructor, no lazy allocation, no lock — and makes every exported
// family directly comparable. The bounds are the documented contract
// (DESIGN.md §16); changing them is a dashboard-breaking change.
var histBounds = [...]time.Duration{
	10 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	5 * time.Second,
	10 * time.Second,
	30 * time.Second,
	60 * time.Second,
}

// numHistBuckets counts the finite buckets; one overflow (+Inf) bucket
// follows them.
const numHistBuckets = len(histBounds)

// HistBounds returns the shared bucket upper bounds (a copy).
func HistBounds() []time.Duration {
	return append([]time.Duration(nil), histBounds[:]...)
}

// DurationHist is a concurrency-safe fixed-bucket latency histogram: one
// atomic counter per bucket plus an exact int64 nanosecond sum, so the
// /metrics totals reconcile bit-exactly with the span log that produced
// the samples. The zero value is ready to use.
type DurationHist struct {
	counts [numHistBuckets + 1]atomic.Int64 // per-bucket; last is +Inf overflow
	count  atomic.Int64
	sumNS  atomic.Int64
}

// Observe records one duration. Negative durations (clock steps) clamp to
// zero so counters stay monotone.
func (h *DurationHist) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	i := 0
	for i < numHistBuckets && d > histBounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// HistSnapshot is a point-in-time copy of a DurationHist. Counts has one
// entry per finite bucket plus the overflow; Count and SumNS are the totals
// the Prometheus _count and _sum series expose.
type HistSnapshot struct {
	Counts [numHistBuckets + 1]int64
	Count  int64
	SumNS  int64
}

// Snapshot copies the histogram. Buckets are individually atomic: a
// mid-Observe snapshot may be skewed by in-progress samples, which is
// irrelevant at scrape granularity and exact once recording stops.
func (h *DurationHist) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	s.Count = h.count.Load()
	s.SumNS = h.sumNS.Load()
	return s
}

// SumSeconds converts the exact nanosecond sum the way every exporter and
// reconciliation test must: float64(SumNS)/1e9, so both sides of a
// comparison perform the identical rounding.
func (s HistSnapshot) SumSeconds() float64 { return float64(s.SumNS) / 1e9 }

// Quantile returns the ceil-rank q-quantile as a bucket upper bound (the
// repo-wide quantile convention): the smallest bound whose cumulative count
// reaches ceil(q*Count). Samples in the overflow bucket report the largest
// finite bound — the histogram cannot resolve beyond it.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	rank := int64(float64(s.Count) * q)
	if float64(rank) < float64(s.Count)*q {
		rank++
	}
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i := 0; i < numHistBuckets; i++ {
		cum += s.Counts[i]
		if cum >= rank {
			return histBounds[i]
		}
	}
	return histBounds[numHistBuckets-1]
}
