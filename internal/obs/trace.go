package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Span is one finished stage of a job's lifecycle. Durations are stored as
// the two wall-clock instants; DurNS is what the metrics layer and the wire
// forms expose, so a span and the histogram sample recorded from it carry
// the identical nanosecond count (the exactness the reconciliation tests
// assert).
type Span struct {
	Name       string
	Start, End time.Time
	Attrs      map[string]any
}

// Dur returns the span's duration.
func (s Span) Dur() time.Duration { return s.End.Sub(s.Start) }

// JobTrace records the stage spans of one request as it crosses layers:
// admission, queue wait, cache peeks, the simulation itself, SSE streaming.
// It is safe for concurrent use (sweep jobs add cache-peek spans from
// worker goroutines while an SSE handler times its stream).
type JobTrace struct {
	mu      sync.Mutex
	traceID string
	jobID   string
	start   time.Time
	spans   []Span
}

// NewJobTrace starts an empty trace; Perfetto timestamps are relative to
// this instant. An empty traceID gets a generated one.
func NewJobTrace(traceID string) *JobTrace {
	if traceID == "" {
		traceID = NewTraceID()
	}
	return &JobTrace{traceID: traceID, start: time.Now()}
}

// TraceID returns the trace's correlation ID.
func (t *JobTrace) TraceID() string { return t.traceID }

// SetJobID attaches the daemon-assigned job ID once admission succeeds.
func (t *JobTrace) SetJobID(id string) {
	t.mu.Lock()
	t.jobID = id
	t.mu.Unlock()
}

// JobID returns the attached job ID, "" before admission.
func (t *JobTrace) JobID() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jobID
}

// Start returns the trace's creation instant (the e2e span's origin).
func (t *JobTrace) Start() time.Time { return t.start }

// Add appends an externally-timed span.
func (t *JobTrace) Add(s Span) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, s)
	t.mu.Unlock()
}

// Event records an instant (zero-duration) span, e.g. a duplicate POST
// joining this job.
func (t *JobTrace) Event(name string, attrs map[string]any) {
	if t == nil {
		return
	}
	now := time.Now()
	t.Add(Span{Name: name, Start: now, End: now, Attrs: attrs})
}

// Spans returns a copy of the recorded spans in completion order.
func (t *JobTrace) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Pending is a stage span in progress; End appends it to the trace.
// All methods are nil-safe so call sites need no trace-enabled branch.
type Pending struct {
	t  *JobTrace
	sp Span
}

// Begin opens a stage span now. A nil *JobTrace yields a nil-safe Pending
// that records nothing.
func (t *JobTrace) Begin(name string) *Pending {
	if t == nil {
		return nil
	}
	return &Pending{t: t, sp: Span{Name: name, Start: time.Now()}}
}

// Attr attaches a key/value to the span; returns p for chaining.
func (p *Pending) Attr(k string, v any) *Pending {
	if p == nil {
		return nil
	}
	if p.sp.Attrs == nil {
		p.sp.Attrs = map[string]any{}
	}
	p.sp.Attrs[k] = v
	return p
}

// End closes the span, appends it, and returns its duration.
func (p *Pending) End() time.Duration {
	if p == nil {
		return 0
	}
	p.sp.End = time.Now()
	p.t.Add(p.sp)
	return p.sp.Dur()
}

// SpanJSON is the wire form of one span: offsets relative to the trace
// start in microseconds (Perfetto's unit) plus the exact duration in
// nanoseconds — dur_ns is the field span-vs-metrics reconciliation sums.
type SpanJSON struct {
	Name    string         `json:"name"`
	StartUS int64          `json:"ts_us"`
	DurNS   int64          `json:"dur_ns"`
	Attrs   map[string]any `json:"attrs,omitempty"`
}

// Export is the trace's client-facing JSON form (the SSE `trace` frame).
type Export struct {
	TraceID string     `json:"trace_id"`
	JobID   string     `json:"job_id,omitempty"`
	Spans   []SpanJSON `json:"spans"`
}

// Export snapshots the trace for JSON serialization.
func (t *JobTrace) Export() Export {
	if t == nil {
		return Export{}
	}
	t.mu.Lock()
	ex := Export{TraceID: t.traceID, JobID: t.jobID, Spans: make([]SpanJSON, len(t.spans))}
	for i, s := range t.spans {
		ex.Spans[i] = SpanJSON{
			Name:    s.Name,
			StartUS: s.Start.Sub(t.start).Microseconds(),
			DurNS:   int64(s.Dur()),
			Attrs:   s.Attrs,
		}
	}
	t.mu.Unlock()
	return ex
}

// chromeEvent mirrors the Chrome trace-event shape the packet tracer and
// sweep span log already emit, so one Perfetto session can load all three
// layers (pid 1 packets, pid 2 sweep workers, pid 3 job lifecycle).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   int64          `json:"ts"`
	Dur  int64          `json:"dur,omitempty"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// jobPID keeps job-lifecycle tracks apart from the packet tracer (pid 1)
// and the sweep span log (pid 2) in a merged Perfetto view.
const jobPID = 3

// Track IDs inside the job process: lifecycle stages on one lane, SSE
// subscriber streams on another so their overlap with `run` stays readable.
const (
	tidLifecycle = 1
	tidSSE       = 2
)

// WriteChrome exports the trace as Chrome trace-event JSON
// ({"traceEvents":[...]}, ts/dur in microseconds since trace creation),
// loadable in Perfetto or chrome://tracing. Every slice carries the
// trace_id and the exact dur_ns in its args.
func (t *JobTrace) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	traceID, jobID, start := t.traceID, t.jobID, t.start
	t.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		first = false
		_, err = bw.Write(b)
		return err
	}

	name := "ftserve job"
	if jobID != "" {
		name = "ftserve job " + jobID
	}
	if err := emit(chromeEvent{
		Name: "process_name", Ph: "M", PID: jobPID,
		Args: map[string]any{"name": name},
	}); err != nil {
		return err
	}
	for _, lane := range []struct {
		tid  int
		name string
	}{{tidLifecycle, "lifecycle"}, {tidSSE, "sse"}} {
		if err := emit(chromeEvent{
			Name: "thread_name", Ph: "M", PID: jobPID, TID: lane.tid,
			Args: map[string]any{"name": lane.name},
		}); err != nil {
			return err
		}
	}
	for _, s := range spans {
		tid := tidLifecycle
		if s.Name == "sse_stream" {
			tid = tidSSE
		}
		args := map[string]any{"trace_id": traceID, "dur_ns": int64(s.Dur())}
		if jobID != "" {
			args["job_id"] = jobID
		}
		for k, v := range s.Attrs {
			args[k] = v
		}
		ev := chromeEvent{
			Name: s.Name, Cat: "job", PID: jobPID, TID: tid,
			TS: s.Start.Sub(start).Microseconds(), Args: args,
		}
		if d := s.Dur(); d > 0 {
			ev.Ph = "X"
			ev.Dur = d.Microseconds()
			if ev.Dur < 1 {
				ev.Dur = 1 // zero-width slices are invisible in Perfetto
			}
		} else {
			ev.Ph, ev.S = "i", "p" // instant event, process-scoped
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
