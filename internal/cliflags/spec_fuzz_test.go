package cliflags

import (
	"strings"
	"testing"
)

// FuzzDecodeJobSpec: arbitrary bytes must never panic the decoder, and any
// spec it accepts must be inside the admission bounds and buildable — the
// "never an admitted garbage job" property the daemon's 400 path relies on.
func FuzzDecodeJobSpec(f *testing.F) {
	seeds := []string{
		`{"kind":"sim"}`,
		`{"kind":"sweep","rates":[0.1,0.5,1.0]}`,
		`{"kind":"dse","topology":{"noc":"ft","n":4}}`,
		`{"kind":"sim","topology":{"noc":"hoplite","n":16},"workload":{"pattern":"TRANSPOSE","rate":0.3,"packets":500,"seed":7}}`,
		`{"kind":"sim","faults":{"faults":0.01,"misroute":0.001,"faultseed":3,"retry":64}}`,
		`{"kind":"sim","max_cycles":1000,"converge_window":64,"converge_tol":0.05,"check":true,"watchdog":4096}`,
		`{"kind":"sim","timeout_ms":100,"debug_panic":true}`,
		`{"kind":"sweep","rates":[]}`,
		`{"kind":"sim","workload":{"rate":1e308}}`,
		`{"kind":"sim","topology":{"n":-3}}`,
		`{"kind":"sim",`,
		`[1,2,3]`,
		`null`,
		`"sim"`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		s, err := DecodeJobSpec(strings.NewReader(doc))
		if err != nil {
			// Every rejection must carry the structured form the HTTP layer
			// serializes.
			if se := AsSpecError(err); se.Msg == "" {
				t.Fatalf("rejection without a message: %v", err)
			}
			return
		}
		// Accepted specs are normalized, bounded, and buildable.
		if s.Topology == nil || s.Workload == nil {
			t.Fatal("accepted spec not normalized")
		}
		if s.Topology.N < 2 || s.Topology.N > MaxSpecN {
			t.Fatalf("accepted out-of-bounds torus width %d", s.Topology.N)
		}
		if s.Workload.PacketsPerPE < 1 || s.Workload.PacketsPerPE > MaxSpecPackets {
			t.Fatalf("accepted out-of-bounds quota %d", s.Workload.PacketsPerPE)
		}
		if s.Kind != "dse" {
			rate := s.Workload.Rate
			if len(s.Rates) > 0 {
				rate = s.Rates[0]
			}
			if _, _, err := s.SimConfig(rate); err != nil {
				t.Fatalf("accepted spec fails to build: %v", err)
			}
		}
		if _, err := s.CanonicalKey(); err != nil {
			t.Fatalf("accepted spec has no canonical key: %v", err)
		}
	})
}
