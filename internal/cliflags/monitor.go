package cliflags

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"

	"fasttrack/internal/monitor"
	"fasttrack/internal/obs"
	"fasttrack/internal/runner"
	"fasttrack/internal/telemetry"
)

// Monitor is the live-observability flag group (-http, -flight-recorder,
// -flight-out, -span-trace). All off by default: a run without these flags
// attaches no observer and starts no server, preserving the engine's
// nil-check-only disabled path.
type Monitor struct {
	HTTP           string
	FlightRecorder int
	FlightOut      string
	SpanTrace      string
}

// RegisterMonitor registers the monitoring flags on fs (all off by default).
func RegisterMonitor(fs *flag.FlagSet) *Monitor {
	m := &Monitor{}
	fs.StringVar(&m.HTTP, "http", "", "serve live metrics on this address (/metrics, /live, /debug/pprof); \":0\" picks a free port")
	fs.IntVar(&m.FlightRecorder, "flight-recorder", 0, "record per-packet lifecycles, keeping the N worst for forensics (0 = off)")
	fs.StringVar(&m.FlightOut, "flight-out", "", "write the flight-recorder forensic report to this file on an invariant trip (default: inline in the log record)")
	fs.StringVar(&m.SpanTrace, "span-trace", "", "write per-job sweep spans as Chrome trace-event JSON to this file (Perfetto-loadable)")
	return m
}

// Enabled reports whether any monitoring was requested.
func (m *Monitor) Enabled() bool {
	return m.HTTP != "" || m.FlightRecorder > 0 || m.SpanTrace != ""
}

// Ops is the live-monitoring stack built from the Monitor flags: attach
// Observer to the run (nil when neither -http nor -flight-recorder was set),
// then Close once the run finishes to write the span trace and stop the
// server. Sweep tools that never see a network pass w, h = 0 and get the
// runner/span side only.
type Ops struct {
	// Observer fans out to the collector and flight recorder; nil when
	// neither is enabled, costing the run nothing.
	Observer telemetry.Observer
	// Collector and Flight are the enabled instruments (nil when off).
	Collector *monitor.Collector
	Flight    *monitor.FlightRecorder
	// Server is the running ops server, nil without -http.
	Server *monitor.Server
	// Log receives the flight-recorder forensics record (DumpFlight);
	// nil falls back to slog.Default().
	Log *slog.Logger

	spans     *runner.SpanLog
	spanPath  string
	flightOut string
}

// Build starts the monitoring stack for a w×h run. orch, when non-nil, is
// exported on /metrics and receives the span log when -span-trace is set.
// Sweep tools pass w, h = 0 (no per-network collector).
func (m *Monitor) Build(w, h int, orch *runner.Orchestrator) (*Ops, error) {
	ops := &Ops{}
	if m.HTTP != "" && w > 0 && h > 0 {
		ops.Collector = monitor.NewCollector(w, h)
	}
	if m.FlightRecorder > 0 {
		ops.Flight = monitor.NewFlightRecorder(m.FlightRecorder, w)
		ops.flightOut = m.FlightOut
	}
	if m.SpanTrace != "" && orch != nil {
		ops.spans = runner.NewSpanLog()
		orch.Spans = ops.spans
		ops.spanPath = m.SpanTrace
	}
	ops.Observer = telemetry.Multi(asObserver(ops.Collector), asObserver(ops.Flight))
	if m.HTTP != "" {
		srv, err := monitor.StartServer(m.HTTP, monitor.ServerOptions{
			Collector: ops.Collector, Flight: ops.Flight, Runner: orch,
			Log: slog.Default(),
		})
		if err != nil {
			return nil, err
		}
		ops.Server = srv
		fmt.Fprintf(os.Stderr, "monitor: live on http://%s (/metrics, /live, /debug/pprof)\n", srv.Addr())
	}
	return ops, nil
}

// DumpFlight emits the flight recorder's forensic report (the k worst
// packet lifecycles plus deflection blame) as one structured log record
// carrying any trace/job IDs on ctx; no-op without -flight-recorder. CLIs
// and the daemon call it when a run trips the watchdog or an invariant
// check. With -flight-out the raw report also lands in a file — a crashing
// process keeps its forensics even when the log pipeline escapes newlines
// or drops the record — and the log carries the path instead of the body.
func (o *Ops) DumpFlight(ctx context.Context, k int) {
	if o.Flight == nil {
		return
	}
	var buf bytes.Buffer
	o.Flight.WriteReport(&buf, k)
	log := obs.LoggerWith(ctx, o.Log)
	if o.flightOut != "" {
		if err := os.WriteFile(o.flightOut, buf.Bytes(), 0o644); err != nil {
			log.Error("flight forensics: report file failed; inlining",
				"error", err, "worst", k, "report", buf.String())
			return
		}
		log.Error("flight forensics written", "worst", k, "path", o.flightOut)
		return
	}
	log.Error("flight forensics", "worst", k, "report", buf.String())
}

// Close finalizes the stack: the collector is marked done (the /live page
// shows "run finished"), the span trace is written, and the server stops.
// It returns the first error encountered.
func (o *Ops) Close() error {
	if o.Collector != nil {
		o.Collector.MarkDone()
	}
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if o.spans != nil && o.spanPath != "" {
		f, err := os.Create(o.spanPath)
		if err != nil {
			keep(err)
		} else {
			keep(o.spans.WriteChrome(f))
			keep(f.Close())
		}
	}
	if o.Server != nil {
		keep(o.Server.Close())
	}
	return first
}
