package cliflags

import (
	"flag"
	"fmt"
	"os"

	"fasttrack/internal/monitor"
	"fasttrack/internal/runner"
	"fasttrack/internal/telemetry"
)

// Monitor is the live-observability flag group (-http, -flight-recorder,
// -span-trace). All off by default: a run without these flags attaches no
// observer and starts no server, preserving the engine's nil-check-only
// disabled path.
type Monitor struct {
	HTTP           string
	FlightRecorder int
	SpanTrace      string
}

// RegisterMonitor registers the monitoring flags on fs (all off by default).
func RegisterMonitor(fs *flag.FlagSet) *Monitor {
	m := &Monitor{}
	fs.StringVar(&m.HTTP, "http", "", "serve live metrics on this address (/metrics, /live, /debug/pprof); \":0\" picks a free port")
	fs.IntVar(&m.FlightRecorder, "flight-recorder", 0, "record per-packet lifecycles, keeping the N worst for forensics (0 = off)")
	fs.StringVar(&m.SpanTrace, "span-trace", "", "write per-job sweep spans as Chrome trace-event JSON to this file (Perfetto-loadable)")
	return m
}

// Enabled reports whether any monitoring was requested.
func (m *Monitor) Enabled() bool {
	return m.HTTP != "" || m.FlightRecorder > 0 || m.SpanTrace != ""
}

// Ops is the live-monitoring stack built from the Monitor flags: attach
// Observer to the run (nil when neither -http nor -flight-recorder was set),
// then Close once the run finishes to write the span trace and stop the
// server. Sweep tools that never see a network pass w, h = 0 and get the
// runner/span side only.
type Ops struct {
	// Observer fans out to the collector and flight recorder; nil when
	// neither is enabled, costing the run nothing.
	Observer telemetry.Observer
	// Collector and Flight are the enabled instruments (nil when off).
	Collector *monitor.Collector
	Flight    *monitor.FlightRecorder
	// Server is the running ops server, nil without -http.
	Server *monitor.Server

	spans    *runner.SpanLog
	spanPath string
}

// Build starts the monitoring stack for a w×h run. orch, when non-nil, is
// exported on /metrics and receives the span log when -span-trace is set.
// Sweep tools pass w, h = 0 (no per-network collector).
func (m *Monitor) Build(w, h int, orch *runner.Orchestrator) (*Ops, error) {
	ops := &Ops{}
	if m.HTTP != "" && w > 0 && h > 0 {
		ops.Collector = monitor.NewCollector(w, h)
	}
	if m.FlightRecorder > 0 {
		ops.Flight = monitor.NewFlightRecorder(m.FlightRecorder, w)
	}
	if m.SpanTrace != "" && orch != nil {
		ops.spans = runner.NewSpanLog()
		orch.Spans = ops.spans
		ops.spanPath = m.SpanTrace
	}
	ops.Observer = telemetry.Multi(asObserver(ops.Collector), asObserver(ops.Flight))
	if m.HTTP != "" {
		srv, err := monitor.StartServer(m.HTTP, monitor.ServerOptions{
			Collector: ops.Collector, Flight: ops.Flight, Runner: orch,
		})
		if err != nil {
			return nil, err
		}
		ops.Server = srv
		fmt.Fprintf(os.Stderr, "monitor: live on http://%s (/metrics, /live, /debug/pprof)\n", srv.Addr())
	}
	return ops, nil
}

// DumpFlight writes the flight recorder's forensic report (the k worst
// packet lifecycles plus deflection blame) to w; no-op without
// -flight-recorder. CLIs call it when a run trips the watchdog or an
// invariant check.
func (o *Ops) DumpFlight(w *os.File, k int) {
	if o.Flight == nil {
		return
	}
	o.Flight.WriteReport(w, k)
}

// Close finalizes the stack: the collector is marked done (the /live page
// shows "run finished"), the span trace is written, and the server stops.
// It returns the first error encountered.
func (o *Ops) Close() error {
	if o.Collector != nil {
		o.Collector.MarkDone()
	}
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if o.spans != nil && o.spanPath != "" {
		f, err := os.Create(o.spanPath)
		if err != nil {
			keep(err)
		} else {
			keep(o.spans.WriteChrome(f))
			keep(f.Close())
		}
	}
	if o.Server != nil {
		keep(o.Server.Close())
	}
	return first
}
