package cliflags

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"time"

	"fasttrack/internal/core"
	"fasttrack/internal/traffic"
)

// JobSpec is the wire form of one daemon job: the same vocabulary as the
// flag groups (identical spellings, thanks to the groups' JSON tags), posted
// as JSON to ftserve instead of typed on a command line. A spec is a pure
// value — everything the simulation depends on is inside it, so identical
// specs are identical jobs and the daemon can dedupe them through the
// content-addressed result cache.
//
// Kinds:
//
//   - "sim":   one synthetic run (Topology + Workload [+ Faults]).
//   - "sweep": the same network swept over Rates (Workload.Rate ignored).
//   - "dse":   a design-space exploration at Topology.N (candidates are
//     enumerated server-side; D/R/Variant/Channels are ignored).
type JobSpec struct {
	Kind     string    `json:"kind"`
	Topology *Topology `json:"topology,omitempty"`
	Workload *Workload `json:"workload,omitempty"`
	Faults   *Faults   `json:"faults,omitempty"`

	// Rates is the sweep grid for kind "sweep".
	Rates []float64 `json:"rates,omitempty"`

	// MaxChannels and Variants scope a "dse" exploration (0 = 3 channels,
	// Full routers only).
	MaxChannels int  `json:"max_channels,omitempty"`
	Variants    bool `json:"variants,omitempty"`

	// MaxCycles bounds each run; 0 means the engine default.
	MaxCycles int64 `json:"max_cycles,omitempty"`
	// ConvergeWindow/ConvergeTol arm the engine's early-exit stationarity
	// test (see sim.Options).
	ConvergeWindow int64   `json:"converge_window,omitempty"`
	ConvergeTol    float64 `json:"converge_tol,omitempty"`
	// Check enables the per-cycle conservation audit; Watchdog arms the
	// starvation watchdog at this packet age.
	Check    bool  `json:"check,omitempty"`
	Watchdog int64 `json:"watchdog,omitempty"`
	// Shards, when >1, runs each simulation on that many parallel row-band
	// workers (bit-exact with the sequential engine; a wall-clock knob).
	// Only the hoplite and ft fabrics support sharding.
	Shards int `json:"shards,omitempty"`

	// TimeoutMS is the job's wall-clock deadline in milliseconds; the
	// daemon's -job-timeout caps it. 0 inherits the daemon default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// DebugPanic makes the job panic mid-execution. It exists to prove the
	// daemon's panic isolation under load tests and is rejected unless the
	// daemon runs with debug hooks enabled.
	DebugPanic bool `json:"debug_panic,omitempty"`
}

// SpecError is a structured job-spec rejection: Field names the offending
// JSON field (empty for document-level problems). The daemon serializes it
// into 400 responses, so a client learns exactly what to fix.
type SpecError struct {
	Field string `json:"field,omitempty"`
	Msg   string `json:"message"`
}

func (e *SpecError) Error() string {
	if e.Field == "" {
		return "job spec: " + e.Msg
	}
	return fmt.Sprintf("job spec: field %q: %s", e.Field, e.Msg)
}

func specErr(field, format string, args ...any) error {
	return &SpecError{Field: field, Msg: fmt.Sprintf(format, args...)}
}

// Admission bounds. They exist so a malformed or adversarial spec can be
// refused before it allocates anything: a 1024-wide torus is a million
// routers, and the daemon is not the place to discover that by OOM.
const (
	// MaxSpecBytes bounds the JSON document itself.
	MaxSpecBytes = 1 << 16
	// MaxSpecN bounds the torus width.
	MaxSpecN = 128
	// MaxSpecPackets bounds the per-PE generation quota.
	MaxSpecPackets = 1_000_000
	// MaxSpecRates bounds the sweep grid size.
	MaxSpecRates = 128
	// MaxSpecCycles bounds MaxCycles and Watchdog.
	MaxSpecCycles = 1_000_000_000
)

// DecodeJobSpec reads one JSON job spec from r (at most MaxSpecBytes),
// rejecting unknown fields, trailing garbage, and anything out of
// Validate's bounds. The returned spec is normalized: nil groups are
// replaced with their flag defaults, so callers never see a half-empty
// spec. Errors are *SpecError (or wrap one) and are safe to show clients.
func DecodeJobSpec(r io.Reader) (*JobSpec, error) {
	dec := json.NewDecoder(io.LimitReader(r, MaxSpecBytes+1))
	dec.DisallowUnknownFields()
	var s JobSpec
	if err := dec.Decode(&s); err != nil {
		return nil, &SpecError{Msg: "invalid JSON: " + err.Error()}
	}
	if dec.More() {
		return nil, &SpecError{Msg: "trailing data after the job spec"}
	}
	s.normalize()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// normalize fills nil groups with the flag defaults.
func (s *JobSpec) normalize() {
	if s.Topology == nil {
		def := TopologyDefaults()
		s.Topology = &def
	}
	if s.Workload == nil {
		def := WorkloadDefaults()
		s.Workload = &def
	}
	if s.Workload.Seed == 0 {
		s.Workload.Seed = 1
	}
}

// Validate checks the spec against the admission bounds; errors are
// *SpecError. The spec must be normalized (DecodeJobSpec does both).
func (s *JobSpec) Validate() error {
	switch s.Kind {
	case "sim", "sweep", "dse":
	case "":
		return specErr("kind", "required (sim|sweep|dse)")
	default:
		return specErr("kind", "unknown kind %q (sim|sweep|dse)", s.Kind)
	}
	t := s.Topology
	if t.N < 2 || t.N > MaxSpecN {
		return specErr("topology.n", "torus width %d out of range [2,%d]", t.N, MaxSpecN)
	}
	if t.D < 0 || t.R < 0 || t.Channels < 0 || t.Width < 0 {
		return specErr("topology", "negative parameter")
	}
	// Delegate kind/variant legality to the same builder the CLIs use, so a
	// spec that decodes is a spec that builds (dse enumerates its own
	// candidates and only needs N).
	if s.Kind != "dse" {
		if _, err := t.Config(); err != nil {
			return specErr("topology", "%v", err)
		}
	}
	w := s.Workload
	if _, err := traffic.ByName(w.Pattern); err != nil {
		return specErr("workload.pattern", "%v", err)
	}
	if !(w.Rate > 0 && w.Rate <= 1) || math.IsNaN(w.Rate) {
		return specErr("workload.rate", "injection rate %v out of range (0,1]", w.Rate)
	}
	if w.PacketsPerPE < 1 || w.PacketsPerPE > MaxSpecPackets {
		return specErr("workload.packets", "per-PE quota %d out of range [1,%d]", w.PacketsPerPE, MaxSpecPackets)
	}
	if f := s.Faults; f != nil {
		if f.DropRate < 0 || f.DropRate > 1 || f.MisrouteRate < 0 || f.MisrouteRate > 1 {
			return specErr("faults", "fault probabilities out of range [0,1]")
		}
		if f.RetryTimeout < 0 {
			return specErr("faults.retry", "negative retransmit timeout")
		}
	}
	switch s.Kind {
	case "sweep":
		if len(s.Rates) == 0 {
			return specErr("rates", "kind sweep requires a non-empty rate grid")
		}
		if len(s.Rates) > MaxSpecRates {
			return specErr("rates", "%d rates exceed the limit of %d", len(s.Rates), MaxSpecRates)
		}
		for i, r := range s.Rates {
			if !(r > 0 && r <= 1) || math.IsNaN(r) {
				return specErr("rates", "rates[%d]=%v out of range (0,1]", i, r)
			}
		}
	case "dse":
		if s.MaxChannels < 0 || s.MaxChannels > 8 {
			return specErr("max_channels", "channel bound %d out of range [0,8]", s.MaxChannels)
		}
	default:
		if len(s.Rates) > 0 {
			return specErr("rates", "rates are only valid for kind sweep")
		}
	}
	if s.MaxCycles < 0 || s.MaxCycles > MaxSpecCycles {
		return specErr("max_cycles", "cycle bound %d out of range [0,%d]", s.MaxCycles, MaxSpecCycles)
	}
	if s.Watchdog < 0 || s.Watchdog > MaxSpecCycles {
		return specErr("watchdog", "packet-age bound %d out of range [0,%d]", s.Watchdog, MaxSpecCycles)
	}
	if s.ConvergeWindow < 0 || s.ConvergeWindow > MaxSpecCycles {
		return specErr("converge_window", "window %d out of range [0,%d]", s.ConvergeWindow, MaxSpecCycles)
	}
	if s.ConvergeTol < 0 || s.ConvergeTol > 1 || math.IsNaN(s.ConvergeTol) {
		return specErr("converge_tol", "tolerance %v out of range [0,1]", s.ConvergeTol)
	}
	if s.TimeoutMS < 0 {
		return specErr("timeout_ms", "negative deadline")
	}
	if s.Shards < 0 || s.Shards > MaxSpecN {
		return specErr("shards", "shard count %d out of range [0,%d]", s.Shards, MaxSpecN)
	}
	if s.Shards > 1 {
		if s.Kind == "dse" {
			return specErr("shards", "dse enumerates multichannel candidates, which do not shard; use shards=1")
		}
		if s.Topology.Kind == "multi" {
			return specErr("shards", "the multichannel fabric does not shard; use shards=1")
		}
	}
	return nil
}

// SimConfig converts a validated spec into the core configuration and run
// options a single simulation needs; the rate argument overrides the
// workload rate (sweep jobs call it once per grid point; pass
// s.Workload.Rate for kind sim).
func (s *JobSpec) SimConfig(rate float64) (core.Config, core.SyntheticOptions, error) {
	cfg, err := s.Topology.Config()
	if err != nil {
		return core.Config{}, core.SyntheticOptions{}, err
	}
	opts := core.SyntheticOptions{
		MaxCycles:         s.MaxCycles,
		CheckConservation: s.Check,
		MaxPacketAge:      s.Watchdog,
		ConvergeWindow:    s.ConvergeWindow,
		ConvergeTol:       s.ConvergeTol,
		Shards:            s.Shards,
	}
	s.Workload.Apply(&opts)
	opts.Rate = rate
	if s.Faults != nil {
		s.Faults.Apply(&opts)
	}
	return cfg, opts, nil
}

// Timeout returns the job's requested deadline (0 = none requested).
func (s *JobSpec) Timeout() time.Duration {
	return time.Duration(s.TimeoutMS) * time.Millisecond
}

// CanonicalKey is a stable identity for the whole job: the normalized spec
// re-marshalled with Go's deterministic field order. The daemon uses it for
// in-flight dedup (two identical POSTs join one job); the per-run cache
// keys underneath remain runner.SyntheticKey and friends.
func (s *JobSpec) CanonicalKey() (string, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	return "jobspec|" + string(b), nil
}

// AsSpecError extracts the structured form from any error produced by
// DecodeJobSpec, falling back to a document-level SpecError.
func AsSpecError(err error) *SpecError {
	var se *SpecError
	if errors.As(err, &se) {
		return se
	}
	return &SpecError{Msg: err.Error()}
}
