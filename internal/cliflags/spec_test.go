package cliflags

import (
	"errors"
	"strings"
	"testing"
)

func decode(t *testing.T, js string) (*JobSpec, error) {
	t.Helper()
	return DecodeJobSpec(strings.NewReader(js))
}

// TestDecodeJobSpecDefaults: a minimal sim spec decodes with the flag-group
// defaults filled in, matching what the equivalent bare CLI invocation runs.
func TestDecodeJobSpecDefaults(t *testing.T) {
	s, err := decode(t, `{"kind":"sim"}`)
	if err != nil {
		t.Fatal(err)
	}
	def := TopologyDefaults()
	if *s.Topology != def {
		t.Fatalf("topology defaults: want %+v, got %+v", def, *s.Topology)
	}
	wdef := WorkloadDefaults()
	if *s.Workload != wdef {
		t.Fatalf("workload defaults: want %+v, got %+v", wdef, *s.Workload)
	}
	cfg, opts, err := s.SimConfig(s.Workload.Rate)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.String() != "FT(64,2,1)" {
		t.Fatalf("default config: got %s", cfg)
	}
	if opts.Rate != 0.5 || opts.PacketsPerPE != 1000 || opts.Seed != 1 {
		t.Fatalf("default options wrong: %+v", opts)
	}
}

// TestDecodeJobSpecFull: every field round-trips with the flag spellings.
func TestDecodeJobSpecFull(t *testing.T) {
	s, err := decode(t, `{
		"kind": "sweep",
		"topology": {"noc":"hoplite","n":16},
		"workload": {"pattern":"TRANSPOSE","rate":0.3,"packets":500,"seed":7},
		"faults":   {"faults":0.01,"retry":64},
		"rates":    [0.1, 0.2, 0.4],
		"max_cycles": 100000,
		"timeout_ms": 2000
	}`)
	if err != nil {
		t.Fatal(err)
	}
	cfg, opts, err := s.SimConfig(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.String() != "Hoplite" || opts.Rate != 0.2 || opts.Seed != 7 {
		t.Fatalf("conversion wrong: %s %+v", cfg, opts)
	}
	if opts.Faults == nil || opts.Faults.DropRate != 0.01 {
		t.Fatalf("faults not applied: %+v", opts.Faults)
	}
	if opts.Retry == nil || opts.Retry.Timeout != 64 {
		t.Fatalf("retry not applied: %+v", opts.Retry)
	}
	if s.Timeout().Milliseconds() != 2000 {
		t.Fatalf("timeout: got %v", s.Timeout())
	}
}

// TestDecodeJobSpecRejections: each malformed class yields a *SpecError, so
// the daemon can always answer with a structured 400.
func TestDecodeJobSpecRejections(t *testing.T) {
	cases := []struct {
		name, js, wantField string
	}{
		{"not json", `{"kind":`, ""},
		{"trailing garbage", `{"kind":"sim"} {"kind":"sim"}`, ""},
		{"unknown field", `{"kind":"sim","bogus":1}`, ""},
		{"missing kind", `{}`, "kind"},
		{"bad kind", `{"kind":"mine-bitcoin"}`, "kind"},
		{"bad pattern", `{"kind":"sim","workload":{"pattern":"CHAOS","rate":0.5,"packets":10}}`, "workload.pattern"},
		{"rate zero", `{"kind":"sim","workload":{"pattern":"RANDOM","rate":0,"packets":10}}`, "workload.rate"},
		{"rate above one", `{"kind":"sim","workload":{"pattern":"RANDOM","rate":1.5,"packets":10}}`, "workload.rate"},
		{"giant torus", `{"kind":"sim","topology":{"noc":"hoplite","n":100000}}`, "topology.n"},
		{"giant quota", `{"kind":"sim","workload":{"pattern":"RANDOM","rate":0.5,"packets":2000000}}`, "workload.packets"},
		{"bad noc kind", `{"kind":"sim","topology":{"noc":"hypercube","n":8}}`, "topology"},
		{"sweep without rates", `{"kind":"sweep"}`, "rates"},
		{"sweep bad rate", `{"kind":"sweep","rates":[0.5,2.0]}`, "rates"},
		{"rates on sim", `{"kind":"sim","rates":[0.5]}`, "rates"},
		{"negative timeout", `{"kind":"sim","timeout_ms":-5}`, "timeout_ms"},
		{"fault rate above one", `{"kind":"sim","faults":{"faults":1.5}}`, "faults"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := decode(t, c.js)
			if err == nil {
				t.Fatalf("want rejection for %s", c.js)
			}
			var se *SpecError
			if !errors.As(err, &se) {
				t.Fatalf("want *SpecError, got %T: %v", err, err)
			}
			if se.Field != c.wantField {
				t.Fatalf("want field %q, got %q (%v)", c.wantField, se.Field, err)
			}
		})
	}
}

// TestCanonicalKeyIdentity: two specs that differ only in JSON field order
// or whitespace share a canonical key; materially different specs do not.
func TestCanonicalKeyIdentity(t *testing.T) {
	a, err := decode(t, `{"workload":{"packets":100,"pattern":"RANDOM","rate":0.5},"kind":"sim"}`)
	if err != nil {
		t.Fatal(err)
	}
	b, err := decode(t, `{"kind":"sim", "workload":{"pattern":"RANDOM", "rate":0.5, "packets":100}}`)
	if err != nil {
		t.Fatal(err)
	}
	ka, _ := a.CanonicalKey()
	kb, _ := b.CanonicalKey()
	if ka != kb {
		t.Fatalf("equivalent specs must share a key:\n%s\n%s", ka, kb)
	}
	c, err := decode(t, `{"kind":"sim","workload":{"pattern":"RANDOM","rate":0.5,"packets":101}}`)
	if err != nil {
		t.Fatal(err)
	}
	kc, _ := c.CanonicalKey()
	if ka == kc {
		t.Fatal("different specs must not collide")
	}
}

// TestDecodeJobSpecSizeLimit: a document over MaxSpecBytes is refused.
func TestDecodeJobSpecSizeLimit(t *testing.T) {
	big := `{"kind":"sim","workload":{"pattern":"RANDOM","rate":0.5,"packets":10,"seed":1}` +
		strings.Repeat(" ", MaxSpecBytes) + `}`
	if _, err := decode(t, big); err == nil {
		t.Fatal("oversized spec must be rejected")
	}
}
