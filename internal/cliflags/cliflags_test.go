package cliflags_test

import (
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fasttrack/internal/cliflags"
	"fasttrack/internal/core"
)

func parse(t *testing.T, args []string) (*cliflags.Topology, *cliflags.Workload, *cliflags.Faults, *cliflags.Telemetry) {
	t.Helper()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	topo := cliflags.RegisterTopology(fs, cliflags.TopologyDefaults())
	work := cliflags.RegisterWorkload(fs, cliflags.WorkloadDefaults())
	flt := cliflags.RegisterFaults(fs)
	telem := cliflags.RegisterTelemetry(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return topo, work, flt, telem
}

func TestTopologyConfig(t *testing.T) {
	topo, _, _, _ := parse(t, []string{"-noc", "ft", "-n", "16", "-d", "4", "-r", "2", "-width", "128"})
	cfg, err := topo.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.N != 16 || cfg.D != 4 || cfg.R != 2 || cfg.WidthBits != 128 {
		t.Fatalf("config = %+v", cfg)
	}

	topo, _, _, _ = parse(t, []string{"-noc", "multi", "-n", "8", "-channels", "3"})
	cfg, err = topo.Config()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Channels != 3 {
		t.Fatalf("config = %+v", cfg)
	}

	topo, _, _, _ = parse(t, []string{"-noc", "bogus"})
	if _, err := topo.Config(); err == nil || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("unknown -noc: err = %v", err)
	}

	topo, _, _, _ = parse(t, []string{"-variant", "bogus"})
	if _, err := topo.Config(); err == nil || !strings.Contains(err.Error(), "variant") {
		t.Fatalf("unknown -variant: err = %v", err)
	}
}

func TestWorkloadAndFaultsApply(t *testing.T) {
	_, work, flt, _ := parse(t, []string{
		"-pattern", "TRANSPOSE", "-rate", "0.7", "-packets", "50", "-seed", "9",
		"-faults", "0.01", "-retry", "32",
	})
	var o core.SyntheticOptions
	work.Apply(&o)
	flt.Apply(&o)
	if o.Pattern != "TRANSPOSE" || o.Rate != 0.7 || o.PacketsPerPE != 50 || o.Seed != 9 {
		t.Fatalf("workload: %+v", o)
	}
	if o.Faults == nil || o.Faults.DropRate != 0.01 || o.Faults.Seed != 1 {
		t.Fatalf("faults: %+v", o.Faults)
	}
	if o.Retry == nil || o.Retry.Timeout != 32 {
		t.Fatalf("retry: %+v", o.Retry)
	}

	// All-defaults: no fault schedule, no retry policy.
	_, _, flt, _ = parse(t, nil)
	var off core.SyntheticOptions
	flt.Apply(&off)
	if off.Faults != nil || off.Retry != nil {
		t.Fatalf("defaults must leave faults off: %+v %+v", off.Faults, off.Retry)
	}
}

// TestTelemetryEndToEnd parses telemetry flags, runs a real simulation with
// the built sinks attached, and validates the three output artifacts: the
// Chrome trace is one JSON document in trace-event format, and both CSVs
// have their headers and data.
func TestTelemetryEndToEnd(t *testing.T) {
	dir := t.TempDir()
	traceOut := filepath.Join(dir, "trace.json")
	linkOut := filepath.Join(dir, "links.csv")
	metricsOut := filepath.Join(dir, "metrics.csv")

	topo, work, _, telem := parse(t, []string{
		"-noc", "ft", "-n", "8", "-rate", "0.5", "-packets", "60",
		"-trace-out", traceOut,
		"-link-stats", linkOut,
		"-metrics-out", metricsOut, "-metrics-window", "64",
	})
	if !telem.Enabled() {
		t.Fatal("telemetry flags set but Enabled() is false")
	}
	cfg, err := topo.Config()
	if err != nil {
		t.Fatal(err)
	}
	var opts core.SyntheticOptions
	work.Apply(&opts)
	sinks, err := telem.Build(topo.N, topo.N)
	if err != nil {
		t.Fatal(err)
	}
	opts.Observer = sinks.Observer
	if opts.Observer == nil {
		t.Fatal("no observer built")
	}
	if _, err := core.RunSynthetic(context.Background(), cfg, opts); err != nil {
		t.Fatal(err)
	}
	if err := sinks.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(traceOut)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("-trace-out is not a trace-event JSON document: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty trace")
	}

	links, err := os.ReadFile(linkOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(links), "x,y,dir,class,hops") {
		t.Fatalf("link CSV header: %q", strings.SplitN(string(links), "\n", 2)[0])
	}
	if !strings.Contains(string(links), "express") {
		t.Fatal("link CSV does not label express wires")
	}

	metrics, err := os.ReadFile(metricsOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(metrics), "window,start_cycle") {
		t.Fatalf("metrics CSV header: %q", strings.SplitN(string(metrics), "\n", 2)[0])
	}
}

// TestTelemetryDisabled: with no flags, Build yields a nil observer so the
// engine's hot path stays hook-free.
func TestTelemetryDisabled(t *testing.T) {
	_, _, _, telem := parse(t, nil)
	if telem.Enabled() {
		t.Fatal("Enabled() true with no flags")
	}
	sinks, err := telem.Build(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if sinks.Observer != nil {
		t.Fatal("observer must be nil when no telemetry flag is set")
	}
	if err := sinks.Close(); err != nil {
		t.Fatal(err)
	}
}
