package cliflags

import (
	"flag"
	"io"
	"log/slog"

	"fasttrack/internal/obs"
)

// Logging is the structured-logging flag group (-log-format, -log-level),
// shared by every CLI so a fleet's log pipeline can rely on one spelling.
// Logs go to stderr; results stay on stdout. The default level is "warn" so
// tools are as quiet as before unless asked — daemons that narrate their
// lifecycle (ftserve) register with a "info" default instead.
type Logging struct {
	Format string
	Level  string
}

// RegisterLogging registers the logging flags on fs. defLevel is the
// default for -log-level ("warn" for one-shot tools, "info" for daemons).
func RegisterLogging(fs *flag.FlagSet, defLevel string) *Logging {
	l := &Logging{}
	fs.StringVar(&l.Format, "log-format", "text", "structured log format: text | json")
	fs.StringVar(&l.Level, "log-level", defLevel, "minimum log level: debug | info | warn | error")
	return l
}

// Logger builds the slog.Logger the parsed flags describe, writing to w.
// Callers typically also slog.SetDefault it so library code that falls back
// to the default logger honors the flags too.
func (l *Logging) Logger(w io.Writer) (*slog.Logger, error) {
	return obs.NewLogger(w, l.Format, l.Level)
}
