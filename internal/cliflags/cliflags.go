// Package cliflags holds the flag groups shared by the command-line tools
// (ftsim, fttrace, ftexp, ftdse, ftbench), so every tool spells the same
// option the same way and new options appear everywhere at once. Each group
// is registered on a flag.FlagSet with Register* and converted to the
// corresponding config after flag.Parse with the group's method.
package cliflags

import (
	"flag"
	"fmt"
	"time"

	"fasttrack/internal/core"
	"fasttrack/internal/runner"
)

// Topology is the NoC-selection flag group (-noc, -n, -d, -r, -variant,
// -channels, -width). The JSON tags mirror the flag spellings so a daemon
// job spec (see JobSpec) and a command line describe a network identically.
type Topology struct {
	Kind     string `json:"noc"`
	N        int    `json:"n"`
	D        int    `json:"d,omitempty"`
	R        int    `json:"r,omitempty"`
	Variant  string `json:"variant,omitempty"`
	Channels int    `json:"channels,omitempty"`
	Width    int    `json:"width,omitempty"`
}

// TopologyDefaults returns the default topology (-noc ft -n 8 -d 2 -r 1).
func TopologyDefaults() Topology {
	return Topology{Kind: "ft", N: 8, D: 2, R: 1, Variant: "full", Channels: 2, Width: 256}
}

// RegisterTopology registers the topology flags on fs with defaults def and
// returns the destination struct, filled in after fs is parsed.
func RegisterTopology(fs *flag.FlagSet, def Topology) *Topology {
	t := &def
	fs.StringVar(&t.Kind, "noc", def.Kind, "network kind: hoplite | ft | multi")
	fs.IntVar(&t.N, "n", def.N, "torus width (NoC is NxN)")
	fs.IntVar(&t.D, "d", def.D, "FastTrack express link length D")
	fs.IntVar(&t.R, "r", def.R, "FastTrack depopulation factor R")
	fs.StringVar(&t.Variant, "variant", def.Variant, "FastTrack router variant: full | inject")
	fs.IntVar(&t.Channels, "channels", def.Channels, "channel count for -noc multi")
	fs.IntVar(&t.Width, "width", def.Width, "datapath width in bits (FPGA model)")
	return t
}

// Config converts the parsed flags into a core.Config.
func (t *Topology) Config() (core.Config, error) {
	var cfg core.Config
	switch t.Kind {
	case "hoplite":
		cfg = core.Hoplite(t.N)
	case "ft":
		cfg = core.FastTrack(t.N, t.D, t.R)
		switch t.Variant {
		case "", "full":
		case "inject":
			cfg = cfg.WithVariant(core.VariantInject)
		default:
			return core.Config{}, fmt.Errorf("unknown -variant %q (full|inject)", t.Variant)
		}
	case "multi":
		cfg = core.MultiChannel(t.N, t.Channels)
	default:
		return core.Config{}, fmt.Errorf("unknown -noc %q (hoplite|ft|multi)", t.Kind)
	}
	return cfg.WithWidth(t.Width), nil
}

// Workload is the synthetic-workload flag group (-pattern, -rate, -packets,
// -seed); JSON tags mirror the flag spellings (see JobSpec).
type Workload struct {
	Pattern      string  `json:"pattern"`
	Rate         float64 `json:"rate"`
	PacketsPerPE int     `json:"packets"`
	Seed         uint64  `json:"seed,omitempty"`
}

// WorkloadDefaults returns the default workload (RANDOM @ 0.5, 1000 pkts/PE).
func WorkloadDefaults() Workload {
	return Workload{Pattern: "RANDOM", Rate: 0.5, PacketsPerPE: 1000, Seed: 1}
}

// RegisterWorkload registers the workload flags on fs with defaults def.
func RegisterWorkload(fs *flag.FlagSet, def Workload) *Workload {
	w := &def
	fs.StringVar(&w.Pattern, "pattern", def.Pattern, "traffic pattern: RANDOM|LOCAL|BITCOMPL|TRANSPOSE|TORNADO")
	fs.Float64Var(&w.Rate, "rate", def.Rate, "injection rate per PE per cycle")
	fs.IntVar(&w.PacketsPerPE, "packets", def.PacketsPerPE, "packets generated per PE")
	fs.Uint64Var(&w.Seed, "seed", def.Seed, "random seed")
	return w
}

// Apply copies the parsed workload flags into o.
func (w *Workload) Apply(o *core.SyntheticOptions) {
	o.Pattern = w.Pattern
	o.Rate = w.Rate
	o.PacketsPerPE = w.PacketsPerPE
	o.Seed = w.Seed
}

// Engine is the execution-engine flag group (-shards). It controls how a
// simulation runs, never what it computes: the sharded engine is bit-exact
// with the sequential one (golden-tested), so these flags stay out of the
// result cache keys.
type Engine struct {
	Shards int `json:"shards,omitempty"`
}

// EngineDefaults returns the default engine configuration (sequential).
func EngineDefaults() Engine { return Engine{Shards: 1} }

// RegisterEngine registers the engine flags on fs.
func RegisterEngine(fs *flag.FlagSet) *Engine {
	e := &Engine{}
	def := EngineDefaults()
	fs.IntVar(&e.Shards, "shards", def.Shards,
		"row-band worker count for the parallel engine (1 = sequential; results are bit-exact either way)")
	return e
}

// Apply copies the parsed engine flags into o.
func (e *Engine) Apply(o *core.SyntheticOptions) { o.Shards = e.Shards }

// ApplyTrace copies the parsed engine flags into o.
func (e *Engine) ApplyTrace(o *core.TraceOptions) { o.Shards = e.Shards }

// Replay is the trace-replay flag group (-trace-window). Unlike Engine,
// an explicit window CAN change what a replay computes (a binding window
// delays injection — see trace.StreamOptions.Window), so runner.TraceKey
// keys it whenever it is set.
type Replay struct {
	Window int
}

// RegisterReplay registers the streaming-replay flags on fs.
func RegisterReplay(fs *flag.FlagSet) *Replay {
	r := &Replay{}
	fs.IntVar(&r.Window, "trace-window", 0,
		"streaming replay: max resident events when replaying a recorded (.ftt) trace; 0 = default (replay memory is O(window), independent of trace length)")
	return r
}

// Apply copies the parsed replay flags into o.
func (r *Replay) Apply(o *core.TraceOptions) { o.StreamWindow = r.Window }

// Faults is the fault-injection flag group (-faults, -misroute, -faultseed,
// -retry); JSON tags mirror the flag spellings (see JobSpec).
type Faults struct {
	DropRate     float64 `json:"faults,omitempty"`
	MisrouteRate float64 `json:"misroute,omitempty"`
	Seed         uint64  `json:"faultseed,omitempty"`
	RetryTimeout int64   `json:"retry,omitempty"`
}

// RegisterFaults registers the fault flags on fs (all off by default).
func RegisterFaults(fs *flag.FlagSet) *Faults {
	f := &Faults{Seed: 1}
	fs.Float64Var(&f.DropRate, "faults", 0, "transient fault injection: per-packet drop probability (0 = off)")
	fs.Float64Var(&f.MisrouteRate, "misroute", 0, "transient fault injection: per-packet address-corruption probability")
	fs.Uint64Var(&f.Seed, "faultseed", 1, "fault schedule seed (schedules replay identically per seed)")
	fs.Int64Var(&f.RetryTimeout, "retry", 0, "resilient delivery: retransmit timeout in cycles (0 = off)")
	return f
}

// Apply installs the fault schedule and retry policy on o when enabled.
func (f *Faults) Apply(o *core.SyntheticOptions) {
	if f.DropRate > 0 || f.MisrouteRate > 0 {
		o.Faults = &core.FaultConfig{
			Seed: f.Seed, DropRate: f.DropRate, MisrouteRate: f.MisrouteRate,
		}
	}
	if f.RetryTimeout > 0 {
		o.Retry = &core.RetryConfig{Timeout: f.RetryTimeout}
	}
}

// Sweep is the orchestration flag group (-workers, -cache-dir, -no-cache,
// -job-timeout).
type Sweep struct {
	Workers    int
	CacheDir   string
	NoCache    bool
	JobTimeout time.Duration
}

// RegisterSweep registers the sweep flags on fs.
func RegisterSweep(fs *flag.FlagSet) *Sweep {
	s := &Sweep{}
	fs.IntVar(&s.Workers, "workers", 0, "simulation worker pool size (0 = one per CPU)")
	fs.StringVar(&s.CacheDir, "cache-dir", runner.DefaultCacheDir, "content-addressed result cache directory")
	fs.BoolVar(&s.NoCache, "no-cache", false, "disable the result cache (every run simulates fresh)")
	fs.DurationVar(&s.JobTimeout, "job-timeout", 0, "per-job wall-clock deadline; a job past it fails with a timeout error (0 = none)")
	return s
}

// Cache opens the result cache, or returns nil with -no-cache.
func (s *Sweep) Cache() (*runner.Cache, error) {
	if s.NoCache {
		return nil, nil
	}
	return runner.NewCache(s.CacheDir)
}

// Orchestrator builds a sweep orchestrator honoring the flags.
func (s *Sweep) Orchestrator() (*runner.Orchestrator, error) {
	cache, err := s.Cache()
	if err != nil {
		return nil, err
	}
	return &runner.Orchestrator{Workers: s.Workers, Cache: cache, JobTimeout: s.JobTimeout}, nil
}
