package cliflags

import (
	"flag"
	"io"
	"os"

	"fasttrack/internal/telemetry"
)

// Telemetry is the observability flag group (-trace-out, -trace-jsonl,
// -trace-sample, -link-stats, -metrics-out, -metrics-window).
type Telemetry struct {
	TraceOut      string
	TraceJSONL    string
	TraceSample   int64
	LinkStats     string
	MetricsOut    string
	MetricsWindow int64
}

// RegisterTelemetry registers the telemetry flags on fs (all off by default).
func RegisterTelemetry(fs *flag.FlagSet) *Telemetry {
	t := &Telemetry{}
	fs.StringVar(&t.TraceOut, "trace-out", "", "write a Chrome/Perfetto trace-event JSON of packet lifecycles to this file")
	fs.StringVar(&t.TraceJSONL, "trace-jsonl", "", "write the native JSONL packet-event stream to this file")
	fs.Int64Var(&t.TraceSample, "trace-sample", 1, "trace 1-in-K packets by ID (1 = all)")
	fs.StringVar(&t.LinkStats, "link-stats", "", "write per-link utilization CSV (local vs express wire classes) to this file")
	fs.StringVar(&t.MetricsOut, "metrics-out", "", "write windowed time-series metrics CSV to this file")
	fs.Int64Var(&t.MetricsWindow, "metrics-window", 1024, "window length in cycles for -metrics-out")
	return t
}

// Enabled reports whether any telemetry output was requested.
func (t *Telemetry) Enabled() bool {
	return t.TraceOut != "" || t.TraceJSONL != "" || t.LinkStats != "" || t.MetricsOut != ""
}

// Sinks is the set of observers built from the telemetry flags, plus the
// files they stream to. Attach Observer to the run (it is nil when no
// telemetry flag was set), then Close once the run finishes to flush
// buffered trace output and write the CSV reports.
type Sinks struct {
	// Observer fans out to every enabled observer; nil when none.
	Observer telemetry.Observer
	// Tracer, Link and Metrics are the enabled observers (nil when off).
	Tracer  *telemetry.Tracer
	Link    *telemetry.LinkStats
	Metrics *telemetry.Metrics

	linkPath, metricsPath string
	files                 []*os.File
}

// Build opens the requested sinks for a w×h network and composes the
// observer. On error, any files already opened are closed.
func (t *Telemetry) Build(w, h int) (*Sinks, error) {
	s := &Sinks{}
	open := func(path string) (io.Writer, error) {
		f, err := os.Create(path)
		if err != nil {
			for _, g := range s.files {
				g.Close()
			}
			return nil, err
		}
		s.files = append(s.files, f)
		return f, nil
	}
	if t.TraceOut != "" || t.TraceJSONL != "" {
		var chrome, jsonl io.Writer
		var err error
		if t.TraceOut != "" {
			if chrome, err = open(t.TraceOut); err != nil {
				return nil, err
			}
		}
		if t.TraceJSONL != "" {
			if jsonl, err = open(t.TraceJSONL); err != nil {
				return nil, err
			}
		}
		s.Tracer = telemetry.NewTracer(telemetry.TracerOptions{
			Sample: t.TraceSample, JSONL: jsonl, Chrome: chrome, Width: w,
		})
	}
	if t.LinkStats != "" {
		s.Link = telemetry.NewLinkStats(w, h)
		s.linkPath = t.LinkStats
	}
	if t.MetricsOut != "" {
		s.Metrics = telemetry.NewMetrics(t.MetricsWindow, w*h)
		s.metricsPath = t.MetricsOut
	}
	s.Observer = telemetry.Multi(asObserver(s.Tracer), asObserver(s.Link), asObserver(s.Metrics))
	return s, nil
}

// asObserver converts a possibly-nil concrete observer pointer into a
// possibly-nil interface (a nil *T in a non-nil interface would defeat
// Multi's nil filtering).
func asObserver[T any, PT interface {
	*T
	telemetry.Observer
}](p PT) telemetry.Observer {
	if p == nil {
		return nil
	}
	return p
}

// Close finalizes every sink: the metrics tail window is flushed and both
// CSV reports are written, then the trace streams are terminated and all
// files closed. It returns the first error encountered.
func (s *Sinks) Close() error {
	var first error
	keep := func(err error) {
		if first == nil && err != nil {
			first = err
		}
	}
	if s.Metrics != nil {
		s.Metrics.Finish()
		f, err := os.Create(s.metricsPath)
		if err != nil {
			keep(err)
		} else {
			keep(s.Metrics.WriteCSV(f))
			keep(f.Close())
		}
	}
	if s.Link != nil {
		f, err := os.Create(s.linkPath)
		if err != nil {
			keep(err)
		} else {
			keep(s.Link.WriteCSV(f))
			keep(f.Close())
		}
	}
	if s.Tracer != nil {
		keep(s.Tracer.Close())
	}
	for _, f := range s.files {
		keep(f.Close())
	}
	s.files = nil
	return first
}
