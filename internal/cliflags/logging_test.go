package cliflags

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"fasttrack/internal/obs"
)

// TestLoggingFlags: the flag group round-trips into a working slog.Logger
// honoring format and level, and rejects unknown values.
func TestLoggingFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	l := RegisterLogging(fs, "warn")
	if err := fs.Parse([]string{"-log-format", "json", "-log-level", "debug"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	logger, err := l.Logger(&buf)
	if err != nil {
		t.Fatal(err)
	}
	logger.Debug("hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Fatalf("record %v", rec)
	}

	bad := &Logging{Format: "yaml", Level: "info"}
	if _, err := bad.Logger(&buf); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestDumpFlightRouting: forensics flow through the structured logger with
// the context's trace/job IDs attached; with -flight-out the raw report
// lands in the file and the record carries its path instead of the body.
func TestDumpFlightRouting(t *testing.T) {
	out := filepath.Join(t.TempDir(), "flight.txt")
	m := &Monitor{FlightRecorder: 4, FlightOut: out}
	ops, err := m.Build(4, 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ops.Log, err = obs.NewLogger(&buf, "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.WithJobID(obs.WithTraceID(context.Background(), "trace-x"), "j42")
	ops.DumpFlight(ctx, 3)

	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("not JSON: %v (%q)", err, buf.String())
	}
	if rec["trace_id"] != "trace-x" || rec["job_id"] != "j42" {
		t.Fatalf("missing correlation IDs: %v", rec)
	}
	if rec["path"] != out {
		t.Fatalf("record lacks report path: %v", rec)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("report file not written: %v", err)
	}

	// Without -flight-out the report body rides inline in the record.
	ops.flightOut = ""
	buf.Reset()
	ops.DumpFlight(ctx, 3)
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	body, _ := rec["report"].(string)
	if !strings.Contains(body, "flight recorder") && body == "" {
		t.Fatalf("inline report missing: %v", rec)
	}
}
