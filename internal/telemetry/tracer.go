package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"fasttrack/internal/noc"
)

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Sample keeps only wire packets with |ID| % Sample == 0 (retransmit
	// copies carry fresh negative IDs and sample independently); values <= 1
	// trace everything. Sampling is what keeps saturated 16×16 runs bounded.
	Sample int64
	// JSONL, when non-nil, receives the native event stream: one JSON object
	// per line (see the ev field for the event vocabulary).
	JSONL io.Writer
	// Chrome, when non-nil, receives Chrome trace-event JSON ({"traceEvents":
	// [...]}) loadable in Perfetto / chrome://tracing: one async track per
	// packet (begin at injection, instants per hop/deflection, end at
	// delivery), with ts in microseconds standing in 1:1 for cycles.
	Chrome io.Writer
	// Width, when positive, lets router-level events carry (x, y) coordinates
	// in addition to the router index.
	Width int
}

// Tracer is an Observer that streams per-packet lifecycle events. Create
// with NewTracer and Close it after the run to flush buffered output and
// terminate the Chrome JSON document.
type Tracer struct {
	Base
	sample int64
	width  int

	jsonl  *bufio.Writer
	enc    *json.Encoder
	chrome *bufio.Writer

	chromeEvents int64
	begun        map[int64]bool
	events       int64
	err          error
}

// NewTracer returns a Tracer writing to the sinks in o.
func NewTracer(o TracerOptions) *Tracer {
	t := &Tracer{sample: o.Sample, width: o.Width}
	if o.JSONL != nil {
		t.jsonl = bufio.NewWriter(o.JSONL)
		t.enc = json.NewEncoder(t.jsonl)
	}
	if o.Chrome != nil {
		t.chrome = bufio.NewWriter(o.Chrome)
		t.begun = make(map[int64]bool)
		if _, err := t.chrome.WriteString(`{"traceEvents":[`); err != nil {
			t.fail(err)
		}
	}
	return t
}

// keep applies the sampling predicate.
func (t *Tracer) keep(p *noc.Packet) bool {
	if t.sample <= 1 {
		return true
	}
	id := p.ID
	if id < 0 {
		id = -id
	}
	return id%t.sample == 0
}

func (t *Tracer) fail(err error) {
	if t.err == nil {
		t.err = err
	}
}

// emitJSONL writes one native event line.
func (t *Tracer) emitJSONL(v any) {
	if t.enc == nil {
		return
	}
	if err := t.enc.Encode(v); err != nil {
		t.fail(err)
	}
}

// chromeEvent is one Chrome trace-event entry. Async events ("b"/"n"/"e")
// pair by (cat, scope, id), so the per-packet id string is the track key;
// string ids also keep negative retransmit IDs unambiguous.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	ID   string         `json:"id,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	TS   int64          `json:"ts"`
	Args map[string]any `json:"args,omitempty"`
}

func (t *Tracer) emitChrome(ev chromeEvent) {
	if t.chrome == nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		t.fail(err)
		return
	}
	if t.chromeEvents > 0 {
		if err := t.chrome.WriteByte(','); err != nil {
			t.fail(err)
			return
		}
	}
	t.chromeEvents++
	if _, err := t.chrome.Write(b); err != nil {
		t.fail(err)
	}
}

// ensureBegin opens the packet's async track if it is not open yet. Hops
// fire inside Step while the engine reports the accepted injection after
// Step, so the first event seen for a packet may be its first hop; the
// begin event is therefore emitted lazily from whichever event arrives
// first (the packet header carries everything the begin needs).
func (t *Tracer) ensureBegin(now int64, p *noc.Packet) {
	if t.chrome == nil || t.begun[p.ID] {
		return
	}
	t.begun[p.ID] = true
	t.emitChrome(chromeEvent{
		Name: "packet", Cat: "pkt", Ph: "b", ID: fmt.Sprint(p.ID),
		PID: 1, TID: 0, TS: now,
		Args: map[string]any{
			"src": p.Src.String(), "dst": p.Dst.String(), "gen": p.Gen,
		},
	})
}

func coords(c noc.Coord) []int { return []int{c.X, c.Y} }

// routerEvent is the shared JSONL shape of router-level events.
type routerEvent struct {
	Ev      string `json:"ev"`
	Cycle   int64  `json:"cycle"`
	ID      int64  `json:"id"`
	Router  int    `json:"router"`
	X       *int   `json:"x,omitempty"`
	Y       *int   `json:"y,omitempty"`
	Port    string `json:"port"`
	Express bool   `json:"express,omitempty"`
}

func (t *Tracer) routerEvent(ev string, now int64, router int, port noc.Port) routerEvent {
	re := routerEvent{
		Ev: ev, Cycle: now, Router: router,
		Port: port.String(), Express: port.IsExpress(),
	}
	if t.width > 0 {
		x, y := router%t.width, router/t.width
		re.X, re.Y = &x, &y
	}
	return re
}

// OnInject implements Observer.
func (t *Tracer) OnInject(now int64, p *noc.Packet) {
	if !t.keep(p) {
		return
	}
	t.events++
	t.emitJSONL(struct {
		Ev    string `json:"ev"`
		Cycle int64  `json:"cycle"`
		ID    int64  `json:"id"`
		Src   []int  `json:"src"`
		Dst   []int  `json:"dst"`
		Gen   int64  `json:"gen"`
	}{"inject", now, p.ID, coords(p.Src), coords(p.Dst), p.Gen})
	t.ensureBegin(now, p)
}

// OnHop implements Observer.
func (t *Tracer) OnHop(now int64, router int, out noc.Port, p *noc.Packet) {
	t.hop(now, router, out, p)
}

// OnExpressHop implements Observer.
func (t *Tracer) OnExpressHop(now int64, router int, out noc.Port, p *noc.Packet) {
	t.hop(now, router, out, p)
}

func (t *Tracer) hop(now int64, router int, out noc.Port, p *noc.Packet) {
	if !t.keep(p) {
		return
	}
	t.events++
	re := t.routerEvent("hop", now, router, out)
	re.ID = p.ID
	t.emitJSONL(re)
	t.ensureBegin(now, p)
	t.emitChrome(chromeEvent{
		Name: "packet", Cat: "pkt", Ph: "n", ID: fmt.Sprint(p.ID),
		PID: 1, TID: router, TS: now,
		Args: map[string]any{"port": out.String(), "express": out.IsExpress()},
	})
}

// OnDeflect implements Observer.
func (t *Tracer) OnDeflect(now int64, router int, in noc.Port, p *noc.Packet) {
	t.routerInstant("deflect", now, router, in, p)
}

// OnExpressDenied implements Observer.
func (t *Tracer) OnExpressDenied(now int64, router int, in noc.Port, p *noc.Packet) {
	t.routerInstant("xdenied", now, router, in, p)
}

func (t *Tracer) routerInstant(ev string, now int64, router int, in noc.Port, p *noc.Packet) {
	if !t.keep(p) {
		return
	}
	t.events++
	re := t.routerEvent(ev, now, router, in)
	re.ID = p.ID
	t.emitJSONL(re)
	t.ensureBegin(now, p)
	t.emitChrome(chromeEvent{
		Name: "packet", Cat: "pkt", Ph: "n", ID: fmt.Sprint(p.ID),
		PID: 1, TID: router, TS: now,
		Args: map[string]any{"event": ev, "port": in.String()},
	})
}

// OnDeliver implements Observer.
func (t *Tracer) OnDeliver(now int64, p *noc.Packet) {
	if !t.keep(p) {
		return
	}
	t.events++
	t.emitJSONL(struct {
		Ev          string `json:"ev"`
		Cycle       int64  `json:"cycle"`
		ID          int64  `json:"id"`
		Latency     int64  `json:"latency"`
		ShortHops   int32  `json:"short_hops"`
		ExpressHops int32  `json:"express_hops"`
		Deflections int32  `json:"deflections"`
	}{"deliver", now, p.ID, now - p.Gen, p.ShortHops, p.ExpressHops, p.Deflections})
	t.ensureBegin(now, p)
	t.endTrack(now, p, map[string]any{
		"latency":      now - p.Gen,
		"short_hops":   p.ShortHops,
		"express_hops": p.ExpressHops,
		"deflections":  p.Deflections,
	})
}

// OnDrop implements Observer.
func (t *Tracer) OnDrop(now int64, p *noc.Packet) {
	if !t.keep(p) {
		return
	}
	t.events++
	t.emitJSONL(struct {
		Ev    string `json:"ev"`
		Cycle int64  `json:"cycle"`
		ID    int64  `json:"id"`
	}{"drop", now, p.ID})
	if t.chrome != nil && t.begun[p.ID] {
		t.endTrack(now, p, map[string]any{"dropped": true})
	}
}

// OnRetransmit implements Observer.
func (t *Tracer) OnRetransmit(now int64, p *noc.Packet) {
	if !t.keep(p) {
		return
	}
	t.events++
	t.emitJSONL(struct {
		Ev    string `json:"ev"`
		Cycle int64  `json:"cycle"`
		ID    int64  `json:"id"`
		Src   []int  `json:"src"`
		Dst   []int  `json:"dst"`
		Gen   int64  `json:"gen"`
	}{"retransmit", now, p.ID, coords(p.Src), coords(p.Dst), p.Gen})
}

func (t *Tracer) endTrack(now int64, p *noc.Packet, args map[string]any) {
	if t.chrome == nil {
		return
	}
	t.emitChrome(chromeEvent{
		Name: "packet", Cat: "pkt", Ph: "e", ID: fmt.Sprint(p.ID),
		PID: 1, TID: 0, TS: now, Args: args,
	})
	delete(t.begun, p.ID)
}

// Events returns the number of sampled-in events emitted so far.
func (t *Tracer) Events() int64 { return t.events }

// Err returns the first write error, if any.
func (t *Tracer) Err() error { return t.err }

// Close terminates the Chrome document and flushes all buffered output.
// It returns the first error encountered over the tracer's lifetime.
func (t *Tracer) Close() error {
	if t.chrome != nil {
		if _, err := t.chrome.WriteString("]}\n"); err != nil {
			t.fail(err)
		}
		if err := t.chrome.Flush(); err != nil {
			t.fail(err)
		}
		t.chrome = nil
	}
	if t.jsonl != nil {
		if err := t.jsonl.Flush(); err != nil {
			t.fail(err)
		}
		t.jsonl = nil
	}
	return t.err
}

// TelemetryKey implements Keyer.
func (t *Tracer) TelemetryKey() string {
	return fmt.Sprintf("trace(sample=%d,jsonl=%t,chrome=%t)", t.sample, t.enc != nil, t.chrome != nil)
}
