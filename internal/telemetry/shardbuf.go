package telemetry

import "fasttrack/internal/noc"

// ShardObservable is implemented by networks that can shard their Step
// (noc.ShardedNetwork). When stepping shard-parallel, a network must not
// call the session observer from worker goroutines; instead it is handed
// one observer per shard, and each StepShard emits only into its own.
// The engine pairs this with a ShardFanIn whose Flush replays the buffered
// events into the real observer after the step barrier, in ascending shard
// order — which, because shards own ascending router ranges and the sparse
// stepping visits routers in index order, reproduces the sequential
// engine's event order exactly.
type ShardObservable interface {
	// SetShardObservers installs per-shard observers; obs[k] receives the
	// router events emitted by StepShard(k). A nil slice (or nil entries)
	// disables shard-local emission.
	SetShardObservers(obs []Observer)
}

// shardEvent is one buffered router-level event. The packet is captured by
// value: observers may not retain the pointers they are handed, so a replay
// that hands out a pointer to the snapshot is indistinguishable from the
// synchronous call.
type shardEvent struct {
	kind   uint8
	port   noc.Port
	router int32
	now    int64
	p      noc.Packet
}

const (
	evHop uint8 = iota
	evExpressHop
	evDeflect
	evExpressDenied
)

// ShardBuffer records the four router-level events a network emits during
// StepShard (hop, express hop, deflect, express denied) for later ordered
// replay. The engine-side events (inject, deliver, cycle end, ...) never
// fire from inside StepShard, so Base's no-ops cover them.
type ShardBuffer struct {
	Base
	events []shardEvent
}

// OnHop implements Observer.
func (b *ShardBuffer) OnHop(now int64, router int, out noc.Port, p *noc.Packet) {
	b.events = append(b.events, shardEvent{kind: evHop, port: out, router: int32(router), now: now, p: *p})
}

// OnExpressHop implements Observer.
func (b *ShardBuffer) OnExpressHop(now int64, router int, out noc.Port, p *noc.Packet) {
	b.events = append(b.events, shardEvent{kind: evExpressHop, port: out, router: int32(router), now: now, p: *p})
}

// OnDeflect implements Observer.
func (b *ShardBuffer) OnDeflect(now int64, router int, in noc.Port, p *noc.Packet) {
	b.events = append(b.events, shardEvent{kind: evDeflect, port: in, router: int32(router), now: now, p: *p})
}

// OnExpressDenied implements Observer.
func (b *ShardBuffer) OnExpressDenied(now int64, router int, in noc.Port, p *noc.Packet) {
	b.events = append(b.events, shardEvent{kind: evExpressDenied, port: in, router: int32(router), now: now, p: *p})
}

// ShardFanIn owns one event buffer per shard and replays them into the real
// observer after the step barrier.
type ShardFanIn struct {
	dst  Observer
	bufs []*ShardBuffer
}

// NewShardFanIn builds a fan-in of shards buffers draining into dst.
func NewShardFanIn(dst Observer, shards int) *ShardFanIn {
	f := &ShardFanIn{dst: dst, bufs: make([]*ShardBuffer, shards)}
	for i := range f.bufs {
		f.bufs[i] = &ShardBuffer{}
	}
	return f
}

// Observers returns the per-shard observers to install via
// ShardObservable.SetShardObservers.
func (f *ShardFanIn) Observers() []Observer {
	obs := make([]Observer, len(f.bufs))
	for i, b := range f.bufs {
		obs[i] = b
	}
	return obs
}

// Flush replays every buffered event into the destination observer in
// ascending shard order and resets the buffers for the next cycle.
func (f *ShardFanIn) Flush() {
	for _, b := range f.bufs {
		for i := range b.events {
			e := &b.events[i]
			switch e.kind {
			case evHop:
				f.dst.OnHop(e.now, int(e.router), e.port, &e.p)
			case evExpressHop:
				f.dst.OnExpressHop(e.now, int(e.router), e.port, &e.p)
			case evDeflect:
				f.dst.OnDeflect(e.now, int(e.router), e.port, &e.p)
			case evExpressDenied:
				f.dst.OnExpressDenied(e.now, int(e.router), e.port, &e.p)
			}
		}
		b.events = b.events[:0]
	}
}
