package telemetry_test

import (
	"testing"

	"fasttrack/internal/telemetry"
)

// TestWindowTrackerPeekDoesNotPerturb drives two trackers through an
// identical Roll/Flush sequence, calling Peek between every operation on one
// of them, and requires every emitted WindowPoint to be bit-identical: the
// engine's convergence detector shares this arithmetic, so a live-monitoring
// snapshot mid-window must never advance window state.
func TestWindowTrackerPeekDoesNotPerturb(t *testing.T) {
	const w = 8
	plain := &telemetry.WindowTracker{W: w}
	peeked := &telemetry.WindowTracker{W: w}

	var delivered, injected int64
	var latSum float64
	for now := int64(0); now < 100; now++ {
		injected += 2
		delivered++
		latSum += float64(10 + now%7)

		// Hammer the peeked tracker mid-window, several times per cycle.
		for k := 0; k < 3; k++ {
			peeked.Peek(now+1, delivered, injected, latSum, int(injected-delivered))
		}

		if plain.Boundary(now) != peeked.Boundary(now) {
			t.Fatalf("cycle %d: Boundary diverged after Peek", now)
		}
		if plain.Boundary(now) {
			a := plain.Roll(now, delivered, injected, latSum, int(injected-delivered))
			b := peeked.Roll(now, delivered, injected, latSum, int(injected-delivered))
			if a != b {
				t.Fatalf("cycle %d: Roll diverged after Peek:\n  plain  %+v\n  peeked %+v", now, a, b)
			}
		}
	}
	a, aok := plain.Flush(103, delivered, injected, latSum, 0)
	b, bok := peeked.Flush(103, delivered, injected, latSum, 0)
	if aok != bok || a != b {
		t.Fatalf("Flush diverged after Peek:\n  plain  %+v %v\n  peeked %+v %v", a, aok, b, bok)
	}
}

// TestWindowTrackerPeekValues checks the partial-window arithmetic itself:
// Peek's rate divides by the elapsed fraction of the window, not W, and an
// empty window reports ok=false.
func TestWindowTrackerPeekValues(t *testing.T) {
	tr := &telemetry.WindowTracker{W: 10}
	if _, ok := tr.Peek(0, 0, 0, 0, 0); ok {
		t.Error("Peek of an empty window reported ok")
	}
	wp, ok := tr.Peek(4, 8, 12, 40, 4)
	if !ok {
		t.Fatal("Peek of a 4-cycle partial window reported !ok")
	}
	if wp.Start != 0 || wp.End != 4 {
		t.Errorf("bounds [%d, %d), want [0, 4)", wp.Start, wp.End)
	}
	if wp.Delivered != 8 || wp.Injected != 12 {
		t.Errorf("delivered/injected = %d/%d, want 8/12", wp.Delivered, wp.Injected)
	}
	if want := 8.0 / 4.0; wp.Rate != want {
		t.Errorf("Rate = %v, want %v", wp.Rate, want)
	}
	if want := 40.0 / 8.0; wp.MeanLatency != want {
		t.Errorf("MeanLatency = %v, want %v", wp.MeanLatency, want)
	}
}

// TestMetricsSnapshotNeutral interleaves Metrics.Snapshot with the normal
// observer callbacks and requires the recorded points to match a snapshot-free
// twin exactly.
func TestMetricsSnapshotNeutral(t *testing.T) {
	plain := telemetry.NewMetrics(4, 16)
	snapped := telemetry.NewMetrics(4, 16)

	feed := func(m *telemetry.Metrics, snapshot bool) {
		for now := int64(0); now < 21; now++ {
			p := pkt(1000+now, 0, 0, 5, 5, now-now%4)
			m.OnInject(now, &p)
			if now%2 == 0 {
				m.OnDeliver(now, &p)
			}
			if snapshot {
				m.Snapshot()
			}
			m.OnCycleEnd(now, int(now%3))
			if snapshot {
				m.Snapshot()
			}
		}
		m.Finish()
	}
	feed(plain, false)
	feed(snapped, true)

	a, b := plain.Points(), snapped.Points()
	if len(a) != len(b) {
		t.Fatalf("point counts diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("window %d diverged:\n  plain   %+v\n  snapped %+v", i, a[i], b[i])
		}
	}
}
