package telemetry

import (
	"encoding/csv"
	"fmt"
	"io"

	"fasttrack/internal/noc"
)

// link classes within a router's output set. Express entries stay zero on
// networks without an express plane (Hoplite, the buffered mesh).
const (
	linkESh = iota // east local wire
	linkEEx        // east express wire
	linkSSh        // south local wire
	linkSEx        // south express wire
	numLinkClasses
)

var linkClassDir = [numLinkClasses]string{"E", "S", "E", "S"}
var linkClassName = [numLinkClasses]string{"local", "express", "local", "express"}

// LinkStats is an Observer that counts wire traversals per router output,
// split by link class (local vs express — noc.Port.IsExpress), plus
// per-router deflections and express denials. Its CSV output is the
// heatmap-ready utilization table behind the paper's express-wire-usage
// argument: one row per (router, direction, class) with hops and hops/cycle.
//
// On multi-channel Hoplite all K channels share one geometry, so counts
// aggregate per geometric link across channels.
type LinkStats struct {
	Base
	w, h   int
	cycles int64

	// hops[router][class] counts traversals of the wire leaving router.
	hops [][numLinkClasses]int64
	// deflects and denied count per-router misroutes and express denials.
	deflects, denied []int64
}

// NewLinkStats returns a LinkStats observer for a w×h network.
func NewLinkStats(w, h int) *LinkStats {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	n := w * h
	return &LinkStats{
		w: w, h: h,
		hops:     make([][numLinkClasses]int64, n),
		deflects: make([]int64, n),
		denied:   make([]int64, n),
	}
}

func linkClass(out noc.Port) int {
	switch out {
	case noc.PortESh:
		return linkESh
	case noc.PortEEx:
		return linkEEx
	case noc.PortSSh:
		return linkSSh
	case noc.PortSEx:
		return linkSEx
	}
	return -1
}

// OnHop implements Observer.
func (l *LinkStats) OnHop(now int64, router int, out noc.Port, p *noc.Packet) {
	if c := linkClass(out); c >= 0 && router < len(l.hops) {
		l.hops[router][c]++
	}
}

// OnExpressHop implements Observer.
func (l *LinkStats) OnExpressHop(now int64, router int, out noc.Port, p *noc.Packet) {
	if c := linkClass(out); c >= 0 && router < len(l.hops) {
		l.hops[router][c]++
	}
}

// OnDeflect implements Observer.
func (l *LinkStats) OnDeflect(now int64, router int, in noc.Port, p *noc.Packet) {
	if router < len(l.deflects) {
		l.deflects[router]++
	}
}

// OnExpressDenied implements Observer.
func (l *LinkStats) OnExpressDenied(now int64, router int, in noc.Port, p *noc.Packet) {
	if router < len(l.denied) {
		l.denied[router]++
	}
}

// OnCycleEnd implements Observer.
func (l *LinkStats) OnCycleEnd(now int64, inFlight int) { l.cycles++ }

// Cycles returns the observed cycle count.
func (l *LinkStats) Cycles() int64 { return l.cycles }

// Totals returns network-wide hop counts by wire class.
func (l *LinkStats) Totals() (local, express int64) {
	for _, h := range l.hops {
		local += h[linkESh] + h[linkSSh]
		express += h[linkEEx] + h[linkSEx]
	}
	return local, express
}

// WriteCSV emits one row per (router, direction, wire class): coordinates,
// the class, the absolute hop count, utilization (hops per observed cycle),
// and the router's deflection/express-denial counts (repeated on each of
// the router's rows for self-contained plotting).
func (l *LinkStats) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"x", "y", "dir", "class", "hops", "utilization", "deflections", "express_denied",
	}); err != nil {
		return err
	}
	for i, hops := range l.hops {
		x, y := i%l.w, i/l.w
		for c := 0; c < numLinkClasses; c++ {
			util := 0.0
			if l.cycles > 0 {
				util = float64(hops[c]) / float64(l.cycles)
			}
			if err := cw.Write([]string{
				fmt.Sprint(x), fmt.Sprint(y),
				linkClassDir[c], linkClassName[c],
				fmt.Sprint(hops[c]), fmt.Sprintf("%.6f", util),
				fmt.Sprint(l.deflects[i]), fmt.Sprint(l.denied[i]),
			}); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// TelemetryKey implements Keyer.
func (l *LinkStats) TelemetryKey() string { return "linkstats" }
