package telemetry

import (
	"encoding/csv"
	"fmt"
	"io"

	"fasttrack/internal/noc"
	"fasttrack/internal/stats"
)

// WindowPoint is one W-cycle window of time-series measurements.
type WindowPoint struct {
	// Index numbers windows from 0; Start and End are the cycle bounds
	// [Start, End) — End-Start is the window length (the final window of a
	// run may be partial).
	Index      int
	Start, End int64
	// Delivered and Injected count events inside the window;
	// TotalDelivered and TotalInjected are the cumulative counts at End.
	Delivered, Injected           int64
	TotalDelivered, TotalInjected int64
	// Rate is delivered packets per cycle over the window.
	Rate float64
	// MeanLatency is the mean delivery latency of the window's deliveries
	// (cycles), 0 when nothing was delivered.
	MeanLatency float64
	// P99 is the window's 99th-percentile delivery latency when the caller
	// tracks a per-window histogram (Metrics does); 0 otherwise.
	P99 int64
	// InFlight is the network population at the window boundary.
	InFlight int
}

// WindowTracker slices a run into fixed W-cycle windows and computes the
// per-window delivery rate and mean latency from cumulative counters. It is
// the shared window bookkeeping behind both the Metrics observer and the
// engine's convergence detector (internal/sim), so the two always agree on
// window boundaries and statistics.
//
// The arithmetic is deliberately exact about operation order — the
// convergence early-exit compares these floats against tolerances, and its
// goldens require bit-stable values: Rate = float64(d)/float64(W) and
// MeanLatency = (latSum-prevLatSum)/float64(d).
type WindowTracker struct {
	// W is the window length in cycles; the tracker is inert when W <= 0.
	W int64

	idx           int
	start         int64
	prevDelivered int64
	prevInjected  int64
	prevLatSum    float64
}

// Boundary reports whether cycle now is the last cycle of a window.
func (t *WindowTracker) Boundary(now int64) bool {
	return t.W > 0 && (now+1)%t.W == 0
}

// Roll closes the window ending after cycle now and returns its point.
// delivered/injected are cumulative counts and latSum the cumulative
// delivery-latency sum at the end of the cycle.
func (t *WindowTracker) Roll(now, delivered, injected int64, latSum float64, inFlight int) WindowPoint {
	d := delivered - t.prevDelivered
	rate := float64(d) / float64(t.W)
	lat := 0.0
	if d > 0 {
		lat = (latSum - t.prevLatSum) / float64(d)
	}
	wp := WindowPoint{
		Index: t.idx, Start: t.start, End: now + 1,
		Delivered: d, Injected: injected - t.prevInjected,
		TotalDelivered: delivered, TotalInjected: injected,
		Rate: rate, MeanLatency: lat, InFlight: inFlight,
	}
	t.idx++
	t.start = now + 1
	t.prevDelivered, t.prevInjected, t.prevLatSum = delivered, injected, latSum
	return wp
}

// Peek computes the point the in-progress window [start, endCycle) would
// yield if it were closed now, without mutating the tracker: the next Roll
// or Flush is bit-identical whether or not Peek was called. It is the
// read-only snapshot API behind live monitoring (internal/monitor) — the
// engine's convergence detector shares this tracker's bookkeeping, so a
// mid-window observation must never advance window state. Peek reports
// false when the window is empty (endCycle <= start).
func (t *WindowTracker) Peek(endCycle, delivered, injected int64, latSum float64, inFlight int) (WindowPoint, bool) {
	length := endCycle - t.start
	if length <= 0 {
		return WindowPoint{}, false
	}
	d := delivered - t.prevDelivered
	rate := float64(d) / float64(length)
	lat := 0.0
	if d > 0 {
		lat = (latSum - t.prevLatSum) / float64(d)
	}
	return WindowPoint{
		Index: t.idx, Start: t.start, End: endCycle,
		Delivered: d, Injected: injected - t.prevInjected,
		TotalDelivered: delivered, TotalInjected: injected,
		Rate: rate, MeanLatency: lat, InFlight: inFlight,
	}, true
}

// Flush closes a partial window [start, endCycle) — the tail of a run that
// stopped between boundaries. It reports false when the window is empty.
func (t *WindowTracker) Flush(endCycle, delivered, injected int64, latSum float64, inFlight int) (WindowPoint, bool) {
	length := endCycle - t.start
	if length <= 0 {
		return WindowPoint{}, false
	}
	d := delivered - t.prevDelivered
	rate := float64(d) / float64(length)
	lat := 0.0
	if d > 0 {
		lat = (latSum - t.prevLatSum) / float64(d)
	}
	wp := WindowPoint{
		Index: t.idx, Start: t.start, End: endCycle,
		Delivered: d, Injected: injected - t.prevInjected,
		TotalDelivered: delivered, TotalInjected: injected,
		Rate: rate, MeanLatency: lat, InFlight: inFlight,
	}
	t.idx++
	t.start = endCycle
	t.prevDelivered, t.prevInjected, t.prevLatSum = delivered, injected, latSum
	return wp, true
}

// Metrics is an Observer that collects windowed time-series measurements:
// per-window throughput, mean and p99 latency, and in-flight occupancy.
// Create with NewMetrics, attach to a run, then call Finish before reading
// Points or writing the CSV.
type Metrics struct {
	Base
	tracker WindowTracker
	numPE   int

	delivered, injected int64
	latSum              float64
	hist                *stats.Histogram

	points    []WindowPoint
	lastCycle int64
	inFlight  int
	finished  bool
}

// metricsHistogramMax bounds the per-window latency histogram; matching the
// engine default keeps p99 resolution identical to sim.Result.
const metricsHistogramMax = 1 << 20

// NewMetrics returns a Metrics observer with the given window length in
// cycles (values < 1 are raised to 1) for a numPE-client network.
func NewMetrics(window int64, numPE int) *Metrics {
	if window < 1 {
		window = 1
	}
	if numPE < 1 {
		numPE = 1
	}
	return &Metrics{
		tracker: WindowTracker{W: window},
		numPE:   numPE,
		hist:    stats.NewLatencyHistogram(metricsHistogramMax),
	}
}

// Window returns the configured window length.
func (m *Metrics) Window() int64 { return m.tracker.W }

// OnInject implements Observer.
func (m *Metrics) OnInject(now int64, p *noc.Packet) { m.injected++ }

// OnDeliver implements Observer.
func (m *Metrics) OnDeliver(now int64, p *noc.Packet) {
	m.delivered++
	lat := now - p.Gen
	m.latSum += float64(lat)
	m.hist.Add(lat)
}

// OnCycleEnd implements Observer: at each window boundary the window rolls
// and its point is recorded.
func (m *Metrics) OnCycleEnd(now int64, inFlight int) {
	m.lastCycle = now + 1
	m.inFlight = inFlight
	if m.tracker.Boundary(now) {
		wp := m.tracker.Roll(now, m.delivered, m.injected, m.latSum, inFlight)
		wp.P99 = m.hist.Quantile(0.99)
		m.hist.Reset()
		m.points = append(m.points, wp)
	}
}

// Finish closes the trailing partial window, if any. Idempotent.
func (m *Metrics) Finish() {
	if m.finished {
		return
	}
	m.finished = true
	if wp, ok := m.tracker.Flush(m.lastCycle, m.delivered, m.injected, m.latSum, m.inFlight); ok {
		wp.P99 = m.hist.Quantile(0.99)
		m.hist.Reset()
		m.points = append(m.points, wp)
	}
}

// Points returns the recorded windows (call Finish first to include the
// trailing partial window).
func (m *Metrics) Points() []WindowPoint { return m.points }

// Snapshot returns the in-progress partial window as it stands, without
// closing it: subsequent window rolls — and any convergence detector sharing
// the same WindowTracker arithmetic — are unaffected. ok is false when the
// current window has no cycles yet. Snapshot must be called from the
// simulation goroutine (Metrics is not concurrency-safe); the monitor's
// Collector, not Metrics, is the cross-goroutine view.
func (m *Metrics) Snapshot() (WindowPoint, bool) {
	return m.tracker.Peek(m.lastCycle, m.delivered, m.injected, m.latSum, m.inFlight)
}

// WriteCSV emits the time series, one row per window. Throughput is
// normalized per PE to match the paper's sustained-rate axis.
func (m *Metrics) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"window", "start_cycle", "end_cycle", "delivered", "injected",
		"throughput_per_pe", "mean_latency", "p99_latency", "in_flight",
	}); err != nil {
		return err
	}
	for _, p := range m.points {
		length := p.End - p.Start
		perPE := 0.0
		if length > 0 {
			perPE = float64(p.Delivered) / (float64(length) * float64(m.numPE))
		}
		if err := cw.Write([]string{
			fmt.Sprint(p.Index), fmt.Sprint(p.Start), fmt.Sprint(p.End),
			fmt.Sprint(p.Delivered), fmt.Sprint(p.Injected),
			fmt.Sprintf("%.6f", perPE),
			fmt.Sprintf("%.3f", p.MeanLatency),
			fmt.Sprint(p.P99), fmt.Sprint(p.InFlight),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// TelemetryKey implements Keyer.
func (m *Metrics) TelemetryKey() string {
	return fmt.Sprintf("metrics(w=%d)", m.tracker.W)
}
