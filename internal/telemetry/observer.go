// Package telemetry is the cycle-level observability layer for the NoC
// simulator: a small Observer interface invoked from the engine and router
// hot loops, plus concrete observers — a packet-lifecycle tracer (JSONL and
// Chrome trace-event output), per-link utilization counters split by wire
// class (local vs express), and windowed time-series metrics whose window
// bookkeeping also drives the engine's convergence detector.
//
// The disabled path is a single nil check at every emission site, so a run
// without an observer pays nothing measurable (the ftbench baseline records
// the comparison). Observer callbacks receive packet pointers to avoid
// copying the 80-byte packet per event; implementations must not retain
// them beyond the call — the pointee is engine- or router-owned memory that
// is mutated or recycled on later cycles.
//
// Event ordering within a cycle depends on the engine path (the sparse
// router stepping fuses hops into the routing pass while the dense
// reference emits them in its latch pass), but event *totals* are
// engine-independent and match the network's noc.Counters; the golden tests
// in internal/sim hold an attached no-op observer to bit-exact Results.
package telemetry

import (
	"strings"

	"fasttrack/internal/noc"
)

// Observer receives cycle-level simulation events. All methods are invoked
// synchronously from the simulation hot loop; implementations should be
// cheap and must not retain the packet pointers they are handed.
//
// Router-level events carry the index of the router that made the decision
// (y*width + x) and the port that classifies the event:
//
//   - OnHop / OnExpressHop: out is the granted output port (noc.PortESh,
//     PortSSh for local wires; PortEEx, PortSEx for express wires). The
//     buffered mesh, which has no express plane and bidirectional links,
//     maps horizontal moves to PortESh and vertical moves to PortSSh.
//   - OnDeflect: in is the input port whose packet was misrouted away from
//     its dimension-ordered path (a true deflection).
//   - OnExpressDenied: in is the input port whose packet was denied an
//     express resource and fell back to a short link (the paper's Fig 18b
//     "input deflection"); noc.PortPE marks a denied express injection.
//
// Packet-level events come from the engine and the workload/network
// wrappers: OnInject after an offer is accepted, OnInjectStall when a
// presented offer was refused this cycle (the live offered-vs-accepted
// backpressure signal; one event per refused offer per cycle, summing to
// noc.Counters.InjectionStalls), OnDeliver per delivery, OnDrop when a
// packet is destroyed (fault injection) or abandoned (retransmission budget
// exhausted, internal/reliability), OnRetransmit when a retransmit copy is
// queued. OnCycleEnd fires once per completed engine cycle with the current
// in-flight population.
type Observer interface {
	OnInject(now int64, p *noc.Packet)
	OnInjectStall(now int64, pe int)
	OnDeliver(now int64, p *noc.Packet)
	OnHop(now int64, router int, out noc.Port, p *noc.Packet)
	OnExpressHop(now int64, router int, out noc.Port, p *noc.Packet)
	OnDeflect(now int64, router int, in noc.Port, p *noc.Packet)
	OnExpressDenied(now int64, router int, in noc.Port, p *noc.Packet)
	OnDrop(now int64, p *noc.Packet)
	OnRetransmit(now int64, p *noc.Packet)
	OnCycleEnd(now int64, inFlight int)
}

// Observable is implemented by networks and workload wrappers that can
// attach an observer. sim.Run discovers it on the network and on every
// layer of the workload decorator chain.
type Observable interface {
	SetObserver(Observer)
}

// Keyer is implemented by observers whose presence must be reflected in
// content-addressed result-cache keys (internal/runner): a cached Result
// would silently skip the observer's side effects, so runs with an observer
// attached must never be answered from entries written without one. The
// string must determine the observer's emission-relevant settings.
type Keyer interface {
	TelemetryKey() string
}

// Key canonicalizes an observer for cache keys: empty for nil (the key stays
// byte-identical to pre-telemetry keys, preserving existing cache entries),
// the Keyer string when implemented, and a generic marker otherwise.
func Key(o Observer) string {
	if o == nil {
		return ""
	}
	if k, ok := o.(Keyer); ok {
		return k.TelemetryKey()
	}
	return "observer"
}

// Base is a no-op Observer. Embed it to implement only the events an
// observer cares about; it is also the canonical no-op observer the golden
// bit-exactness tests attach.
type Base struct{}

func (Base) OnInject(int64, *noc.Packet)                       {}
func (Base) OnInjectStall(int64, int)                          {}
func (Base) OnDeliver(int64, *noc.Packet)                      {}
func (Base) OnHop(int64, int, noc.Port, *noc.Packet)           {}
func (Base) OnExpressHop(int64, int, noc.Port, *noc.Packet)    {}
func (Base) OnDeflect(int64, int, noc.Port, *noc.Packet)       {}
func (Base) OnExpressDenied(int64, int, noc.Port, *noc.Packet) {}
func (Base) OnDrop(int64, *noc.Packet)                         {}
func (Base) OnRetransmit(int64, *noc.Packet)                   {}
func (Base) OnCycleEnd(int64, int)                             {}

// multi fans events out to several observers in order.
type multi struct {
	obs []Observer
}

// Multi combines observers into one; nil entries are dropped. It returns
// nil for an empty set and the sole observer for a singleton, so callers
// can compose unconditionally without paying fan-out indirection.
func Multi(obs ...Observer) Observer {
	kept := make([]Observer, 0, len(obs))
	for _, o := range obs {
		if o != nil {
			kept = append(kept, o)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &multi{obs: kept}
}

func (m *multi) OnInject(now int64, p *noc.Packet) {
	for _, o := range m.obs {
		o.OnInject(now, p)
	}
}

func (m *multi) OnInjectStall(now int64, pe int) {
	for _, o := range m.obs {
		o.OnInjectStall(now, pe)
	}
}

func (m *multi) OnDeliver(now int64, p *noc.Packet) {
	for _, o := range m.obs {
		o.OnDeliver(now, p)
	}
}

func (m *multi) OnHop(now int64, router int, out noc.Port, p *noc.Packet) {
	for _, o := range m.obs {
		o.OnHop(now, router, out, p)
	}
}

func (m *multi) OnExpressHop(now int64, router int, out noc.Port, p *noc.Packet) {
	for _, o := range m.obs {
		o.OnExpressHop(now, router, out, p)
	}
}

func (m *multi) OnDeflect(now int64, router int, in noc.Port, p *noc.Packet) {
	for _, o := range m.obs {
		o.OnDeflect(now, router, in, p)
	}
}

func (m *multi) OnExpressDenied(now int64, router int, in noc.Port, p *noc.Packet) {
	for _, o := range m.obs {
		o.OnExpressDenied(now, router, in, p)
	}
}

func (m *multi) OnDrop(now int64, p *noc.Packet) {
	for _, o := range m.obs {
		o.OnDrop(now, p)
	}
}

func (m *multi) OnRetransmit(now int64, p *noc.Packet) {
	for _, o := range m.obs {
		o.OnRetransmit(now, p)
	}
}

func (m *multi) OnCycleEnd(now int64, inFlight int) {
	for _, o := range m.obs {
		o.OnCycleEnd(now, inFlight)
	}
}

// TelemetryKey implements Keyer by joining the member keys.
func (m *multi) TelemetryKey() string {
	parts := make([]string, len(m.obs))
	for i, o := range m.obs {
		parts[i] = Key(o)
	}
	return "multi(" + strings.Join(parts, ",") + ")"
}
