package telemetry_test

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"fasttrack/internal/noc"
	"fasttrack/internal/telemetry"
)

func pkt(id int64, sx, sy, dx, dy int, gen int64) noc.Packet {
	return noc.Packet{
		ID:  id,
		Src: noc.Coord{X: sx, Y: sy},
		Dst: noc.Coord{X: dx, Y: dy},
		Gen: gen,
	}
}

// TestWindowTrackerMath checks window boundaries and the per-window rate and
// mean-latency arithmetic against hand-computed values, including the exact
// operation order the convergence detector depends on.
func TestWindowTrackerMath(t *testing.T) {
	tr := telemetry.WindowTracker{W: 10}

	if tr.Boundary(0) || tr.Boundary(5) {
		t.Fatal("boundary fired mid-window")
	}
	if !tr.Boundary(9) || !tr.Boundary(19) {
		t.Fatal("boundary missed at cycles 9 and 19")
	}

	// Window 0: cycles [0,10), 4 delivered, 6 injected, total latency 20.
	wp := tr.Roll(9, 4, 6, 20, 3)
	if wp.Index != 0 || wp.Start != 0 || wp.End != 10 {
		t.Fatalf("window 0 bounds: %+v", wp)
	}
	if wp.Delivered != 4 || wp.Injected != 6 || wp.TotalDelivered != 4 {
		t.Fatalf("window 0 counts: %+v", wp)
	}
	if want := float64(4) / float64(10); wp.Rate != want {
		t.Fatalf("window 0 rate = %v, want %v", wp.Rate, want)
	}
	if want := 20.0 / 4.0; wp.MeanLatency != want {
		t.Fatalf("window 0 mean latency = %v, want %v", wp.MeanLatency, want)
	}
	if wp.InFlight != 3 {
		t.Fatalf("window 0 in-flight = %d", wp.InFlight)
	}

	// Window 1: cumulative 10 delivered / 12 injected, latency 50 —
	// deltas 6, 6, 30.
	wp = tr.Roll(19, 10, 12, 50, 0)
	if wp.Index != 1 || wp.Start != 10 || wp.End != 20 {
		t.Fatalf("window 1 bounds: %+v", wp)
	}
	if wp.Delivered != 6 || wp.TotalDelivered != 10 {
		t.Fatalf("window 1 counts: %+v", wp)
	}
	if want := (50.0 - 20.0) / float64(6); wp.MeanLatency != want {
		t.Fatalf("window 1 mean latency = %v, want %v", wp.MeanLatency, want)
	}

	// Partial tail: run ended at cycle 24, 2 more deliveries.
	wp, ok := tr.Flush(24, 12, 14, 60, 1)
	if !ok {
		t.Fatal("flush dropped a non-empty tail")
	}
	if wp.Start != 20 || wp.End != 24 {
		t.Fatalf("tail bounds: %+v", wp)
	}
	if want := float64(2) / float64(4); wp.Rate != want {
		t.Fatalf("tail rate = %v, want %v (rate must use the actual tail length)", wp.Rate, want)
	}

	// A second flush at the same cycle has nothing to report.
	if _, ok := tr.Flush(24, 12, 14, 60, 1); ok {
		t.Fatal("empty tail flushed twice")
	}
}

// TestWindowTrackerZeroDeliveries: a window with no deliveries must report
// MeanLatency 0, not NaN.
func TestWindowTrackerZeroDeliveries(t *testing.T) {
	tr := telemetry.WindowTracker{W: 4}
	wp := tr.Roll(3, 0, 2, 0, 2)
	if wp.Rate != 0 || wp.MeanLatency != 0 || math.IsNaN(wp.MeanLatency) {
		t.Fatalf("empty window: %+v", wp)
	}
}

// TestWindowTrackerInert: W <= 0 disables the tracker.
func TestWindowTrackerInert(t *testing.T) {
	tr := telemetry.WindowTracker{}
	for now := int64(0); now < 100; now++ {
		if tr.Boundary(now) {
			t.Fatalf("inert tracker fired at %d", now)
		}
	}
}

// TestMetricsWindows drives the Metrics observer by hand and checks the
// windowed throughput, latency, and p99 values.
func TestMetricsWindows(t *testing.T) {
	m := telemetry.NewMetrics(5, 4)

	inject := func(now int64, p noc.Packet) { m.OnInject(now, &p) }
	deliver := func(now int64, p noc.Packet, lat int64) {
		p.Gen = now - lat
		m.OnDeliver(now, &p)
	}

	// Window 0 [0,5): 3 injected, 2 delivered with latencies 2 and 4.
	inject(0, pkt(1, 0, 0, 1, 0, 0))
	inject(1, pkt(2, 0, 0, 1, 1, 1))
	inject(2, pkt(3, 1, 0, 0, 0, 2))
	deliver(3, pkt(1, 0, 0, 1, 0, 0), 2)
	deliver(4, pkt(2, 0, 0, 1, 1, 0), 4)
	for now := int64(0); now < 5; now++ {
		m.OnCycleEnd(now, 1)
	}
	// Window 1 [5,10): 1 delivered with latency 7.
	deliver(6, pkt(3, 1, 0, 0, 0, 0), 7)
	for now := int64(5); now < 10; now++ {
		m.OnCycleEnd(now, 0)
	}
	m.Finish()
	m.Finish() // idempotent

	pts := m.Points()
	if len(pts) != 2 {
		t.Fatalf("got %d windows, want 2: %+v", len(pts), pts)
	}
	w0, w1 := pts[0], pts[1]
	if w0.Injected != 3 || w0.Delivered != 2 {
		t.Fatalf("window 0 counts: %+v", w0)
	}
	if want := 2.0 / 5.0; w0.Rate != want {
		t.Fatalf("window 0 rate = %v, want %v", w0.Rate, want)
	}
	if want := (2.0 + 4.0) / 2.0; w0.MeanLatency != want {
		t.Fatalf("window 0 mean latency = %v, want %v", w0.MeanLatency, want)
	}
	if w0.P99 != 4 {
		t.Fatalf("window 0 p99 = %d, want 4", w0.P99)
	}
	// The per-window histogram resets: window 1's p99 must reflect only its
	// own single delivery.
	if w1.Delivered != 1 || w1.P99 != 7 {
		t.Fatalf("window 1: %+v (histogram must reset per window)", w1)
	}

	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("CSV rows = %d, want header + 2", len(rows))
	}
	wantHeader := "window,start_cycle,end_cycle,delivered,injected,throughput_per_pe,mean_latency,p99_latency,in_flight"
	if got := strings.Join(rows[0], ","); got != wantHeader {
		t.Fatalf("CSV header = %q", got)
	}
}

// TestLinkStats checks per-link classification, totals, and the CSV shape.
func TestLinkStats(t *testing.T) {
	l := telemetry.NewLinkStats(2, 2)
	p := pkt(1, 0, 0, 1, 1, 0)

	l.OnHop(0, 0, noc.PortESh, &p)
	l.OnHop(0, 0, noc.PortESh, &p)
	l.OnHop(1, 3, noc.PortSSh, &p)
	l.OnExpressHop(1, 1, noc.PortEEx, &p)
	l.OnExpressHop(2, 2, noc.PortSEx, &p)
	l.OnExpressHop(2, 2, noc.PortSEx, &p)
	l.OnDeflect(3, 3, noc.PortWSh, &p)
	l.OnExpressDenied(3, 1, noc.PortPE, &p)
	for now := int64(0); now < 4; now++ {
		l.OnCycleEnd(now, 0)
	}

	local, express := l.Totals()
	if local != 3 || express != 3 {
		t.Fatalf("totals = (%d, %d), want (3, 3)", local, express)
	}
	if l.Cycles() != 4 {
		t.Fatalf("cycles = %d", l.Cycles())
	}

	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(rows[0], ","); got != "x,y,dir,class,hops,utilization,deflections,express_denied" {
		t.Fatalf("CSV header = %q", got)
	}
	// 2x2 routers × 4 link classes.
	if len(rows) != 1+2*2*4 {
		t.Fatalf("CSV rows = %d, want %d", len(rows), 1+2*2*4)
	}
	classes := map[string]bool{}
	var haveExpressRow bool
	for _, r := range rows[1:] {
		classes[r[3]] = true
		if r[3] == "express" && r[4] != "0" {
			haveExpressRow = true
		}
	}
	if !classes["local"] || !classes["express"] {
		t.Fatalf("CSV must label both wire classes, got %v", classes)
	}
	if !haveExpressRow {
		t.Fatal("no express link recorded traffic")
	}
}

// TestTracerJSONL checks that every JSONL line parses and the lifecycle
// fields round-trip.
func TestTracerJSONL(t *testing.T) {
	var jsonl bytes.Buffer
	tr := telemetry.NewTracer(telemetry.TracerOptions{JSONL: &jsonl, Width: 4})

	p := pkt(7, 0, 0, 2, 1, 0)
	tr.OnInject(0, &p)
	tr.OnHop(1, 1, noc.PortESh, &p)
	tr.OnExpressHop(2, 2, noc.PortEEx, &p)
	tr.OnDeflect(3, 6, noc.PortWSh, &p)
	tr.OnExpressDenied(4, 6, noc.PortPE, &p)
	p.ShortHops, p.ExpressHops, p.Deflections = 2, 1, 1
	tr.OnDeliver(5, &p)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 6 {
		t.Fatalf("got %d JSONL lines, want 6:\n%s", len(lines), jsonl.String())
	}
	wantEv := []string{"inject", "hop", "hop", "deflect", "xdenied", "deliver"}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d is not JSON: %v\n%s", i, err, line)
		}
		if m["ev"] != wantEv[i] {
			t.Fatalf("line %d ev = %v, want %s", i, m["ev"], wantEv[i])
		}
		if m["id"] != float64(7) {
			t.Fatalf("line %d id = %v", i, m["id"])
		}
	}
	// The express hop is distinguished by the express flag, not the ev name.
	var xh map[string]any
	if err := json.Unmarshal([]byte(lines[2]), &xh); err != nil {
		t.Fatal(err)
	}
	if xh["express"] != true || xh["port"] != noc.PortEEx.String() {
		t.Fatalf("express hop record: %v", xh)
	}
	var del map[string]any
	if err := json.Unmarshal([]byte(lines[5]), &del); err != nil {
		t.Fatal(err)
	}
	if del["latency"] != float64(5) || del["short_hops"] != float64(2) ||
		del["express_hops"] != float64(1) || del["deflections"] != float64(1) {
		t.Fatalf("deliver record: %v", del)
	}
	if tr.Events() != 6 {
		t.Fatalf("Events() = %d, want 6", tr.Events())
	}
}

// TestTracerChromeTrace checks the Chrome trace-event output is one valid
// JSON document with balanced async begin/end pairs — the property Perfetto
// needs to load it.
func TestTracerChromeTrace(t *testing.T) {
	var chrome bytes.Buffer
	tr := telemetry.NewTracer(telemetry.TracerOptions{Chrome: &chrome, Width: 4})

	a, b := pkt(1, 0, 0, 2, 1, 0), pkt(2, 1, 1, 3, 0, 0)
	tr.OnInject(0, &a)
	tr.OnInject(0, &b)
	tr.OnHop(1, 1, noc.PortESh, &a)
	tr.OnExpressHop(1, 5, noc.PortSEx, &b)
	tr.OnDeflect(2, 2, noc.PortWSh, &a)
	a.Deflections = 1
	tr.OnDeliver(3, &a)
	tr.OnDrop(4, &b)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			ID   string         `json:"id"`
			PID  int            `json:"pid"`
			TS   int64          `json:"ts"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not a JSON document: %v\n%s", err, chrome.String())
	}
	begins := map[string]int{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "b":
			begins[e.ID]++
		case "e":
			begins[e.ID]--
		case "n":
		default:
			t.Fatalf("unexpected phase %q", e.Ph)
		}
		if e.Cat != "pkt" {
			t.Fatalf("cat = %q, want pkt", e.Cat)
		}
	}
	for id, n := range begins {
		if n != 0 {
			t.Fatalf("unbalanced async events for id %s: %d", id, n)
		}
	}
	// Both packets must open and close a track (deliver and drop).
	if len(begins) != 2 {
		t.Fatalf("tracked %d packets, want 2", len(begins))
	}
}

// TestTracerSampling: with Sample=K only packets with ID %% K == 0 are
// recorded.
func TestTracerSampling(t *testing.T) {
	var jsonl bytes.Buffer
	tr := telemetry.NewTracer(telemetry.TracerOptions{JSONL: &jsonl, Sample: 4, Width: 4})
	for id := int64(0); id < 8; id++ {
		p := pkt(id, 0, 0, 1, 1, 0)
		tr.OnInject(0, &p)
	}
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(jsonl.String()), "\n")
	if len(lines) != 2 { // IDs 0 and 4
		t.Fatalf("sampled %d packets, want 2:\n%s", len(lines), jsonl.String())
	}
}

// TestMultiFanOut: Multi drops nils, collapses to the sole observer, and
// fans out to all.
func TestMultiFanOut(t *testing.T) {
	if telemetry.Multi() != nil || telemetry.Multi(nil, nil) != nil {
		t.Fatal("Multi of nothing must be nil")
	}
	a := telemetry.NewLinkStats(2, 2)
	if got := telemetry.Multi(nil, a, nil); got != telemetry.Observer(a) {
		t.Fatal("Multi with one live observer must return it unwrapped")
	}
	b := telemetry.NewMetrics(4, 4)
	m := telemetry.Multi(a, b)
	p := pkt(1, 0, 0, 1, 0, 0)
	m.OnHop(0, 0, noc.PortESh, &p)
	m.OnInject(0, &p)
	m.OnCycleEnd(0, 1)
	if local, _ := a.Totals(); local != 1 {
		t.Fatalf("fan-out missed LinkStats: local = %d", local)
	}
	if a.Cycles() != 1 {
		t.Fatal("fan-out missed OnCycleEnd")
	}
}

// TestKeys: cache-key strings distinguish observer configurations.
func TestKeys(t *testing.T) {
	if telemetry.Key(nil) != "" {
		t.Fatal("nil observer must key to empty")
	}
	a := telemetry.Key(telemetry.NewMetrics(64, 16))
	b := telemetry.Key(telemetry.NewMetrics(128, 16))
	if a == b || a == "" {
		t.Fatalf("metrics keys must encode the window: %q vs %q", a, b)
	}
	m := telemetry.Key(telemetry.Multi(telemetry.NewLinkStats(2, 2), telemetry.NewMetrics(64, 4)))
	if !strings.Contains(m, "linkstats") || !strings.Contains(m, "metrics") {
		t.Fatalf("multi key must name its parts: %q", m)
	}
}
