package faults_test

import (
	"reflect"
	"testing"

	"fasttrack/internal/fasttrack"
	"fasttrack/internal/faults"
	"fasttrack/internal/hoplite"
	"fasttrack/internal/multichannel"
	"fasttrack/internal/noc"
	"fasttrack/internal/reliability"
	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

// networks under test: the wrapper must harden every family for free.
func testNetworks(t *testing.T) map[string]func() noc.Network {
	t.Helper()
	return map[string]func() noc.Network{
		"hoplite": func() noc.Network {
			nw, err := hoplite.New(8, 8)
			if err != nil {
				t.Fatal(err)
			}
			return nw
		},
		"fasttrack": func() noc.Network {
			top, err := fasttrack.NewTopology(8, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			nw, err := fasttrack.New(fasttrack.Config{Topology: top})
			if err != nil {
				t.Fatal(err)
			}
			return nw
		},
		"multichannel": func() noc.Network {
			nw, err := multichannel.New(8, 8, 2)
			if err != nil {
				t.Fatal(err)
			}
			return nw
		},
	}
}

func TestRejectsBadConfig(t *testing.T) {
	inner, _ := hoplite.New(4, 4)
	for _, cfg := range []faults.Config{
		{DropRate: -0.1},
		{DropRate: 1.1},
		{MisrouteRate: 2},
		{DropRate: 0.6, MisrouteRate: 0.6},
		{Stuck: []faults.Window{{PE: -1}}},
		{Freeze: []faults.Window{{PE: 99}}},
	} {
		if _, err := faults.Wrap(inner, cfg); err == nil {
			t.Errorf("config %+v should be rejected", cfg)
		}
	}
}

// TestSeededScheduleReplaysIdentically is an acceptance criterion: two runs
// with the same fault seed must produce bit-identical fault event logs and
// results.
func TestSeededScheduleReplaysIdentically(t *testing.T) {
	run := func() ([]faults.Event, sim.Result) {
		inner, err := hoplite.New(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := faults.Wrap(inner, faults.Config{
			Seed: 42, DropRate: 0.03, MisrouteRate: 0.02,
			Stuck: []faults.Window{{PE: 5, From: 100, Until: 400}},
		})
		if err != nil {
			t.Fatal(err)
		}
		wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 0.3, 100, 9)
		res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true})
		if err != nil {
			t.Fatal(err)
		}
		return nw.Events(), res
	}
	ev1, res1 := run()
	ev2, res2 := run()
	if len(ev1) == 0 {
		t.Fatal("no fault events fired; schedule too sparse to test replay")
	}
	if !reflect.DeepEqual(ev1, ev2) {
		t.Fatalf("fault schedules diverged: run1 %d events, run2 %d events", len(ev1), len(ev2))
	}
	if res1.Delivered != res2.Delivered || res1.Cycles != res2.Cycles ||
		res1.Faults != res2.Faults {
		t.Errorf("results diverged: %+v vs %+v", res1.Faults, res2.Faults)
	}
}

// TestAllNetworksRecoverFromDropFaults is the tentpole end-to-end check: on
// every network family, a run with injected drop+misroute faults completes
// via the retry wrapper with 100% eventual delivery, under full per-cycle
// invariant auditing and the starvation watchdog.
func TestAllNetworksRecoverFromDropFaults(t *testing.T) {
	for name, build := range testNetworks(t) {
		t.Run(name, func(t *testing.T) {
			nw, err := faults.Wrap(build(), faults.Config{
				Seed: 7, DropRate: 0.04, MisrouteRate: 0.02,
			})
			if err != nil {
				t.Fatal(err)
			}
			inner := traffic.NewSynthetic(8, 8, traffic.Random{}, 0.2, 150, 3)
			wl := reliability.Wrap(inner, 8, reliability.Config{Timeout: 400, MaxRetries: 16})
			res, err := sim.Run(nw, wl, sim.Options{
				CheckConservation: true,
				MaxPacketAge:      100000,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Faults.Dropped == 0 || res.Faults.Misrouted == 0 {
				t.Fatalf("faults did not fire: %+v", res.Faults)
			}
			r := res.Recovery
			if r.Sent == 0 || r.Completed != r.Sent || r.Abandoned != 0 {
				t.Errorf("eventual delivery incomplete: %+v", r)
			}
			if r.Recovered == 0 || r.Retries == 0 {
				t.Errorf("recovery layer never retransmitted: %+v", r)
			}
		})
	}
}

// TestStuckLinkWindow: offers at a stuck PE are refused during the window
// and flow again afterwards.
func TestStuckLinkWindow(t *testing.T) {
	inner, _ := hoplite.New(4, 4)
	nw, err := faults.Wrap(inner, faults.Config{
		Stuck: []faults.Window{{PE: 0, From: 0, Until: 500}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 0.3, 50, 4)
	res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.InjectBlocked == 0 {
		t.Error("stuck link never blocked an injection")
	}
	if res.Delivered != res.Injected || res.Delivered != 16*50 {
		t.Errorf("delivered %d/%d after the window lifted", res.Delivered, res.Injected)
	}
}

// TestFrozenRouterHoldsDeliveries: packets destined to a frozen router are
// held (still in flight) and released when the freeze lifts; nothing is
// lost.
func TestFrozenRouterHoldsDeliveries(t *testing.T) {
	inner, _ := hoplite.New(4, 4)
	nw, err := faults.Wrap(inner, faults.Config{
		Freeze: []faults.Window{{PE: 5, From: 0, Until: 300}},
	})
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 0.2, 60, 8)
	res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.HeldDeliveries == 0 {
		t.Error("freeze never held a delivery")
	}
	if res.Delivered != res.Injected {
		t.Errorf("held deliveries were lost: delivered %d, injected %d", res.Delivered, res.Injected)
	}
}

// TestStalledOfferMeetsSameFate: fault verdicts are keyed by packet ID, so
// an offer that stalls for several cycles is not re-rolled into multiple
// fault events.
func TestStalledOfferMeetsSameFate(t *testing.T) {
	inner, _ := hoplite.New(4, 4)
	nw, err := faults.Wrap(inner, faults.Config{Seed: 3, DropRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(4, 4, traffic.Random{}, 1.0, 80, 6)
	res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true})
	if err != nil {
		t.Fatal(err)
	}
	var drops int64
	seen := map[int64]bool{}
	for _, ev := range nw.Events() {
		if ev.Kind == faults.KindDrop {
			drops++
			if seen[ev.Packet] {
				t.Fatalf("packet %d dropped twice", ev.Packet)
			}
			seen[ev.Packet] = true
		}
	}
	if drops != res.Faults.Dropped {
		t.Errorf("event log records %d drops, counters %d", drops, res.Faults.Dropped)
	}
	if res.Delivered+res.Faults.Lost() != res.Injected {
		t.Errorf("conservation: %d delivered + %d lost != %d injected",
			res.Delivered, res.Faults.Lost(), res.Injected)
	}
}
