// Package faults injects deterministic, seeded faults into any noc.Network
// through a wrapper, so Hoplite, FastTrack, and multi-channel Hoplite are
// all hardened (and tested) by the same code. The fault model covers the
// transient upsets an FPGA soft NoC is exposed to in practice:
//
//   - transient link faults that destroy a packet in flight (drop) or
//     corrupt its destination address (misroute — the packet exits at the
//     wrong node, which discards it);
//   - stuck-at injection links that refuse a PE's offers over a window;
//   - router freezes that refuse injection at a node and hold deliveries
//     destined to it until the freeze lifts.
//
// Every fault decision is a pure function of (Config.Seed, packet ID) or an
// explicit window, so a schedule replays bit-for-bit across runs — the
// property regression tests rely on (compare Events of two runs).
//
// The wrapper implements sim.FaultyNetwork structurally: the engine reads
// FaultCounts to keep packet-conservation auditing honest under injected
// loss and DrainLost to stop tracking destroyed packets. Pair it with
// reliability.Wrap to recover dropped traffic end to end.
package faults

import (
	"fmt"

	"fasttrack/internal/noc"
	"fasttrack/internal/stats"
	"fasttrack/internal/telemetry"
	"fasttrack/internal/xrand"
)

// Kind labels one fault event.
type Kind uint8

// Fault kinds.
const (
	// KindDrop destroyed a packet in flight after the network accepted it.
	KindDrop Kind = iota
	// KindMisroute corrupted a packet's destination address at injection.
	KindMisroute
	// KindMisdeliver is the exit half of a misroute: the packet reached the
	// wrong node and was discarded there.
	KindMisdeliver
	// KindStuck refused an injection on a stuck-at link.
	KindStuck
	// KindFreeze refused an injection at (or held a delivery for) a frozen
	// router.
	KindFreeze
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindDrop:
		return "drop"
	case KindMisroute:
		return "misroute"
	case KindMisdeliver:
		return "misdeliver"
	case KindStuck:
		return "stuck"
	case KindFreeze:
		return "freeze"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Window is a per-PE fault interval: active for cycles in [From, Until).
// Until <= From means the fault never clears.
type Window struct {
	PE          int
	From, Until int64
}

func (w Window) active(now int64) bool {
	return now >= w.From && (w.Until <= w.From || now < w.Until)
}

func activeAt(ws []Window, pe int, now int64) bool {
	for _, w := range ws {
		if w.PE == pe && w.active(now) {
			return true
		}
	}
	return false
}

// Config is a deterministic fault schedule.
type Config struct {
	// Seed fixes the per-packet fault coin flips; the schedule is a pure
	// function of (Seed, packet ID), so it replays identically.
	Seed uint64
	// DropRate is the probability an injected packet is destroyed in flight.
	DropRate float64
	// MisrouteRate is the probability an injected packet's destination
	// address is corrupted; the packet then exits at the wrong node and is
	// discarded (counted as misdelivered and lost).
	MisrouteRate float64
	// Stuck lists stuck-at injection links: offers at Window.PE are refused
	// while the window is active.
	Stuck []Window
	// Freeze lists frozen routers: injection at Window.PE is refused and
	// deliveries destined to it are held until the window closes.
	Freeze []Window
}

func (c Config) validate() error {
	if c.DropRate < 0 || c.DropRate > 1 {
		return fmt.Errorf("faults: DropRate %v out of [0, 1]", c.DropRate)
	}
	if c.MisrouteRate < 0 || c.MisrouteRate > 1 {
		return fmt.Errorf("faults: MisrouteRate %v out of [0, 1]", c.MisrouteRate)
	}
	if c.DropRate+c.MisrouteRate > 1 {
		return fmt.Errorf("faults: DropRate+MisrouteRate = %v exceeds 1", c.DropRate+c.MisrouteRate)
	}
	for _, w := range append(append([]Window(nil), c.Stuck...), c.Freeze...) {
		if w.PE < 0 {
			return fmt.Errorf("faults: window PE %d negative", w.PE)
		}
	}
	return nil
}

// Event is one fault that fired, for logging and replay verification.
type Event struct {
	Cycle  int64
	Kind   Kind
	PE     int
	Packet int64
}

// fate is the transient-fault verdict for one packet.
type fate uint8

const (
	fateNone fate = iota
	fateDrop
	fateMisroute
)

// Network wraps an inner noc.Network with fault injection. Create with Wrap.
type Network struct {
	inner noc.Network
	cfg   Config
	w     int

	offers    []slot
	forwarded []bool
	dropped   []bool
	accepted  []bool
	delivered []noc.Packet
	held      []noc.Packet

	// misrouted maps a corrupted packet's ID to its original destination
	// while it is in flight.
	misrouted map[int64]noc.Coord

	counts stats.FaultCounts
	lost   []int64
	events []Event

	// obs, when non-nil, receives OnDrop for packets the fault layer
	// destroys (link drops and wrong-node discards after a misroute).
	obs telemetry.Observer
}

type slot struct {
	p  noc.Packet
	ok bool
}

// Wrap decorates inner with the fault schedule cfg.
func Wrap(inner noc.Network, cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := inner.NumPEs()
	for _, w := range append(append([]Window(nil), cfg.Stuck...), cfg.Freeze...) {
		if w.PE >= n {
			return nil, fmt.Errorf("faults: window PE %d outside network (%d PEs)", w.PE, n)
		}
	}
	return &Network{
		inner: inner, cfg: cfg, w: inner.Width(),
		offers:    make([]slot, n),
		forwarded: make([]bool, n),
		dropped:   make([]bool, n),
		accepted:  make([]bool, n),
		misrouted: make(map[int64]noc.Coord),
	}, nil
}

// SetDense forwards the engine-path selection to the inner network when it
// carries both stepping paths.
func (nw *Network) SetDense(d bool) {
	if sd, ok := nw.inner.(interface{ SetDense(bool) }); ok {
		sd.SetDense(d)
	}
}

// SetObserver attaches a telemetry observer to this wrapper and forwards it
// to the inner network, so router-level events and fault-layer drops reach
// the same observer.
func (nw *Network) SetObserver(o telemetry.Observer) {
	nw.obs = o
	if ob, ok := nw.inner.(telemetry.Observable); ok {
		ob.SetObserver(o)
	}
}

// Width returns the torus width in routers.
func (nw *Network) Width() int { return nw.inner.Width() }

// Height returns the torus height in routers.
func (nw *Network) Height() int { return nw.inner.Height() }

// NumPEs returns the client count.
func (nw *Network) NumPEs() int { return nw.inner.NumPEs() }

// Counters exposes the inner network's event counters.
func (nw *Network) Counters() *noc.Counters { return nw.inner.Counters() }

// InFlight counts packets inside the inner network plus deliveries held
// behind frozen routers.
func (nw *Network) InFlight() int { return nw.inner.InFlight() + len(nw.held) }

// Offer presents p for injection at PE pe this cycle.
func (nw *Network) Offer(pe int, p noc.Packet) { nw.offers[pe] = slot{p: p, ok: true} }

// Accepted reports whether the offer at pe was injected in the last Step.
// Packets consumed by a drop fault count as accepted: the link took them.
func (nw *Network) Accepted(pe int) bool { return nw.accepted[pe] }

// Delivered returns packets delivered in the last Step; the slice is reused.
func (nw *Network) Delivered() []noc.Packet { return nw.delivered }

// FaultCounts returns the cumulative fault tallies.
func (nw *Network) FaultCounts() stats.FaultCounts { return nw.counts }

// DrainLost returns the IDs of packets destroyed by faults since the last
// call (the engine evicts them from in-flight tracking).
func (nw *Network) DrainLost() []int64 {
	l := nw.lost
	nw.lost = nil
	return l
}

// Events returns the log of every fault that fired, in firing order.
func (nw *Network) Events() []Event { return nw.events }

// fateFor is the deterministic transient-fault verdict for a packet: a pure
// function of (seed, packet ID), independent of offer timing, so stalled
// offers retried across cycles always meet the same fate.
func (nw *Network) fateFor(id int64) (fate, *xrand.Rand) {
	if nw.cfg.DropRate == 0 && nw.cfg.MisrouteRate == 0 {
		return fateNone, nil
	}
	r := xrand.New(nw.cfg.Seed).SplitBy(uint64(id))
	u := r.Float64()
	switch {
	case u < nw.cfg.DropRate:
		return fateDrop, r
	case u < nw.cfg.DropRate+nw.cfg.MisrouteRate:
		return fateMisroute, r
	}
	return fateNone, r
}

// corruptDst picks a wrong destination deterministically from r.
func (nw *Network) corruptDst(orig noc.Coord, r *xrand.Rand) noc.Coord {
	n := nw.inner.NumPEs()
	want := noc.PEIndex(orig, nw.w)
	for {
		if cand := r.Intn(n); cand != want {
			return noc.PECoord(cand, nw.w)
		}
	}
}

func (nw *Network) log(now int64, k Kind, pe int, pkt int64) {
	nw.events = append(nw.events, Event{Cycle: now, Kind: k, PE: pe, Packet: pkt})
}

// Step applies injection-side faults, advances the inner network, then
// applies delivery-side faults (misdelivery discard, freeze holds).
func (nw *Network) Step(now int64) {
	for pe := range nw.offers {
		nw.forwarded[pe] = false
		nw.dropped[pe] = false
		o := nw.offers[pe]
		if !o.ok {
			continue
		}
		nw.offers[pe].ok = false
		if stuck, frozen := activeAt(nw.cfg.Stuck, pe, now), activeAt(nw.cfg.Freeze, pe, now); stuck || frozen {
			k := KindStuck
			if frozen {
				k = KindFreeze
			}
			nw.counts.InjectBlocked++
			nw.inner.Counters().InjectionStalls++
			nw.log(now, k, pe, o.p.ID)
			continue
		}
		switch f, r := nw.fateFor(o.p.ID); f {
		case fateDrop:
			// The link accepts the packet and destroys it; nothing reaches
			// the inner network.
			nw.dropped[pe] = true
			nw.counts.Dropped++
			nw.lost = append(nw.lost, o.p.ID)
			nw.log(now, KindDrop, pe, o.p.ID)
			if nw.obs != nil {
				nw.obs.OnDrop(now, &o.p)
			}
		case fateMisroute:
			bad := o.p
			bad.Dst = nw.corruptDst(o.p.Dst, r)
			nw.misrouted[o.p.ID] = o.p.Dst
			nw.inner.Offer(pe, bad)
			nw.forwarded[pe] = true
		default:
			nw.inner.Offer(pe, o.p)
			nw.forwarded[pe] = true
		}
	}

	nw.inner.Step(now)

	for pe := range nw.accepted {
		switch {
		case nw.dropped[pe]:
			nw.accepted[pe] = true
		case nw.forwarded[pe]:
			nw.accepted[pe] = nw.inner.Accepted(pe)
			if !nw.accepted[pe] {
				// A misrouted offer that stalled never entered the network;
				// forget the corruption so the retry re-rolls the same fate.
				delete(nw.misrouted, nw.offers[pe].p.ID)
			} else if _, mis := nw.misrouted[nw.offers[pe].p.ID]; mis {
				nw.counts.Misrouted++
				nw.log(now, KindMisroute, pe, nw.offers[pe].p.ID)
			}
		default:
			nw.accepted[pe] = false
		}
	}

	nw.delivered = nw.delivered[:0]
	// Release deliveries held behind routers whose freeze has lifted.
	keep := nw.held[:0]
	for _, p := range nw.held {
		if activeAt(nw.cfg.Freeze, noc.PEIndex(p.Dst, nw.w), now) {
			keep = append(keep, p)
		} else {
			nw.delivered = append(nw.delivered, p)
		}
	}
	nw.held = keep
	for _, p := range nw.inner.Delivered() {
		if _, mis := nw.misrouted[p.ID]; mis {
			// Wrong-node exit: the client discards a packet not addressed
			// to it. The packet is lost end to end.
			delete(nw.misrouted, p.ID)
			nw.counts.Misdelivered++
			nw.lost = append(nw.lost, p.ID)
			nw.log(now, KindMisdeliver, noc.PEIndex(p.Dst, nw.w), p.ID)
			if nw.obs != nil {
				nw.obs.OnDrop(now, &p)
			}
			continue
		}
		if pe := noc.PEIndex(p.Dst, nw.w); activeAt(nw.cfg.Freeze, pe, now) {
			nw.counts.HeldDeliveries++
			nw.held = append(nw.held, p)
			continue
		}
		nw.delivered = append(nw.delivered, p)
	}
}
