package monitor_test

import (
	"context"
	"strings"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/monitor"
)

// TestFlightRecorderForensics runs a saturated FastTrack sim with a small
// recorder and checks the forensic report: bounded retention, worst-first
// ordering, hop histories, and a deflection-blame table.
func TestFlightRecorderForensics(t *testing.T) {
	const cap = 8
	fr := monitor.NewFlightRecorder(cap, 8)
	opts := runOpts()
	opts.Observer = fr

	res, err := core.RunSynthetic(context.Background(), core.FastTrack(8, 2, 1), opts)
	if err != nil {
		t.Fatal(err)
	}

	rep := fr.Report(5)
	if rep.Finished != res.Delivered {
		t.Errorf("finished = %d, delivered = %d", rep.Finished, res.Delivered)
	}
	if rep.Live != 0 {
		t.Errorf("live = %d after drain, want 0", rep.Live)
	}
	if rep.Evicted != rep.Finished-cap {
		t.Errorf("evicted = %d, want finished-cap = %d", rep.Evicted, rep.Finished-cap)
	}
	if len(rep.Worst) != 5 {
		t.Fatalf("worst count = %d, want 5", len(rep.Worst))
	}
	if rep.Worst[0].Latency != res.WorstLatency {
		t.Errorf("worst retained latency = %d, run worst = %d", rep.Worst[0].Latency, res.WorstLatency)
	}
	for i := 1; i < len(rep.Worst); i++ {
		if rep.Worst[i].Latency > rep.Worst[i-1].Latency {
			t.Errorf("worst not sorted: #%d latency %d > #%d latency %d",
				i, rep.Worst[i].Latency, i-1, rep.Worst[i-1].Latency)
		}
	}
	for _, r := range rep.Worst {
		if len(r.Hops) == 0 {
			t.Errorf("packet %d retained with no hop history", r.ID)
		}
		if r.Deliver < 0 || r.Dropped {
			t.Errorf("packet %d not delivered in a drained run: deliver=%d dropped=%v", r.ID, r.Deliver, r.Dropped)
		}
		if r.Inject < r.Gen {
			t.Errorf("packet %d injected at %d before generation at %d", r.ID, r.Inject, r.Gen)
		}
		// The recorded hop history of a worst packet must account for its
		// deflection counters unless truncated.
		var defl int32
		for _, h := range r.Hops {
			if h.Kind == monitor.HopDeflect {
				defl++
			}
		}
		if r.TruncatedHops == 0 && defl != r.Deflections {
			t.Errorf("packet %d: %d DEFLECT hops recorded, counter says %d", r.ID, defl, r.Deflections)
		}
	}
	// A saturated deflection NoC's worst packets were delayed by someone.
	if len(rep.Blame) == 0 {
		t.Error("no deflection blame at saturation")
	}

	var sb strings.Builder
	if err := fr.WriteReport(&sb, 5); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"flight recorder @ cycle", "#1 packet", "deflection blame"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

// TestFlightRecorderLivePackets interrupts a run mid-flight (tiny cycle
// budget) and checks that unfinished packets appear as IN FLIGHT, ranked by
// age.
func TestFlightRecorderLivePackets(t *testing.T) {
	fr := monitor.NewFlightRecorder(4, 8)
	opts := runOpts()
	opts.Observer = fr
	opts.MaxCycles = 20 // stop long before the quota drains

	if _, err := core.RunSynthetic(context.Background(), core.FastTrack(8, 2, 1), opts); err != nil {
		t.Fatal(err)
	}
	rep := fr.Report(10)
	if rep.Live == 0 {
		t.Fatal("no live packets after a truncated run")
	}
	var sawLive bool
	for _, r := range rep.Worst {
		if r.Deliver < 0 {
			sawLive = true
			if r.Latency != rep.Cycle-r.Gen {
				t.Errorf("live packet %d age = %d, want cycle %d - gen %d", r.ID, r.Latency, rep.Cycle, r.Gen)
			}
		}
	}
	if !sawLive {
		t.Error("report ranked no live packet despite in-flight population")
	}
	var sb strings.Builder
	if err := rep.Write(&sb, 8); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "IN FLIGHT") {
		t.Error("report does not mark live packets IN FLIGHT")
	}
}
