package monitor

// liveHTML is the self-contained /live dashboard: an EventSource client of
// /live/stream rendering the per-router heat[] as an NxN canvas heatmap and
// the windowed throughput/latency series as sparklines. No external assets,
// so it works from a laptop pointed at a headless box.
const liveHTML = `<!doctype html>
<html>
<head>
<meta charset="utf-8">
<title>fasttrack live</title>
<style>
  body { background:#111; color:#ddd; font:13px/1.5 monospace; margin:1.5em; }
  h1 { font-size:16px; margin:0 0 .5em; color:#fff; }
  .row { display:flex; gap:2em; flex-wrap:wrap; align-items:flex-start; }
  .card { background:#1a1a1a; border:1px solid #333; padding:1em; border-radius:4px; }
  .card h2 { font-size:12px; margin:0 0 .5em; color:#8ab; text-transform:uppercase; }
  table { border-collapse:collapse; }
  td { padding:.05em .8em .05em 0; }
  td.v { text-align:right; color:#fff; }
  canvas { display:block; image-rendering:pixelated; }
  #status { color:#fb5; }
  .done { color:#6d6 !important; }
  .legend { color:#777; font-size:11px; margin-top:.4em; }
</style>
</head>
<body>
<h1>fasttrack live <span id="status">connecting…</span></h1>
<div class="row">
  <div class="card">
    <h2>link utilization (hops/cycle per router)</h2>
    <canvas id="heat" width="256" height="256"></canvas>
    <div class="legend">dark → cold, bright → hot; windowed over the stream interval</div>
  </div>
  <div class="card">
    <h2>throughput (delivered/PE/cycle)</h2>
    <canvas id="spark-tp" width="320" height="64"></canvas>
    <h2 style="margin-top:1em">mean latency (cycles, windowed)</h2>
    <canvas id="spark-lat" width="320" height="64"></canvas>
    <h2 style="margin-top:1em">sim speed (cycles/s, windowed)</h2>
    <canvas id="spark-cps" width="320" height="64"></canvas>
  </div>
  <div class="card">
    <h2>totals</h2>
    <table id="totals"></table>
  </div>
</div>
<script>
"use strict";
const tp = [], lat = [], cps = [];
function spark(id, series, color) {
  const c = document.getElementById(id), g = c.getContext("2d");
  g.clearRect(0, 0, c.width, c.height);
  if (!series.length) return;
  const max = Math.max(...series, 1e-9);
  g.strokeStyle = color; g.lineWidth = 1.5; g.beginPath();
  const n = series.length, step = c.width / Math.max(n - 1, 1);
  series.forEach((v, i) => {
    const x = i * step, y = c.height - 2 - (v / max) * (c.height - 6);
    i ? g.lineTo(x, y) : g.moveTo(x, y);
  });
  g.stroke();
  g.fillStyle = "#888"; g.font = "10px monospace";
  g.fillText(series[series.length - 1].toPrecision(3), 2, 10);
}
function heatmap(ev) {
  const c = document.getElementById("heat"), g = c.getContext("2d");
  const w = ev.w, h = ev.h, heat = ev.heat || [], xh = ev.heat_express || [];
  if (!w || !h) return;
  const cw = c.width / w, ch = c.height / h;
  const max = Math.max(...heat, 1e-9);
  for (let y = 0; y < h; y++) for (let x = 0; x < w; x++) {
    const i = y * w + x, v = (heat[i] || 0) / max;
    // blue→yellow ramp; express share tints toward magenta
    const xs = heat[i] > 0 ? (xh[i] || 0) / heat[i] : 0;
    const r = Math.round(40 + 215 * v);
    const gg = Math.round(40 + 200 * v * (1 - 0.7 * xs));
    const b = Math.round(70 + 120 * xs * v);
    g.fillStyle = "rgb(" + r + "," + gg + "," + b + ")";
    g.fillRect(x * cw, y * ch, cw - 1, ch - 1);
  }
}
const fields = [
  ["cycles", "cycles"], ["injected", "injected"], ["stalls", "inject stalls"],
  ["delivered", "delivered"], ["in_flight", "in flight"],
  ["deflect_local", "deflections (local)"], ["deflect_express", "deflections (express)"],
  ["express_denied", "express denied"], ["drops", "drops"], ["retransmits", "retransmits"],
  ["p50", "p50 latency"], ["p99", "p99 latency"],
];
function totals(ev) {
  const t = document.getElementById("totals");
  let html = "";
  for (const [k, label] of fields)
    html += "<tr><td>" + label + "</td><td class=v>" + (ev[k] ?? 0).toLocaleString() + "</td></tr>";
  html += "<tr><td>mean latency</td><td class=v>" + (ev.mean_latency || 0).toFixed(1) + "</td></tr>";
  t.innerHTML = html;
}
const es = new EventSource("/live/stream");
es.onopen = () => { document.getElementById("status").textContent = "live"; };
es.onerror = () => { document.getElementById("status").textContent = "disconnected"; };
es.onmessage = (m) => {
  const ev = JSON.parse(m.data);
  tp.push(ev.throughput_per_pe || 0); if (tp.length > 120) tp.shift();
  lat.push(ev.mean_latency_w || 0); if (lat.length > 120) lat.shift();
  cps.push(ev.cycles_per_sec || 0); if (cps.length > 120) cps.shift();
  spark("spark-tp", tp, "#6cf");
  spark("spark-lat", lat, "#fc6");
  spark("spark-cps", cps, "#9d9");
  heatmap(ev);
  totals(ev);
  const st = document.getElementById("status");
  if (ev.done) { st.textContent = "run finished"; st.classList.add("done"); }
};
</script>
</body>
</html>
`
