package monitor

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"
)

// TestOfferFrameDropsOldest: the bounded frame buffer never blocks the
// producer; overflowing it discards the oldest frames and counts them.
func TestOfferFrameDropsOldest(t *testing.T) {
	frames := make(chan []byte, 3)
	var dropped atomic.Int64
	for i := 0; i < 10; i++ {
		offerFrame(frames, []byte{byte(i)}, &dropped)
	}
	if got := dropped.Load(); got != 7 {
		t.Fatalf("want 7 dropped frames, got %d", got)
	}
	// The survivors must be the newest three, in order.
	want := []byte{7, 8, 9}
	for _, w := range want {
		select {
		case b := <-frames:
			if !bytes.Equal(b, []byte{w}) {
				t.Fatalf("want frame %d, got %v", w, b)
			}
		default:
			t.Fatalf("buffer missing frame %d", w)
		}
	}
}

// TestSlowSSEClientNeverWedgesServer: a /live/stream client that stops
// reading must not block the snapshot producer — frames are dropped oldest-
// first — and the server keeps answering other endpoints meanwhile.
func TestSlowSSEClientNeverWedgesServer(t *testing.T) {
	// A 64x64 collector makes each SSE frame tens of KB, so a non-reading
	// client's socket buffer fills within a few hundred frames.
	col := NewCollector(64, 64)
	srv, err := StartServer("127.0.0.1:0", ServerOptions{
		Collector:       col,
		SSEInterval:     time.Millisecond,
		SSEWriteTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "GET /live/stream HTTP/1.1\r\nHost: %s\r\n\r\n", srv.Addr())
	// Deliberately never read from conn: the kernel buffers fill and the
	// server-side write stalls against its deadline.

	deadline := time.Now().Add(15 * time.Second)
	for srv.SSEDropped() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no frames dropped after 15s; producer appears blocked")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The rest of the server must still be responsive while the slow client
	// is wedged.
	resp, err := http.Get(srv.URL() + "/metrics")
	if err != nil {
		t.Fatalf("/metrics unreachable with a stalled SSE client: %v", err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(b, []byte("fasttrack_sse_dropped_frames_total")) {
		t.Fatalf("/metrics missing SSE drop counter:\n%s", b)
	}
}
