package monitor

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"fasttrack/internal/noc"
)

// HopKind classifies one entry in a packet's recorded hop history.
type HopKind uint8

// Hop history entry kinds.
const (
	// HopLocal and HopExpress are wire traversals by link class.
	HopLocal HopKind = iota
	HopExpress
	// HopDeflect marks a true deflection (misroute) suffered at a router.
	HopDeflect
	// HopDenied marks an express-resource denial (fallback to a short wire).
	HopDenied
)

var hopKindNames = [...]string{"hop", "xhop", "DEFLECT", "xdenied"}

// String returns the report label for the kind.
func (k HopKind) String() string {
	if int(k) < len(hopKindNames) {
		return hopKindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Hop is one recorded event in a packet's flight.
type Hop struct {
	Cycle  int64
	Router int32
	Port   noc.Port
	Kind   HopKind
}

// Record is one packet's recorded lifecycle. While the packet is in flight
// Deliver is -1 and Latency tracks its age at observation time; after
// delivery (or drop) both are final.
type Record struct {
	ID       int64
	Src, Dst noc.Coord
	Gen      int64
	// Inject is the cycle the packet entered the network (-1 until known:
	// hop events can precede the engine's injection report within a cycle).
	Inject  int64
	Deliver int64
	Dropped bool
	// Latency is Deliver-Gen for finished packets; reports refresh it to the
	// current age for live ones.
	Latency     int64
	Deflections int32
	Denied      int32
	// Hops is the flight history, capped at maxHopsPerPacket entries;
	// TruncatedHops counts events beyond the cap.
	Hops          []Hop
	TruncatedHops int32
}

// maxHopsPerPacket bounds per-packet history so a livelocked packet cannot
// grow a record without bound; the truncation count preserves the total.
const maxHopsPerPacket = 64

// FlightRecorder is a telemetry.Observer that retains bounded per-packet
// flight histories for forensics: every in-flight packet's lifecycle, plus
// a bounded buffer of the worst (highest-latency) finished packets. On a
// watchdog or invariant trip — or on demand via /debug/flight — its report
// names the K worst packets with full hop history and aggregates a
// deflection-blame table over the routers that delayed them.
//
// All methods are safe for concurrent use: events arrive from the
// simulation goroutine while reports are rendered from HTTP handlers.
type FlightRecorder struct {
	mu  sync.Mutex
	cap int
	w   int

	live map[int64]*Record
	// worst is a min-heap on Latency of finished packets, capacity cap.
	worst []*Record

	lastCycle int64
	finished  int64
	evicted   int64
}

// NewFlightRecorder returns a recorder retaining the cap worst finished
// packets (values < 1 are raised to 1) on a width-w torus.
func NewFlightRecorder(cap, w int) *FlightRecorder {
	if cap < 1 {
		cap = 1
	}
	if w < 1 {
		w = 1
	}
	return &FlightRecorder{
		cap:  cap,
		w:    w,
		live: make(map[int64]*Record),
	}
}

// get returns the live record for p, creating it on first sight: hop events
// fire inside Step while the engine reports the accepted injection after
// Step, so the first event seen for a packet may be its first hop.
func (f *FlightRecorder) get(p *noc.Packet) *Record {
	r, ok := f.live[p.ID]
	if !ok {
		r = &Record{
			ID: p.ID, Src: p.Src, Dst: p.Dst, Gen: p.Gen,
			Inject: -1, Deliver: -1,
		}
		f.live[p.ID] = r
	}
	return r
}

func (f *FlightRecorder) addHop(now int64, router int, port noc.Port, kind HopKind, p *noc.Packet) {
	f.mu.Lock()
	r := f.get(p)
	if len(r.Hops) < maxHopsPerPacket {
		r.Hops = append(r.Hops, Hop{Cycle: now, Router: int32(router), Port: port, Kind: kind})
	} else {
		r.TruncatedHops++
	}
	switch kind {
	case HopDeflect:
		r.Deflections++
	case HopDenied:
		r.Denied++
	}
	f.mu.Unlock()
}

// OnInject implements telemetry.Observer.
func (f *FlightRecorder) OnInject(now int64, p *noc.Packet) {
	f.mu.Lock()
	f.get(p).Inject = now
	f.mu.Unlock()
}

// OnInjectStall implements telemetry.Observer.
func (f *FlightRecorder) OnInjectStall(now int64, pe int) {}

// OnHop implements telemetry.Observer.
func (f *FlightRecorder) OnHop(now int64, router int, out noc.Port, p *noc.Packet) {
	f.addHop(now, router, out, HopLocal, p)
}

// OnExpressHop implements telemetry.Observer.
func (f *FlightRecorder) OnExpressHop(now int64, router int, out noc.Port, p *noc.Packet) {
	f.addHop(now, router, out, HopExpress, p)
}

// OnDeflect implements telemetry.Observer.
func (f *FlightRecorder) OnDeflect(now int64, router int, in noc.Port, p *noc.Packet) {
	f.addHop(now, router, in, HopDeflect, p)
}

// OnExpressDenied implements telemetry.Observer.
func (f *FlightRecorder) OnExpressDenied(now int64, router int, in noc.Port, p *noc.Packet) {
	f.addHop(now, router, in, HopDenied, p)
}

// OnDeliver implements telemetry.Observer.
func (f *FlightRecorder) OnDeliver(now int64, p *noc.Packet) { f.finish(now, p, false) }

// OnDrop implements telemetry.Observer: dropped packets are forensically
// interesting and compete for worst-buffer slots like delivered ones.
func (f *FlightRecorder) OnDrop(now int64, p *noc.Packet) { f.finish(now, p, true) }

// OnRetransmit implements telemetry.Observer (the retransmit copy carries a
// fresh ID and records its own lifecycle from injection).
func (f *FlightRecorder) OnRetransmit(now int64, p *noc.Packet) {}

// OnCycleEnd implements telemetry.Observer.
func (f *FlightRecorder) OnCycleEnd(now int64, inFlight int) {
	f.mu.Lock()
	f.lastCycle = now
	f.mu.Unlock()
}

func (f *FlightRecorder) finish(now int64, p *noc.Packet, dropped bool) {
	f.mu.Lock()
	r := f.get(p)
	delete(f.live, p.ID)
	r.Deliver = now
	r.Dropped = dropped
	r.Latency = now - r.Gen
	f.finished++
	// Min-heap sift on Latency: keep the cap worst finished packets.
	if len(f.worst) < f.cap {
		f.worst = append(f.worst, r)
		f.siftUp(len(f.worst) - 1)
	} else if r.Latency > f.worst[0].Latency {
		f.worst[0] = r
		f.siftDown(0)
		f.evicted++
	} else {
		f.evicted++
	}
	f.mu.Unlock()
}

func (f *FlightRecorder) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if f.worst[parent].Latency <= f.worst[i].Latency {
			return
		}
		f.worst[parent], f.worst[i] = f.worst[i], f.worst[parent]
		i = parent
	}
}

func (f *FlightRecorder) siftDown(i int) {
	n := len(f.worst)
	for {
		least := i
		if l := 2*i + 1; l < n && f.worst[l].Latency < f.worst[least].Latency {
			least = l
		}
		if r := 2*i + 2; r < n && f.worst[r].Latency < f.worst[least].Latency {
			least = r
		}
		if least == i {
			return
		}
		f.worst[i], f.worst[least] = f.worst[least], f.worst[i]
		i = least
	}
}

// TelemetryKey implements telemetry.Keyer.
func (f *FlightRecorder) TelemetryKey() string { return fmt.Sprintf("flight(cap=%d)", f.cap) }

// BlameEntry aggregates deflections and express denials charged to one
// router across a report's worst packets.
type BlameEntry struct {
	Router   int
	X, Y     int
	Deflects int64
	Denied   int64
}

// Report is a forensic summary: the worst packets (live packets ranked by
// age, finished ones by latency) and the routers to blame for their delay.
type Report struct {
	// Cycle is the last observed simulation cycle.
	Cycle int64
	// Finished and Live count packets recorded overall; Evicted counts
	// finished packets that fell out of the bounded worst buffer.
	Finished, Live, Evicted int64
	// Worst holds deep copies of the K worst records, worst first.
	Worst []Record
	// Blame ranks routers by deflections+denials charged over Worst.
	Blame []BlameEntry
}

// Report builds a forensic report over the k worst packets.
func (f *FlightRecorder) Report(k int) Report {
	if k < 1 {
		k = 1
	}
	f.mu.Lock()
	rep := Report{
		Cycle:    f.lastCycle,
		Finished: f.finished,
		Live:     int64(len(f.live)),
		Evicted:  f.evicted,
	}
	all := make([]Record, 0, len(f.live)+len(f.worst))
	for _, r := range f.live {
		c := cloneRecord(r)
		c.Latency = f.lastCycle - c.Gen // age so far
		all = append(all, c)
	}
	for _, r := range f.worst {
		all = append(all, cloneRecord(r))
	}
	f.mu.Unlock()

	sort.Slice(all, func(i, j int) bool {
		if all[i].Latency != all[j].Latency {
			return all[i].Latency > all[j].Latency
		}
		return all[i].ID < all[j].ID
	})
	if len(all) > k {
		all = all[:k]
	}
	rep.Worst = all

	blame := make(map[int32]*BlameEntry)
	for _, r := range all {
		for _, h := range r.Hops {
			if h.Kind != HopDeflect && h.Kind != HopDenied {
				continue
			}
			b, ok := blame[h.Router]
			if !ok {
				b = &BlameEntry{
					Router: int(h.Router),
					X:      int(h.Router) % f.w,
					Y:      int(h.Router) / f.w,
				}
				blame[h.Router] = b
			}
			if h.Kind == HopDeflect {
				b.Deflects++
			} else {
				b.Denied++
			}
		}
	}
	for _, b := range blame {
		rep.Blame = append(rep.Blame, *b)
	}
	sort.Slice(rep.Blame, func(i, j int) bool {
		ti := rep.Blame[i].Deflects + rep.Blame[i].Denied
		tj := rep.Blame[j].Deflects + rep.Blame[j].Denied
		if ti != tj {
			return ti > tj
		}
		return rep.Blame[i].Router < rep.Blame[j].Router
	})
	return rep
}

func cloneRecord(r *Record) Record {
	c := *r
	c.Hops = append([]Hop(nil), r.Hops...)
	return c
}

// WriteReport renders the k-worst forensic report as text.
func (f *FlightRecorder) WriteReport(w io.Writer, k int) error {
	return f.Report(k).Write(w, f.w)
}

// Write renders the report; width maps router indices to coordinates.
func (r Report) Write(w io.Writer, width int) error {
	if width < 1 {
		width = 1
	}
	coord := func(router int32) noc.Coord {
		return noc.PECoord(int(router), width)
	}
	if _, err := fmt.Fprintf(w,
		"flight recorder @ cycle %d: %d finished, %d in flight (retained %d worst, %d evicted)\n",
		r.Cycle, r.Finished, r.Live, len(r.Worst), r.Evicted); err != nil {
		return err
	}
	for i, p := range r.Worst {
		state := fmt.Sprintf("delivered @%d", p.Deliver)
		if p.Dropped {
			state = fmt.Sprintf("DROPPED @%d", p.Deliver)
		} else if p.Deliver < 0 {
			state = "IN FLIGHT"
		}
		fmt.Fprintf(w, "#%d packet %d %s->%s latency %d (%s; gen %d, inject %d, %d deflections, %d express denials)\n",
			i+1, p.ID, p.Src, p.Dst, p.Latency, state, p.Gen, p.Inject, p.Deflections, p.Denied)
		if len(p.Hops) > 0 {
			fmt.Fprint(w, "   flight:")
			for _, h := range p.Hops {
				fmt.Fprintf(w, " @%d %s %s %s;", h.Cycle, coord(h.Router), h.Port, h.Kind)
			}
			if p.TruncatedHops > 0 {
				fmt.Fprintf(w, " … %d more events truncated", p.TruncatedHops)
			}
			fmt.Fprintln(w)
		}
	}
	if len(r.Blame) > 0 {
		fmt.Fprintln(w, "deflection blame (routers delaying these packets):")
		top := r.Blame
		if len(top) > 10 {
			top = top[:10]
		}
		for _, b := range top {
			if _, err := fmt.Fprintf(w, "  router (%d,%d): %d deflections, %d express denials\n",
				b.X, b.Y, b.Deflects, b.Denied); err != nil {
				return err
			}
		}
	}
	return nil
}
