package monitor_test

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"fasttrack/internal/core"
	"fasttrack/internal/monitor"
)

// runOpts is the deterministic workload the collector tests observe.
func runOpts() core.SyntheticOptions {
	return core.SyntheticOptions{Pattern: "RANDOM", Rate: 1.0, PacketsPerPE: 200, Seed: 17}
}

// TestCollectorMatchesCounters runs a saturated FastTrack sim with the
// Collector attached and requires every snapshot total to equal the
// network's own counters — the /metrics scrape is only trustworthy if the
// event stream is complete.
func TestCollectorMatchesCounters(t *testing.T) {
	cfg := core.FastTrack(8, 2, 1)
	col := monitor.NewCollector(8, 8)
	opts := runOpts()
	opts.Observer = col

	res, err := core.RunSynthetic(context.Background(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	col.MarkDone()
	snap := col.Snapshot()

	c := res.Counters
	if snap.Cycles != res.Cycles {
		t.Errorf("cycles = %d, want %d", snap.Cycles, res.Cycles)
	}
	if snap.Injected != res.Injected {
		t.Errorf("injected = %d, want %d", snap.Injected, res.Injected)
	}
	if snap.Delivered != res.Delivered {
		t.Errorf("delivered = %d, want %d", snap.Delivered, res.Delivered)
	}
	if snap.Stalls != c.InjectionStalls {
		t.Errorf("stalls = %d, want %d", snap.Stalls, c.InjectionStalls)
	}
	if snap.HopsLocal != c.ShortTraversals {
		t.Errorf("local hops = %d, want %d", snap.HopsLocal, c.ShortTraversals)
	}
	if snap.HopsExpress != c.ExpressTraversals {
		t.Errorf("express hops = %d, want %d", snap.HopsExpress, c.ExpressTraversals)
	}
	var misroutes, denied int64
	for p := range c.MisroutesByInput {
		misroutes += c.MisroutesByInput[p]
		denied += c.ExpressDeniedByInput[p]
	}
	if got := snap.DeflectLocal + snap.DeflectExpress; got != misroutes {
		t.Errorf("deflections = %d (%d local + %d express), want %d",
			got, snap.DeflectLocal, snap.DeflectExpress, misroutes)
	}
	if snap.Denied != denied {
		t.Errorf("express denied = %d, want %d", snap.Denied, denied)
	}
	if snap.P50 != res.P50 || snap.P99 != res.P99 {
		t.Errorf("quantiles p50/p99 = %d/%d, want %d/%d", snap.P50, snap.P99, res.P50, res.P99)
	}
	if snap.InFlight != 0 {
		t.Errorf("in flight = %d after drain, want 0", snap.InFlight)
	}
	var linkLocal, linkExpress int64
	for i := range snap.LinkLocal {
		linkLocal += snap.LinkLocal[i]
		linkExpress += snap.LinkExpress[i]
	}
	if linkLocal != snap.HopsLocal || linkExpress != snap.HopsExpress {
		t.Errorf("per-router links sum to (%d, %d), totals are (%d, %d)",
			linkLocal, linkExpress, snap.HopsLocal, snap.HopsExpress)
	}
	if !snap.Done {
		t.Error("Done not set after MarkDone")
	}
	if snap.MeanLatency() <= 0 {
		t.Errorf("mean latency = %v, want > 0", snap.MeanLatency())
	}
}

// TestSnapshotDoesNotPerturbConvergence runs the same converging workload
// with and without a Collector being snapshotted concurrently mid-run, and
// requires bit-identical results — in particular the same convergence
// decision. A read-only monitor must never change what the engine computes.
func TestSnapshotDoesNotPerturbConvergence(t *testing.T) {
	cfg := core.Hoplite(8)
	opts := core.SyntheticOptions{
		Pattern: "RANDOM", Rate: 1.0, PacketsPerPE: 400, Seed: 7,
		ConvergeWindow: 128, ConvergeTol: 0.02,
	}

	base, err := core.RunSynthetic(context.Background(), cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Converged {
		t.Fatalf("baseline did not converge; pick a workload that exercises the detector")
	}

	col := monitor.NewCollector(8, 8)
	watched := opts
	watched.Observer = col

	// Hammer Snapshot from another goroutine for the whole run, the way the
	// HTTP handlers do.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				col.Snapshot()
			}
		}
	}()
	res, err := core.RunSynthetic(context.Background(), cfg, watched)
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	if res.Converged != base.Converged || res.Cycles != base.Cycles {
		t.Errorf("snapshotted run diverged: converged %v @ %d cycles, baseline %v @ %d",
			res.Converged, res.Cycles, base.Converged, base.Cycles)
	}
	if !reflect.DeepEqual(res, base) {
		t.Error("snapshotted run is not bit-identical to the baseline")
	}
	// The collector still saw the whole (early-exited) run.
	if snap := col.Snapshot(); snap.Delivered != res.Delivered {
		t.Errorf("collector delivered = %d, run delivered %d", snap.Delivered, res.Delivered)
	}
}
