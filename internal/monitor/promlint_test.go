package monitor_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"fasttrack/internal/monitor"
	"fasttrack/internal/noc"
	"fasttrack/internal/runner"
	"fasttrack/internal/serve"
)

// This file is the `make metrics-lint` gate: a self-contained Prometheus
// 0.0.4 text-exposition parser (no external dependency, same spirit as the
// hand-rolled PromWriter it audits) that scrapes the LIVE /metrics
// endpoints — the per-run ops server and the ftserve daemon — and rejects
// anything a real Prometheus scraper would choke on: samples without a
// TYPE line, malformed names or label escaping, duplicate or interleaved
// families, NaN/negative counters, and non-monotone histogram buckets.

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

type promFamily struct {
	typ     string
	help    bool
	closed  bool // a later family started; reopening = interleaved
	buckets map[string][]bucket
	sums    map[string]float64
	counts  map[string]float64
}

type bucket struct {
	le    float64
	count float64
}

// parseLabels validates the {name="value",...} block, returning a
// canonical (sorted) form for duplicate detection and the raw le value.
func parseLabels(s string, line int) (canon, le string, err error) {
	if s == "" {
		return "", "", nil
	}
	if !strings.HasPrefix(s, "{") || !strings.HasSuffix(s, "}") {
		return "", "", fmt.Errorf("line %d: malformed label block %q", line, s)
	}
	body := s[1 : len(s)-1]
	var pairs []string
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return "", "", fmt.Errorf("line %d: label without '=' in %q", line, s)
		}
		name := body[:eq]
		if !labelNameRe.MatchString(name) {
			return "", "", fmt.Errorf("line %d: bad label name %q", line, name)
		}
		rest := body[eq+1:]
		if !strings.HasPrefix(rest, `"`) {
			return "", "", fmt.Errorf("line %d: label %s value not quoted", line, name)
		}
		rest = rest[1:]
		var val strings.Builder
		i := 0
		for {
			if i >= len(rest) {
				return "", "", fmt.Errorf("line %d: unterminated label value for %s", line, name)
			}
			c := rest[i]
			if c == '"' {
				break
			}
			if c == '\\' {
				if i+1 >= len(rest) {
					return "", "", fmt.Errorf("line %d: dangling escape in label %s", line, name)
				}
				switch rest[i+1] {
				case '\\', '"', 'n':
				default:
					return "", "", fmt.Errorf("line %d: invalid escape \\%c in label %s", line, rest[i+1], name)
				}
				val.WriteByte(rest[i+1])
				i += 2
				continue
			}
			val.WriteByte(c)
			i++
		}
		body = rest[i+1:]
		switch {
		case body == "":
		case strings.HasPrefix(body, ","):
			body = body[1:]
		default:
			return "", "", fmt.Errorf("line %d: expected ',' or '}' after label %s", line, name)
		}
		if name == "le" {
			le = val.String()
		}
		pairs = append(pairs, name+"="+val.String())
	}
	sort.Strings(pairs)
	return "{" + strings.Join(pairs, ",") + "}", le, nil
}

// baseFamily maps a sample name to the family that must have announced it:
// histogram and summary series use the reserved suffixes.
func baseFamily(name string, families map[string]*promFamily) (string, bool) {
	if f, ok := families[name]; ok && (f.typ != "histogram" && f.typ != "summary") {
		return name, true
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if b, found := strings.CutSuffix(name, suf); found {
			if f, ok := families[b]; ok && (f.typ == "histogram" || f.typ == "summary") {
				return b, true
			}
		}
	}
	_, ok := families[name]
	return name, ok
}

// lintProm validates one exposition document and returns the first
// violation (nil when clean).
func lintProm(text string) error {
	families := map[string]*promFamily{}
	seen := map[string]bool{} // name+canonical labels → duplicate detection
	current := ""
	openFamily := func(fam string, line int) error {
		if current == fam {
			return nil
		}
		if f, ok := families[fam]; ok && f.closed {
			return fmt.Errorf("line %d: family %s interleaved (samples split by another family)", line, fam)
		}
		if cf, ok := families[current]; ok {
			cf.closed = true
		}
		current = fam
		return nil
	}

	lines := strings.Split(text, "\n")
	for i, raw := range lines {
		n := i + 1
		line := strings.TrimRight(raw, "\r")
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			parts := strings.SplitN(line, " ", 4)
			if len(parts) < 3 || (parts[1] != "HELP" && parts[1] != "TYPE") {
				return fmt.Errorf("line %d: comment is neither HELP nor TYPE: %q", n, line)
			}
			name := parts[2]
			if !metricNameRe.MatchString(name) {
				return fmt.Errorf("line %d: bad metric name %q", n, name)
			}
			f := families[name]
			if f == nil {
				f = &promFamily{buckets: map[string][]bucket{}, sums: map[string]float64{}, counts: map[string]float64{}}
				families[name] = f
			}
			if parts[1] == "HELP" {
				if f.help {
					return fmt.Errorf("line %d: second HELP for %s", n, name)
				}
				if len(parts) < 4 || parts[3] == "" {
					return fmt.Errorf("line %d: empty HELP for %s", n, name)
				}
				f.help = true
			} else {
				if f.typ != "" {
					return fmt.Errorf("line %d: second TYPE for %s", n, name)
				}
				if len(parts) < 4 {
					return fmt.Errorf("line %d: TYPE without a type for %s", n, name)
				}
				switch parts[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
					f.typ = parts[3]
				default:
					return fmt.Errorf("line %d: unknown TYPE %q for %s", n, parts[3], name)
				}
			}
			if err := openFamily(name, n); err != nil {
				return err
			}
			continue
		}

		// Sample: name[{labels}] value [timestamp]
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return fmt.Errorf("line %d: sample without value: %q", n, line)
		}
		nameLabels, valStr := line[:sp], line[sp+1:]
		// An optional trailing timestamp means valStr is the timestamp.
		if sp2 := strings.LastIndexByte(nameLabels, ' '); sp2 >= 0 && strings.ContainsAny(nameLabels[sp2+1:], "0123456789") && !strings.Contains(nameLabels[sp2+1:], "{") {
			if _, err := strconv.ParseInt(valStr, 10, 64); err != nil {
				return fmt.Errorf("line %d: malformed timestamp %q", n, valStr)
			}
			valStr = nameLabels[sp2+1:]
			nameLabels = nameLabels[:sp2]
		}
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return fmt.Errorf("line %d: unparsable value %q", n, valStr)
		}
		name, labels := nameLabels, ""
		if b := strings.IndexByte(nameLabels, '{'); b >= 0 {
			name, labels = nameLabels[:b], nameLabels[b:]
		}
		if !metricNameRe.MatchString(name) {
			return fmt.Errorf("line %d: bad metric name %q", n, name)
		}
		canon, le, err := parseLabels(labels, n)
		if err != nil {
			return err
		}
		fam, ok := baseFamily(name, families)
		if !ok {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE line", n, name)
		}
		f := families[fam]
		if f.typ == "" {
			return fmt.Errorf("line %d: sample %s has no preceding # TYPE line", n, name)
		}
		if err := openFamily(fam, n); err != nil {
			return err
		}
		key := name + canon
		if seen[key] {
			return fmt.Errorf("line %d: duplicate sample %s", n, key)
		}
		seen[key] = true

		switch f.typ {
		case "counter":
			if math.IsNaN(val) || val < 0 {
				return fmt.Errorf("line %d: counter %s has invalid value %v", n, name, val)
			}
		case "gauge":
			if math.IsNaN(val) {
				return fmt.Errorf("line %d: gauge %s is NaN", n, name)
			}
		case "histogram":
			group := canon
			if le != "" {
				group = strings.ReplaceAll(group, `{le=`+le+`}`, "")
				group = strings.ReplaceAll(group, `le=`+le+`,`, "")
				group = strings.ReplaceAll(group, `,le=`+le, "")
			}
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					return fmt.Errorf("line %d: %s bucket without le label", n, fam)
				}
				lev, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("line %d: %s bucket has unparsable le %q", n, fam, le)
				}
				if math.IsNaN(val) || val < 0 {
					return fmt.Errorf("line %d: %s bucket count %v invalid", n, fam, val)
				}
				f.buckets[group] = append(f.buckets[group], bucket{lev, val})
			case strings.HasSuffix(name, "_sum"):
				f.sums[canon] = val
			case strings.HasSuffix(name, "_count"):
				f.counts[canon] = val
			default:
				return fmt.Errorf("line %d: histogram %s has stray sample %s", n, fam, name)
			}
		}
	}

	// Histogram closure checks: buckets sorted and cumulative, +Inf present
	// and consistent with _count.
	for name, f := range families {
		if f.typ != "histogram" {
			continue
		}
		for group, bs := range f.buckets {
			for i := 1; i < len(bs); i++ {
				if bs[i].le <= bs[i-1].le {
					return fmt.Errorf("histogram %s%s: le %v not above %v (buckets must be sorted)", name, group, bs[i].le, bs[i-1].le)
				}
				if bs[i].count < bs[i-1].count {
					return fmt.Errorf("histogram %s%s: bucket counts non-monotone (%v after %v)", name, group, bs[i].count, bs[i-1].count)
				}
			}
			last := bs[len(bs)-1]
			if !math.IsInf(last.le, +1) {
				return fmt.Errorf("histogram %s%s: missing le=\"+Inf\" bucket", name, group)
			}
			cnt, ok := f.counts[group]
			if !ok {
				return fmt.Errorf("histogram %s%s: missing _count", name, group)
			}
			if last.count != cnt {
				return fmt.Errorf("histogram %s%s: +Inf bucket %v != _count %v", name, group, last.count, cnt)
			}
			if _, ok := f.sums[group]; !ok {
				return fmt.Errorf("histogram %s%s: missing _sum", name, group)
			}
		}
	}
	return nil
}

func jsonDecode(r io.Reader, v any) error { return json.NewDecoder(r).Decode(v) }

func scrapeURL(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET %s: content type %q is not 0.0.4 text exposition", url, ct)
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMetricsLintMonitor scrapes the live per-run ops server with every
// source attached and lints the exposition.
func TestMetricsLintMonitor(t *testing.T) {
	col := monitor.NewCollector(4, 4)
	p := &noc.Packet{}
	col.OnInject(1, p)
	col.OnDeliver(3, p)
	col.OnCycleEnd(3, 0)
	fr := monitor.NewFlightRecorder(8, 4)
	orch := &runner.Orchestrator{}
	srv, err := monitor.StartServer("127.0.0.1:0", monitor.ServerOptions{
		Collector: col, Flight: fr, Runner: orch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	text := scrapeURL(t, srv.URL()+"/metrics")
	if err := lintProm(text); err != nil {
		t.Fatalf("monitor /metrics fails lint: %v\n%s", err, text)
	}
}

// TestMetricsLintServe runs a real job through an ftserve daemon so the
// stage histograms have samples, then lints its /metrics.
func TestMetricsLintServe(t *testing.T) {
	s, err := serve.New(serve.Options{CacheDir: t.TempDir(), QueueDepth: 8, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := `{"kind":"sim","topology":{"noc":"hoplite","n":4},
		"workload":{"pattern":"RANDOM","rate":0.5,"packets":20,"seed":3}}`
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	var st struct {
		ID string `json:"id"`
	}
	if err := jsonDecode(resp.Body, &st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		r2, err := http.Get(ts.URL + "/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		var js struct {
			State string `json:"state"`
		}
		if err := jsonDecode(r2.Body, &js); err != nil {
			t.Fatal(err)
		}
		r2.Body.Close()
		if js.State == "done" || js.State == "failed" || js.State == "canceled" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never finished", st.ID)
		}
		time.Sleep(10 * time.Millisecond)
	}

	text := scrapeURL(t, ts.URL+"/metrics")
	if err := lintProm(text); err != nil {
		t.Fatalf("ftserve /metrics fails lint: %v\n%s", err, text)
	}
	for _, want := range []string{"ftserve_queue_wait_seconds_bucket", "ftserve_job_e2e_seconds_sum", "ftserve_run_p99_seconds"} {
		if !strings.Contains(text, want) {
			t.Fatalf("ftserve /metrics missing %s", want)
		}
	}
}

// TestPromLintRejects proves the linter actually bites: each malformed
// document must be rejected for the stated reason.
func TestPromLintRejects(t *testing.T) {
	cases := []struct {
		name, doc, wantErr string
	}{
		{"missing TYPE", "orphan_total 3\n", "no preceding # TYPE"},
		{"bad escape", "# HELP m d\n# TYPE m gauge\nm{l=\"x\\q\"} 1\n", "invalid escape"},
		{"unquoted label", "# HELP m d\n# TYPE m gauge\nm{l=value} 1\n", "not quoted"},
		{"negative counter", "# HELP c d\n# TYPE c counter\nc -1\n", "invalid value"},
		{"NaN counter", "# HELP c d\n# TYPE c counter\nc NaN\n", "invalid value"},
		{"duplicate sample", "# HELP g d\n# TYPE g gauge\ng 1\ng 2\n", "duplicate sample"},
		{"second TYPE", "# HELP g d\n# TYPE g gauge\n# TYPE g gauge\n", "second TYPE"},
		{"unknown type", "# HELP g d\n# TYPE g matrix\n", "unknown TYPE"},
		{"interleaved family", "# HELP a d\n# TYPE a gauge\na 1\n# HELP b d\n# TYPE b gauge\nb 1\na{x=\"2\"} 2\n", "interleaved"},
		{"unsorted buckets", "# HELP h d\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_bucket{le=\"0.5\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 1\nh_count 1\n", "sorted"},
		{"non-monotone buckets", "# HELP h d\n# TYPE h histogram\nh_bucket{le=\"0.5\"} 5\nh_bucket{le=\"1\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n", "non-monotone"},
		{"missing +Inf", "# HELP h d\n# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n", "+Inf"},
		{"count mismatch", "# HELP h d\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n", "_count"},
		{"garbage value", "# HELP g d\n# TYPE g gauge\ng one\n", "unparsable value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := lintProm(tc.doc)
			if err == nil {
				t.Fatalf("linter accepted malformed doc:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("wrong rejection: got %v, want substring %q", err, tc.wantErr)
			}
		})
	}
	clean := "# HELP h d\n# TYPE h histogram\nh_bucket{le=\"0.5\"} 2\nh_bucket{le=\"+Inf\"} 4\nh_sum 1.5\nh_count 4\n"
	if err := lintProm(clean); err != nil {
		t.Fatalf("linter rejected a clean doc: %v", err)
	}
}
