package monitor_test

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"fasttrack/internal/core"
	"fasttrack/internal/monitor"
	"fasttrack/internal/runner"
	"fasttrack/internal/telemetry"
)

// scrape fetches path from srv and returns the body.
func scrape(t *testing.T, srv *monitor.Server, path string) string {
	t.Helper()
	resp, err := http.Get(srv.URL() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", path, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// parseProm parses Prometheus text exposition into sample name -> value
// (labels kept as part of the name).
func parseProm(t *testing.T, body string) map[string]float64 {
	t.Helper()
	samples := map[string]float64{}
	for _, line := range strings.Split(body, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		samples[line[:i]] = v
	}
	return samples
}

// TestMetricsEndpointTotals is the end-to-end scrape check: a real run's
// /metrics totals must equal the network's own counters, and the runner
// section must reflect the orchestrator.
func TestMetricsEndpointTotals(t *testing.T) {
	col := monitor.NewCollector(8, 8)
	fr := monitor.NewFlightRecorder(4, 8)
	orch := &runner.Orchestrator{Workers: 2}
	for i := 0; i < 3; i++ {
		if _, err := runner.Do(context.Background(), orch, fmt.Sprint(i), func() (int, error) {
			return i, nil
		}); err != nil {
			t.Fatal(err)
		}
	}

	opts := runOpts()
	opts.Observer = telemetry.Multi(col, fr)
	res, err := core.RunSynthetic(context.Background(), core.FastTrack(8, 2, 1), opts)
	if err != nil {
		t.Fatal(err)
	}
	col.MarkDone()

	srv, err := monitor.StartServer("127.0.0.1:0", monitor.ServerOptions{
		Collector: col, Flight: fr, Runner: orch,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	m := parseProm(t, scrape(t, srv, "/metrics"))
	c := res.Counters
	var misroutes, denied int64
	for p := range c.MisroutesByInput {
		misroutes += c.MisroutesByInput[p]
		denied += c.ExpressDeniedByInput[p]
	}
	want := map[string]int64{
		"fasttrack_sim_cycles_total":            res.Cycles,
		"fasttrack_sim_packets_injected_total":  res.Injected,
		"fasttrack_sim_packets_delivered_total": res.Delivered,
		"fasttrack_sim_packets_offered_total":   res.Injected + c.InjectionStalls,
		"fasttrack_sim_injection_stalls_total":  c.InjectionStalls,
		`fasttrack_sim_hops_total{wire="local"}`:   c.ShortTraversals,
		`fasttrack_sim_hops_total{wire="express"}`: c.ExpressTraversals,
		"fasttrack_sim_express_denied_total":       denied,
		"fasttrack_sim_packets_in_flight":          0,
		`fasttrack_sim_latency_cycles{quantile="0.5"}`:  res.P50,
		`fasttrack_sim_latency_cycles{quantile="0.99"}`: res.P99,
		"fasttrack_runner_jobs_executed_total":          3,
		"fasttrack_runner_jobs_cached_total":            0,
		"fasttrack_flight_finished_total":               res.Delivered,
	}
	for name, v := range want {
		got, ok := m[name]
		if !ok {
			t.Errorf("sample %s missing from scrape", name)
			continue
		}
		if got != float64(v) {
			t.Errorf("%s = %v, want %d", name, got, v)
		}
	}
	if got := m[`fasttrack_sim_deflections_total{wire="local"}`] + m[`fasttrack_sim_deflections_total{wire="express"}`]; got != float64(misroutes) {
		t.Errorf("deflections = %v, want %d", got, misroutes)
	}
}

// TestLiveStreamSSE connects a raw SSE client to /live/stream and requires
// at least two well-formed snapshot events with sane dimensions.
func TestLiveStreamSSE(t *testing.T) {
	col := monitor.NewCollector(4, 4)
	opts := core.SyntheticOptions{Pattern: "RANDOM", Rate: 0.5, PacketsPerPE: 100, Seed: 17}
	opts.Observer = col
	if _, err := core.RunSynthetic(context.Background(), core.Hoplite(4), opts); err != nil {
		t.Fatal(err)
	}

	srv, err := monitor.StartServer("127.0.0.1:0", monitor.ServerOptions{
		Collector: col, SSEInterval: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL()+"/live/stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	sc := bufio.NewScanner(resp.Body)
	events := 0
	for sc.Scan() && events < 3 {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev struct {
			Cycles    int64     `json:"cycles"`
			Delivered int64     `json:"delivered"`
			W         int       `json:"w"`
			H         int       `json:"h"`
			Heat      []float64 `json:"heat"`
		}
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("event %d is not valid JSON: %v\n%s", events, err, line)
		}
		if ev.Cycles <= 0 || ev.Delivered <= 0 {
			t.Errorf("event %d: cycles=%d delivered=%d, want > 0", events, ev.Cycles, ev.Delivered)
		}
		if len(ev.Heat) != 16 {
			t.Errorf("event %d: heat has %d cells, want 16", events, len(ev.Heat))
		}
		events++
	}
	if events < 2 {
		t.Fatalf("received %d SSE events, want >= 2 (scan err: %v)", events, sc.Err())
	}
}

// TestServerEndpoints smoke-checks the remaining routes: the live page, the
// pprof index, expvar, and the flight report (absent and present).
func TestServerEndpoints(t *testing.T) {
	col := monitor.NewCollector(4, 4)
	srv, err := monitor.StartServer("127.0.0.1:0", monitor.ServerOptions{Collector: col})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if page := scrape(t, srv, "/live"); !strings.Contains(page, "EventSource") {
		t.Error("/live page has no EventSource client")
	}
	if body := scrape(t, srv, "/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ index missing profiles")
	}
	var vars map[string]any
	if err := json.Unmarshal([]byte(scrape(t, srv, "/debug/vars")), &vars); err != nil {
		t.Errorf("/debug/vars is not JSON: %v", err)
	}
	resp, err := http.Get(srv.URL() + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/flight without a recorder = %s, want 404", resp.Status)
	}

	fr := monitor.NewFlightRecorder(4, 4)
	srv2, err := monitor.StartServer("127.0.0.1:0", monitor.ServerOptions{Flight: fr})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	if body := scrape(t, srv2, "/debug/flight?k=3"); !strings.Contains(body, "flight recorder @ cycle") {
		t.Errorf("/debug/flight report malformed:\n%s", body)
	}
}
