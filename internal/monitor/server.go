package monitor

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"fasttrack/internal/obs"
	"fasttrack/internal/runner"
)

// ServerOptions configures an ops server. Every source is optional; the
// corresponding endpoints degrade gracefully (a /metrics scrape with no
// collector still exposes runner and process sections).
type ServerOptions struct {
	// Collector feeds the sim sections of /metrics and the /live stream.
	Collector *Collector
	// Flight serves /debug/flight forensic dumps.
	Flight *FlightRecorder
	// Runner feeds the sweep-orchestration sections of /metrics.
	Runner *runner.Orchestrator
	// SSEInterval is the /live/stream snapshot period; 0 means 1s.
	SSEInterval time.Duration
	// SSEWriteTimeout bounds each SSE frame write so a stalled client can
	// never wedge its stream goroutine; 0 means 10s.
	SSEWriteTimeout time.Duration
	// Extra, when non-nil, appends caller-owned metric families to /metrics
	// (the hook an embedding daemon uses for its fleet-level sections).
	Extra func(*PromWriter)
	// Log receives the server lifecycle records and http.Server errors;
	// nil keeps the server silent (tests, embedders with their own logs).
	Log *slog.Logger
}

// Server is the embeddable HTTP ops server: /metrics (Prometheus text
// exposition), /live (SSE-fed heatmap page), /debug/pprof, /debug/vars
// (expvar) and /debug/flight. Create with StartServer, stop with Close.
type Server struct {
	opts ServerOptions
	ln   net.Listener
	srv  *http.Server

	// sseDropped counts frames discarded because a /live/stream client fell
	// behind its bounded buffer (drop-oldest backpressure).
	sseDropped atomic.Int64
}

// StartServer listens on addr (host:port; ":0" picks a free port) and
// serves in a background goroutine until Close.
func StartServer(addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	s := &Server{opts: opts, ln: ln}
	s.srv = &http.Server{Handler: s.Handler()}
	if opts.Log != nil {
		s.srv.ErrorLog = slog.NewLogLogger(opts.Log.Handler(), slog.LevelWarn)
	}
	go s.srv.Serve(ln)
	if opts.Log != nil {
		opts.Log.Info("monitor server listening", "addr", s.Addr())
	}
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down immediately (in-flight SSE streams end).
func (s *Server) Close() error { return s.srv.Close() }

// Handler builds the ops mux; exposed for embedding into an existing
// server and for httptest-based tests.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/live", s.handleLivePage)
	mux.HandleFunc("/live/stream", s.handleLiveStream)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/live", http.StatusFound)
	})
	return mux
}

// PromWriter emits Prometheus text exposition format (version 0.0.4): a
// HELP/TYPE header per family followed by samples. It is exported so other
// HTTP surfaces (the ftserve fleet daemon) can emit the same format without
// depending on a metrics library; the first write error is sticky and
// silences the rest, mirroring the one-shot nature of a scrape response.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter returns a PromWriter emitting to w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, if any.
func (p *PromWriter) Err() error { return p.err }

// Family writes a HELP/TYPE header for a metric family.
func (p *PromWriter) Family(name, help, typ string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Sample writes one sample; labels is the literal label block ("" or
// `{k="v"}` including braces).
func (p *PromWriter) Sample(name, labels string, v float64) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

// Counter writes a single-sample counter family.
func (p *PromWriter) Counter(name, help string, v int64) {
	p.Family(name, help, "counter")
	p.Sample(name, "", float64(v))
}

// Histogram writes a Prometheus histogram family from an obs duration
// snapshot: cumulative _bucket{le="..."} samples over the shared bucket
// geometry, then _sum in seconds (converted float64(SumNS)/1e9 — the exact
// rounding the span-vs-metrics reconciliation tests replay) and _count.
func (p *PromWriter) Histogram(name, help string, s obs.HistSnapshot) {
	p.Family(name, help, "histogram")
	var cum int64
	for i, b := range obs.HistBounds() {
		cum += s.Counts[i]
		le := strconv.FormatFloat(b.Seconds(), 'g', -1, 64)
		p.Sample(name+"_bucket", `{le="`+le+`"}`, float64(cum))
	}
	cum += s.Counts[len(s.Counts)-1]
	p.Sample(name+"_bucket", `{le="+Inf"}`, float64(cum))
	p.Sample(name+"_sum", "", s.SumSeconds())
	p.Sample(name+"_count", "", float64(s.Count))
}

// Gauge writes a single-sample gauge family.
func (p *PromWriter) Gauge(name, help string, v float64) {
	p.Family(name, help, "gauge")
	p.Sample(name, "", v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := NewPromWriter(w)
	if c := s.opts.Collector; c != nil {
		writeSimMetrics(p, c.Snapshot())
	}
	if o := s.opts.Runner; o != nil {
		WriteRunnerMetrics(p, o.Snapshot())
	}
	if f := s.opts.Flight; f != nil {
		rep := f.Report(1)
		p.Counter("fasttrack_flight_finished_total", "Packet lifecycles finished in the flight recorder.", rep.Finished)
		p.Gauge("fasttrack_flight_live", "Packet lifecycles currently tracked in flight.", float64(rep.Live))
		p.Counter("fasttrack_flight_evicted_total", "Finished lifecycles evicted from the bounded worst buffer.", rep.Evicted)
	}
	p.Counter("fasttrack_sse_dropped_frames_total", "SSE frames dropped for clients slower than their bounded buffer.", s.sseDropped.Load())
	if s.opts.Extra != nil {
		s.opts.Extra(p)
	}
}

func writeSimMetrics(p *PromWriter, s Snapshot) {
	p.Counter("fasttrack_sim_cycles_total", "Simulated cycles.", s.Cycles)
	p.Gauge("fasttrack_sim_cycles_per_second", "Mean simulation speed since the first event.", s.CyclesPerSec())
	p.Counter("fasttrack_sim_packets_offered_total", "Injection offers presented (accepted + refused).", s.Injected+s.Stalls)
	p.Counter("fasttrack_sim_packets_injected_total", "Offers accepted into the network.", s.Injected)
	p.Counter("fasttrack_sim_injection_stalls_total", "Offers refused (per PE per cycle).", s.Stalls)
	p.Counter("fasttrack_sim_packets_delivered_total", "Packets delivered to clients.", s.Delivered)
	p.Counter("fasttrack_sim_packets_dropped_total", "Packets destroyed by faults or abandoned by retry budget.", s.Drops)
	p.Counter("fasttrack_sim_retransmits_total", "Retransmit copies queued by the resilience layer.", s.Retrans)
	p.Gauge("fasttrack_sim_packets_in_flight", "Packets inside the network now.", float64(s.InFlight))

	p.Family("fasttrack_sim_hops_total", "Wire traversals by link class.", "counter")
	p.Sample("fasttrack_sim_hops_total", `{wire="local"}`, float64(s.HopsLocal))
	p.Sample("fasttrack_sim_hops_total", `{wire="express"}`, float64(s.HopsExpress))
	p.Family("fasttrack_sim_deflections_total", "True deflections by the wire class of the deflected input.", "counter")
	p.Sample("fasttrack_sim_deflections_total", `{wire="local"}`, float64(s.DeflectLocal))
	p.Sample("fasttrack_sim_deflections_total", `{wire="express"}`, float64(s.DeflectExpress))
	p.Counter("fasttrack_sim_express_denied_total", "Packets denied an express resource (fell back to a short wire).", s.Denied)

	p.Family("fasttrack_sim_latency_cycles", "Cumulative delivery-latency quantiles in cycles.", "gauge")
	p.Sample("fasttrack_sim_latency_cycles", `{quantile="0.5"}`, float64(s.P50))
	p.Sample("fasttrack_sim_latency_cycles", `{quantile="0.99"}`, float64(s.P99))
	p.Gauge("fasttrack_sim_latency_mean_cycles", "Cumulative mean delivery latency in cycles.", s.MeanLatency())
}

// WriteRunnerMetrics emits the sweep-orchestration metric families for an
// orchestrator snapshot; exported so the ftserve daemon's fleet /metrics can
// include the same section.
func WriteRunnerMetrics(p *PromWriter, s runner.Snapshot) {
	p.Counter("fasttrack_runner_jobs_executed_total", "Sweep jobs computed fresh.", s.Executed)
	p.Counter("fasttrack_runner_jobs_cached_total", "Sweep jobs answered from the result cache.", s.CacheHits)
	p.Counter("fasttrack_runner_jobs_failed_total", "Sweep jobs that returned an error.", s.Failed)
	ratio := 0.0
	if total := s.Executed + s.CacheHits; total > 0 {
		ratio = float64(s.CacheHits) / float64(total)
	}
	p.Gauge("fasttrack_runner_cache_hit_ratio", "Cache hits over all completed jobs.", ratio)
	p.Gauge("fasttrack_runner_workers_active", "Jobs running right now.", float64(s.Active))
	p.Gauge("fasttrack_runner_jobs_pending", "Jobs admitted to a batch but not yet started.", float64(s.Pending))
	p.Gauge("fasttrack_runner_workers", "Worker pool size.", float64(s.Workers))

	p.Histogram("fasttrack_runner_job_simulated_seconds",
		"Per-job wall clock of fresh simulations (batched chunks split evenly).", s.HistSimulated)
	p.Gauge("fasttrack_runner_job_simulated_p50_seconds",
		"Ceil-rank median of fresh-simulation job duration, as a bucket upper bound.",
		s.HistSimulated.Quantile(0.5).Seconds())
	p.Gauge("fasttrack_runner_job_simulated_p99_seconds",
		"Ceil-rank 99th percentile of fresh-simulation job duration, as a bucket upper bound.",
		s.HistSimulated.Quantile(0.99).Seconds())
	p.Histogram("fasttrack_runner_job_cached_seconds",
		"Per-job cache-hit lookup latency.", s.HistCacheHit)
	p.Gauge("fasttrack_runner_job_cached_p50_seconds",
		"Ceil-rank median of cache-hit lookup latency, as a bucket upper bound.",
		s.HistCacheHit.Quantile(0.5).Seconds())
	p.Gauge("fasttrack_runner_job_cached_p99_seconds",
		"Ceil-rank 99th percentile of cache-hit lookup latency, as a bucket upper bound.",
		s.HistCacheHit.Quantile(0.99).Seconds())
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.opts.Flight == nil {
		http.Error(w, "flight recorder not enabled (run with -flight-recorder N)", http.StatusNotFound)
		return
	}
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			k = v
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.opts.Flight.WriteReport(w, k)
}

// liveEvent is one SSE frame: cumulative totals plus rates computed over
// the window since the previous frame.
type liveEvent struct {
	Snapshot
	// CyclesPerSecW etc. are windowed (since the previous frame) rates;
	// Heat/HeatExpress are per-router hops per cycle over the window.
	CyclesPerSecW float64   `json:"cycles_per_sec"`
	ThroughputW   float64   `json:"throughput_per_pe"`
	MeanLatencyW  float64   `json:"mean_latency_w"`
	MeanLatency   float64   `json:"mean_latency"`
	Heat          []float64 `json:"heat"`
	HeatExpress   []float64 `json:"heat_express"`
}

// makeLiveEvent computes the windowed view between two snapshots.
func makeLiveEvent(prev, cur Snapshot) liveEvent {
	ev := liveEvent{Snapshot: cur, MeanLatency: cur.MeanLatency()}
	dCycles := cur.Cycles - prev.Cycles
	dWall := cur.WallMS - prev.WallMS
	if dWall > 0 {
		ev.CyclesPerSecW = float64(dCycles) / (float64(dWall) / 1000)
	}
	ev.Heat = make([]float64, len(cur.LinkLocal))
	ev.HeatExpress = make([]float64, len(cur.LinkExpress))
	if dCycles > 0 {
		numPE := cur.W * cur.H
		ev.ThroughputW = float64(cur.Delivered-prev.Delivered) / float64(dCycles) / float64(numPE)
		// prev may be the zero Snapshot on the first frame (no link slices).
		at := func(s []int64, i int) int64 {
			if i < len(s) {
				return s[i]
			}
			return 0
		}
		for i := range ev.Heat {
			local := cur.LinkLocal[i] - at(prev.LinkLocal, i)
			express := cur.LinkExpress[i] - at(prev.LinkExpress, i)
			ev.Heat[i] = float64(local+express) / float64(dCycles)
			ev.HeatExpress[i] = float64(express) / float64(dCycles)
		}
	}
	if d := cur.Delivered - prev.Delivered; d > 0 {
		ev.MeanLatencyW = float64(cur.LatSum-prev.LatSum) / float64(d)
	}
	return ev
}

// sseBufFrames bounds each /live/stream client's frame buffer: a consumer
// slower than the snapshot producer loses the oldest frames, never the
// producer's liveness (each frame is a self-contained cumulative snapshot,
// so dropping intermediates only lowers that client's refresh rate).
const sseBufFrames = 8

// offerFrame enqueues b without ever blocking: when the buffer is full the
// oldest frame is discarded (counted in dropped) to make room. The channel
// must have a single producer (this function's caller).
func offerFrame(frames chan []byte, b []byte, dropped *atomic.Int64) {
	select {
	case frames <- b:
		return
	default:
	}
	select {
	case <-frames:
		dropped.Add(1)
	default:
	}
	select {
	case frames <- b:
	default:
		// A racing consumer refilled the buffer; losing the new frame is as
		// acceptable as losing the oldest.
		dropped.Add(1)
	}
}

// SSEDropped reports how many /live/stream frames were discarded because a
// client fell behind (drop-oldest backpressure).
func (s *Server) SSEDropped() int64 { return s.sseDropped.Load() }

func (s *Server) handleLiveStream(w http.ResponseWriter, r *http.Request) {
	if s.opts.Collector == nil {
		http.Error(w, "no collector attached", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	interval := s.opts.SSEInterval
	if interval <= 0 {
		interval = time.Second
	}
	writeTimeout := s.opts.SSEWriteTimeout
	if writeTimeout <= 0 {
		writeTimeout = 10 * time.Second
	}

	// Producer: snapshots the collector on its own clock and never blocks on
	// the client — a stalled dashboard cannot wedge anything upstream of its
	// bounded buffer. It exits when the request context ends (client gone or
	// handler returned).
	frames := make(chan []byte, sseBufFrames)
	ctx := r.Context()
	go func() {
		defer close(frames)
		t := time.NewTicker(interval)
		defer t.Stop()
		var prev Snapshot
		emit := func() {
			cur := s.opts.Collector.Snapshot()
			b, err := json.Marshal(makeLiveEvent(prev, cur))
			prev = cur
			if err != nil {
				return
			}
			offerFrame(frames, b, &s.sseDropped)
		}
		emit()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				emit()
			}
		}
	}()

	// Consumer: each write carries a deadline, so the slowest failure mode a
	// dead client can cause is one writeTimeout of latency before its stream
	// goroutine is reclaimed.
	rc := http.NewResponseController(w)
	for b := range frames {
		_ = rc.SetWriteDeadline(time.Now().Add(writeTimeout))
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return
		}
		if err := rc.Flush(); err != nil {
			return
		}
	}
}

func (s *Server) handleLivePage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, liveHTML)
}
