package monitor

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"fasttrack/internal/runner"
)

// ServerOptions configures an ops server. Every source is optional; the
// corresponding endpoints degrade gracefully (a /metrics scrape with no
// collector still exposes runner and process sections).
type ServerOptions struct {
	// Collector feeds the sim sections of /metrics and the /live stream.
	Collector *Collector
	// Flight serves /debug/flight forensic dumps.
	Flight *FlightRecorder
	// Runner feeds the sweep-orchestration sections of /metrics.
	Runner *runner.Orchestrator
	// SSEInterval is the /live/stream snapshot period; 0 means 1s.
	SSEInterval time.Duration
}

// Server is the embeddable HTTP ops server: /metrics (Prometheus text
// exposition), /live (SSE-fed heatmap page), /debug/pprof, /debug/vars
// (expvar) and /debug/flight. Create with StartServer, stop with Close.
type Server struct {
	opts ServerOptions
	ln   net.Listener
	srv  *http.Server
}

// StartServer listens on addr (host:port; ":0" picks a free port) and
// serves in a background goroutine until Close.
func StartServer(addr string, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("monitor: listen %s: %w", addr, err)
	}
	s := &Server{opts: opts, ln: ln}
	s.srv = &http.Server{Handler: s.Handler()}
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// URL returns the server's base URL.
func (s *Server) URL() string { return "http://" + s.Addr() }

// Close shuts the server down immediately (in-flight SSE streams end).
func (s *Server) Close() error { return s.srv.Close() }

// Handler builds the ops mux; exposed for embedding into an existing
// server and for httptest-based tests.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/live", s.handleLivePage)
	mux.HandleFunc("/live/stream", s.handleLiveStream)
	mux.HandleFunc("/debug/flight", s.handleFlight)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		http.Redirect(w, r, "/live", http.StatusFound)
	})
	return mux
}

// promWriter emits Prometheus text exposition format (version 0.0.4): a
// HELP/TYPE header per family followed by samples.
type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) family(name, help, typ string) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name, labels string, v float64) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, "%s%s %s\n", name, labels, strconv.FormatFloat(v, 'g', -1, 64))
}

func (p *promWriter) counter(name, help string, v int64) {
	p.family(name, help, "counter")
	p.sample(name, "", float64(v))
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.family(name, help, "gauge")
	p.sample(name, "", v)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := &promWriter{w: w}
	if c := s.opts.Collector; c != nil {
		writeSimMetrics(p, c.Snapshot())
	}
	if o := s.opts.Runner; o != nil {
		writeRunnerMetrics(p, o.Snapshot())
	}
	if f := s.opts.Flight; f != nil {
		rep := f.Report(1)
		p.counter("fasttrack_flight_finished_total", "Packet lifecycles finished in the flight recorder.", rep.Finished)
		p.gauge("fasttrack_flight_live", "Packet lifecycles currently tracked in flight.", float64(rep.Live))
		p.counter("fasttrack_flight_evicted_total", "Finished lifecycles evicted from the bounded worst buffer.", rep.Evicted)
	}
}

func writeSimMetrics(p *promWriter, s Snapshot) {
	p.counter("fasttrack_sim_cycles_total", "Simulated cycles.", s.Cycles)
	p.gauge("fasttrack_sim_cycles_per_second", "Mean simulation speed since the first event.", s.CyclesPerSec())
	p.counter("fasttrack_sim_packets_offered_total", "Injection offers presented (accepted + refused).", s.Injected+s.Stalls)
	p.counter("fasttrack_sim_packets_injected_total", "Offers accepted into the network.", s.Injected)
	p.counter("fasttrack_sim_injection_stalls_total", "Offers refused (per PE per cycle).", s.Stalls)
	p.counter("fasttrack_sim_packets_delivered_total", "Packets delivered to clients.", s.Delivered)
	p.counter("fasttrack_sim_packets_dropped_total", "Packets destroyed by faults or abandoned by retry budget.", s.Drops)
	p.counter("fasttrack_sim_retransmits_total", "Retransmit copies queued by the resilience layer.", s.Retrans)
	p.gauge("fasttrack_sim_packets_in_flight", "Packets inside the network now.", float64(s.InFlight))

	p.family("fasttrack_sim_hops_total", "Wire traversals by link class.", "counter")
	p.sample("fasttrack_sim_hops_total", `{wire="local"}`, float64(s.HopsLocal))
	p.sample("fasttrack_sim_hops_total", `{wire="express"}`, float64(s.HopsExpress))
	p.family("fasttrack_sim_deflections_total", "True deflections by the wire class of the deflected input.", "counter")
	p.sample("fasttrack_sim_deflections_total", `{wire="local"}`, float64(s.DeflectLocal))
	p.sample("fasttrack_sim_deflections_total", `{wire="express"}`, float64(s.DeflectExpress))
	p.counter("fasttrack_sim_express_denied_total", "Packets denied an express resource (fell back to a short wire).", s.Denied)

	p.family("fasttrack_sim_latency_cycles", "Cumulative delivery-latency quantiles in cycles.", "gauge")
	p.sample("fasttrack_sim_latency_cycles", `{quantile="0.5"}`, float64(s.P50))
	p.sample("fasttrack_sim_latency_cycles", `{quantile="0.99"}`, float64(s.P99))
	p.gauge("fasttrack_sim_latency_mean_cycles", "Cumulative mean delivery latency in cycles.", s.MeanLatency())
}

func writeRunnerMetrics(p *promWriter, s runner.Snapshot) {
	p.counter("fasttrack_runner_jobs_executed_total", "Sweep jobs computed fresh.", s.Executed)
	p.counter("fasttrack_runner_jobs_cached_total", "Sweep jobs answered from the result cache.", s.CacheHits)
	p.counter("fasttrack_runner_jobs_failed_total", "Sweep jobs that returned an error.", s.Failed)
	ratio := 0.0
	if total := s.Executed + s.CacheHits; total > 0 {
		ratio = float64(s.CacheHits) / float64(total)
	}
	p.gauge("fasttrack_runner_cache_hit_ratio", "Cache hits over all completed jobs.", ratio)
	p.gauge("fasttrack_runner_workers_active", "Jobs running right now.", float64(s.Active))
	p.gauge("fasttrack_runner_workers", "Worker pool size.", float64(s.Workers))
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	if s.opts.Flight == nil {
		http.Error(w, "flight recorder not enabled (run with -flight-recorder N)", http.StatusNotFound)
		return
	}
	k := 10
	if q := r.URL.Query().Get("k"); q != "" {
		if v, err := strconv.Atoi(q); err == nil && v > 0 {
			k = v
		}
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	s.opts.Flight.WriteReport(w, k)
}

// liveEvent is one SSE frame: cumulative totals plus rates computed over
// the window since the previous frame.
type liveEvent struct {
	Snapshot
	// CyclesPerSecW etc. are windowed (since the previous frame) rates;
	// Heat/HeatExpress are per-router hops per cycle over the window.
	CyclesPerSecW float64   `json:"cycles_per_sec"`
	ThroughputW   float64   `json:"throughput_per_pe"`
	MeanLatencyW  float64   `json:"mean_latency_w"`
	MeanLatency   float64   `json:"mean_latency"`
	Heat          []float64 `json:"heat"`
	HeatExpress   []float64 `json:"heat_express"`
}

// makeLiveEvent computes the windowed view between two snapshots.
func makeLiveEvent(prev, cur Snapshot) liveEvent {
	ev := liveEvent{Snapshot: cur, MeanLatency: cur.MeanLatency()}
	dCycles := cur.Cycles - prev.Cycles
	dWall := cur.WallMS - prev.WallMS
	if dWall > 0 {
		ev.CyclesPerSecW = float64(dCycles) / (float64(dWall) / 1000)
	}
	ev.Heat = make([]float64, len(cur.LinkLocal))
	ev.HeatExpress = make([]float64, len(cur.LinkExpress))
	if dCycles > 0 {
		numPE := cur.W * cur.H
		ev.ThroughputW = float64(cur.Delivered-prev.Delivered) / float64(dCycles) / float64(numPE)
		// prev may be the zero Snapshot on the first frame (no link slices).
		at := func(s []int64, i int) int64 {
			if i < len(s) {
				return s[i]
			}
			return 0
		}
		for i := range ev.Heat {
			local := cur.LinkLocal[i] - at(prev.LinkLocal, i)
			express := cur.LinkExpress[i] - at(prev.LinkExpress, i)
			ev.Heat[i] = float64(local+express) / float64(dCycles)
			ev.HeatExpress[i] = float64(express) / float64(dCycles)
		}
	}
	if d := cur.Delivered - prev.Delivered; d > 0 {
		ev.MeanLatencyW = float64(cur.LatSum-prev.LatSum) / float64(d)
	}
	return ev
}

func (s *Server) handleLiveStream(w http.ResponseWriter, r *http.Request) {
	if s.opts.Collector == nil {
		http.Error(w, "no collector attached", http.StatusNotFound)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	interval := s.opts.SSEInterval
	if interval <= 0 {
		interval = time.Second
	}
	var prev Snapshot
	send := func() bool {
		cur := s.opts.Collector.Snapshot()
		b, err := json.Marshal(makeLiveEvent(prev, cur))
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", b); err != nil {
			return false
		}
		fl.Flush()
		prev = cur
		return true
	}
	if !send() {
		return
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-t.C:
			if !send() {
				return
			}
		}
	}
}

func (s *Server) handleLivePage(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	io.WriteString(w, liveHTML)
}
