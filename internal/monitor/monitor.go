// Package monitor is the live observability subsystem: where
// internal/telemetry records what happened for post-hoc analysis (CSV,
// JSONL, Chrome traces), monitor answers "what is happening right now" and
// "why was that run pathological" while the simulator is still running.
//
// It has three parts:
//
//   - Collector: a concurrency-safe telemetry.Observer that maintains
//     atomic counters (cycles, offered/accepted/delivered, in-flight,
//     deflections split by wire class, per-router link hops, latency
//     quantiles) readable from other goroutines at any instant.
//   - Server: an embeddable HTTP ops server exposing the Collector as
//     Prometheus text on /metrics, Go runtime internals on /debug/pprof and
//     /debug/vars, a packet-forensics dump on /debug/flight, and /live — a
//     self-contained HTML page fed by a Server-Sent-Events stream that
//     renders a live NxN link-utilization heatmap with throughput and
//     latency sparklines.
//   - FlightRecorder: a bounded per-packet lifecycle recorder whose report
//     names the worst packets (full hop history) and the routers that
//     deflected them — the forensic layer behind the starvation watchdog.
//
// Everything here is opt-in: a run without -http/-flight-recorder attaches
// no observer and pays nothing (the single nil check per emission site that
// BenchmarkSimSaturationNopObserver budgets).
package monitor

import (
	"sync"
	"sync/atomic"
	"time"

	"fasttrack/internal/noc"
	"fasttrack/internal/stats"
)

// Collector is a telemetry.Observer whose state can be read concurrently
// while the simulation goroutine is writing it: scalar counters are
// atomics, per-router link counters are an atomic array, and the latency
// histogram (for p50/p99) sits behind a mutex taken only on delivery.
// It deliberately keeps no per-packet state, so it is safe to leave
// attached for arbitrarily long runs.
type Collector struct {
	w, h int

	// startNS is the wall-clock origin (UnixNano) stamped by the first
	// event; atomic because HTTP goroutines read it mid-run.
	startNS atomic.Int64

	cycles    atomic.Int64
	injected  atomic.Int64
	stalls    atomic.Int64
	delivered atomic.Int64
	drops     atomic.Int64
	retrans   atomic.Int64
	inFlight  atomic.Int64

	deflectLocal   atomic.Int64
	deflectExpress atomic.Int64
	denied         atomic.Int64
	hopsLocal      atomic.Int64
	hopsExpress    atomic.Int64

	// linkLocal/linkExpress[router] count hops leaving that router, by wire
	// class — the live heatmap's raw data.
	linkLocal   []atomic.Int64
	linkExpress []atomic.Int64

	// latSum accumulates delivery latencies in cycles (latencies are integer
	// cycles, so an integer sum is exact).
	latSum atomic.Int64

	mu   sync.Mutex
	hist *stats.Histogram

	done atomic.Bool
}

// collectorHistogramMax matches the engine's default latency histogram
// bound so quantiles agree with sim.Result.
const collectorHistogramMax = 1 << 20

// NewCollector returns a Collector for a w×h network.
func NewCollector(w, h int) *Collector {
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	n := w * h
	return &Collector{
		w: w, h: h,
		linkLocal:   make([]atomic.Int64, n),
		linkExpress: make([]atomic.Int64, n),
		hist:        stats.NewLatencyHistogram(collectorHistogramMax),
	}
}

// Dims returns the network dimensions the collector was built for.
func (c *Collector) Dims() (w, h int) { return c.w, c.h }

// markStarted stamps the wall-clock origin on the first event, so
// cycles-per-second reflects simulation time rather than process lifetime.
func (c *Collector) markStarted() {
	if c.startNS.Load() == 0 {
		c.startNS.CompareAndSwap(0, time.Now().UnixNano())
	}
}

// OnInject implements telemetry.Observer.
func (c *Collector) OnInject(now int64, p *noc.Packet) {
	c.markStarted()
	c.injected.Add(1)
}

// OnInjectStall implements telemetry.Observer.
func (c *Collector) OnInjectStall(now int64, pe int) { c.stalls.Add(1) }

// OnDeliver implements telemetry.Observer.
func (c *Collector) OnDeliver(now int64, p *noc.Packet) {
	lat := now - p.Gen
	c.delivered.Add(1)
	c.latSum.Add(lat)
	c.mu.Lock()
	c.hist.Add(lat)
	c.mu.Unlock()
}

// OnHop implements telemetry.Observer.
func (c *Collector) OnHop(now int64, router int, out noc.Port, p *noc.Packet) {
	c.hopsLocal.Add(1)
	if router >= 0 && router < len(c.linkLocal) {
		c.linkLocal[router].Add(1)
	}
}

// OnExpressHop implements telemetry.Observer.
func (c *Collector) OnExpressHop(now int64, router int, out noc.Port, p *noc.Packet) {
	c.hopsExpress.Add(1)
	if router >= 0 && router < len(c.linkExpress) {
		c.linkExpress[router].Add(1)
	}
}

// OnDeflect implements telemetry.Observer; the split follows the input
// port's wire class (a deflection suffered on the express plane vs a local
// one — the distinction behind the paper's Fig 18 discussion).
func (c *Collector) OnDeflect(now int64, router int, in noc.Port, p *noc.Packet) {
	if in.IsExpress() {
		c.deflectExpress.Add(1)
	} else {
		c.deflectLocal.Add(1)
	}
}

// OnExpressDenied implements telemetry.Observer.
func (c *Collector) OnExpressDenied(now int64, router int, in noc.Port, p *noc.Packet) {
	c.denied.Add(1)
}

// OnDrop implements telemetry.Observer.
func (c *Collector) OnDrop(now int64, p *noc.Packet) { c.drops.Add(1) }

// OnRetransmit implements telemetry.Observer.
func (c *Collector) OnRetransmit(now int64, p *noc.Packet) { c.retrans.Add(1) }

// OnCycleEnd implements telemetry.Observer.
func (c *Collector) OnCycleEnd(now int64, inFlight int) {
	c.markStarted()
	c.cycles.Store(now + 1)
	c.inFlight.Store(int64(inFlight))
}

// MarkDone records that the run has finished; the live page shows it and
// stops expecting progress.
func (c *Collector) MarkDone() { c.done.Store(true) }

// TelemetryKey implements telemetry.Keyer: a Collector's side effects (live
// metrics) must not be skipped by the result cache.
func (c *Collector) TelemetryKey() string { return "monitor" }

// Snapshot is a consistent-enough point-in-time copy of the collector: each
// field is individually atomic (scalars may be skewed by a few in-progress
// events, which is irrelevant at monitoring granularity, and totals are
// exact once the run ends).
type Snapshot struct {
	WallMS    int64 `json:"wall_ms"`
	Cycles    int64 `json:"cycles"`
	Injected  int64 `json:"injected"`
	Stalls    int64 `json:"stalls"`
	Delivered int64 `json:"delivered"`
	Drops     int64 `json:"drops"`
	Retrans   int64 `json:"retransmits"`
	InFlight  int64 `json:"in_flight"`

	DeflectLocal   int64 `json:"deflect_local"`
	DeflectExpress int64 `json:"deflect_express"`
	Denied         int64 `json:"express_denied"`
	HopsLocal      int64 `json:"hops_local"`
	HopsExpress    int64 `json:"hops_express"`

	// LatSum is the cumulative delivery-latency sum in cycles; P50/P99 are
	// cumulative latency quantiles.
	LatSum int64 `json:"lat_sum"`
	P50    int64 `json:"p50"`
	P99    int64 `json:"p99"`

	// LinkLocal/LinkExpress are cumulative per-router hop counts
	// (index y*W+x).
	LinkLocal   []int64 `json:"link_local"`
	LinkExpress []int64 `json:"link_express"`

	W    int  `json:"w"`
	H    int  `json:"h"`
	Done bool `json:"done"`
}

// Snapshot captures the collector's current state.
func (c *Collector) Snapshot() Snapshot {
	s := Snapshot{
		Cycles:    c.cycles.Load(),
		Injected:  c.injected.Load(),
		Stalls:    c.stalls.Load(),
		Delivered: c.delivered.Load(),
		Drops:     c.drops.Load(),
		Retrans:   c.retrans.Load(),
		InFlight:  c.inFlight.Load(),

		DeflectLocal:   c.deflectLocal.Load(),
		DeflectExpress: c.deflectExpress.Load(),
		Denied:         c.denied.Load(),
		HopsLocal:      c.hopsLocal.Load(),
		HopsExpress:    c.hopsExpress.Load(),

		LatSum: c.latSum.Load(),

		LinkLocal:   make([]int64, len(c.linkLocal)),
		LinkExpress: make([]int64, len(c.linkExpress)),

		W: c.w, H: c.h,
		Done: c.done.Load(),
	}
	for i := range c.linkLocal {
		s.LinkLocal[i] = c.linkLocal[i].Load()
		s.LinkExpress[i] = c.linkExpress[i].Load()
	}
	c.mu.Lock()
	s.P50 = c.hist.Quantile(0.50)
	s.P99 = c.hist.Quantile(0.99)
	c.mu.Unlock()
	if ns := c.startNS.Load(); ns != 0 {
		s.WallMS = (time.Now().UnixNano() - ns) / 1e6
	}
	return s
}

// CyclesPerSec is the mean simulation speed since the first event.
func (s Snapshot) CyclesPerSec() float64 {
	if s.WallMS <= 0 {
		return 0
	}
	return float64(s.Cycles) / (float64(s.WallMS) / 1000)
}

// MeanLatency is the cumulative mean delivery latency in cycles.
func (s Snapshot) MeanLatency() float64 {
	if s.Delivered == 0 {
		return 0
	}
	return float64(s.LatSum) / float64(s.Delivered)
}
