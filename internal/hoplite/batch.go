package hoplite

import (
	"fmt"

	"fasttrack/internal/noc"
)

// batchArena carves per-instance arrays out of shared batch-major slabs: one
// backing allocation per element type, with instance i's arrays occupying
// the i-th contiguous region. A nil arena (the per-job path) degrades every
// method to a plain allocation, and an exhausted slab does too — layout is
// an optimization, never a correctness dependency.
type batchArena struct {
	i32 []int32
	pk  []noc.Packet
	u64 []uint64
	sl  []slot
	b   []bool
}

func (a *batchArena) int32s(n int) []int32 {
	if a == nil || len(a.i32) < n {
		return make([]int32, n)
	}
	r := a.i32[:n:n]
	a.i32 = a.i32[n:]
	return r
}

func (a *batchArena) words(n int) []uint64 {
	if a == nil || len(a.u64) < n {
		return make([]uint64, n)
	}
	r := a.u64[:n:n]
	a.u64 = a.u64[n:]
	return r
}

func (a *batchArena) slots(n int) []slot {
	if a == nil || len(a.sl) < n {
		return make([]slot, n)
	}
	r := a.sl[:n:n]
	a.sl = a.sl[n:]
	return r
}

func (a *batchArena) bools(n int) []bool {
	if a == nil || len(a.b) < n {
		return make([]bool, n)
	}
	r := a.b[:n:n]
	a.b = a.b[n:]
	return r
}

// packets returns an empty slice with capacity n carved from the packet
// slab; growing past n falls back to append's reallocation.
func (a *batchArena) packets(n int) []noc.Packet {
	if a == nil || len(a.pk) < n {
		return make([]noc.Packet, 0, n)
	}
	r := a.pk[:0:n]
	a.pk = a.pk[n:]
	return r
}

// Batch is B independent Hoplite instances of one geometry, with the sparse
// hot-path state (register files, packet pools, occupancy bitsets, offer
// and accepted arrays) laid out batch-major in shared slabs. Each instance
// is an ordinary *Network: the lockstep driver steps them with the same
// Step code the per-job path runs, which is what makes batched results
// bit-identical.
type Batch struct {
	w, h  int
	insts []*Network
}

// NewBatch builds b idle w×h instances sharing slab-backed state.
func NewBatch(w, h, b int) (*Batch, error) {
	if b < 1 {
		return nil, fmt.Errorf("hoplite: batch size %d < 1", b)
	}
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("hoplite: dimensions %dx%d too small (need at least 2x2)", w, h)
	}
	n := w * h
	words := (n + 63) / 64
	ar := &batchArena{
		i32: make([]int32, b*4*n),
		u64: make([]uint64, b*2*words), // curBits + sh[0].next
		sl:  make([]slot, b*n),
		b:   make([]bool, b*n),
		pk:  make([]noc.Packet, b*poolBound(w, h)),
	}
	bt := &Batch{w: w, h: h, insts: make([]*Network, b)}
	for i := range bt.insts {
		nw, err := newNet(w, h, ar)
		if err != nil {
			return nil, err
		}
		bt.insts[i] = nw
	}
	return bt, nil
}

// Size returns the instance count.
func (bt *Batch) Size() int { return len(bt.insts) }

// Instance returns the i-th network.
func (bt *Batch) Instance(i int) *Network { return bt.insts[i] }

// Reset idles every instance for the next job, keeping all slabs.
func (bt *Batch) Reset() {
	for _, nw := range bt.insts {
		nw.Reset()
	}
}
