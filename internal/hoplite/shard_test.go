package hoplite_test

import (
	"testing"

	"fasttrack/internal/hoplite"
	"fasttrack/internal/noc"
	"fasttrack/internal/noctest"
)

// TestShardEquivalence is the network-level golden gate: the sharded step
// protocol (real goroutines, one per shard) must be bit-identical to the
// sequential sparse engine in delivered stream, counters, and telemetry
// event order. Run with -race this is also the shard data-race stress.
func TestShardEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name   string
		w, h   int
		rate   float64
		cycles int
		shards []int
	}{
		{"8x8/low", 8, 8, 0.1, 200, []int{2, 4}},
		{"8x8/sat", 8, 8, 0.9, 120, []int{2, 4, 8}},
		{"16x4/odd-shards", 16, 4, 0.5, 150, []int{3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() noc.ShardedNetwork {
				nw, err := hoplite.New(tc.w, tc.h)
				if err != nil {
					t.Fatal(err)
				}
				return nw
			}
			noctest.ShardEquivalence(t, mk, tc.shards, 0xF00D, tc.cycles, tc.rate)
		})
	}
}

// TestConfigureShardsClampsAndResets pins the edge semantics: shard count
// clamps to the row count, and ConfigureShards(1) restores the plain
// sequential engine.
func TestConfigureShardsClampsAndResets(t *testing.T) {
	nw, err := hoplite.New(8, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := nw.ConfigureShards(16)
	if err != nil || got != 4 {
		t.Fatalf("ConfigureShards(16) = %d, %v; want clamp to 4 rows", got, err)
	}
	lo, hi := nw.ShardRange(0)
	if lo != 0 || hi != 8 {
		t.Fatalf("shard 0 range [%d,%d), want [0,8)", lo, hi)
	}
	if got, err := nw.ConfigureShards(1); err != nil || got != 1 {
		t.Fatalf("ConfigureShards(1) = %d, %v", got, err)
	}
	if _, err := nw.ConfigureShards(0); err == nil {
		t.Fatal("ConfigureShards(0) must error")
	}
}
