// Package hoplite implements the baseline Hoplite NoC (Kapre & Gray, FPL
// 2015 / TRETS 2017): a bufferless, deflection-routed 2-D unidirectional
// torus with dimension-ordered (X-then-Y) routing and the HopliteRT static
// turn prioritization the FastTrack paper builds on.
//
// Each router has two network inputs (W from the west neighbour, N from the
// north neighbour), one client injection port (PE), and two outputs (E, S).
// The NoC exit is shared with the S output driver, so a delivery consumes
// the S port for that cycle. Arbitration is static:
//
//	W input wins always (turning W→S traffic preempts N→S traffic),
//	N input is deflected east when W takes the S port,
//	PE injection happens only into an output left idle by network traffic.
//
// This static scheme is livelock-free: a deflected N packet circles its X
// ring exactly once and returns as a W packet, which is never deflected.
package hoplite

import (
	"fmt"

	"fasttrack/internal/noc"
)

// slot is a link register: a packet plus a valid bit.
type slot struct {
	p  noc.Packet
	ok bool
}

// Network is a W×H Hoplite torus. Create with New; the zero value is not
// usable.
type Network struct {
	w, h int

	// Link registers indexed by destination-router index (y*w + x): wIn is
	// what arrives on the W input this cycle, nIn on the N input.
	wIn, nIn []slot
	// Output staging for the current Step.
	eOut, sOut []slot

	offers    []slot
	accepted  []bool
	delivered []noc.Packet
	inFlight  int
	counters  noc.Counters

	// exitGate, when non-nil, is consulted before delivering at PE pe; a
	// false return blocks the exit for this cycle and the packet deflects.
	// Multi-channel wrappers use it to share one client port across
	// channels.
	exitGate func(pe int) bool
}

// SetExitGate installs an exit arbiter; see the exitGate field.
func (nw *Network) SetExitGate(gate func(pe int) bool) { nw.exitGate = gate }

func (nw *Network) canExit(pe int) bool { return nw.exitGate == nil || nw.exitGate(pe) }

// New returns an idle W×H Hoplite network. Both dimensions must be at
// least 2 (a 1-wide ring has no distinct neighbour registers).
func New(w, h int) (*Network, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("hoplite: dimensions %dx%d too small (need at least 2x2)", w, h)
	}
	n := w * h
	return &Network{
		w: w, h: h,
		wIn: make([]slot, n), nIn: make([]slot, n),
		eOut: make([]slot, n), sOut: make([]slot, n),
		offers:   make([]slot, n),
		accepted: make([]bool, n),
	}, nil
}

// Width returns the number of router columns.
func (nw *Network) Width() int { return nw.w }

// Height returns the number of router rows.
func (nw *Network) Height() int { return nw.h }

// NumPEs returns the client count.
func (nw *Network) NumPEs() int { return nw.w * nw.h }

// Offer presents p for injection at PE pe this cycle.
func (nw *Network) Offer(pe int, p noc.Packet) { nw.offers[pe] = slot{p: p, ok: true} }

// Accepted reports whether the offer at pe was injected in the last Step.
func (nw *Network) Accepted(pe int) bool { return nw.accepted[pe] }

// Delivered returns packets delivered in the last Step; the slice is reused.
func (nw *Network) Delivered() []noc.Packet { return nw.delivered }

// InFlight returns the number of packets inside the network.
func (nw *Network) InFlight() int { return nw.inFlight }

// Counters returns the network-wide event counters.
func (nw *Network) Counters() *noc.Counters { return &nw.counters }

// Step advances the network one cycle: every router routes its inputs, then
// the links latch.
func (nw *Network) Step(now int64) {
	nw.delivered = nw.delivered[:0]
	for i := range nw.eOut {
		nw.eOut[i] = slot{}
		nw.sOut[i] = slot{}
	}

	for y := 0; y < nw.h; y++ {
		for x := 0; x < nw.w; x++ {
			nw.route(x, y, now)
		}
	}

	// Latch: outputs become the neighbours' inputs.
	for y := 0; y < nw.h; y++ {
		for x := 0; x < nw.w; x++ {
			i := y*nw.w + x
			e := nw.eOut[i]
			if e.ok {
				e.p.ShortHops++
				nw.counters.ShortTraversals++
			}
			nw.wIn[y*nw.w+(x+1)%nw.w] = e
			s := nw.sOut[i]
			if s.ok {
				s.p.ShortHops++
				nw.counters.ShortTraversals++
			}
			nw.nIn[((y+1)%nw.h)*nw.w+x] = s
		}
	}
}

// route arbitrates one router for the current cycle.
func (nw *Network) route(x, y int, now int64) {
	i := y*nw.w + x
	var eTaken, sTaken bool

	// W input: highest priority, always granted its desired port.
	if in := nw.wIn[i]; in.ok {
		p := in.p
		switch {
		case p.Dst.X == x && p.Dst.Y == y:
			if nw.canExit(i) {
				// Exit shares the S driver.
				sTaken = true
				nw.deliver(p)
			} else {
				// Client port busy (multi-channel sharing): loop the ring.
				p.Deflections++
				nw.counters.MisroutesByInput[noc.PortWSh]++
				nw.eOut[i] = slot{p: p, ok: true}
				eTaken = true
			}
		case p.Dst.X != x:
			nw.eOut[i] = slot{p: p, ok: true}
			eTaken = true
		default:
			nw.sOut[i] = slot{p: p, ok: true}
			sTaken = true
		}
	}

	// N input: wants S (continue down or exit); deflected east if W holds S.
	if in := nw.nIn[i]; in.ok {
		p := in.p
		atDst := p.Dst.X == x && p.Dst.Y == y
		if atDst && !nw.canExit(i) {
			// Exit blocked by the shared client port: take either free
			// ring and come back around.
			p.Deflections++
			nw.counters.MisroutesByInput[noc.PortNSh]++
			if !eTaken {
				nw.eOut[i] = slot{p: p, ok: true}
				eTaken = true
			} else {
				nw.sOut[i] = slot{p: p, ok: true}
				sTaken = true
			}
		} else if !sTaken {
			sTaken = true
			if atDst {
				nw.deliver(p)
			} else {
				nw.sOut[i] = slot{p: p, ok: true}
			}
		} else {
			// Deflect east. E must be free: W consumed exactly one port and
			// it was S. The packet will circle the X ring and return as a W
			// input, which always wins.
			p.Deflections++
			nw.counters.MisroutesByInput[noc.PortNSh]++
			nw.eOut[i] = slot{p: p, ok: true}
			eTaken = true
		}
	}

	// PE injection: lowest priority, only into the packet's DOR-desired
	// port, otherwise the client retries next cycle.
	nw.accepted[i] = false
	if off := nw.offers[i]; off.ok {
		p := off.p
		switch {
		case p.Dst.X != x && !eTaken:
			p.Inject = now
			nw.eOut[i] = slot{p: p, ok: true}
			nw.inFlight++
			nw.accepted[i] = true
		case p.Dst.X == x && p.Dst.Y == y:
			if !sTaken && nw.canExit(i) {
				// Self-addressed packet: delivered through the exit port.
				p.Inject = now
				nw.inFlight++
				nw.deliver(p)
				nw.accepted[i] = true
			} else {
				nw.counters.InjectionStalls++
			}
		case p.Dst.X == x && !sTaken:
			p.Inject = now
			nw.sOut[i] = slot{p: p, ok: true}
			nw.inFlight++
			nw.accepted[i] = true
		default:
			nw.counters.InjectionStalls++
		}
		nw.offers[i] = slot{}
	}
}

func (nw *Network) deliver(p noc.Packet) {
	nw.inFlight--
	nw.counters.Delivered++
	nw.delivered = append(nw.delivered, p)
}
