// Package hoplite implements the baseline Hoplite NoC (Kapre & Gray, FPL
// 2015 / TRETS 2017): a bufferless, deflection-routed 2-D unidirectional
// torus with dimension-ordered (X-then-Y) routing and the HopliteRT static
// turn prioritization the FastTrack paper builds on.
//
// Each router has two network inputs (W from the west neighbour, N from the
// north neighbour), one client injection port (PE), and two outputs (E, S).
// The NoC exit is shared with the S output driver, so a delivery consumes
// the S port for that cycle. Arbitration is static:
//
//	W input wins always (turning W→S traffic preempts N→S traffic),
//	N input is deflected east when W takes the S port,
//	PE injection happens only into an output left idle by network traffic.
//
// This static scheme is livelock-free: a deflected N packet circles its X
// ring exactly once and returns as a W packet, which is never deflected.
package hoplite

import (
	"fmt"
	"math/bits"

	"fasttrack/internal/noc"
	"fasttrack/internal/telemetry"
)

// slot is a link register: a packet plus a valid bit.
type slot struct {
	p  noc.Packet
	ok bool
}

// shardCtx is the per-shard slice of the network's mutable aggregate state.
// The sequential engine is the single-shard special case — sh[0] covers the
// whole fabric — so both paths execute the same routing code. When the
// fabric is sharded (ConfigureShards), each StepShard worker touches only
// its own shardCtx plus link-register elements it is the unique driver of,
// which keeps the parallel step free of shared mutable words.
type shardCtx struct {
	k      int
	lo, hi int // router index range [lo, hi)

	// Masked word range of [lo, hi) for iterating the curBits occupancy set.
	loWord, hiWord int
	loMask, hiMask uint64

	// next collects activity marks for the following cycle. It is full
	// fabric sized: routing in this shard may wake routers across the shard
	// boundary, and those marks land here (the marker's own array) rather
	// than in the target shard's, so no two workers ever share a word.
	// BeginCycle ORs every shard's next into curBits.
	next []uint64

	counters    noc.Counters
	delivered   []noc.Packet
	acceptedPEs []int
	inFlight    int // per-shard delta; can go negative, the sum is real

	// Sharded-pool allocation state: the shard allocates from its arena
	// [cursor, limit) when its free list is empty. freed collects slots
	// recycled this cycle; EndCycle routes each back to the arena owner's
	// free list. The single-shard path uses free directly and grows the
	// pool by append instead of from an arena.
	free   []int32
	freed  []int32
	cursor int32
	limit  int32

	// obs receives this shard's telemetry events during routing; now mirrors
	// the current cycle so forwarding helpers without a now parameter can
	// stamp events. Sequentially this aliases the network observer; sharded
	// stepping installs per-shard buffers via SetShardObservers.
	obs telemetry.Observer
	now int64
}

// mark queues router i for routing on the next Step.
func (sh *shardCtx) mark(i int) { sh.next[i>>6] |= 1 << (uint(i) & 63) }

// Network is a W×H Hoplite torus. Create with New; the zero value is not
// usable.
type Network struct {
	w, h int

	// Link registers indexed by destination-router index (y*w + x): wIn is
	// what arrives on the W input this cycle, nIn on the N input. These
	// full-packet registers belong to the dense reference path; the sparse
	// fast path routes pool indices instead (see wInR below).
	wIn, nIn []slot
	// Output staging for the current Step (dense path).
	eOut, sOut []slot

	// Sparse-path link registers: each register holds an index into pool
	// (-1 when empty) so a hop moves 4 bytes instead of an 80-byte slot.
	// Packets live in pool from injection to delivery and are mutated in
	// place; recycling goes through the per-shard free lists. The registers
	// are double buffered — wInR/nInR are read (and consumed) by the current
	// cycle while wInRN/nInRN collect what latches for the next cycle, so
	// routing writes downstream registers directly with no staging arrays
	// and no separate latch pass. Each link has exactly one driver, so a
	// register element is written at most once per cycle — which is also
	// what makes the sharded step race-free at the boundary rows. Only one
	// representation is ever in use per network instance — SetDense selects
	// before the first Step.
	wInR, nInR   []int32
	wInRN, nInRN []int32
	pool         []noc.Packet

	offers   []slot
	accepted []bool

	// sh holds the per-shard state; len(sh) == 1 until ConfigureShards.
	// shardOf maps a router index to its owning shard, nil when single.
	sh      []shardCtx
	shardOf []int32
	arena   int32 // per-shard arena size when sharded

	// curBits is the occupancy set the current Step iterates: routers that
	// must route — a packet was latched onto one of their inputs, or a
	// client offer is pending. The per-shard next arrays double-buffer it.
	curBits []uint64

	// Merged views for the sharded accessors; unused when single-shard.
	mergedDelivered []noc.Packet
	mergedCounters  noc.Counters

	// dense selects the reference stepping path that clears and routes
	// every router every cycle; see SetDense.
	dense bool

	// obs, when non-nil, receives telemetry events. Every emission site is
	// guarded by a single nil check.
	obs telemetry.Observer

	// exitGate, when non-nil, is consulted before delivering at PE pe; a
	// false return blocks the exit for this cycle and the packet deflects.
	// Multi-channel wrappers use it to share one client port across
	// channels.
	exitGate func(pe int) bool
}

// SetExitGate installs an exit arbiter; see the exitGate field.
func (nw *Network) SetExitGate(gate func(pe int) bool) { nw.exitGate = gate }

// SetObserver attaches a telemetry observer (nil detaches); see the obs
// field. sim.Run attaches Options.Observer through this.
func (nw *Network) SetObserver(o telemetry.Observer) { nw.obs = o }

// SetShardObservers implements telemetry.ShardObservable: obs[k] receives
// the router events StepShard(k) emits. Ignored by sequential stepping.
func (nw *Network) SetShardObservers(obs []telemetry.Observer) {
	for k := range nw.sh {
		if obs == nil || k >= len(obs) {
			nw.sh[k].obs = nil
		} else {
			nw.sh[k].obs = obs[k]
		}
	}
}

func (nw *Network) canExit(pe int) bool { return nw.exitGate == nil || nw.exitGate(pe) }

// New returns an idle W×H Hoplite network. Both dimensions must be at
// least 2 (a 1-wide ring has no distinct neighbour registers).
func New(w, h int) (*Network, error) { return newNet(w, h, nil) }

// newNet is New with an optional batch arena: when ar is non-nil the sparse
// hot-path arrays are carved out of the arena's batch-major slabs instead of
// allocated individually; see batch.go. The dense reference arrays always
// come from plain allocations — batch instances never run the dense path.
func newNet(w, h int, ar *batchArena) (*Network, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("hoplite: dimensions %dx%d too small (need at least 2x2)", w, h)
	}
	n := w * h
	words := (n + 63) / 64
	nw := &Network{
		w: w, h: h,
		wIn: make([]slot, n), nIn: make([]slot, n),
		eOut: make([]slot, n), sOut: make([]slot, n),
		wInR: ar.int32s(n), nInR: ar.int32s(n),
		wInRN: ar.int32s(n), nInRN: ar.int32s(n),
		offers:   ar.slots(n),
		accepted: ar.bools(n),
		curBits:  ar.words(words),
	}
	for i := 0; i < n; i++ {
		nw.wInR[i], nw.nInR[i] = -1, -1
		nw.wInRN[i], nw.nInRN[i] = -1, -1
	}
	nw.pool = ar.packets(poolBound(w, h))
	nw.sh = makeShards(1, w, h, ar)
	return nw, nil
}

// poolBound is the packet-pool occupancy bound for one instance: the
// register population (2n) plus a cycle of fresh injections and
// not-yet-recycled frees — the formula ConfigureShards sizes arenas with.
func poolBound(w, h int) int { return 3*w*h + 64 }

// Reset restores the network to the idle state New leaves it in, keeping
// every backing array (and its capacity) so a recycled instance re-runs a
// job without reallocating. The result of a run on a Reset network is
// bit-identical to a run on a fresh one: the only state that survives is
// slice capacity, which routing never observes.
func (nw *Network) Reset() {
	for i := range nw.wInR {
		nw.wInR[i], nw.nInR[i] = -1, -1
		nw.wInRN[i], nw.nInRN[i] = -1, -1
	}
	clear(nw.wIn)
	clear(nw.nIn)
	clear(nw.eOut)
	clear(nw.sOut)
	clear(nw.offers)
	clear(nw.accepted)
	clear(nw.curBits)
	nw.pool = nw.pool[:0]
	if len(nw.sh) != 1 {
		// A previously sharded instance drops back to the single-shard
		// layout New builds (its pool was arena-partitioned and is gone).
		nw.sh = makeShards(1, nw.w, nw.h, nil)
	} else {
		s0 := &nw.sh[0]
		clear(s0.next)
		s0.counters = noc.Counters{}
		s0.delivered = s0.delivered[:0]
		s0.acceptedPEs = s0.acceptedPEs[:0]
		s0.inFlight = 0
		s0.free = s0.free[:0]
		s0.freed = s0.freed[:0]
		s0.cursor, s0.limit = 0, 0
		s0.obs = nil
		s0.now = 0
	}
	nw.shardOf = nil
	nw.arena = 0
	nw.mergedDelivered = nw.mergedDelivered[:0]
	nw.mergedCounters = noc.Counters{}
	nw.dense = false
	nw.obs = nil
	nw.exitGate = nil
}

// makeShards builds s row-band shard contexts over a w×h fabric: shard k
// owns rows [k*h/s, (k+1)*h/s), i.e. the contiguous router range
// [row*w, endRow*w). Concatenating the shards' outputs in ascending k is
// therefore identical to a row-major scan of the whole fabric. ar is the
// optional batch arena the single-shard bit arrays are carved from.
func makeShards(s, w, h int, ar *batchArena) []shardCtx {
	n := w * h
	words := (n + 63) / 64
	sh := make([]shardCtx, s)
	for k := 0; k < s; k++ {
		lo := (k * h / s) * w
		hi := ((k + 1) * h / s) * w
		c := &sh[k]
		c.k, c.lo, c.hi = k, lo, hi
		c.loWord, c.hiWord = lo>>6, (hi+63)>>6
		c.loMask = ^uint64(0) << (uint(lo) & 63)
		c.hiMask = ^uint64(0)
		if r := uint(hi) & 63; r != 0 {
			c.hiMask = (uint64(1) << r) - 1
		}
		c.next = ar.words(words)
	}
	return sh
}

// ConfigureShards implements noc.ShardedNetwork: partition the fabric into
// s row-band shards. s is clamped to the row count; 1 restores sequential
// stepping. The network must be idle (configure before the first Step); the
// dense reference path and exit-gated (multi-channel) instances cannot
// shard.
func (nw *Network) ConfigureShards(s int) (int, error) {
	if s < 1 {
		return 0, fmt.Errorf("hoplite: shard count %d < 1", s)
	}
	if nw.dense {
		return 0, fmt.Errorf("hoplite: dense reference path cannot shard")
	}
	if nw.exitGate != nil {
		return 0, fmt.Errorf("hoplite: exit-gated (multi-channel) network cannot shard")
	}
	if nw.InFlight() != 0 {
		return 0, fmt.Errorf("hoplite: cannot reconfigure shards with %d packets in flight", nw.InFlight())
	}
	if s > nw.h {
		s = nw.h
	}
	n := nw.w * nw.h
	nw.sh = makeShards(s, nw.w, nw.h, nil)
	if s == 1 {
		nw.shardOf = nil
		nw.arena = 0
		nw.pool = nil
		return 1, nil
	}
	nw.shardOf = make([]int32, n)
	for k := range nw.sh {
		for i := nw.sh[k].lo; i < nw.sh[k].hi; i++ {
			nw.shardOf[i] = int32(k)
		}
	}
	// Arena sizing: at any instant the slots in use by one owner are
	// bounded by the fabric's register population (2n) plus one cycle of
	// fresh injections and not-yet-recycled frees (≤ n), so 3n+64 per shard
	// can never overflow. The arenas are allocated virtually and touched
	// lazily — the free-list-first allocator keeps the hot region compact.
	nw.arena = int32(3*n + 64)
	nw.pool = make([]noc.Packet, int(nw.arena)*s)
	for k := range nw.sh {
		nw.sh[k].cursor = int32(k) * nw.arena
		nw.sh[k].limit = nw.sh[k].cursor + nw.arena
	}
	return s, nil
}

// ShardRange implements noc.ShardedNetwork.
func (nw *Network) ShardRange(k int) (lo, hi int) { return nw.sh[k].lo, nw.sh[k].hi }

// alloc places p in the packet pool and returns its index, recycling a
// freed entry when one is available (LIFO, so the order is deterministic).
// Sharded instances fall back to the shard's private arena; the sequential
// path grows the pool by append.
func (nw *Network) alloc(sh *shardCtx, p noc.Packet) int32 {
	if n := len(sh.free); n > 0 {
		r := sh.free[n-1]
		sh.free = sh.free[:n-1]
		nw.pool[r] = p
		return r
	}
	if nw.shardOf != nil {
		if sh.cursor == sh.limit {
			panic("hoplite: shard arena overflow")
		}
		r := sh.cursor
		sh.cursor++
		nw.pool[r] = p
		return r
	}
	nw.pool = append(nw.pool, p)
	return int32(len(nw.pool) - 1)
}

// SetDense selects the reference stepping path: clear and route all N²
// routers every cycle instead of only occupied ones. The two paths are
// bit-exact (the golden equivalence tests compare them); the dense path
// exists as the straightforward baseline for those tests and for
// benchmarking the sparse path's speedup. Select before the first Step.
func (nw *Network) SetDense(d bool) { nw.dense = d }

// Width returns the number of router columns.
func (nw *Network) Width() int { return nw.w }

// Height returns the number of router rows.
func (nw *Network) Height() int { return nw.h }

// NumPEs returns the client count.
func (nw *Network) NumPEs() int { return nw.w * nw.h }

// Offer presents p for injection at PE pe this cycle. Concurrent offers are
// allowed for PEs owned by different shards: the activity mark lands in the
// owning shard's next array and the offer slot itself is per-PE.
func (nw *Network) Offer(pe int, p noc.Packet) {
	nw.offers[pe] = slot{p: p, ok: true}
	sh := &nw.sh[0]
	if nw.shardOf != nil {
		sh = &nw.sh[nw.shardOf[pe]]
	}
	sh.mark(pe)
}

// Accepted reports whether the offer at pe was injected in the last Step.
func (nw *Network) Accepted(pe int) bool { return nw.accepted[pe] }

// Delivered returns packets delivered in the last Step; the slice is reused.
func (nw *Network) Delivered() []noc.Packet {
	if nw.shardOf == nil {
		return nw.sh[0].delivered
	}
	return nw.mergedDelivered
}

// InFlight returns the number of packets inside the network.
func (nw *Network) InFlight() int {
	if nw.shardOf == nil {
		return nw.sh[0].inFlight
	}
	t := 0
	for k := range nw.sh {
		t += nw.sh[k].inFlight
	}
	return t
}

// Counters returns the network-wide event counters. Sharded instances
// merge the per-shard counters on each call; the merge is pure integer
// addition, so the totals are identical to sequential stepping.
func (nw *Network) Counters() *noc.Counters {
	if nw.shardOf == nil {
		return &nw.sh[0].counters
	}
	nw.mergedCounters = noc.Counters{}
	for k := range nw.sh {
		nw.mergedCounters.Add(&nw.sh[k].counters)
	}
	return &nw.mergedCounters
}

// Step advances the network one cycle: every occupied router routes its
// inputs, then the links latch. Only routers holding an in-flight input or
// a pending offer are visited; idle routers cost nothing. The visit order
// is ascending router index — identical to the dense path's row-major scan
// — so delivery order, and with it every downstream floating-point
// accumulation, is bit-exact with SetDense(true).
func (nw *Network) Step(now int64) {
	if nw.dense {
		nw.stepDense(now)
		return
	}
	if nw.shardOf != nil {
		// A sharded instance driven through the sequential entry point runs
		// the same three-phase protocol on one goroutine.
		nw.BeginCycle(now)
		for k := range nw.sh {
			nw.StepShard(k, now)
		}
		nw.EndCycle(now)
		return
	}
	s0 := &nw.sh[0]
	s0.now = now
	s0.obs = nw.obs
	s0.delivered = s0.delivered[:0]
	for _, pe := range s0.acceptedPEs {
		nw.accepted[pe] = false
	}
	s0.acceptedPEs = s0.acceptedPEs[:0]

	// Swap the active set: latching below (and Offer calls before the next
	// Step) accumulate the next cycle's set in s0.next.
	nw.curBits, s0.next = s0.next, nw.curBits
	for w := range s0.next {
		s0.next[w] = 0
	}

	for wd, b := range nw.curBits {
		for b != 0 {
			i := wd<<6 + bits.TrailingZeros64(b)
			b &= b - 1
			nw.routeSparse(s0, i, i%nw.w, i/nw.w, now)
		}
	}

	// Latch: the next-cycle registers routeSparse just filled become the
	// current registers. The consumed buffer is all -1 again (inputs are
	// cleared as they are read), so it can serve as next cycle's write side.
	nw.wInR, nw.wInRN = nw.wInRN, nw.wInR
	nw.nInR, nw.nInRN = nw.nInRN, nw.nInR
}

// BeginCycle implements noc.ShardedNetwork: publish every shard's pending
// activity marks into the cycle's working set. Coordinator only.
func (nw *Network) BeginCycle(now int64) {
	for w := range nw.curBits {
		nw.curBits[w] = 0
	}
	for k := range nw.sh {
		next := nw.sh[k].next
		for w, b := range next {
			if b != 0 {
				nw.curBits[w] |= b
				next[w] = 0
			}
		}
	}
}

// StepShard implements noc.ShardedNetwork: route the occupied routers in
// shard k's range. Calls for distinct k may run concurrently — all writes
// go to shard-private state or to link-register elements this shard is the
// unique driver of.
func (nw *Network) StepShard(k int, now int64) {
	sh := &nw.sh[k]
	sh.now = now
	sh.delivered = sh.delivered[:0]
	for _, pe := range sh.acceptedPEs {
		nw.accepted[pe] = false
	}
	sh.acceptedPEs = sh.acceptedPEs[:0]

	for wd := sh.loWord; wd < sh.hiWord; wd++ {
		b := nw.curBits[wd]
		if wd == sh.loWord {
			b &= sh.loMask
		}
		if wd == sh.hiWord-1 {
			b &= sh.hiMask
		}
		for b != 0 {
			i := wd<<6 + bits.TrailingZeros64(b)
			b &= b - 1
			nw.routeSparse(sh, i, i%nw.w, i/nw.w, now)
		}
	}
}

// EndCycle implements noc.ShardedNetwork: latch the link registers, merge
// per-shard deliveries in ascending shard order (= row-major = the
// sequential delivery order), and route recycled pool slots back to their
// owning arenas. Coordinator only.
func (nw *Network) EndCycle(now int64) {
	nw.wInR, nw.wInRN = nw.wInRN, nw.wInR
	nw.nInR, nw.nInRN = nw.nInRN, nw.nInR

	merged := nw.mergedDelivered[:0]
	for k := range nw.sh {
		merged = append(merged, nw.sh[k].delivered...)
	}
	nw.mergedDelivered = merged

	for k := range nw.sh {
		sh := &nw.sh[k]
		for _, r := range sh.freed {
			owner := &nw.sh[r/nw.arena]
			owner.free = append(owner.free, r)
		}
		sh.freed = sh.freed[:0]
	}
}

// fwdE and fwdS latch pool index r onto the downstream router's next-cycle
// input register. The hop accounting the dense path does in its latch pass
// happens here, at forward time — the totals and per-packet values at
// delivery are identical.
func (nw *Network) fwdE(sh *shardCtx, r int32, x, y int) {
	nw.pool[r].ShortHops++
	sh.counters.ShortTraversals++
	j := y*nw.w + (x+1)%nw.w
	nw.wInRN[j] = r
	sh.mark(j)
}

func (nw *Network) fwdS(sh *shardCtx, r int32, x, y int) {
	nw.pool[r].ShortHops++
	sh.counters.ShortTraversals++
	j := ((y+1)%nw.h)*nw.w + x
	nw.nInRN[j] = r
	sh.mark(j)
}

// obsHop reports the short-hop grant for pool slot r at router i. It is a
// separate method, invoked behind the caller's nil check, so fwdE/fwdS stay
// small enough to inline — the forwarders are the hottest functions in the
// sparse path and must not pay for telemetry when it is off.
func (nw *Network) obsHop(sh *shardCtx, i int, out noc.Port, r int32) {
	sh.obs.OnHop(sh.now, i, out, &nw.pool[r])
}

// routeSparse is the fast-path arbiter: identical decisions to route, but
// over pool indices — staying on the ring costs an int32 move instead of an
// 80-byte slot copy — and with the latch fused in: granting an output
// writes the downstream next-cycle register directly.
func (nw *Network) routeSparse(sh *shardCtx, i, x, y int, now int64) {
	var eTaken, sTaken bool

	// Inputs are consumed (and cleared, so a router that goes idle does not
	// replay stale packets when it reactivates) as they are read.
	if r := nw.wInR[i]; r >= 0 {
		nw.wInR[i] = -1
		p := &nw.pool[r]
		switch {
		case p.Dst.X == x && p.Dst.Y == y:
			if nw.canExit(i) {
				sTaken = true
				nw.deliverIdx(sh, r)
			} else {
				p.Deflections++
				sh.counters.MisroutesByInput[noc.PortWSh]++
				if sh.obs != nil {
					sh.obs.OnDeflect(sh.now, i, noc.PortWSh, p)
				}
				nw.fwdE(sh, r, x, y)
				if sh.obs != nil {
					nw.obsHop(sh, i, noc.PortESh, r)
				}
				eTaken = true
			}
		case p.Dst.X != x:
			nw.fwdE(sh, r, x, y)
			if sh.obs != nil {
				nw.obsHop(sh, i, noc.PortESh, r)
			}
			eTaken = true
		default:
			nw.fwdS(sh, r, x, y)
			if sh.obs != nil {
				nw.obsHop(sh, i, noc.PortSSh, r)
			}
			sTaken = true
		}
	}

	if r := nw.nInR[i]; r >= 0 {
		nw.nInR[i] = -1
		p := &nw.pool[r]
		atDst := p.Dst.X == x && p.Dst.Y == y
		if atDst && !nw.canExit(i) {
			p.Deflections++
			sh.counters.MisroutesByInput[noc.PortNSh]++
			if sh.obs != nil {
				sh.obs.OnDeflect(sh.now, i, noc.PortNSh, p)
			}
			if !eTaken {
				nw.fwdE(sh, r, x, y)
				if sh.obs != nil {
					nw.obsHop(sh, i, noc.PortESh, r)
				}
				eTaken = true
			} else {
				nw.fwdS(sh, r, x, y)
				if sh.obs != nil {
					nw.obsHop(sh, i, noc.PortSSh, r)
				}
				sTaken = true
			}
		} else if !sTaken {
			sTaken = true
			if atDst {
				nw.deliverIdx(sh, r)
			} else {
				nw.fwdS(sh, r, x, y)
				if sh.obs != nil {
					nw.obsHop(sh, i, noc.PortSSh, r)
				}
			}
		} else {
			p.Deflections++
			sh.counters.MisroutesByInput[noc.PortNSh]++
			if sh.obs != nil {
				sh.obs.OnDeflect(sh.now, i, noc.PortNSh, p)
			}
			nw.fwdE(sh, r, x, y)
			if sh.obs != nil {
				nw.obsHop(sh, i, noc.PortESh, r)
			}
			eTaken = true
		}
	}

	// accepted[i] is already false here: the shard cleared every flag it
	// set last cycle via acceptedPEs before routing started.
	if off := &nw.offers[i]; off.ok {
		switch {
		case off.p.Dst.X != x && !eTaken:
			r := nw.alloc(sh, off.p)
			nw.pool[r].Inject = now
			nw.fwdE(sh, r, x, y)
			if sh.obs != nil {
				nw.obsHop(sh, i, noc.PortESh, r)
			}
			sh.inFlight++
			nw.accepted[i] = true
		case off.p.Dst.X == x && off.p.Dst.Y == y:
			if !sTaken && nw.canExit(i) {
				p := off.p
				p.Inject = now
				sh.inFlight++
				nw.deliver(sh, p)
				nw.accepted[i] = true
			} else {
				sh.counters.InjectionStalls++
			}
		case off.p.Dst.X == x && !sTaken:
			r := nw.alloc(sh, off.p)
			nw.pool[r].Inject = now
			nw.fwdS(sh, r, x, y)
			if sh.obs != nil {
				nw.obsHop(sh, i, noc.PortSSh, r)
			}
			sh.inFlight++
			nw.accepted[i] = true
		default:
			sh.counters.InjectionStalls++
		}
		off.ok = false
		if nw.accepted[i] {
			sh.acceptedPEs = append(sh.acceptedPEs, i)
		}
	}
}

// deliverIdx hands the pooled packet at r to the client and recycles r:
// directly onto the free list when sequential, via the freed staging list
// (EndCycle routes it to the owning arena) when sharded.
func (nw *Network) deliverIdx(sh *shardCtx, r int32) {
	nw.deliver(sh, nw.pool[r])
	if nw.shardOf != nil {
		sh.freed = append(sh.freed, r)
	} else {
		sh.free = append(sh.free, r)
	}
}

// stepDense is the reference path: clear all staging, route all routers,
// latch all links.
func (nw *Network) stepDense(now int64) {
	s0 := &nw.sh[0]
	s0.now = now
	s0.obs = nw.obs
	s0.delivered = s0.delivered[:0]
	s0.acceptedPEs = s0.acceptedPEs[:0]
	for w := range s0.next {
		s0.next[w] = 0
	}
	for i := range nw.eOut {
		nw.eOut[i] = slot{}
		nw.sOut[i] = slot{}
	}

	for y := 0; y < nw.h; y++ {
		for x := 0; x < nw.w; x++ {
			nw.route(x, y, now)
		}
	}

	// Latch: outputs become the neighbours' inputs.
	for y := 0; y < nw.h; y++ {
		for x := 0; x < nw.w; x++ {
			i := y*nw.w + x
			e := nw.eOut[i]
			if e.ok {
				e.p.ShortHops++
				s0.counters.ShortTraversals++
				if nw.obs != nil {
					nw.obs.OnHop(now, i, noc.PortESh, &e.p)
				}
			}
			nw.wIn[y*nw.w+(x+1)%nw.w] = e
			s := nw.sOut[i]
			if s.ok {
				s.p.ShortHops++
				s0.counters.ShortTraversals++
				if nw.obs != nil {
					nw.obs.OnHop(now, i, noc.PortSSh, &s.p)
				}
			}
			nw.nIn[((y+1)%nw.h)*nw.w+x] = s
		}
	}
}

// route arbitrates one router for the current cycle on the dense reference
// path, moving whole packets between the full-slot link registers. The
// sparse path's routeSparse makes the same decisions over pool indices.
func (nw *Network) route(x, y int, now int64) {
	s0 := &nw.sh[0]
	i := y*nw.w + x
	var eTaken, sTaken bool

	// W input: highest priority, always granted its desired port.
	if in := &nw.wIn[i]; in.ok {
		p := in.p
		switch {
		case p.Dst.X == x && p.Dst.Y == y:
			if nw.canExit(i) {
				// Exit shares the S driver.
				sTaken = true
				nw.deliver(s0, p)
			} else {
				// Client port busy (multi-channel sharing): loop the ring.
				p.Deflections++
				s0.counters.MisroutesByInput[noc.PortWSh]++
				if nw.obs != nil {
					nw.obs.OnDeflect(now, i, noc.PortWSh, &p)
				}
				nw.eOut[i] = slot{p: p, ok: true}
				eTaken = true
			}
		case p.Dst.X != x:
			nw.eOut[i] = slot{p: p, ok: true}
			eTaken = true
		default:
			nw.sOut[i] = slot{p: p, ok: true}
			sTaken = true
		}
	}

	// N input: wants S (continue down or exit); deflected east if W holds S.
	if in := &nw.nIn[i]; in.ok {
		p := in.p
		atDst := p.Dst.X == x && p.Dst.Y == y
		if atDst && !nw.canExit(i) {
			// Exit blocked by the shared client port: take either free
			// ring and come back around.
			p.Deflections++
			s0.counters.MisroutesByInput[noc.PortNSh]++
			if nw.obs != nil {
				nw.obs.OnDeflect(now, i, noc.PortNSh, &p)
			}
			if !eTaken {
				nw.eOut[i] = slot{p: p, ok: true}
				eTaken = true
			} else {
				nw.sOut[i] = slot{p: p, ok: true}
				sTaken = true
			}
		} else if !sTaken {
			sTaken = true
			if atDst {
				nw.deliver(s0, p)
			} else {
				nw.sOut[i] = slot{p: p, ok: true}
			}
		} else {
			// Deflect east. E must be free: W consumed exactly one port and
			// it was S. The packet will circle the X ring and return as a W
			// input, which always wins.
			p.Deflections++
			s0.counters.MisroutesByInput[noc.PortNSh]++
			if nw.obs != nil {
				nw.obs.OnDeflect(now, i, noc.PortNSh, &p)
			}
			nw.eOut[i] = slot{p: p, ok: true}
			eTaken = true
		}
	}

	// PE injection: lowest priority, only into the packet's DOR-desired
	// port, otherwise the client retries next cycle.
	nw.accepted[i] = false
	if off := &nw.offers[i]; off.ok {
		p := off.p
		switch {
		case p.Dst.X != x && !eTaken:
			p.Inject = now
			nw.eOut[i] = slot{p: p, ok: true}
			s0.inFlight++
			nw.accepted[i] = true
		case p.Dst.X == x && p.Dst.Y == y:
			if !sTaken && nw.canExit(i) {
				// Self-addressed packet: delivered through the exit port.
				p.Inject = now
				s0.inFlight++
				nw.deliver(s0, p)
				nw.accepted[i] = true
			} else {
				s0.counters.InjectionStalls++
			}
		case p.Dst.X == x && !sTaken:
			p.Inject = now
			nw.sOut[i] = slot{p: p, ok: true}
			s0.inFlight++
			nw.accepted[i] = true
		default:
			s0.counters.InjectionStalls++
		}
		off.ok = false
		if nw.accepted[i] {
			s0.acceptedPEs = append(s0.acceptedPEs, i)
		}
	}
}

func (nw *Network) deliver(sh *shardCtx, p noc.Packet) {
	sh.inFlight--
	sh.counters.Delivered++
	sh.delivered = append(sh.delivered, p)
}
