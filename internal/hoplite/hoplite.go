// Package hoplite implements the baseline Hoplite NoC (Kapre & Gray, FPL
// 2015 / TRETS 2017): a bufferless, deflection-routed 2-D unidirectional
// torus with dimension-ordered (X-then-Y) routing and the HopliteRT static
// turn prioritization the FastTrack paper builds on.
//
// Each router has two network inputs (W from the west neighbour, N from the
// north neighbour), one client injection port (PE), and two outputs (E, S).
// The NoC exit is shared with the S output driver, so a delivery consumes
// the S port for that cycle. Arbitration is static:
//
//	W input wins always (turning W→S traffic preempts N→S traffic),
//	N input is deflected east when W takes the S port,
//	PE injection happens only into an output left idle by network traffic.
//
// This static scheme is livelock-free: a deflected N packet circles its X
// ring exactly once and returns as a W packet, which is never deflected.
package hoplite

import (
	"fmt"
	"math/bits"

	"fasttrack/internal/noc"
	"fasttrack/internal/telemetry"
)

// slot is a link register: a packet plus a valid bit.
type slot struct {
	p  noc.Packet
	ok bool
}

// Network is a W×H Hoplite torus. Create with New; the zero value is not
// usable.
type Network struct {
	w, h int

	// Link registers indexed by destination-router index (y*w + x): wIn is
	// what arrives on the W input this cycle, nIn on the N input. These
	// full-packet registers belong to the dense reference path; the sparse
	// fast path routes pool indices instead (see wInR below).
	wIn, nIn []slot
	// Output staging for the current Step (dense path).
	eOut, sOut []slot

	// Sparse-path link registers: each register holds an index into pool
	// (-1 when empty) so a hop moves 4 bytes instead of an 80-byte slot.
	// Packets live in pool from injection to delivery and are mutated in
	// place; free is the LIFO recycle list. The registers are double
	// buffered — wInR/nInR are read (and consumed) by the current cycle
	// while wInRN/nInRN collect what latches for the next cycle, so routing
	// writes downstream registers directly with no staging arrays and no
	// separate latch pass. Each link has exactly one driver, so a register
	// is written at most once per cycle. Only one representation is ever in
	// use per network instance — SetDense selects before the first Step.
	wInR, nInR   []int32
	wInRN, nInRN []int32
	pool         []noc.Packet
	free         []int32

	offers    []slot
	accepted  []bool
	delivered []noc.Packet
	inFlight  int
	counters  noc.Counters

	// Occupancy tracking for the sparse fast path. activeBits marks routers
	// that must route next Step — a packet was latched onto one of their
	// inputs, or a client offer is pending. curBits is the double buffer the
	// current Step iterates while latching marks the next cycle's set.
	// acceptedPEs lists the routers whose accepted flag is set, so clearing
	// it does not touch all N² entries.
	activeBits, curBits []uint64
	acceptedPEs         []int

	// dense selects the reference stepping path that clears and routes
	// every router every cycle; see SetDense.
	dense bool

	// obs, when non-nil, receives telemetry events; now mirrors the current
	// Step's cycle so forwarding helpers without a now parameter can stamp
	// events. Every emission site is guarded by a single nil check.
	obs telemetry.Observer
	now int64

	// exitGate, when non-nil, is consulted before delivering at PE pe; a
	// false return blocks the exit for this cycle and the packet deflects.
	// Multi-channel wrappers use it to share one client port across
	// channels.
	exitGate func(pe int) bool
}

// SetExitGate installs an exit arbiter; see the exitGate field.
func (nw *Network) SetExitGate(gate func(pe int) bool) { nw.exitGate = gate }

// SetObserver attaches a telemetry observer (nil detaches); see the obs
// field. sim.Run attaches Options.Observer through this.
func (nw *Network) SetObserver(o telemetry.Observer) { nw.obs = o }

func (nw *Network) canExit(pe int) bool { return nw.exitGate == nil || nw.exitGate(pe) }

// New returns an idle W×H Hoplite network. Both dimensions must be at
// least 2 (a 1-wide ring has no distinct neighbour registers).
func New(w, h int) (*Network, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("hoplite: dimensions %dx%d too small (need at least 2x2)", w, h)
	}
	n := w * h
	words := (n + 63) / 64
	nw := &Network{
		w: w, h: h,
		wIn: make([]slot, n), nIn: make([]slot, n),
		eOut: make([]slot, n), sOut: make([]slot, n),
		wInR: make([]int32, n), nInR: make([]int32, n),
		wInRN: make([]int32, n), nInRN: make([]int32, n),
		offers:     make([]slot, n),
		accepted:   make([]bool, n),
		activeBits: make([]uint64, words),
		curBits:    make([]uint64, words),
	}
	for i := 0; i < n; i++ {
		nw.wInR[i], nw.nInR[i] = -1, -1
		nw.wInRN[i], nw.nInRN[i] = -1, -1
	}
	return nw, nil
}

// alloc places p in the packet pool and returns its index, recycling a
// freed entry when one is available (LIFO, so the order is deterministic).
func (nw *Network) alloc(p noc.Packet) int32 {
	if n := len(nw.free); n > 0 {
		r := nw.free[n-1]
		nw.free = nw.free[:n-1]
		nw.pool[r] = p
		return r
	}
	nw.pool = append(nw.pool, p)
	return int32(len(nw.pool) - 1)
}

// SetDense selects the reference stepping path: clear and route all N²
// routers every cycle instead of only occupied ones. The two paths are
// bit-exact (the golden equivalence tests compare them); the dense path
// exists as the straightforward baseline for those tests and for
// benchmarking the sparse path's speedup. Select before the first Step.
func (nw *Network) SetDense(d bool) { nw.dense = d }

// markActive queues router i for routing on the next Step.
func (nw *Network) markActive(i int) { nw.activeBits[i>>6] |= 1 << (uint(i) & 63) }

// Width returns the number of router columns.
func (nw *Network) Width() int { return nw.w }

// Height returns the number of router rows.
func (nw *Network) Height() int { return nw.h }

// NumPEs returns the client count.
func (nw *Network) NumPEs() int { return nw.w * nw.h }

// Offer presents p for injection at PE pe this cycle.
func (nw *Network) Offer(pe int, p noc.Packet) {
	nw.offers[pe] = slot{p: p, ok: true}
	nw.markActive(pe)
}

// Accepted reports whether the offer at pe was injected in the last Step.
func (nw *Network) Accepted(pe int) bool { return nw.accepted[pe] }

// Delivered returns packets delivered in the last Step; the slice is reused.
func (nw *Network) Delivered() []noc.Packet { return nw.delivered }

// InFlight returns the number of packets inside the network.
func (nw *Network) InFlight() int { return nw.inFlight }

// Counters returns the network-wide event counters.
func (nw *Network) Counters() *noc.Counters { return &nw.counters }

// Step advances the network one cycle: every occupied router routes its
// inputs, then the links latch. Only routers holding an in-flight input or
// a pending offer are visited; idle routers cost nothing. The visit order
// is ascending router index — identical to the dense path's row-major scan
// — so delivery order, and with it every downstream floating-point
// accumulation, is bit-exact with SetDense(true).
func (nw *Network) Step(now int64) {
	if nw.dense {
		nw.stepDense(now)
		return
	}
	nw.now = now
	nw.delivered = nw.delivered[:0]
	for _, pe := range nw.acceptedPEs {
		nw.accepted[pe] = false
	}
	nw.acceptedPEs = nw.acceptedPEs[:0]

	// Swap the active set: latching below (and Offer calls before the next
	// Step) accumulate the next cycle's set in activeBits.
	nw.curBits, nw.activeBits = nw.activeBits, nw.curBits
	for w := range nw.activeBits {
		nw.activeBits[w] = 0
	}

	for wd, b := range nw.curBits {
		for b != 0 {
			i := wd<<6 + bits.TrailingZeros64(b)
			b &= b - 1
			nw.routeSparse(i, i%nw.w, i/nw.w, now)
		}
	}

	// Latch: the next-cycle registers routeSparse just filled become the
	// current registers. The consumed buffer is all -1 again (inputs are
	// cleared as they are read), so it can serve as next cycle's write side.
	nw.wInR, nw.wInRN = nw.wInRN, nw.wInR
	nw.nInR, nw.nInRN = nw.nInRN, nw.nInR
}

// fwdE and fwdS latch pool index r onto the downstream router's next-cycle
// input register. The hop accounting the dense path does in its latch pass
// happens here, at forward time — the totals and per-packet values at
// delivery are identical.
func (nw *Network) fwdE(r int32, x, y int) {
	nw.pool[r].ShortHops++
	nw.counters.ShortTraversals++
	j := y*nw.w + (x+1)%nw.w
	nw.wInRN[j] = r
	nw.markActive(j)
}

func (nw *Network) fwdS(r int32, x, y int) {
	nw.pool[r].ShortHops++
	nw.counters.ShortTraversals++
	j := ((y+1)%nw.h)*nw.w + x
	nw.nInRN[j] = r
	nw.markActive(j)
}

// obsHop reports the short-hop grant for pool slot r at router i. It is a
// separate method, invoked behind the caller's nil check, so fwdE/fwdS stay
// small enough to inline — the forwarders are the hottest functions in the
// sparse path and must not pay for telemetry when it is off.
func (nw *Network) obsHop(i int, out noc.Port, r int32) {
	nw.obs.OnHop(nw.now, i, out, &nw.pool[r])
}

// routeSparse is the fast-path arbiter: identical decisions to route, but
// over pool indices — staying on the ring costs an int32 move instead of an
// 80-byte slot copy — and with the latch fused in: granting an output
// writes the downstream next-cycle register directly.
func (nw *Network) routeSparse(i, x, y int, now int64) {
	var eTaken, sTaken bool

	// Inputs are consumed (and cleared, so a router that goes idle does not
	// replay stale packets when it reactivates) as they are read.
	if r := nw.wInR[i]; r >= 0 {
		nw.wInR[i] = -1
		p := &nw.pool[r]
		switch {
		case p.Dst.X == x && p.Dst.Y == y:
			if nw.canExit(i) {
				sTaken = true
				nw.deliverIdx(r)
			} else {
				p.Deflections++
				nw.counters.MisroutesByInput[noc.PortWSh]++
				if nw.obs != nil {
					nw.obs.OnDeflect(nw.now, i, noc.PortWSh, p)
				}
				nw.fwdE(r, x, y)
				if nw.obs != nil {
					nw.obsHop(i, noc.PortESh, r)
				}
				eTaken = true
			}
		case p.Dst.X != x:
			nw.fwdE(r, x, y)
			if nw.obs != nil {
				nw.obsHop(i, noc.PortESh, r)
			}
			eTaken = true
		default:
			nw.fwdS(r, x, y)
			if nw.obs != nil {
				nw.obsHop(i, noc.PortSSh, r)
			}
			sTaken = true
		}
	}

	if r := nw.nInR[i]; r >= 0 {
		nw.nInR[i] = -1
		p := &nw.pool[r]
		atDst := p.Dst.X == x && p.Dst.Y == y
		if atDst && !nw.canExit(i) {
			p.Deflections++
			nw.counters.MisroutesByInput[noc.PortNSh]++
			if nw.obs != nil {
				nw.obs.OnDeflect(nw.now, i, noc.PortNSh, p)
			}
			if !eTaken {
				nw.fwdE(r, x, y)
				if nw.obs != nil {
					nw.obsHop(i, noc.PortESh, r)
				}
				eTaken = true
			} else {
				nw.fwdS(r, x, y)
				if nw.obs != nil {
					nw.obsHop(i, noc.PortSSh, r)
				}
				sTaken = true
			}
		} else if !sTaken {
			sTaken = true
			if atDst {
				nw.deliverIdx(r)
			} else {
				nw.fwdS(r, x, y)
				if nw.obs != nil {
					nw.obsHop(i, noc.PortSSh, r)
				}
			}
		} else {
			p.Deflections++
			nw.counters.MisroutesByInput[noc.PortNSh]++
			if nw.obs != nil {
				nw.obs.OnDeflect(nw.now, i, noc.PortNSh, p)
			}
			nw.fwdE(r, x, y)
			if nw.obs != nil {
				nw.obsHop(i, noc.PortESh, r)
			}
			eTaken = true
		}
	}

	// accepted[i] is already false here: Step cleared every flag set last
	// cycle via acceptedPEs before routing started.
	if off := &nw.offers[i]; off.ok {
		switch {
		case off.p.Dst.X != x && !eTaken:
			r := nw.alloc(off.p)
			nw.pool[r].Inject = now
			nw.fwdE(r, x, y)
			if nw.obs != nil {
				nw.obsHop(i, noc.PortESh, r)
			}
			nw.inFlight++
			nw.accepted[i] = true
		case off.p.Dst.X == x && off.p.Dst.Y == y:
			if !sTaken && nw.canExit(i) {
				p := off.p
				p.Inject = now
				nw.inFlight++
				nw.deliver(p)
				nw.accepted[i] = true
			} else {
				nw.counters.InjectionStalls++
			}
		case off.p.Dst.X == x && !sTaken:
			r := nw.alloc(off.p)
			nw.pool[r].Inject = now
			nw.fwdS(r, x, y)
			if nw.obs != nil {
				nw.obsHop(i, noc.PortSSh, r)
			}
			nw.inFlight++
			nw.accepted[i] = true
		default:
			nw.counters.InjectionStalls++
		}
		off.ok = false
		if nw.accepted[i] {
			nw.acceptedPEs = append(nw.acceptedPEs, i)
		}
	}
}

// deliverIdx hands the pooled packet at r to the client and recycles r.
func (nw *Network) deliverIdx(r int32) {
	nw.deliver(nw.pool[r])
	nw.free = append(nw.free, r)
}

// stepDense is the reference path: clear all staging, route all routers,
// latch all links.
func (nw *Network) stepDense(now int64) {
	nw.now = now
	nw.delivered = nw.delivered[:0]
	nw.acceptedPEs = nw.acceptedPEs[:0]
	for w := range nw.activeBits {
		nw.activeBits[w] = 0
	}
	for i := range nw.eOut {
		nw.eOut[i] = slot{}
		nw.sOut[i] = slot{}
	}

	for y := 0; y < nw.h; y++ {
		for x := 0; x < nw.w; x++ {
			nw.route(x, y, now)
		}
	}

	// Latch: outputs become the neighbours' inputs.
	for y := 0; y < nw.h; y++ {
		for x := 0; x < nw.w; x++ {
			i := y*nw.w + x
			e := nw.eOut[i]
			if e.ok {
				e.p.ShortHops++
				nw.counters.ShortTraversals++
				if nw.obs != nil {
					nw.obs.OnHop(now, i, noc.PortESh, &e.p)
				}
			}
			nw.wIn[y*nw.w+(x+1)%nw.w] = e
			s := nw.sOut[i]
			if s.ok {
				s.p.ShortHops++
				nw.counters.ShortTraversals++
				if nw.obs != nil {
					nw.obs.OnHop(now, i, noc.PortSSh, &s.p)
				}
			}
			nw.nIn[((y+1)%nw.h)*nw.w+x] = s
		}
	}
}

// route arbitrates one router for the current cycle on the dense reference
// path, moving whole packets between the full-slot link registers. The
// sparse path's routeSparse makes the same decisions over pool indices.
func (nw *Network) route(x, y int, now int64) {
	i := y*nw.w + x
	var eTaken, sTaken bool

	// W input: highest priority, always granted its desired port.
	if in := &nw.wIn[i]; in.ok {
		p := in.p
		switch {
		case p.Dst.X == x && p.Dst.Y == y:
			if nw.canExit(i) {
				// Exit shares the S driver.
				sTaken = true
				nw.deliver(p)
			} else {
				// Client port busy (multi-channel sharing): loop the ring.
				p.Deflections++
				nw.counters.MisroutesByInput[noc.PortWSh]++
				if nw.obs != nil {
					nw.obs.OnDeflect(now, i, noc.PortWSh, &p)
				}
				nw.eOut[i] = slot{p: p, ok: true}
				eTaken = true
			}
		case p.Dst.X != x:
			nw.eOut[i] = slot{p: p, ok: true}
			eTaken = true
		default:
			nw.sOut[i] = slot{p: p, ok: true}
			sTaken = true
		}
	}

	// N input: wants S (continue down or exit); deflected east if W holds S.
	if in := &nw.nIn[i]; in.ok {
		p := in.p
		atDst := p.Dst.X == x && p.Dst.Y == y
		if atDst && !nw.canExit(i) {
			// Exit blocked by the shared client port: take either free
			// ring and come back around.
			p.Deflections++
			nw.counters.MisroutesByInput[noc.PortNSh]++
			if nw.obs != nil {
				nw.obs.OnDeflect(now, i, noc.PortNSh, &p)
			}
			if !eTaken {
				nw.eOut[i] = slot{p: p, ok: true}
				eTaken = true
			} else {
				nw.sOut[i] = slot{p: p, ok: true}
				sTaken = true
			}
		} else if !sTaken {
			sTaken = true
			if atDst {
				nw.deliver(p)
			} else {
				nw.sOut[i] = slot{p: p, ok: true}
			}
		} else {
			// Deflect east. E must be free: W consumed exactly one port and
			// it was S. The packet will circle the X ring and return as a W
			// input, which always wins.
			p.Deflections++
			nw.counters.MisroutesByInput[noc.PortNSh]++
			if nw.obs != nil {
				nw.obs.OnDeflect(now, i, noc.PortNSh, &p)
			}
			nw.eOut[i] = slot{p: p, ok: true}
			eTaken = true
		}
	}

	// PE injection: lowest priority, only into the packet's DOR-desired
	// port, otherwise the client retries next cycle.
	nw.accepted[i] = false
	if off := &nw.offers[i]; off.ok {
		p := off.p
		switch {
		case p.Dst.X != x && !eTaken:
			p.Inject = now
			nw.eOut[i] = slot{p: p, ok: true}
			nw.inFlight++
			nw.accepted[i] = true
		case p.Dst.X == x && p.Dst.Y == y:
			if !sTaken && nw.canExit(i) {
				// Self-addressed packet: delivered through the exit port.
				p.Inject = now
				nw.inFlight++
				nw.deliver(p)
				nw.accepted[i] = true
			} else {
				nw.counters.InjectionStalls++
			}
		case p.Dst.X == x && !sTaken:
			p.Inject = now
			nw.sOut[i] = slot{p: p, ok: true}
			nw.inFlight++
			nw.accepted[i] = true
		default:
			nw.counters.InjectionStalls++
		}
		off.ok = false
		if nw.accepted[i] {
			nw.acceptedPEs = append(nw.acceptedPEs, i)
		}
	}
}

func (nw *Network) deliver(p noc.Packet) {
	nw.inFlight--
	nw.counters.Delivered++
	nw.delivered = append(nw.delivered, p)
}
