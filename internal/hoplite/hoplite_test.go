package hoplite

import (
	"testing"

	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

// inject force-feeds a packet at its source PE, failing if the network
// refuses it.
func inject(t *testing.T, nw *Network, p noc.Packet, now int64) {
	t.Helper()
	nw.Offer(noc.PEIndex(p.Src, nw.Width()), p)
	nw.Step(now)
	if !nw.Accepted(noc.PEIndex(p.Src, nw.Width())) {
		t.Fatalf("injection refused for %v->%v", p.Src, p.Dst)
	}
}

// drain steps the network until empty, returning delivered packets.
func drain(t *testing.T, nw *Network, maxCycles int64) []noc.Packet {
	t.Helper()
	var out []noc.Packet
	for c := int64(1); c <= maxCycles; c++ {
		nw.Step(c)
		out = append(out, append([]noc.Packet(nil), nw.Delivered()...)...)
		if nw.InFlight() == 0 {
			return out
		}
	}
	t.Fatalf("network did not drain in %d cycles (%d in flight)", maxCycles, nw.InFlight())
	return nil
}

func TestNewRejectsTinyDimensions(t *testing.T) {
	for _, dims := range [][2]int{{1, 4}, {4, 1}, {0, 0}} {
		if _, err := New(dims[0], dims[1]); err == nil {
			t.Errorf("New(%d,%d) should fail", dims[0], dims[1])
		}
	}
}

// TestSinglePacketLatency checks dimension-ordered routing takes exactly
// dx + dy cycles from the injection step: one cycle per link traversal,
// with the exit tapped during the destination router's own arbitration.
func TestSinglePacketLatency(t *testing.T) {
	for _, tc := range []struct {
		src, dst noc.Coord
		want     int64 // delivery cycle, with injection at Step(0)
	}{
		{noc.Coord{X: 0, Y: 0}, noc.Coord{X: 3, Y: 0}, 3},
		{noc.Coord{X: 0, Y: 0}, noc.Coord{X: 0, Y: 3}, 3},
		{noc.Coord{X: 0, Y: 3}, noc.Coord{X: 3, Y: 0}, 4}, // the paper's Fig 8 endpoints: 3 east + 1 south (wrap)
		{noc.Coord{X: 3, Y: 3}, noc.Coord{X: 0, Y: 0}, 2}, // wraparound both dims
		{noc.Coord{X: 2, Y: 2}, noc.Coord{X: 2, Y: 2}, 0}, // self delivery via exit
	} {
		nw, err := New(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		p := noc.Packet{ID: 1, Src: tc.src, Dst: tc.dst, Gen: 0}
		inject(t, nw, p, 0)
		if tc.src == tc.dst {
			// Delivered within the injection step itself.
			if len(nw.Delivered()) != 1 {
				t.Errorf("%v->%v: self packet not delivered at injection", tc.src, tc.dst)
			}
			continue
		}
		var deliveredAt int64 = -1
		for c := int64(1); c < 50 && deliveredAt < 0; c++ {
			nw.Step(c)
			if len(nw.Delivered()) > 0 {
				deliveredAt = c
			}
		}
		if deliveredAt != tc.want {
			t.Errorf("%v->%v delivered at cycle %d, want %d", tc.src, tc.dst, deliveredAt, tc.want)
		}
	}
}

// TestTurnPriorityDeflectsNorthTraffic builds the paper's canonical
// conflict: a W packet turning south and an N packet continuing south at
// the same router. The W packet must win and the N packet must deflect
// east, then still deliver after circling the X ring.
func TestTurnPriorityDeflectsNorthTraffic(t *testing.T) {
	nw, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Packet A: (0,1) -> (1,3): travels E then turns S at (1,1).
	// Packet B: (1,0) -> (1,3): travels S through (1,1).
	// Both arrive at router (1,1) simultaneously; A arrives on W, B on N.
	a := noc.Packet{ID: 1, Src: noc.Coord{X: 0, Y: 1}, Dst: noc.Coord{X: 1, Y: 3}}
	b := noc.Packet{ID: 2, Src: noc.Coord{X: 1, Y: 0}, Dst: noc.Coord{X: 1, Y: 3}}
	nw.Offer(noc.PEIndex(a.Src, 4), a)
	nw.Offer(noc.PEIndex(b.Src, 4), b)
	nw.Step(0)
	if !nw.Accepted(noc.PEIndex(a.Src, 4)) || !nw.Accepted(noc.PEIndex(b.Src, 4)) {
		t.Fatal("both injections should succeed")
	}
	out := drain(t, nw, 100)
	if len(out) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(out))
	}
	var defA, defB int32
	for _, p := range out {
		if p.ID == 1 {
			defA = p.Deflections
		} else {
			defB = p.Deflections
		}
	}
	if defA != 0 {
		t.Errorf("turning W packet was deflected %d times, want 0", defA)
	}
	if defB == 0 {
		t.Errorf("N packet should have been deflected by the W->S turn")
	}
	if nw.Counters().MisroutesByInput[noc.PortNSh] == 0 {
		t.Errorf("misroute counter for N input not incremented")
	}
}

// TestAllPairsDelivery sends one packet between every ordered PE pair and
// checks they all arrive with sane hop counts.
func TestAllPairsDelivery(t *testing.T) {
	const n = 5 // non-power-of-two exercise
	for src := 0; src < n*n; src++ {
		for dst := 0; dst < n*n; dst++ {
			if src == dst {
				continue
			}
			nw, err := New(n, n)
			if err != nil {
				t.Fatal(err)
			}
			p := noc.Packet{ID: 1, Src: noc.PECoord(src, n), Dst: noc.PECoord(dst, n)}
			inject(t, nw, p, 0)
			out := drain(t, nw, 64)
			if len(out) != 1 || out[0].Dst != p.Dst {
				t.Fatalf("pair %d->%d: bad delivery %v", src, dst, out)
			}
			want := int32(noc.RingDelta(p.Src.X, p.Dst.X, n) + noc.RingDelta(p.Src.Y, p.Dst.Y, n))
			if out[0].ShortHops != want {
				t.Fatalf("pair %d->%d: %d hops, want %d", src, dst, out[0].ShortHops, want)
			}
		}
	}
}

// TestInjectionBlockedWhenPortBusy checks the PE port's lowest priority: a
// continuous stream through a router blocks same-direction injection.
func TestInjectionBlockedWhenPortBusy(t *testing.T) {
	nw, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Fill the X ring of row 0 with eastbound traffic from (0,0).
	src := noc.Coord{X: 0, Y: 0}
	for c := int64(0); c < 3; c++ {
		nw.Offer(noc.PEIndex(src, 4), noc.Packet{ID: c, Src: src, Dst: noc.Coord{X: 3, Y: 0}, Gen: c})
		nw.Step(c)
	}
	// Now (1,0) wants to inject eastbound while a packet passes through.
	them := noc.Coord{X: 1, Y: 0}
	nw.Offer(noc.PEIndex(them, 4), noc.Packet{ID: 99, Src: them, Dst: noc.Coord{X: 3, Y: 0}})
	nw.Step(3)
	if nw.Accepted(noc.PEIndex(them, 4)) {
		t.Fatal("injection should stall while through-traffic holds the E port")
	}
	if nw.Counters().InjectionStalls == 0 {
		t.Fatal("stall counter not incremented")
	}
}

// TestConservation floods the network randomly and checks injected =
// delivered + in-flight at every cycle.
func TestConservation(t *testing.T) {
	nw, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(12345)
	next := func() uint64 { seed = seed*6364136223846793005 + 1; return seed >> 33 }
	var injected, delivered int64
	for c := int64(0); c < 2000; c++ {
		offered := map[int]bool{}
		for pe := 0; pe < 16; pe++ {
			if next()%10 < 4 {
				dst := int(next() % 16)
				nw.Offer(pe, noc.Packet{ID: c<<8 | int64(pe), Src: noc.PECoord(pe, 4), Dst: noc.PECoord(dst, 4), Gen: c})
				offered[pe] = true
			}
		}
		nw.Step(c)
		for pe := range offered {
			if nw.Accepted(pe) {
				injected++
			}
		}
		delivered += int64(len(nw.Delivered()))
		if injected != delivered+int64(nw.InFlight()) {
			t.Fatalf("cycle %d: injected %d != delivered %d + inflight %d",
				c, injected, delivered, nw.InFlight())
		}
	}
	if injected == 0 {
		t.Fatal("test injected nothing")
	}
}

// TestExitGateDeflectsDeliveries verifies the multi-channel sharing hook:
// with the client port gated shut, packets at their destination circle the
// rings instead of delivering, and complete once the gate opens.
func TestExitGateDeflectsDeliveries(t *testing.T) {
	nw, err := New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	open := false
	nw.SetExitGate(func(pe int) bool { return open })
	p := noc.Packet{ID: 1, Src: noc.Coord{X: 0, Y: 0}, Dst: noc.Coord{X: 2, Y: 2}}
	inject(t, nw, p, 0)
	for c := int64(1); c < 30; c++ {
		nw.Step(c)
		if len(nw.Delivered()) != 0 {
			t.Fatalf("delivered through a closed gate at cycle %d", c)
		}
	}
	if nw.InFlight() != 1 {
		t.Fatalf("packet lost while gated: in-flight %d", nw.InFlight())
	}
	open = true
	out := drain(t, nw, 50)
	if len(out) != 1 || out[0].Deflections == 0 {
		t.Fatalf("gated packet should deliver with deflections after opening: %+v", out)
	}

	// Gated self-injection must stall, not vanish.
	open = false
	self := noc.Coord{X: 1, Y: 1}
	nw.Offer(noc.PEIndex(self, 4), noc.Packet{ID: 2, Src: self, Dst: self})
	nw.Step(100)
	if nw.Accepted(noc.PEIndex(self, 4)) {
		t.Fatal("self packet accepted through a closed gate")
	}
}

// TestPerCycleInvariantsUnderLoad drives the torus under the engine's full
// per-cycle audit (conservation, delivery identity, age watchdog): any
// lost, duplicated, corrupted, or starved packet fails at the offending
// cycle.
func TestPerCycleInvariantsUnderLoad(t *testing.T) {
	nw, err := New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 0.4, 300, 21)
	res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true, MaxPacketAge: 50000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 64*300 {
		t.Errorf("delivered %d, want %d", res.Delivered, 64*300)
	}
}
