package message

import (
	"testing"

	"fasttrack/internal/fasttrack"
	"fasttrack/internal/hoplite"
	"fasttrack/internal/sim"
)

func TestFlitsPerMessage(t *testing.T) {
	cases := []struct {
		msg, width, want int
	}{
		{512, 512, 1},
		{512, 256, 2},
		{512, 100, 6},
		{64, 256, 1},
	}
	for _, c := range cases {
		s, err := NewStream(4, 4, c.msg, c.width, 0.5, 10, 1)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.FlitsPerMessage(); got != c.want {
			t.Errorf("flits(%d,%d) = %d, want %d", c.msg, c.width, got, c.want)
		}
	}
	if _, err := NewStream(4, 4, 0, 64, 0.5, 10, 1); err == nil {
		t.Error("zero message size should be rejected")
	}
}

func TestAllMessagesComplete(t *testing.T) {
	nw, err := hoplite.New(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewStream(4, 4, 512, 128, 0.8, 25, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nw, s, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantMsgs := int64(16 * 25)
	if s.MessagesDelivered() != wantMsgs {
		t.Fatalf("delivered %d messages, want %d", s.MessagesDelivered(), wantMsgs)
	}
	if res.Delivered != wantMsgs*4 {
		t.Fatalf("delivered %d flits, want %d", res.Delivered, wantMsgs*4)
	}
	if s.MessageLatency().Count() != wantMsgs {
		t.Fatalf("latency samples %d", s.MessageLatency().Count())
	}
	// A 4-flit message cannot complete faster than its serialization time.
	if s.MessageLatency().Min() < 3 {
		t.Errorf("min message latency %.0f below serialization floor", s.MessageLatency().Min())
	}
}

// TestSerializationCostVisible: at equal line size, a narrower NoC needs
// proportionally more cycles per message.
func TestSerializationCostVisible(t *testing.T) {
	run := func(width int) float64 {
		top, err := fasttrack.NewTopology(4, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := fasttrack.New(fasttrack.Config{Topology: top})
		if err != nil {
			t.Fatal(err)
		}
		s, err := NewStream(4, 4, 512, width, 0.3, 40, 5)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sim.Run(nw, s, sim.Options{}); err != nil {
			t.Fatal(err)
		}
		return s.MessageLatency().Mean()
	}
	narrow, wide := run(64), run(512)
	if narrow < 2*wide {
		t.Errorf("8-flit latency %.1f should be well above 1-flit %.1f", narrow, wide)
	}
}
