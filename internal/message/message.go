// Package message layers multi-packet messages on top of the single-packet
// NoCs: a message wider than the NoC datapath is serialized into
// ceil(size/width) packets at the source and is complete when its last
// packet arrives. This implements the paper's §VI-B observation that a
// 512-bit x86 cacheline crosses a 512-bit NoC as one packet but must be
// serialized on narrower datapaths — the routability/serialization tradeoff
// behind Fig 10.
package message

import (
	"fmt"

	"fasttrack/internal/noc"
	"fasttrack/internal/stats"
	"fasttrack/internal/xrand"
)

// Stream is a sim.Workload that generates fixed-size messages with
// Bernoulli arrivals and uniform-random destinations, serializing each into
// flits of the NoC's datapath width.
type Stream struct {
	w, h          int
	flitsPerMsg   int
	rate          float64
	quota         int // messages per PE
	rngs          []*xrand.Rand
	queues        [][]noc.Packet
	generated     []int
	totalPending  int
	donePEs       int
	nextMsg       int64
	remaining     map[int64]int   // flits still in flight per message
	msgGen        map[int64]int64 // generation cycle per message
	msgLatency    stats.Accumulator
	msgsDelivered int64
}

// NewStream builds a message workload. messageBits is the payload size
// (e.g. 512 for a cacheline); widthBits is the NoC datapath width.
func NewStream(w, h, messageBits, widthBits int, rate float64, quota int, seed uint64) (*Stream, error) {
	if messageBits <= 0 || widthBits <= 0 {
		return nil, fmt.Errorf("message: sizes must be positive (msg=%d, width=%d)", messageBits, widthBits)
	}
	flits := (messageBits + widthBits - 1) / widthBits
	n := w * h
	s := &Stream{
		w: w, h: h,
		flitsPerMsg: flits,
		rate:        rate,
		quota:       quota,
		rngs:        make([]*xrand.Rand, n),
		queues:      make([][]noc.Packet, n),
		generated:   make([]int, n),
		remaining:   make(map[int64]int),
		msgGen:      make(map[int64]int64),
	}
	root := xrand.New(seed)
	for pe := range s.rngs {
		s.rngs[pe] = root.SplitBy(uint64(pe))
	}
	return s, nil
}

// FlitsPerMessage returns the serialization factor.
func (s *Stream) FlitsPerMessage() int { return s.flitsPerMsg }

// Tick implements sim.Workload.
func (s *Stream) Tick(now int64) {
	for pe := range s.rngs {
		if s.generated[pe] >= s.quota || !s.rngs[pe].Bool(s.rate) {
			continue
		}
		src := noc.PECoord(pe, s.w)
		var dst noc.Coord
		for {
			dst = noc.PECoord(s.rngs[pe].Intn(s.w*s.h), s.w)
			if dst != src {
				break
			}
		}
		s.nextMsg++
		msg := s.nextMsg
		s.remaining[msg] = s.flitsPerMsg
		s.msgGen[msg] = now
		for f := 0; f < s.flitsPerMsg; f++ {
			s.queues[pe] = append(s.queues[pe], noc.Packet{
				ID:    msg<<8 | int64(f),
				Src:   src,
				Dst:   dst,
				Gen:   now,
				Event: int32(msg), // message id for reassembly
			})
		}
		s.totalPending += s.flitsPerMsg
		s.generated[pe]++
		if s.generated[pe] == s.quota {
			s.donePEs++
		}
	}
}

// Pending implements sim.Workload.
func (s *Stream) Pending(pe int, _ int64) (noc.Packet, bool) {
	q := s.queues[pe]
	if len(q) == 0 {
		return noc.Packet{}, false
	}
	return q[0], true
}

// Injected implements sim.Workload.
func (s *Stream) Injected(pe int, _ int64) {
	q := s.queues[pe]
	copy(q, q[1:])
	s.queues[pe] = q[:len(q)-1]
	s.totalPending--
}

// Delivered implements sim.Workload: the message completes when its last
// flit lands.
func (s *Stream) Delivered(p noc.Packet, now int64) {
	msg := int64(p.Event)
	left, ok := s.remaining[msg]
	if !ok {
		return
	}
	if left--; left > 0 {
		s.remaining[msg] = left
		return
	}
	delete(s.remaining, msg)
	s.msgLatency.Add(float64(now - s.msgGen[msg]))
	delete(s.msgGen, msg)
	s.msgsDelivered++
}

// Done implements sim.Workload.
func (s *Stream) Done() bool {
	return s.donePEs == len(s.rngs) && s.totalPending == 0
}

// MessagesDelivered returns completed message count.
func (s *Stream) MessagesDelivered() int64 { return s.msgsDelivered }

// MessageLatency returns the message-completion latency accumulator.
func (s *Stream) MessageLatency() *stats.Accumulator { return &s.msgLatency }
