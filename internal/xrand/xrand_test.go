package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between different seeds", same)
	}
}

func TestSplitByIndependentAndStable(t *testing.T) {
	root := New(7)
	a1 := root.SplitBy(1)
	a2 := root.SplitBy(1)
	bb := root.SplitBy(2)
	if a1.Uint64() != a2.Uint64() {
		t.Error("SplitBy must be a pure function of (seed, label)")
	}
	if a2.Uint64() == bb.Uint64() {
		t.Error("different labels should give different streams")
	}
}

func TestIntnBoundsProperty(t *testing.T) {
	r := New(3)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	New(1).Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBoolEdgeCases(t *testing.T) {
	r := New(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if p := float64(hits) / n; math.Abs(p-0.3) > 0.01 {
		t.Errorf("Bool(0.3) rate %v", p)
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Errorf("Exp mean %v, want ~1", mean)
	}
}

func TestNormMoments(t *testing.T) {
	r := New(19)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Norm mean %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Norm variance %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(23)
	f := func(nn uint8) bool {
		n := int(nn % 64)
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfFavoursSmallRanks(t *testing.T) {
	r := New(29)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 100)
	for i := 0; i < 100000; i++ {
		v := z.Next()
		if v < 0 || v >= 100 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	if !(counts[0] > counts[10] && counts[10] > counts[50]) {
		t.Errorf("Zipf not rank-decreasing: c0=%d c10=%d c50=%d", counts[0], counts[10], counts[50])
	}
}

func TestMul64MatchesBigMultiplication(t *testing.T) {
	f := func(a, b uint64) bool {
		hi, lo := mul64(a, b)
		// Verify via math/bits-free schoolbook recomputation on 32-bit limbs.
		const mask = 1<<32 - 1
		a0, a1 := a&mask, a>>32
		b0, b1 := b&mask, b>>32
		w0 := a0 * b0
		t1 := a1*b0 + w0>>32
		w1 := t1&mask + a0*b1
		wantHi := a1*b1 + t1>>32 + w1>>32
		return lo == a*b && hi == wantHi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
