// Package xrand provides a small, deterministic, splittable pseudo-random
// number generator used by every stochastic component in the repository
// (traffic sources, workload synthesis, property tests).
//
// The generator is splitmix64 (Steele, Lea, Flood; JDK SplittableRandom).
// It is deliberately not crypto-grade: the goals are bit-for-bit
// reproducibility across runs and machines, cheap splitting so that every
// PE / matrix row / graph vertex can own an independent stream, and zero
// dependencies beyond the standard library.
package xrand

import "math"

// golden is the 64-bit golden-ratio increment used by splitmix64.
const golden = 0x9e3779b97f4a7c15

// Rand is a deterministic pseudo-random stream. The zero value is a valid
// generator seeded with 0; prefer New or Split for distinct streams.
type Rand struct {
	state uint64
}

// New returns a generator seeded with seed.
func New(seed uint64) *Rand { return &Rand{state: seed} }

// mix is the splitmix64 output function.
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += golden
	return mix(r.state)
}

// Split returns a new generator whose stream is statistically independent
// of the receiver's. The receiver advances by one step.
func (r *Rand) Split() *Rand {
	return &Rand{state: mix(r.Uint64())}
}

// SplitBy returns an independent generator derived from the receiver's seed
// and a caller-chosen label, without advancing the receiver. Use it to give
// entity i (a PE, a row, a vertex) its own stream as a pure function of
// (seed, i).
func (r *Rand) SplitBy(label uint64) *Rand {
	return &Rand{state: mix(r.state+golden) ^ mix(label*golden+1)}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method for unbiased bounded ints.
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= (-bound)%bound {
			return int(hi)
		}
	}
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	w0 := a0 * b0
	t := a1*b0 + w0>>32
	w1 := t&mask + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed float64 with mean 1.
func (r *Rand) Exp() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// Norm returns a normally distributed float64 (mean 0, stddev 1) using the
// Marsaglia polar method.
func (r *Rand) Norm() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Perm returns a random permutation of [0, n) (Fisher–Yates).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Zipf returns integers in [0, n) with probability proportional to
// 1/(rank+1)^s, favouring small values. It precomputes the CDF; use one
// Zipf per (n, s) pair.
type Zipf struct {
	cdf []float64
	r   *Rand
}

// NewZipf constructs a Zipf sampler over [0, n) with exponent s > 0.
func NewZipf(r *Rand, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, r: r}
}

// Next samples one value.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
