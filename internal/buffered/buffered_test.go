package buffered

import (
	"testing"

	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 4, Config{}); err == nil {
		t.Error("1-wide mesh should be rejected")
	}
	if _, err := New(4, 4, Config{Depth: -1}); err == nil {
		t.Error("negative depth should be rejected")
	}
}

// TestSinglePacketXYRoute checks dimension-ordered shortest-path routing on
// the bidirectional mesh: one cycle per hop plus one for injection-FIFO
// read and one for exit.
func TestSinglePacketXYRoute(t *testing.T) {
	for _, tc := range []struct {
		src, dst noc.Coord
		hops     int32
	}{
		{noc.Coord{X: 0, Y: 0}, noc.Coord{X: 3, Y: 0}, 3},
		{noc.Coord{X: 3, Y: 0}, noc.Coord{X: 0, Y: 0}, 3}, // westward (no wraparound needed)
		{noc.Coord{X: 0, Y: 3}, noc.Coord{X: 0, Y: 0}, 3}, // northward
		{noc.Coord{X: 0, Y: 3}, noc.Coord{X: 3, Y: 0}, 6},
	} {
		nw, err := New(4, 4, Config{})
		if err != nil {
			t.Fatal(err)
		}
		pe := noc.PEIndex(tc.src, 4)
		nw.Offer(pe, noc.Packet{ID: 1, Src: tc.src, Dst: tc.dst})
		nw.Step(0)
		if !nw.Accepted(pe) {
			t.Fatal("injection refused on idle mesh")
		}
		var got *noc.Packet
		for c := int64(1); c < 50 && got == nil; c++ {
			nw.Step(c)
			if len(nw.Delivered()) == 1 {
				p := nw.Delivered()[0]
				got = &p
			}
		}
		if got == nil {
			t.Fatalf("%v->%v never delivered", tc.src, tc.dst)
		}
		if got.ShortHops != tc.hops {
			t.Errorf("%v->%v took %d hops, want %d", tc.src, tc.dst, got.ShortHops, tc.hops)
		}
	}
}

// TestBackpressure: with depth-1 FIFOs, a blocked stream stalls injection
// rather than dropping packets.
func TestBackpressure(t *testing.T) {
	nw, err := New(4, 4, Config{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	src := noc.Coord{X: 0, Y: 0}
	pe := noc.PEIndex(src, 4)
	stalls := 0
	for c := int64(0); c < 20; c++ {
		nw.Offer(pe, noc.Packet{ID: c, Src: src, Dst: noc.Coord{X: 3, Y: 3}, Gen: c})
		nw.Step(c)
		if !nw.Accepted(pe) {
			stalls++
		}
	}
	if stalls == 0 {
		t.Error("depth-1 injection FIFO should stall a per-cycle stream")
	}
	if nw.Counters().InjectionStalls == 0 {
		t.Error("stall counter not incremented")
	}
}

// TestDrainsAllPatterns runs every synthetic pattern through the mesh with
// conservation checks — buffered XY on a mesh must be deadlock-free.
func TestDrainsAllPatterns(t *testing.T) {
	for _, pat := range traffic.Patterns() {
		nw, err := New(8, 8, Config{})
		if err != nil {
			t.Fatal(err)
		}
		wl := traffic.NewSynthetic(8, 8, pat, 1.0, 150, 3)
		res, err := sim.Run(nw, wl, sim.Options{})
		if err != nil {
			t.Fatalf("%s: %v", pat.Name(), err)
		}
		if res.Delivered != res.Injected {
			t.Fatalf("%s: conservation violated", pat.Name())
		}
		if res.TimedOut {
			t.Fatalf("%s: timed out", pat.Name())
		}
	}
}

// TestHigherPerCycleThroughputThanHoplite: the buffered mesh's claim to
// fame is packets/cycle — it should saturate above bufferless Hoplite on
// RANDOM traffic (it then loses on packets/ns once clock and cost enter,
// which is the paper's Fig 1 argument).
func TestHigherPerCycleThroughputThanHoplite(t *testing.T) {
	nw, err := New(8, 8, Config{Depth: 4})
	if err != nil {
		t.Fatal(err)
	}
	wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 1.0, 400, 5)
	res, err := sim.Run(nw, wl, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Baseline Hoplite saturates around 0.11 pkt/cycle/PE on 8×8 RANDOM.
	if res.SustainedRate < 0.15 {
		t.Errorf("buffered mesh sustained %.3f, expected well above Hoplite's ~0.11", res.SustainedRate)
	}
}

// TestDeeperFIFOsHelpUnderLoad: throughput must not fall as buffering grows.
func TestDeeperFIFOsHelpUnderLoad(t *testing.T) {
	rate := func(depth int) float64 {
		nw, err := New(8, 8, Config{Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		wl := traffic.NewSynthetic(8, 8, traffic.Random{}, 1.0, 250, 9)
		res, err := sim.Run(nw, wl, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.SustainedRate
	}
	if r1, r8 := rate(1), rate(8); r8 < r1 {
		t.Errorf("depth 8 (%.3f) should not underperform depth 1 (%.3f)", r8, r1)
	}
}
