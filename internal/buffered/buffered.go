// Package buffered implements a classic buffered, credit-flow-controlled
// NoC router in the style the paper's Table I/Fig 1 quote for CONNECT and
// Split-Merge: a bidirectional 2-D mesh with an input FIFO per port and
// dimension-ordered XY routing. It exists as a simulated counterpoint to
// the bufferless designs — high packets/cycle, but (per the FPGA cost
// model) many LUTs and a slow clock, which is exactly the Fig 1 tradeoff
// the paper draws.
//
// XY routing on a mesh (no wraparound) with one FIFO per input is
// deadlock-free, so no virtual channels are needed.
package buffered

import (
	"fmt"
	"math/bits"

	"fasttrack/internal/noc"
	"fasttrack/internal/telemetry"
)

// port indices within a router.
const (
	pN = iota // from/to the north neighbour (y-1)
	pS
	pE
	pW
	pPE // client injection queue
	numPorts
	pExit = numPorts // delivery pseudo-output
)

// Config parameterizes the mesh.
type Config struct {
	// Depth is the input FIFO capacity in packets (default 4).
	Depth int
}

// Network is a W×H buffered bidirectional mesh.
type Network struct {
	w, h  int
	depth int

	// queues[i][p] is the input FIFO of port p at router i.
	queues [][numPorts][]noc.Packet
	// snapshot of queue lengths at cycle start, for credit checks.
	lens [][numPorts]int
	// rr[i][out] is the round-robin pointer per output arbiter.
	rr [][numPorts + 1]uint8

	offers    []slot
	accepted  []bool
	delivered []noc.Packet
	inFlight  int
	counters  noc.Counters

	// Occupancy tracking for the sparse fast path. occ[i] counts buffered
	// packets across all of router i's FIFOs; occBits mirrors occ[i] > 0 so
	// Step can iterate occupied routers in ascending index order (curBits is
	// the per-Step snapshot — packets pushed mid-cycle must not make their
	// router route this cycle, matching the dense scan where such a visit is
	// a credit-gated no-op). dirty lists routers whose queue lengths changed
	// since the last lens snapshot: pops keep lens in step, so only pushes
	// make a router dirty, and only dirty routers are re-snapshotted.
	occ              []int
	occBits, curBits []uint64
	dirty            []int
	inDirty          []bool
	// offeredPEs and acceptedPEs let the sparse path touch only the PEs
	// with an offer or a set accepted flag instead of all N² each cycle.
	offeredPEs, acceptedPEs []int

	// dense selects the reference stepping path; see SetDense.
	dense bool

	// obs, when non-nil, receives telemetry events; now mirrors the current
	// Step's cycle so routeOne (no now parameter) can stamp events.
	obs telemetry.Observer
	now int64
}

type slot struct {
	p  noc.Packet
	ok bool
}

// New builds an idle W×H buffered mesh.
func New(w, h int, cfg Config) (*Network, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("buffered: dimensions %dx%d too small", w, h)
	}
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("buffered: FIFO depth %d must be positive", cfg.Depth)
	}
	n := w * h
	words := (n + 63) / 64
	return &Network{
		w: w, h: h, depth: cfg.Depth,
		queues:   make([][numPorts][]noc.Packet, n),
		lens:     make([][numPorts]int, n),
		rr:       make([][numPorts + 1]uint8, n),
		offers:   make([]slot, n),
		accepted: make([]bool, n),
		occ:      make([]int, n),
		occBits:  make([]uint64, words),
		curBits:  make([]uint64, words),
		inDirty:  make([]bool, n),
	}, nil
}

// SetDense selects the reference stepping path: snapshot and route all N²
// routers every cycle instead of only occupied ones. The two paths are
// bit-exact (the golden equivalence tests compare them); the dense path
// exists as the straightforward baseline for those tests and for
// benchmarking the sparse path's speedup. Select before the first Step.
func (nw *Network) SetDense(d bool) { nw.dense = d }

// SetObserver attaches a telemetry observer (nil detaches). The mesh has no
// express plane and bidirectional links: horizontal moves report as
// noc.PortESh and vertical moves as noc.PortSSh, and no deflection events
// occur (buffered routers wait instead of misrouting).
func (nw *Network) SetObserver(o telemetry.Observer) { nw.obs = o }

// Width returns the mesh width.
func (nw *Network) Width() int { return nw.w }

// Height returns the mesh height.
func (nw *Network) Height() int { return nw.h }

// NumPEs returns the client count.
func (nw *Network) NumPEs() int { return nw.w * nw.h }

// Offer presents p for injection at PE pe this cycle.
func (nw *Network) Offer(pe int, p noc.Packet) {
	if !nw.offers[pe].ok {
		nw.offeredPEs = append(nw.offeredPEs, pe)
	}
	nw.offers[pe] = slot{p: p, ok: true}
}

// Accepted reports whether the offer at pe entered the injection FIFO.
func (nw *Network) Accepted(pe int) bool { return nw.accepted[pe] }

// Delivered returns packets delivered in the last Step; the slice is reused.
func (nw *Network) Delivered() []noc.Packet { return nw.delivered }

// InFlight returns the number of packets buffered in the network.
func (nw *Network) InFlight() int { return nw.inFlight }

// Counters returns the network-wide event counters.
func (nw *Network) Counters() *noc.Counters { return &nw.counters }

// desiredOutput implements XY dimension-ordered routing on the mesh.
func (nw *Network) desiredOutput(p noc.Packet, x, y int) int {
	switch {
	case p.Dst.X > x:
		return pE
	case p.Dst.X < x:
		return pW
	case p.Dst.Y > y:
		return pS
	case p.Dst.Y < y:
		return pN
	default:
		return pExit
	}
}

// neighbour returns the router index and input port reached through out.
func (nw *Network) neighbour(x, y, out int) (idx, inPort int) {
	switch out {
	case pE:
		return y*nw.w + x + 1, pW
	case pW:
		return y*nw.w + x - 1, pE
	case pS:
		return (y+1)*nw.w + x, pN
	case pN:
		return (y-1)*nw.w + x, pS
	}
	panic("buffered: bad output")
}

// Step advances the mesh one cycle: every output arbiter moves at most one
// packet, gated by downstream credits computed from cycle-start occupancy.
// Only routers with buffered packets are visited; idle routers cost
// nothing. The visit order is ascending router index — identical to the
// dense path's row-major scan — so delivery order, and with it every
// downstream floating-point accumulation, is bit-exact with SetDense(true).
func (nw *Network) Step(now int64) {
	if nw.dense {
		nw.stepDense(now)
		return
	}
	nw.now = now
	nw.delivered = nw.delivered[:0]
	for _, pe := range nw.acceptedPEs {
		nw.accepted[pe] = false
	}
	nw.acceptedPEs = nw.acceptedPEs[:0]

	// Accept injections into PE FIFOs first (they see last cycle's space).
	// Per-PE injection touches only that PE's own queue, so processing the
	// offered list in arrival order is equivalent to the dense scan.
	for _, pe := range nw.offeredPEs {
		off := nw.offers[pe]
		nw.offers[pe] = slot{}
		if len(nw.queues[pe][pPE]) < nw.depth {
			p := off.p
			p.Inject = now
			nw.push(pe, pPE, p)
			nw.inFlight++
			nw.accepted[pe] = true
			nw.acceptedPEs = append(nw.acceptedPEs, pe)
		} else {
			nw.counters.InjectionStalls++
		}
	}
	nw.offeredPEs = nw.offeredPEs[:0]

	// Refresh the credit snapshot where it went stale. pop keeps lens equal
	// to the live queue length, so only routers that took a push since the
	// last snapshot differ — exactly the dirty list.
	for _, i := range nw.dirty {
		nw.inDirty[i] = false
		for p := 0; p < numPorts; p++ {
			nw.lens[i][p] = len(nw.queues[i][p])
		}
	}
	nw.dirty = nw.dirty[:0]

	// Iterate a snapshot of the occupancy set: packets pushed mid-cycle set
	// occBits but must not make their router route this cycle (in the dense
	// scan such a visit is a lens-gated no-op).
	copy(nw.curBits, nw.occBits)
	for wd, b := range nw.curBits {
		for b != 0 {
			i := wd<<6 + bits.TrailingZeros64(b)
			b &= b - 1
			nw.routeOne(i%nw.w, i/nw.w)
		}
	}
	nw.counters.Delivered += int64(len(nw.delivered))
}

// stepDense is the reference path: scan all offers, snapshot every router,
// route every router.
func (nw *Network) stepDense(now int64) {
	nw.now = now
	nw.delivered = nw.delivered[:0]
	nw.acceptedPEs = nw.acceptedPEs[:0]
	nw.offeredPEs = nw.offeredPEs[:0]

	// Accept injections into PE FIFOs first (they see last cycle's space).
	for pe, off := range nw.offers {
		nw.accepted[pe] = false
		if !off.ok {
			continue
		}
		nw.offers[pe] = slot{}
		if len(nw.queues[pe][pPE]) < nw.depth {
			p := off.p
			p.Inject = now
			nw.push(pe, pPE, p)
			nw.inFlight++
			nw.accepted[pe] = true
		} else {
			nw.counters.InjectionStalls++
		}
	}

	// Snapshot occupancy for credit checks: a move this cycle is allowed
	// only into a FIFO that had space at cycle start (conservative, like
	// registered credit counters in hardware).
	for i := range nw.queues {
		nw.inDirty[i] = false
		for p := 0; p < numPorts; p++ {
			nw.lens[i][p] = len(nw.queues[i][p])
		}
	}
	nw.dirty = nw.dirty[:0]

	for y := 0; y < nw.h; y++ {
		for x := 0; x < nw.w; x++ {
			nw.routeOne(x, y)
		}
	}
	nw.counters.Delivered += int64(len(nw.delivered))
}

// routeOne runs the output arbiters of router (x, y). Each input port can
// source at most one move per cycle (a FIFO has one read port).
func (nw *Network) routeOne(x, y int) {
	i := y*nw.w + x
	var popped [numPorts]bool
	// For each output, find the first input (round-robin) whose head wants
	// it and whose downstream has credit.
	for out := 0; out <= numPorts; out++ {
		start := int(nw.rr[i][out])
		for k := 0; k < numPorts; k++ {
			in := (start + k) % numPorts
			q := nw.queues[i][in]
			// Consider only packets present at cycle start, one per input.
			if popped[in] || nw.lens[i][in] == 0 || len(q) == 0 {
				continue
			}
			head := q[0]
			if nw.desiredOutput(head, x, y) != out {
				continue
			}
			if out == pExit {
				nw.pop(i, in)
				popped[in] = true
				nw.inFlight--
				nw.delivered = append(nw.delivered, head)
			} else {
				nidx, nport := nw.neighbour(x, y, out)
				if nw.lens[nidx][nport] >= nw.depth {
					break // downstream full; the output idles this cycle
				}
				nw.pop(i, in)
				popped[in] = true
				head.ShortHops++
				nw.counters.ShortTraversals++
				if nw.obs != nil {
					port := noc.PortESh
					if out == pN || out == pS {
						port = noc.PortSSh
					}
					nw.obs.OnHop(nw.now, i, port, &head)
				}
				nw.push(nidx, nport, head)
			}
			nw.rr[i][out] = uint8((in + 1) % numPorts)
			break
		}
	}
}

// push appends p to FIFO (i, in) and keeps the occupancy set and the dirty
// list in step. lens deliberately stays stale (it is the cycle-start
// snapshot); the next Step re-snapshots this router via the dirty list.
func (nw *Network) push(i, in int, p noc.Packet) {
	nw.queues[i][in] = append(nw.queues[i][in], p)
	if nw.occ[i] == 0 {
		nw.occBits[i>>6] |= 1 << (uint(i) & 63)
	}
	nw.occ[i]++
	if !nw.inDirty[i] {
		nw.inDirty[i] = true
		nw.dirty = append(nw.dirty, i)
	}
}

func (nw *Network) pop(i, in int) {
	q := nw.queues[i][in]
	copy(q, q[1:])
	nw.queues[i][in] = q[:len(q)-1]
	nw.lens[i][in]--
	nw.occ[i]--
	if nw.occ[i] == 0 {
		nw.occBits[i>>6] &^= 1 << (uint(i) & 63)
	}
}
