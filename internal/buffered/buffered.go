// Package buffered implements a classic buffered, credit-flow-controlled
// NoC router in the style the paper's Table I/Fig 1 quote for CONNECT and
// Split-Merge: a bidirectional 2-D mesh with an input FIFO per port and
// dimension-ordered XY routing. It exists as a simulated counterpoint to
// the bufferless designs — high packets/cycle, but (per the FPGA cost
// model) many LUTs and a slow clock, which is exactly the Fig 1 tradeoff
// the paper draws.
//
// XY routing on a mesh (no wraparound) with one FIFO per input is
// deadlock-free, so no virtual channels are needed.
package buffered

import (
	"fmt"

	"fasttrack/internal/noc"
)

// port indices within a router.
const (
	pN = iota // from/to the north neighbour (y-1)
	pS
	pE
	pW
	pPE // client injection queue
	numPorts
	pExit = numPorts // delivery pseudo-output
)

// Config parameterizes the mesh.
type Config struct {
	// Depth is the input FIFO capacity in packets (default 4).
	Depth int
}

// Network is a W×H buffered bidirectional mesh.
type Network struct {
	w, h  int
	depth int

	// queues[i][p] is the input FIFO of port p at router i.
	queues [][numPorts][]noc.Packet
	// snapshot of queue lengths at cycle start, for credit checks.
	lens [][numPorts]int
	// rr[i][out] is the round-robin pointer per output arbiter.
	rr [][numPorts + 1]uint8

	offers    []slot
	accepted  []bool
	delivered []noc.Packet
	inFlight  int
	counters  noc.Counters
}

type slot struct {
	p  noc.Packet
	ok bool
}

// New builds an idle W×H buffered mesh.
func New(w, h int, cfg Config) (*Network, error) {
	if w < 2 || h < 2 {
		return nil, fmt.Errorf("buffered: dimensions %dx%d too small", w, h)
	}
	if cfg.Depth == 0 {
		cfg.Depth = 4
	}
	if cfg.Depth < 1 {
		return nil, fmt.Errorf("buffered: FIFO depth %d must be positive", cfg.Depth)
	}
	n := w * h
	return &Network{
		w: w, h: h, depth: cfg.Depth,
		queues:   make([][numPorts][]noc.Packet, n),
		lens:     make([][numPorts]int, n),
		rr:       make([][numPorts + 1]uint8, n),
		offers:   make([]slot, n),
		accepted: make([]bool, n),
	}, nil
}

// Width returns the mesh width.
func (nw *Network) Width() int { return nw.w }

// Height returns the mesh height.
func (nw *Network) Height() int { return nw.h }

// NumPEs returns the client count.
func (nw *Network) NumPEs() int { return nw.w * nw.h }

// Offer presents p for injection at PE pe this cycle.
func (nw *Network) Offer(pe int, p noc.Packet) { nw.offers[pe] = slot{p: p, ok: true} }

// Accepted reports whether the offer at pe entered the injection FIFO.
func (nw *Network) Accepted(pe int) bool { return nw.accepted[pe] }

// Delivered returns packets delivered in the last Step; the slice is reused.
func (nw *Network) Delivered() []noc.Packet { return nw.delivered }

// InFlight returns the number of packets buffered in the network.
func (nw *Network) InFlight() int { return nw.inFlight }

// Counters returns the network-wide event counters.
func (nw *Network) Counters() *noc.Counters { return &nw.counters }

// desiredOutput implements XY dimension-ordered routing on the mesh.
func (nw *Network) desiredOutput(p noc.Packet, x, y int) int {
	switch {
	case p.Dst.X > x:
		return pE
	case p.Dst.X < x:
		return pW
	case p.Dst.Y > y:
		return pS
	case p.Dst.Y < y:
		return pN
	default:
		return pExit
	}
}

// neighbour returns the router index and input port reached through out.
func (nw *Network) neighbour(x, y, out int) (idx, inPort int) {
	switch out {
	case pE:
		return y*nw.w + x + 1, pW
	case pW:
		return y*nw.w + x - 1, pE
	case pS:
		return (y+1)*nw.w + x, pN
	case pN:
		return (y-1)*nw.w + x, pS
	}
	panic("buffered: bad output")
}

// Step advances the mesh one cycle: every output arbiter moves at most one
// packet, gated by downstream credits computed from cycle-start occupancy.
func (nw *Network) Step(now int64) {
	nw.delivered = nw.delivered[:0]

	// Accept injections into PE FIFOs first (they see last cycle's space).
	for pe, off := range nw.offers {
		nw.accepted[pe] = false
		if !off.ok {
			continue
		}
		nw.offers[pe] = slot{}
		if len(nw.queues[pe][pPE]) < nw.depth {
			p := off.p
			p.Inject = now
			nw.queues[pe][pPE] = append(nw.queues[pe][pPE], p)
			nw.inFlight++
			nw.accepted[pe] = true
		} else {
			nw.counters.InjectionStalls++
		}
	}

	// Snapshot occupancy for credit checks: a move this cycle is allowed
	// only into a FIFO that had space at cycle start (conservative, like
	// registered credit counters in hardware).
	for i := range nw.queues {
		for p := 0; p < numPorts; p++ {
			nw.lens[i][p] = len(nw.queues[i][p])
		}
	}

	for y := 0; y < nw.h; y++ {
		for x := 0; x < nw.w; x++ {
			nw.routeOne(x, y)
		}
	}
	nw.counters.Delivered += int64(len(nw.delivered))
}

// routeOne runs the output arbiters of router (x, y). Each input port can
// source at most one move per cycle (a FIFO has one read port).
func (nw *Network) routeOne(x, y int) {
	i := y*nw.w + x
	var popped [numPorts]bool
	// For each output, find the first input (round-robin) whose head wants
	// it and whose downstream has credit.
	for out := 0; out <= numPorts; out++ {
		start := int(nw.rr[i][out])
		for k := 0; k < numPorts; k++ {
			in := (start + k) % numPorts
			q := nw.queues[i][in]
			// Consider only packets present at cycle start, one per input.
			if popped[in] || nw.lens[i][in] == 0 || len(q) == 0 {
				continue
			}
			head := q[0]
			if nw.desiredOutput(head, x, y) != out {
				continue
			}
			if out == pExit {
				nw.pop(i, in)
				popped[in] = true
				nw.inFlight--
				nw.delivered = append(nw.delivered, head)
			} else {
				nidx, nport := nw.neighbour(x, y, out)
				if nw.lens[nidx][nport] >= nw.depth {
					break // downstream full; the output idles this cycle
				}
				nw.pop(i, in)
				popped[in] = true
				head.ShortHops++
				nw.counters.ShortTraversals++
				nw.queues[nidx][nport] = append(nw.queues[nidx][nport], head)
			}
			nw.rr[i][out] = uint8((in + 1) % numPorts)
			break
		}
	}
}

func (nw *Network) pop(i, in int) {
	q := nw.queues[i][in]
	copy(q, q[1:])
	nw.queues[i][in] = q[:len(q)-1]
	nw.lens[i][in]--
}
