// Package noctest holds the shard-equivalence harness shared by the
// network packages' tests. It drives a sequential instance and a sharded
// instance of the same network through an identical precomputed offer
// schedule and asserts that the delivered packet stream, event counters,
// telemetry event log, and residual in-flight population are bit-identical.
//
// The sharded run steps its shards on real goroutines behind a WaitGroup,
// so running these tests under -race doubles as the data-race gate for the
// shard protocol.
package noctest

import (
	"reflect"
	"sync"
	"testing"

	"fasttrack/internal/noc"
	"fasttrack/internal/telemetry"
	"fasttrack/internal/xrand"
)

// Event is one recorded router-level telemetry event.
type Event struct {
	Kind   string
	Now    int64
	Router int
	Port   noc.Port
	P      noc.Packet
}

// Recorder captures the four router-level events for order comparison.
type Recorder struct {
	telemetry.Base
	Events []Event
}

func (r *Recorder) add(kind string, now int64, router int, port noc.Port, p *noc.Packet) {
	r.Events = append(r.Events, Event{Kind: kind, Now: now, Router: router, Port: port, P: *p})
}

// OnHop implements telemetry.Observer.
func (r *Recorder) OnHop(now int64, router int, out noc.Port, p *noc.Packet) {
	r.add("hop", now, router, out, p)
}

// OnExpressHop implements telemetry.Observer.
func (r *Recorder) OnExpressHop(now int64, router int, out noc.Port, p *noc.Packet) {
	r.add("exhop", now, router, out, p)
}

// OnDeflect implements telemetry.Observer.
func (r *Recorder) OnDeflect(now int64, router int, in noc.Port, p *noc.Packet) {
	r.add("deflect", now, router, in, p)
}

// OnExpressDenied implements telemetry.Observer.
func (r *Recorder) OnExpressDenied(now int64, router int, in noc.Port, p *noc.Packet) {
	r.add("denied", now, router, in, p)
}

type runResult struct {
	delivered []noc.Packet
	counters  noc.Counters
	events    []Event
	inFlight  int
}

// ShardEquivalence builds one network per shard count via mk, replays the
// same Bernoulli(rate) offer schedule through each, and requires every
// sharded run to match the sequential (shards=1) run exactly. cycles is the
// offered-traffic window; after it the fabric drains with no new offers.
func ShardEquivalence(t *testing.T, mk func() noc.ShardedNetwork, shardCounts []int, seed uint64, cycles int, rate float64) {
	t.Helper()

	probe := mk()
	w, h, n := probe.Width(), probe.Height(), probe.NumPEs()

	// Precomputed schedule: per-PE destination queues plus a per-(cycle,PE)
	// offer gate. Identical for every run; a PE re-offers the head of its
	// queue until the network accepts it.
	rng := xrand.New(seed)
	const perPE = 24
	queues := make([][]noc.Coord, n)
	for pe := 0; pe < n; pe++ {
		src := noc.PECoord(pe, w)
		for q := 0; q < perPE; q++ {
			for {
				dst := noc.Coord{X: rng.Intn(w), Y: rng.Intn(h)}
				if dst != src {
					queues[pe] = append(queues[pe], dst)
					break
				}
			}
		}
	}
	gates := make([]bool, cycles*n)
	for i := range gates {
		gates[i] = rng.Bool(rate)
	}

	run := func(shards int) runResult {
		nw := mk()
		rec := &Recorder{}
		var fan *telemetry.ShardFanIn
		if shards == 1 {
			nw.(interface{ SetObserver(telemetry.Observer) }).SetObserver(rec)
		} else {
			got, err := nw.ConfigureShards(shards)
			if err != nil {
				t.Fatalf("ConfigureShards(%d): %v", shards, err)
			}
			shards = got
			fan = telemetry.NewShardFanIn(rec, shards)
			nw.(telemetry.ShardObservable).SetShardObservers(fan.Observers())
		}

		step := func(now int64) {
			if shards == 1 {
				nw.Step(now)
				return
			}
			nw.BeginCycle(now)
			var wg sync.WaitGroup
			for k := 0; k < shards; k++ {
				wg.Add(1)
				go func(k int) {
					defer wg.Done()
					nw.StepShard(k, now)
				}(k)
			}
			wg.Wait()
			nw.EndCycle(now)
			fan.Flush()
		}

		qpos := make([]int, n)
		var delivered []noc.Packet
		var offered []int
		maxCycles := cycles + 20*n // offered window + generous drain
		for c := 0; c < maxCycles; c++ {
			now := int64(c)
			offered = offered[:0]
			if c < cycles {
				for pe := 0; pe < n; pe++ {
					if qpos[pe] < len(queues[pe]) && gates[c*n+pe] {
						nw.Offer(pe, noc.Packet{
							ID:  int64(pe)<<32 | int64(qpos[pe]),
							Src: noc.PECoord(pe, w),
							Dst: queues[pe][qpos[pe]],
							Gen: now,
						})
						offered = append(offered, pe)
					}
				}
			}
			step(now)
			for _, pe := range offered {
				if nw.Accepted(pe) {
					qpos[pe]++
				}
			}
			delivered = append(delivered, nw.Delivered()...)
			if c >= cycles && nw.InFlight() == 0 {
				break
			}
		}
		return runResult{
			delivered: delivered,
			counters:  *nw.Counters(),
			events:    rec.Events,
			inFlight:  nw.InFlight(),
		}
	}

	seq := run(1)
	if seq.inFlight != 0 {
		t.Fatalf("sequential run did not drain: %d in flight", seq.inFlight)
	}
	if len(seq.delivered) == 0 {
		t.Fatal("sequential run delivered nothing; schedule too sparse")
	}
	for _, s := range shardCounts {
		if s == 1 {
			continue
		}
		got := run(s)
		if got.inFlight != 0 {
			t.Fatalf("shards=%d: did not drain, %d in flight", s, got.inFlight)
		}
		if !reflect.DeepEqual(seq.delivered, got.delivered) {
			t.Fatalf("shards=%d: delivered stream diverged (%d vs %d packets)", s, len(seq.delivered), len(got.delivered))
		}
		if seq.counters != got.counters {
			t.Fatalf("shards=%d: counters diverged\nseq: %+v\nshd: %+v", s, seq.counters, got.counters)
		}
		if !reflect.DeepEqual(seq.events, got.events) {
			t.Fatalf("shards=%d: telemetry event log diverged (%d vs %d events)", s, len(seq.events), len(got.events))
		}
	}
}
