// Package regulate implements HopliteRT-style injection regulation (Wasly
// et al., FPT 2017 — the real-time Hoplite variant whose routing rules
// FastTrack adopts): a token-bucket rate limiter per PE in front of any
// workload. Regulating every client's offered rate is what turns the
// routers' static priority scheme into end-to-end latency guarantees, so
// the analysis package's bounds are exercised under regulated interference.
package regulate

import (
	"fmt"

	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
)

// Workload wraps an inner workload with per-PE token buckets: a packet may
// be offered only when its source holds a full token.
type Workload struct {
	inner  sim.Workload
	rate   float64 // tokens per cycle
	burst  float64 // bucket capacity
	tokens []float64
}

// New wraps inner so each PE injects at most rate packets/cycle on average
// with bursts up to burst packets. burst < 1 is raised to 1 (a bucket that
// can never fill would block forever).
func New(inner sim.Workload, pes int, rate, burst float64) (*Workload, error) {
	if rate <= 0 {
		return nil, fmt.Errorf("regulate: rate %v must be positive", rate)
	}
	if burst < 1 {
		burst = 1
	}
	w := &Workload{inner: inner, rate: rate, burst: burst, tokens: make([]float64, pes)}
	for i := range w.tokens {
		w.tokens[i] = burst // buckets start full
	}
	return w, nil
}

// Tick implements sim.Workload: refill buckets, then tick the inner
// workload.
func (w *Workload) Tick(now int64) {
	for i := range w.tokens {
		w.tokens[i] += w.rate
		if w.tokens[i] > w.burst {
			w.tokens[i] = w.burst
		}
	}
	w.inner.Tick(now)
}

// Pending implements sim.Workload: gate the inner offer on a full token.
func (w *Workload) Pending(pe int, now int64) (noc.Packet, bool) {
	if w.tokens[pe] < 1 {
		return noc.Packet{}, false
	}
	return w.inner.Pending(pe, now)
}

// Injected implements sim.Workload: spend the token.
func (w *Workload) Injected(pe int, now int64) {
	w.tokens[pe]--
	w.inner.Injected(pe, now)
}

// Delivered implements sim.Workload.
func (w *Workload) Delivered(p noc.Packet, now int64) { w.inner.Delivered(p, now) }

// Done implements sim.Workload.
func (w *Workload) Done() bool { return w.inner.Done() }

// Unwrap implements sim.WorkloadUnwrapper so the engine can discover
// optional interfaces (e.g. sim.RecoveryReporter) through the regulator.
func (w *Workload) Unwrap() sim.Workload { return w.inner }
