package regulate

import (
	"testing"

	"fasttrack/internal/hoplite"
	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

// greedy is an always-pending workload for direct bucket probing.
type greedy struct{ next int64 }

func (g *greedy) Tick(int64) {}
func (g *greedy) Pending(pe int, _ int64) (noc.Packet, bool) {
	return noc.Packet{ID: g.next + 1}, true
}
func (g *greedy) Injected(int, int64)         { g.next++ }
func (g *greedy) Delivered(noc.Packet, int64) {}
func (g *greedy) Done() bool                  { return false }

// TestBurstClampRaisedToOne: a burst below one packet would build a bucket
// that can never fill; New must clamp it to 1 and still admit traffic.
func TestBurstClampRaisedToOne(t *testing.T) {
	for _, burst := range []float64{0, 0.25, -3} {
		w, err := New(&greedy{}, 4, 0.5, burst)
		if err != nil {
			t.Fatal(err)
		}
		if w.burst != 1 {
			t.Errorf("burst %v clamped to %v, want 1", burst, w.burst)
		}
		// Buckets start full: the very first offer must pass.
		if _, ok := w.Pending(0, 0); !ok {
			t.Errorf("burst %v: first packet should be admitted immediately", burst)
		}
	}
}

// TestZeroTokenStallAndRecovery: once the bucket is spent the PE stalls at
// zero tokens, and exactly enough Ticks of refill re-admit it.
func TestZeroTokenStallAndRecovery(t *testing.T) {
	w, err := New(&greedy{}, 4, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Pending(0, 0); !ok {
		t.Fatal("full bucket should admit a packet")
	}
	w.Injected(0, 0)
	if w.tokens[0] != 0 {
		t.Fatalf("tokens after spend = %v, want 0", w.tokens[0])
	}
	// Stalled: three refills at 0.25 are not yet a full token.
	for c := int64(1); c <= 3; c++ {
		w.Tick(c)
		if _, ok := w.Pending(0, c); ok {
			t.Fatalf("cycle %d: PE admitted with %v tokens", c, w.tokens[0])
		}
	}
	// Fourth refill completes the token; the PE recovers.
	w.Tick(4)
	if _, ok := w.Pending(0, 4); !ok {
		t.Fatalf("PE should recover with %v tokens", w.tokens[0])
	}
	// Other PEs were never drained and must be unaffected throughout.
	if _, ok := w.Pending(1, 4); !ok {
		t.Error("independent PE was throttled by PE 0's spend")
	}
}

func TestRejectsBadRate(t *testing.T) {
	inner := traffic.NewSynthetic(4, 4, traffic.Random{}, 1.0, 10, 1)
	if _, err := New(inner, 16, 0, 4); err == nil {
		t.Error("zero rate should be rejected")
	}
	if _, err := New(inner, 16, -0.5, 4); err == nil {
		t.Error("negative rate should be rejected")
	}
}

// TestRegulationCapsInjectionRate: a greedy source behind a 0.1-rate bucket
// must inject at most ~0.1 packets/cycle/PE.
func TestRegulationCapsInjectionRate(t *testing.T) {
	nw, err := hoplite.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	inner := traffic.NewSynthetic(8, 8, traffic.Random{}, 1.0, 200, 3)
	wl, err := New(inner, 64, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nw, wl, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 64*200 {
		t.Fatalf("delivered %d packets", res.Delivered)
	}
	offered := float64(res.Injected) / (float64(res.Cycles) * 64)
	if offered > 0.105 {
		t.Errorf("regulated injection rate %.4f exceeds 0.1 (+burst slack)", offered)
	}
	if offered < 0.08 {
		t.Errorf("regulated injection rate %.4f suspiciously low", offered)
	}
}

// TestRegulationTamesLatency: the same greedy workload saturates an
// unregulated Hoplite (huge queueing latency) but runs uncongested when
// regulated below the saturation rate — the HopliteRT premise.
func TestRegulationTamesLatency(t *testing.T) {
	run := func(regulated bool) float64 {
		nw, err := hoplite.New(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		var wl sim.Workload = traffic.NewSynthetic(8, 8, traffic.Random{}, 1.0, 200, 5)
		if regulated {
			wl, err = New(wl, 64, 0.08, 1)
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run(nw, wl, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// In-flight latency proxy: average latency minus the queueing the
		// regulator itself introduces is hard to separate, so compare
		// network-visible congestion instead.
		return float64(res.Counters.TotalDeflections())
	}
	unreg, reg := run(false), run(true)
	if reg > 0.7*unreg {
		t.Errorf("regulation should cut network deflections: %0.f vs %0.f", reg, unreg)
	}
}

// TestBucketBurst: burst capacity lets a PE send B back-to-back packets
// before throttling.
func TestBucketBurst(t *testing.T) {
	inner := traffic.NewSynthetic(2, 2, traffic.Random{}, 1.0, 50, 7)
	wl, err := New(inner, 4, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Accumulate several packets at the source, then drain without further
	// refills: exactly the burst capacity may pass.
	for c := int64(0); c < 6; c++ {
		wl.Tick(c)
	}
	granted := 0
	for k := 0; k < 6; k++ {
		if _, ok := wl.Pending(0, 5); ok {
			wl.Injected(0, 5)
			granted++
		}
	}
	if granted != 3 {
		t.Errorf("burst of 3 expected, got %d", granted)
	}
}
