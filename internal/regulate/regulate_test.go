package regulate

import (
	"testing"

	"fasttrack/internal/hoplite"
	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

func TestRejectsBadRate(t *testing.T) {
	inner := traffic.NewSynthetic(4, 4, traffic.Random{}, 1.0, 10, 1)
	if _, err := New(inner, 16, 0, 4); err == nil {
		t.Error("zero rate should be rejected")
	}
	if _, err := New(inner, 16, -0.5, 4); err == nil {
		t.Error("negative rate should be rejected")
	}
}

// TestRegulationCapsInjectionRate: a greedy source behind a 0.1-rate bucket
// must inject at most ~0.1 packets/cycle/PE.
func TestRegulationCapsInjectionRate(t *testing.T) {
	nw, err := hoplite.New(8, 8)
	if err != nil {
		t.Fatal(err)
	}
	inner := traffic.NewSynthetic(8, 8, traffic.Random{}, 1.0, 200, 3)
	wl, err := New(inner, 64, 0.1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(nw, wl, sim.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 64*200 {
		t.Fatalf("delivered %d packets", res.Delivered)
	}
	offered := float64(res.Injected) / (float64(res.Cycles) * 64)
	if offered > 0.105 {
		t.Errorf("regulated injection rate %.4f exceeds 0.1 (+burst slack)", offered)
	}
	if offered < 0.08 {
		t.Errorf("regulated injection rate %.4f suspiciously low", offered)
	}
}

// TestRegulationTamesLatency: the same greedy workload saturates an
// unregulated Hoplite (huge queueing latency) but runs uncongested when
// regulated below the saturation rate — the HopliteRT premise.
func TestRegulationTamesLatency(t *testing.T) {
	run := func(regulated bool) float64 {
		nw, err := hoplite.New(8, 8)
		if err != nil {
			t.Fatal(err)
		}
		var wl sim.Workload = traffic.NewSynthetic(8, 8, traffic.Random{}, 1.0, 200, 5)
		if regulated {
			wl, err = New(wl, 64, 0.08, 1)
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := sim.Run(nw, wl, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		// In-flight latency proxy: average latency minus the queueing the
		// regulator itself introduces is hard to separate, so compare
		// network-visible congestion instead.
		return float64(res.Counters.TotalDeflections())
	}
	unreg, reg := run(false), run(true)
	if reg > 0.7*unreg {
		t.Errorf("regulation should cut network deflections: %0.f vs %0.f", reg, unreg)
	}
}

// TestBucketBurst: burst capacity lets a PE send B back-to-back packets
// before throttling.
func TestBucketBurst(t *testing.T) {
	inner := traffic.NewSynthetic(2, 2, traffic.Random{}, 1.0, 50, 7)
	wl, err := New(inner, 4, 0.01, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Accumulate several packets at the source, then drain without further
	// refills: exactly the burst capacity may pass.
	for c := int64(0); c < 6; c++ {
		wl.Tick(c)
	}
	granted := 0
	for k := 0; k < 6; k++ {
		if _, ok := wl.Pending(0, 5); ok {
			wl.Injected(0, 5)
			granted++
		}
	}
	if granted != 3 {
		t.Errorf("burst of 3 expected, got %d", granted)
	}
}
