package experiments

import (
	"fmt"
	"io"

	"fasttrack/internal/core"
)

// fig13Configs are the iso-wiring contenders: FT(N²,2,1) uses 3 tracks per
// channel like Hoplite-3x; FT(N²,2,2) uses 2 like Hoplite-2x.
func fig13Configs(n int) []core.Config {
	return []core.Config{
		core.MultiChannel(n, 3),
		core.Hoplite(n),
		core.FastTrack(n, 2, 2),
		core.FastTrack(n, 2, 1),
	}
}

// Fig13Data sweeps RANDOM traffic for N = 16, 64, 256 PEs across Hoplite,
// Hoplite-3x and the two FastTrack configurations.
func Fig13Data(sc Scale) ([]RatePoint, error) {
	var pts []RatePoint
	for _, n := range []int{4, 8, 16} {
		if sc.MaxN > 0 && n > sc.MaxN {
			continue
		}
		sub, err := sweepSynthetic(sc, fig13Configs(n), []string{"RANDOM"})
		if err != nil {
			return nil, err
		}
		for i := range sub {
			sub[i].Pattern = fmt.Sprintf("RANDOM/%dPE", n*n)
		}
		pts = append(pts, sub...)
	}
	return pts, nil
}

// RunFig13 renders sustained rate and average latency for the iso-wiring
// comparison.
func RunFig13(w io.Writer, sc Scale) error {
	header(w, "fig13", "Multi-channel Hoplite vs FastTrack (iso-wiring), RANDOM traffic")
	pts, err := Fig13Data(sc)
	if err != nil {
		return err
	}
	t := newTable(w, "System", "Config", "InjRate", "Sustained", "AvgLatency")
	for _, p := range pts {
		t.row(p.Pattern, p.Config, fmt.Sprintf("%.2f", p.InjectionRate),
			fmt.Sprintf("%.4f", p.SustainedRate), fmt.Sprintf("%.1f", p.AvgLatency))
	}
	return t.flush()
}

// CostPoint is one scatter point of Fig 14 / Fig 19: a configuration's
// delivered throughput against its FPGA cost.
type CostPoint struct {
	Config string
	// ThroughputMPPS is sustained rate × PEs × modeled clock, in million
	// packets per second — the paper's Fig 14 y-axis.
	ThroughputMPPS float64
	LUTs           int
	WireCount      float64
	EnergyJ        float64
	PowerW         float64
	SustainedRate  float64
	Cycles         int64
}

// fig14Configs are the 8×8 contenders of Figs 14 and 19.
func fig14Configs(n int) []core.Config {
	return []core.Config{
		core.MultiChannel(n, 3),
		core.Hoplite(n),
		core.MultiChannel(n, 2),
		core.FastTrack(n, 2, 2),
		core.FastTrack(n, 2, 1),
	}
}

// Fig14Data measures saturation throughput at 100% RANDOM injection and
// pairs it with modeled LUT area, wire count, power and energy. Fig 19
// reuses the same points.
func Fig14Data(sc Scale) ([]CostPoint, error) {
	dev := core.Virtex7()
	n := sc.capN(8)
	var pts []CostPoint
	for _, cfg := range fig14Configs(n) {
		res, err := saturationThroughput(cfg, sc)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", cfg, err)
		}
		spec, err := cfg.Spec()
		if err != nil {
			return nil, err
		}
		luts, _ := spec.Resources()
		mhz := spec.ClockMHz(dev)
		pts = append(pts, CostPoint{
			Config:         cfg.String(),
			ThroughputMPPS: res.SustainedRate * float64(n*n) * mhz,
			LUTs:           luts,
			WireCount:      spec.WireCount(),
			EnergyJ:        spec.EnergyJ(dev, res.Cycles),
			PowerW:         spec.PowerW(dev),
			SustainedRate:  res.SustainedRate,
			Cycles:         res.Cycles,
		})
	}
	return pts, nil
}

// RunFig14 renders the area- and wire-aware throughput comparison.
func RunFig14(w io.Writer, sc Scale) error {
	header(w, "fig14", "Cost-aware throughput, 8x8 RANDOM at 100% injection")
	pts, err := Fig14Data(sc)
	if err != nil {
		return err
	}
	t := newTable(w, "Config", "LUTs", "WireCount", "Throughput(Mpkt/s)", "Sustained")
	for _, p := range pts {
		t.row(p.Config, p.LUTs, fmt.Sprintf("%.0f", p.WireCount),
			fmt.Sprintf("%.1f", p.ThroughputMPPS), fmt.Sprintf("%.4f", p.SustainedRate))
	}
	return t.flush()
}

// RunFig19 renders the throughput-energy tradeoff from the same runs.
func RunFig19(w io.Writer, sc Scale) error {
	header(w, "fig19", "Throughput-energy tradeoffs, 64-PE RANDOM workload")
	pts, err := Fig14Data(sc)
	if err != nil {
		return err
	}
	t := newTable(w, "Config", "Throughput(Mpkt/s)", "Power(W)", "Energy(J)")
	for _, p := range pts {
		t.row(p.Config, fmt.Sprintf("%.1f", p.ThroughputMPPS),
			fmt.Sprintf("%.1f", p.PowerW), fmt.Sprintf("%.4g", p.EnergyJ))
	}
	return t.flush()
}
