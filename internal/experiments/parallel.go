package experiments

import (
	"context"

	"fasttrack/internal/core"
	"fasttrack/internal/runner"
	"fasttrack/internal/sim"
	"fasttrack/internal/trace"
)

// defaultOrch schedules simulations for Scales that carry no orchestrator:
// parallel across CPUs, uncached — the behaviour of the historical
// forEachParallel helper this file used to implement directly.
var defaultOrch = &runner.Orchestrator{}

// orch returns the sweep orchestrator in effect for this scale.
func (s Scale) orch() *runner.Orchestrator {
	if s.Orch != nil {
		return s.Orch
	}
	return defaultOrch
}

// forEachParallel fans f(ctx, 0..n-1) across the orchestrator's worker pool
// and returns the first error, wrapped in *runner.JobError so the failing
// job index survives. When a job fails, the context handed to in-flight
// siblings is cancelled (sim.Run polls it) and queued jobs never start.
// Every simulation owns its network and PRNG streams, so results are
// bit-identical to the serial loop; only wall-clock changes.
func (s Scale) forEachParallel(n int, f func(ctx context.Context, i int) error) error {
	return s.orch().ForEach(context.Background(), n, f)
}

// runSynthetic funnels one synthetic-workload simulation through the
// orchestrator: content-addressed cache lookup first, fresh (cancellable)
// run on a miss.
func (s Scale) runSynthetic(ctx context.Context, cfg core.Config, o core.SyntheticOptions) (sim.Result, error) {
	return runner.Do(ctx, s.orch(), runner.SyntheticKey(cfg, o), func() (sim.Result, error) {
		return core.RunSynthetic(ctx, cfg, o)
	})
}

// sweepPool recycles slab-backed batched networks across this package's
// dense sweeps: the figures revisit the same few configurations at many
// rates, so successive chunks reuse the same harness.
var sweepPool runner.NetPool

// runSyntheticBatch answers many synthetic jobs at once on the lockstep
// batched path (runner.DoSyntheticBatch): per job it is bit-identical to
// runSynthetic — same cache keys, same Result — but cold jobs sharing a
// configuration run batched over one topology instead of one network each.
func (s Scale) runSyntheticBatch(ctx context.Context, jobs []runner.SyntheticJob) ([]sim.Result, error) {
	return runner.DoSyntheticBatch(ctx, s.orch(), &sweepPool, jobs)
}

// runTrace funnels one trace replay through the orchestrator, keyed by the
// trace's content fingerprint (from its header, so a recorded FTT1 trace
// shares cache entries with the in-memory generation of the same trace).
func (s Scale) runTrace(ctx context.Context, cfg core.Config, src trace.Source) (sim.Result, error) {
	return runner.Do(ctx, s.orch(), runner.TraceKey(cfg, src, core.TraceOptions{}), func() (sim.Result, error) {
		return core.RunTrace(ctx, cfg, src, core.TraceOptions{})
	})
}

// convergeOptions copies the scale's opt-in early-exit knobs into synthetic
// run options (adaptive saturation evals use it; dense grids never do, so
// figure output stays bit-stable unless adaptivity is requested).
func (s Scale) convergeOptions(o core.SyntheticOptions) core.SyntheticOptions {
	o.ConvergeWindow = s.ConvergeWindow
	o.ConvergeTol = s.ConvergeTol
	return o
}
