package experiments

import (
	"runtime"
	"sync"
)

// forEachParallel runs f(0..n-1) across a bounded worker pool and returns
// the first error. Every simulation owns its network and PRNG streams, so
// results are bit-identical to the serial loop; only wall-clock changes.
func forEachParallel(n int, f func(i int) error) error {
	workers := runtime.NumCPU()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
		next     int
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				if firstErr != nil || next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()
				if err := f(i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}
