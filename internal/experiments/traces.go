package experiments

import (
	"context"
	"fmt"
	"io"

	"fasttrack/internal/core"
	"fasttrack/internal/trace"
	"fasttrack/internal/workloads/dataflow"
	"fasttrack/internal/workloads/graphwl"
	"fasttrack/internal/workloads/overlay"
	"fasttrack/internal/workloads/spmv"
)

// SpeedupPoint is one bar of the paper's Fig 15: workload completion-time
// speedup of the best FastTrack configuration over baseline Hoplite at the
// same PE count.
type SpeedupPoint struct {
	Benchmark     string
	PEs           int
	HopliteCycles int64
	BestFTCycles  int64
	BestFTConfig  string
	Speedup       float64
}

// ftCandidates returns the FastTrack configurations tried per torus width;
// the paper reports the best configuration per benchmark.
func ftCandidates(n int) []core.Config {
	var cands []core.Config
	if n >= 4 {
		cands = append(cands, core.FastTrack(n, 2, 1))
	}
	if n >= 8 {
		cands = append(cands, core.FastTrack(n, 2, 2))
	}
	if len(cands) == 0 {
		cands = append(cands, core.FastTrack(n, 1, 1))
	}
	return cands
}

// traceSpeedup measures one benchmark trace on Hoplite and the FastTrack
// candidates, reusing cached replays keyed by the trace fingerprint.
func traceSpeedup(ctx context.Context, sc Scale, src trace.Source, n int) (SpeedupPoint, error) {
	name := src.Header().Name
	pt := SpeedupPoint{Benchmark: name, PEs: n * n}
	hop, err := sc.runTrace(ctx, core.Hoplite(n), src)
	if err != nil {
		return pt, fmt.Errorf("%s on Hoplite %dx%d: %w", name, n, n, err)
	}
	pt.HopliteCycles = hop.Cycles
	for _, cfg := range ftCandidates(n) {
		res, err := sc.runTrace(ctx, cfg, src)
		if err != nil {
			return pt, fmt.Errorf("%s on %s: %w", name, cfg, err)
		}
		if pt.BestFTCycles == 0 || res.Cycles < pt.BestFTCycles {
			pt.BestFTCycles = res.Cycles
			pt.BestFTConfig = cfg.String()
		}
	}
	pt.Speedup = float64(pt.HopliteCycles) / float64(pt.BestFTCycles)
	return pt, nil
}

func renderSpeedups(w io.Writer, pts []SpeedupPoint) error {
	t := newTable(w, "Benchmark", "PEs", "HopliteCycles", "BestFT", "FTCycles", "Speedup")
	for _, p := range pts {
		t.row(p.Benchmark, p.PEs, p.HopliteCycles, p.BestFTConfig, p.BestFTCycles,
			fmt.Sprintf("%.2fx", p.Speedup))
	}
	return t.flush()
}

// fig15Sizes filters the torus widths a suite sweeps by the scale cap.
func fig15Sizes(sc Scale, sizes ...int) []int {
	var out []int
	for _, n := range sizes {
		if sc.MaxN == 0 || n <= sc.MaxN {
			out = append(out, n)
		}
	}
	return out
}

// traceJob generates one benchmark trace for one system size. gen may
// return any trace.Source — the in-memory generators return a *trace.Trace;
// a job replaying a pre-recorded FTT1 file would return a *trace.Reader.
type traceJob struct {
	n   int
	pes int // reported PE count override (0 = n*n)
	gen func() (trace.Source, error)
}

// runTraceJobs generates and measures trace speedups across the scale's
// orchestrator (worker pool + result cache).
func runTraceJobs(sc Scale, jobs []traceJob) ([]SpeedupPoint, error) {
	pts := make([]SpeedupPoint, len(jobs))
	err := sc.forEachParallel(len(jobs), func(ctx context.Context, i int) error {
		tr, err := jobs[i].gen()
		if err != nil {
			return err
		}
		pt, err := traceSpeedup(ctx, sc, tr, jobs[i].n)
		if err != nil {
			return err
		}
		if jobs[i].pes > 0 {
			pt.PEs = jobs[i].pes
		}
		pts[i] = pt
		return nil
	})
	return pts, err
}

// Fig15aData runs the SpMV suite across PE counts.
func Fig15aData(sc Scale) ([]SpeedupPoint, error) {
	mats := spmv.Benchmarks()
	mats = mats[:sc.capBenchmarks(len(mats))]
	var jobs []traceJob
	for _, m := range mats {
		m := m
		for _, n := range fig15Sizes(sc, 2, 4, 8, 16) {
			n := n
			jobs = append(jobs, traceJob{n: n, gen: func() (trace.Source, error) {
				return spmv.Trace(m, n, n, spmv.Options{})
			}})
		}
	}
	return runTraceJobs(sc, jobs)
}

// RunFig15a renders the SpMV speedups.
func RunFig15a(w io.Writer, sc Scale) error {
	header(w, "fig15a", "Sparse matrix-vector multiplication trace speedups")
	pts, err := Fig15aData(sc)
	if err != nil {
		return err
	}
	return renderSpeedups(w, pts)
}

// Fig15bData runs the graph analytics suite.
func Fig15bData(sc Scale) ([]SpeedupPoint, error) {
	benches := graphwl.Benchmarks()
	benches = benches[:sc.capBenchmarks(len(benches))]
	var jobs []traceJob
	for _, b := range benches {
		b := b
		for _, n := range fig15Sizes(sc, 4, 8, 16) {
			n := n
			jobs = append(jobs, traceJob{n: n, gen: func() (trace.Source, error) {
				return graphwl.Trace(b.Graph, b.PartitionFor(n*n), n, n, graphwl.Options{})
			}})
		}
	}
	return runTraceJobs(sc, jobs)
}

// RunFig15b renders the graph analytics speedups.
func RunFig15b(w io.Writer, sc Scale) error {
	header(w, "fig15b", "Graph analytics trace speedups")
	pts, err := Fig15bData(sc)
	if err != nil {
		return err
	}
	return renderSpeedups(w, pts)
}

// Fig15cData runs the Token LU dataflow suite (latency-bound).
func Fig15cData(sc Scale) ([]SpeedupPoint, error) {
	mats := dataflow.Benchmarks()
	mats = mats[:sc.capBenchmarks(len(mats))]
	var jobs []traceJob
	for _, m := range mats {
		m := m
		for _, n := range fig15Sizes(sc, 8, 16) {
			n := n
			jobs = append(jobs, traceJob{n: n, gen: func() (trace.Source, error) {
				return dataflow.Trace(m, n, n, dataflow.Options{})
			}})
		}
	}
	return runTraceJobs(sc, jobs)
}

// RunFig15c renders the LU dataflow speedups.
func RunFig15c(w io.Writer, sc Scale) error {
	header(w, "fig15c", "Token LU factorization dataflow trace speedups")
	pts, err := Fig15cData(sc)
	if err != nil {
		return err
	}
	return renderSpeedups(w, pts)
}

// Fig15dData runs the multiprocessor overlay suite: 32 active threads
// mapped onto the lower half of an 8×8 overlay NoC.
func Fig15dData(sc Scale) ([]SpeedupPoint, error) {
	benches := overlay.Benchmarks()
	benches = benches[:sc.capBenchmarks(len(benches))]
	n := sc.capN(8)
	active := 32
	if n*n/2 < active {
		active = n * n / 2
	}
	var jobs []traceJob
	for _, b := range benches {
		b := b
		jobs = append(jobs, traceJob{n: n, pes: active, gen: func() (trace.Source, error) {
			return overlay.Trace(b, n, n, active, sc.Seed)
		}})
	}
	return runTraceJobs(sc, jobs)
}

// RunFig15d renders the overlay speedups.
func RunFig15d(w io.Writer, sc Scale) error {
	header(w, "fig15d", "Multiprocessor overlay (PARSEC-like) trace speedups, 32 threads")
	pts, err := Fig15dData(sc)
	if err != nil {
		return err
	}
	return renderSpeedups(w, pts)
}
