package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"fasttrack/internal/core"
)

// testScale is small enough for CI but big enough that the paper's
// qualitative claims are visible.
func testScale() Scale {
	return Scale{
		Quota:           300,
		Rates:           []float64{0.05, 0.3, 1.0},
		MaxN:            8,
		TraceBenchmarks: 3,
		Seed:            1,
	}
}

func TestRegistryCoversEveryTableAndFigure(t *testing.T) {
	want := []string{
		"table1", "fig1", "fig4", "fig6", "table2", "fig10",
		"fig11", "fig12", "fig13", "fig14",
		"fig15a", "fig15b", "fig15c", "fig15d",
		"fig16", "fig17", "fig18", "fig19",
	}
	got := map[string]bool{}
	for _, e := range All() {
		got[e.ID] = true
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("registry missing %s", id)
		}
	}
	if _, err := ByID("fig11"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id should error")
	}
}

// findRate picks one point from a sweep.
func findRate(pts []RatePoint, config, patternPrefix string, rate float64) RatePoint {
	for _, p := range pts {
		if p.Config == config && strings.HasPrefix(p.Pattern, patternPrefix) && p.InjectionRate == rate {
			return p
		}
	}
	return RatePoint{}
}

// TestFig11Shapes asserts the paper's headline synthetic results: at
// saturation FastTrack R=1 beats Hoplite by ≥2× on RANDOM, the
// depopulated NoC sits in between, and nobody wins below 10% injection.
func TestFig11Shapes(t *testing.T) {
	pts, err := Fig11Data(testScale())
	if err != nil {
		t.Fatal(err)
	}
	ft1 := findRate(pts, "FT(64,2,1)", "RANDOM", 1.0).SustainedRate
	ft2 := findRate(pts, "FT(64,2,2)", "RANDOM", 1.0).SustainedRate
	hop := findRate(pts, "Hoplite", "RANDOM", 1.0).SustainedRate
	if ft1 < 2.0*hop {
		t.Errorf("RANDOM saturation: FT(64,2,1)=%.3f should be ≥2x Hoplite=%.3f", ft1, hop)
	}
	if !(ft2 > hop && ft2 < ft1) {
		t.Errorf("depopulated NoC should sit between: %.3f vs [%.3f, %.3f]", ft2, hop, ft1)
	}
	// Below saturation everyone delivers the offered load.
	lowFT := findRate(pts, "FT(64,2,1)", "RANDOM", 0.05).SustainedRate
	lowHop := findRate(pts, "Hoplite", "RANDOM", 0.05).SustainedRate
	if lowFT/lowHop > 1.1 || lowHop/lowFT > 1.1 {
		t.Errorf("no win expected at 5%% injection: %.4f vs %.4f", lowFT, lowHop)
	}
	// BITCOMPL also gains; latency at saturation is far lower on FT.
	bc1 := findRate(pts, "FT(64,2,1)", "BITCOMPL", 1.0).SustainedRate
	bcH := findRate(pts, "Hoplite", "BITCOMPL", 1.0).SustainedRate
	if bc1 < 1.5*bcH {
		t.Errorf("BITCOMPL saturation: %.3f vs %.3f", bc1, bcH)
	}
	latFT := findRate(pts, "FT(64,2,1)", "RANDOM", 1.0).AvgLatency
	latHop := findRate(pts, "Hoplite", "RANDOM", 1.0).AvgLatency
	if latFT > 0.7*latHop {
		t.Errorf("saturated avg latency: FT %.0f should be well under Hoplite %.0f", latFT, latHop)
	}
}

// TestFig16WorstCaseLatency asserts the low-injection worst-case ordering:
// fully-populated FastTrack ≪ depopulated ≪ Hoplite (the paper reports 7×
// and 3× reductions).
func TestFig16WorstCaseLatency(t *testing.T) {
	res, err := Fig16Data(testScale())
	if err != nil {
		t.Fatal(err)
	}
	worst := map[string]int64{}
	for _, r := range res {
		worst[r.Config] = r.WorstLatency
	}
	if !(worst["FT(64,2,1)"] < worst["FT(64,2,2)"] && worst["FT(64,2,2)"] < worst["Hoplite"]) {
		t.Errorf("worst-case ordering wrong: %v", worst)
	}
	if ratio := float64(worst["Hoplite"]) / float64(worst["FT(64,2,1)"]); ratio < 3 {
		t.Errorf("FT(64,2,1) worst-case reduction %.1fx, want ≥3x", ratio)
	}
}

// TestFig17DSweep asserts the D sweet spot: on an 8×8 NoC D=2 outperforms
// D=4 (too-long links exclude short transfers), and depopulation (R=D)
// reduces throughput versus R=1.
func TestFig17DSweep(t *testing.T) {
	pts, err := Fig17Data(testScale())
	if err != nil {
		t.Fatal(err)
	}
	get := func(pes, d int, extreme bool) float64 {
		for _, p := range pts {
			if p.PEs == pes && p.D == d && p.RExtreme == extreme {
				return p.SustainedRate
			}
		}
		t.Fatalf("missing point PEs=%d D=%d extreme=%v", pes, d, extreme)
		return 0
	}
	if d2, d4 := get(64, 2, false), get(64, 4, false); d2 <= d4 {
		t.Errorf("8x8: D=2 (%.3f) should beat D=4 (%.3f)", d2, d4)
	}
	if full, depop := get(64, 2, false), get(64, 2, true); full <= depop {
		t.Errorf("full population (%.3f) should beat R=D (%.3f)", full, depop)
	}
}

// TestFig13IsoWiring asserts FastTrack uses wires better than replicated
// Hoplite: FT(64,2,1) ≥ Hoplite-3x sustained rate at saturation.
func TestFig13IsoWiring(t *testing.T) {
	pts, err := Fig13Data(testScale())
	if err != nil {
		t.Fatal(err)
	}
	ft := findRate(pts, "FT(64,2,1)", "RANDOM/64PE", 1.0)
	h3 := findRate(pts, "Hoplite-3x", "RANDOM/64PE", 1.0)
	if ft.SustainedRate < 1.1*h3.SustainedRate {
		t.Errorf("FT(64,2,1) %.3f should beat Hoplite-3x %.3f by ≥1.1x",
			ft.SustainedRate, h3.SustainedRate)
	}
	if ft.AvgLatency > h3.AvgLatency {
		t.Errorf("FT latency %.0f should be ≤ Hoplite-3x %.0f", ft.AvgLatency, h3.AvgLatency)
	}
}

// TestFig14CostAware asserts FastTrack needs fewer LUTs than the
// multi-channel alternatives while delivering more throughput than 3x.
func TestFig14CostAware(t *testing.T) {
	pts, err := Fig14Data(testScale())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CostPoint{}
	for _, p := range pts {
		byName[p.Config] = p
	}
	ft1, h3 := byName["FT(64,2,1)"], byName["Hoplite-3x"]
	if ft1.LUTs >= h3.LUTs {
		t.Errorf("FT(64,2,1) LUTs %d should undercut Hoplite-3x %d", ft1.LUTs, h3.LUTs)
	}
	if ft1.ThroughputMPPS <= h3.ThroughputMPPS {
		t.Errorf("FT(64,2,1) throughput %.0f should beat Hoplite-3x %.0f",
			ft1.ThroughputMPPS, h3.ThroughputMPPS)
	}
	if ft1.WireCount != h3.WireCount {
		t.Errorf("iso-wiring pair disagrees on wire count: %v vs %v", ft1.WireCount, h3.WireCount)
	}
	// Fig 19: FT(64,2,1) beats baseline Hoplite on throughput with lower
	// or comparable energy.
	hop := byName["Hoplite"]
	if ft1.EnergyJ > 1.3*hop.EnergyJ {
		t.Errorf("FT energy %.3fJ should be ≤1.3x Hoplite %.3fJ", ft1.EnergyJ, hop.EnergyJ)
	}
}

// TestFig18ExpressLinksReduceDeflections asserts the Fig 18 accounting:
// FastTrack shifts traffic onto express links and cuts total misroutes.
func TestFig18ExpressLinksReduceDeflections(t *testing.T) {
	res, err := Fig18Data(testScale())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig18Result{}
	for _, r := range res {
		byName[r.Config] = r
	}
	ft1, ft2, hop := byName["FT(64,2,1)"], byName["FT(64,2,2)"], byName["Hoplite"]
	if ft1.ExpressHops == 0 || ft2.ExpressHops == 0 {
		t.Fatal("no express usage recorded")
	}
	if ft1.ExpressHops <= ft2.ExpressHops {
		t.Errorf("less depopulation should mean more express hops: %d vs %d",
			ft1.ExpressHops, ft2.ExpressHops)
	}
	sum := func(m map[string]int64) int64 {
		var t int64
		for _, v := range m {
			t += v
		}
		return t
	}
	if sum(ft1.Misroutes) >= sum(hop.Misroutes) {
		t.Errorf("FT(64,2,1) misroutes %d should be below Hoplite %d",
			sum(ft1.Misroutes), sum(hop.Misroutes))
	}
}

// TestFig15Shapes asserts positive speedups for the throughput-bound
// suites and the benchmark-specific facts the paper calls out.
func TestFig15Shapes(t *testing.T) {
	sc := testScale()
	sc.TraceBenchmarks = 0 // need named benchmarks

	a, err := Fig15aData(Scale{Quota: sc.Quota, MaxN: 8, TraceBenchmarks: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range a {
		if p.Speedup < 0.95 {
			t.Errorf("spmv %s@%d: FT slower than Hoplite (%.2fx)", p.Benchmark, p.PEs, p.Speedup)
		}
	}

	c, err := Fig15cData(Scale{Quota: sc.Quota, MaxN: 8, TraceBenchmarks: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range c {
		if p.Speedup < 1.0 || p.Speedup > 2.2 {
			t.Errorf("LU %s: speedup %.2fx outside the latency-bound band (1.0-2.2)",
				p.Benchmark, p.Speedup)
		}
	}

	d, err := Fig15dData(Scale{Quota: sc.Quota, MaxN: 8, TraceBenchmarks: 0, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var freqmine, best float64
	for _, p := range d {
		if strings.Contains(p.Benchmark, "freqmine") {
			freqmine = p.Speedup
		}
		if p.Speedup > best {
			best = p.Speedup
		}
	}
	if freqmine == 0 || best == 0 {
		t.Fatal("missing overlay results")
	}
	if freqmine > 0.8*best {
		t.Errorf("freqmine (local traffic, %.2fx) should gain much less than the best (%.2fx)",
			freqmine, best)
	}
}

// TestAdaptiveSweepMatchesDense asserts the bisection-driven sweep agrees
// with the dense grid on what the figures report — each curve's saturation
// throughput — while evaluating fewer points per curve.
func TestAdaptiveSweepMatchesDense(t *testing.T) {
	sc := Scale{
		Quota: 300,
		Rates: []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1.0},
		MaxN:  4,
		Seed:  1,
	}
	configs := []core.Config{core.Hoplite(4), core.FastTrack(4, 2, 1)}
	patterns := []string{"RANDOM"}

	dense, err := sweepSynthetic(sc, configs, patterns)
	if err != nil {
		t.Fatal(err)
	}
	asc := sc
	asc.AdaptiveRates = true
	adaptive, err := sweepSynthetic(asc, configs, patterns)
	if err != nil {
		t.Fatal(err)
	}

	maxRate := func(pts []RatePoint, cfg string) float64 {
		var m float64
		for _, p := range pts {
			if p.Config == cfg && p.SustainedRate > m {
				m = p.SustainedRate
			}
		}
		return m
	}
	for _, cfg := range configs {
		d, a := maxRate(dense, cfg.String()), maxRate(adaptive, cfg.String())
		if d == 0 {
			t.Fatalf("%s: dense sweep found no throughput", cfg)
		}
		if rel := math.Abs(a-d) / d; rel > 0.08 {
			t.Errorf("%s: adaptive saturation %.4f deviates %.1f%% from dense %.4f",
				cfg, a, 100*rel, d)
		}
	}
	if len(adaptive) >= len(dense) {
		t.Errorf("adaptive sweep ran %d points, no cheaper than the dense grid's %d",
			len(adaptive), len(dense))
	}
}

// TestRunAllRendersAtQuickScale smoke-runs every registered experiment.
func TestRunAllRendersAtQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	sc := QuickScale()
	for _, e := range All() {
		var buf bytes.Buffer
		if err := e.Run(&buf, sc); err != nil {
			t.Errorf("%s: %v", e.ID, err)
			continue
		}
		if buf.Len() == 0 {
			t.Errorf("%s rendered nothing", e.ID)
		}
	}
}

// TestExtensionShapes asserts the ablation experiments tell the expected
// stories: Inject is cheaper but slower than Full, one pipeline stage
// raises the clock of a long-express design, and the cacheline study shows
// wider datapaths winning until routability caps them.
func TestExtensionShapes(t *testing.T) {
	sc := testScale()

	vp, err := ExtVariantsData(sc)
	if err != nil {
		t.Fatal(err)
	}
	var fullRate, injRate float64
	var fullLUTs, injLUTs int
	for _, p := range vp {
		if p.InjectionRate != 1.0 {
			continue
		}
		if p.Variant == "FT(Full)" {
			fullRate, fullLUTs = p.SustainedRate, p.LUTs
		} else {
			injRate, injLUTs = p.SustainedRate, p.LUTs
		}
	}
	if injLUTs >= fullLUTs {
		t.Errorf("Inject (%d LUTs) should undercut Full (%d)", injLUTs, fullLUTs)
	}
	if injRate >= fullRate {
		t.Errorf("Full (%.3f) should out-sustain Inject (%.3f)", fullRate, injRate)
	}

	pp, err := ExtPipelineData(sc)
	if err != nil {
		t.Fatal(err)
	}
	if pp[1].ClockMHz <= pp[0].ClockMHz {
		t.Errorf("one pipeline stage should raise the clock: %.0f vs %.0f",
			pp[1].ClockMHz, pp[0].ClockMHz)
	}
	if pp[1].ThroughputMPPS <= pp[0].ThroughputMPPS {
		t.Errorf("pipelined FT(64,4,1) should deliver more pkt/s: %.0f vs %.0f",
			pp[1].ThroughputMPPS, pp[0].ThroughputMPPS)
	}

	fp, err := ExtFairnessData(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range fp {
		if p.JainIndex <= 0 || p.JainIndex > 1 {
			t.Errorf("%s Jain index %v out of range", p.Config, p.JainIndex)
		}
	}

	cp, err := ExtCachelineData(Scale{Quota: 100, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	var last float64
	for _, p := range cp {
		if p.Config != "FT(16,2,1)" || !p.Routable || p.WidthBits > 512 {
			continue
		}
		if p.LinesPerSec <= last {
			t.Errorf("wider datapath should move more cachelines: %d bits -> %.1f Ml/s (prev %.1f)",
				p.WidthBits, p.LinesPerSec, last)
		}
		last = p.LinesPerSec
	}
	sawNA := false
	for _, p := range cp {
		if !p.Routable {
			sawNA = true
		}
	}
	if !sawNA {
		t.Error("expected the 1024b FastTrack point to fail routability")
	}
}

// TestExtBufferedShapes asserts the simulated Fig 1 story: the buffered
// mesh wins on packets/cycle over Hoplite, but FastTrack wins on packets/ns
// at a fraction of the buffered router's LUT cost.
func TestExtBufferedShapes(t *testing.T) {
	pts, err := ExtBufferedData(testScale())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]BufferedPoint{}
	for _, p := range pts {
		byName[p.Config] = p
	}
	buf, hop, ft := byName["BufferedMesh(d=4)"], byName["Hoplite"], byName["FT(64,2,1)"]
	if buf.SustainedRate <= hop.SustainedRate {
		t.Errorf("buffered per-cycle rate %.3f should beat Hoplite %.3f",
			buf.SustainedRate, hop.SustainedRate)
	}
	if buf.LUTsPerRouter < 5*hop.LUTsPerRouter {
		t.Errorf("buffered router %d LUTs should dwarf Hoplite %d",
			buf.LUTsPerRouter, hop.LUTsPerRouter)
	}
	if ft.PktPerNS <= buf.PktPerNS {
		t.Errorf("FT pkt/ns %.2f should beat buffered %.2f (wire speed wins)",
			ft.PktPerNS, buf.PktPerNS)
	}
	if ft.LUTsPerRouter >= buf.LUTsPerRouter {
		t.Errorf("FT router %d LUTs should undercut buffered %d",
			ft.LUTsPerRouter, buf.LUTsPerRouter)
	}
}
