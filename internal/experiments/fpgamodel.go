package experiments

import (
	"fmt"
	"io"

	"fasttrack/internal/core"
	"fasttrack/internal/fpga"
)

// LiteratureRouter is a published router datapoint quoted by the paper's
// Table I / Fig 1 for NoCs we do not re-implement in RTL. Reproduced here
// as reference constants so the regenerated table carries the same
// comparison rows.
type LiteratureRouter struct {
	Name     string
	Device   string
	LUTs     int
	FFs      int
	PeriodNS float64
	// PortsPerCycle is the peak packets per cycle a switch can move, used
	// for the Fig 1 bandwidth axis.
	PortsPerCycle float64
}

// LiteratureRouters returns the non-Hoplite rows of Table I.
func LiteratureRouters() []LiteratureRouter {
	return []LiteratureRouter{
		{Name: "OpenSMART 4VC 1-deep", Device: "Virtex-7 VX690T", LUTs: 3700, FFs: 1700, PeriodNS: 5, PortsPerCycle: 4},
		{Name: "BLESS (no buffers)", Device: "Virtex-2 Pro", LUTs: 1090, FFs: 335, PeriodNS: 13.2, PortsPerCycle: 4},
		{Name: "CONNECT 2VC 16-deep", Device: "Virtex-6 LX240T", LUTs: 1562, FFs: 635, PeriodNS: 9.6, PortsPerCycle: 4},
		{Name: "Split-Merge DOR", Device: "Virtex-6 LX240T", LUTs: 1785, FFs: 541, PeriodNS: 4.5, PortsPerCycle: 2},
		{Name: "Altera Qsys", Device: "Stratix IV C2", LUTs: 1673, FFs: 0, PeriodNS: 3.1, PortsPerCycle: 2},
	}
}

// Table1Row is one row of the regenerated Table I.
type Table1Row struct {
	Name     string
	Device   string
	LUTs     int
	FFs      int
	PeriodNS float64
	Modeled  bool // produced by this repo's cost model vs quoted
}

// Table1Data regenerates Table I: literature rows plus our modeled Hoplite
// and FastTrack rows at 32-bit width on the Virtex-7 485T.
func Table1Data() []Table1Row {
	dev := fpga.Virtex7_485T()
	var rows []Table1Row
	for _, lr := range LiteratureRouters() {
		rows = append(rows, Table1Row{Name: lr.Name, Device: lr.Device,
			LUTs: lr.LUTs, FFs: lr.FFs, PeriodNS: lr.PeriodNS})
	}
	hop := fpga.HopliteSpec(8, 32, 1)
	hl, hf := hop.Resources()
	n := 8 * 8
	rows = append(rows, Table1Row{
		Name: "Hoplite (modeled)", Device: dev.Name,
		LUTs: hl / n, FFs: hf / n,
		PeriodNS: 1000 / hop.ClockMHz(dev), Modeled: true,
	})
	for _, v := range []core.Variant{core.VariantInject, core.VariantFull} {
		ft, err := fpga.FastTrackSpec(8, 2, 1, 32, v)
		if err != nil {
			panic(err)
		}
		fl, ff := ft.Resources()
		rows = append(rows, Table1Row{
			Name: fmt.Sprintf("FastTrack %v (modeled)", v), Device: dev.Name,
			LUTs: fl / n, FFs: ff / n,
			PeriodNS: 1000 / ft.ClockMHz(dev), Modeled: true,
		})
	}
	return rows
}

// RunTable1 renders Table I.
func RunTable1(w io.Writer, _ Scale) error {
	header(w, "table1", "FPGA implementations of 32b NoC routers")
	t := newTable(w, "Router", "Device", "LUTs", "FFs", "Period(ns)", "Source")
	for _, r := range Table1Data() {
		src := "paper (quoted)"
		if r.Modeled {
			src = "this repo"
		}
		t.row(r.Name, r.Device, r.LUTs, r.FFs, fmt.Sprintf("%.1f", r.PeriodNS), src)
	}
	return t.flush()
}

// Fig1Point is one scatter point of Fig 1: switch cost vs peak bandwidth.
type Fig1Point struct {
	Name string
	// Cost is max(LUTs, FFs) per switch.
	Cost int
	// BandwidthPktNS is peak switch bandwidth in packets/ns.
	BandwidthPktNS float64
}

// Fig1Data regenerates the Fig 1 scatter.
func Fig1Data() []Fig1Point {
	dev := fpga.Virtex7_485T()
	var pts []Fig1Point
	for _, lr := range LiteratureRouters() {
		cost := lr.LUTs
		if lr.FFs > cost {
			cost = lr.FFs
		}
		pts = append(pts, Fig1Point{Name: lr.Name, Cost: cost,
			BandwidthPktNS: lr.PortsPerCycle / lr.PeriodNS})
	}
	hop := fpga.HopliteSpec(8, 32, 1)
	hl, hf := hop.Resources()
	pts = append(pts, Fig1Point{Name: "Hoplite", Cost: max(hl, hf) / 64,
		BandwidthPktNS: hop.PeakBandwidth(dev)})
	ft, _ := fpga.FastTrackSpec(8, 2, 1, 32, core.VariantFull)
	fl, ff := ft.Resources()
	pts = append(pts, Fig1Point{Name: "FastTrack", Cost: max(fl, ff) / 64,
		BandwidthPktNS: ft.PeakBandwidth(dev)})
	return pts
}

// RunFig1 renders the Fig 1 scatter data.
func RunFig1(w io.Writer, _ Scale) error {
	header(w, "fig1", "Area-bandwidth tradeoffs in implementing NoCs on FPGAs")
	t := newTable(w, "NoC", "CostPerSwitch max(LUTs,FFs)", "PeakBW (pkt/ns)")
	for _, p := range Fig1Data() {
		t.row(p.Name, p.Cost, fmt.Sprintf("%.2f", p.BandwidthPktNS))
	}
	return t.flush()
}

// WirePoint is one (distance, hops) sample of the §III characterization.
type WirePoint struct {
	Distance, Hops int
	MHz            float64
}

// Fig4Data sweeps the virtual-express experiment of Fig 4.
func Fig4Data() []WirePoint {
	dev := fpga.Virtex7_485T()
	var pts []WirePoint
	for _, h := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8} {
		for d := 1; d <= 256; d *= 2 {
			pts = append(pts, WirePoint{Distance: d, Hops: h,
				MHz: dev.VirtualExpressMHz(d, h)})
		}
	}
	return pts
}

// Fig6Data sweeps the physical-express experiment of Fig 6.
func Fig6Data() []WirePoint {
	dev := fpga.Virtex7_485T()
	var pts []WirePoint
	for _, h := range []int{0, 1, 2, 3, 4, 5, 6, 7, 8} {
		for d := 1; d <= 256; d *= 2 {
			pts = append(pts, WirePoint{Distance: d, Hops: h,
				MHz: dev.PhysicalExpressMHz(d, h)})
		}
	}
	return pts
}

func renderWire(w io.Writer, pts []WirePoint) error {
	t := newTable(w, "Hops\\Dist", "1", "2", "4", "8", "16", "32", "64", "128", "256")
	byHop := map[int][]WirePoint{}
	var hops []int
	for _, p := range pts {
		if _, ok := byHop[p.Hops]; !ok {
			hops = append(hops, p.Hops)
		}
		byHop[p.Hops] = append(byHop[p.Hops], p)
	}
	for _, h := range hops {
		cells := []any{h}
		for _, p := range byHop[h] {
			cells = append(cells, fmt.Sprintf("%.0f", p.MHz))
		}
		t.row(cells...)
	}
	return t.flush()
}

// RunFig4 renders Fig 4 (frequency in MHz per distance column).
func RunFig4(w io.Writer, _ Scale) error {
	header(w, "fig4", "Virtual express links: registered wire with N LUT hops")
	return renderWire(w, Fig4Data())
}

// RunFig6 renders Fig 6.
func RunFig6(w io.Writer, _ Scale) error {
	header(w, "fig6", "Physical express links: bypass wire over N LUT-FF stages")
	return renderWire(w, Fig6Data())
}

// Table2Row is one configuration row of Table II.
type Table2Row struct {
	Config     string
	LUTs, FFs  int
	MHz, Watts float64
}

// Table2Data regenerates Table II (8×8, 256-bit, Virtex-7 485T).
func Table2Data() []Table2Row {
	dev := fpga.Virtex7_485T()
	specs := []fpga.NoCSpec{fpga.HopliteSpec(8, 256, 1)}
	for _, dr := range [][2]int{{2, 1}, {2, 2}} {
		s, err := fpga.FastTrackSpec(8, dr[0], dr[1], 256, core.VariantFull)
		if err != nil {
			panic(err)
		}
		specs = append(specs, s)
	}
	var rows []Table2Row
	for _, s := range specs {
		l, f := s.Resources()
		rows = append(rows, Table2Row{Config: s.Name, LUTs: l, FFs: f,
			MHz: s.ClockMHz(dev), Watts: s.PowerW(dev)})
	}
	return rows
}

// RunTable2 renders Table II with ratios against baseline Hoplite.
func RunTable2(w io.Writer, _ Scale) error {
	header(w, "table2", "Resource usage and frequency of an 8x8 NoC (256b) on Virtex-7 485T")
	rows := Table2Data()
	base := rows[0]
	t := newTable(w, "Config", "LUTs", "FFs", "MHz", "Power(W)")
	for _, r := range rows {
		t.row(r.Config,
			fmt.Sprintf("%dK (%.1fx)", r.LUTs/1000, float64(r.LUTs)/float64(base.LUTs)),
			fmt.Sprintf("%dK (%.1fx)", r.FFs/1000, float64(r.FFs)/float64(base.FFs)),
			fmt.Sprintf("%.0f (%.2fx)", r.MHz, r.MHz/base.MHz),
			fmt.Sprintf("%.1f (%.1fx)", r.Watts, r.Watts/base.Watts))
	}
	return t.flush()
}

// Fig10Cell is one grid cell of the routability study.
type Fig10Cell struct {
	Config    string
	WidthBits int
	MHz       float64 // 0 = NA (does not fit)
}

// fig10Specs returns the configuration columns of the Fig 10 grid.
func fig10Specs() []fpga.NoCSpec {
	var specs []fpga.NoCSpec
	for _, n := range []int{4, 8, 16} {
		specs = append(specs, fpga.HopliteSpec(n, 0, 1))
		for _, dr := range [][2]int{{2, 1}, {2, 2}} {
			s, err := fpga.FastTrackSpec(n, dr[0], dr[1], 0, core.VariantFull)
			if err != nil {
				panic(err)
			}
			s.Name = fmt.Sprintf("%s@%dx%d", s.Name, n, n)
			specs = append(specs, s)
		}
	}
	return specs
}

// Fig10Widths lists the datawidth rows of the grid.
func Fig10Widths() []int { return []int{8, 16, 32, 48, 64, 96, 128, 192, 256, 384, 512, 1024} }

// Fig10Data evaluates peak frequency (or NA) per (config, width) cell.
func Fig10Data() []Fig10Cell {
	dev := fpga.Virtex7_485T()
	var cells []Fig10Cell
	for _, spec := range fig10Specs() {
		for _, wbits := range Fig10Widths() {
			s := spec
			s.WidthBits = wbits
			mhz := 0.0
			if s.Routable(dev) {
				mhz = s.ClockMHz(dev)
			}
			cells = append(cells, Fig10Cell{Config: spec.Name, WidthBits: wbits, MHz: mhz})
		}
	}
	return cells
}

// RunFig10 renders the routability grid (NA cells did not fit the device).
func RunFig10(w io.Writer, _ Scale) error {
	header(w, "fig10", "Peak frequency (MHz) of NoCs of varying datawidths on Virtex-7 485T")
	cells := Fig10Data()
	cols := map[string][]Fig10Cell{}
	var names []string
	for _, c := range cells {
		if _, ok := cols[c.Config]; !ok {
			names = append(names, c.Config)
		}
		cols[c.Config] = append(cols[c.Config], c)
	}
	headers := append([]string{"Width\\Config"}, names...)
	t := newTable(w, headers...)
	for i, wbits := range Fig10Widths() {
		row := []any{wbits}
		for _, n := range names {
			c := cols[n][i]
			if c.MHz == 0 {
				row = append(row, "NA")
			} else {
				row = append(row, fmt.Sprintf("%.0f", c.MHz))
			}
		}
		t.row(row...)
	}
	return t.flush()
}
