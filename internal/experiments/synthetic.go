package experiments

import (
	"context"
	"fmt"
	"io"

	"fasttrack/internal/core"
	"fasttrack/internal/noc"
	"fasttrack/internal/runner"
	"fasttrack/internal/sim"
)

// fig11Configs are the NoCs compared throughout the synthetic evaluation:
// FT(N²,2,1), FT(N²,2,2), and baseline Hoplite.
func fig11Configs(n int) []core.Config {
	return []core.Config{
		core.FastTrack(n, 2, 1),
		core.FastTrack(n, 2, 2),
		core.Hoplite(n),
	}
}

// RatePoint is one (config, pattern, injection-rate) sample.
type RatePoint struct {
	Config        string
	Pattern       string
	InjectionRate float64
	SustainedRate float64
	AvgLatency    float64
	WorstLatency  int64
}

// sweepSynthetic runs the rate sweep for the given configs and patterns on
// the lockstep batched path: jobs sharing a configuration run as one batch
// over a single topology (results are bit-identical to per-job runs and are
// served from the result cache when one is configured). With AdaptiveRates
// set the dense grid is replaced by one adaptive saturation search per
// curve, which bisects sequentially and so stays on the per-job path.
func sweepSynthetic(sc Scale, configs []core.Config, patterns []string) ([]RatePoint, error) {
	if sc.AdaptiveRates {
		return sweepSyntheticAdaptive(sc, configs, patterns)
	}
	var jobs []runner.SyntheticJob
	for _, pat := range patterns {
		for _, cfg := range configs {
			for _, rate := range sc.Rates {
				jobs = append(jobs, runner.SyntheticJob{Cfg: cfg, Opts: core.SyntheticOptions{
					Pattern: pat, Rate: rate, PacketsPerPE: sc.Quota, Seed: sc.Seed,
				}})
			}
		}
	}
	results, err := sc.runSyntheticBatch(context.Background(), jobs)
	if err != nil {
		return nil, err
	}
	pts := make([]RatePoint, len(jobs))
	for i, res := range results {
		j := jobs[i]
		pts[i] = RatePoint{
			Config: j.Cfg.String(), Pattern: j.Opts.Pattern, InjectionRate: j.Opts.Rate,
			SustainedRate: res.SustainedRate, AvgLatency: res.AvgLatency,
			WorstLatency: res.WorstLatency,
		}
	}
	return pts, nil
}

// adaptiveBracket derives the search bracket from a dense grid: the lowest
// rate stays as a guaranteed curve anchor (the figures' "no win below
// saturation" region) and the highest bounds the bisection.
func adaptiveBracket(rates []float64) (probes []float64, hi float64) {
	hi = 1.0
	if len(rates) == 0 {
		return nil, hi
	}
	lo := rates[0]
	hi = rates[0]
	for _, r := range rates[1:] {
		if r < lo {
			lo = r
		}
		if r > hi {
			hi = r
		}
	}
	return []float64{lo}, hi
}

// sweepSyntheticAdaptive runs one saturation search per (pattern, config)
// curve. Each bisection is sequential by nature, so parallelism is across
// curves; every evaluation goes through the result cache, and bisection
// midpoints are deterministic, so warm reruns evaluate nothing.
func sweepSyntheticAdaptive(sc Scale, configs []core.Config, patterns []string) ([]RatePoint, error) {
	type curve struct {
		pat string
		cfg core.Config
	}
	var curves []curve
	for _, pat := range patterns {
		for _, cfg := range configs {
			curves = append(curves, curve{pat: pat, cfg: cfg})
		}
	}
	probes, hi := adaptiveBracket(sc.Rates)
	results := make([][]RatePoint, len(curves))
	err := sc.forEachParallel(len(curves), func(ctx context.Context, i int) error {
		c := curves[i]
		sat, err := runner.SaturationSearch(func(rate float64) (sim.Result, error) {
			return sc.runSynthetic(ctx, c.cfg, sc.convergeOptions(core.SyntheticOptions{
				Pattern: c.pat, Rate: rate, PacketsPerPE: sc.Quota, Seed: sc.Seed,
			}))
		}, runner.SaturationOptions{Hi: hi, Probes: probes})
		if err != nil {
			return fmt.Errorf("%s/%s: %w", c.cfg, c.pat, err)
		}
		pts := make([]RatePoint, len(sat.Evals))
		for j, e := range sat.Evals {
			pts[j] = RatePoint{
				Config: c.cfg.String(), Pattern: c.pat, InjectionRate: e.Rate,
				SustainedRate: e.Result.SustainedRate, AvgLatency: e.Result.AvgLatency,
				WorstLatency: e.Result.WorstLatency,
			}
		}
		results[i] = pts
		return nil
	})
	if err != nil {
		return nil, err
	}
	var pts []RatePoint
	for _, r := range results {
		pts = append(pts, r...)
	}
	return pts, nil
}

// Fig11Data sweeps sustained rate vs injection rate for the paper's four
// patterns on the 64-PE system (8×8).
func Fig11Data(sc Scale) ([]RatePoint, error) {
	n := sc.capN(8)
	return sweepSynthetic(sc, fig11Configs(n),
		[]string{"BITCOMPL", "LOCAL", "RANDOM", "TRANSPOSE"})
}

func renderRatePoints(w io.Writer, pts []RatePoint, value func(RatePoint) string, valueName string) error {
	t := newTable(w, "Pattern", "Config", "InjRate", valueName)
	for _, p := range pts {
		t.row(p.Pattern, p.Config, fmt.Sprintf("%.2f", p.InjectionRate), value(p))
	}
	return t.flush()
}

// RunFig11 renders sustained-rate curves.
func RunFig11(w io.Writer, sc Scale) error {
	header(w, "fig11", "Sustained rate (pkt/cycle/PE) for synthetic traffic, 64-PE NoCs")
	pts, err := Fig11Data(sc)
	if err != nil {
		return err
	}
	return renderRatePoints(w, pts, func(p RatePoint) string {
		return fmt.Sprintf("%.4f", p.SustainedRate)
	}, "Sustained")
}

// RunFig12 renders average-latency curves from the same sweep.
func RunFig12(w io.Writer, sc Scale) error {
	header(w, "fig12", "Average packet latency (cycles) for synthetic traffic, 64-PE NoCs")
	pts, err := Fig11Data(sc)
	if err != nil {
		return err
	}
	return renderRatePoints(w, pts, func(p RatePoint) string {
		return fmt.Sprintf("%.1f", p.AvgLatency)
	}, "AvgLatency")
}

// HistogramRow is one bucket of the Fig 16 latency histograms.
type HistogramRow struct {
	Config     string
	UpperBound int64 // -1 = overflow bucket
	Percent    float64
}

// Fig16Result captures one config's latency distribution at low injection.
type Fig16Result struct {
	Config       string
	WorstLatency int64
	P50, P99     int64
	Rows         []HistogramRow
}

// Fig16Data runs RANDOM traffic below saturation (<10% injection) and
// returns the per-config latency histograms, reproducing the paper's
// worst-case latency comparison (7× / 3× smaller for FT R=1 / R=D).
func Fig16Data(sc Scale) ([]Fig16Result, error) {
	n := sc.capN(8)
	var out []Fig16Result
	for _, cfg := range fig11Configs(n) {
		res, err := sc.runSynthetic(context.Background(), cfg, core.SyntheticOptions{
			Pattern: "RANDOM", Rate: 0.09, PacketsPerPE: sc.Quota, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		fr := Fig16Result{Config: cfg.String(), WorstLatency: res.WorstLatency,
			P50: res.P50, P99: res.P99}
		total := float64(res.Latency.Count())
		res.Latency.Buckets(func(upper, count int64) {
			fr.Rows = append(fr.Rows, HistogramRow{Config: fr.Config,
				UpperBound: upper, Percent: 100 * float64(count) / total})
		})
		out = append(out, fr)
	}
	return out, nil
}

// RunFig16 renders the latency histograms.
func RunFig16(w io.Writer, sc Scale) error {
	header(w, "fig16", "Packet latency histogram, 64-PE RANDOM at <10% injection")
	results, err := Fig16Data(sc)
	if err != nil {
		return err
	}
	for _, r := range results {
		fmt.Fprintf(w, "-- %s: worst=%d p50=%d p99=%d\n", r.Config, r.WorstLatency, r.P50, r.P99)
		t := newTable(w, "Latency<=", "Percent")
		for _, row := range r.Rows {
			label := fmt.Sprint(row.UpperBound)
			if row.UpperBound < 0 {
				label = "overflow"
			}
			t.row(label, fmt.Sprintf("%.2f%%", row.Percent))
		}
		if err := t.flush(); err != nil {
			return err
		}
	}
	return nil
}

// Fig17Point is one (N, D, R-policy) sustained-rate sample at 50% RANDOM
// injection.
type Fig17Point struct {
	PEs           int
	D             int
	RExtreme      bool // false: R=1 (full population); true: R=D
	SustainedRate float64
}

// Fig17Data sweeps the express link length D for R=1 and R=D, reproducing
// the paper's observation that D=2 beats D=4 on an 8×8 NoC because overly
// long links exclude short transfers from the express network.
func Fig17Data(sc Scale) ([]Fig17Point, error) {
	type job struct {
		n, d, r int
		extreme bool
	}
	var jobs []job
	for _, n := range []int{4, 8, 16} {
		if sc.MaxN > 0 && n > sc.MaxN {
			continue
		}
		for _, d := range []int{1, 2, 3, 4, 6, 8} {
			if d > n/2 {
				continue
			}
			for _, extreme := range []bool{false, true} {
				r := 1
				if extreme {
					r = d
				}
				if d%r != 0 || n%r != 0 {
					continue // depopulation braid cannot close
				}
				jobs = append(jobs, job{n: n, d: d, r: r, extreme: extreme})
			}
		}
	}
	pts := make([]Fig17Point, len(jobs))
	err := sc.forEachParallel(len(jobs), func(ctx context.Context, i int) error {
		j := jobs[i]
		cfg := core.FastTrack(j.n, j.d, j.r)
		res, err := sc.runSynthetic(ctx, cfg, core.SyntheticOptions{
			Pattern: "RANDOM", Rate: 0.5, PacketsPerPE: sc.Quota, Seed: sc.Seed,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", cfg, err)
		}
		pts[i] = Fig17Point{PEs: j.n * j.n, D: j.d, RExtreme: j.extreme,
			SustainedRate: res.SustainedRate}
		return nil
	})
	return pts, err
}

// RunFig17 renders the D sweep.
func RunFig17(w io.Writer, sc Scale) error {
	header(w, "fig17", "Sustained rate vs express link length D (RANDOM @ 50% injection)")
	pts, err := Fig17Data(sc)
	if err != nil {
		return err
	}
	t := newTable(w, "PEs", "D", "R", "Sustained")
	for _, p := range pts {
		r := "1"
		if p.RExtreme {
			r = "D"
		}
		t.row(p.PEs, p.D, r, fmt.Sprintf("%.4f", p.SustainedRate))
	}
	return t.flush()
}

// Fig18Result captures link usage and per-input deflections for one config.
type Fig18Result struct {
	Config        string
	ShortHops     int64
	ExpressHops   int64
	Misroutes     map[string]int64
	ExpressDenied map[string]int64
}

// Fig18Data runs 64-PE RANDOM traffic and extracts the Fig 18a/18b
// counters: short vs express hop usage, and deflections by input port.
func Fig18Data(sc Scale) ([]Fig18Result, error) {
	n := sc.capN(8)
	var out []Fig18Result
	for _, cfg := range fig11Configs(n) {
		res, err := sc.runSynthetic(context.Background(), cfg, core.SyntheticOptions{
			Pattern: "RANDOM", Rate: 0.5, PacketsPerPE: sc.Quota, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		fr := Fig18Result{
			Config:        cfg.String(),
			ShortHops:     res.Counters.ShortTraversals,
			ExpressHops:   res.Counters.ExpressTraversals,
			Misroutes:     map[string]int64{},
			ExpressDenied: map[string]int64{},
		}
		for p := noc.Port(0); p < noc.NumPorts; p++ {
			if v := res.Counters.MisroutesByInput[p]; v > 0 {
				fr.Misroutes[p.String()] = v
			}
			if v := res.Counters.ExpressDeniedByInput[p]; v > 0 {
				fr.ExpressDenied[p.String()] = v
			}
		}
		out = append(out, fr)
	}
	return out, nil
}

// RunFig18 renders link usage (18a) and deflection counters (18b).
func RunFig18(w io.Writer, sc Scale) error {
	header(w, "fig18", "Link usage and deflections, 64-PE RANDOM traffic")
	results, err := Fig18Data(sc)
	if err != nil {
		return err
	}
	t := newTable(w, "Config", "ShortHops", "ExpressHops", "TotalHops")
	for _, r := range results {
		t.row(r.Config, r.ShortHops, r.ExpressHops, r.ShortHops+r.ExpressHops)
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintln(w, "-- deflections by input port (misroutes / express-denied)")
	t = newTable(w, "Config", "Port", "Misroutes", "ExpressDenied")
	for _, r := range results {
		for p := noc.Port(0); p < noc.NumPorts; p++ {
			name := p.String()
			m, d := r.Misroutes[name], r.ExpressDenied[name]
			if m == 0 && d == 0 {
				continue
			}
			t.row(r.Config, name, m, d)
		}
	}
	return t.flush()
}

// saturationThroughput returns the sustained rate at 100% injection.
func saturationThroughput(cfg core.Config, sc Scale) (sim.Result, error) {
	return sc.runSynthetic(context.Background(), cfg, core.SyntheticOptions{
		Pattern: "RANDOM", Rate: 1.0, PacketsPerPE: sc.Quota, Seed: sc.Seed,
	})
}
