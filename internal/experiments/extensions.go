package experiments

// Extension experiments beyond the paper's figures: ablations of the design
// choices DESIGN.md calls out (router variant, express pipelining per the
// §VII Hyperflex discussion, zero-load analysis, latency fairness). They
// are registered with ext- identifiers and run by ftexp like any figure.

import (
	"context"
	"fmt"
	"io"

	"fasttrack/internal/analysis"
	"fasttrack/internal/buffered"
	"fasttrack/internal/core"
	"fasttrack/internal/fpga"
	"fasttrack/internal/message"
	"fasttrack/internal/runner"
	"fasttrack/internal/sim"
	"fasttrack/internal/stats"
	"fasttrack/internal/traffic"
)

// Extensions returns the beyond-the-paper experiments.
func Extensions() []Experiment {
	return []Experiment{
		{ID: "ext-variants", Title: "Ablation: FT(Full) vs FTlite(Inject) router microarchitecture", Run: RunExtVariants},
		{ID: "ext-pipeline", Title: "Ablation: Hyperflex-style express link pipelining (paper §VII)", Run: RunExtPipeline},
		{ID: "ext-zeroload", Title: "Zero-load latency profile and provable Hoplite bounds", Run: RunExtZeroLoad},
		{ID: "ext-fairness", Title: "Per-source latency fairness (Jain index) under saturation", Run: RunExtFairness},
		{ID: "ext-cacheline", Title: "Cacheline serialization vs datapath width (§VI-B)", Run: RunExtCacheline},
		{ID: "ext-buffered", Title: "Buffered mesh vs bufferless NoCs (simulated Fig 1)", Run: RunExtBuffered},
	}
}

// VariantPoint compares the two router microarchitectures at one rate.
type VariantPoint struct {
	Variant       string
	InjectionRate float64
	SustainedRate float64
	AvgLatency    float64
	LUTs          int
}

// ExtVariantsData measures the cost/performance gap between the Full and
// Inject routers on an 8×8 FT(64,2,1) under RANDOM traffic.
func ExtVariantsData(sc Scale) ([]VariantPoint, error) {
	n := sc.capN(8)
	var pts []VariantPoint
	for _, v := range []core.Variant{core.VariantFull, core.VariantInject} {
		cfg := core.FastTrack(n, 2, 1).WithVariant(v)
		spec, err := cfg.Spec()
		if err != nil {
			return nil, err
		}
		luts, _ := spec.Resources()
		for _, rate := range sc.Rates {
			res, err := sc.runSynthetic(context.Background(), cfg, core.SyntheticOptions{
				Pattern: "RANDOM", Rate: rate, PacketsPerPE: sc.Quota, Seed: sc.Seed,
			})
			if err != nil {
				return nil, err
			}
			pts = append(pts, VariantPoint{
				Variant: v.String(), InjectionRate: rate,
				SustainedRate: res.SustainedRate, AvgLatency: res.AvgLatency,
				LUTs: luts,
			})
		}
	}
	return pts, nil
}

// RunExtVariants renders the variant ablation.
func RunExtVariants(w io.Writer, sc Scale) error {
	header(w, "ext-variants", "FT(Full) vs FTlite(Inject), 64-PE RANDOM traffic")
	pts, err := ExtVariantsData(sc)
	if err != nil {
		return err
	}
	t := newTable(w, "Variant", "LUTs", "InjRate", "Sustained", "AvgLatency")
	for _, p := range pts {
		t.row(p.Variant, p.LUTs, fmt.Sprintf("%.2f", p.InjectionRate),
			fmt.Sprintf("%.4f", p.SustainedRate), fmt.Sprintf("%.1f", p.AvgLatency))
	}
	return t.flush()
}

// PipelinePoint is one express-pipelining depth sample.
type PipelinePoint struct {
	Stages         int
	ClockMHz       float64
	SustainedRate  float64
	AvgLatencyCyc  float64
	AvgLatencyNS   float64
	ThroughputMPPS float64
}

// ExtPipelineData sweeps express pipeline depth on an FT(64,4,1) — the
// configuration whose long express wires limit the clock — quantifying the
// §VII tradeoff: pipelining restores frequency but adds cycles per express
// hop.
func ExtPipelineData(sc Scale) ([]PipelinePoint, error) {
	dev := core.Virtex7()
	n := sc.capN(8)
	var pts []PipelinePoint
	for stages := 0; stages <= 3; stages++ {
		cfg := core.FastTrack(n, 4, 1).WithPipeline(stages).WithWidth(128)
		spec, err := cfg.Spec()
		if err != nil {
			return nil, err
		}
		mhz := spec.ClockMHz(dev)
		res, err := sc.runSynthetic(context.Background(), cfg, core.SyntheticOptions{
			Pattern: "RANDOM", Rate: 1.0, PacketsPerPE: sc.Quota, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		pts = append(pts, PipelinePoint{
			Stages:         stages,
			ClockMHz:       mhz,
			SustainedRate:  res.SustainedRate,
			AvgLatencyCyc:  res.AvgLatency,
			AvgLatencyNS:   res.AvgLatency / mhz * 1000,
			ThroughputMPPS: res.SustainedRate * float64(n*n) * mhz,
		})
	}
	return pts, nil
}

// RunExtPipeline renders the pipelining ablation.
func RunExtPipeline(w io.Writer, sc Scale) error {
	header(w, "ext-pipeline", "Express link pipelining on FT(64,4,1) @128b, RANDOM saturation")
	pts, err := ExtPipelineData(sc)
	if err != nil {
		return err
	}
	t := newTable(w, "Stages", "MHz", "Sustained", "AvgLat(cyc)", "AvgLat(ns)", "Mpkt/s")
	for _, p := range pts {
		t.row(p.Stages, fmt.Sprintf("%.0f", p.ClockMHz),
			fmt.Sprintf("%.4f", p.SustainedRate),
			fmt.Sprintf("%.1f", p.AvgLatencyCyc),
			fmt.Sprintf("%.1f", p.AvgLatencyNS),
			fmt.Sprintf("%.0f", p.ThroughputMPPS))
	}
	return t.flush()
}

// RunExtZeroLoad renders exact zero-load latency profiles plus the provable
// Hoplite in-flight bound.
func RunExtZeroLoad(w io.Writer, sc Scale) error {
	n := sc.capN(8)
	header(w, "ext-zeroload", fmt.Sprintf("Zero-load latency over all PE pairs, %dx%d", n, n))
	t := newTable(w, "Config", "MeanLat", "MaxLat", "ExpressShare")
	for _, cfg := range []core.Config{
		core.Hoplite(n),
		core.FastTrack(n, 2, 2),
		core.FastTrack(n, 2, 1),
		core.FastTrack(n, 2, 1).WithVariant(core.VariantInject),
	} {
		cfg := cfg
		zl, err := runner.Do(context.Background(), sc.orch(), runner.RawKey("zeroload", runner.ConfigKey(cfg)),
			func() (analysis.ZeroLoad, error) { return analysis.ZeroLoadProfile(cfg) })
		if err != nil {
			return err
		}
		t.row(zl.Config, fmt.Sprintf("%.2f", zl.Mean), zl.Max,
			fmt.Sprintf("%.0f%%", 100*zl.ExpressShare))
	}
	if err := t.flush(); err != nil {
		return err
	}
	fmt.Fprintf(w, "provable Hoplite in-flight bound (worst pair): %d cycles\n",
		analysis.HopliteNetworkBound(n))
	return nil
}

// FairnessPoint summarizes per-source latency dispersion for one config.
type FairnessPoint struct {
	Config      string
	JainIndex   float64
	MeanOfMeans float64
	WorstMean   float64
}

// ExtFairnessData measures how evenly saturated RANDOM latency is
// distributed across source PEs. Deflection NoCs favour some positions;
// express links shorten the unlucky paths and raise the Jain index.
func ExtFairnessData(sc Scale) ([]FairnessPoint, error) {
	n := sc.capN(8)
	var pts []FairnessPoint
	for _, cfg := range fig11Configs(n) {
		res, err := sc.runSynthetic(context.Background(), cfg, core.SyntheticOptions{
			Pattern: "RANDOM", Rate: 1.0, PacketsPerPE: sc.Quota, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		means := make([]float64, 0, len(res.PerSource))
		var sum, worst float64
		for i := range res.PerSource {
			if res.PerSource[i].Count() == 0 {
				continue
			}
			m := res.PerSource[i].Mean()
			means = append(means, m)
			sum += m
			if m > worst {
				worst = m
			}
		}
		pt := FairnessPoint{Config: cfg.String(), JainIndex: stats.JainIndex(means), WorstMean: worst}
		if len(means) > 0 {
			pt.MeanOfMeans = sum / float64(len(means))
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

// RunExtFairness renders the fairness ablation.
func RunExtFairness(w io.Writer, sc Scale) error {
	header(w, "ext-fairness", "Per-source latency fairness, 64-PE RANDOM at saturation")
	pts, err := ExtFairnessData(sc)
	if err != nil {
		return err
	}
	t := newTable(w, "Config", "JainIndex", "MeanLat", "WorstSourceMean")
	for _, p := range pts {
		t.row(p.Config, fmt.Sprintf("%.4f", p.JainIndex),
			fmt.Sprintf("%.1f", p.MeanOfMeans), fmt.Sprintf("%.1f", p.WorstMean))
	}
	return t.flush()
}

// CachelinePoint measures 512-bit cacheline transfer efficiency at one
// datapath width.
type CachelinePoint struct {
	Config       string
	WidthBits    int
	FlitsPerLine int
	ClockMHz     float64
	LinesPerSec  float64 // millions of cachelines per second, network-wide
	AvgLatencyNS float64 // message completion latency
	Routable     bool
}

// ExtCachelineData transfers 512-bit cachelines over a 4×4 FT(16,2,1) and
// Hoplite at datapath widths from 64 to 512 bits. Wide datapaths move a
// line per packet but clock lower and may not route; narrow ones serialize.
func ExtCachelineData(sc Scale) ([]CachelinePoint, error) {
	dev := core.Virtex7()
	const n, lineBits = 4, 512
	var pts []CachelinePoint
	for _, cfg := range []core.Config{core.Hoplite(n), core.FastTrack(n, 2, 1)} {
		for _, width := range []int{64, 128, 256, 512, 1024} {
			wc := cfg.WithWidth(width)
			spec, err := wc.Spec()
			if err != nil {
				return nil, err
			}
			pt := CachelinePoint{
				Config: wc.String(), WidthBits: width,
				FlitsPerLine: (lineBits + width - 1) / width,
				Routable:     spec.Routable(dev),
			}
			if pt.Routable {
				pt.ClockMHz = spec.ClockMHz(dev)
				cr, err := runCachelines(wc, lineBits, width, sc)
				if err != nil {
					return nil, err
				}
				seconds := float64(cr.Res.Cycles) / (pt.ClockMHz * 1e6)
				pt.LinesPerSec = float64(cr.Lines) / seconds / 1e6
				pt.AvgLatencyNS = cr.LatMean / pt.ClockMHz * 1000
			}
			pts = append(pts, pt)
		}
	}
	return pts, nil
}

// cachelineRun is the cacheable summary of one cacheline-stream simulation:
// the message.Stream itself does not serialize, so the derived message
// statistics ride alongside the engine result.
type cachelineRun struct {
	Res     sim.Result
	Lines   int64
	LatMean float64
}

func runCachelines(cfg core.Config, lineBits, width int, sc Scale) (cachelineRun, error) {
	key := runner.RawKey("cacheline", runner.ConfigKey(cfg), lineBits, width, sc.Quota, sc.Seed)
	return runner.Do(context.Background(), sc.orch(), key, func() (cachelineRun, error) {
		net, err := cfg.Build()
		if err != nil {
			return cachelineRun{}, err
		}
		ms, err := message.NewStream(net.Width(), net.Height(), lineBits, width, 1.0, sc.Quota, sc.Seed)
		if err != nil {
			return cachelineRun{}, err
		}
		res, err := sim.Run(net, ms, sim.Options{})
		if err != nil {
			return cachelineRun{}, err
		}
		return cachelineRun{
			Res: res, Lines: ms.MessagesDelivered(), LatMean: ms.MessageLatency().Mean(),
		}, nil
	})
}

// RunExtCacheline renders the serialization study.
func RunExtCacheline(w io.Writer, sc Scale) error {
	header(w, "ext-cacheline", "512-bit cacheline transfers on a 4x4 NoC vs datapath width")
	pts, err := ExtCachelineData(sc)
	if err != nil {
		return err
	}
	t := newTable(w, "Config", "Width", "Flits/line", "MHz", "Mlines/s", "AvgLat(ns)")
	for _, p := range pts {
		if !p.Routable {
			t.row(p.Config, p.WidthBits, p.FlitsPerLine, "NA", "NA", "NA")
			continue
		}
		t.row(p.Config, p.WidthBits, p.FlitsPerLine,
			fmt.Sprintf("%.0f", p.ClockMHz),
			fmt.Sprintf("%.1f", p.LinesPerSec),
			fmt.Sprintf("%.0f", p.AvgLatencyNS))
	}
	return t.flush()
}

// BufferedPoint compares router families on the Fig 1 axes, with the
// buffered design simulated rather than quoted from the literature.
type BufferedPoint struct {
	Config        string
	LUTsPerRouter int
	ClockMHz      float64
	SustainedRate float64 // pkt/cycle/PE at saturation
	PktPerNS      float64 // delivered network throughput in packets/ns
	AvgLatencyNS  float64
}

// ExtBufferedData runs saturated RANDOM traffic through the buffered mesh,
// baseline Hoplite and FT(64,2,1) at 32-bit width, converting cycles to
// wall-clock with each design's modeled frequency — Fig 1's area-bandwidth
// tradeoff reproduced end-to-end from simulation.
func ExtBufferedData(sc Scale) ([]BufferedPoint, error) {
	dev := core.Virtex7()
	n := sc.capN(8)
	var pts []BufferedPoint

	run := func(name string, build func() (core.Network, error), luts int, mhz float64) error {
		key := runner.RawKey("extbuffered", name, n, sc.Quota, sc.Seed)
		res, err := runner.Do(context.Background(), sc.orch(), key, func() (sim.Result, error) {
			net, err := build()
			if err != nil {
				return sim.Result{}, err
			}
			wl := traffic.NewSynthetic(net.Width(), net.Height(), traffic.Random{}, 1.0, sc.Quota, sc.Seed)
			return sim.Run(net, wl, sim.Options{})
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		pts = append(pts, BufferedPoint{
			Config:        name,
			LUTsPerRouter: luts,
			ClockMHz:      mhz,
			SustainedRate: res.SustainedRate,
			PktPerNS:      res.SustainedRate * float64(n*n) * mhz / 1000,
			AvgLatencyNS:  res.AvgLatency / mhz * 1000,
		})
		return nil
	}

	const width = 32
	bl, _ := fpga.BufferedRouterCost(width, 4)
	if err := run("BufferedMesh(d=4)", func() (core.Network, error) {
		return buffered.New(n, n, buffered.Config{Depth: 4})
	}, bl, dev.BufferedMeshClockMHz(n, width)); err != nil {
		return nil, err
	}

	hop := core.Hoplite(n).WithWidth(width)
	hs, err := hop.Spec()
	if err != nil {
		return nil, err
	}
	hl, _ := hs.Resources()
	if err := run("Hoplite", func() (core.Network, error) { return hop.Build() },
		hl/(n*n), hs.ClockMHz(dev)); err != nil {
		return nil, err
	}

	ft := core.FastTrack(n, 2, 1).WithWidth(width)
	fs, err := ft.Spec()
	if err != nil {
		return nil, err
	}
	fl, _ := fs.Resources()
	if err := run("FT(64,2,1)", func() (core.Network, error) { return ft.Build() },
		fl/(n*n), fs.ClockMHz(dev)); err != nil {
		return nil, err
	}
	return pts, nil
}

// RunExtBuffered renders the simulated Fig 1 comparison.
func RunExtBuffered(w io.Writer, sc Scale) error {
	header(w, "ext-buffered", "Buffered mesh vs bufferless NoCs, 32b, RANDOM saturation (simulated Fig 1)")
	pts, err := ExtBufferedData(sc)
	if err != nil {
		return err
	}
	t := newTable(w, "Config", "LUTs/router", "MHz", "pkt/cyc/PE", "pkt/ns", "AvgLat(ns)")
	for _, p := range pts {
		t.row(p.Config, p.LUTsPerRouter, fmt.Sprintf("%.0f", p.ClockMHz),
			fmt.Sprintf("%.4f", p.SustainedRate), fmt.Sprintf("%.2f", p.PktPerNS),
			fmt.Sprintf("%.0f", p.AvgLatencyNS))
	}
	return t.flush()
}
