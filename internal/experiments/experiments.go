// Package experiments regenerates every table and figure of the paper's
// evaluation (§III, §V, §VI). Each experiment has a data function returning
// typed results (asserted by tests and reported by benchmarks) and a Run
// function that renders the same rows/series the paper plots.
//
// Experiments accept a Scale so the full paper-sized sweeps (ftexp) and the
// quick CI-sized ones (go test / go bench) share one code path.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"fasttrack/internal/runner"
)

// Scale sizes an experiment run.
type Scale struct {
	// Quota is the synthetic packets-per-PE budget (paper: 1000).
	Quota int
	// Rates is the injection-rate sweep for throughput/latency curves.
	Rates []float64
	// MaxN caps the torus width (16 covers the paper's 256-PE points).
	MaxN int
	// TraceBenchmarks caps how many benchmarks per Fig 15 suite run (0 =
	// all).
	TraceBenchmarks int
	// Seed fixes all random streams.
	Seed uint64
	// Orch, when non-nil, schedules this scale's simulations: worker-pool
	// fan-out, live progress, and a content-addressed result cache that
	// skips every simulation already on disk (ftexp -cache). nil falls back
	// to an uncached CPU-parallel default.
	Orch *runner.Orchestrator
	// AdaptiveRates replaces the dense Rates grid of the injection-rate
	// figures (11-13) with an adaptive saturation search: bisection on the
	// throughput knee whose evaluations double as curve samples, cutting
	// the run count per curve ~2-4x (ftexp -adaptive).
	AdaptiveRates bool
	// ConvergeWindow and ConvergeTol arm the engine's convergence-based
	// early exit for adaptive saturation evaluations (sim.Options). 0
	// leaves every run on the fixed packet-quota budget.
	ConvergeWindow int64
	ConvergeTol    float64
}

// FullScale reproduces the paper-sized sweeps.
func FullScale() Scale {
	return Scale{
		Quota: 1000,
		Rates: []float64{0.01, 0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.5, 0.75, 1.0},
		MaxN:  16,
		Seed:  1,
	}
}

// QuickScale is a minutes-not-hours variant with the same shapes.
func QuickScale() Scale {
	return Scale{
		Quota:           150,
		Rates:           []float64{0.05, 0.1, 0.3, 1.0},
		MaxN:            8,
		TraceBenchmarks: 2,
		Seed:            1,
	}
}

func (s Scale) capN(n int) int {
	if s.MaxN > 0 && n > s.MaxN {
		return s.MaxN
	}
	return n
}

func (s Scale) capBenchmarks(n int) int {
	if s.TraceBenchmarks > 0 && n > s.TraceBenchmarks {
		return s.TraceBenchmarks
	}
	return n
}

// Experiment couples an identifier with its runner.
type Experiment struct {
	// ID is the paper reference: "table1", "fig11", "fig15a", ...
	ID string
	// Title describes what the paper shows there.
	Title string
	// Run regenerates the table/figure as text.
	Run func(w io.Writer, sc Scale) error
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Title: "FPGA implementations of 32b NoC routers", Run: RunTable1},
		{ID: "fig1", Title: "Area-bandwidth tradeoffs of FPGA NoCs", Run: RunFig1},
		{ID: "fig4", Title: "Virtual express links: frequency vs distance and LUT hops", Run: RunFig4},
		{ID: "fig6", Title: "Physical express links: frequency vs distance and bypassed hops", Run: RunFig6},
		{ID: "table2", Title: "Resource usage and frequency of an 8x8 256b NoC", Run: RunTable2},
		{ID: "fig10", Title: "Peak frequency of FastTrack NoCs of varying datawidths", Run: RunFig10},
		{ID: "fig11", Title: "Sustained rate vs injection rate (synthetic traffic)", Run: RunFig11},
		{ID: "fig12", Title: "Average latency vs injection rate (synthetic traffic)", Run: RunFig12},
		{ID: "fig13", Title: "Multi-channel Hoplite vs FastTrack at iso-wiring", Run: RunFig13},
		{ID: "fig14", Title: "Cost-aware throughput (LUT area and wire count)", Run: RunFig14},
		{ID: "fig15a", Title: "SpMV accelerator trace speedups", Run: RunFig15a},
		{ID: "fig15b", Title: "Graph analytics trace speedups", Run: RunFig15b},
		{ID: "fig15c", Title: "Token LU dataflow trace speedups", Run: RunFig15c},
		{ID: "fig15d", Title: "Multiprocessor overlay trace speedups", Run: RunFig15d},
		{ID: "fig16", Title: "Packet latency histogram (RANDOM, low injection)", Run: RunFig16},
		{ID: "fig17", Title: "Sustained rate vs express link length D", Run: RunFig17},
		{ID: "fig18", Title: "Link usage and deflections", Run: RunFig18},
		{ID: "fig19", Title: "Throughput-energy tradeoffs", Run: RunFig19},
	}
}

// AllWithExtensions returns the paper experiments followed by this repo's
// ablation/extension experiments.
func AllWithExtensions() []Experiment {
	return append(All(), Extensions()...)
}

// ByID returns the experiment with the given id (paper or extension).
func ByID(id string) (Experiment, error) {
	for _, e := range AllWithExtensions() {
		if e.ID == id {
			return e, nil
		}
	}
	var known []string
	for _, e := range AllWithExtensions() {
		known = append(known, e.ID)
	}
	sort.Strings(known)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
}

// table renders aligned columns.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer, headers ...string) *table {
	t := &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
	for i, h := range headers {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, h)
	}
	fmt.Fprintln(t.tw)
	return t
}

func (t *table) row(cells ...any) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		switch v := c.(type) {
		case float64:
			fmt.Fprintf(t.tw, "%.4g", v)
		default:
			fmt.Fprintf(t.tw, "%v", v)
		}
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() error { return t.tw.Flush() }

func header(w io.Writer, id, title string) {
	fmt.Fprintf(w, "== %s: %s ==\n", id, title)
}
