package reliability_test

import (
	"testing"

	"fasttrack/internal/faults"
	"fasttrack/internal/hoplite"
	"fasttrack/internal/noc"
	"fasttrack/internal/reliability"
	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

// countingWorkload wraps a workload and counts Delivered calls per packet
// ID, to prove the reliability layer delivers each application packet to the
// inner workload exactly once no matter how many wire copies arrive.
type countingWorkload struct {
	sim.Workload
	delivered map[int64]int
}

func (c *countingWorkload) Delivered(p noc.Packet, now int64) {
	c.delivered[p.ID]++
	c.Workload.Delivered(p, now)
}

func newCounting(inner sim.Workload) *countingWorkload {
	return &countingWorkload{Workload: inner, delivered: map[int64]int{}}
}

// TestEventualDeliveryUnderDrops: with drop faults injected, the retry
// wrapper recovers every packet (acceptance criterion).
func TestEventualDeliveryUnderDrops(t *testing.T) {
	inner, _ := hoplite.New(8, 8)
	nw, err := faults.Wrap(inner, faults.Config{Seed: 11, DropRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	counting := newCounting(traffic.NewSynthetic(8, 8, traffic.Random{}, 0.25, 120, 5))
	wl := reliability.Wrap(counting, 8, reliability.Config{Timeout: 300, MaxRetries: 12})
	res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true, MaxPacketAge: 100000})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Recovery
	if r.Completed != r.Sent || r.Abandoned != 0 {
		t.Fatalf("eventual delivery incomplete: %+v", r)
	}
	if r.Recovered == 0 {
		t.Fatalf("no packets recovered despite %d drops", res.Faults.Dropped)
	}
	for id, n := range counting.delivered {
		if n != 1 {
			t.Errorf("packet %d delivered %d times to the application", id, n)
		}
	}
	if int64(len(counting.delivered)) != r.Sent {
		t.Errorf("application saw %d packets, sent %d", len(counting.delivered), r.Sent)
	}
}

// TestRetryBudgetExhaustion: with a link that eats everything, every packet
// is abandoned after MaxRetries and the run still terminates cleanly.
func TestRetryBudgetExhaustion(t *testing.T) {
	inner, _ := hoplite.New(4, 4)
	nw, err := faults.Wrap(inner, faults.Config{Seed: 2, DropRate: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	wl := reliability.Wrap(
		traffic.NewSynthetic(4, 4, traffic.Random{}, 0.5, 20, 7),
		4, reliability.Config{Timeout: 50, MaxRetries: 2})
	res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Recovery
	if r.Completed != 0 || r.Abandoned != r.Sent || r.Sent == 0 {
		t.Errorf("expected every packet abandoned: %+v", r)
	}
	if r.Retries != 2*r.Sent {
		t.Errorf("retries %d, want %d (2 per packet)", r.Retries, 2*r.Sent)
	}
	if res.Delivered != 0 || res.Faults.Dropped != res.Injected {
		t.Errorf("all wire copies should be dropped: %d delivered, %d dropped, %d injected",
			res.Delivered, res.Faults.Dropped, res.Injected)
	}
}

// TestDuplicateSuppression: an aggressive timeout retransmits packets that
// were merely slow, so original and retransmit both arrive — the wrapper
// must suppress the extra copy and still count each packet complete once.
func TestDuplicateSuppression(t *testing.T) {
	nw, _ := hoplite.New(8, 8)
	counting := newCounting(traffic.NewSynthetic(8, 8, traffic.Random{}, 0.5, 80, 13))
	wl := reliability.Wrap(counting, 8, reliability.Config{
		Timeout: 4, MaxRetries: 50, Backoff: 1, // far below real delivery latency
	})
	res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true})
	if err != nil {
		t.Fatal(err)
	}
	r := res.Recovery
	if r.Duplicates == 0 {
		t.Fatal("premature timeouts should have produced duplicate deliveries")
	}
	if r.Completed != r.Sent || r.Abandoned != 0 {
		t.Errorf("completion accounting broken: %+v", r)
	}
	if res.Delivered != r.Completed+r.Duplicates {
		t.Errorf("wire deliveries %d != completed %d + duplicates %d",
			res.Delivered, r.Completed, r.Duplicates)
	}
	for id, n := range counting.delivered {
		if n != 1 {
			t.Errorf("packet %d delivered %d times to the application", id, n)
		}
	}
}

// TestDefaultsApplied: zero-value config fields fall back to sane defaults.
func TestDefaultsApplied(t *testing.T) {
	nw, _ := hoplite.New(4, 4)
	wl := reliability.Wrap(
		traffic.NewSynthetic(4, 4, traffic.Random{}, 0.2, 30, 1),
		4, reliability.Config{})
	res, err := sim.Run(nw, wl, sim.Options{CheckConservation: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Recovery.Completed != res.Recovery.Sent {
		t.Errorf("fault-free run should complete everything: %+v", res.Recovery)
	}
}
