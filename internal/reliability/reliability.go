// Package reliability provides an end-to-end resilient-delivery wrapper for
// any sim.Workload: every injected packet is tracked until delivery, and a
// packet that misses its delivery deadline is retransmitted from the source
// with exponential backoff and a bounded retry budget. Redundant deliveries
// (an original and its retransmit both arriving) are suppressed before they
// reach the inner workload, so dependency-driven traces observe each packet
// exactly once.
//
// The layer is what lets a simulation complete gracefully when the network
// is wrapped by internal/faults with drop or misroute faults: lost packets
// are recovered by retransmission instead of hanging the run, and the
// recovery counts (retries, recovered packets, duplicates, abandoned
// packets) surface in sim.Result via stats.RecoveryCounts.
//
// Retransmitted packets carry fresh negative IDs so they never collide with
// workload-assigned IDs, and keep the original generation cycle so measured
// latency spans the full recovery, not just the final attempt.
package reliability

import (
	"container/heap"

	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
	"fasttrack/internal/stats"
	"fasttrack/internal/telemetry"
)

// Config tunes the retransmission policy.
type Config struct {
	// Timeout is the delivery deadline in cycles before the first
	// retransmission; 0 means 256.
	Timeout int64
	// MaxRetries bounds retransmissions per packet; after the budget the
	// packet is abandoned (counted, and a late arrival still completes it).
	// 0 means 8.
	MaxRetries int
	// Backoff multiplies the deadline for each successive retransmission;
	// 0 means 2. Values below 1 are raised to 1 (constant timeout).
	Backoff float64
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = 256
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 8
	}
	if c.Backoff == 0 {
		c.Backoff = 2
	}
	if c.Backoff < 1 {
		c.Backoff = 1
	}
	return c
}

// maxTimeout caps backoff growth so deadlines stay well inside cycle limits.
const maxTimeout = 1 << 20

type state uint8

const (
	// stateFlying: a copy is in the network with an armed deadline.
	stateFlying state = iota
	// stateQueued: a retransmission is waiting at the source.
	stateQueued
	// stateDone: delivered to the inner workload.
	stateDone
	// stateAbandoned: retry budget exhausted; a late arrival still counts.
	stateAbandoned
)

// entry tracks one application packet across all its wire copies.
type entry struct {
	orig     noc.Packet
	resend   noc.Packet // current retransmit copy while queued
	state    state
	attempts int
	deadline int64
}

// timer is a lazy-deleted deadline heap element; stale when the entry moved
// on (different state or re-armed deadline).
type timer struct {
	deadline int64
	seq      int64
	e        *entry
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline != h[j].deadline {
		return h[i].deadline < h[j].deadline
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }

// Workload decorates an inner sim.Workload with resilient delivery. It
// relies on the engine's per-cycle protocol: Pending is called for every PE
// each cycle before Step, and Injected only for accepted offers.
type Workload struct {
	inner sim.Workload
	cfg   Config
	width int

	// wires maps every wire-level packet ID (original or retransmit) to its
	// entry; completed entries stay mapped to classify late duplicates.
	wires   map[int64]*entry
	timers  timerHeap
	retryQ  map[int][]*entry
	pending map[int]*entry // retransmit offered to the engine this cycle

	counts   stats.RecoveryCounts
	live     int64
	nextWire int64 // negative wire IDs for retransmits
	nextSeq  int64

	// obs, when non-nil, receives OnDrop when a packet exhausts its retry
	// budget and OnRetransmit when a retransmit copy is queued.
	obs telemetry.Observer
}

// Wrap decorates inner for a torus of the given width (used to map a source
// coordinate back to its PE injection queue).
func Wrap(inner sim.Workload, width int, cfg Config) *Workload {
	return &Workload{
		inner: inner, cfg: cfg.withDefaults(), width: width,
		wires:   make(map[int64]*entry),
		retryQ:  make(map[int][]*entry),
		pending: make(map[int]*entry),
	}
}

// RecoveryCounts implements sim.RecoveryReporter.
func (w *Workload) RecoveryCounts() stats.RecoveryCounts { return w.counts }

// Unwrap exposes the inner workload to the engine's interface discovery.
func (w *Workload) Unwrap() sim.Workload { return w.inner }

// SetObserver implements telemetry.Observable; sim.Run attaches
// Options.Observer to every layer of the workload chain through this.
func (w *Workload) SetObserver(o telemetry.Observer) { w.obs = o }

// timeoutFor returns the (backed-off) deadline distance for a given attempt.
func (w *Workload) timeoutFor(attempts int) int64 {
	t := float64(w.cfg.Timeout)
	for i := 0; i < attempts; i++ {
		t *= w.cfg.Backoff
		if t >= maxTimeout {
			return maxTimeout
		}
	}
	return int64(t)
}

func (w *Workload) arm(e *entry, now int64) {
	e.state = stateFlying
	e.deadline = now + w.timeoutFor(e.attempts)
	w.nextSeq++
	heap.Push(&w.timers, timer{deadline: e.deadline, seq: w.nextSeq, e: e})
}

// Tick implements sim.Workload: tick the inner workload, then expire
// deadlines — each timed-out packet is either queued for retransmission or
// abandoned once its retry budget is spent.
func (w *Workload) Tick(now int64) {
	w.inner.Tick(now)
	for len(w.timers) > 0 && w.timers[0].deadline <= now {
		t := heap.Pop(&w.timers).(timer)
		e := t.e
		if e.state != stateFlying || e.deadline != t.deadline {
			continue // stale timer: the entry completed or was re-armed
		}
		if e.attempts >= w.cfg.MaxRetries {
			e.state = stateAbandoned
			w.counts.Abandoned++
			w.live--
			if w.obs != nil {
				w.obs.OnDrop(now, &e.orig)
			}
			continue
		}
		e.attempts++
		w.counts.Retries++
		e.state = stateQueued
		w.nextWire--
		e.resend = e.orig
		e.resend.ID = w.nextWire
		e.resend.ShortHops, e.resend.ExpressHops, e.resend.Deflections = 0, 0, 0
		w.wires[e.resend.ID] = e
		pe := noc.PEIndex(e.orig.Src, w.width)
		w.retryQ[pe] = append(w.retryQ[pe], e)
		if w.obs != nil {
			w.obs.OnRetransmit(now, &e.resend)
		}
	}
}

// Pending implements sim.Workload: retransmissions take priority over new
// traffic from the inner workload.
func (w *Workload) Pending(pe int, now int64) (noc.Packet, bool) {
	q := w.retryQ[pe]
	for len(q) > 0 {
		e := q[0]
		if e.state != stateQueued {
			q = q[1:] // completed while waiting; drop the ghost
			continue
		}
		w.retryQ[pe] = q
		w.pending[pe] = e
		return e.resend, true
	}
	if len(q) == 0 {
		delete(w.retryQ, pe)
	}
	delete(w.pending, pe)
	return w.inner.Pending(pe, now)
}

// Injected implements sim.Workload: start tracking an original send, or
// re-arm the deadline of an injected retransmission.
func (w *Workload) Injected(pe int, now int64) {
	if e, ok := w.pending[pe]; ok {
		w.retryQ[pe] = w.retryQ[pe][1:]
		delete(w.pending, pe)
		w.arm(e, now)
		return
	}
	p, ok := w.inner.Pending(pe, now)
	w.inner.Injected(pe, now)
	if !ok {
		return // protocol violation by the inner workload; nothing to track
	}
	e := &entry{orig: p, attempts: 0}
	w.wires[p.ID] = e
	w.counts.Sent++
	w.live++
	w.arm(e, now)
}

// Delivered implements sim.Workload: complete the entry on first arrival,
// suppress duplicates, and credit late arrivals of abandoned packets.
func (w *Workload) Delivered(p noc.Packet, now int64) {
	e, ok := w.wires[p.ID]
	if !ok {
		// Not ours (reliability was attached mid-stack); pass through.
		w.inner.Delivered(p, now)
		return
	}
	switch e.state {
	case stateDone:
		w.counts.Duplicates++
	case stateAbandoned:
		e.state = stateDone
		w.counts.Abandoned--
		w.counts.Completed++
		w.counts.Recovered++
		w.inner.Delivered(e.orig, now)
	default: // flying or queued
		e.state = stateDone
		w.live--
		w.counts.Completed++
		if e.attempts > 0 {
			w.counts.Recovered++
		}
		w.inner.Delivered(e.orig, now)
	}
}

// Done implements sim.Workload: the run drains only when the inner workload
// is done and no tracked packet is still awaiting delivery or retry.
func (w *Workload) Done() bool { return w.live == 0 && w.inner.Done() }
