package matrixgen

import (
	"testing"
	"testing/quick"

	"fasttrack/internal/xrand"
)

func checkCSR(t *testing.T, m *Matrix) {
	t.Helper()
	if len(m.RowPtr) != m.N+1 || m.RowPtr[0] != 0 {
		t.Fatalf("%s: bad RowPtr", m.Name)
	}
	for r := 0; r < m.N; r++ {
		if m.RowPtr[r] > m.RowPtr[r+1] {
			t.Fatalf("%s: RowPtr not monotone at %d", m.Name, r)
		}
		row := m.Row(r)
		for i, c := range row {
			if c < 0 || int(c) >= m.N {
				t.Fatalf("%s: row %d col %d out of range", m.Name, r, c)
			}
			if i > 0 && row[i-1] >= c {
				t.Fatalf("%s: row %d not sorted/deduped", m.Name, r)
			}
		}
	}
}

func TestGeneratorsProduceValidCSR(t *testing.T) {
	for _, m := range []*Matrix{
		Circuit("c", 500, 6, 1),
		Banded("b", 500, 3, 0.1, 2),
		PowerLaw("p", 500, 8, 1.1, 3),
	} {
		checkCSR(t, m)
		if m.NNZ() < m.N {
			t.Errorf("%s: too sparse (%d nnz)", m.Name, m.NNZ())
		}
		// All generators emit the diagonal.
		for r := 0; r < m.N; r++ {
			found := false
			for _, c := range m.Row(r) {
				if int(c) == r {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s: missing diagonal at row %d", m.Name, r)
			}
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Circuit("x", 300, 5, 7)
	b := Circuit("x", 300, 5, 7)
	if a.NNZ() != b.NNZ() {
		t.Fatal("same seed, different matrices")
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			t.Fatal("same seed, different pattern")
		}
	}
	c := Circuit("x", 300, 5, 8)
	if c.NNZ() == a.NNZ() {
		same := true
		for i := range a.Cols {
			if a.Cols[i] != c.Cols[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical matrices")
		}
	}
}

// bruteForceFill computes LU fill by literally running symbolic Gaussian
// elimination on a dense boolean matrix — the oracle for SymbolicLU.
func bruteForceFill(m *Matrix) [][]int32 {
	n := m.N
	a := make([][]bool, n)
	for i := range a {
		a[i] = make([]bool, n)
		a[i][i] = true
	}
	for r := 0; r < n; r++ {
		for _, c := range m.Row(r) {
			a[r][c] = true
			a[c][r] = true // symmetrized, as SymbolicLU does
		}
	}
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			if !a[i][k] {
				continue
			}
			for j := k + 1; j < n; j++ {
				if a[k][j] {
					a[i][j] = true
				}
			}
		}
	}
	deps := make([][]int32, n)
	for k := 0; k < n; k++ {
		for j := 0; j < k; j++ {
			if a[k][j] {
				deps[k] = append(deps[k], int32(j))
			}
		}
	}
	return deps
}

// TestSymbolicLUMatchesBruteForce is the central property test: the
// row-merge fill computation must equal dense symbolic elimination on
// random small matrices.
func TestSymbolicLUMatchesBruteForce(t *testing.T) {
	f := func(seed uint64, nn uint8) bool {
		n := int(nn%30) + 2
		rng := xrand.New(seed)
		rows := make([][]int32, n)
		for i := 0; i < n; i++ {
			rows[i] = append(rows[i], int32(i))
			for k := 0; k < 3; k++ {
				if rng.Bool(0.4) {
					rows[i] = append(rows[i], int32(rng.Intn(n)))
				}
			}
		}
		m := fromRows("fuzz", rows)
		got := SymbolicLU(m)
		want := bruteForceFill(m)
		for k := 0; k < n; k++ {
			if len(got[k]) != len(want[k]) {
				t.Logf("n=%d k=%d: got %v want %v", n, k, got[k], want[k])
				return false
			}
			for i := range got[k] {
				if got[k][i] != want[k][i] {
					t.Logf("n=%d k=%d: got %v want %v", n, k, got[k], want[k])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSymbolicLUKnownCase(t *testing.T) {
	// Arrow matrix: last row/col dense -> no fill below, deps of k=n-1 are
	// all columns.
	n := 6
	rows := make([][]int32, n)
	for i := 0; i < n; i++ {
		rows[i] = []int32{int32(i), int32(n - 1)}
	}
	m := fromRows("arrow", rows)
	deps := SymbolicLU(m)
	for k := 0; k < n-1; k++ {
		if len(deps[k]) != 0 {
			t.Errorf("arrow col %d deps %v, want none", k, deps[k])
		}
	}
	if len(deps[n-1]) != n-1 {
		t.Errorf("arrow apex deps %v, want all %d", deps[n-1], n-1)
	}

	// Tridiagonal: each column depends only on its predecessor.
	rows = make([][]int32, n)
	for i := 0; i < n; i++ {
		rows[i] = []int32{int32(i)}
		if i > 0 {
			rows[i] = append(rows[i], int32(i-1))
		}
	}
	m = fromRows("tri", rows)
	deps = SymbolicLU(m)
	for k := 1; k < n; k++ {
		if len(deps[k]) != 1 || deps[k][0] != int32(k-1) {
			t.Errorf("tridiagonal col %d deps %v", k, deps[k])
		}
	}
}
