// Package matrixgen synthesizes sparse matrix patterns with the structural
// archetypes of the paper's Matrix Market benchmarks (§VI, Fig 15a/15c):
// circuit matrices (near-diagonal with sparse long-range couplings, like the
// bomhof/sandia/simucad SPICE matrices), banded memory-like matrices
// (hamm/memplus, ram8k), and power-law matrices (human_gene2, web graphs).
// It also provides the symbolic LU factorization (fill-in) used to build
// the Token Dataflow task DAGs of Fig 15c.
//
// Only the sparsity pattern matters for communication traces, so matrices
// carry no numeric values.
package matrixgen

import (
	"fmt"
	"sort"

	"fasttrack/internal/xrand"
)

// Matrix is a square sparse pattern in CSR form.
type Matrix struct {
	Name   string
	N      int
	RowPtr []int32 // length N+1
	Cols   []int32 // column indices, sorted within each row
}

// NNZ returns the number of stored nonzeros.
func (m *Matrix) NNZ() int { return len(m.Cols) }

// Row returns the sorted column indices of row r.
func (m *Matrix) Row(r int) []int32 { return m.Cols[m.RowPtr[r]:m.RowPtr[r+1]] }

// String summarizes the matrix.
func (m *Matrix) String() string {
	return fmt.Sprintf("%s: %d×%d, %d nnz", m.Name, m.N, m.N, m.NNZ())
}

// fromRows builds a CSR matrix from per-row column sets, sorting and
// deduplicating each row.
func fromRows(name string, rows [][]int32) *Matrix {
	m := &Matrix{Name: name, N: len(rows), RowPtr: make([]int32, len(rows)+1)}
	for r, cs := range rows {
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		out := cs[:0]
		var prev int32 = -1
		for _, c := range cs {
			if c != prev {
				out = append(out, c)
				prev = c
			}
		}
		m.Cols = append(m.Cols, out...)
		m.RowPtr[r+1] = int32(len(m.Cols))
	}
	return m
}

// Circuit generates a SPICE-circuit-like pattern: every node couples to the
// diagonal, to a handful of nearby nodes (physical locality of circuit
// netlists), and with small probability to a random distant node (supply
// rails, clock trees). avgDeg is the target nonzeros per row.
func Circuit(name string, n, avgDeg int, seed uint64) *Matrix {
	rng := xrand.New(seed)
	rows := make([][]int32, n)
	near := avgDeg - 2 // besides diagonal and the occasional long edge
	if near < 1 {
		near = 1
	}
	for i := 0; i < n; i++ {
		rows[i] = append(rows[i], int32(i))
		for k := 0; k < near; k++ {
			// Neighbours within a window that shrinks the degree spread.
			off := rng.Intn(16) + 1
			j := i - off
			if rng.Bool(0.5) {
				j = i + off
			}
			if j >= 0 && j < n {
				rows[i] = append(rows[i], int32(j))
			}
		}
		if rng.Bool(0.15) {
			rows[i] = append(rows[i], int32(rng.Intn(n)))
		}
	}
	return fromRows(name, rows)
}

// Banded generates a memory-array-like banded pattern with bandwidth band
// plus a sprinkling of extra couplings confined to a ±32·band window —
// memory arrays (memplus, ram8k) couple only to physically nearby cells,
// which is why the paper observes predominantly local traffic (and no
// FastTrack benefit) for them.
func Banded(name string, n, band int, extraFrac float64, seed uint64) *Matrix {
	rng := xrand.New(seed)
	rows := make([][]int32, n)
	window := 32 * band
	for i := 0; i < n; i++ {
		lo, hi := i-band, i+band
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		for j := lo; j <= hi; j++ {
			rows[i] = append(rows[i], int32(j))
		}
		if rng.Bool(extraFrac) {
			j := i + rng.Intn(2*window+1) - window
			if j >= 0 && j < n {
				rows[i] = append(rows[i], int32(j))
			}
		}
	}
	return fromRows(name, rows)
}

// PowerLaw generates a scale-free pattern: row degrees follow a Zipf
// distribution and columns are Zipf-biased toward hub nodes, like gene
// networks and web link matrices.
func PowerLaw(name string, n, avgDeg int, s float64, seed uint64) *Matrix {
	rng := xrand.New(seed)
	hub := xrand.NewZipf(rng.Split(), n, s)
	rows := make([][]int32, n)
	for i := 0; i < n; i++ {
		rows[i] = append(rows[i], int32(i))
		deg := 1 + rng.Intn(2*avgDeg-1) // mean ≈ avgDeg
		for k := 0; k < deg; k++ {
			rows[i] = append(rows[i], int32(hub.Next()))
		}
	}
	return fromRows(name, rows)
}

// SymbolicLU computes the column-dependency structure of an LU
// factorization of m without pivoting: deps[k] lists the columns j < k
// whose factor updates column k (the nonzero pattern of row k of L,
// including fill-in). The pattern is symmetrized and given a full diagonal
// first, as direct solvers do.
//
// This is the classic row-merge fill computation: the pattern of row k of
// L∪U starts from A's row k and absorbs, for each j < k already in the
// pattern (in ascending order), the part of row j right of j.
func SymbolicLU(m *Matrix) [][]int32 {
	n := m.N
	// Symmetrize + diagonal.
	rows := make([][]int32, n)
	for r := 0; r < n; r++ {
		rows[r] = append(rows[r], int32(r))
	}
	for r := 0; r < n; r++ {
		for _, c := range m.Row(r) {
			if int(c) != r {
				rows[r] = append(rows[r], c)
				rows[c] = append(rows[c], int32(r))
			}
		}
	}

	// upper[j] holds the filled pattern of row j restricted to columns > j.
	upper := make([][]int32, n)
	deps := make([][]int32, n)
	mark := make([]int, n)
	for i := range mark {
		mark[i] = -1
	}

	for k := 0; k < n; k++ {
		// Working set: columns of filled row k. Use a worklist of columns
		// < k to merge, processed in ascending order via a small heap-free
		// scheme: collect, sort, and iterate (newly merged columns < k are
		// inserted in order).
		var lower []int32 // j < k present in row k's filled pattern
		var upperK []int32
		for _, c := range rows[k] {
			if mark[c] == k {
				continue
			}
			mark[c] = k
			switch {
			case int(c) < k:
				lower = append(lower, c)
			case int(c) > k:
				upperK = append(upperK, c)
			}
		}
		sort.Slice(lower, func(a, b int) bool { return lower[a] < lower[b] })

		for idx := 0; idx < len(lower); idx++ {
			j := lower[idx]
			for _, c := range upper[j] {
				if mark[c] == k {
					continue
				}
				mark[c] = k
				switch {
				case int(c) < k:
					// Fill to the left of k: another dependency; keep the
					// worklist sorted by insertion.
					pos := sort.Search(len(lower)-idx-1, func(p int) bool {
						return lower[idx+1+p] >= c
					})
					lower = append(lower, 0)
					copy(lower[idx+1+pos+1:], lower[idx+1+pos:])
					lower[idx+1+pos] = c
				case int(c) > k:
					upperK = append(upperK, c)
				}
			}
		}
		sort.Slice(upperK, func(a, b int) bool { return upperK[a] < upperK[b] })
		upper[k] = upperK
		deps[k] = lower
	}
	return deps
}
