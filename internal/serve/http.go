package serve

import (
	"encoding/json"
	"math"
	"net"
	"net/http"
	"sort"
	"strconv"
	"time"

	"fasttrack/internal/cliflags"
	"fasttrack/internal/obs"
)

// TraceHeader is the inbound/outbound trace-correlation header: clients may
// supply their own ID (validated by obs.ValidTraceID) and every submit
// response echoes the job's effective ID back.
const TraceHeader = "X-Ftserve-Trace-Id"

// Handler returns the daemon's HTTP surface:
//
//	POST /jobs              submit a job spec (202 accepted, 200 deduped)
//	GET  /jobs              list registered jobs, newest first
//	GET  /jobs/{id}         job status + result
//	GET  /jobs/{id}/stream  SSE: status transitions, progress, windowed metrics
//	GET  /debug/trace/{id}  Perfetto trace-event JSON of the job's stage spans
//	GET  /metrics           Prometheus fleet metrics
//	GET  /healthz           200 serving / 503 draining
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleJob)
	mux.HandleFunc("GET /jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /debug/trace/{id}", s.handleTrace)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorBody is the uniform error envelope: {"error": {...}}.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code         string `json:"code"`
	Field        string `json:"field,omitempty"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// clientKey identifies the caller for rate limiting: an explicit X-Client
// header when present (load generators and fleets set it), else the remote
// host.
func clientKey(r *http.Request) string {
	if c := r.Header.Get("X-Client"); c != "" {
		return c
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	spec, err := cliflags.DecodeJobSpec(http.MaxBytesReader(w, r.Body, cliflags.MaxSpecBytes+1))
	if err != nil {
		s.c.badSpec.Add(1)
		se := cliflags.AsSpecError(err)
		writeJSON(w, http.StatusBadRequest, errorBody{errorDetail{
			Code: "bad_spec", Field: se.Field, Message: se.Msg,
		}})
		return
	}
	traceID := r.Header.Get(TraceHeader)
	if traceID != "" && !obs.ValidTraceID(traceID) {
		// A malformed inbound ID is replaced, not rejected: correlation is
		// best-effort, admission is not the place to fail a job over it.
		traceID = ""
	}
	j, dedup, rej := s.Admit(spec, clientKey(r), traceID)
	if rej != nil {
		if rej.RetryAfter > 0 {
			secs := int64(math.Ceil(rej.RetryAfter.Seconds()))
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		}
		writeJSON(w, rej.Status, errorBody{errorDetail{
			Code: rej.Code, Message: rej.Message,
			RetryAfterMS: rej.RetryAfter.Milliseconds(),
		}})
		return
	}
	status := http.StatusAccepted
	if dedup {
		// The identical job already exists; point the client at it. The
		// echoed trace ID is the existing job's — the handle that actually
		// indexes /debug/trace and the job's slog records.
		status = http.StatusOK
	}
	w.Header().Set(TraceHeader, j.TraceID())
	writeJSON(w, status, struct {
		ID      string `json:"id"`
		TraceID string `json:"trace_id"`
		State   State  `json:"state"`
		Dedup   bool   `json:"dedup,omitempty"`
	}{j.ID, j.TraceID(), j.State(), dedup})
}

// handleTrace serves the job's stage spans as Chrome trace-event JSON,
// loadable in Perfetto alongside the packet tracer (pid 1) and sweep span
// log (pid 2) exports.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{errorDetail{
			Code: "unknown_job", Message: "no such job (unknown ID or evicted by retention)",
		}})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(TraceHeader, j.TraceID())
	_ = j.trace.WriteChrome(w)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	statuses := make([]Status, len(jobs))
	for i, j := range jobs {
		st := j.Status()
		st.Result = nil // list view stays light; fetch /jobs/{id} for results
		statuses[i] = st
	}
	sort.Slice(statuses, func(i, k int) bool { return statuses[i].ID > statuses[k].ID })
	writeJSON(w, http.StatusOK, struct {
		Jobs     []Status `json:"jobs"`
		Queued   int      `json:"queued"`
		Draining bool     `json:"draining"`
	}{statuses, s.QueueDepth(), s.Draining()})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{errorDetail{
			Code: "unknown_job", Message: "no such job (unknown ID or evicted by retention)",
		}})
		return
	}
	writeJSON(w, http.StatusOK, j.Status())
}

// handleStream serves the job's SSE feed. Backpressure discipline: frames
// arrive through a bounded drop-oldest buffer (see Job.offer) and every
// write carries a deadline, so a stalled consumer can neither wedge a
// worker nor hold this handler's goroutine past the timeout.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.Job(r.PathValue("id"))
	if j == nil {
		writeJSON(w, http.StatusNotFound, errorBody{errorDetail{
			Code: "unknown_job", Message: "no such job (unknown ID or evicted by retention)",
		}})
		return
	}
	ch := j.subscribe(s.opts.sseBuf())
	defer j.unsubscribe(ch)

	// The stream span covers this subscriber's whole SSE session; each
	// frame's write+flush lands in the flush histogram, where a slow
	// consumer shows up long before it starts dropping frames.
	span := j.trace.Begin("sse_stream").Attr("client", clientKey(r))
	frames := 0
	defer func() { span.Attr("frames", frames).End() }()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set(TraceHeader, j.TraceID())
	rc := http.NewResponseController(w)
	for {
		select {
		case frame, ok := <-ch:
			if !ok {
				return // job finished: final status frame already sent
			}
			_ = rc.SetWriteDeadline(time.Now().Add(s.opts.sseWriteTimeout()))
			t0 := time.Now()
			if _, err := w.Write(frame); err != nil {
				return
			}
			_ = rc.Flush()
			s.histSSEFlush.Observe(time.Since(t0))
			frames++
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}
