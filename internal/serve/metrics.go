package serve

import (
	"net/http"
	"time"

	"fasttrack/internal/monitor"
	"fasttrack/internal/obs"
)

func timeSince(t time.Time) float64 { return time.Since(t).Seconds() }

// handleMetrics is the fleet view in Prometheus text format: admission
// accounting (every decision lands in exactly one counter), terminal-state
// accounting, queue/worker gauges, and the shared sweep orchestrator's
// runner section — the same families internal/monitor serves per-run.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := monitor.NewPromWriter(w)

	p.Counter("ftserve_jobs_admitted_total", "Jobs accepted into the queue.", s.c.admitted.Load())
	p.Counter("ftserve_jobs_deduped_total", "POSTs joined to an identical in-flight job.", s.c.deduped.Load())

	p.Family("ftserve_rejected_total", "Admissions refused, by reason.", "counter")
	p.Sample("ftserve_rejected_total", `{reason="queue_full"}`, float64(s.c.rejectedQueue.Load()))
	p.Sample("ftserve_rejected_total", `{reason="rate_limited"}`, float64(s.c.rejectedRate.Load()))
	p.Sample("ftserve_rejected_total", `{reason="draining"}`, float64(s.c.rejectedDraining.Load()))
	p.Sample("ftserve_rejected_total", `{reason="bad_spec"}`, float64(s.c.badSpec.Load()))

	p.Family("ftserve_jobs_finished_total", "Jobs that reached a terminal state, by state.", "counter")
	p.Sample("ftserve_jobs_finished_total", `{state="done"}`, float64(s.c.finishedDone.Load()))
	p.Sample("ftserve_jobs_finished_total", `{state="failed"}`, float64(s.c.finishedFailed.Load()))
	p.Sample("ftserve_jobs_finished_total", `{state="canceled"}`, float64(s.c.finishedCanceled.Load()))

	p.Counter("ftserve_job_timeouts_total", "Jobs that hit their deadline.", s.c.timeouts.Load())
	p.Counter("ftserve_job_panics_total", "Jobs that panicked (isolated; daemon kept serving).", s.c.panics.Load())
	p.Counter("ftserve_cache_hits_total", "Jobs answered entirely from the result cache.", s.c.cacheHits.Load())
	p.Counter("ftserve_sse_dropped_frames_total", "SSE frames dropped to slow consumers (drop-oldest).", s.c.sseDropped.Load())

	p.Gauge("ftserve_queue_depth", "Jobs accepted but not yet started.", float64(s.QueueDepth()))
	p.Gauge("ftserve_queue_capacity", "Admission queue bound.", float64(s.opts.queueDepth()))
	p.Gauge("ftserve_jobs_running", "Jobs executing right now.", float64(s.c.running.Load()))
	draining := 0.0
	if s.Draining() {
		draining = 1
	}
	p.Gauge("ftserve_draining", "1 while admission is stopped for drain.", draining)
	p.Gauge("ftserve_uptime_seconds", "Seconds since the daemon started.", timeSince(s.start))

	// Stage-latency histograms: every sample is the exact duration of one
	// recorded span, so each family's _sum reconciles bit-for-bit with the
	// per-job span logs (/debug/trace) — asserted by cmd/ftload.
	writeStageHist(p, "ftserve_queue_wait",
		"Time jobs spent accepted but not started.", s.histQueueWait.Snapshot())
	writeStageHist(p, "ftserve_run",
		"Wall clock of the job execution stage.", s.histRun.Snapshot())
	writeStageHist(p, "ftserve_job_e2e",
		"End-to-end wall clock, admission to terminal state.", s.histE2E.Snapshot())
	writeStageHist(p, "ftserve_sse_flush",
		"Per-frame SSE write+flush latency.", s.histSSEFlush.Snapshot())

	monitor.WriteRunnerMetrics(p, s.orch.Snapshot())
}

// writeStageHist emits one stage-latency histogram (base_seconds) plus its
// p50/p99 summary gauges as separate families (base_p50_seconds — Prometheus
// reserves the histogram's own _bucket/_sum/_count suffixes). Quantiles
// resolve to bucket upper bounds under the repo-wide ceil-rank convention.
func writeStageHist(p *monitor.PromWriter, base, help string, s obs.HistSnapshot) {
	p.Histogram(base+"_seconds", help, s)
	p.Gauge(base+"_p50_seconds", "Ceil-rank median of "+base+"_seconds, as a bucket upper bound.",
		s.Quantile(0.5).Seconds())
	p.Gauge(base+"_p99_seconds", "Ceil-rank 99th percentile of "+base+"_seconds, as a bucket upper bound.",
		s.Quantile(0.99).Seconds())
}
