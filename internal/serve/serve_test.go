package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"fasttrack/internal/cliflags"
)

// newTestServer builds a daemon over a throwaway cache dir.
func newTestServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.CacheDir == "" {
		opts.CacheDir = t.TempDir()
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// fastSpec is a sim spec that finishes in well under a second; seed varies
// it so tests don't collide through the shared cache semantics.
func fastSpec(t *testing.T, seed uint64) *cliflags.JobSpec {
	t.Helper()
	return decodeSpec(t, fmt.Sprintf(
		`{"kind":"sim","topology":{"noc":"hoplite","n":4},
		  "workload":{"pattern":"RANDOM","rate":0.1,"packets":20,"seed":%d}}`, seed))
}

// slowSpec is heavy enough to stay running while a test arranges the rest
// of its scenario.
func slowSpec(t *testing.T, seed uint64) *cliflags.JobSpec {
	t.Helper()
	return decodeSpec(t, fmt.Sprintf(
		`{"kind":"sim","topology":{"noc":"hoplite","n":16},
		  "workload":{"pattern":"RANDOM","rate":1.0,"packets":100000,"seed":%d}}`, seed))
}

func decodeSpec(t *testing.T, js string) *cliflags.JobSpec {
	t.Helper()
	s, err := cliflags.DecodeJobSpec(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitTerminal(t *testing.T, j *Job, timeout time.Duration) Status {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(timeout):
		t.Fatalf("job %s stuck in state %s", j.ID, j.State())
	}
	return j.Status()
}

// TestSubmitRunFetch: the happy path — a spec goes in, a result comes out.
func TestSubmitRunFetch(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	j, dedup, rej := s.Admit(fastSpec(t, 1), "c1", "")
	if rej != nil || dedup {
		t.Fatalf("admission failed: dedup=%v rej=%v", dedup, rej)
	}
	st := waitTerminal(t, j, 10*time.Second)
	if st.State != StateDone {
		t.Fatalf("want done, got %s (%+v)", st.State, st.Error)
	}
	sum, ok := st.Result.(ResultSummary)
	if !ok {
		t.Fatalf("want ResultSummary, got %T", st.Result)
	}
	if sum.Delivered == 0 || sum.Cycles == 0 {
		t.Fatalf("empty result: %+v", sum)
	}
}

// TestInFlightDedup: an identical POST while the first copy is still queued
// joins it instead of running twice.
func TestInFlightDedup(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 8})
	// Occupy the single worker so the next admissions stay queued.
	blocker, _, rej := s.Admit(slowSpec(t, 2), "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}
	a, dedup, rej := s.Admit(fastSpec(t, 3), "c1", "")
	if rej != nil || dedup {
		t.Fatalf("first copy: dedup=%v rej=%v", dedup, rej)
	}
	b, dedup, rej := s.Admit(fastSpec(t, 3), "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}
	if !dedup || b != a {
		t.Fatalf("identical spec must join the in-flight job (dedup=%v, %p vs %p)", dedup, a, b)
	}
	if got := s.c.deduped.Load(); got != 1 {
		t.Fatalf("deduped counter: want 1, got %d", got)
	}
	_ = blocker
}

// TestCacheDedup: re-submitting a finished job's spec is answered from the
// content-addressed cache without simulating again.
func TestCacheDedup(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	first, _, rej := s.Admit(fastSpec(t, 4), "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}
	if st := waitTerminal(t, first, 10*time.Second); st.State != StateDone {
		t.Fatalf("first run: %s (%+v)", st.State, st.Error)
	}
	second, dedup, rej := s.Admit(fastSpec(t, 4), "c1", "")
	if rej != nil || dedup {
		t.Fatalf("finished jobs must not in-flight-dedup: dedup=%v rej=%v", dedup, rej)
	}
	st := waitTerminal(t, second, 10*time.Second)
	if st.State != StateDone || !st.Cached {
		t.Fatalf("want cached done, got state=%s cached=%v", st.State, st.Cached)
	}
	if got := s.c.cacheHits.Load(); got != 1 {
		t.Fatalf("cacheHits counter: want 1, got %d", got)
	}
}

// TestQueueFullRejects: admissions past the queue bound answer 429
// queue_full with Retry-After, and the rejection is counted.
func TestQueueFullRejects(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(seed uint64, slow bool) *http.Response {
		spec := fmt.Sprintf(
			`{"kind":"sim","topology":{"noc":"hoplite","n":4},
			  "workload":{"pattern":"RANDOM","rate":0.1,"packets":20,"seed":%d}}`, seed)
		if slow {
			spec = fmt.Sprintf(
				`{"kind":"sim","topology":{"noc":"hoplite","n":16},
				  "workload":{"pattern":"RANDOM","rate":1.0,"packets":100000,"seed":%d}}`, seed)
		}
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	if resp := post(10, true); resp.StatusCode != http.StatusAccepted { // occupies the worker
		t.Fatalf("blocker: %d", resp.StatusCode)
	}
	// The worker may claim the blocker asynchronously; whichever of these
	// lands in the queue, the one after a full queue must be refused.
	var got429 *http.Response
	for seed := uint64(11); seed < 16; seed++ {
		resp := post(seed, false)
		if resp.StatusCode == http.StatusTooManyRequests {
			got429 = resp
			break
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("unexpected status %d", resp.StatusCode)
		}
	}
	if got429 == nil {
		t.Fatal("queue never filled; expected a 429")
	}
	if got429.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var body errorBody
	if err := json.NewDecoder(got429.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error.Code != "queue_full" {
		t.Fatalf("want queue_full, got %q", body.Error.Code)
	}
	if s.c.rejectedQueue.Load() == 0 {
		t.Fatal("queue_full rejection not counted")
	}
}

// TestRateLimitRejects: a client past its token bucket is refused with 429
// rate_limited and a positive retry hint; other clients are unaffected.
func TestRateLimitRejects(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, RatePerSec: 0.001, Burst: 1})
	if _, _, rej := s.Admit(fastSpec(t, 20), "greedy", ""); rej != nil {
		t.Fatalf("first admission within burst must pass: %v", rej)
	}
	_, _, rej := s.Admit(fastSpec(t, 21), "greedy", "")
	if rej == nil || rej.Code != "rate_limited" {
		t.Fatalf("want rate_limited, got %v", rej)
	}
	if rej.RetryAfter <= 0 {
		t.Fatal("rate_limited without a retry hint")
	}
	if _, _, rej := s.Admit(fastSpec(t, 22), "patient", ""); rej != nil {
		t.Fatalf("other clients must not share the bucket: %v", rej)
	}
	if got := s.c.rejectedRate.Load(); got != 1 {
		t.Fatalf("rate rejection counter: want 1, got %d", got)
	}
}

// TestBadSpecRejects: malformed documents answer 400 with the structured
// error envelope and never reach admission.
func TestBadSpecRejects(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct{ js, field string }{
		{`{"kind":`, ""},
		{`{"kind":"mine-bitcoin"}`, "kind"},
		{`{"kind":"sim","workload":{"pattern":"RANDOM","rate":9,"packets":10}}`, "workload.rate"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(c.js))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: want 400, got %d", c.js, resp.StatusCode)
		}
		var body errorBody
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
		if body.Error.Code != "bad_spec" || body.Error.Message == "" || body.Error.Field != c.field {
			t.Fatalf("%s: bad envelope %+v", c.js, body.Error)
		}
	}
	if got := s.c.badSpec.Load(); got != int64(len(cases)) {
		t.Fatalf("bad_spec counter: want %d, got %d", len(cases), got)
	}
	if got := s.c.admitted.Load(); got != 0 {
		t.Fatalf("malformed specs must never be admitted, got %d", got)
	}
}

// TestPanicIsolation: a panicking job becomes a structured failure with a
// stack, and the daemon keeps serving.
func TestPanicIsolation(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, DebugHooks: true})
	j, _, rej := s.Admit(decodeSpec(t, `{"kind":"sim","debug_panic":true}`), "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}
	st := waitTerminal(t, j, 10*time.Second)
	if st.State != StateFailed || st.Error == nil || st.Error.Kind != "panic" {
		t.Fatalf("want failed/panic, got %s %+v", st.State, st.Error)
	}
	if st.Error.Stack == "" {
		t.Fatal("panic failure without a stack")
	}
	if got := s.c.panics.Load(); got != 1 {
		t.Fatalf("panic counter: want 1, got %d", got)
	}
	// The daemon survived: the next job runs normally.
	k, _, rej := s.Admit(fastSpec(t, 30), "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}
	if st := waitTerminal(t, k, 10*time.Second); st.State != StateDone {
		t.Fatalf("daemon did not keep serving after a panic: %s", st.State)
	}
}

// TestDebugPanicRequiresHooks: without debug hooks the spec is refused at
// admission, so production daemons cannot be crashed by request.
func TestDebugPanicRequiresHooks(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	_, _, rej := s.Admit(decodeSpec(t, `{"kind":"sim","debug_panic":true}`), "c1", "")
	if rej == nil || rej.Code != "debug_disabled" {
		t.Fatalf("want debug_disabled, got %v", rej)
	}
}

// TestJobTimeout: a spec deadline aborts a heavy run via the engine's
// cancellation poll and surfaces as a structured timeout failure.
func TestJobTimeout(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	// n=8 keeps each 4096-cycle cancellation-poll block cheap even under
	// the race detector, so the deadline surfaces promptly.
	spec := decodeSpec(t, `{"kind":"sim","timeout_ms":20,
		"topology":{"noc":"hoplite","n":8},
		"workload":{"pattern":"RANDOM","rate":1.0,"packets":200000,"seed":31}}`)
	j, _, rej := s.Admit(spec, "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}
	st := waitTerminal(t, j, 30*time.Second)
	if st.State != StateFailed || st.Error == nil || st.Error.Kind != "timeout" {
		t.Fatalf("want failed/timeout, got %s %+v", st.State, st.Error)
	}
	if got := s.c.timeouts.Load(); got != 1 {
		t.Fatalf("timeout counter: want 1, got %d", got)
	}
}

// TestStreamDeliversTerminalStatus: an SSE subscriber sees the job's final
// status frame and the stream then closes.
func TestStreamDeliversTerminalStatus(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, _, rej := s.Admit(fastSpec(t, 40), "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + j.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type: %s", ct)
	}
	var sawDone bool
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() { // stream ends when the job finishes and the server closes it
		line := sc.Text()
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"state":"done"`) {
			sawDone = true
		}
	}
	if !sawDone {
		t.Fatal("stream closed without a terminal done frame")
	}
}

// TestMetricsEndpoint: the fleet metrics expose the admission counters.
func TestMetricsEndpoint(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, _, rej := s.Admit(fastSpec(t, 50), "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}
	waitTerminal(t, j, 10*time.Second)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text() + "\n")
	}
	body := sb.String()
	for _, want := range []string{
		"ftserve_jobs_admitted_total 1",
		`ftserve_jobs_finished_total{state="done"} 1`,
		`ftserve_rejected_total{reason="queue_full"} 0`,
		"ftserve_queue_capacity 64",
		"fasttrack_runner_jobs_executed_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q in:\n%s", want, body)
		}
	}
}
