// Package serve is the simulation-as-a-service front door: a long-running
// daemon (cmd/ftserve) where clients POST sim/sweep/DSE job specs as JSON
// (the cliflags.JobSpec codec — the same vocabulary as the CLI flag groups),
// receive job IDs, stream progress and windowed metrics over SSE, and fetch
// results. Identical jobs dedupe twice: in flight (a duplicate POST joins
// the running job) and at rest (every run consults the shared
// content-addressed .ftcache/ through internal/runner), so a thousand
// identical requests cost one simulation.
//
// The robustness machinery is the point, not the plumbing:
//
//   - Admission control: a bounded job queue; a full queue answers
//     HTTP 429 with Retry-After and an explicit rejection counter rather
//     than queueing without bound.
//   - Per-client token-bucket rate limits (X-Client header or remote host).
//   - Per-job deadlines: the job context expires and the engine aborts at
//     its next cancellation poll; the client sees a structured timeout.
//   - Panic isolation: a crashing job yields a structured error response
//     with the stack; the daemon keeps serving.
//   - Backpressure on slow SSE consumers: bounded per-client frame buffers
//     with drop-oldest, write deadlines on every frame.
//   - Graceful drain: Drain stops admission (503), finishes or — past the
//     drain deadline — cleanly cancels every accepted job, and returns only
//     when each one has reached a terminal, fetchable state (zero
//     accepted-job loss).
package serve

import (
	"context"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"fasttrack/internal/cliflags"
	"fasttrack/internal/obs"
	"fasttrack/internal/runner"
)

// Options configures a daemon. The zero value is usable: defaults below.
type Options struct {
	// QueueDepth bounds the admission queue (default 64). POSTs beyond it
	// are rejected with 429, never buffered.
	QueueDepth int
	// Workers is the number of concurrent jobs (default NumCPU).
	Workers int
	// SweepWorkers bounds the per-job simulation fan-out inside sweep and
	// DSE jobs (default NumCPU).
	SweepWorkers int
	// RatePerSec, when positive, enforces a per-client token-bucket
	// admission rate; Burst is the bucket size (default 8).
	RatePerSec float64
	Burst      float64
	// JobTimeout caps every job's wall clock; a spec's timeout_ms may only
	// shorten it. 0 means no server-side cap.
	JobTimeout time.Duration
	// CacheDir is the shared content-addressed result cache (default
	// runner.DefaultCacheDir); NoCache disables it.
	CacheDir string
	NoCache  bool
	// RetainJobs bounds how many finished jobs stay fetchable (default
	// 4096); older ones are evicted so the registry cannot grow without
	// bound.
	RetainJobs int
	// DebugHooks enables the debug_panic spec field (load tests use it to
	// prove panic isolation); production daemons leave it off and such
	// specs are rejected at admission.
	DebugHooks bool
	// MetricsInterval is the per-job SSE windowed-metrics period
	// (default 250ms).
	MetricsInterval time.Duration
	// SSEBuf is the per-subscriber frame buffer (default 32 frames);
	// SSEWriteTimeout bounds each frame write (default 10s).
	SSEBuf          int
	SSEWriteTimeout time.Duration
	// Logger receives the daemon's structured records, every one carrying
	// trace_id/job_id/client attrs where a request is in scope. nil discards
	// (embedding tests stay quiet); cmd/ftserve passes the cliflags.Logging
	// logger.
	Logger *slog.Logger
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 64
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.NumCPU()
}

func (o Options) retainJobs() int {
	if o.RetainJobs > 0 {
		return o.RetainJobs
	}
	return 4096
}

func (o Options) metricsInterval() time.Duration {
	if o.MetricsInterval > 0 {
		return o.MetricsInterval
	}
	return 250 * time.Millisecond
}

func (o Options) sseBuf() int {
	if o.SSEBuf > 0 {
		return o.SSEBuf
	}
	return 32
}

func (o Options) sseWriteTimeout() time.Duration {
	if o.SSEWriteTimeout > 0 {
		return o.SSEWriteTimeout
	}
	return 10 * time.Second
}

func (o Options) burst() float64 {
	if o.Burst > 0 {
		return o.Burst
	}
	return 8
}

// counters are the daemon's explicit accounting: every admission decision
// increments exactly one of these, so /metrics totals reconcile with what
// clients observed.
type counters struct {
	admitted         atomic.Int64
	deduped          atomic.Int64
	rejectedQueue    atomic.Int64
	rejectedRate     atomic.Int64
	rejectedDraining atomic.Int64
	badSpec          atomic.Int64

	finishedDone     atomic.Int64
	finishedFailed   atomic.Int64
	finishedCanceled atomic.Int64
	timeouts         atomic.Int64
	panics           atomic.Int64

	cacheHits  atomic.Int64 // serve-level cache peeks (before runner.Do)
	running    atomic.Int64
	sseDropped atomic.Int64
}

// Server is the daemon. Create with New, expose Handler over HTTP, stop
// with Drain (graceful) or Close (immediate cancel, still no job loss).
type Server struct {
	opts  Options
	orch  *runner.Orchestrator
	cache *runner.Cache

	// baseCtx parents every job context; cancelAll is the drain deadline's
	// hammer (and Close's).
	baseCtx   context.Context
	cancelAll context.CancelFunc

	mu        sync.Mutex
	jobs      map[string]*Job
	byKey     map[string]*Job // queued or running jobs by canonical spec key
	doneOrder []string        // finished job IDs, oldest first (retention)
	queue     chan *Job
	seq       int64

	wg       sync.WaitGroup
	draining atomic.Bool
	drained  chan struct{}

	limiter *limiter
	c       counters
	log     *slog.Logger

	// Stage-latency histograms (fixed obs bucket geometry). Each sample is
	// the exact duration of one recorded span, so /metrics sums reconcile
	// bit-for-bit with the span log (see DESIGN.md §16).
	histQueueWait obs.DurationHist
	histRun       obs.DurationHist
	histE2E       obs.DurationHist
	histSSEFlush  obs.DurationHist

	start time.Time
}

// New builds a daemon and starts its worker pool.
func New(opts Options) (*Server, error) {
	var cache *runner.Cache
	if !opts.NoCache {
		var err error
		if cache, err = runner.NewCache(opts.CacheDir); err != nil {
			return nil, err
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opts:      opts,
		orch:      &runner.Orchestrator{Cache: cache, Workers: opts.SweepWorkers},
		cache:     cache,
		baseCtx:   ctx,
		cancelAll: cancel,
		jobs:      make(map[string]*Job),
		byKey:     make(map[string]*Job),
		queue:     make(chan *Job, opts.queueDepth()),
		drained:   make(chan struct{}),
		limiter:   newLimiter(opts.RatePerSec, opts.burst()),
		log:       opts.Logger,
		start:     time.Now(),
	}
	if s.log == nil {
		s.log = slog.New(slog.DiscardHandler)
	}
	for i := 0; i < opts.workers(); i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Orchestrator exposes the shared sweep orchestrator (for /metrics and
// embedding).
func (s *Server) Orchestrator() *runner.Orchestrator { return s.orch }

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool { return s.draining.Load() }

// beginDrain idempotently stops admission and closes the queue; workers
// drain the remaining accepted jobs and exit.
func (s *Server) beginDrain() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining.Swap(true) {
		return
	}
	close(s.queue)
	go func() {
		s.wg.Wait()
		close(s.drained)
	}()
}

// Drain gracefully shuts the daemon down: admission stops immediately
// (POSTs answer 503), accepted jobs run to completion, and when ctx expires
// first the remaining jobs are cancelled cooperatively — they still reach a
// terminal state and stay fetchable, so an accepted job is never lost
// either way. Returns nil when every job finished inside the deadline,
// ctx's error otherwise.
func (s *Server) Drain(ctx context.Context) error {
	s.beginDrain()
	select {
	case <-s.drained:
		return nil
	case <-ctx.Done():
		s.cancelAll()
		<-s.drained
		return ctx.Err()
	}
}

// Close shuts down without grace: admission stops and in-flight jobs are
// cancelled at once (they still finish as canceled, not lost).
func (s *Server) Close() error {
	s.beginDrain()
	s.cancelAll()
	<-s.drained
	return nil
}

// RejectError is a structured admission refusal; the HTTP layer serializes
// it with the matching status and Retry-After header.
type RejectError struct {
	Code       string // "queue_full" | "rate_limited" | "draining" | "debug_disabled"
	Status     int
	Message    string
	RetryAfter time.Duration
}

func (e *RejectError) Error() string { return e.Code + ": " + e.Message }

// Admit runs the admission pipeline for a decoded, validated spec:
// drain check, per-client rate limit, in-flight dedup, bounded queue.
// clientKey identifies the caller for rate limiting; traceID is the
// client-supplied correlation ID ("" generates one). On success the job is
// registered and queued (dedup=false) with admission and queue-wait spans
// already recording, or an identical in-flight job is returned (dedup=true)
// with a dedup_join event appended to its trace.
func (s *Server) Admit(spec *cliflags.JobSpec, clientKey, traceID string) (j *Job, dedup bool, rej *RejectError) {
	tr := obs.NewJobTrace(traceID)
	reject := func(rej *RejectError) (*Job, bool, *RejectError) {
		s.log.Warn("admission rejected",
			"trace_id", tr.TraceID(), "client", clientKey,
			"reason", rej.Code)
		return nil, false, rej
	}
	adm := tr.Begin("admission").Attr("client", clientKey)
	if s.draining.Load() {
		s.c.rejectedDraining.Add(1)
		return reject(&RejectError{
			Code: "draining", Status: http.StatusServiceUnavailable,
			Message: "daemon is draining; not admitting new jobs",
		})
	}
	if spec.DebugPanic && !s.opts.DebugHooks {
		s.c.badSpec.Add(1)
		return reject(&RejectError{
			Code: "debug_disabled", Status: http.StatusBadRequest,
			Message: "debug_panic requires a daemon started with debug hooks",
		})
	}
	rl := tr.Begin("rate_limit")
	ok, retry := s.limiter.allow(clientKey, time.Now())
	rl.End()
	if !ok {
		s.c.rejectedRate.Add(1)
		return reject(&RejectError{
			Code: "rate_limited", Status: http.StatusTooManyRequests,
			Message:    "per-client admission rate exceeded",
			RetryAfter: retry,
		})
	}
	key, err := spec.CanonicalKey()
	if err != nil {
		s.c.badSpec.Add(1)
		return reject(&RejectError{
			Code: "bad_spec", Status: http.StatusBadRequest, Message: err.Error(),
		})
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check under the lock: beginDrain closes the queue under the same
	// mutex, so this ordering makes "send on closed queue" impossible.
	if s.draining.Load() {
		s.c.rejectedDraining.Add(1)
		return reject(&RejectError{
			Code: "draining", Status: http.StatusServiceUnavailable,
			Message: "daemon is draining; not admitting new jobs",
		})
	}
	if prior := s.byKey[key]; prior != nil {
		s.c.deduped.Add(1)
		// The duplicate POST's own trace ID lands as an event attr on the
		// job it joined, so both correlation handles survive.
		prior.trace.Event("dedup_join", map[string]any{
			"client": clientKey, "joined_trace_id": tr.TraceID(),
		})
		s.log.Info("dedup join",
			"trace_id", prior.TraceID(), "job_id", prior.ID,
			"client", clientKey, "joined_trace_id", tr.TraceID())
		return prior, true, nil
	}
	s.seq++
	j = newJob(s, s.seq, spec, key, tr, clientKey)
	adm.End()
	// The queue-wait span must open before the channel send: the send is the
	// happens-before edge to the worker that will close it.
	j.queueWait = tr.Begin("queue_wait")
	select {
	case s.queue <- j:
	default:
		s.c.rejectedQueue.Add(1)
		return reject(&RejectError{
			Code: "queue_full", Status: http.StatusTooManyRequests,
			Message:    "admission queue is full",
			RetryAfter: time.Second,
		})
	}
	s.jobs[j.ID] = j
	s.byKey[key] = j
	s.c.admitted.Add(1)
	s.log.Info("job admitted",
		"trace_id", j.TraceID(), "job_id", j.ID, "client", clientKey,
		"kind", spec.Kind, "queue_depth", len(s.queue))
	return j, false, nil
}

// Job returns a registered job by ID (nil if unknown or evicted).
func (s *Server) Job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// finishRegistration moves a terminal job out of the dedup index and
// applies the bounded retention policy.
func (s *Server) finishRegistration(j *Job) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.byKey[j.Key] == j {
		delete(s.byKey, j.Key)
	}
	s.doneOrder = append(s.doneOrder, j.ID)
	for len(s.doneOrder) > s.opts.retainJobs() {
		old := s.doneOrder[0]
		s.doneOrder = s.doneOrder[1:]
		delete(s.jobs, old)
	}
}

// QueueDepth reports the jobs accepted but not yet started.
func (s *Server) QueueDepth() int { return len(s.queue) }
