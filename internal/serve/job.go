package serve

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"fasttrack/internal/cliflags"
	"fasttrack/internal/obs"
	"fasttrack/internal/sim"
)

// State is a job's lifecycle position. Terminal states are StateDone,
// StateFailed and StateCanceled; every accepted job reaches exactly one.
type State string

// Job lifecycle states.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether st is an end state.
func (st State) Terminal() bool {
	return st == StateDone || st == StateFailed || st == StateCanceled
}

// Failure is the structured error a job surfaces to clients: Kind
// distinguishes a timeout from a cancellation from a panic from a plain
// simulation error, which is the distinction retry logic needs.
type Failure struct {
	Kind    string `json:"kind"` // "timeout" | "canceled" | "panic" | "error"
	Message string `json:"message"`
	// Stack is populated for panics (isolation keeps the daemon alive; the
	// stack keeps the bug debuggable).
	Stack string `json:"stack,omitempty"`
}

// ResultSummary is the wire form of one simulation result: the paper's
// measurements without the heavyweight histogram payloads.
type ResultSummary struct {
	Config        string  `json:"config"`
	Rate          float64 `json:"rate"`
	Cycles        int64   `json:"cycles"`
	Injected      int64   `json:"injected"`
	Delivered     int64   `json:"delivered"`
	SustainedRate float64 `json:"sustained_rate"`
	AvgLatency    float64 `json:"avg_latency"`
	WorstLatency  int64   `json:"worst_latency"`
	P50           int64   `json:"p50"`
	P99           int64   `json:"p99"`
	TimedOut      bool    `json:"timed_out,omitempty"`
	Converged     bool    `json:"converged,omitempty"`
	// Cached marks a result answered from the content-addressed cache
	// rather than simulated fresh.
	Cached bool `json:"cached,omitempty"`
}

func summarize(config string, rate float64, r sim.Result, cached bool) ResultSummary {
	return ResultSummary{
		Config: config, Rate: rate,
		Cycles: r.Cycles, Injected: r.Injected, Delivered: r.Delivered,
		SustainedRate: r.SustainedRate, AvgLatency: r.AvgLatency,
		WorstLatency: r.WorstLatency, P50: r.P50, P99: r.P99,
		TimedOut: r.TimedOut, Converged: r.Converged, Cached: cached,
	}
}

// Status is the client-visible job view, served on GET /jobs/{id} and as
// every SSE status frame.
type Status struct {
	ID       string     `json:"id"`
	TraceID  string     `json:"trace_id,omitempty"`
	Kind     string     `json:"kind"`
	State    State      `json:"state"`
	Cached   bool       `json:"cached,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    *Failure   `json:"error,omitempty"`
	// Result is kind-shaped: ResultSummary (sim), []ResultSummary (sweep)
	// or DSEResult (dse); present only in terminal StateDone.
	Result any `json:"result,omitempty"`
}

// Job is one admitted request. All mutable state sits behind mu; SSE
// subscribers receive frames through bounded buffered channels that are
// only sent to and closed under mu (drop-oldest, never blocking).
type Job struct {
	ID   string
	Spec *cliflags.JobSpec
	Key  string
	// Client is the admission identity (X-Client header or remote host) of
	// the submitter; it rides along as a slog attr.
	Client string

	srv *Server

	// trace is the job's span recorder; queueWait is the pending span opened
	// at admission and closed by runJob at the queued→running transition.
	trace     *obs.JobTrace
	queueWait *obs.Pending

	mu       sync.Mutex
	state    State
	cached   bool
	failure  *Failure
	result   any
	created  time.Time
	started  time.Time
	finished time.Time
	subs     map[chan []byte]struct{}

	// done closes when the job reaches a terminal state.
	done chan struct{}
}

func newJob(s *Server, seq int64, spec *cliflags.JobSpec, key string, tr *obs.JobTrace, client string) *Job {
	j := &Job{
		ID:      fmt.Sprintf("j%06d", seq),
		Spec:    spec,
		Key:     key,
		Client:  client,
		srv:     s,
		trace:   tr,
		state:   StateQueued,
		created: time.Now(),
		subs:    make(map[chan []byte]struct{}),
		done:    make(chan struct{}),
	}
	tr.SetJobID(j.ID)
	return j
}

// TraceID returns the job's correlation ID (inbound X-Ftserve-Trace-Id or
// generated at admission).
func (j *Job) TraceID() string { return j.trace.TraceID() }

// Trace exposes the job's span recorder (the /debug/trace/{job} source).
func (j *Job) Trace() *obs.JobTrace { return j.trace }

// Done returns a channel closed at the job's terminal transition.
func (j *Job) Done() <-chan struct{} { return j.done }

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Status snapshots the client-visible view.
func (j *Job) Status() Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.statusLocked()
}

func (j *Job) statusLocked() Status {
	st := Status{
		ID: j.ID, TraceID: j.trace.TraceID(), Kind: j.Spec.Kind,
		State: j.state, Cached: j.cached,
		Created: j.created, Error: j.failure,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.state == StateDone {
		st.Result = j.result
	}
	return st
}

// sseFrame renders one Server-Sent-Events frame.
func sseFrame(event string, payload any) []byte {
	b, err := json.Marshal(payload)
	if err != nil {
		b = []byte(`{}`)
	}
	return []byte("event: " + event + "\ndata: " + string(b) + "\n\n")
}

// offer enqueues a frame on a subscriber without blocking: a full buffer
// loses its oldest frame (counted fleet-wide). Callers hold j.mu, so sends
// never race the close in finish/unsubscribe.
func (j *Job) offer(ch chan []byte, b []byte) {
	select {
	case ch <- b:
		return
	default:
	}
	select {
	case <-ch:
		j.srv.c.sseDropped.Add(1)
	default:
	}
	select {
	case ch <- b:
	default:
		j.srv.c.sseDropped.Add(1)
	}
}

// publish fans an event frame out to every subscriber.
func (j *Job) publish(event string, payload any) {
	b := sseFrame(event, payload)
	j.mu.Lock()
	for ch := range j.subs {
		j.offer(ch, b)
	}
	j.mu.Unlock()
}

// subscribe registers an SSE consumer. A live job's first buffered frame is
// its current status; a finished job yields its span trace followed by the
// terminal status frame (the same order finish emits: terminal status last)
// and closes.
func (j *Job) subscribe(buf int) chan []byte {
	if buf < 2 {
		buf = 2
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	ch := make(chan []byte, buf)
	if j.state.Terminal() {
		ch <- sseFrame("trace", j.trace.Export())
		ch <- sseFrame("status", j.statusLocked())
		close(ch)
		return ch
	}
	ch <- sseFrame("status", j.statusLocked())
	j.subs[ch] = struct{}{}
	return ch
}

func (j *Job) unsubscribe(ch chan []byte) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.subs[ch]; ok {
		delete(j.subs, ch)
		close(ch)
	}
}

// setRunning marks the queued→running transition and announces it.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.started = time.Now()
	frame := sseFrame("status", j.statusLocked())
	for ch := range j.subs {
		j.offer(ch, frame)
	}
	j.mu.Unlock()
}

// finish records the terminal state, emits the job's span trace followed by
// the final status frame, and closes every subscriber; after it returns the
// job is immutable. The trace frame precedes the status frame so a client
// that stops at the terminal status still saw its spans.
func (j *Job) finish(state State, cached bool, result any, failure *Failure) {
	traceFrame := sseFrame("trace", j.trace.Export())
	j.mu.Lock()
	j.state = state
	j.cached = cached
	j.result = result
	j.failure = failure
	j.finished = time.Now()
	frame := sseFrame("status", j.statusLocked())
	for ch := range j.subs {
		j.offer(ch, traceFrame)
		j.offer(ch, frame)
		close(ch)
	}
	j.subs = nil
	close(j.done)
	j.mu.Unlock()
}
