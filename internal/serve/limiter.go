package serve

import (
	"sync"
	"time"
)

// maxClients bounds the limiter's bucket map; past it, idle (refilled)
// buckets are pruned so an address-spraying client cannot grow server
// memory without bound.
const maxClients = 4096

type bucket struct {
	tokens float64
	last   time.Time
}

// limiter is a per-client token bucket: each client key accrues rate
// tokens/second up to burst, and one admission costs one token. A nil or
// zero-rate limiter admits everything.
type limiter struct {
	mu      sync.Mutex
	rate    float64
	burst   float64
	buckets map[string]*bucket
}

func newLimiter(rate, burst float64) *limiter {
	if rate <= 0 {
		return &limiter{}
	}
	return &limiter{rate: rate, burst: burst, buckets: make(map[string]*bucket)}
}

// allow charges one token for key at time now. When the bucket is empty it
// refuses and reports how long until the next token accrues — the
// Retry-After the HTTP layer sends back.
func (l *limiter) allow(key string, now time.Time) (bool, time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= maxClients {
			l.prune()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	return false, wait
}

// prune drops fully-refilled buckets: a client at full burst is
// indistinguishable from one never seen. Called with mu held.
func (l *limiter) prune() {
	for k, b := range l.buckets {
		if b.tokens >= l.burst {
			delete(l.buckets, k)
		}
	}
}
