package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"fasttrack/internal/core"
	"fasttrack/internal/dse"
	"fasttrack/internal/monitor"
	"fasttrack/internal/obs"
	"fasttrack/internal/runner"
)

// metricsFrame is the windowed-metrics SSE payload: cumulative totals plus
// the delta over the last sampling window, derived from the job's telemetry
// collector while the simulation is running.
type metricsFrame struct {
	Cycles    int64 `json:"cycles"`
	Injected  int64 `json:"injected"`
	Delivered int64 `json:"delivered"`
	InFlight  int64 `json:"in_flight"`

	WindowCycles    int64   `json:"window_cycles"`
	WindowDelivered int64   `json:"window_delivered"`
	WindowRate      float64 `json:"window_rate"` // delivered/cycle/PE over the window

	CyclesPerSec float64 `json:"cycles_per_sec"`
	MeanLatency  float64 `json:"mean_latency"`
	P50          int64   `json:"p50"`
	P99          int64   `json:"p99"`
}

// progressFrame announces one finished sweep point.
type progressFrame struct {
	Completed int           `json:"completed"`
	Total     int           `json:"total"`
	Point     ResultSummary `json:"point"`
}

// DSEResult is the client-facing design-space-exploration result: the
// evaluated points plus the cache accounting.
type DSEResult struct {
	Points []DSEPoint `json:"points"`
	// Simulated/Cached report how the exploration's runs were satisfied.
	Simulated int64 `json:"simulated"`
	Cached    int64 `json:"cached"`
}

// DSEPoint is one evaluated design.
type DSEPoint struct {
	Name           string  `json:"name"`
	LUTs           int     `json:"luts"`
	FFs            int     `json:"ffs"`
	WireFactor     int     `json:"wire_factor"`
	Routable       bool    `json:"routable"`
	ClockMHz       float64 `json:"clock_mhz,omitempty"`
	SustainedRate  float64 `json:"sustained_rate,omitempty"`
	ThroughputMPPS float64 `json:"throughput_mpps,omitempty"`
	Pareto         bool    `json:"pareto,omitempty"`
}

// panicFailure carries a recovered panic out of the execution closure.
type panicFailure struct {
	value any
	stack []byte
}

func (p *panicFailure) Error() string { return fmt.Sprintf("job panicked: %v", p.value) }

// runJob drives one admitted job to a terminal state. It never lets a
// panic escape (that would kill the worker and, unrecovered, the daemon)
// and always finishes the job — queued work is never silently dropped.
func (s *Server) runJob(j *Job) {
	s.c.running.Add(1)
	defer s.c.running.Add(-1)

	// The queue-wait span closes at the queued→running transition (or here,
	// when a drain deadline canceled the job in the queue); the histogram
	// sample is the identical duration the span recorded.
	if j.queueWait != nil {
		s.histQueueWait.Observe(j.queueWait.End())
		j.queueWait = nil
	}

	// A drain deadline may have fired while this job sat in the queue;
	// finish it as canceled without starting the simulation.
	if s.baseCtx.Err() != nil {
		s.finishJob(j, nil, false, s.baseCtx.Err())
		return
	}
	j.setRunning()

	// jctx carries the job's correlation handles and span recorder into
	// runner.Do's cache peeks and core.Run*'s engine span.
	jctx := obs.WithTrace(obs.WithJobID(obs.WithTraceID(s.baseCtx, j.TraceID()), j.ID), j.trace)
	var cancel context.CancelFunc
	ctx := jctx
	if d := s.effectiveTimeout(j.Spec.Timeout()); d > 0 {
		ctx, cancel = context.WithTimeout(ctx, d)
	}

	log := obs.LoggerWith(jctx, s.log).With("client", j.Client, "kind", j.Spec.Kind)
	log.Info("job running")
	run := j.trace.Begin("run")
	result, cached, err := func() (result any, cached bool, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &panicFailure{value: r, stack: debug.Stack()}
			}
		}()
		if j.Spec.DebugPanic {
			panic("debug_panic requested by spec")
		}
		switch j.Spec.Kind {
		case "sim":
			return s.runSim(ctx, j)
		case "sweep":
			return s.runSweep(ctx, j)
		case "dse":
			return s.runDSE(ctx, j)
		}
		return nil, false, fmt.Errorf("unknown job kind %q", j.Spec.Kind)
	}()
	s.histRun.Observe(run.Attr("cached", cached).End())
	if cancel != nil {
		cancel()
	}
	s.finishJob(j, result, cached, err)
	if st := j.State(); st == StateDone {
		log.Info("job finished", "state", st, "cached", cached)
	} else {
		log.Warn("job finished", "state", st, "error", err)
	}
}

// effectiveTimeout combines the spec's requested deadline with the daemon
// cap: the spec may only shorten the server's bound, never extend it.
func (s *Server) effectiveTimeout(want time.Duration) time.Duration {
	capd := s.opts.JobTimeout
	if want <= 0 {
		return capd
	}
	if capd > 0 && capd < want {
		return capd
	}
	return want
}

// finishJob classifies the outcome, records the end-to-end span and
// histogram sample (before the terminal transition, so a client that sees
// the final status frame scrapes consistent /metrics), records the terminal
// state, and retires the job from the in-flight dedup index.
func (s *Server) finishJob(j *Job, result any, cached bool, err error) {
	state := StateDone
	var failure *Failure
	switch {
	case err == nil:
		s.c.finishedDone.Add(1)
		if cached {
			s.c.cacheHits.Add(1)
		}
	default:
		var pf *panicFailure
		switch {
		case errors.As(err, &pf):
			s.c.panics.Add(1)
			s.c.finishedFailed.Add(1)
			state = StateFailed
			failure = &Failure{Kind: "panic", Message: pf.Error(), Stack: string(pf.stack)}
		case s.baseCtx.Err() != nil || errors.Is(err, context.Canceled):
			s.c.finishedCanceled.Add(1)
			state = StateCanceled
			failure = &Failure{Kind: "canceled", Message: "job canceled: " + err.Error()}
		case errors.Is(err, context.DeadlineExceeded):
			s.c.timeouts.Add(1)
			s.c.finishedFailed.Add(1)
			state = StateFailed
			failure = &Failure{Kind: "timeout", Message: "job deadline exceeded: " + err.Error()}
		default:
			s.c.finishedFailed.Add(1)
			state = StateFailed
			failure = &Failure{Kind: "error", Message: err.Error()}
		}
		result, cached = nil, false
	}
	// Root span: the job's whole wall clock from trace creation (admission)
	// to this terminal transition, sampled into the e2e histogram from the
	// identical Span so both sides carry the same nanosecond count.
	e2e := obs.Span{
		Name: "job", Start: j.trace.Start(), End: time.Now(),
		Attrs: map[string]any{"state": string(state), "kind": j.Spec.Kind},
	}
	j.trace.Add(e2e)
	s.histE2E.Observe(e2e.Dur())
	j.finish(state, cached, result, failure)
	s.finishRegistration(j)
}

// sampleMetrics streams windowed metrics frames from col to the job's SSE
// subscribers until stop closes.
func (s *Server) sampleMetrics(j *Job, col *monitor.Collector, stop <-chan struct{}) {
	t := time.NewTicker(s.opts.metricsInterval())
	defer t.Stop()
	var prev monitor.Snapshot
	for {
		select {
		case <-stop:
			return
		case <-t.C:
		}
		snap := col.Snapshot()
		f := metricsFrame{
			Cycles: snap.Cycles, Injected: snap.Injected,
			Delivered: snap.Delivered, InFlight: snap.InFlight,
			WindowCycles:    snap.Cycles - prev.Cycles,
			WindowDelivered: snap.Delivered - prev.Delivered,
			CyclesPerSec:    snap.CyclesPerSec(),
			MeanLatency:     snap.MeanLatency(),
			P50:             snap.P50, P99: snap.P99,
		}
		if pes := snap.W * snap.H; pes > 0 && f.WindowCycles > 0 {
			f.WindowRate = float64(f.WindowDelivered) / float64(f.WindowCycles) / float64(pes)
		}
		prev = snap
		j.publish("metrics", f)
	}
}

// runOne satisfies a single (cfg, opts) simulation: peek the shared cache
// first (counting a serve-level hit), otherwise run through the
// orchestrator's cache-through path.
func (s *Server) runOne(ctx context.Context, cfg core.Config, opts core.SyntheticOptions) (core.Result, bool, error) {
	key := runner.SyntheticKey(cfg, opts)
	if s.cache != nil {
		peek := obs.TraceFrom(ctx).Begin("cache_peek").Attr("config", cfg.String())
		var res core.Result
		hit := s.cache.Get(key, &res)
		peek.Attr("hit", hit).End()
		if hit {
			return res, true, nil
		}
	}
	res, err := runner.Do(ctx, s.orch, key, func() (core.Result, error) {
		return core.RunSynthetic(ctx, cfg, opts)
	})
	return res, false, err
}

func (s *Server) runSim(ctx context.Context, j *Job) (any, bool, error) {
	cfg, opts, err := j.Spec.SimConfig(j.Spec.Workload.Rate)
	if err != nil {
		return nil, false, err
	}
	col := monitor.NewCollector(cfg.N, cfg.N)
	opts.Observer = col
	stop := make(chan struct{})
	go s.sampleMetrics(j, col, stop)
	res, cached, err := s.runOne(ctx, cfg, opts)
	close(stop)
	if err != nil {
		return nil, false, err
	}
	return summarize(cfg.String(), opts.Rate, res, cached), cached, nil
}

func (s *Server) runSweep(ctx context.Context, j *Job) (any, bool, error) {
	spec := j.Spec
	cfg0, _, err := spec.SimConfig(spec.Rates[0])
	if err != nil {
		return nil, false, err
	}
	col := monitor.NewCollector(cfg0.N, cfg0.N)
	stop := make(chan struct{})
	go s.sampleMetrics(j, col, stop)
	defer close(stop)

	results := make([]ResultSummary, len(spec.Rates))
	allCached := true
	var mu sync.Mutex
	completed := 0
	err = s.orch.ForEach(ctx, len(spec.Rates), func(ctx context.Context, i int) error {
		cfg, opts, err := spec.SimConfig(spec.Rates[i])
		if err != nil {
			return err
		}
		opts.Observer = col
		res, cached, err := s.runOne(ctx, cfg, opts)
		if err != nil {
			return fmt.Errorf("rate %v: %w", spec.Rates[i], err)
		}
		sum := summarize(cfg.String(), spec.Rates[i], res, cached)
		mu.Lock()
		results[i] = sum
		allCached = allCached && cached
		completed++
		done := completed
		mu.Unlock()
		j.publish("progress", progressFrame{Completed: done, Total: len(spec.Rates), Point: sum})
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	return results, allCached, nil
}

func (s *Server) runDSE(ctx context.Context, j *Job) (any, bool, error) {
	spec := j.Spec
	// A private orchestrator (sharing the content-addressed cache) keeps the
	// returned simulated/cached accounting scoped to this exploration rather
	// than the daemon's lifetime totals.
	pts, stats, err := dse.Explore(ctx, dse.Options{
		N:            spec.Topology.N,
		WidthBits:    spec.Topology.Width,
		Pattern:      spec.Workload.Pattern,
		Rate:         spec.Workload.Rate,
		PacketsPerPE: spec.Workload.PacketsPerPE,
		MaxChannels:  spec.MaxChannels,
		Variants:     spec.Variants,
		Seed:         spec.Workload.Seed,
		Orch:         &runner.Orchestrator{Cache: s.cache, Workers: s.opts.SweepWorkers},
	})
	if err != nil {
		return nil, false, err
	}
	out := DSEResult{Simulated: stats.Simulated, Cached: stats.Cached}
	for _, p := range pts {
		out.Points = append(out.Points, DSEPoint{
			Name: p.Name, LUTs: p.LUTs, FFs: p.FFs, WireFactor: p.WireFactor,
			Routable: p.Routable, ClockMHz: p.ClockMHz,
			SustainedRate: p.SustainedRate, ThroughputMPPS: p.ThroughputMPPS,
			Pareto: p.Pareto,
		})
	}
	return out, false, nil
}
