package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
	"time"
)

// waitGoroutines polls until the goroutine count settles back near base —
// the drain/close leak check the issue demands. A hard equality would be
// flaky (the runtime keeps a few transient goroutines), so a small slack
// is allowed.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		// The test's own HTTP client keeps idle keep-alive goroutines; they
		// are not the daemon's.
		http.DefaultClient.CloseIdleConnections()
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	t.Fatalf("goroutine leak: %d still running (baseline %d)\n%s",
		runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
}

// assertNoPartialCacheEntries fails if the cache dir holds leftover
// temp files — a canceled job must never leave a half-written entry.
func assertNoPartialCacheEntries(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Fatalf("partial cache entry left behind: %s", filepath.Join(dir, e.Name()))
		}
	}
}

// TestGracefulDrain: SIGTERM semantics — admission stops immediately,
// every accepted job still reaches a terminal (here: done) state, and the
// daemon's goroutines wind down.
func TestGracefulDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	cacheDir := t.TempDir()
	s := newTestServer(t, Options{Workers: 2, QueueDepth: 16, CacheDir: cacheDir})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var jobs []*Job
	for seed := uint64(100); seed < 106; seed++ {
		j, _, rej := s.Admit(fastSpec(t, seed), "c1", "")
		if rej != nil {
			t.Fatal(rej)
		}
		jobs = append(jobs, j)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("graceful drain must finish inside the deadline: %v", err)
	}

	// Zero accepted-job loss: each admitted job is terminal and fetchable.
	for _, j := range jobs {
		st := j.Status()
		if !st.State.Terminal() {
			t.Fatalf("job %s not terminal after drain: %s", j.ID, st.State)
		}
		if st.State != StateDone {
			t.Fatalf("graceful drain had time to finish %s, got %s (%+v)", j.ID, st.State, st.Error)
		}
		if s.Job(j.ID) == nil {
			t.Fatalf("job %s not fetchable after drain", j.ID)
		}
	}

	// Admission during/after drain answers 503.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader(`{"kind":"sim"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST while draining: want 503, got %d", resp.StatusCode)
	}
	if s.c.rejectedDraining.Load() == 0 {
		t.Fatal("draining rejection not counted")
	}

	// /healthz flips to 503 so load balancers stop routing here.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: want 503, got %d", hr.StatusCode)
	}

	assertNoPartialCacheEntries(t, cacheDir)
	ts.Close()
	waitGoroutines(t, base)
}

// TestDrainDeadlineCancelsMidSweep: when the drain deadline fires first,
// in-flight sweep jobs are cancelled cooperatively — they finish as
// canceled (not lost), the cache holds no partial entries, and no
// goroutines leak.
func TestDrainDeadlineCancelsMidSweep(t *testing.T) {
	base := runtime.NumGoroutine()
	cacheDir := t.TempDir()
	s := newTestServer(t, Options{Workers: 1, SweepWorkers: 2, CacheDir: cacheDir})

	sweep := decodeSpec(t, `{"kind":"sweep",
		"topology":{"noc":"hoplite","n":16},
		"workload":{"pattern":"RANDOM","rate":1.0,"packets":100000,"seed":200},
		"rates":[0.2,0.4,0.6,0.8,1.0]}`)
	j, _, rej := s.Admit(sweep, "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}

	// Let the sweep actually start before pulling the plug.
	deadline := time.Now().Add(5 * time.Second)
	for j.State() != StateRunning && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if j.State() != StateRunning {
		t.Fatalf("sweep never started: %s", j.State())
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Drain(ctx)
	if err == nil {
		t.Fatal("a heavy sweep cannot drain in 50ms; want the deadline error")
	}

	st := j.Status()
	if st.State != StateCanceled || st.Error == nil || st.Error.Kind != "canceled" {
		t.Fatalf("want canceled with structured error, got %s %+v", st.State, st.Error)
	}
	if s.c.finishedCanceled.Load() != 1 {
		t.Fatalf("canceled counter: want 1, got %d", s.c.finishedCanceled.Load())
	}

	assertNoPartialCacheEntries(t, cacheDir)
	waitGoroutines(t, base)
}

// TestCloseCancelsQueuedJobs: jobs still waiting in the queue at Close are
// finished as canceled rather than silently dropped.
func TestCloseCancelsQueuedJobs(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1, QueueDepth: 8})
	blocker, _, rej := s.Admit(slowSpec(t, 300), "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}
	queued, _, rej := s.Admit(fastSpec(t, 301), "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	for _, j := range []*Job{blocker, queued} {
		if st := j.Status(); !st.State.Terminal() {
			t.Fatalf("job %s not terminal after Close: %s", j.ID, st.State)
		}
	}
	if st := queued.Status(); st.State != StateCanceled {
		t.Fatalf("queued job: want canceled, got %s", st.State)
	}
}
