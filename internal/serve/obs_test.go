package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fasttrack/internal/obs"
)

// TestTraceIDRoundTrip: a client-supplied X-Ftserve-Trace-Id is honored,
// echoed on the submit response, attached to every status view, and indexes
// a Perfetto-loadable span trace at /debug/trace/{job} covering the whole
// lifecycle.
func TestTraceIDRoundTrip(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"kind":"sim","topology":{"noc":"hoplite","n":4},
	          "workload":{"pattern":"RANDOM","rate":0.1,"packets":20,"seed":900}}`
	req, _ := http.NewRequest("POST", ts.URL+"/jobs", strings.NewReader(body))
	req.Header.Set(TraceHeader, "client-supplied-id-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	if got := resp.Header.Get(TraceHeader); got != "client-supplied-id-1" {
		t.Fatalf("submit echoed trace header %q", got)
	}
	var sub struct {
		ID      string `json:"id"`
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sub.TraceID != "client-supplied-id-1" {
		t.Fatalf("submit body trace_id %q", sub.TraceID)
	}

	j := s.Job(sub.ID)
	st := waitTerminal(t, j, 10*time.Second)
	if st.State != StateDone {
		t.Fatalf("job ended %s: %+v", st.State, st.Error)
	}
	if st.TraceID != "client-supplied-id-1" {
		t.Fatalf("status trace_id %q", st.TraceID)
	}

	resp, err = http.Get(ts.URL + "/debug/trace/" + sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		seen[ev.Name] = true
		if ev.Name == "process_name" || ev.Name == "thread_name" {
			continue
		}
		if ev.Args["trace_id"] != "client-supplied-id-1" {
			t.Fatalf("event %q args %v missing trace_id", ev.Name, ev.Args)
		}
	}
	for _, want := range []string{"admission", "rate_limit", "queue_wait", "run", "job"} {
		if !seen[want] {
			t.Errorf("trace missing %q span (have %v)", want, seen)
		}
	}
}

// TestTraceMalformedIDReplaced: a bogus inbound trace ID is replaced by a
// generated one rather than rejecting the job.
func TestTraceMalformedIDReplaced(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("POST", ts.URL+"/jobs",
		strings.NewReader(`{"kind":"sim","topology":{"noc":"hoplite","n":4},
		  "workload":{"pattern":"RANDOM","rate":0.1,"packets":20,"seed":901}}`))
	req.Header.Set(TraceHeader, "bad id with spaces!")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d", resp.StatusCode)
	}
	got := resp.Header.Get(TraceHeader)
	if got == "bad id with spaces!" || !obs.ValidTraceID(got) {
		t.Fatalf("malformed inbound ID not replaced: %q", got)
	}
}

// TestDedupJoinEvent: a duplicate POST joins the in-flight job and leaves a
// dedup_join event (carrying the duplicate's own trace ID) on its trace.
func TestDedupJoinEvent(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	blocker, _, rej := s.Admit(slowSpec(t, 902), "c1", "block-trace")
	if rej != nil {
		t.Fatal(rej)
	}
	dup, dedup, rej := s.Admit(slowSpec(t, 902), "c2", "dup-trace")
	if rej != nil || !dedup {
		t.Fatalf("expected dedup join, got rej=%v dedup=%v", rej, dedup)
	}
	if dup != blocker || dup.TraceID() != "block-trace" {
		t.Fatalf("joined wrong job: %s trace %s", dup.ID, dup.TraceID())
	}
	var joined bool
	for _, sp := range blocker.Trace().Spans() {
		if sp.Name == "dedup_join" && sp.Attrs["joined_trace_id"] == "dup-trace" {
			joined = true
		}
	}
	if !joined {
		t.Fatal("dedup_join event with joining trace ID not recorded")
	}
	_ = s.Close()
}

// TestSSETraceFrame: the SSE stream delivers a `trace` frame whose spans
// match the job's recorded spans, before the terminal status frame.
func TestSSETraceFrame(t *testing.T) {
	s := newTestServer(t, Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, _, rej := s.Admit(fastSpec(t, 903), "c1", "sse-trace-job")
	if rej != nil {
		t.Fatal(rej)
	}
	resp, err := http.Get(ts.URL + "/jobs/" + j.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "sse-trace-job" {
		t.Fatalf("stream trace header %q", got)
	}

	var traceAt, doneAt = -1, -1
	var export obs.Export
	sc := bufio.NewScanner(resp.Body)
	event, n := "", 0
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			n++
			data := strings.TrimPrefix(line, "data: ")
			switch event {
			case "trace":
				traceAt = n
				if err := json.Unmarshal([]byte(data), &export); err != nil {
					t.Fatalf("trace frame not JSON: %v", err)
				}
			case "status":
				var st Status
				if err := json.Unmarshal([]byte(data), &st); err != nil {
					t.Fatal(err)
				}
				if st.TraceID != "sse-trace-job" {
					t.Fatalf("status frame trace_id %q", st.TraceID)
				}
				if st.State.Terminal() {
					doneAt = n
				}
			}
		}
	}
	if traceAt < 0 || doneAt < 0 || traceAt > doneAt {
		t.Fatalf("frame order: trace at %d, terminal status at %d", traceAt, doneAt)
	}
	if export.TraceID != "sse-trace-job" || export.JobID != j.ID {
		t.Fatalf("trace frame ids: %+v", export)
	}
	var names []string
	for _, sp := range export.Spans {
		names = append(names, sp.Name)
	}
	for _, want := range []string{"queue_wait", "run", "job"} {
		if !strings.Contains(strings.Join(names, ","), want) {
			t.Errorf("trace frame missing %q span: %v", want, names)
		}
	}
}

// TestMetricsHistograms: after a finished job the stage histograms appear on
// /metrics with consistent _count totals, and the e2e _sum equals the job
// span's duration under the shared float64(ns)/1e9 conversion.
func TestMetricsHistograms(t *testing.T) {
	s := newTestServer(t, Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	j, _, rej := s.Admit(fastSpec(t, 904), "c1", "")
	if rej != nil {
		t.Fatal(rej)
	}
	waitTerminal(t, j, 10*time.Second)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	for _, fam := range []string{
		"ftserve_queue_wait_seconds", "ftserve_run_seconds",
		"ftserve_job_e2e_seconds", "ftserve_sse_flush_seconds",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" histogram") {
			t.Errorf("missing histogram family %s", fam)
		}
		if !strings.Contains(text, fam+`_bucket{le="+Inf"}`) {
			t.Errorf("missing +Inf bucket for %s", fam)
		}
		base := strings.TrimSuffix(fam, "_seconds")
		if !strings.Contains(text, "# TYPE "+base+"_p50_seconds gauge") {
			t.Errorf("missing p50 gauge for %s", fam)
		}
	}
	if !strings.Contains(text, "ftserve_queue_wait_seconds_count 1") ||
		!strings.Contains(text, "ftserve_run_seconds_count 1") ||
		!strings.Contains(text, "ftserve_job_e2e_seconds_count 1") {
		t.Fatalf("stage counts != 1 after one job:\n%s", text)
	}

	// Exact reconciliation: the e2e histogram sum is the job span's dur_ns
	// through the identical float64(ns)/1e9 conversion.
	var jobNS int64
	for _, sp := range j.Trace().Spans() {
		if sp.Name == "job" {
			jobNS = int64(sp.Dur())
		}
	}
	if jobNS == 0 {
		t.Fatal("job span not recorded")
	}
	want := float64(jobNS) / 1e9
	var got float64
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, "ftserve_job_e2e_seconds_sum "); ok {
			if err := json.Unmarshal([]byte(rest), &got); err != nil {
				t.Fatal(err)
			}
		}
	}
	if got != want {
		t.Fatalf("e2e sum %v != job span %v", got, want)
	}
}

// syncWriter serializes test log writes: the daemon logs from worker
// goroutines while the test reads.
type syncWriter struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.buf.String()
}

// TestServeSlogAttrs: daemon records carry trace_id/job_id/client attrs.
func TestServeSlogAttrs(t *testing.T) {
	var out syncWriter
	logger := slog.New(slog.NewJSONHandler(&out, nil))
	s := newTestServer(t, Options{Workers: 1, Logger: logger})

	j, _, rej := s.Admit(fastSpec(t, 905), "client-x", "log-trace-1")
	if rej != nil {
		t.Fatal(rej)
	}
	waitTerminal(t, j, 10*time.Second)

	// The terminal record lands just after the job's Done closes; poll.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var admitted, finished bool
		text := out.String()
		for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
			var rec map[string]any
			if err := json.Unmarshal([]byte(line), &rec); err != nil {
				t.Fatalf("non-JSON log line %q: %v", line, err)
			}
			if rec["trace_id"] != "log-trace-1" {
				continue
			}
			switch rec["msg"] {
			case "job admitted":
				admitted = rec["client"] == "client-x" && rec["job_id"] == j.ID
			case "job finished":
				finished = rec["job_id"] == j.ID
			}
		}
		if admitted && finished {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("lifecycle records missing (admitted=%v finished=%v):\n%s",
				admitted, finished, text)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
