package fasttrack

import (
	"fmt"
	"testing"

	"fasttrack/internal/noc"
)

// TestRouteTablesMatchUntabled exhaustively checks the memoized route tables
// against the functions the untabled per-job path calls, at every router and
// for every destination offset — the tables claim prefsFor depends on its
// router coordinate only through the ring offsets, and this is where that
// claim is proven rather than assumed.
func TestRouteTablesMatchUntabled(t *testing.T) {
	cases := []struct {
		n, d, r int
		v       Variant
	}{
		{8, 2, 1, VariantFull},
		{8, 2, 2, VariantFull},
		{8, 4, 2, VariantFull},
		{8, 2, 1, VariantInject},
		{8, 2, 2, VariantInject},
	}
	inPorts := [4]noc.Port{noc.PortWSh, noc.PortWEx, noc.PortNSh, noc.PortNEx}
	for _, tc := range cases {
		tc := tc
		t.Run(fmt.Sprintf("n%d_d%d_r%d_v%d", tc.n, tc.d, tc.r, tc.v), func(t *testing.T) {
			top, err := NewTopology(tc.n, tc.d, tc.r)
			if err != nil {
				t.Fatal(err)
			}
			nw, err := New(Config{Topology: top, Variant: tc.v})
			if err != nil {
				t.Fatal(err)
			}
			nw.enableTables()
			tb := nw.tabs
			if tb == nil {
				t.Fatal("enableTables left tabs nil")
			}
			n := tc.n
			for y := 0; y < n; y++ {
				for x := 0; x < n; x++ {
					i := y*n + x
					hx, hy := top.HasXExpress(x), top.HasYExpress(y)
					wantExists := [numOuts]bool{oESh: true, oSSh: true, oEEx: hx, oSEx: hy}
					if tb.exists[i] != wantExists {
						t.Fatalf("router (%d,%d): exists=%v want %v", x, y, tb.exists[i], wantExists)
					}
					wantClass := uint8(0)
					if hx {
						wantClass |= 2
					}
					if hy {
						wantClass |= 1
					}
					if tb.class[i] != wantClass {
						t.Fatalf("router (%d,%d): class=%d want %d", x, y, tb.class[i], wantClass)
					}
					for dy := 0; dy < n; dy++ {
						for dx := 0; dx < n; dx++ {
							dst := noc.Coord{X: (x + dx) % n, Y: (y + dy) % n}
							for _, port := range inPorts {
								got := tb.in[port][dy*n+dx]
								want := nw.prefsFor(port, dst, x, y)
								if got != want {
									t.Fatalf("router (%d,%d) port %v dst %v: table prefs %+v want %+v",
										x, y, port, dst, got, want)
								}
							}
							got := tb.inj[tb.class[i]][dy*n+dx]
							want := nw.injectPrefs(dx, dy, hx, hy)
							if got != want {
								t.Fatalf("router (%d,%d) dst %v: inject prefs %+v want %+v",
									x, y, dst, got, want)
							}
							if tc.v == VariantInject {
								// injectPrefs folds injectEligible's coordinate
								// tests into the (hx, hy) class; check against
								// the original predicate directly.
								elig := nw.cfg.injectEligible(top, x, y, dx, dy)
								folded := dx%top.D == 0 && dy%top.D == 0 && (dx == 0 || hx) && hy
								if elig != folded {
									t.Fatalf("router (%d,%d) dx=%d dy=%d: injectEligible=%v folded=%v",
										x, y, dx, dy, elig, folded)
								}
							}
						}
					}
				}
			}
		})
	}
}

// TestTablesSharedAcrossBatch checks every instance of a batch references
// one immutable table set.
func TestTablesSharedAcrossBatch(t *testing.T) {
	top, err := NewTopology(8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBatch(Config{Topology: top, Variant: VariantFull}, 4)
	if err != nil {
		t.Fatal(err)
	}
	first := b.Instance(0).tabs
	if first == nil {
		t.Fatal("batch instance has no tables")
	}
	for i := 1; i < b.Size(); i++ {
		if b.Instance(i).tabs != first {
			t.Fatalf("instance %d has its own table set", i)
		}
	}
	if nw, err := New(Config{Topology: top, Variant: VariantFull}); err != nil || nw.tabs != nil {
		t.Fatalf("per-job network should run untabled (tabs=%v err=%v)", nw.tabs, err)
	}
}
