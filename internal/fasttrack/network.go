package fasttrack

import (
	"fasttrack/internal/noc"
)

// slot is a link register: a packet plus a valid bit.
type slot struct {
	p  noc.Packet
	ok bool
}

// output indices into the per-router staging arrays.
const (
	oESh = iota
	oEEx
	oSSh
	oSEx
	numOuts
)

// Network is an N×N FastTrack torus. Create with New.
type Network struct {
	cfg Config
	n   int

	// Link registers, indexed by router index (y*n + x). Express registers
	// exist for every router but are only ever populated at routers whose
	// class carries the corresponding ports.
	wShIn, wExIn []slot
	nShIn, nExIn []slot

	// Hyperflex-style express pipelines (Config.ExpressPipeline > 0):
	// xPipe[i][k] are the extra register stages of the X express link
	// leaving router i, oldest first; likewise yPipe for Y links.
	xPipe, yPipe [][]slot

	// Output staging for the current Step, one slot per router per output.
	outs [numOuts][]slot

	offers    []slot
	accepted  []bool
	delivered []noc.Packet
	inFlight  int
	counters  noc.Counters
}

// New builds an idle FastTrack network for the given configuration.
func New(cfg Config) (*Network, error) {
	if _, err := NewTopology(cfg.Topology.N, cfg.Topology.D, cfg.Topology.R); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Topology.N
	sz := n * n
	nw := &Network{
		cfg:   cfg,
		n:     n,
		wShIn: make([]slot, sz), wExIn: make([]slot, sz),
		nShIn: make([]slot, sz), nExIn: make([]slot, sz),
		offers:   make([]slot, sz),
		accepted: make([]bool, sz),
	}
	for i := range nw.outs {
		nw.outs[i] = make([]slot, sz)
	}
	if cfg.ExpressPipeline > 0 {
		nw.xPipe = make([][]slot, sz)
		nw.yPipe = make([][]slot, sz)
		for i := range nw.xPipe {
			nw.xPipe[i] = make([]slot, cfg.ExpressPipeline)
			nw.yPipe[i] = make([]slot, cfg.ExpressPipeline)
		}
	}
	return nw, nil
}

// shiftPipe advances one express-link pipeline: in enters the youngest
// stage and the oldest stage pops out.
func shiftPipe(pipe []slot, in slot) (out slot) {
	out = pipe[0]
	copy(pipe, pipe[1:])
	pipe[len(pipe)-1] = in
	return out
}

// Config returns the network's configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Width returns the torus width in routers.
func (nw *Network) Width() int { return nw.n }

// Height returns the torus height in routers.
func (nw *Network) Height() int { return nw.n }

// NumPEs returns the client count.
func (nw *Network) NumPEs() int { return nw.n * nw.n }

// Offer presents p for injection at PE pe this cycle.
func (nw *Network) Offer(pe int, p noc.Packet) { nw.offers[pe] = slot{p: p, ok: true} }

// Accepted reports whether the offer at pe was injected in the last Step.
func (nw *Network) Accepted(pe int) bool { return nw.accepted[pe] }

// Delivered returns packets delivered in the last Step; the slice is reused.
func (nw *Network) Delivered() []noc.Packet { return nw.delivered }

// InFlight returns the number of packets inside the network.
func (nw *Network) InFlight() int { return nw.inFlight }

// Counters returns the network-wide event counters.
func (nw *Network) Counters() *noc.Counters { return &nw.counters }

// Step advances the network one clock cycle.
func (nw *Network) Step(now int64) {
	nw.delivered = nw.delivered[:0]
	for o := range nw.outs {
		outs := nw.outs[o]
		for i := range outs {
			outs[i] = slot{}
		}
	}

	for y := 0; y < nw.n; y++ {
		for x := 0; x < nw.n; x++ {
			nw.route(x, y, now)
		}
	}

	nw.latch()
}

// latch moves output staging onto the downstream input registers. Short
// links connect adjacent routers; express links connect routers D apart and
// are traversed in a single cycle — the FastTrack premise.
func (nw *Network) latch() {
	n, d := nw.n, nw.cfg.Topology.D
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := y*n + x
			if s := nw.outs[oESh][i]; s.ok {
				s.p.ShortHops++
				nw.counters.ShortTraversals++
				nw.wShIn[y*n+(x+1)%n] = s
			} else {
				nw.wShIn[y*n+(x+1)%n] = slot{}
			}
			if s := nw.outs[oSSh][i]; s.ok {
				s.p.ShortHops++
				nw.counters.ShortTraversals++
				nw.nShIn[((y+1)%n)*n+x] = s
			} else {
				nw.nShIn[((y+1)%n)*n+x] = slot{}
			}
			ex := nw.outs[oEEx][i]
			if ex.ok {
				ex.p.ExpressHops++
				nw.counters.ExpressTraversals++
			}
			if nw.xPipe != nil {
				ex = shiftPipe(nw.xPipe[i], ex)
			}
			nw.wExIn[y*n+(x+d)%n] = ex

			sy := nw.outs[oSEx][i]
			if sy.ok {
				sy.p.ExpressHops++
				nw.counters.ExpressTraversals++
			}
			if nw.yPipe != nil {
				sy = shiftPipe(nw.yPipe[i], sy)
			}
			nw.nExIn[((y+d)%n)*n+x] = sy
		}
	}
}

func (nw *Network) deliver(p noc.Packet) {
	nw.inFlight--
	nw.counters.Delivered++
	nw.delivered = append(nw.delivered, p)
}
