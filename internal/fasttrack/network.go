package fasttrack

import (
	"math/bits"

	"fasttrack/internal/noc"
	"fasttrack/internal/telemetry"
)

// slot is a link register: a packet plus a valid bit.
type slot struct {
	p  noc.Packet
	ok bool
}

// output indices into the per-router staging arrays.
const (
	oESh = iota
	oEEx
	oSSh
	oSEx
	numOuts
)

// Network is an N×N FastTrack torus. Create with New.
type Network struct {
	cfg Config
	n   int

	// Link registers, indexed by router index (y*n + x). Express registers
	// exist for every router but are only ever populated at routers whose
	// class carries the corresponding ports. These full-packet registers
	// belong to the dense reference path; the sparse fast path routes pool
	// indices instead (see wShR below).
	wShIn, wExIn []slot
	nShIn, nExIn []slot

	// Hyperflex-style express pipelines (Config.ExpressPipeline > 0):
	// xPipe[i][k] are the extra register stages of the X express link
	// leaving router i, oldest first; likewise yPipe for Y links.
	xPipe, yPipe [][]slot

	// Output staging for the current Step, one slot per router per output
	// (dense path).
	outs [numOuts][]slot

	// Sparse-path link registers: each holds an index into pool (-1 when
	// empty), so a hop moves 4 bytes instead of an 80-byte slot. Packets
	// live in pool from injection to delivery and are mutated in place;
	// free is the LIFO recycle list. Registers are double buffered — the R
	// side is read (and consumed) by the current cycle while RN collects
	// what latches for the next — so granting an output writes the
	// downstream register directly, with no staging and no latch pass. Each
	// link has one driver, so a register is written at most once per cycle.
	wShR, wExR, nShR, nExR     []int32
	wShRN, wExRN, nShRN, nExRN []int32
	pool                       []noc.Packet
	free                       []int32

	// Sparse express pipelines (index form of xPipe/yPipe). A pipelined
	// express grant cannot latch downstream immediately, so it parks in
	// exPend/syPend and a per-cycle pipe pass shifts it through the stages.
	xPipeR, yPipeR [][]int32
	exPend, syPend []int32

	offers    []slot
	accepted  []bool
	delivered []noc.Packet
	inFlight  int
	counters  noc.Counters

	// Occupancy tracking for the sparse fast path. activeBits marks routers
	// that must route next Step (an input was latched or an offer is
	// pending); curBits is the double buffer the current Step iterates.
	// pipeBits marks routers whose express pipelines hold in-flight stages —
	// they must keep latching even when nothing routes there. acceptedPEs
	// lists routers whose accepted flag is set, so clearing it does not
	// touch all N² entries.
	activeBits, curBits, pipeBits []uint64
	acceptedPEs                   []int

	// dense selects the reference stepping path; see SetDense.
	dense bool

	// obs, when non-nil, receives telemetry events; now mirrors the current
	// Step's cycle so helpers without a now parameter (emitR, latch) can
	// stamp events. Every emission site is guarded by a single nil check.
	obs telemetry.Observer
	now int64
}

// New builds an idle FastTrack network for the given configuration.
func New(cfg Config) (*Network, error) {
	if _, err := NewTopology(cfg.Topology.N, cfg.Topology.D, cfg.Topology.R); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Topology.N
	sz := n * n
	nw := &Network{
		cfg:   cfg,
		n:     n,
		wShIn: make([]slot, sz), wExIn: make([]slot, sz),
		nShIn: make([]slot, sz), nExIn: make([]slot, sz),
		offers:   make([]slot, sz),
		accepted: make([]bool, sz),
	}
	words := (sz + 63) / 64
	nw.activeBits = make([]uint64, words)
	nw.curBits = make([]uint64, words)
	nw.pipeBits = make([]uint64, words)
	for i := range nw.outs {
		nw.outs[i] = make([]slot, sz)
	}
	emptyRegs := func() []int32 {
		r := make([]int32, sz)
		for i := range r {
			r[i] = -1
		}
		return r
	}
	nw.wShR, nw.wExR = emptyRegs(), emptyRegs()
	nw.nShR, nw.nExR = emptyRegs(), emptyRegs()
	nw.wShRN, nw.wExRN = emptyRegs(), emptyRegs()
	nw.nShRN, nw.nExRN = emptyRegs(), emptyRegs()
	if cfg.ExpressPipeline > 0 {
		nw.xPipe = make([][]slot, sz)
		nw.yPipe = make([][]slot, sz)
		nw.xPipeR = make([][]int32, sz)
		nw.yPipeR = make([][]int32, sz)
		nw.exPend, nw.syPend = emptyRegs(), emptyRegs()
		for i := range nw.xPipe {
			nw.xPipe[i] = make([]slot, cfg.ExpressPipeline)
			nw.yPipe[i] = make([]slot, cfg.ExpressPipeline)
			nw.xPipeR[i] = make([]int32, cfg.ExpressPipeline)
			nw.yPipeR[i] = make([]int32, cfg.ExpressPipeline)
			for k := 0; k < cfg.ExpressPipeline; k++ {
				nw.xPipeR[i][k], nw.yPipeR[i][k] = -1, -1
			}
		}
	}
	return nw, nil
}

// alloc places p in the packet pool and returns its index, recycling a
// freed entry when one is available (LIFO, so the order is deterministic).
func (nw *Network) alloc(p noc.Packet) int32 {
	if n := len(nw.free); n > 0 {
		r := nw.free[n-1]
		nw.free = nw.free[:n-1]
		nw.pool[r] = p
		return r
	}
	nw.pool = append(nw.pool, p)
	return int32(len(nw.pool) - 1)
}

// deliverIdx hands the pooled packet at r to the client and recycles r.
func (nw *Network) deliverIdx(r int32) {
	nw.deliver(nw.pool[r])
	nw.free = append(nw.free, r)
}

// shiftPipe advances one express-link pipeline: in enters the youngest
// stage and the oldest stage pops out.
func shiftPipe(pipe []slot, in slot) (out slot) {
	out = pipe[0]
	copy(pipe, pipe[1:])
	pipe[len(pipe)-1] = in
	return out
}

// Config returns the network's configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Width returns the torus width in routers.
func (nw *Network) Width() int { return nw.n }

// Height returns the torus height in routers.
func (nw *Network) Height() int { return nw.n }

// NumPEs returns the client count.
func (nw *Network) NumPEs() int { return nw.n * nw.n }

// SetDense selects the reference stepping path: clear and route all N²
// routers every cycle instead of only occupied ones. The two paths are
// bit-exact (the golden equivalence tests compare them); the dense path
// exists as the straightforward baseline for those tests and for
// benchmarking the sparse path's speedup. Select before the first Step.
func (nw *Network) SetDense(d bool) { nw.dense = d }

// SetObserver attaches a telemetry observer (nil detaches); sim.Run
// attaches Options.Observer through this.
func (nw *Network) SetObserver(o telemetry.Observer) { nw.obs = o }

// markActive queues router i for routing on the next Step.
func (nw *Network) markActive(i int) { nw.activeBits[i>>6] |= 1 << (uint(i) & 63) }

// Offer presents p for injection at PE pe this cycle.
func (nw *Network) Offer(pe int, p noc.Packet) {
	nw.offers[pe] = slot{p: p, ok: true}
	nw.markActive(pe)
}

// Accepted reports whether the offer at pe was injected in the last Step.
func (nw *Network) Accepted(pe int) bool { return nw.accepted[pe] }

// Delivered returns packets delivered in the last Step; the slice is reused.
func (nw *Network) Delivered() []noc.Packet { return nw.delivered }

// InFlight returns the number of packets inside the network.
func (nw *Network) InFlight() int { return nw.inFlight }

// Counters returns the network-wide event counters.
func (nw *Network) Counters() *noc.Counters { return &nw.counters }

// Step advances the network one clock cycle. Only routers holding an
// in-flight input, a pending offer, or an occupied express-pipeline stage
// are visited; idle routers cost nothing. The visit order is ascending
// router index — identical to the dense path's row-major scan — so
// delivery order, and with it every downstream floating-point
// accumulation, is bit-exact with SetDense(true).
func (nw *Network) Step(now int64) {
	if nw.dense {
		nw.stepDense(now)
		return
	}
	nw.now = now
	nw.delivered = nw.delivered[:0]
	for _, pe := range nw.acceptedPEs {
		nw.accepted[pe] = false
	}
	nw.acceptedPEs = nw.acceptedPEs[:0]

	// Swap the active set: the fused latch below (and Offer calls before
	// the next Step) accumulate the next cycle's set in activeBits.
	nw.curBits, nw.activeBits = nw.activeBits, nw.curBits
	for w := range nw.activeBits {
		nw.activeBits[w] = 0
	}

	for wd, b := range nw.curBits {
		for b != 0 {
			i := wd<<6 + bits.TrailingZeros64(b)
			b &= b - 1
			nw.routeSparse(i, i%nw.n, i/nw.n, now)
		}
	}

	// Pipelined express links need a separate shift pass: a granted express
	// packet parked in exPend/syPend this cycle, and routers with occupied
	// stages must keep shifting even when nothing routed there.
	if nw.xPipeR != nil {
		for wd := range nw.curBits {
			b := nw.curBits[wd] | nw.pipeBits[wd]
			for b != 0 {
				i := wd<<6 + bits.TrailingZeros64(b)
				b &= b - 1
				nw.pipeStep(i)
			}
		}
	}

	// Latch: the next-cycle registers become the current registers. The
	// consumed buffers are all -1 again (inputs are cleared as they are
	// read), so they can serve as next cycle's write side.
	nw.wShR, nw.wShRN = nw.wShRN, nw.wShR
	nw.wExR, nw.wExRN = nw.wExRN, nw.wExR
	nw.nShR, nw.nShRN = nw.nShRN, nw.nShR
	nw.nExR, nw.nExRN = nw.nExRN, nw.nExR
}

// shiftPipeR advances one sparse express-link pipeline: in enters the
// youngest stage and the oldest stage pops out.
func shiftPipeR(pipe []int32, in int32) (out int32) {
	out = pipe[0]
	copy(pipe, pipe[1:])
	pipe[len(pipe)-1] = in
	return out
}

// pipeStep shifts router i's express pipelines one stage and latches any
// popped packet onto the downstream express input.
func (nw *Network) pipeStep(i int) {
	n, d := nw.n, nw.cfg.Topology.D
	x, y := i%n, i/n
	ex := shiftPipeR(nw.xPipeR[i], nw.exPend[i])
	nw.exPend[i] = -1
	sy := shiftPipeR(nw.yPipeR[i], nw.syPend[i])
	nw.syPend[i] = -1
	occupied := false
	for _, r := range nw.xPipeR[i] {
		if r >= 0 {
			occupied = true
			break
		}
	}
	if !occupied {
		for _, r := range nw.yPipeR[i] {
			if r >= 0 {
				occupied = true
				break
			}
		}
	}
	if occupied {
		nw.pipeBits[i>>6] |= 1 << (uint(i) & 63)
	} else {
		nw.pipeBits[i>>6] &^= 1 << (uint(i) & 63)
	}
	if ex >= 0 {
		j := y*n + (x+d)%n
		nw.wExRN[j] = ex
		nw.markActive(j)
	}
	if sy >= 0 {
		j := ((y+d)%n)*n + x
		nw.nExRN[j] = sy
		nw.markActive(j)
	}
}

// stepDense is the reference path: clear all staging, route all routers,
// latch all links.
func (nw *Network) stepDense(now int64) {
	nw.now = now
	nw.delivered = nw.delivered[:0]
	nw.acceptedPEs = nw.acceptedPEs[:0]
	for w := range nw.activeBits {
		nw.activeBits[w] = 0
	}
	for o := range nw.outs {
		outs := nw.outs[o]
		for i := range outs {
			outs[i] = slot{}
		}
	}

	for y := 0; y < nw.n; y++ {
		for x := 0; x < nw.n; x++ {
			nw.route(x, y, now)
		}
	}

	nw.latch()
}

// latch moves output staging onto the downstream input registers. Short
// links connect adjacent routers; express links connect routers D apart and
// are traversed in a single cycle — the FastTrack premise.
func (nw *Network) latch() {
	n, d := nw.n, nw.cfg.Topology.D
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := y*n + x
			if s := nw.outs[oESh][i]; s.ok {
				s.p.ShortHops++
				nw.counters.ShortTraversals++
				if nw.obs != nil {
					nw.obs.OnHop(nw.now, i, noc.PortESh, &s.p)
				}
				nw.wShIn[y*n+(x+1)%n] = s
			} else {
				nw.wShIn[y*n+(x+1)%n] = slot{}
			}
			if s := nw.outs[oSSh][i]; s.ok {
				s.p.ShortHops++
				nw.counters.ShortTraversals++
				if nw.obs != nil {
					nw.obs.OnHop(nw.now, i, noc.PortSSh, &s.p)
				}
				nw.nShIn[((y+1)%n)*n+x] = s
			} else {
				nw.nShIn[((y+1)%n)*n+x] = slot{}
			}
			ex := nw.outs[oEEx][i]
			if ex.ok {
				ex.p.ExpressHops++
				nw.counters.ExpressTraversals++
				if nw.obs != nil {
					nw.obs.OnExpressHop(nw.now, i, noc.PortEEx, &ex.p)
				}
			}
			if nw.xPipe != nil {
				ex = shiftPipe(nw.xPipe[i], ex)
			}
			nw.wExIn[y*n+(x+d)%n] = ex

			sy := nw.outs[oSEx][i]
			if sy.ok {
				sy.p.ExpressHops++
				nw.counters.ExpressTraversals++
				if nw.obs != nil {
					nw.obs.OnExpressHop(nw.now, i, noc.PortSEx, &sy.p)
				}
			}
			if nw.yPipe != nil {
				sy = shiftPipe(nw.yPipe[i], sy)
			}
			nw.nExIn[((y+d)%n)*n+x] = sy
		}
	}
}

func (nw *Network) deliver(p noc.Packet) {
	nw.inFlight--
	nw.counters.Delivered++
	nw.delivered = append(nw.delivered, p)
}
