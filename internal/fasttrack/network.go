package fasttrack

import (
	"fmt"
	"math/bits"

	"fasttrack/internal/noc"
	"fasttrack/internal/telemetry"
)

// slot is a link register: a packet plus a valid bit.
type slot struct {
	p  noc.Packet
	ok bool
}

// output indices into the per-router staging arrays.
const (
	oESh = iota
	oEEx
	oSSh
	oSEx
	numOuts
)

// shardCtx is the per-shard slice of the network's mutable aggregate state;
// see the hoplite package for the full sharding rationale. sh[0] covers the
// whole fabric until ConfigureShards splits it, so the sequential path is
// the single-shard special case of the same routing code.
type shardCtx struct {
	k      int
	lo, hi int // router index range [lo, hi)

	// Masked word range of [lo, hi) for iterating the curBits occupancy set.
	loWord, hiWord int
	loMask, hiMask uint64

	// next collects next-cycle activity marks, full fabric sized: routing
	// and pipe shifts in this shard may wake routers across the boundary,
	// and those marks land in the marker's own array. BeginCycle ORs every
	// shard's next into curBits.
	next []uint64

	// pipeBits marks routers in this shard whose express pipelines hold
	// in-flight stages — they must keep shifting even when nothing routes
	// there. Per shard so boundary words are never shared between workers.
	pipeBits []uint64

	counters    noc.Counters
	delivered   []noc.Packet
	acceptedPEs []int
	inFlight    int // per-shard delta; can go negative, the sum is real

	// Sharded-pool allocation state (see alloc).
	free   []int32
	freed  []int32
	cursor int32
	limit  int32

	// obs receives this shard's telemetry events during routing; now mirrors
	// the current cycle for helpers without a now parameter (emitR).
	obs telemetry.Observer
	now int64
}

// mark queues router i for routing on the next Step.
func (sh *shardCtx) mark(i int) { sh.next[i>>6] |= 1 << (uint(i) & 63) }

// Network is an N×N FastTrack torus. Create with New.
type Network struct {
	cfg Config
	n   int

	// Link registers, indexed by router index (y*n + x). Express registers
	// exist for every router but are only ever populated at routers whose
	// class carries the corresponding ports. These full-packet registers
	// belong to the dense reference path; the sparse fast path routes pool
	// indices instead (see wShR below).
	wShIn, wExIn []slot
	nShIn, nExIn []slot

	// Hyperflex-style express pipelines (Config.ExpressPipeline > 0):
	// xPipe[i][k] are the extra register stages of the X express link
	// leaving router i, oldest first; likewise yPipe for Y links.
	xPipe, yPipe [][]slot

	// Output staging for the current Step, one slot per router per output
	// (dense path).
	outs [numOuts][]slot

	// Sparse-path link registers: each holds an index into pool (-1 when
	// empty), so a hop moves 4 bytes instead of an 80-byte slot. Packets
	// live in pool from injection to delivery and are mutated in place;
	// recycling goes through the per-shard free lists. Registers are double
	// buffered — the R side is read (and consumed) by the current cycle
	// while RN collects what latches for the next — so granting an output
	// writes the downstream register directly, with no staging and no latch
	// pass. Each link has one driver, so a register element is written at
	// most once per cycle — which also makes the sharded step race-free at
	// the boundary rows.
	wShR, wExR, nShR, nExR     []int32
	wShRN, wExRN, nShRN, nExRN []int32
	pool                       []noc.Packet

	// Sparse express pipelines (index form of xPipe/yPipe). A pipelined
	// express grant cannot latch downstream immediately, so it parks in
	// exPend/syPend and a per-cycle pipe pass shifts it through the stages.
	xPipeR, yPipeR [][]int32
	exPend, syPend []int32

	offers   []slot
	accepted []bool

	// sh holds the per-shard state; len(sh) == 1 until ConfigureShards.
	// shardOf maps a router index to its owning shard, nil when single.
	sh      []shardCtx
	shardOf []int32
	arena   int32 // per-shard arena size when sharded

	// curBits is the occupancy set the current Step iterates: routers that
	// must route this cycle. The per-shard next arrays double-buffer it.
	curBits []uint64

	// Merged views for the sharded accessors; unused when single-shard.
	mergedDelivered []noc.Packet
	mergedCounters  noc.Counters

	// dense selects the reference stepping path; see SetDense.
	dense bool

	// tabs, when non-nil, holds the memoized routing-decision tables shared
	// by every instance with the same (topology, variant); see tables.go.
	// Only batch instances carry tables.
	tabs *routeTables

	// obs, when non-nil, receives telemetry events. Every emission site is
	// guarded by a single nil check.
	obs telemetry.Observer
}

// New builds an idle FastTrack network for the given configuration.
func New(cfg Config) (*Network, error) { return newNet(cfg, nil) }

// newNet is New with an optional batch arena: when ar is non-nil the sparse
// hot-path arrays (link registers, offers, occupancy words, packet pool) are
// carved out of the arena's batch-major slabs instead of allocated
// individually; see batch.go. The dense reference arrays always come from
// plain allocations — batch instances never run the dense path.
func newNet(cfg Config, ar *batchArena) (*Network, error) {
	if _, err := NewTopology(cfg.Topology.N, cfg.Topology.D, cfg.Topology.R); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Topology.N
	sz := n * n
	nw := &Network{
		cfg:   cfg,
		n:     n,
		wShIn: make([]slot, sz), wExIn: make([]slot, sz),
		nShIn: make([]slot, sz), nExIn: make([]slot, sz),
		offers:   ar.slots(sz),
		accepted: ar.bools(sz),
	}
	words := (sz + 63) / 64
	nw.curBits = ar.words(words)
	nw.sh = nw.makeShards(1, ar)
	for i := range nw.outs {
		nw.outs[i] = make([]slot, sz)
	}
	emptyRegs := func() []int32 {
		r := ar.int32s(sz)
		for i := range r {
			r[i] = -1
		}
		return r
	}
	nw.wShR, nw.wExR = emptyRegs(), emptyRegs()
	nw.nShR, nw.nExR = emptyRegs(), emptyRegs()
	nw.wShRN, nw.wExRN = emptyRegs(), emptyRegs()
	nw.nShRN, nw.nExRN = emptyRegs(), emptyRegs()
	nw.pool = ar.packets(poolBound(cfg))
	if cfg.ExpressPipeline > 0 {
		nw.xPipe = make([][]slot, sz)
		nw.yPipe = make([][]slot, sz)
		nw.xPipeR = make([][]int32, sz)
		nw.yPipeR = make([][]int32, sz)
		nw.exPend, nw.syPend = emptyRegs(), emptyRegs()
		for i := range nw.xPipe {
			nw.xPipe[i] = make([]slot, cfg.ExpressPipeline)
			nw.yPipe[i] = make([]slot, cfg.ExpressPipeline)
			nw.xPipeR[i] = ar.int32s(cfg.ExpressPipeline)
			nw.yPipeR[i] = ar.int32s(cfg.ExpressPipeline)
			for k := 0; k < cfg.ExpressPipeline; k++ {
				nw.xPipeR[i][k], nw.yPipeR[i][k] = -1, -1
			}
		}
	}
	return nw, nil
}

// poolBound is the packet-pool occupancy bound for one instance: the
// register population ((8 + 2*pipeline stages) per router) plus a cycle of
// fresh injections and not-yet-recycled frees — the same formula
// ConfigureShards sizes per-shard arenas with.
func poolBound(cfg Config) int {
	sz := cfg.Topology.N * cfg.Topology.N
	return (8+2*cfg.ExpressPipeline)*sz + 64
}

// Reset restores the network to the idle state New leaves it in, keeping
// every backing array (and its capacity) so a recycled instance re-runs a
// job without reallocating. The result of a run on a Reset network is
// bit-identical to a run on a fresh one: the only state that survives is
// slice capacity, which routing never observes.
func (nw *Network) Reset() {
	for i := range nw.wShR {
		nw.wShR[i], nw.wExR[i], nw.nShR[i], nw.nExR[i] = -1, -1, -1, -1
		nw.wShRN[i], nw.wExRN[i], nw.nShRN[i], nw.nExRN[i] = -1, -1, -1, -1
	}
	clear(nw.wShIn)
	clear(nw.wExIn)
	clear(nw.nShIn)
	clear(nw.nExIn)
	for o := range nw.outs {
		clear(nw.outs[o])
	}
	clear(nw.offers)
	clear(nw.accepted)
	clear(nw.curBits)
	if nw.xPipeR != nil {
		for i := range nw.xPipeR {
			clear(nw.xPipe[i])
			clear(nw.yPipe[i])
			for k := range nw.xPipeR[i] {
				nw.xPipeR[i][k], nw.yPipeR[i][k] = -1, -1
			}
			nw.exPend[i], nw.syPend[i] = -1, -1
		}
	}
	nw.pool = nw.pool[:0]
	if len(nw.sh) != 1 {
		// A previously sharded instance drops back to the single-shard
		// layout New builds (its pool was arena-partitioned and is gone).
		nw.sh = nw.makeShards(1, nil)
	} else {
		s0 := &nw.sh[0]
		clear(s0.next)
		clear(s0.pipeBits)
		s0.counters = noc.Counters{}
		s0.delivered = s0.delivered[:0]
		s0.acceptedPEs = s0.acceptedPEs[:0]
		s0.inFlight = 0
		s0.free = s0.free[:0]
		s0.freed = s0.freed[:0]
		s0.cursor, s0.limit = 0, 0
		s0.obs = nil
		s0.now = 0
	}
	nw.shardOf = nil
	nw.arena = 0
	nw.mergedDelivered = nw.mergedDelivered[:0]
	nw.mergedCounters = noc.Counters{}
	nw.dense = false
	nw.obs = nil
}

// makeShards builds s row-band shard contexts: shard k owns rows
// [k*n/s, (k+1)*n/s). Concatenating per-shard outputs in ascending k equals
// a row-major scan of the whole fabric. ar is the optional batch arena the
// single-shard bit arrays are carved from (nil outside NewBatch).
func (nw *Network) makeShards(s int, ar *batchArena) []shardCtx {
	sz := nw.n * nw.n
	words := (sz + 63) / 64
	sh := make([]shardCtx, s)
	for k := 0; k < s; k++ {
		lo := (k * nw.n / s) * nw.n
		hi := ((k + 1) * nw.n / s) * nw.n
		c := &sh[k]
		c.k, c.lo, c.hi = k, lo, hi
		c.loWord, c.hiWord = lo>>6, (hi+63)>>6
		c.loMask = ^uint64(0) << (uint(lo) & 63)
		c.hiMask = ^uint64(0)
		if r := uint(hi) & 63; r != 0 {
			c.hiMask = (uint64(1) << r) - 1
		}
		c.next = ar.words(words)
		c.pipeBits = ar.words(words)
	}
	return sh
}

// ConfigureShards implements noc.ShardedNetwork: partition the fabric into
// s row-band shards. s is clamped to the row count; 1 restores sequential
// stepping. The network must be idle and on the sparse path.
func (nw *Network) ConfigureShards(s int) (int, error) {
	if s < 1 {
		return 0, fmt.Errorf("fasttrack: shard count %d < 1", s)
	}
	if nw.dense {
		return 0, fmt.Errorf("fasttrack: dense reference path cannot shard")
	}
	if nw.InFlight() != 0 {
		return 0, fmt.Errorf("fasttrack: cannot reconfigure shards with %d packets in flight", nw.InFlight())
	}
	if s > nw.n {
		s = nw.n
	}
	sz := nw.n * nw.n
	nw.sh = nw.makeShards(s, nil)
	if s == 1 {
		nw.shardOf = nil
		nw.arena = 0
		nw.pool = nil
		return 1, nil
	}
	nw.shardOf = make([]int32, sz)
	for k := range nw.sh {
		for i := nw.sh[k].lo; i < nw.sh[k].hi; i++ {
			nw.shardOf[i] = int32(k)
		}
	}
	// Arena sizing: slots in use by one owner are bounded by the register
	// population ((4 + 2*pipeline stages) per router) plus one cycle of
	// fresh injections and not-yet-recycled frees, so (8+2*stages)*sz + 64
	// per shard can never overflow. Arenas are virtual and touched lazily;
	// the free-list-first allocator keeps the hot region compact.
	nw.arena = int32((8+2*nw.cfg.ExpressPipeline)*sz + 64)
	nw.pool = make([]noc.Packet, int(nw.arena)*s)
	for k := range nw.sh {
		nw.sh[k].cursor = int32(k) * nw.arena
		nw.sh[k].limit = nw.sh[k].cursor + nw.arena
	}
	return s, nil
}

// ShardRange implements noc.ShardedNetwork.
func (nw *Network) ShardRange(k int) (lo, hi int) { return nw.sh[k].lo, nw.sh[k].hi }

// SetShardObservers implements telemetry.ShardObservable: obs[k] receives
// the router events StepShard(k) emits. Ignored by sequential stepping.
func (nw *Network) SetShardObservers(obs []telemetry.Observer) {
	for k := range nw.sh {
		if obs == nil || k >= len(obs) {
			nw.sh[k].obs = nil
		} else {
			nw.sh[k].obs = obs[k]
		}
	}
}

// alloc places p in the packet pool and returns its index, recycling a
// freed entry when one is available (LIFO, so the order is deterministic).
// Sharded instances fall back to the shard's private arena; the sequential
// path grows the pool by append.
func (nw *Network) alloc(sh *shardCtx, p noc.Packet) int32 {
	if n := len(sh.free); n > 0 {
		r := sh.free[n-1]
		sh.free = sh.free[:n-1]
		nw.pool[r] = p
		return r
	}
	if nw.shardOf != nil {
		if sh.cursor == sh.limit {
			panic("fasttrack: shard arena overflow")
		}
		r := sh.cursor
		sh.cursor++
		nw.pool[r] = p
		return r
	}
	nw.pool = append(nw.pool, p)
	return int32(len(nw.pool) - 1)
}

// deliverIdx hands the pooled packet at r to the client and recycles r:
// directly onto the free list when sequential, via the freed staging list
// (EndCycle routes it to the owning arena) when sharded.
func (nw *Network) deliverIdx(sh *shardCtx, r int32) {
	nw.deliver(sh, nw.pool[r])
	if nw.shardOf != nil {
		sh.freed = append(sh.freed, r)
	} else {
		sh.free = append(sh.free, r)
	}
}

// shiftPipe advances one express-link pipeline: in enters the youngest
// stage and the oldest stage pops out.
func shiftPipe(pipe []slot, in slot) (out slot) {
	out = pipe[0]
	copy(pipe, pipe[1:])
	pipe[len(pipe)-1] = in
	return out
}

// Config returns the network's configuration.
func (nw *Network) Config() Config { return nw.cfg }

// Width returns the torus width in routers.
func (nw *Network) Width() int { return nw.n }

// Height returns the torus height in routers.
func (nw *Network) Height() int { return nw.n }

// NumPEs returns the client count.
func (nw *Network) NumPEs() int { return nw.n * nw.n }

// SetDense selects the reference stepping path: clear and route all N²
// routers every cycle instead of only occupied ones. The two paths are
// bit-exact (the golden equivalence tests compare them); the dense path
// exists as the straightforward baseline for those tests and for
// benchmarking the sparse path's speedup. Select before the first Step.
func (nw *Network) SetDense(d bool) { nw.dense = d }

// SetObserver attaches a telemetry observer (nil detaches); sim.Run
// attaches Options.Observer through this.
func (nw *Network) SetObserver(o telemetry.Observer) { nw.obs = o }

// Offer presents p for injection at PE pe this cycle. Concurrent offers
// are allowed for PEs owned by different shards.
func (nw *Network) Offer(pe int, p noc.Packet) {
	nw.offers[pe] = slot{p: p, ok: true}
	sh := &nw.sh[0]
	if nw.shardOf != nil {
		sh = &nw.sh[nw.shardOf[pe]]
	}
	sh.mark(pe)
}

// Accepted reports whether the offer at pe was injected in the last Step.
func (nw *Network) Accepted(pe int) bool { return nw.accepted[pe] }

// Delivered returns packets delivered in the last Step; the slice is reused.
func (nw *Network) Delivered() []noc.Packet {
	if nw.shardOf == nil {
		return nw.sh[0].delivered
	}
	return nw.mergedDelivered
}

// InFlight returns the number of packets inside the network.
func (nw *Network) InFlight() int {
	if nw.shardOf == nil {
		return nw.sh[0].inFlight
	}
	t := 0
	for k := range nw.sh {
		t += nw.sh[k].inFlight
	}
	return t
}

// Counters returns the network-wide event counters; sharded instances
// merge the per-shard counters on each call.
func (nw *Network) Counters() *noc.Counters {
	if nw.shardOf == nil {
		return &nw.sh[0].counters
	}
	nw.mergedCounters = noc.Counters{}
	for k := range nw.sh {
		nw.mergedCounters.Add(&nw.sh[k].counters)
	}
	return &nw.mergedCounters
}

// Step advances the network one clock cycle. Only routers holding an
// in-flight input, a pending offer, or an occupied express-pipeline stage
// are visited; idle routers cost nothing. The visit order is ascending
// router index — identical to the dense path's row-major scan — so
// delivery order, and with it every downstream floating-point
// accumulation, is bit-exact with SetDense(true).
func (nw *Network) Step(now int64) {
	if nw.dense {
		nw.stepDense(now)
		return
	}
	if nw.shardOf != nil {
		// A sharded instance driven through the sequential entry point runs
		// the same three-phase protocol on one goroutine.
		nw.BeginCycle(now)
		for k := range nw.sh {
			nw.StepShard(k, now)
		}
		nw.EndCycle(now)
		return
	}
	s0 := &nw.sh[0]
	s0.now = now
	s0.obs = nw.obs
	s0.delivered = s0.delivered[:0]
	for _, pe := range s0.acceptedPEs {
		nw.accepted[pe] = false
	}
	s0.acceptedPEs = s0.acceptedPEs[:0]

	// Swap the active set: the fused latch below (and Offer calls before
	// the next Step) accumulate the next cycle's set in s0.next.
	nw.curBits, s0.next = s0.next, nw.curBits
	for w := range s0.next {
		s0.next[w] = 0
	}

	for wd, b := range nw.curBits {
		for b != 0 {
			i := wd<<6 + bits.TrailingZeros64(b)
			b &= b - 1
			nw.routeSparse(s0, i, i%nw.n, i/nw.n, now)
		}
	}

	// Pipelined express links need a separate shift pass: a granted express
	// packet parked in exPend/syPend this cycle, and routers with occupied
	// stages must keep shifting even when nothing routed there.
	if nw.xPipeR != nil {
		for wd := range nw.curBits {
			b := nw.curBits[wd] | s0.pipeBits[wd]
			for b != 0 {
				i := wd<<6 + bits.TrailingZeros64(b)
				b &= b - 1
				nw.pipeStep(s0, i)
			}
		}
	}

	// Latch: the next-cycle registers become the current registers. The
	// consumed buffers are all -1 again (inputs are cleared as they are
	// read), so they can serve as next cycle's write side.
	nw.swapRegs()
}

// BeginCycle implements noc.ShardedNetwork: publish every shard's pending
// activity marks into the cycle's working set. Coordinator only.
func (nw *Network) BeginCycle(now int64) {
	for w := range nw.curBits {
		nw.curBits[w] = 0
	}
	for k := range nw.sh {
		next := nw.sh[k].next
		for w, b := range next {
			if b != 0 {
				nw.curBits[w] |= b
				next[w] = 0
			}
		}
	}
}

// StepShard implements noc.ShardedNetwork: route the occupied routers in
// shard k's range, then shift that range's express pipelines. Calls for
// distinct k may run concurrently — all writes go to shard-private state or
// to link-register elements this shard is the unique driver of.
func (nw *Network) StepShard(k int, now int64) {
	sh := &nw.sh[k]
	sh.now = now
	sh.delivered = sh.delivered[:0]
	for _, pe := range sh.acceptedPEs {
		nw.accepted[pe] = false
	}
	sh.acceptedPEs = sh.acceptedPEs[:0]

	for wd := sh.loWord; wd < sh.hiWord; wd++ {
		b := nw.curBits[wd]
		if wd == sh.loWord {
			b &= sh.loMask
		}
		if wd == sh.hiWord-1 {
			b &= sh.hiMask
		}
		for b != 0 {
			i := wd<<6 + bits.TrailingZeros64(b)
			b &= b - 1
			nw.routeSparse(sh, i, i%nw.n, i/nw.n, now)
		}
	}

	if nw.xPipeR != nil {
		for wd := sh.loWord; wd < sh.hiWord; wd++ {
			b := nw.curBits[wd] | sh.pipeBits[wd]
			if wd == sh.loWord {
				b &= sh.loMask
			}
			if wd == sh.hiWord-1 {
				b &= sh.hiMask
			}
			for b != 0 {
				i := wd<<6 + bits.TrailingZeros64(b)
				b &= b - 1
				nw.pipeStep(sh, i)
			}
		}
	}
}

// EndCycle implements noc.ShardedNetwork: latch the link registers, merge
// per-shard deliveries in ascending shard order (= the sequential delivery
// order), and route recycled pool slots back to their owning arenas.
// Coordinator only.
func (nw *Network) EndCycle(now int64) {
	nw.swapRegs()

	merged := nw.mergedDelivered[:0]
	for k := range nw.sh {
		merged = append(merged, nw.sh[k].delivered...)
	}
	nw.mergedDelivered = merged

	for k := range nw.sh {
		sh := &nw.sh[k]
		for _, r := range sh.freed {
			owner := &nw.sh[r/nw.arena]
			owner.free = append(owner.free, r)
		}
		sh.freed = sh.freed[:0]
	}
}

func (nw *Network) swapRegs() {
	nw.wShR, nw.wShRN = nw.wShRN, nw.wShR
	nw.wExR, nw.wExRN = nw.wExRN, nw.wExR
	nw.nShR, nw.nShRN = nw.nShRN, nw.nShR
	nw.nExR, nw.nExRN = nw.nExRN, nw.nExR
}

// shiftPipeR advances one sparse express-link pipeline: in enters the
// youngest stage and the oldest stage pops out.
func shiftPipeR(pipe []int32, in int32) (out int32) {
	out = pipe[0]
	copy(pipe, pipe[1:])
	pipe[len(pipe)-1] = in
	return out
}

// pipeStep shifts router i's express pipelines one stage and latches any
// popped packet onto the downstream express input. Router i always belongs
// to sh, so the pipe occupancy bit lands in the shard's own array; the
// downstream latch may cross the boundary, which is race-free because this
// router is the express link's only driver.
func (nw *Network) pipeStep(sh *shardCtx, i int) {
	n, d := nw.n, nw.cfg.Topology.D
	x, y := i%n, i/n
	ex := shiftPipeR(nw.xPipeR[i], nw.exPend[i])
	nw.exPend[i] = -1
	sy := shiftPipeR(nw.yPipeR[i], nw.syPend[i])
	nw.syPend[i] = -1
	occupied := false
	for _, r := range nw.xPipeR[i] {
		if r >= 0 {
			occupied = true
			break
		}
	}
	if !occupied {
		for _, r := range nw.yPipeR[i] {
			if r >= 0 {
				occupied = true
				break
			}
		}
	}
	if occupied {
		sh.pipeBits[i>>6] |= 1 << (uint(i) & 63)
	} else {
		sh.pipeBits[i>>6] &^= 1 << (uint(i) & 63)
	}
	if ex >= 0 {
		j := y*n + (x+d)%n
		nw.wExRN[j] = ex
		sh.mark(j)
	}
	if sy >= 0 {
		j := ((y+d)%n)*n + x
		nw.nExRN[j] = sy
		sh.mark(j)
	}
}

// stepDense is the reference path: clear all staging, route all routers,
// latch all links.
func (nw *Network) stepDense(now int64) {
	s0 := &nw.sh[0]
	s0.now = now
	s0.obs = nw.obs
	s0.delivered = s0.delivered[:0]
	s0.acceptedPEs = s0.acceptedPEs[:0]
	for w := range s0.next {
		s0.next[w] = 0
	}
	for o := range nw.outs {
		outs := nw.outs[o]
		for i := range outs {
			outs[i] = slot{}
		}
	}

	for y := 0; y < nw.n; y++ {
		for x := 0; x < nw.n; x++ {
			nw.route(x, y, now)
		}
	}

	nw.latch(now)
}

// latch moves output staging onto the downstream input registers. Short
// links connect adjacent routers; express links connect routers D apart and
// are traversed in a single cycle — the FastTrack premise.
func (nw *Network) latch(now int64) {
	s0 := &nw.sh[0]
	n, d := nw.n, nw.cfg.Topology.D
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := y*n + x
			if s := nw.outs[oESh][i]; s.ok {
				s.p.ShortHops++
				s0.counters.ShortTraversals++
				if nw.obs != nil {
					nw.obs.OnHop(now, i, noc.PortESh, &s.p)
				}
				nw.wShIn[y*n+(x+1)%n] = s
			} else {
				nw.wShIn[y*n+(x+1)%n] = slot{}
			}
			if s := nw.outs[oSSh][i]; s.ok {
				s.p.ShortHops++
				s0.counters.ShortTraversals++
				if nw.obs != nil {
					nw.obs.OnHop(now, i, noc.PortSSh, &s.p)
				}
				nw.nShIn[((y+1)%n)*n+x] = s
			} else {
				nw.nShIn[((y+1)%n)*n+x] = slot{}
			}
			ex := nw.outs[oEEx][i]
			if ex.ok {
				ex.p.ExpressHops++
				s0.counters.ExpressTraversals++
				if nw.obs != nil {
					nw.obs.OnExpressHop(now, i, noc.PortEEx, &ex.p)
				}
			}
			if nw.xPipe != nil {
				ex = shiftPipe(nw.xPipe[i], ex)
			}
			nw.wExIn[y*n+(x+d)%n] = ex

			sy := nw.outs[oSEx][i]
			if sy.ok {
				sy.p.ExpressHops++
				s0.counters.ExpressTraversals++
				if nw.obs != nil {
					nw.obs.OnExpressHop(now, i, noc.PortSEx, &sy.p)
				}
			}
			if nw.yPipe != nil {
				sy = shiftPipe(nw.yPipe[i], sy)
			}
			nw.nExIn[((y+d)%n)*n+x] = sy
		}
	}
}

func (nw *Network) deliver(sh *shardCtx, p noc.Packet) {
	sh.inFlight--
	sh.counters.Delivered++
	sh.delivered = append(sh.delivered, p)
}
