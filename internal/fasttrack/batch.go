package fasttrack

import (
	"fmt"

	"fasttrack/internal/noc"
)

// batchArena carves per-instance arrays out of shared batch-major slabs: one
// backing allocation per element type, with instance i's arrays occupying
// the i-th contiguous region. A nil arena (the per-job path) degrades every
// method to a plain allocation, and an exhausted slab does too — layout is
// an optimization, never a correctness dependency.
type batchArena struct {
	i32 []int32
	pk  []noc.Packet
	u64 []uint64
	sl  []slot
	b   []bool
}

func (a *batchArena) int32s(n int) []int32 {
	if a == nil || len(a.i32) < n {
		return make([]int32, n)
	}
	r := a.i32[:n:n]
	a.i32 = a.i32[n:]
	return r
}

func (a *batchArena) words(n int) []uint64 {
	if a == nil || len(a.u64) < n {
		return make([]uint64, n)
	}
	r := a.u64[:n:n]
	a.u64 = a.u64[n:]
	return r
}

func (a *batchArena) slots(n int) []slot {
	if a == nil || len(a.sl) < n {
		return make([]slot, n)
	}
	r := a.sl[:n:n]
	a.sl = a.sl[n:]
	return r
}

func (a *batchArena) bools(n int) []bool {
	if a == nil || len(a.b) < n {
		return make([]bool, n)
	}
	r := a.b[:n:n]
	a.b = a.b[n:]
	return r
}

// packets returns an empty slice with capacity n carved from the packet
// slab; growing past n falls back to append's reallocation.
func (a *batchArena) packets(n int) []noc.Packet {
	if a == nil || len(a.pk) < n {
		return make([]noc.Packet, 0, n)
	}
	r := a.pk[:0:n]
	a.pk = a.pk[n:]
	return r
}

// Batch is B independent FastTrack instances of one configuration, with the
// sparse hot-path state (register files, packet pools, occupancy bitsets,
// offer and accepted arrays) laid out batch-major in shared slabs and the
// memoized route tables attached to every instance. Each instance is an
// ordinary *Network: the lockstep driver steps them with the same Step code
// the per-job path runs, which is what makes batched results bit-identical.
type Batch struct {
	cfg   Config
	insts []*Network
}

// NewBatch builds b idle instances of cfg sharing slab-backed state.
func NewBatch(cfg Config, b int) (*Batch, error) {
	if b < 1 {
		return nil, fmt.Errorf("fasttrack: batch size %d < 1", b)
	}
	if _, err := NewTopology(cfg.Topology.N, cfg.Topology.D, cfg.Topology.R); err != nil {
		return nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Topology.N
	sz := n * n
	words := (sz + 63) / 64
	i32PerInst := 8 * sz
	u64PerInst := 3 * words // curBits + sh[0].next + sh[0].pipeBits
	if cfg.ExpressPipeline > 0 {
		i32PerInst += 2*cfg.ExpressPipeline*sz + 2*sz // pipe stages + exPend/syPend
	}
	ar := &batchArena{
		i32: make([]int32, b*i32PerInst),
		u64: make([]uint64, b*u64PerInst),
		sl:  make([]slot, b*sz),
		b:   make([]bool, b*sz),
		pk:  make([]noc.Packet, b*poolBound(cfg)),
	}
	bt := &Batch{cfg: cfg, insts: make([]*Network, b)}
	for i := range bt.insts {
		nw, err := newNet(cfg, ar)
		if err != nil {
			return nil, err
		}
		nw.enableTables()
		bt.insts[i] = nw
	}
	return bt, nil
}

// Size returns the instance count.
func (bt *Batch) Size() int { return len(bt.insts) }

// Config returns the shared configuration.
func (bt *Batch) Config() Config { return bt.cfg }

// Instance returns the i-th network.
func (bt *Batch) Instance(i int) *Network { return bt.insts[i] }

// Reset idles every instance for the next job, keeping all slabs.
func (bt *Batch) Reset() {
	for _, nw := range bt.insts {
		nw.Reset()
	}
}
