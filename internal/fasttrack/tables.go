package fasttrack

import (
	"sync"

	"fasttrack/internal/noc"
)

// routeTables memoizes the per-packet routing decisions that depend only on
// the topology: the in-flight preference lists (a pure function of the input
// port and the ring offsets to the destination), the injection preference
// lists (a pure function of the ring offsets and the router's express-lane
// class), and the per-router output-exists masks. The tables are built by
// calling the exact functions the untabled path runs — prefsFor and
// injectPrefs — once per key and replaying the stored lists thereafter, so
// equality with the untabled path holds by construction (and is additionally
// asserted exhaustively by TestRouteTables).
//
// Tables are attached only to batch instances (NewBatch): the per-job path
// stays byte-for-byte the code the golden suites compare against the dense
// reference, and the batched-vs-per-job benchmark keeps a fixed baseline.
// One table set is shared across every instance and every batch with the
// same (topology, variant) key — it is immutable after construction.
type routeTables struct {
	n int

	// in[port][dy*n+dx] is prefsFor(port, dst, x, y) for any router (x, y)
	// with ring offsets (dx, dy) to dst. Indexed by the four in-flight input
	// ports, which are the first four noc.Port values.
	in [4][]prefs

	// inj[class][dy*n+dx] is the injection preference list at a router of
	// the given express-lane class (hx<<1 | hy).
	inj [4][]prefs

	// class[i] is router i's express-lane class; exists[i] its output mask.
	class  []uint8
	exists [][numOuts]bool
}

// tablesKey identifies a shareable table set. ExpressPipeline is excluded:
// preference lists never depend on pipeline depth.
type tablesKey struct {
	n, d, r int
	variant Variant
}

var (
	tablesMu    sync.Mutex
	tablesCache = map[tablesKey]*routeTables{}
)

// injectPrefs builds the injection preference list for an offer with ring
// offsets (dx, dy) at a router with express-lane availability (hx, hy).
// It is the switch injectAtR historically inlined, with the router coordinate
// dependence reduced to the (hx, hy) class so the list can be memoized;
// injectEligible's coordinate tests collapse the same way (dx > 0 implies the
// X-express test, and the Y test is always taken).
func (nw *Network) injectPrefs(dx, dy int, hx, hy bool) (pr prefs) {
	t := nw.cfg.Topology
	switch {
	case dx == 0 && dy == 0:
		// Self-addressed packet: loops through the exit port.
		pr.add(oSSh, true, false)
	case nw.cfg.Variant == VariantInject:
		eligible := dx%t.D == 0 && dy%t.D == 0 && (dx == 0 || hx) && hy
		if eligible {
			// Lane choice is permanent in the Inject variant: express when
			// the lane is free, else commit to the short lane.
			if dx > 0 {
				pr.add(oEEx, false, false)
				pr.add(oESh, false, false)
			} else {
				pr.add(oSEx, false, false)
				pr.add(oSSh, false, false)
			}
		} else if dx > 0 {
			pr.add(oESh, false, false)
		} else {
			pr.add(oSSh, false, false)
		}
	default: // VariantFull
		if dx > 0 {
			if hx && dx%t.D == 0 {
				pr.add(oEEx, false, false)
			}
			pr.add(oESh, false, false)
		} else {
			if hy && dy%t.D == 0 {
				pr.add(oSEx, false, false)
			}
			pr.add(oSSh, false, false)
		}
	}
	return pr
}

// enableTables attaches the shared route tables for this network's
// configuration, building them on first use.
func (nw *Network) enableTables() {
	key := tablesKey{n: nw.n, d: nw.cfg.Topology.D, r: nw.cfg.Topology.R, variant: nw.cfg.Variant}
	tablesMu.Lock()
	tb := tablesCache[key]
	if tb == nil {
		tb = nw.buildTables()
		tablesCache[key] = tb
	}
	tablesMu.Unlock()
	nw.tabs = tb
}

// buildTables memoizes prefsFor and injectPrefs over their full key spaces.
// prefsFor reads its router coordinate only through the ring offsets, so a
// representative router at (0, 0) with dst (dx, dy) covers every (x, y).
func (nw *Network) buildTables() *routeTables {
	t := nw.cfg.Topology
	n := nw.n
	sz := n * n
	tb := &routeTables{
		n:      n,
		class:  make([]uint8, sz),
		exists: make([][numOuts]bool, sz),
	}
	inPorts := [4]noc.Port{noc.PortWSh, noc.PortWEx, noc.PortNSh, noc.PortNEx}
	for _, port := range inPorts {
		lists := make([]prefs, sz)
		for dy := 0; dy < n; dy++ {
			for dx := 0; dx < n; dx++ {
				lists[dy*n+dx] = nw.prefsFor(port, noc.Coord{X: dx, Y: dy}, 0, 0)
			}
		}
		tb.in[port] = lists
	}
	for class := 0; class < 4; class++ {
		hx, hy := class&2 != 0, class&1 != 0
		lists := make([]prefs, sz)
		for dy := 0; dy < n; dy++ {
			for dx := 0; dx < n; dx++ {
				lists[dy*n+dx] = nw.injectPrefs(dx, dy, hx, hy)
			}
		}
		tb.inj[class] = lists
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			i := y*n + x
			hx, hy := t.HasXExpress(x), t.HasYExpress(y)
			var class uint8
			if hx {
				class |= 2
			}
			if hy {
				class |= 1
			}
			tb.class[i] = class
			tb.exists[i] = [numOuts]bool{
				oESh: true,
				oSSh: true,
				oEEx: hx,
				oSEx: hy,
			}
		}
	}
	return tb
}

// delta returns the eastward/southward ring offset from a to b on an n-ring:
// noc.RingDelta inlined for the two hot table lookups.
func delta(a, b, n int) int {
	d := b - a
	if d < 0 {
		d += n
	}
	return d
}
