package fasttrack

import (
	"testing"
	"testing/quick"
)

func TestNewTopologyValidation(t *testing.T) {
	cases := []struct {
		n, d, r int
		ok      bool
	}{
		{8, 2, 1, true},
		{8, 2, 2, true},
		{8, 4, 2, true},
		{8, 4, 4, true},
		{8, 3, 1, true},  // D need not divide N
		{8, 1, 1, true},  // degenerate: express = parallel channel
		{8, 4, 3, false}, // R must divide D
		{8, 5, 1, false}, // D > N/2
		{8, 0, 1, false},
		{8, 2, 0, false},
		{8, 2, 3, false}, // R > D
		{1, 1, 1, false}, // N too small
	}
	for _, c := range cases {
		_, err := NewTopology(c.n, c.d, c.r)
		if (err == nil) != c.ok {
			t.Errorf("NewTopology(%d,%d,%d): err=%v, want ok=%v", c.n, c.d, c.r, err, c.ok)
		}
	}
}

func TestRouterClasses(t *testing.T) {
	// FT(16,2,1): fully populated, all black (paper Fig 7a).
	top, err := NewTopology(4, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	black, grey, white := top.RouterCounts()
	if black != 16 || grey != 0 || white != 0 {
		t.Errorf("FT(16,2,1) classes = %d/%d/%d, want 16/0/0", black, grey, white)
	}

	// FT(16,2,2): depopulated checkerboard (paper Fig 7b): black at
	// (even,even), grey where exactly one coordinate is even, white at
	// (odd,odd) — 4 black, 8 grey, 4 white.
	top, err = NewTopology(4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	black, grey, white = top.RouterCounts()
	if black != 4 || grey != 8 || white != 4 {
		t.Errorf("FT(16,2,2) classes = %d/%d/%d, want 4/8/4", black, grey, white)
	}
	if got := top.ClassAt(0, 0); got != ClassBlack {
		t.Errorf("(0,0) class = %v, want black", got)
	}
	if got := top.ClassAt(1, 0); got != ClassGreyY {
		t.Errorf("(1,0) class = %v, want grey-y", got)
	}
	if got := top.ClassAt(0, 1); got != ClassGreyX {
		t.Errorf("(0,1) class = %v, want grey-x", got)
	}
	if got := top.ClassAt(1, 1); got != ClassWhite {
		t.Errorf("(1,1) class = %v, want white", got)
	}
}

func TestWireFactor(t *testing.T) {
	cases := []struct {
		d, r, want int
	}{
		{2, 1, 3}, // iso-wiring with Hoplite-3x
		{2, 2, 2}, // iso-wiring with Hoplite-2x
		{4, 1, 5},
		{4, 2, 3},
		{4, 4, 2},
	}
	for _, c := range cases {
		top, err := NewTopology(8, c.d, c.r)
		if err != nil {
			t.Fatal(err)
		}
		if got := top.WireFactor(); got != c.want {
			t.Errorf("FT(64,%d,%d) wire factor = %d, want %d", c.d, c.r, got, c.want)
		}
	}
}

func TestInjectVariantRequiresDividingD(t *testing.T) {
	top, err := NewTopology(8, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Topology: top, Variant: VariantInject}
	if err := cfg.Validate(); err == nil {
		t.Error("Inject variant with D=3, N=8 should be rejected")
	}
	if _, err := New(cfg); err == nil {
		t.Error("New should propagate the validation error")
	}
	cfg.Variant = VariantFull
	if err := cfg.Validate(); err != nil {
		t.Errorf("Full variant with D=3, N=8 should be accepted: %v", err)
	}
}

// TestExpressPortConsistency checks every express link lands on a router
// that has the matching express input — the braiding must close for all
// legal (N, D, R), which is why R | N is required.
func TestExpressPortConsistency(t *testing.T) {
	check := func(n, d, r int) bool {
		top, err := NewTopology(n, d, r)
		if err != nil {
			return true // invalid parameters are out of scope here
		}
		for x := 0; x < n; x++ {
			if top.HasXExpress(x) && !top.HasXExpress((x+d)%n) {
				return false
			}
		}
		return true
	}
	for n := 2; n <= 24; n++ {
		for d := 1; d <= n/2; d++ {
			for r := 1; r <= d; r++ {
				if !check(n, d, r) {
					t.Errorf("express braid does not close for N=%d D=%d R=%d", n, d, r)
				}
			}
		}
	}
}

func TestTopologyString(t *testing.T) {
	top, err := NewTopology(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := top.String(); got != "FT(64,2,1)" {
		t.Errorf("String() = %q, want FT(64,2,1)", got)
	}
}

// TestExpressAligned is a quick property: alignment is preserved by
// subtracting D.
func TestExpressAligned(t *testing.T) {
	top, err := NewTopology(16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := func(k uint8) bool {
		delta := int(k) % 16
		if !top.ExpressAligned(delta) || delta < top.D {
			return true
		}
		return top.ExpressAligned(delta - top.D)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
