package fasttrack_test

import (
	"testing"

	"fasttrack/internal/fasttrack"
	"fasttrack/internal/noc"
	"fasttrack/internal/noctest"
)

// TestShardEquivalence is the FastTrack half of the network-level golden
// gate: every variant (Full and Inject, with and without express-link
// pipelining) must produce a bit-identical delivered stream, counter set,
// and telemetry event log when stepped shard-parallel. With -race this
// doubles as the shard data-race stress for the express planes.
func TestShardEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		d, r    int
		variant fasttrack.Variant
		pipe    int
		rate    float64
		cycles  int
		shards  []int
	}{
		{"full-d4r1/low", 4, 1, fasttrack.VariantFull, 0, 0.1, 200, []int{2, 4}},
		{"full-d4r1/sat", 4, 1, fasttrack.VariantFull, 0, 0.9, 120, []int{2, 4, 8}},
		{"inject-d4r4/sat", 4, 4, fasttrack.VariantInject, 0, 0.9, 120, []int{2, 4}},
		{"full-d2r2-pipe2/sat", 2, 2, fasttrack.VariantFull, 2, 0.9, 120, []int{2, 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mk := func() noc.ShardedNetwork {
				top, err := fasttrack.NewTopology(8, tc.d, tc.r)
				if err != nil {
					t.Fatal(err)
				}
				nw, err := fasttrack.New(fasttrack.Config{
					Topology:        top,
					Variant:         tc.variant,
					ExpressPipeline: tc.pipe,
				})
				if err != nil {
					t.Fatal(err)
				}
				return nw
			}
			noctest.ShardEquivalence(t, mk, tc.shards, 0xBEEF, tc.cycles, tc.rate)
		})
	}
}
