package fasttrack

import (
	"testing"

	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

// TestNoStarvationUnderSaturatedTranspose is the livelock/starvation
// regression for FastTrack's static-priority arbitration. TRANSPOSE at
// injection rate 1.0 is the adversarial case for a static scheme: every
// off-diagonal PE floods a fixed partner, all turns contend, and the W>N>PE
// priority chain gives some inputs permanent preference. The run must still
// drain completely — every packet delivered, none starved past the age
// watchdog, full per-cycle conservation — or the deflection rules have a
// livelock hole.
func TestNoStarvationUnderSaturatedTranspose(t *testing.T) {
	for _, variant := range []Variant{VariantFull, VariantInject} {
		t.Run(variant.String(), func(t *testing.T) {
			top, err := NewTopology(8, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			nw, err := New(Config{Topology: top, Variant: variant})
			if err != nil {
				t.Fatal(err)
			}
			wl := traffic.NewSynthetic(8, 8, traffic.Transpose{}, 1.0, 250, 17)
			res, err := sim.Run(nw, wl, sim.Options{
				CheckConservation: true,
				// In-network age bound: generous versus the unloaded
				// diameter (~16 cycles) but far below the run length, so a
				// starved packet fails the test rather than the cycle limit.
				MaxPacketAge: 20000,
			})
			if err != nil {
				t.Fatal(err)
			}
			// 56 off-diagonal PEs × 250 packets (the diagonal is silent).
			want := int64(56 * 250)
			if res.Injected != want || res.Delivered != want {
				t.Errorf("injected %d delivered %d, want %d", res.Injected, res.Delivered, want)
			}
			if res.TimedOut {
				t.Error("run hit the cycle limit instead of draining")
			}
		})
	}
}
