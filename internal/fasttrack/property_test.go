package fasttrack

import (
	"testing"
	"testing/quick"

	"fasttrack/internal/noc"
	"fasttrack/internal/sim"
	"fasttrack/internal/traffic"
)

// legalConfig derives a valid FT configuration from arbitrary fuzz bytes.
func legalConfig(a, b, c, d byte) Config {
	ns := []int{4, 6, 8, 12}
	n := ns[int(a)%len(ns)]
	var dims []int
	for dd := 1; dd <= n/2; dd++ {
		dims = append(dims, dd)
	}
	dd := dims[int(b)%len(dims)]
	var rs []int
	for r := 1; r <= dd; r++ {
		if dd%r == 0 && n%r == 0 {
			rs = append(rs, r)
		}
	}
	r := rs[int(c)%len(rs)]
	v := VariantFull
	if d%2 == 1 && n%dd == 0 {
		v = VariantInject
	}
	top, err := NewTopology(n, dd, r)
	if err != nil {
		panic(err)
	}
	return Config{Topology: top, Variant: v}
}

// TestPropertyRandomTrafficAlwaysDrains is the livelock-freedom property:
// any legal configuration under sustained random traffic delivers every
// generated packet (sim.Run's stall tripwire and conservation check fail
// otherwise).
func TestPropertyRandomTrafficAlwaysDrains(t *testing.T) {
	f := func(a, b, c, d byte, seed uint64) bool {
		cfg := legalConfig(a, b, c, d)
		nw, err := New(cfg)
		if err != nil {
			t.Logf("New(%+v): %v", cfg, err)
			return false
		}
		wl := traffic.NewSynthetic(nw.Width(), nw.Height(), traffic.Random{}, 0.8, 40, seed)
		res, err := sim.Run(nw, wl, sim.Options{MaxCycles: 400000})
		if err != nil || res.TimedOut {
			t.Logf("%v on %v seed %d: err=%v timedOut=%v delivered=%d",
				cfg.Topology, cfg.Variant, seed, err, res.TimedOut, res.Delivered)
			return false
		}
		return res.Delivered == res.Injected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyHotspotDrains aims half of all traffic at one PE — the
// adversarial case for deflection NoCs, since the exit port serializes and
// everything else circulates.
func TestPropertyHotspotDrains(t *testing.T) {
	f := func(a, b, c, d byte, hot uint8, seed uint64) bool {
		cfg := legalConfig(a, b, c, d)
		nw, err := New(cfg)
		if err != nil {
			return false
		}
		n := nw.Width()
		pat := traffic.Hotspot{Hot: noc.PECoord(int(hot)%(n*n), n), Fraction: 0.5}
		wl := traffic.NewSynthetic(n, n, pat, 1.0, 25, seed)
		res, err := sim.Run(nw, wl, sim.Options{MaxCycles: 800000})
		if err != nil || res.TimedOut {
			t.Logf("%v/%v hotspot %v: err=%v timedOut=%v", cfg.Topology, cfg.Variant, pat.Hot, err, res.TimedOut)
			return false
		}
		return res.Delivered == res.Injected
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestPropertySinglePacketExactDelivery fuzzes (config, src, dst) and
// checks a lone packet arrives at its destination within the DOR bound and
// with hop counts consistent with its latency (express hops advance D
// positions per cycle, so hops ≤ cycles).
func TestPropertySinglePacketExactDelivery(t *testing.T) {
	f := func(a, b, c, d byte, se, de uint16) bool {
		cfg := legalConfig(a, b, c, d)
		nw, err := New(cfg)
		if err != nil {
			return false
		}
		n := nw.Width()
		src := noc.PECoord(int(se)%(n*n), n)
		dst := noc.PECoord(int(de)%(n*n), n)
		pe := noc.PEIndex(src, n)
		nw.Offer(pe, noc.Packet{ID: 7, Src: src, Dst: dst})
		nw.Step(0)
		if !nw.Accepted(pe) {
			return false // idle network must accept
		}
		deliveredAt := int64(-1)
		var got noc.Packet
		if len(nw.Delivered()) == 1 {
			deliveredAt, got = 0, nw.Delivered()[0]
		}
		for cyc := int64(1); cyc <= int64(2*n); cyc++ {
			if deliveredAt >= 0 {
				break
			}
			nw.Step(cyc)
			if len(nw.Delivered()) == 1 {
				deliveredAt, got = cyc, nw.Delivered()[0]
			}
		}
		if deliveredAt < 0 || got.Dst != dst {
			t.Logf("%v/%v %v->%v: not delivered", cfg.Topology, cfg.Variant, src, dst)
			return false
		}
		bound := int64(noc.RingDelta(src.X, dst.X, n) + noc.RingDelta(src.Y, dst.Y, n))
		if deliveredAt > bound {
			t.Logf("%v/%v %v->%v: latency %d > DOR bound %d", cfg.Topology, cfg.Variant, src, dst, deliveredAt, bound)
			return false
		}
		if int64(got.ShortHops)+int64(got.ExpressHops) != deliveredAt {
			t.Logf("%v/%v %v->%v: hops %d+%d != cycles %d",
				cfg.Topology, cfg.Variant, src, dst, got.ShortHops, got.ExpressHops, deliveredAt)
			return false
		}
		if got.Deflections != 0 {
			t.Logf("lone packet deflected")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestPropertyExpressNeverCarriesMisalignedInject: in the Inject variant,
// packets on the express plane always have offsets that are multiples of D
// — sample final hop counts as a proxy: any express usage implies both
// deltas were aligned at injection.
func TestPropertyExpressNeverCarriesMisalignedInject(t *testing.T) {
	top, err := NewTopology(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := func(se, de uint16) bool {
		nw, err := New(Config{Topology: top, Variant: VariantInject})
		if err != nil {
			return false
		}
		src := noc.PECoord(int(se)%64, 8)
		dst := noc.PECoord(int(de)%64, 8)
		if src == dst {
			return true
		}
		pe := noc.PEIndex(src, 8)
		nw.Offer(pe, noc.Packet{ID: 1, Src: src, Dst: dst})
		nw.Step(0)
		var got *noc.Packet
		for cyc := int64(1); cyc < 40 && got == nil; cyc++ {
			nw.Step(cyc)
			if len(nw.Delivered()) == 1 {
				p := nw.Delivered()[0]
				got = &p
			}
		}
		if got == nil {
			return false
		}
		dx := noc.RingDelta(src.X, dst.X, 8)
		dy := noc.RingDelta(src.Y, dst.Y, 8)
		aligned := dx%2 == 0 && dy%2 == 0
		if !aligned && got.ExpressHops > 0 {
			t.Logf("%v->%v misaligned but used express", src, dst)
			return false
		}
		if aligned && got.ShortHops > 0 {
			t.Logf("%v->%v aligned but used short links on an idle network", src, dst)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
