package fasttrack

import (
	"testing"

	"fasttrack/internal/noc"
)

func build(t *testing.T, n, d, r int, v Variant) *Network {
	t.Helper()
	top, err := NewTopology(n, d, r)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(Config{Topology: top, Variant: v})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func inject(t *testing.T, nw *Network, p noc.Packet, now int64) {
	t.Helper()
	pe := noc.PEIndex(p.Src, nw.Width())
	nw.Offer(pe, p)
	nw.Step(now)
	if !nw.Accepted(pe) {
		t.Fatalf("injection refused for %v->%v", p.Src, p.Dst)
	}
}

// runOne injects a packet into an idle network and returns the delivered
// packet plus the delivery cycle.
func runOne(t *testing.T, nw *Network, src, dst noc.Coord) (noc.Packet, int64) {
	t.Helper()
	p := noc.Packet{ID: 1, Src: src, Dst: dst}
	inject(t, nw, p, 0)
	if len(nw.Delivered()) == 1 {
		return nw.Delivered()[0], 0
	}
	for c := int64(1); c < 200; c++ {
		nw.Step(c)
		if len(nw.Delivered()) == 1 {
			return nw.Delivered()[0], c
		}
	}
	t.Fatalf("packet %v->%v never delivered", src, dst)
	return noc.Packet{}, 0
}

// TestExpressPathExact verifies aligned packets ride express links end to
// end: (0,0)->(4,0) on FT(64,2,1) takes two express hops and two cycles —
// half the Hoplite latency.
func TestExpressPathExact(t *testing.T) {
	nw := build(t, 8, 2, 1, VariantFull)
	p, at := runOne(t, nw, noc.Coord{X: 0, Y: 0}, noc.Coord{X: 4, Y: 0})
	if p.ExpressHops != 2 || p.ShortHops != 0 {
		t.Errorf("hops = %d express / %d short, want 2/0", p.ExpressHops, p.ShortHops)
	}
	if at != 2 {
		t.Errorf("delivered at cycle %d, want 2", at)
	}
}

// TestUpgradeAfterShortHop verifies the paper's "start slow, upgrade later"
// behaviour: a misaligned packet takes short hops until its remaining
// offset is a multiple of D, then rides express.
func TestUpgradeAfterShortHop(t *testing.T) {
	nw := build(t, 8, 2, 1, VariantFull)
	p, at := runOne(t, nw, noc.Coord{X: 0, Y: 0}, noc.Coord{X: 5, Y: 0})
	if p.ShortHops != 1 || p.ExpressHops != 2 {
		t.Errorf("hops = %d short / %d express, want 1/2", p.ShortHops, p.ExpressHops)
	}
	if at != 3 {
		t.Errorf("delivered at cycle %d, want 3 (vs 5 on Hoplite)", at)
	}
}

// TestFig8Path reproduces the paper's Fig 8 example on a 4×4 FT(16,2,1):
// (0,3)->(3,0) upgrades to express mid-flight in the X ring and turns onto
// the short Y ring.
func TestFig8Path(t *testing.T) {
	nw := build(t, 4, 2, 1, VariantFull)
	p, at := runOne(t, nw, noc.Coord{X: 0, Y: 3}, noc.Coord{X: 3, Y: 0})
	// dx=3 (1 short + 1 express), dy=1 (1 short, wraps).
	if p.ShortHops != 2 || p.ExpressHops != 1 {
		t.Errorf("hops = %d short / %d express, want 2/1", p.ShortHops, p.ExpressHops)
	}
	if at != 3 {
		t.Errorf("delivered at cycle %d, want 3", at)
	}
}

// TestTurnStaysExpressWhenAligned: both deltas aligned → the whole flight
// is express, including the turn.
func TestTurnStaysExpressWhenAligned(t *testing.T) {
	nw := build(t, 8, 2, 1, VariantFull)
	p, at := runOne(t, nw, noc.Coord{X: 0, Y: 0}, noc.Coord{X: 4, Y: 4})
	if p.ShortHops != 0 || p.ExpressHops != 4 {
		t.Errorf("hops = %d short / %d express, want 0/4", p.ShortHops, p.ExpressHops)
	}
	if at != 4 {
		t.Errorf("delivered at cycle %d, want 4 (vs 8 on Hoplite)", at)
	}
}

// TestDepopulatedEntry: on FT(64,2,2) a packet sourced at an odd column
// cannot enter the X express ring at its source, but a Full router lets it
// upgrade at the next express column.
func TestDepopulatedEntry(t *testing.T) {
	nw := build(t, 8, 2, 2, VariantFull)
	p, _ := runOne(t, nw, noc.Coord{X: 1, Y: 0}, noc.Coord{X: 7, Y: 0})
	// dx=6: short hop to x=2 (aligned, express column), then express 2→4→6,
	// then... dx from 2 is 5, misaligned! So: 1 short to x=2 (dx=5,
	// misaligned), short to x=3 (dx=4 aligned but odd column: no express),
	// short to x=4 (dx=3 misaligned), ... packets only upgrade when both
	// aligned AND at an express column.
	if p.ExpressHops == 0 {
		t.Logf("note: no express segment available for this offset pattern")
	}
	if p.ShortHops+p.ExpressHops == 0 {
		t.Fatal("packet recorded no hops")
	}
	// A case engineered to hit an express column while aligned: dx=4 from
	// an even column.
	nw = build(t, 8, 2, 2, VariantFull)
	p, at := runOne(t, nw, noc.Coord{X: 2, Y: 0}, noc.Coord{X: 6, Y: 0})
	if p.ExpressHops != 2 || p.ShortHops != 0 {
		t.Errorf("aligned even-column flight: %d express / %d short, want 2/0", p.ExpressHops, p.ShortHops)
	}
	if at != 2 {
		t.Errorf("delivered at %d, want 2", at)
	}
}

// TestInjectVariantLaneDiscipline: under FTlite(Inject), an express-
// eligible packet stays entirely on the express plane and an ineligible one
// entirely on the short plane.
func TestInjectVariantLaneDiscipline(t *testing.T) {
	nw := build(t, 8, 2, 1, VariantInject)
	p, _ := runOne(t, nw, noc.Coord{X: 0, Y: 0}, noc.Coord{X: 4, Y: 2})
	if p.ShortHops != 0 {
		t.Errorf("eligible packet used %d short hops, want 0", p.ShortHops)
	}
	if p.ExpressHops != 3 {
		t.Errorf("eligible packet used %d express hops, want 3", p.ExpressHops)
	}

	nw = build(t, 8, 2, 1, VariantInject)
	p, _ = runOne(t, nw, noc.Coord{X: 0, Y: 0}, noc.Coord{X: 5, Y: 2})
	if p.ExpressHops != 0 {
		t.Errorf("misaligned packet used %d express hops, want 0 (no lane crossing)", p.ExpressHops)
	}
	if p.ShortHops != 7 {
		t.Errorf("misaligned packet used %d short hops, want 7", p.ShortHops)
	}
}

// TestExpressTurnPriority stages the paper's priority rule: a WEx packet
// turning at its destination column preempts an NSh packet continuing
// south; the NSh packet deflects and still arrives.
func TestExpressTurnPriority(t *testing.T) {
	// Depopulated FT(64,2,2): odd rows/columns have no express ports, so a
	// short-lane packet cannot sidestep the conflict by upgrading.
	nw := build(t, 8, 2, 2, VariantFull)
	// A: (0,0)->(2,3): one express hop east, arriving (2,0) at cycle 1 as
	// WEx; dy=3 is misaligned so it turns onto the short lane (SSh).
	// B: (2,7)->(2,1): row 7 has no SEx, so B injects on SSh and arrives
	// (2,0) at cycle 1 as NSh with dy=1 (misaligned) wanting the same SSh.
	a := noc.Packet{ID: 1, Src: noc.Coord{X: 0, Y: 0}, Dst: noc.Coord{X: 2, Y: 3}}
	b := noc.Packet{ID: 2, Src: noc.Coord{X: 2, Y: 7}, Dst: noc.Coord{X: 2, Y: 1}}
	nw.Offer(noc.PEIndex(a.Src, 8), a)
	nw.Offer(noc.PEIndex(b.Src, 8), b)
	nw.Step(0)
	if !nw.Accepted(noc.PEIndex(a.Src, 8)) || !nw.Accepted(noc.PEIndex(b.Src, 8)) {
		t.Fatal("both injections should succeed")
	}
	got := map[int64]noc.Packet{}
	for c := int64(1); c < 100 && len(got) < 2; c++ {
		nw.Step(c)
		for _, p := range nw.Delivered() {
			got[p.ID] = p
		}
	}
	if len(got) != 2 {
		t.Fatalf("delivered %d of 2 packets", len(got))
	}
	if got[1].Deflections != 0 {
		t.Errorf("express turning packet deflected %d times, want 0", got[1].Deflections)
	}
	if got[2].Deflections == 0 {
		t.Errorf("short column packet should have deflected at the contested turn")
	}
}

// TestConservationUnderLoad floods several configurations and checks
// injected = delivered + in-flight every cycle, and that counters add up.
func TestConservationUnderLoad(t *testing.T) {
	configs := []struct {
		n, d, r int
		v       Variant
	}{
		{8, 2, 1, VariantFull},
		{8, 2, 2, VariantFull},
		{8, 4, 2, VariantFull},
		{8, 3, 1, VariantFull}, // D does not divide N: pop-off paths
		{8, 2, 1, VariantInject},
		{8, 2, 2, VariantInject},
		{6, 3, 3, VariantInject},
		{4, 2, 1, VariantFull},
		{16, 4, 4, VariantFull},
	}
	for _, c := range configs {
		nw := build(t, c.n, c.d, c.r, c.v)
		seed := uint64(999)
		next := func() uint64 { seed = seed*6364136223846793005 + 1; return seed >> 33 }
		pes := nw.NumPEs()
		var injected, delivered int64
		for cyc := int64(0); cyc < 1500; cyc++ {
			offered := map[int]bool{}
			for pe := 0; pe < pes; pe++ {
				if next()%10 < 5 {
					dst := int(next() % uint64(pes))
					nw.Offer(pe, noc.Packet{
						ID:  cyc<<16 | int64(pe),
						Src: noc.PECoord(pe, c.n), Dst: noc.PECoord(dst, c.n), Gen: cyc,
					})
					offered[pe] = true
				}
			}
			nw.Step(cyc)
			for pe := range offered {
				if nw.Accepted(pe) {
					injected++
				}
			}
			delivered += int64(len(nw.Delivered()))
			if injected != delivered+int64(nw.InFlight()) {
				t.Fatalf("FT(%d,%d,%d)/%v cycle %d: injected %d != delivered %d + inflight %d",
					c.n*c.n, c.d, c.r, c.v, cyc, injected, delivered, nw.InFlight())
			}
		}
		if delivered == 0 {
			t.Fatalf("FT(%d,%d,%d)/%v delivered nothing", c.n*c.n, c.d, c.r, c.v)
		}
		if nw.Counters().Delivered != delivered {
			t.Fatalf("counter mismatch: %d vs %d", nw.Counters().Delivered, delivered)
		}
	}
}

// TestAllPairsAllConfigs delivers one packet between every PE pair on a
// matrix of configurations, checking exact destination and a latency bound
// (deflection-free single packets must beat baseline DOR latency).
func TestAllPairsAllConfigs(t *testing.T) {
	configs := []struct {
		n, d, r int
		v       Variant
	}{
		{4, 2, 1, VariantFull},
		{4, 2, 2, VariantFull},
		{6, 2, 1, VariantFull},
		{6, 3, 1, VariantFull},
		{8, 3, 1, VariantFull}, // pop-off config
		{4, 2, 1, VariantInject},
		{6, 2, 2, VariantInject},
	}
	for _, c := range configs {
		n := c.n
		for src := 0; src < n*n; src++ {
			for dst := 0; dst < n*n; dst++ {
				nw := build(t, c.n, c.d, c.r, c.v)
				s, d := noc.PECoord(src, n), noc.PECoord(dst, n)
				p, at := runOne(t, nw, s, d)
				if p.Dst != d {
					t.Fatalf("FT(%d,%d,%d)/%v %v->%v: wrong destination %v",
						n*n, c.d, c.r, c.v, s, d, p.Dst)
				}
				bound := int64(noc.RingDelta(s.X, d.X, n) + noc.RingDelta(s.Y, d.Y, n))
				if at > bound {
					t.Fatalf("FT(%d,%d,%d)/%v %v->%v: latency %d exceeds DOR bound %d",
						n*n, c.d, c.r, c.v, s, d, at, bound)
				}
			}
		}
	}
}

// TestCountersTrackLinkClasses checks Fig 18a's accounting: express and
// short traversal counters equal the per-packet hop sums.
func TestCountersTrackLinkClasses(t *testing.T) {
	nw := build(t, 8, 2, 1, VariantFull)
	var short, express int64
	var packets int
	for i := 0; i < 20; i++ {
		src := noc.PECoord(i*3%64, 8)
		dst := noc.PECoord((i*7+11)%64, 8)
		if src == dst {
			continue
		}
		p, _ := runOne(t, nw, src, dst)
		short += int64(p.ShortHops)
		express += int64(p.ExpressHops)
		packets++
	}
	c := nw.Counters()
	if c.ShortTraversals != short || c.ExpressTraversals != express {
		t.Errorf("traversal counters %d/%d, packet sums %d/%d",
			c.ShortTraversals, c.ExpressTraversals, short, express)
	}
	if express == 0 {
		t.Error("expected some express usage across 20 scattered packets")
	}
	if int64(packets) != c.Delivered {
		t.Errorf("delivered counter %d, want %d", c.Delivered, packets)
	}
}

// TestExpressPipelineAddsLatency: with k extra register stages per express
// link (§VII Hyperflex model), an express hop takes 1+k cycles; the hop
// counts are unchanged.
func TestExpressPipelineAddsLatency(t *testing.T) {
	for stages := 0; stages <= 3; stages++ {
		top, err := NewTopology(8, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := New(Config{Topology: top, Variant: VariantFull, ExpressPipeline: stages})
		if err != nil {
			t.Fatal(err)
		}
		p, at := runOne(t, nw, noc.Coord{X: 0, Y: 0}, noc.Coord{X: 4, Y: 0})
		if p.ExpressHops != 2 || p.ShortHops != 0 {
			t.Fatalf("stages=%d: hops %d/%d, want 2 express", stages, p.ExpressHops, p.ShortHops)
		}
		want := int64(2 * (1 + stages))
		if at != want {
			t.Errorf("stages=%d: delivered at %d, want %d", stages, at, want)
		}
	}
}

// TestExpressPipelineConservation floods a pipelined network and verifies
// nothing is lost inside the pipeline registers.
func TestExpressPipelineConservation(t *testing.T) {
	top, err := NewTopology(8, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(Config{Topology: top, Variant: VariantFull, ExpressPipeline: 2})
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(555)
	next := func() uint64 { seed = seed*6364136223846793005 + 1; return seed >> 33 }
	var injected, delivered int64
	for cyc := int64(0); cyc < 3000; cyc++ {
		offered := map[int]bool{}
		for pe := 0; pe < 64; pe++ {
			if next()%2 == 0 {
				nw.Offer(pe, noc.Packet{ID: cyc<<8 | int64(pe),
					Src: noc.PECoord(pe, 8), Dst: noc.PECoord(int(next()%64), 8), Gen: cyc})
				offered[pe] = true
			}
		}
		nw.Step(cyc)
		for pe := range offered {
			if nw.Accepted(pe) {
				injected++
			}
		}
		delivered += int64(len(nw.Delivered()))
	}
	// Drain.
	for cyc := int64(3000); nw.InFlight() > 0 && cyc < 20000; cyc++ {
		nw.Step(cyc)
		delivered += int64(len(nw.Delivered()))
	}
	if injected != delivered {
		t.Fatalf("pipeline lost packets: injected %d, delivered %d, inflight %d",
			injected, delivered, nw.InFlight())
	}
}
