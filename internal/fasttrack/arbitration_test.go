package fasttrack

import (
	"testing"

	"fasttrack/internal/noc"
	"fasttrack/internal/xrand"
)

// TestRouterArbitrationExhaustive drives a single router through every
// input-occupancy combination with randomized packet offsets, across router
// classes and variants, and asserts the bufferless invariants:
//
//   - every in-flight input packet is assigned exactly one output or
//     delivered (no loss, no duplication);
//   - only outputs that exist at the router's class are driven;
//   - at most one packet occupies each output;
//   - the WEx input, having top priority, always receives the first entry
//     of its preference list.
func TestRouterArbitrationExhaustive(t *testing.T) {
	configs := []struct {
		name    string
		d, r    int
		variant Variant
		x, y    int // router under test
	}{
		{"black-full", 2, 1, VariantFull, 2, 2},
		{"black-inject", 2, 1, VariantInject, 2, 2},
		{"black-full-d4", 4, 2, VariantFull, 2, 2},
		{"greyx-full", 2, 2, VariantFull, 2, 1},
		{"greyy-full", 2, 2, VariantFull, 1, 2},
		{"white-full", 2, 2, VariantFull, 1, 1},
		{"black-full-popoff", 3, 1, VariantFull, 3, 3}, // D does not divide N
	}
	rng := xrand.New(4242)
	for _, c := range configs {
		top, err := NewTopology(8, c.d, c.r)
		if err != nil {
			t.Fatal(err)
		}
		cfg := Config{Topology: top, Variant: c.variant}
		hasX, hasY := top.HasXExpress(c.x), top.HasYExpress(c.y)

		// Enumerate all occupancy masks over (WSh, WEx, NSh, NEx), skipping
		// express inputs the class does not have, with many random offsets.
		for mask := 0; mask < 16; mask++ {
			useWEx := mask&2 != 0
			useNEx := mask&8 != 0
			if (useWEx && !hasX) || (useNEx && !hasY) {
				continue
			}
			for trial := 0; trial < 60; trial++ {
				nw, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				i := c.y*8 + c.x
				var want int
				mk := func(id int64, express bool, dim byte) slot {
					// Express inputs must carry express-legal offsets: the
					// simulator never produces a misaligned express packet
					// except via documented pop-off paths, which arise from
					// in-network deflections, not fresh injections. Random
					// offsets here cover both.
					dst := noc.Coord{X: rng.Intn(8), Y: rng.Intn(8)}
					if express && c.variant == VariantInject {
						// Inject lane discipline: express packets always
						// carry aligned offsets.
						dx := (rng.Intn(8 / c.d)) * c.d
						dy := (rng.Intn(8 / c.d)) * c.d
						if dim == 'x' && dx == 0 && dy == 0 {
							dx = c.d
						}
						dst = noc.Coord{X: (c.x + dx) % 8, Y: (c.y + dy) % 8}
						if dim == 'y' {
							// Y-express packets have finished X routing.
							dst.X = c.x
						}
					}
					if express && c.variant == VariantFull && dim == 'y' {
						dst.X = c.x // NEx with dx != 0 only via misroutes
					}
					want++
					return slot{p: noc.Packet{ID: id, Src: noc.Coord{X: 0, Y: 0}, Dst: dst}, ok: true}
				}
				var wExPkt noc.Packet
				if mask&1 != 0 {
					nw.wShIn[i] = mk(1, false, 'x')
				}
				if useWEx {
					nw.wExIn[i] = mk(2, true, 'x')
					wExPkt = nw.wExIn[i].p
				}
				if mask&4 != 0 {
					nw.nShIn[i] = mk(3, false, 'y')
				}
				if useNEx {
					nw.nExIn[i] = mk(4, true, 'y')
				}
				nw.sh[0].inFlight = want

				nw.sh[0].delivered = nw.sh[0].delivered[:0]
				nw.route(c.x, c.y, 0) // panics on overcommit

				// Collect placements.
				got := 0
				seen := map[int64]int{}
				for o := 0; o < numOuts; o++ {
					s := nw.outs[o][i]
					if !s.ok {
						continue
					}
					got++
					seen[s.p.ID]++
					switch uint8(o) {
					case oEEx:
						if !hasX {
							t.Fatalf("%s mask %d: EEx driven on router without X express", c.name, mask)
						}
					case oSEx:
						if !hasY {
							t.Fatalf("%s mask %d: SEx driven on router without Y express", c.name, mask)
						}
					}
				}
				for _, p := range nw.Delivered() {
					got++
					seen[p.ID]++
					if p.Dst != (noc.Coord{X: c.x, Y: c.y}) {
						t.Fatalf("%s mask %d: delivered packet %d not addressed here", c.name, mask, p.ID)
					}
				}
				if got != want {
					t.Fatalf("%s mask %d trial %d: %d packets in, %d out", c.name, mask, trial, want, got)
				}
				for id, n := range seen {
					if n != 1 {
						t.Fatalf("%s mask %d: packet %d appears %d times", c.name, mask, id, n)
					}
				}

				// Priority check: WEx, processed first, must land on the
				// first existing candidate of its preference list.
				if useWEx {
					pr := nw.prefsFor(noc.PortWEx, wExPkt.Dst, c.x, c.y)
					var first *cand
					for k := 0; k < pr.n; k++ {
						cd := pr.c[k]
						exists := cd.out == oESh || cd.out == oSSh ||
							(cd.out == oEEx && hasX) || (cd.out == oSEx && hasY)
						if exists {
							first = &cd
							break
						}
					}
					if first == nil {
						t.Fatalf("%s: WEx packet has no feasible candidate", c.name)
					}
					if first.deliver {
						found := false
						for _, p := range nw.Delivered() {
							if p.ID == 2 {
								found = true
							}
						}
						if !found {
							t.Fatalf("%s mask %d: WEx exit not granted", c.name, mask)
						}
					} else if s := nw.outs[first.out][i]; !s.ok || s.p.ID != 2 {
						t.Fatalf("%s mask %d: WEx not on its first choice output %d", c.name, mask, first.out)
					}
				}
			}
		}
	}
}

// TestRouteNeverPanicsUnderFuzz hammers route() through full network steps
// with randomized multi-router traffic to exercise arbitration interleavings
// (the place() panic is the assertion).
func TestRouteNeverPanicsUnderFuzz(t *testing.T) {
	rng := xrand.New(31337)
	for trial := 0; trial < 30; trial++ {
		ds := []int{1, 2, 3, 4}
		d := ds[rng.Intn(len(ds))]
		r := 1
		if d%2 == 0 && rng.Bool(0.5) {
			r = 2
		}
		v := VariantFull
		if 8%d == 0 && rng.Bool(0.3) {
			v = VariantInject
		}
		top, err := NewTopology(8, d, r)
		if err != nil {
			t.Fatal(err)
		}
		nw, err := New(Config{Topology: top, Variant: v})
		if err != nil {
			t.Fatal(err)
		}
		for cyc := int64(0); cyc < 400; cyc++ {
			for pe := 0; pe < 64; pe++ {
				if rng.Bool(0.7) {
					nw.Offer(pe, noc.Packet{
						ID:  cyc<<8 | int64(pe),
						Src: noc.PECoord(pe, 8), Dst: noc.PECoord(rng.Intn(64), 8), Gen: cyc,
					})
				}
			}
			nw.Step(cyc)
		}
	}
}
