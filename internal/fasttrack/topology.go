// Package fasttrack implements the FastTrack NoC from the ISCA 2018 paper:
// a Hoplite-style bufferless deflection-routed unidirectional torus augmented
// with express physical links that ride the FPGA's fast long-distance wiring
// to skip D router stages in a single clock cycle.
//
// A configuration is FT(N², D, R):
//
//	N — torus is N×N routers;
//	D — express link length in router hops (1 ≤ D ≤ N/2);
//	R — depopulation factor (1 ≤ R ≤ D, R | D): express entry points exist
//	    only at coordinates ≡ 0 (mod R), so D/R express tracks braid through
//	    every channel and (R-1) plain Hoplite routers sit between consecutive
//	    FastTrack routers.
//
// Router classes follow the paper's Fig 7 shading: Black routers carry
// express ports in both dimensions, Grey in one, White in none (plain
// Hoplite). Two microarchitectures are provided: VariantFull (the paper's
// FT (Full) router, Fig 9b — packets may upgrade from short to express links
// at any port) and VariantInject (FTlite (Inject), Fig 9c — packets choose a
// lane at injection and never cross).
package fasttrack

import (
	"fmt"

	"fasttrack/internal/noc"
)

// Variant selects the router microarchitecture.
type Variant uint8

const (
	// VariantFull is the fully-loaded FastTrack router (paper Fig 9b):
	// packets can hop onto an express link from any input port and upgrade
	// mid-flight; express-to-short transfers happen only at turns and exits.
	VariantFull Variant = iota
	// VariantInject is the FTlite (Inject) router (paper Fig 9c): packets
	// may enter the express plane only at the PE injection port and the two
	// planes never exchange packets.
	VariantInject
)

// String names the variant as in the paper.
func (v Variant) String() string {
	switch v {
	case VariantFull:
		return "FT(Full)"
	case VariantInject:
		return "FTlite(Inject)"
	}
	return fmt.Sprintf("Variant(%d)", uint8(v))
}

// Class is the per-router complexity shade of the paper's Fig 7.
type Class uint8

const (
	// ClassWhite routers are plain Hoplite switches with no express ports.
	ClassWhite Class = iota
	// ClassGreyX routers carry express ports in the X dimension only.
	ClassGreyX
	// ClassGreyY routers carry express ports in the Y dimension only.
	ClassGreyY
	// ClassBlack routers carry express ports in both dimensions.
	ClassBlack
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassWhite:
		return "white"
	case ClassGreyX:
		return "grey-x"
	case ClassGreyY:
		return "grey-y"
	case ClassBlack:
		return "black"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Topology is a validated FT(N², D, R) parameterization.
type Topology struct {
	N int // torus is N×N
	D int // express link length in hops
	R int // depopulation factor
}

// NewTopology validates the FT(N², D, R) parameters.
func NewTopology(n, d, r int) (Topology, error) {
	t := Topology{N: n, D: d, R: r}
	if n < 2 {
		return t, fmt.Errorf("fasttrack: N=%d too small (need N >= 2)", n)
	}
	if d < 1 || d > n/2 {
		return t, fmt.Errorf("fasttrack: D=%d out of range [1, N/2=%d]", d, n/2)
	}
	if r < 1 || r > d {
		return t, fmt.Errorf("fasttrack: R=%d out of range [1, D=%d]", r, d)
	}
	if d%r != 0 {
		return t, fmt.Errorf("fasttrack: R=%d must divide D=%d", r, d)
	}
	if n%r != 0 {
		// Express entry points sit at multiples of R; the braid only closes
		// around the ring when R divides N.
		return t, fmt.Errorf("fasttrack: R=%d must divide N=%d", r, n)
	}
	return t, nil
}

// HasXExpress reports whether the router at column x carries X-dimension
// express ports (an express input from column x-D and an output to x+D).
func (t Topology) HasXExpress(x int) bool { return x%t.R == 0 }

// HasYExpress reports whether the router at row y carries Y-dimension
// express ports.
func (t Topology) HasYExpress(y int) bool { return y%t.R == 0 }

// ClassAt returns the Fig 7 complexity class of router (x, y).
func (t Topology) ClassAt(x, y int) Class {
	hx, hy := t.HasXExpress(x), t.HasYExpress(y)
	switch {
	case hx && hy:
		return ClassBlack
	case hx:
		return ClassGreyX
	case hy:
		return ClassGreyY
	default:
		return ClassWhite
	}
}

// ExpressTracks returns the number of braided express tracks crossing any
// single channel segment: D/R.
func (t Topology) ExpressTracks() int { return t.D / t.R }

// WireFactor returns the ratio of wiring tracks per channel relative to a
// plain Hoplite torus: 1 short track plus D/R express tracks. FT(·,2,1) is
// iso-wiring with Hoplite-3x and FT(·,2,2) with Hoplite-2x, as in the
// paper's §IV-A and Fig 13/14.
func (t Topology) WireFactor() int { return 1 + t.ExpressTracks() }

// RouterCounts returns how many routers of each class the topology
// instantiates.
func (t Topology) RouterCounts() (black, grey, white int) {
	for y := 0; y < t.N; y++ {
		for x := 0; x < t.N; x++ {
			switch t.ClassAt(x, y) {
			case ClassBlack:
				black++
			case ClassGreyX, ClassGreyY:
				grey++
			default:
				white++
			}
		}
	}
	return black, grey, white
}

// ExpressAligned reports whether a packet with forward ring distance delta
// can ride express links all the way to distance zero: it must sit on a
// multiple of D. The paper's routing rule — a packet enters the express
// network only if its destination is directly reachable entirely within it.
func (t Topology) ExpressAligned(delta int) bool { return delta%t.D == 0 }

// String renders the paper notation, e.g. "FT(64,2,1)".
func (t Topology) String() string { return fmt.Sprintf("FT(%d,%d,%d)", t.N*t.N, t.D, t.R) }

// Config describes a FastTrack network instance.
type Config struct {
	Topology Topology
	Variant  Variant
	// ExpressPipeline inserts this many extra register stages into every
	// express link (0 = single-cycle express, the paper's baseline). This
	// models the Stratix-10 Hyperflex discussion of §VII: pipelined
	// interconnect lets the NoC clock higher, but an express hop then
	// takes 1+ExpressPipeline cycles, trading end-to-end latency for
	// frequency.
	ExpressPipeline int
}

// Validate checks variant-specific constraints beyond NewTopology. The
// Inject variant confines packets to one lane for their whole flight, so an
// express packet deflected around a ring must land back on an aligned
// offset; that requires D | N.
func (c Config) Validate() error {
	if c.Variant == VariantInject && c.Topology.N%c.Topology.D != 0 {
		return fmt.Errorf("fasttrack: %s requires D | N (got D=%d, N=%d)",
			c.Variant, c.Topology.D, c.Topology.N)
	}
	if c.ExpressPipeline < 0 || c.ExpressPipeline > 8 {
		return fmt.Errorf("fasttrack: ExpressPipeline=%d out of range [0, 8]", c.ExpressPipeline)
	}
	return nil
}

// injectEligible reports whether, under the Inject variant, a packet from
// (x,y) with ring deltas (dx,dy) may be injected into the express plane.
// The whole flight — X ride, turn, Y ride, and the express exit tap — must
// stay inside the express network.
func (c Config) injectEligible(t Topology, x, y, dx, dy int) bool {
	if dx%t.D != 0 || dy%t.D != 0 {
		return false
	}
	if dx > 0 && !t.HasXExpress(x) {
		return false
	}
	// The turn router and the exit tap share this packet's row/column
	// residues; HasYExpress(y) covers them all (R | D).
	return t.HasYExpress(y)
}

// peCoordOf converts a PE index to its coordinate for an N-wide torus.
func peCoordOf(pe, n int) noc.Coord { return noc.PECoord(pe, n) }
