package fasttrack

import (
	"testing"

	"fasttrack/internal/noc"
)

// FuzzTopology throws arbitrary (N, D, R) at topology construction: invalid
// parameterizations must be rejected with an error (never a panic), and
// every accepted topology must satisfy the structural invariants — in
// particular that every express link lands on a router that carries express
// ports, so a packet on the express plane can never fall off the network.
func FuzzTopology(f *testing.F) {
	f.Add(8, 2, 1)
	f.Add(8, 2, 2)
	f.Add(16, 4, 2)
	f.Add(3, 1, 1)
	f.Add(0, 0, 0)
	f.Add(64, 31, 7)
	f.Fuzz(func(t *testing.T, n, d, r int) {
		n, d, r = n%64, d%64, r%64
		top, err := NewTopology(n, d, r)
		if err != nil {
			return // rejected without panicking: fine
		}
		if top.D < 1 || top.D > top.N/2 || top.R < 1 || top.D%top.R != 0 || top.N%top.R != 0 {
			t.Fatalf("accepted invalid topology %+v", top)
		}
		black, grey, white := top.RouterCounts()
		if black+grey+white != top.N*top.N {
			t.Fatalf("%s: router classes sum to %d, want %d", top, black+grey+white, top.N*top.N)
		}
		for x := 0; x < top.N; x++ {
			// Express links span D hops; both endpoints must carry express
			// ports (D ≡ 0 mod R keeps the braid aligned).
			if top.HasXExpress(x) && !top.HasXExpress((x+top.D)%top.N) {
				t.Fatalf("%s: X express link from col %d lands on plain router %d",
					top, x, (x+top.D)%top.N)
			}
			if top.HasYExpress(x) && !top.HasYExpress((x+top.D)%top.N) {
				t.Fatalf("%s: Y express link from row %d lands on plain router %d",
					top, x, (x+top.D)%top.N)
			}
			for y := 0; y < top.N; y++ {
				c := top.ClassAt(x, y)
				want := ClassWhite
				switch hx, hy := top.HasXExpress(x), top.HasYExpress(y); {
				case hx && hy:
					want = ClassBlack
				case hx:
					want = ClassGreyX
				case hy:
					want = ClassGreyY
				}
				if c != want {
					t.Fatalf("%s: ClassAt(%d,%d) = %v, want %v", top, x, y, c, want)
				}
			}
		}
		// Constructing and stepping the network must not panic either.
		if top.N <= 16 {
			nw, err := New(Config{Topology: top})
			if err != nil {
				t.Fatalf("%s: network construction failed: %v", top, err)
			}
			nw.Offer(0, noc.Packet{ID: 1, Src: noc.Coord{}, Dst: noc.Coord{X: top.N - 1, Y: top.N - 1}})
			for c := int64(0); c < 8; c++ {
				nw.Step(c)
			}
		}
	})
}
