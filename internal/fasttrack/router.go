package fasttrack

import (
	"fmt"

	"fasttrack/internal/noc"
)

// cand is one entry in an input's output-port preference list.
type cand struct {
	out uint8
	// deliver marks the NoC exit tap: the packet leaves through the named
	// driver but is handed to the client instead of the downstream link.
	deliver bool
	// misroute marks candidates that move the packet away from its
	// dimension-ordered path (true deflections, counted on the packet).
	misroute bool
}

// prefs is a fixed-capacity preference list (no per-packet allocation on the
// hot path). add deduplicates by output port so defensive tails never shadow
// a smarter earlier candidate.
type prefs struct {
	c    [8]cand
	n    int
	seen [numOuts]bool
}

func (p *prefs) add(out uint8, deliver, misroute bool) {
	if p.seen[out] {
		return
	}
	p.seen[out] = true
	p.c[p.n] = cand{out: out, deliver: deliver, misroute: misroute}
	p.n++
}

// arb holds the per-router, per-cycle arbitration state.
type arb struct {
	taken  [numOuts]bool
	exists [numOuts]bool
}

// route arbitrates one router for the current cycle. Inputs are processed in
// the paper's static priority order — WEx > NEx > WSh > NSh > PE — so
// express turning traffic preempts everything, X-ring traffic preempts
// Y-ring traffic, and client injection only uses ports left idle by
// in-flight packets (§IV-C).
func (nw *Network) route(x, y int, now int64) {
	t := nw.cfg.Topology
	i := y*nw.n + x
	a := arb{exists: [numOuts]bool{
		oESh: true,
		oSSh: true,
		oEEx: t.HasXExpress(x),
		oSEx: t.HasYExpress(y),
	}}

	// Inputs are inspected through pointers: a slot is 80 bytes and most
	// registers are empty most cycles, so value copies of the whole slot
	// dominated the router profile.
	if s := &nw.wExIn[i]; s.ok {
		nw.place(&a, i, noc.PortWEx, s.p, x, y)
	}
	if s := &nw.nExIn[i]; s.ok {
		nw.place(&a, i, noc.PortNEx, s.p, x, y)
	}
	if s := &nw.wShIn[i]; s.ok {
		nw.place(&a, i, noc.PortWSh, s.p, x, y)
	}
	if s := &nw.nShIn[i]; s.ok {
		nw.place(&a, i, noc.PortNSh, s.p, x, y)
	}
	nw.injectAt(&a, i, x, y, now)
}

// place assigns one in-flight input packet to an output following its
// preference list. Bufferless routers must never drop an in-flight packet;
// the priority discipline plus the recoverable emergency tails make the
// assignment total, so running out of ports is a router bug and panics.
func (nw *Network) place(a *arb, i int, port noc.Port, p noc.Packet, x, y int) {
	s0 := &nw.sh[0]
	pr := nw.prefsFor(port, p.Dst, x, y)
	for k := 0; k < pr.n; k++ {
		c := pr.c[k]
		if !a.exists[c.out] || a.taken[c.out] {
			continue
		}
		a.taken[c.out] = true
		if c.misroute {
			s0.counters.MisroutesByInput[port]++
			p.Deflections++
			if nw.obs != nil {
				nw.obs.OnDeflect(s0.now, i, port, &p)
			}
		} else if k > 0 {
			s0.counters.ExpressDeniedByInput[port]++
			if nw.obs != nil {
				nw.obs.OnExpressDenied(s0.now, i, port, &p)
			}
		}
		if c.deliver {
			nw.deliver(s0, p)
		} else {
			nw.outs[c.out][i] = slot{p: p, ok: true}
		}
		return
	}
	panic(fmt.Sprintf("fasttrack: router (%d,%d) overcommitted: input %v packet %v->%v has no free output",
		x, y, port, p.Src, p.Dst))
}

// prefsFor builds the output preference list for an in-flight packet bound
// for dst on the given input port at router (x, y).
//
// The lists implement the paper's rules: dimension-ordered routing with
// express links used only when the remaining offset is a multiple of D
// ("destination reachable entirely within the express network"), express→
// short transfers only at turns and exits, short→express upgrades on Full
// routers only, and the §IV-D livelock repertoire (deflected exit traffic
// may take either E port; deflected WSh may ride EEx home as a top-priority
// WEx). Each list ends in a recoverable emergency tail so the assignment is
// total: misrouted packets simply resume dimension-ordered routing, and a
// misaligned express packet pops off to the short lane at the next router.
func (nw *Network) prefsFor(port noc.Port, dst noc.Coord, x, y int) prefs {
	t := nw.cfg.Topology
	n := nw.n
	dx := noc.RingDelta(x, dst.X, n)
	dy := noc.RingDelta(y, dst.Y, n)
	full := nw.cfg.Variant == VariantFull

	// exAfterEast reports whether deflecting onto the X express link leaves
	// the packet express-aligned (able to ride express to its turn column).
	exAfterEast := func() bool {
		nd := dx - t.D
		if nd < 0 {
			nd += n
		}
		return nd%t.D == 0
	}

	var pr prefs
	express := port == noc.PortWEx || port == noc.PortNEx
	switch port {
	case noc.PortWEx:
		switch {
		case dx == 0 && dy == 0:
			// The NoC exit shares the SSh driver (as in Hoplite, §II), so a
			// router delivers at most one packet per cycle. The Inject
			// variant's express plane instead taps its own SEx driver —
			// required for lane isolation (no Ex→Sh crossing, Fig 9c).
			if full {
				pr.add(oSSh, true, false)
			} else {
				pr.add(oSEx, true, false)
				pr.add(oSSh, true, false)
			}
		case dx == 0:
			// Turn into the Y ring; stay express when the remaining Y
			// offset is express-aligned.
			if dy%t.D == 0 {
				pr.add(oSEx, false, false)
			}
			pr.add(oSSh, false, false)
		case dx%t.D == 0:
			pr.add(oEEx, false, false)
		default:
			// Misaligned express packet (deflection debris when D ∤ N):
			// pop off to the short lane, same direction.
			pr.add(oESh, false, false)
		}

	case noc.PortNEx:
		switch {
		case dx != 0 && full:
			// A misrouted packet resumes X-first routing.
			if dx%t.D == 0 {
				pr.add(oEEx, false, false)
			}
			pr.add(oESh, false, false)
		case dx == 0 && dy == 0:
			if full {
				pr.add(oSSh, true, false)
			} else {
				pr.add(oSEx, true, false)
			}
			// Exit denied: circle a ring and return with top priority
			// (§IV-D: N packets may take either E port).
			if exAfterEast() {
				pr.add(oEEx, false, true)
			}
			if full {
				pr.add(oESh, false, true)
			}
		case dy%t.D == 0:
			pr.add(oSEx, false, false)
			if exAfterEast() {
				pr.add(oEEx, false, true)
			}
			if full {
				pr.add(oESh, false, true)
			}
		default:
			// Misaligned: pop off downward (Full only; cannot arise under
			// Inject, which requires D | N).
			if full {
				pr.add(oSSh, false, false)
			}
		}

	case noc.PortWSh:
		switch {
		case dx == 0 && dy == 0:
			pr.add(oSSh, true, false)
			// Deflected at the exit: prefer the express ring back — the
			// packet returns as WEx, the top-priority port (§IV-D).
			if full && exAfterEast() {
				pr.add(oEEx, false, true)
			}
			pr.add(oESh, false, true)
		case dx == 0:
			// Turn. Full routers may upgrade onto the Y express lane.
			if full && dy%t.D == 0 {
				pr.add(oSEx, false, false)
			}
			pr.add(oSSh, false, false)
			if full && exAfterEast() {
				pr.add(oEEx, false, true)
			}
			pr.add(oESh, false, true)
		default:
			// Continue east; Full routers upgrade when aligned.
			if full && dx%t.D == 0 {
				pr.add(oEEx, false, false)
			}
			pr.add(oESh, false, false)
		}

	case noc.PortNSh:
		switch {
		case dx != 0:
			// Misrouted packet resumes X-first routing eastward.
			if full && dx%t.D == 0 {
				pr.add(oEEx, false, false)
			}
			pr.add(oESh, false, false)
		case dy == 0:
			pr.add(oSSh, true, false)
			// Prefer the express ring back: the packet returns as WEx, the
			// top-priority input, and cannot be denied twice (§IV-D).
			if full && exAfterEast() {
				pr.add(oEEx, false, true)
			}
			pr.add(oESh, false, true)
		default:
			if full && dy%t.D == 0 {
				pr.add(oSEx, false, false)
			}
			pr.add(oSSh, false, false)
			if full && exAfterEast() {
				pr.add(oEEx, false, true)
			}
			pr.add(oESh, false, true)
		}

	default:
		panic("fasttrack: prefsFor on non-input port " + port.String())
	}

	// Recoverable emergency tail. Full routers may spill onto any lane (a
	// misaligned express packet pops off at the next router; a misrouted
	// packet resumes DOR). Inject routers must stay in their lane, which is
	// total because each lane is a self-contained 2-in/2-out Hoplite plane.
	if full {
		pr.add(oESh, false, true)
		pr.add(oEEx, false, true)
		pr.add(oSSh, false, true)
		pr.add(oSEx, false, true)
	} else if express {
		pr.add(oEEx, false, true)
		pr.add(oSEx, false, true)
	} else {
		pr.add(oESh, false, true)
		pr.add(oSSh, false, true)
	}
	return pr
}

// injectAt arbitrates the PE offer at router (x, y) after all in-flight
// traffic has been placed. Injection never misroutes: if every acceptable
// first-hop port is busy the client stalls and retries (§IV-C: the PE port
// has the lowest priority because in-flight packets cannot wait).
func (nw *Network) injectAt(a *arb, i, x, y int, now int64) {
	s0 := &nw.sh[0]
	nw.accepted[i] = false
	off := &nw.offers[i]
	if !off.ok {
		return
	}
	off.ok = false

	t := nw.cfg.Topology
	p := off.p
	dx := noc.RingDelta(x, p.Dst.X, nw.n)
	dy := noc.RingDelta(y, p.Dst.Y, nw.n)

	var pr prefs
	switch {
	case dx == 0 && dy == 0:
		// Self-addressed packet: loops through the exit port.
		pr.add(oSSh, true, false)
	case nw.cfg.Variant == VariantInject:
		if nw.cfg.injectEligible(t, x, y, dx, dy) {
			// Lane choice is permanent in the Inject variant: express when
			// the lane is free, else commit to the short lane.
			if dx > 0 {
				pr.add(oEEx, false, false)
				pr.add(oESh, false, false)
			} else {
				pr.add(oSEx, false, false)
				pr.add(oSSh, false, false)
			}
		} else if dx > 0 {
			pr.add(oESh, false, false)
		} else {
			pr.add(oSSh, false, false)
		}
	default: // VariantFull
		if dx > 0 {
			if t.HasXExpress(x) && dx%t.D == 0 {
				pr.add(oEEx, false, false)
			}
			pr.add(oESh, false, false)
		} else {
			if t.HasYExpress(y) && dy%t.D == 0 {
				pr.add(oSEx, false, false)
			}
			pr.add(oSSh, false, false)
		}
	}

	for k := 0; k < pr.n; k++ {
		c := pr.c[k]
		if !a.exists[c.out] || a.taken[c.out] {
			continue
		}
		a.taken[c.out] = true
		if k > 0 {
			s0.counters.ExpressDeniedByInput[noc.PortPE]++
			if nw.obs != nil {
				nw.obs.OnExpressDenied(now, i, noc.PortPE, &p)
			}
		}
		p.Inject = now
		s0.inFlight++
		nw.accepted[i] = true
		s0.acceptedPEs = append(s0.acceptedPEs, i)
		if c.deliver {
			nw.deliver(s0, p)
		} else {
			nw.outs[c.out][i] = slot{p: p, ok: true}
		}
		return
	}
	s0.counters.InjectionStalls++
}

// routeSparse is the fast-path arbiter: identical decisions to route, but
// over pool indices — staying on a ring moves an int32 instead of copying
// an 80-byte slot — and with the latch fused in: granting an output writes
// the downstream next-cycle register directly (emitR).
func (nw *Network) routeSparse(sh *shardCtx, i, x, y int, now int64) {
	var a arb
	if tb := nw.tabs; tb != nil {
		a.exists = tb.exists[i]
	} else {
		t := nw.cfg.Topology
		a.exists = [numOuts]bool{
			oESh: true,
			oSSh: true,
			oEEx: t.HasXExpress(x),
			oSEx: t.HasYExpress(y),
		}
	}

	// Inputs are consumed (and cleared, so a router that goes idle does not
	// replay stale packets when it reactivates) as they are read.
	if r := nw.wExR[i]; r >= 0 {
		nw.wExR[i] = -1
		nw.placeR(sh, &a, i, noc.PortWEx, r, x, y)
	}
	if r := nw.nExR[i]; r >= 0 {
		nw.nExR[i] = -1
		nw.placeR(sh, &a, i, noc.PortNEx, r, x, y)
	}
	if r := nw.wShR[i]; r >= 0 {
		nw.wShR[i] = -1
		nw.placeR(sh, &a, i, noc.PortWSh, r, x, y)
	}
	if r := nw.nShR[i]; r >= 0 {
		nw.nShR[i] = -1
		nw.placeR(sh, &a, i, noc.PortNSh, r, x, y)
	}
	nw.injectAtR(sh, &a, i, x, y, now)
}

// placeR is place over a pool index. Batch instances replay the memoized
// preference list for (port, dx, dy) instead of rebuilding it per packet;
// the tables are constructed by calling prefsFor itself (see tables.go), so
// both branches walk identical lists.
func (nw *Network) placeR(sh *shardCtx, a *arb, i int, port noc.Port, r int32, x, y int) {
	p := &nw.pool[r]
	var pr *prefs
	if tb := nw.tabs; tb != nil {
		pr = &tb.in[port][delta(y, p.Dst.Y, nw.n)*nw.n+delta(x, p.Dst.X, nw.n)]
	} else {
		fresh := nw.prefsFor(port, p.Dst, x, y)
		pr = &fresh
	}
	for k := 0; k < pr.n; k++ {
		c := pr.c[k]
		if !a.exists[c.out] || a.taken[c.out] {
			continue
		}
		a.taken[c.out] = true
		if c.misroute {
			sh.counters.MisroutesByInput[port]++
			p.Deflections++
			if sh.obs != nil {
				sh.obs.OnDeflect(sh.now, i, port, p)
			}
		} else if k > 0 {
			sh.counters.ExpressDeniedByInput[port]++
			if sh.obs != nil {
				sh.obs.OnExpressDenied(sh.now, i, port, p)
			}
		}
		if c.deliver {
			nw.deliverIdx(sh, r)
		} else {
			nw.emitR(sh, c.out, r, i, x, y)
		}
		return
	}
	panic(fmt.Sprintf("fasttrack: router (%d,%d) overcommitted: input %v packet %v->%v has no free output",
		x, y, port, nw.pool[r].Src, nw.pool[r].Dst))
}

// emitR latches pool index r onto the downstream register for output out.
// The hop accounting the dense path does in its latch pass happens here, at
// grant time — totals and per-packet values at delivery are identical. A
// pipelined express grant parks in exPend/syPend for the pipe pass instead.
func (nw *Network) emitR(sh *shardCtx, out uint8, r int32, i, x, y int) {
	n, d := nw.n, nw.cfg.Topology.D
	switch out {
	case oESh:
		nw.pool[r].ShortHops++
		sh.counters.ShortTraversals++
		if sh.obs != nil {
			sh.obs.OnHop(sh.now, i, noc.PortESh, &nw.pool[r])
		}
		j := y*n + (x+1)%n
		nw.wShRN[j] = r
		sh.mark(j)
	case oSSh:
		nw.pool[r].ShortHops++
		sh.counters.ShortTraversals++
		if sh.obs != nil {
			sh.obs.OnHop(sh.now, i, noc.PortSSh, &nw.pool[r])
		}
		j := ((y+1)%n)*n + x
		nw.nShRN[j] = r
		sh.mark(j)
	case oEEx:
		nw.pool[r].ExpressHops++
		sh.counters.ExpressTraversals++
		if sh.obs != nil {
			sh.obs.OnExpressHop(sh.now, i, noc.PortEEx, &nw.pool[r])
		}
		if nw.xPipeR != nil {
			nw.exPend[i] = r
		} else {
			j := y*n + (x+d)%n
			nw.wExRN[j] = r
			sh.mark(j)
		}
	case oSEx:
		nw.pool[r].ExpressHops++
		sh.counters.ExpressTraversals++
		if sh.obs != nil {
			sh.obs.OnExpressHop(sh.now, i, noc.PortSEx, &nw.pool[r])
		}
		if nw.yPipeR != nil {
			nw.syPend[i] = r
		} else {
			j := ((y+d)%n)*n + x
			nw.nExRN[j] = r
			sh.mark(j)
		}
	}
}

// injectAtR is injectAt over the pool: the offered packet is copied into
// the pool only when an output is granted. accepted[i] is already false
// here — Step cleared every flag set last cycle via acceptedPEs.
func (nw *Network) injectAtR(sh *shardCtx, a *arb, i, x, y int, now int64) {
	off := &nw.offers[i]
	if !off.ok {
		return
	}
	off.ok = false

	dx := noc.RingDelta(x, off.p.Dst.X, nw.n)
	dy := noc.RingDelta(y, off.p.Dst.Y, nw.n)

	var pr *prefs
	if tb := nw.tabs; tb != nil {
		pr = &tb.inj[tb.class[i]][dy*nw.n+dx]
	} else {
		t := nw.cfg.Topology
		fresh := nw.injectPrefs(dx, dy, t.HasXExpress(x), t.HasYExpress(y))
		pr = &fresh
	}

	for k := 0; k < pr.n; k++ {
		c := pr.c[k]
		if !a.exists[c.out] || a.taken[c.out] {
			continue
		}
		a.taken[c.out] = true
		if k > 0 {
			sh.counters.ExpressDeniedByInput[noc.PortPE]++
			if sh.obs != nil {
				sh.obs.OnExpressDenied(now, i, noc.PortPE, &off.p)
			}
		}
		sh.inFlight++
		nw.accepted[i] = true
		sh.acceptedPEs = append(sh.acceptedPEs, i)
		if c.deliver {
			p := off.p
			p.Inject = now
			nw.deliver(sh, p)
		} else {
			r := nw.alloc(sh, off.p)
			nw.pool[r].Inject = now
			nw.emitR(sh, c.out, r, i, x, y)
		}
		return
	}
	sh.counters.InjectionStalls++
}
