package trace

// Builder accumulates events in topological order. Add returns the event's
// index for use as a dependency of later events.
//
// Builder is the in-memory Adder; Writer is the streaming one. Generators
// written against Adder (internal/workloads) produce either with the same
// emit code.
type Builder struct {
	t Trace
}

// Compile-time conformance: both event sinks satisfy Adder, both trace
// representations satisfy Source.
var (
	_ Adder  = (*Builder)(nil)
	_ Adder  = (*Writer)(nil)
	_ Source = (*Trace)(nil)
	_ Source = (*Reader)(nil)
)

// NewBuilder starts a trace for a pes-PE system.
func NewBuilder(name string, pes int) *Builder {
	return &Builder{t: Trace{Name: name, PEs: pes}}
}

// Add appends an event and returns its index. deps must reference earlier
// events.
func (b *Builder) Add(src, dst int, delay int32, deps ...int32) int32 {
	id := int32(len(b.t.Events))
	var ds []int32
	if len(deps) > 0 {
		ds = append(ds, deps...)
	}
	b.t.Events = append(b.t.Events, Event{Src: src, Dst: dst, Delay: delay, Deps: ds})
	return id
}

// Len returns the number of events added so far.
func (b *Builder) Len() int { return len(b.t.Events) }

// Build finalizes and validates the trace.
func (b *Builder) Build() (*Trace, error) {
	t := b.t
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}
