package trace

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"fasttrack/internal/xrand"
)

// TestFingerprintMatchesStdlibFNV pins the hand-rolled FNV-64a word helpers
// against hash/fnv over the identical byte stream.
func TestFingerprintMatchesStdlibFNV(t *testing.T) {
	tr := tinyTrace()
	h := fnv.New64a()
	var buf [8]byte
	word := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	io.WriteString(h, tr.Name)
	word(uint64(tr.PEs))
	for _, e := range tr.Events {
		word(uint64(e.Src))
		word(uint64(e.Dst))
		word(uint64(e.Delay))
		word(uint64(len(e.Deps)))
		for _, d := range e.Deps {
			word(uint64(d))
		}
	}
	word(uint64(len(tr.Events)))
	if got, want := tr.Fingerprint(), h.Sum64(); got != want {
		t.Fatalf("hand-rolled fingerprint %016x, stdlib fnv %016x", got, want)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, got) {
		t.Fatalf("round trip mismatch:\n%+v\n%+v", tr, got)
	}
	if got.Fingerprint() != tr.Fingerprint() {
		t.Fatal("fingerprint changed across round trip")
	}
}

// TestBinaryRoundTripProperty fuzzes random DAG traces through
// EncodeBinary/ReadBinary and through the text format, asserting all three
// representations agree.
func TestBinaryRoundTripProperty(t *testing.T) {
	rng := xrand.New(7)
	for iter := 0; iter < 80; iter++ {
		pes := 1 + rng.Intn(9)
		b := NewBuilder("fuzz/bin", pes)
		n := rng.Intn(60)
		for i := 0; i < n; i++ {
			var deps []int32
			for d := 0; d < i && len(deps) < 4; d++ {
				if rng.Bool(0.15) {
					deps = append(deps, int32(d))
				}
			}
			b.Add(rng.Intn(pes), rng.Intn(pes), int32(rng.Intn(9)), deps...)
		}
		tr, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		var bin, txt bytes.Buffer
		if err := EncodeBinary(&bin, tr); err != nil {
			t.Fatal(err)
		}
		if err := tr.Write(&txt); err != nil {
			t.Fatal(err)
		}
		fromBin, err := ReadBinary(bytes.NewReader(bin.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		fromTxt, err := Read(&txt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tr, fromBin) {
			t.Fatalf("iter %d: binary round trip mismatch", iter)
		}
		if fromTxt.Fingerprint() != fromBin.Fingerprint() {
			t.Fatalf("iter %d: text fp %016x != binary fp %016x", iter, fromTxt.Fingerprint(), fromBin.Fingerprint())
		}
	}
}

// TestWriterMatchesEncodeBinary: the streaming Writer (count and fingerprint
// unknown until Close, backpatched) must produce a byte-identical file to
// EncodeBinary, and its header fingerprint must equal the in-memory
// Trace.Fingerprint — that equality is what makes runner cache keys match
// between recorded and freshly-generated traces.
func TestWriterMatchesEncodeBinary(t *testing.T) {
	tr := tinyTrace()
	path := filepath.Join(t.TempDir(), "w.ftt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, tr.Name, tr.PEs)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range tr.Events {
		w.Add(e.Src, e.Dst, e.Delay, e.Deps...)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	streamed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var direct bytes.Buffer
	if err := EncodeBinary(&direct, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(streamed, direct.Bytes()) {
		t.Fatal("streaming Writer and EncodeBinary produced different bytes")
	}
	if w.Header().Fingerprint != tr.Fingerprint() {
		t.Fatalf("writer fingerprint %016x != in-memory %016x", w.Header().Fingerprint, tr.Fingerprint())
	}
	if w.Header().Events != int64(len(tr.Events)) {
		t.Fatalf("writer count %d != %d", w.Header().Events, len(tr.Events))
	}
}

func TestWriterRejectsInvalid(t *testing.T) {
	var sink seekBuffer
	if _, err := NewWriter(&sink, "has space", 4); err == nil {
		t.Error("whitespace name should be rejected")
	}
	if _, err := NewWriter(&sink, "", 4); err == nil {
		t.Error("empty name should be rejected")
	}
	if _, err := NewWriter(&sink, "x", 0); err == nil {
		t.Error("zero PEs should be rejected")
	}
	w, err := NewWriter(&sink, "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(0, 9, 0) // endpoint out of range
	if err := w.Close(); err == nil {
		t.Error("out-of-range endpoint should fail Close")
	}
	sink = seekBuffer{}
	w, err = NewWriter(&sink, "x", 4)
	if err != nil {
		t.Fatal(err)
	}
	w.Add(0, 1, 0, 0) // forward/self dependency
	if err := w.Close(); err == nil {
		t.Error("forward dependency should fail Close")
	}
}

// seekBuffer is an in-memory io.WriteSeeker for Writer tests.
type seekBuffer struct {
	b   []byte
	off int64
}

func (s *seekBuffer) Write(p []byte) (int, error) {
	if need := s.off + int64(len(p)); need > int64(len(s.b)) {
		s.b = append(s.b, make([]byte, need-int64(len(s.b)))...)
	}
	copy(s.b[s.off:], p)
	s.off += int64(len(p))
	return len(p), nil
}

func (s *seekBuffer) Seek(off int64, whence int) (int64, error) {
	switch whence {
	case io.SeekStart:
		s.off = off
	case io.SeekCurrent:
		s.off += off
	case io.SeekEnd:
		s.off = int64(len(s.b)) + off
	}
	return s.off, nil
}

func TestReaderRejectsHostileInput(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := map[string][]byte{
		"empty":            {},
		"bad magic":        append([]byte("NOPE"), good[4:]...),
		"truncated header": good[:10],
		"truncated events": good[:len(good)-3],
		"trailing data":    append(append([]byte{}, good...), 0x01),
	}
	// Corrupt one event byte: fingerprint check must catch it even when the
	// varints still decode in-range.
	flip := append([]byte{}, good...)
	flip[len(flip)-1] ^= 0x01
	cases["bit flip"] = flip
	// Zeroed PE count.
	zpe := append([]byte{}, good...)
	for i := 20; i < 24; i++ {
		zpe[i] = 0
	}
	cases["zero PEs"] = zpe

	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadBinary should fail", name)
		}
	}
}

func TestReaderHeaderWithoutScan(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// Hand NewReader only the header bytes plus one event: Header must be
	// complete and correct without the reader ever seeing the full stream.
	rd, err := NewReader(bytes.NewReader(buf.Bytes()[:fttHeaderLen+len(tr.Name)+2]))
	if err != nil {
		t.Fatal(err)
	}
	want := tr.Header()
	if rd.Header() != want {
		t.Fatalf("header %+v, want %+v", rd.Header(), want)
	}
}

func TestReaderReiteration(t *testing.T) {
	tr := tinyTrace()
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	// bytes.Reader is an io.ReaderAt: many cursors allowed.
	rd, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 3; round++ {
		cur, err := rd.Open()
		if err != nil {
			t.Fatal(err)
		}
		var e Event
		n := 0
		for {
			ok, err := cur.Next(&e)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				break
			}
			n++
		}
		if n != len(tr.Events) {
			t.Fatalf("round %d: %d events, want %d", round, n, len(tr.Events))
		}
	}
	// A pure stream (no ReaderAt) is one-shot.
	oneShot, err := NewReader(io.MultiReader(bytes.NewReader(buf.Bytes())))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := oneShot.Open(); err != nil {
		t.Fatal(err)
	}
	if _, err := oneShot.Open(); err == nil {
		t.Fatal("second Open on a one-shot stream should fail")
	}
}

// FuzzReadBinary: the decoder must never panic and never return a trace
// that fails Validate, no matter the input bytes.
func FuzzReadBinary(f *testing.F) {
	tr := tinyTrace()
	var buf bytes.Buffer
	EncodeBinary(&buf, tr)
	f.Add(buf.Bytes())
	f.Add([]byte(fttMagic))
	f.Add([]byte{})
	long := append([]byte{}, buf.Bytes()...)
	long[4] = 0xff // inflate declared count
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := got.Validate(); verr != nil {
			t.Fatalf("decoded trace fails Validate: %v", verr)
		}
		// A successfully decoded trace must re-encode to an equal trace
		// (canonical round trip).
		var out bytes.Buffer
		if err := EncodeBinary(&out, got); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		again, err := ReadBinary(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if !reflect.DeepEqual(got, again) {
			t.Fatal("re-encoded trace differs")
		}
	})
}
