package trace

import (
	"bytes"
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"fasttrack/internal/noc"
	"fasttrack/internal/xrand"
)

// replayLog drives a workload on an instant-delivery network (every offered
// packet injected and delivered the same cycle) and returns the sequence of
// (cycle, pe, event) injections — a complete observable schedule, so two
// workloads with equal logs are interchangeable to the engine.
type replayEvent struct {
	cycle int64
	pe    int
	ev    int32
}

type replayable interface {
	Tick(now int64)
	Pending(pe int, now int64) (noc.Packet, bool)
	Injected(pe int, now int64)
	Delivered(p noc.Packet, now int64)
	Done() bool
}

func replayInstant(t *testing.T, w replayable, pes int, maxCycles int64) []replayEvent {
	t.Helper()
	var log []replayEvent
	for now := int64(0); !w.Done(); now++ {
		if now > maxCycles {
			t.Fatalf("replay did not finish within %d cycles", maxCycles)
		}
		w.Tick(now)
		for pe := 0; pe < pes; pe++ {
			for {
				p, ok := w.Pending(pe, now)
				if !ok {
					break
				}
				log = append(log, replayEvent{cycle: now, pe: pe, ev: p.Event})
				w.Injected(pe, now)
				w.Delivered(p, now)
			}
		}
	}
	return log
}

func randomDAG(t *testing.T, seed uint64, pes, n int) *Trace {
	t.Helper()
	rng := xrand.New(seed)
	b := NewBuilder("stream/dag", pes)
	for i := 0; i < n; i++ {
		var deps []int32
		for d := i - 1; d >= 0 && len(deps) < 3; d-- {
			if rng.Bool(0.25) {
				deps = append(deps, int32(d))
			}
		}
		b.Add(rng.Intn(pes), rng.Intn(pes), int32(rng.Intn(6)), deps...)
	}
	tr, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestStreamMatchesWorkload: with a non-binding window the streaming replay
// must produce the exact injection schedule of the in-memory Workload, on
// both the in-memory Source and the binary Reader.
func TestStreamMatchesWorkload(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		tr := randomDAG(t, seed, 4, 120)
		wl, err := NewWorkload(tr, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		want := replayInstant(t, wl, 4, 10000)

		var buf bytes.Buffer
		if err := EncodeBinary(&buf, tr); err != nil {
			t.Fatal(err)
		}
		for _, src := range []Source{tr, mustReader(t, buf.Bytes())} {
			st, err := NewStream(src, 2, 2, StreamOptions{})
			if err != nil {
				t.Fatal(err)
			}
			got := replayInstant(t, st, 4, 10000)
			if err := st.Err(); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d: %d injections, want %d", seed, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d: injection %d = %+v, want %+v", seed, i, got[i], want[i])
				}
			}
			if st.Completed() != len(tr.Events) {
				t.Fatalf("seed %d: completed %d of %d", seed, st.Completed(), len(tr.Events))
			}
		}
	}
}

func mustReader(t *testing.T, data []byte) *Reader {
	t.Helper()
	rd, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

// TestStreamSmallWindow: a binding window must still complete every event
// and never offer an event before its dependencies completed — only timing
// may shift (read backpressure).
func TestStreamSmallWindow(t *testing.T) {
	tr := randomDAG(t, 11, 4, 200)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	for _, window := range []int{1, 2, 7, 32} {
		st, err := NewStream(mustReader(t, buf.Bytes()), 2, 2, StreamOptions{Window: window})
		if err != nil {
			t.Fatal(err)
		}
		completed := make([]bool, len(tr.Events))
		var now int64
		for ; !st.Done(); now++ {
			if now > 100000 {
				t.Fatalf("window %d: stalled", window)
			}
			st.Tick(now)
			for pe := 0; pe < 4; pe++ {
				for {
					p, ok := st.Pending(pe, now)
					if !ok {
						break
					}
					for _, d := range tr.Events[p.Event].Deps {
						if !completed[d] && tr.Events[d].Src != tr.Events[d].Dst {
							t.Fatalf("window %d: event %d offered before dep %d", window, p.Event, d)
						}
					}
					st.Injected(pe, now)
					completed[p.Event] = true
					st.Delivered(p, now)
				}
			}
			// Self events retire inside Tick; account for them.
			for i, e := range tr.Events {
				if e.Src == e.Dst {
					completed[i] = true
				}
			}
		}
		if err := st.Err(); err != nil {
			t.Fatal(err)
		}
		if st.Completed() != len(tr.Events) {
			t.Fatalf("window %d: completed %d of %d", window, st.Completed(), len(tr.Events))
		}
	}
}

func TestStreamRejectsGeometryMismatch(t *testing.T) {
	tr := randomDAG(t, 3, 4, 10)
	if _, err := NewStream(tr, 4, 4, StreamOptions{}); err == nil {
		t.Error("PE mismatch should be rejected")
	}
}

// TestStreamTruncatedSource: a source that ends before its declared event
// count must surface an error through Err, not hang or silently succeed.
func TestStreamTruncatedSource(t *testing.T) {
	tr := randomDAG(t, 9, 4, 400)
	var buf bytes.Buffer
	if err := EncodeBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()-20]
	st, err := NewStream(mustReader(t, cut), 2, 2, StreamOptions{Window: 16})
	if err == nil {
		// Truncation may only surface once reading reaches the cut.
		for now := int64(0); !st.Done() && now < 100000; now++ {
			st.Tick(now)
			for pe := 0; pe < 4; pe++ {
				if p, ok := st.Pending(pe, now); ok {
					st.Injected(pe, now)
					st.Delivered(p, now)
				}
			}
		}
		err = st.Err()
	}
	if err == nil {
		t.Fatal("truncated source should fail")
	}
}

// writeChain streams a chain-shaped trace (event i depends on i-1) of n
// events to path without materializing it.
func writeChain(t testing.TB, path string, pes, n int) Header {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWriter(f, "chain/bench", pes)
	if err != nil {
		t.Fatal(err)
	}
	prev := int32(-1)
	for i := 0; i < n; i++ {
		src := i % pes
		dst := (i + 1) % pes
		if prev < 0 {
			prev = w.Add(src, dst, 0)
		} else {
			prev = w.Add(src, dst, 0, prev)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return w.Header()
}

// TestStreamConstantMemory is the allocation gate for the constant-memory
// claim: replaying a trace 64× longer must not allocate meaningfully more
// than replaying the short one, because replay state is O(window), not
// O(events). (A materializing path would allocate ~56 bytes/event — the
// long trace would show up as tens of megabytes here.)
func TestStreamConstantMemory(t *testing.T) {
	dir := t.TempDir()
	const pes = 4
	short := filepath.Join(dir, "short.ftt")
	long := filepath.Join(dir, "long.ftt")
	writeChain(t, short, pes, 16_000)
	writeChain(t, long, pes, 1_024_000)

	replayAllocs := func(path string) uint64 {
		rd, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		st, err := NewStream(rd, pes, 1, StreamOptions{Window: 4096})
		if err != nil {
			t.Fatal(err)
		}
		for now := int64(0); !st.Done(); now++ {
			st.Tick(now)
			for pe := 0; pe < pes; pe++ {
				for {
					p, ok := st.Pending(pe, now)
					if !ok {
						break
					}
					st.Injected(pe, now)
					st.Delivered(p, now)
				}
			}
		}
		if err := st.Err(); err != nil {
			t.Fatal(err)
		}
		if st.Completed() != int(rd.Header().Events) {
			t.Fatalf("completed %d of %d", st.Completed(), rd.Header().Events)
		}
		runtime.ReadMemStats(&after)
		return after.TotalAlloc - before.TotalAlloc
	}

	shortAllocs := replayAllocs(short)
	longAllocs := replayAllocs(long)
	// Allow generous slack for runtime noise; the point is that 64× the
	// events must not mean anywhere near 64× the allocation.
	if longAllocs > shortAllocs*4+4<<20 {
		t.Fatalf("streaming replay allocation scales with events: %d bytes for 16k events, %d for 1M", shortAllocs, longAllocs)
	}
}

// BenchmarkReplayStreaming measures end-to-end streaming replay (decode +
// dependency-driven scheduling on an instant-delivery drain) and reports
// the wire density. The allocation gate lives in TestStreamConstantMemory.
func BenchmarkReplayStreaming(b *testing.B) {
	const pes, n = 4, 200_000
	path := filepath.Join(b.TempDir(), "bench.ftt")
	writeChain(b, path, pes, n)
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	rd, err := Open(path)
	if err != nil {
		b.Fatal(err)
	}
	defer rd.Close()
	b.ReportAllocs()
	b.SetBytes(fi.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := NewStream(rd, pes, 1, StreamOptions{Window: 4096})
		if err != nil {
			b.Fatal(err)
		}
		for now := int64(0); !st.Done(); now++ {
			st.Tick(now)
			for pe := 0; pe < pes; pe++ {
				for {
					p, ok := st.Pending(pe, now)
					if !ok {
						break
					}
					st.Injected(pe, now)
					st.Delivered(p, now)
				}
			}
		}
		if err := st.Err(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(fi.Size())/float64(n), "bytes/event")
}
