// Package trace defines the application communication trace format used by
// the paper's accelerator case studies (§VI, Fig 15) and a sim.Workload
// that replays traces with dependency-driven injection: an event's packet
// is generated only after all the events it depends on have been delivered,
// which is what makes the Token LU dataflow workloads latency-bound.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
	"unicode"
)

// Event is one message of a trace.
type Event struct {
	// Src and Dst are PE indices on the target network.
	Src, Dst int
	// Deps lists event indices that must be delivered before this event's
	// packet can be generated at Src.
	Deps []int32
	// Delay is PE compute time in cycles between the last dependency
	// arriving (or simulation start for root events) and the packet being
	// ready to inject.
	Delay int32
}

// Trace is an ordered list of events over a logical PE grid.
type Trace struct {
	// Name labels the workload (e.g. "spmv/circuit-large").
	Name string
	// PEs is the number of logical PEs the trace addresses (0..PEs-1).
	PEs int
	// Events holds the messages; Deps index into this slice.
	Events []Event
}

// Fingerprint returns a stable 64-bit content hash over the trace's name,
// PE count and every event (endpoints, delay, dependencies). The sweep
// result cache (internal/runner) keys trace simulations on it, so two
// generator invocations that produce the same trace share one cache entry
// and any change to the generated events invalidates stale results.
//
// The event count is hashed after the events, not before: the streaming
// FTT1 Writer computes the same fingerprint incrementally while emitting a
// trace whose length it does not know up front, and a recorded trace must
// share cache entries with its in-memory twin.
func (t *Trace) Fingerprint() uint64 {
	h := fpSeed(t.Name, t.PEs)
	for i := range t.Events {
		h = fpEvent(h, &t.Events[i])
	}
	return fpFinish(h, int64(len(t.Events)))
}

// The fingerprint is FNV-64a over little-endian 64-bit words (hand-rolled so
// the per-event streaming paths hash without an interface call per word;
// TestFingerprintMatchesStdlibFNV pins equivalence with hash/fnv).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fpWord(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = (h ^ (v & 0xff)) * fnvPrime64
		v >>= 8
	}
	return h
}

// fpSeed starts a fingerprint over the trace header fields.
func fpSeed(name string, pes int) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(name); i++ {
		h = (h ^ uint64(name[i])) * fnvPrime64
	}
	return fpWord(h, uint64(pes))
}

// fpEvent folds one event into a running fingerprint.
func fpEvent(h uint64, e *Event) uint64 {
	h = fpWord(h, uint64(e.Src))
	h = fpWord(h, uint64(e.Dst))
	h = fpWord(h, uint64(e.Delay))
	h = fpWord(h, uint64(len(e.Deps)))
	for _, d := range e.Deps {
		h = fpWord(h, uint64(d))
	}
	return h
}

// fpFinish folds the trailing event count in and returns the fingerprint.
func fpFinish(h uint64, events int64) uint64 {
	return fpWord(h, uint64(events))
}

// Validate checks internal consistency: PE indices in range, dependency
// indices valid and strictly smaller than the dependent (the trace is a
// DAG in topological order).
func (t *Trace) Validate() error {
	if t.PEs <= 0 {
		return fmt.Errorf("trace %q: no PEs", t.Name)
	}
	for i, e := range t.Events {
		if e.Src < 0 || e.Src >= t.PEs || e.Dst < 0 || e.Dst >= t.PEs {
			return fmt.Errorf("trace %q: event %d endpoints (%d->%d) out of range [0,%d)",
				t.Name, i, e.Src, e.Dst, t.PEs)
		}
		if e.Delay < 0 {
			return fmt.Errorf("trace %q: event %d has negative delay", t.Name, i)
		}
		for _, d := range e.Deps {
			if d < 0 || int(d) >= i {
				return fmt.Errorf("trace %q: event %d depends on %d (must be in [0,%d))",
					t.Name, i, d, i)
			}
		}
	}
	return nil
}

// Stats summarizes a trace's shape.
type Stats struct {
	Events      int
	SelfEvents  int // src == dst (no network traffic)
	MaxFanIn    int
	CritPathLen int // longest dependency chain in events
	AvgDistance float64
}

// ComputeStats derives summary statistics for a trace laid out on a w×h
// torus (for the forward ring distance metric).
func (t *Trace) ComputeStats(w, h int) Stats {
	s := Stats{Events: len(t.Events)}
	depth := make([]int, len(t.Events))
	var distSum float64
	for i, e := range t.Events {
		if e.Src == e.Dst {
			s.SelfEvents++
		}
		if len(e.Deps) > s.MaxFanIn {
			s.MaxFanIn = len(e.Deps)
		}
		d := 1
		for _, dep := range e.Deps {
			if depth[dep]+1 > d {
				d = depth[dep] + 1
			}
		}
		depth[i] = d
		if d > s.CritPathLen {
			s.CritPathLen = d
		}
		sx, sy := e.Src%w, e.Src/w
		dx, dy := e.Dst%w, e.Dst/w
		distSum += float64(((dx-sx)%w+w)%w + ((dy-sy)%h+h)%h)
	}
	if len(t.Events) > 0 {
		s.AvgDistance = distSum / float64(len(t.Events))
	}
	return s
}

// CheckName reports whether name can label a trace in every serialization.
// The text header is space-delimited, so whitespace anywhere in the name
// would shift the PE-count and event-count fields on Read — the name is
// rejected up front rather than written corrupted. The binary format is
// length-prefixed and does not need the restriction, but enforces it too so
// every FTT1 file converts losslessly to text.
func CheckName(name string) error {
	if name == "" {
		return fmt.Errorf("trace: empty name")
	}
	for _, r := range name {
		if unicode.IsSpace(r) {
			return fmt.Errorf("trace: name %q contains whitespace", name)
		}
	}
	return nil
}

// Write serializes the trace in a line-oriented text format:
//
//	trace <name> <pes> <events>
//	<src> <dst> <delay> [dep ...]
//
// Names containing whitespace are rejected (see CheckName): the header line
// is space-delimited and a spaced name would round-trip corrupted.
func (t *Trace) Write(w io.Writer) error {
	if err := CheckName(t.Name); err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace %s %d %d\n", t.Name, t.PEs, len(t.Events))
	for _, e := range t.Events {
		fmt.Fprintf(bw, "%d %d %d", e.Src, e.Dst, e.Delay)
		for _, d := range e.Deps {
			fmt.Fprintf(bw, " %d", d)
		}
		fmt.Fprintln(bw)
	}
	return bw.Flush()
}

// Read parses the format produced by Write.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("trace: empty input")
	}
	var t Trace
	var n int
	header := strings.Fields(sc.Text())
	if len(header) != 4 || header[0] != "trace" {
		return nil, fmt.Errorf("trace: bad header %q", sc.Text())
	}
	t.Name = header[1]
	var err error
	if t.PEs, err = strconv.Atoi(header[2]); err != nil {
		return nil, fmt.Errorf("trace: bad PE count: %w", err)
	}
	if n, err = strconv.Atoi(header[3]); err != nil {
		return nil, fmt.Errorf("trace: bad event count: %w", err)
	}
	t.Events = make([]Event, 0, n)
	for i := 0; i < n; i++ {
		if !sc.Scan() {
			return nil, fmt.Errorf("trace: truncated at event %d of %d", i, n)
		}
		f := strings.Fields(sc.Text())
		if len(f) < 3 {
			return nil, fmt.Errorf("trace: event %d: too few fields", i)
		}
		var e Event
		if e.Src, err = strconv.Atoi(f[0]); err != nil {
			return nil, fmt.Errorf("trace: event %d src: %w", i, err)
		}
		if e.Dst, err = strconv.Atoi(f[1]); err != nil {
			return nil, fmt.Errorf("trace: event %d dst: %w", i, err)
		}
		d64, err := strconv.ParseInt(f[2], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("trace: event %d delay: %w", i, err)
		}
		e.Delay = int32(d64)
		for _, df := range f[3:] {
			dep, err := strconv.ParseInt(df, 10, 32)
			if err != nil {
				return nil, fmt.Errorf("trace: event %d dep: %w", i, err)
			}
			e.Deps = append(e.Deps, int32(dep))
		}
		t.Events = append(t.Events, e)
	}
	// The declared event count is a contract, not a hint: trailing non-empty
	// input means the header lies about the trace (or two traces were
	// concatenated), and silently ignoring it would let a corrupted file
	// replay as a shorter workload. Same hostile-input posture as
	// cliflags.DecodeJobSpec.
	for sc.Scan() {
		if strings.TrimSpace(sc.Text()) != "" {
			return nil, fmt.Errorf("trace: trailing data after %d declared events: %q", n, sc.Text())
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return &t, t.Validate()
}
