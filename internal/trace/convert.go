package trace

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// OpenFile opens path as a trace Source, sniffing the format: an FTT1
// binary file opens as a streaming *Reader (constant-memory replay), any
// other content parses as a text trace into an in-memory *Trace. The
// returned closer releases the file handle (a no-op for text traces, which
// are fully read before returning).
func OpenFile(path string) (Source, io.Closer, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	var magic [len(fttMagic)]byte
	n, _ := io.ReadFull(f, magic[:])
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	if n == len(fttMagic) && string(magic[:]) == fttMagic {
		rd, err := NewReader(f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		rd.closer = f
		return rd, rd, nil
	}
	defer f.Close()
	tr, err := Read(f)
	if err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nopCloser{}, nil
}

type nopCloser struct{}

func (nopCloser) Close() error { return nil }

// WriteText streams src to w in the text format of (*Trace).Write without
// materializing the trace — the decode half of a binary→text conversion.
func WriteText(w io.Writer, src Source) error {
	hdr := src.Header()
	if err := CheckName(hdr.Name); err != nil {
		return err
	}
	cur, err := src.Open()
	if err != nil {
		return err
	}
	defer cur.Close()
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "trace %s %d %d\n", hdr.Name, hdr.PEs, hdr.Events)
	var e Event
	for {
		ok, err := cur.Next(&e)
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		fmt.Fprintf(bw, "%d %d %d", e.Src, e.Dst, e.Delay)
		for _, d := range e.Deps {
			fmt.Fprintf(bw, " %d", d)
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// EncodeBinaryFrom streams src to ws as an FTT1 file — the record half of a
// text↔binary conversion. The source's events pass straight through the
// streaming Writer, so memory stays O(1) in the trace length and the
// resulting header fingerprint equals the source's.
func EncodeBinaryFrom(ws io.WriteSeeker, src Source) (Header, error) {
	hdr := src.Header()
	w, err := NewWriter(ws, hdr.Name, hdr.PEs)
	if err != nil {
		return Header{}, err
	}
	cur, err := src.Open()
	if err != nil {
		return Header{}, err
	}
	defer cur.Close()
	var e Event
	for {
		ok, err := cur.Next(&e)
		if err != nil {
			return Header{}, err
		}
		if !ok {
			break
		}
		w.Add(e.Src, e.Dst, e.Delay, e.Deps...)
	}
	if err := w.Close(); err != nil {
		return Header{}, err
	}
	return w.Header(), nil
}
