package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// FTT1 is the compact binary trace format ("FastTrack Trace, version 1").
//
// Header (little-endian, fixed offsets so a streaming Writer can backpatch
// the two fields it cannot know until the last event):
//
//	[0:4)   magic "FTT1"
//	[4:12)  uint64 event count
//	[12:20) uint64 content fingerprint (Trace.Fingerprint algorithm)
//	[20:24) uint32 PE count
//	[24:26) uint16 name length
//	[26:..) name bytes (UTF-8, no whitespace — see CheckName)
//
// Events follow as unsigned varints, one record per event i:
//
//	src dst delay ndeps depDelta*
//
// where each depDelta is i-dep (always ≥ 1 because the trace is a DAG in
// topological order). Deltas, not absolute indices: dependencies point at
// recent events in every generator this repo has (barriers one round back,
// tokens one column back), so deltas stay in the 1–2 varint-byte range while
// absolute indices would grow with the trace. A typical event is 5–8 bytes
// against ~50 in memory.
const (
	fttMagic       = "FTT1"
	fttHeaderLen   = 26
	fttCountOff    = 4
	fttMaxName     = math.MaxUint16
	fttMaxPEs      = 1 << 26 // 8192×8192 torus; rejects garbage headers early
	fttMaxEvents   = math.MaxInt32 - 1
	fttDepPrealloc = 64 // decoder dep-buffer seed; grows to the real fan-in
)

// Writer streams events into an FTT1 file. It implements Adder, so the
// internal/workloads generators emit into it exactly as they emit into a
// Builder — but with O(1) memory: events are varint-encoded into a buffered
// chunk as they arrive, the fingerprint is folded incrementally, and Close
// backpatches the count and fingerprint into the fixed-offset header. The
// destination must support Seek for that final patch (os.File does).
//
// Validation failures (endpoint out of range, forward dependency) make the
// Writer sticky-fail: subsequent Adds are no-ops and Close reports the first
// error, mirroring how Builder defers validation to Build.
type Writer struct {
	ws     io.WriteSeeker
	bw     *bufio.Writer
	pes    int
	n      int64
	fp     uint64
	err    error
	closed bool
	hdr    Header
	buf    []byte // per-event encode scratch, reused (grows to the max fan-in)
}

// NewWriter begins an FTT1 stream for a pes-PE trace named name. The header
// is written immediately with zeroed count/fingerprint; Close patches them.
func NewWriter(ws io.WriteSeeker, name string, pes int) (*Writer, error) {
	if err := CheckName(name); err != nil {
		return nil, err
	}
	if len(name) > fttMaxName {
		return nil, fmt.Errorf("trace: name %d bytes long (max %d)", len(name), fttMaxName)
	}
	if pes <= 0 || pes > fttMaxPEs {
		return nil, fmt.Errorf("trace: PE count %d out of range [1,%d]", pes, fttMaxPEs)
	}
	w := &Writer{
		ws:  ws,
		bw:  bufio.NewWriterSize(ws, 1<<16),
		pes: pes,
		fp:  fpSeed(name, pes),
		hdr: Header{Name: name, PEs: pes},
	}
	var hdr [fttHeaderLen]byte
	copy(hdr[:4], fttMagic)
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(pes))
	binary.LittleEndian.PutUint16(hdr[24:26], uint16(len(name)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		return nil, err
	}
	if _, err := w.bw.WriteString(name); err != nil {
		return nil, err
	}
	return w, nil
}

// Add implements Adder: append one event to the stream.
func (w *Writer) Add(src, dst int, delay int32, deps ...int32) int32 {
	id := int32(w.n)
	if w.err != nil || w.closed {
		return id
	}
	switch {
	case w.n >= fttMaxEvents:
		w.fail(fmt.Errorf("trace: writer overflows %d events", int64(fttMaxEvents)))
	case src < 0 || src >= w.pes || dst < 0 || dst >= w.pes:
		w.fail(fmt.Errorf("trace: event %d endpoints (%d->%d) out of range [0,%d)", w.n, src, dst, w.pes))
	case delay < 0:
		w.fail(fmt.Errorf("trace: event %d has negative delay", w.n))
	}
	for _, d := range deps {
		if w.err != nil {
			return id
		}
		if d < 0 || int64(d) >= w.n {
			w.fail(fmt.Errorf("trace: event %d depends on %d (must be in [0,%d))", w.n, d, w.n))
		}
	}
	if w.err != nil {
		return id
	}
	b := w.buf[:0]
	b = binary.AppendUvarint(b, uint64(src))
	b = binary.AppendUvarint(b, uint64(dst))
	b = binary.AppendUvarint(b, uint64(delay))
	b = binary.AppendUvarint(b, uint64(len(deps)))
	h := w.fp
	h = fpWord(h, uint64(src))
	h = fpWord(h, uint64(dst))
	h = fpWord(h, uint64(delay))
	h = fpWord(h, uint64(len(deps)))
	for _, d := range deps {
		b = binary.AppendUvarint(b, uint64(w.n)-uint64(d))
		h = fpWord(h, uint64(d))
	}
	w.buf = b[:0]
	if _, err := w.bw.Write(b); err != nil {
		w.fail(err)
		return id
	}
	w.fp = h
	w.n++
	return id
}

// Len implements Adder.
func (w *Writer) Len() int { return int(w.n) }

// PEs returns the writer's PE count (generators assert geometry with it).
func (w *Writer) PEs() int { return w.pes }

// Err returns the first validation or I/O error, if any.
func (w *Writer) Err() error { return w.err }

func (w *Writer) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Close flushes the event stream and backpatches the header with the final
// event count and fingerprint. The Writer is unusable afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return w.err
	}
	w.closed = true
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.fail(err)
		return err
	}
	w.hdr.Events = w.n
	w.hdr.Fingerprint = fpFinish(w.fp, w.n)
	var patch [16]byte
	binary.LittleEndian.PutUint64(patch[0:8], uint64(w.n))
	binary.LittleEndian.PutUint64(patch[8:16], w.hdr.Fingerprint)
	if _, err := w.ws.Seek(fttCountOff, io.SeekStart); err != nil {
		w.fail(err)
		return err
	}
	if _, err := w.ws.Write(patch[:]); err != nil {
		w.fail(err)
		return err
	}
	if _, err := w.ws.Seek(0, io.SeekEnd); err != nil {
		w.fail(err)
		return err
	}
	return nil
}

// Header returns the finalized trace identity. Valid only after Close.
func (w *Writer) Header() Header { return w.hdr }

// Reader is a Source over an FTT1 stream. NewReader parses and validates the
// header eagerly — identity (and therefore runner cache keys) costs a few
// dozen bytes of input, never an event scan. Events decode lazily through
// cursors in constant memory: a cursor holds one bufio chunk and one
// dependency buffer regardless of trace length.
//
// When the underlying reader is an io.ReaderAt (os.File, bytes.Reader), Open
// may be called any number of times, concurrently — each cursor reads its
// own section. Otherwise the Reader is one-shot: the single cursor consumes
// the stream and a second Open fails.
type Reader struct {
	hdr     Header
	ra      io.ReaderAt
	dataOff int64
	once    io.Reader // one-shot remainder when ra == nil
	opened  bool
	closer  io.Closer
}

// Open opens path as an FTT1 trace file. Close the Reader to release the
// file handle.
func Open(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r, err := NewReader(f)
	if err != nil {
		f.Close()
		return nil, err
	}
	r.closer = f
	return r, nil
}

// NewReader parses the FTT1 header from r and returns a Source over its
// events. See Reader for the re-iteration contract.
func NewReader(r io.Reader) (*Reader, error) {
	var hdr [fttHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: short FTT1 header: %w", err)
	}
	if string(hdr[:4]) != fttMagic {
		return nil, fmt.Errorf("trace: bad magic %q (want %q)", hdr[:4], fttMagic)
	}
	count := binary.LittleEndian.Uint64(hdr[4:12])
	fp := binary.LittleEndian.Uint64(hdr[12:20])
	pes := binary.LittleEndian.Uint32(hdr[20:24])
	nameLen := int(binary.LittleEndian.Uint16(hdr[24:26]))
	if count > fttMaxEvents {
		return nil, fmt.Errorf("trace: event count %d exceeds format limit %d", count, int64(fttMaxEvents))
	}
	if pes == 0 || pes > fttMaxPEs {
		return nil, fmt.Errorf("trace: PE count %d out of range [1,%d]", pes, fttMaxPEs)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("trace: short name: %w", err)
	}
	if err := CheckName(string(name)); err != nil {
		return nil, err
	}
	rd := &Reader{hdr: Header{
		Name: string(name), PEs: int(pes), Events: int64(count), Fingerprint: fp,
	}}
	if ra, ok := r.(io.ReaderAt); ok {
		rd.ra = ra
		rd.dataOff = int64(fttHeaderLen + nameLen)
	} else {
		rd.once = r
	}
	return rd, nil
}

// Header implements Source.
func (r *Reader) Header() Header { return r.hdr }

// Open implements Source: a fresh cursor over the event stream. The cursor
// re-derives the content fingerprint as it decodes and fails at the end of
// the stream if it does not match the header — a full replay doubles as an
// integrity check, for free, because the hash is a few adds per word.
func (r *Reader) Open() (Cursor, error) {
	if r.ra != nil {
		sect := io.NewSectionReader(r.ra, r.dataOff, math.MaxInt64-r.dataOff)
		return newBinCursor(sect, r.hdr), nil
	}
	if r.opened {
		return nil, errors.New("trace: stream source supports a single Open (wrap a file or bytes.Reader for re-iteration)")
	}
	r.opened = true
	return newBinCursor(r.once, r.hdr), nil
}

// Close releases the underlying file when the Reader came from Open.
func (r *Reader) Close() error {
	if r.closer != nil {
		return r.closer.Close()
	}
	return nil
}

type binCursor struct {
	br   *bufio.Reader
	hdr  Header
	i    int64
	fp   uint64
	deps []int32
	done bool
}

func newBinCursor(r io.Reader, hdr Header) *binCursor {
	return &binCursor{
		br:   bufio.NewReaderSize(r, 1<<16),
		hdr:  hdr,
		fp:   fpSeed(hdr.Name, hdr.PEs),
		deps: make([]int32, 0, fttDepPrealloc),
	}
}

func (c *binCursor) uvarint() (uint64, error) {
	v, err := binary.ReadUvarint(c.br)
	if err == io.EOF || err == io.ErrUnexpectedEOF {
		return 0, fmt.Errorf("trace: truncated at event %d of %d", c.i, c.hdr.Events)
	}
	return v, err
}

// Next implements Cursor. Every field is bounds-checked against the header
// before use, so a hostile stream can produce an error but never a panic or
// an event that would fail (*Trace).Validate.
func (c *binCursor) Next(e *Event) (bool, error) {
	if c.done {
		return false, nil
	}
	if c.i == c.hdr.Events {
		return false, c.finish()
	}
	src, err := c.uvarint()
	if err != nil {
		return false, err
	}
	dst, err := c.uvarint()
	if err != nil {
		return false, err
	}
	delay, err := c.uvarint()
	if err != nil {
		return false, err
	}
	ndeps, err := c.uvarint()
	if err != nil {
		return false, err
	}
	if src >= uint64(c.hdr.PEs) || dst >= uint64(c.hdr.PEs) {
		return false, fmt.Errorf("trace: event %d endpoints (%d->%d) out of range [0,%d)", c.i, src, dst, c.hdr.PEs)
	}
	if delay > math.MaxInt32 {
		return false, fmt.Errorf("trace: event %d delay %d overflows int32", c.i, delay)
	}
	// ndeps is untrusted: never allocate from it. The dep buffer grows by
	// append, bounded by bytes actually present in the stream.
	c.deps = c.deps[:0]
	h := c.fp
	h = fpWord(h, src)
	h = fpWord(h, dst)
	h = fpWord(h, delay)
	h = fpWord(h, ndeps)
	for k := uint64(0); k < ndeps; k++ {
		delta, err := c.uvarint()
		if err != nil {
			return false, err
		}
		if delta == 0 || delta > uint64(c.i) {
			return false, fmt.Errorf("trace: event %d dep delta %d out of range [1,%d]", c.i, delta, c.i)
		}
		dep := int32(c.i - int64(delta))
		c.deps = append(c.deps, dep)
		h = fpWord(h, uint64(dep))
	}
	e.Src = int(src)
	e.Dst = int(dst)
	e.Delay = int32(delay)
	e.Deps = c.deps
	c.fp = h
	c.i++
	return true, nil
}

// finish runs the end-of-stream checks once: trailing garbage after the
// declared event count is an error (matching the text Read), and the
// re-derived fingerprint must equal the header's.
func (c *binCursor) finish() error {
	c.done = true
	if _, err := c.br.ReadByte(); err != io.EOF {
		if err != nil {
			return err
		}
		return fmt.Errorf("trace: trailing data after %d declared events", c.hdr.Events)
	}
	if got := fpFinish(c.fp, c.hdr.Events); got != c.hdr.Fingerprint {
		return fmt.Errorf("trace: content fingerprint %016x does not match header %016x (corrupt stream)", got, c.hdr.Fingerprint)
	}
	return nil
}

func (c *binCursor) Close() error { return nil }

// EncodeBinary writes t as a complete FTT1 stream. Unlike the incremental
// Writer it knows the count and fingerprint up front, so any io.Writer works
// (no backpatching seek).
func EncodeBinary(w io.Writer, t *Trace) error {
	if err := t.Validate(); err != nil {
		return err
	}
	if err := CheckName(t.Name); err != nil {
		return err
	}
	if len(t.Name) > fttMaxName {
		return fmt.Errorf("trace: name %d bytes long (max %d)", len(t.Name), fttMaxName)
	}
	if t.PEs > fttMaxPEs {
		return fmt.Errorf("trace: PE count %d out of range [1,%d]", t.PEs, fttMaxPEs)
	}
	if len(t.Events) > fttMaxEvents {
		return fmt.Errorf("trace: %d events exceeds format limit %d", len(t.Events), int64(fttMaxEvents))
	}
	bw := bufio.NewWriterSize(w, 1<<16)
	var hdr [fttHeaderLen]byte
	copy(hdr[:4], fttMagic)
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(t.Events)))
	binary.LittleEndian.PutUint64(hdr[12:20], t.Fingerprint())
	binary.LittleEndian.PutUint32(hdr[20:24], uint32(t.PEs))
	binary.LittleEndian.PutUint16(hdr[24:26], uint16(len(t.Name)))
	bw.Write(hdr[:])
	bw.WriteString(t.Name)
	var buf []byte
	for i, e := range t.Events {
		b := buf[:0]
		b = binary.AppendUvarint(b, uint64(e.Src))
		b = binary.AppendUvarint(b, uint64(e.Dst))
		b = binary.AppendUvarint(b, uint64(e.Delay))
		b = binary.AppendUvarint(b, uint64(len(e.Deps)))
		for _, d := range e.Deps {
			b = binary.AppendUvarint(b, uint64(i)-uint64(d))
		}
		buf = b[:0]
		if _, err := bw.Write(b); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary materializes an FTT1 stream as an in-memory Trace (the inverse
// of EncodeBinary; fttrace uses it for binary→text conversion). The decoded
// trace is validated and its fingerprint checked against the header.
func ReadBinary(r io.Reader) (*Trace, error) {
	rd, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	cur, err := rd.Open()
	if err != nil {
		return nil, err
	}
	defer cur.Close()
	hdr := rd.Header()
	t := &Trace{Name: hdr.Name, PEs: hdr.PEs}
	if hdr.Events < 1<<20 {
		t.Events = make([]Event, 0, hdr.Events)
	}
	var e Event
	for {
		ok, err := cur.Next(&e)
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if len(e.Deps) > 0 {
			e.Deps = append([]int32(nil), e.Deps...)
		} else {
			e.Deps = nil
		}
		t.Events = append(t.Events, e)
	}
	return t, t.Validate()
}
